module bitdew

go 1.22
