package bitdew_test

import (
	"testing"
	"time"

	"bitdew/internal/loadgen"
	"bitdew/internal/testbed"
)

// ---- Sustained load (the steady-state traffic model) ----
//
// The BLAST benchmarks above distribute one wave and exit. This file holds
// the steady-state complement: cmd/bitdew-stress's mixed put/fetch/
// schedule/search traffic sustained against a real 2-shard plane, with
// per-op latency histograms. BenchmarkSustainedStress reports the measured
// throughput; TestBenchStressAcceptance is the tier-1 guard that the
// harness itself works (nonzero throughput, zero op errors, sane
// quantiles) so the CI smoke and BENCH_stress.json trajectory stay honest.

// stressConfig is the shared shape of the short in-process runs here: small
// enough for CI, large enough that all four op classes fire.
func stressConfig(d, warmup time.Duration, clients int) testbed.StressConfig {
	return testbed.StressConfig{
		Shards: 2,
		Load: loadgen.Config{
			Clients:  clients,
			Duration: d,
			Warmup:   warmup,
			Mix:      loadgen.DefaultMix(),
			Seed:     1,
		},
		Plane: loadgen.PlaneConfig{
			Conns:          4,
			PayloadBytes:   128,
			Preload:        32,
			SlotsPerClient: 4,
		},
	}
}

func BenchmarkSustainedStress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := testbed.RunStress(stressConfig(2*time.Second, 500*time.Millisecond, 32))
		if err != nil {
			b.Fatal(err)
		}
		if rep.Errors > 0 {
			b.Fatalf("%d op errors", rep.Errors)
		}
		b.ReportMetric(rep.Throughput, "ops/sec")
		b.ReportMetric(rep.Latency.P99, "p99-ms")
	}
}

// TestBenchStressAcceptance locks the harness end to end: a short mixed
// run against a real 2-shard plane completes with nonzero throughput, zero
// op errors, ordered latency quantiles, and every op class of the mix
// present in the report.
func TestBenchStressAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a sharded plane")
	}
	rep, err := testbed.RunStress(stressConfig(1200*time.Millisecond, 300*time.Millisecond, 16))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops == 0 || rep.Throughput <= 0 {
		t.Fatalf("no measured throughput: ops=%d throughput=%.1f", rep.Ops, rep.Throughput)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d op errors under stress", rep.Errors)
	}
	if rep.Latency.P50 > rep.Latency.P99 || rep.Latency.P99 > rep.Latency.P999 {
		t.Fatalf("quantiles out of order: p50=%.3f p99=%.3f p999=%.3f",
			rep.Latency.P50, rep.Latency.P99, rep.Latency.P999)
	}
	if rep.Latency.Max < rep.Latency.P999 {
		t.Fatalf("max %.3f below p999 %.3f", rep.Latency.Max, rep.Latency.P999)
	}
	for _, class := range []string{"put", "fetch", "schedule", "search"} {
		op, ok := rep.PerOp[class]
		if !ok || op.Ops == 0 {
			t.Errorf("op class %s missing from report", class)
			continue
		}
		if op.Errors != 0 {
			t.Errorf("op class %s: %d errors", class, op.Errors)
		}
	}
	if rep.Scenario.Shards != 2 {
		t.Fatalf("scenario shards = %d", rep.Scenario.Shards)
	}
}
