// Blast: the paper's §5 Master/Worker application on the real stack, with
// the synthetic genomics workload standing in for NCBI BLAST + GeneBank.
//
// The master shares a genebase (broadcast over BitTorrent, exactly
// Listing 3's Genebase attribute minus the affinity refinement), submits
// each query sequence as a fault-tolerant task, and collects results
// through a pinned Collector. Workers execute the search kernel when a
// sequence lands and their shared dependencies are present.
//
//	go run ./examples/blast
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"bitdew/internal/core"
	"bitdew/internal/mw"
	"bitdew/internal/runtime"
	"bitdew/internal/workload"
)

const (
	workers   = 3
	queries   = 6
	baseSize  = 400_000
	queryLen  = 250
	minScore  = 150
	mutations = 0.01
)

func main() {
	start := time.Now()
	services, err := runtime.NewContainer(runtime.ContainerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer services.Close()

	// Master.
	mnode, err := core.NewNode(core.NodeConfig{Host: "master", Comms: core.ConnectLocal(services.Mux)})
	if err != nil {
		log.Fatal(err)
	}
	master, err := mw.NewMaster(mnode)
	if err != nil {
		log.Fatal(err)
	}

	// Workers: run the search kernel against the shared genebase.
	var wnodes []*core.Node
	for i := 0; i < workers; i++ {
		wn, err := core.NewNode(core.NodeConfig{
			Host:  fmt.Sprintf("worker-%d", i),
			Comms: core.ConnectLocal(services.Mux),
		})
		if err != nil {
			log.Fatal(err)
		}
		wnodes = append(wnodes, wn)
		mw.NewWorker(wn, []string{"Genebase"}, func(task string, input []byte, shared map[string][]byte) ([]byte, error) {
			hits := workload.Search(shared["Genebase"], input, minScore)
			return []byte(workload.SearchReport(workload.Query{Name: task, Seq: input}, hits)), nil
		})
	}

	// Generate and share the genebase; Listing 3 distributes it over
	// BitTorrent because every computing node needs it.
	base := workload.Genebase(baseSize, 20080101)
	if _, err := master.Share("Genebase", base, "attr Genebase = { replica = -1, oob = bittorrent }"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared genebase: %d bases\n", len(base))

	// Submit one task per query sequence (fault tolerant, HTTP). The whole
	// task list goes through the batch-first path — a handful of service
	// round trips instead of five per query.
	qs := workload.SampleQueries(base, queries, queryLen, mutations, 7)
	specs := make([]mw.TaskSpec, len(qs))
	for i, q := range qs {
		specs[i] = mw.TaskSpec{Name: q.Name, Input: q.Seq, Replica: 1}
	}
	if _, err := master.SubmitAll(specs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %d query tasks in one batch\n", len(qs))

	// Drive workers concurrently with the master's collection loop.
	for _, wn := range wnodes {
		wn.Start()
		defer wn.Stop()
	}
	results, err := master.Collect(queries, 600)
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Task < results[j].Task })
	for _, r := range results {
		fmt.Printf("  %s\n", r.Content)
	}

	// Cleanup: deleting the Collector obsoletes every datum bound to it.
	if err := master.Shutdown(); err != nil {
		log.Fatal(err)
	}
	for _, wn := range wnodes {
		wn.SyncOnce()
	}
	fmt.Printf("blast run complete in %v (wall clock)\n", time.Since(start).Round(time.Millisecond))
}
