// Faulttolerance: the §4.4 scenario on the real components. A datum with
// replica = 2 and fault tolerance = true is placed on two reservoir
// hosts; one of them crashes (stops heartbeating); after three missed
// heartbeats the Data Scheduler drops it from the owner list and
// re-schedules the datum to a fresh node, restoring the replica count.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"time"

	"bitdew/internal/attr"
	"bitdew/internal/core"
	"bitdew/internal/runtime"
)

func main() {
	services, err := runtime.NewContainer(runtime.ContainerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer services.Close()
	// Shrink the failure-detection timeout so the demo runs in seconds;
	// the paper's setup is 3 x 1s heartbeats.
	const heartbeat = 100 * time.Millisecond
	services.DS.Timeout = 3 * heartbeat

	client, err := core.NewNode(core.NodeConfig{Host: "client", Comms: core.ConnectLocal(services.Mux)})
	if err != nil {
		log.Fatal(err)
	}
	client.SetClientOnly(true)

	d, err := client.BitDew.CreateData("precious")
	if err != nil {
		log.Fatal(err)
	}
	if err := client.BitDew.Put(d, []byte("replicated payload")); err != nil {
		log.Fatal(err)
	}
	err = client.ActiveData.Schedule(*d, attr.Attribute{
		Name: "precious", Replica: 2, FaultTolerant: true, Protocol: "http",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scheduled with replica = 2, fault tolerance = true")

	newWorker := func(name string) *core.Node {
		w, err := core.NewNode(core.NodeConfig{
			Host: name, Comms: core.ConnectLocal(services.Mux), SyncPeriod: heartbeat,
		})
		if err != nil {
			log.Fatal(err)
		}
		w.ActiveData.AddCallback(core.EventHandler{
			OnDataCopy: func(e core.Event) {
				fmt.Printf("  %s now holds %q\n", name, e.Data.Name)
			},
		})
		return w
	}

	w1, w2 := newWorker("w1"), newWorker("w2")
	w1.SyncWait(2)
	w2.SyncWait(2)
	if !w1.Holds(d.UID) || !w2.Holds(d.UID) {
		log.Fatal("initial replicas not placed")
	}
	fmt.Println("two replicas placed")

	// w1 crashes: it simply stops synchronizing.
	fmt.Println("w1 crashes (stops heartbeating)")
	crash := time.Now()

	// w3 arrives and keeps pulling; w2 keeps heartbeating.
	w3 := newWorker("w3")
	w3.Start()
	defer w3.Stop()
	w2.Start()
	defer w2.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for !w3.Holds(d.UID) {
		if time.Now().After(deadline) {
			log.Fatal("datum never rescheduled to w3")
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("replica restored on w3 %.2fs after the crash (timeout = 3 heartbeats = %v)\n",
		time.Since(crash).Seconds(), services.DS.Timeout)
}
