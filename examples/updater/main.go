// Updater: the paper's running example (Listings 1 and 2) end to end,
// over real TCP loopback connections.
//
// One master node copies an update file to every node in the network over
// the collaborative protocol and maintains the list of nodes that applied
// it: each updatee reacts to the update's data-copy event by scheduling a
// small "host" datum whose affinity points at a Collector pinned on the
// master, so the acknowledgements flow back automatically.
//
//	go run ./examples/updater
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"

	"bitdew/internal/attr"
	"bitdew/internal/core"
	"bitdew/internal/runtime"
)

const updatees = 4

func main() {
	// Stable node: the service container, reachable over TCP.
	services, err := runtime.NewContainer(runtime.ContainerConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		log.Fatal(err)
	}
	defer services.Close()
	fmt.Printf("services at %s\n", services.Addr())

	// ---- Master (the Updater of Listing 1) ----
	comms, err := core.Connect(services.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer comms.Close()
	master, err := core.NewNode(core.NodeConfig{Host: "updater", Comms: comms})
	if err != nil {
		log.Fatal(err)
	}
	master.SetClientOnly(true)

	// The big file to push everywhere.
	payload := make([]byte, 2_000_000)
	rand.New(rand.NewSource(1)).Read(payload)
	update, err := master.BitDew.CreateData("big_data_to_update")
	if err != nil {
		log.Fatal(err)
	}
	if err := master.BitDew.Put(update, payload); err != nil {
		log.Fatal(err)
	}
	// Listing 1's attribute: send to every node over BitTorrent, expire
	// after 30 days.
	updateAttr, err := master.ActiveData.CreateAttribute(
		"attr update = { replicat = -1, oob = bittorrent, abstime = 2592000 }")
	if err != nil {
		log.Fatal(err)
	}
	if err := master.ActiveData.Schedule(*update, updateAttr); err != nil {
		log.Fatal(err)
	}

	// The Collector gathering acknowledgements (Listing 2's affinity sink).
	collector, err := master.BitDew.CreateData("collector")
	if err != nil {
		log.Fatal(err)
	}
	if err := master.ActiveData.Pin(*collector, attr.Attribute{Name: "collector"}); err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	var updated []string
	master.ActiveData.AddCallback(core.EventHandler{
		OnDataCopy: func(e core.Event) {
			if e.Attr.Name == "host" {
				mu.Lock()
				updated = append(updated, e.Data.Name)
				mu.Unlock()
			}
		},
	})

	// ---- Updatees (Listing 2) ----
	var nodes []*core.Node
	for i := 0; i < updatees; i++ {
		wcomms, err := core.Connect(services.Addr())
		if err != nil {
			log.Fatal(err)
		}
		defer wcomms.Close()
		w, err := core.NewNode(core.NodeConfig{Host: fmt.Sprintf("updatee-%d", i), Comms: wcomms})
		if err != nil {
			log.Fatal(err)
		}
		w.ActiveData.AddCallback(core.EventHandler{
			OnDataCopy: updateeHandler(w),
			OnDataDelete: func(e core.Event) {
				if e.Attr.Name == "update" {
					fmt.Printf("%s: update file deleted\n", w.Host)
				}
			},
		})
		nodes = append(nodes, w)
	}

	// Drive the pull model: updatees fetch the update and push back acks,
	// then the master's sync collects them through affinity.
	for _, w := range nodes {
		if err := w.SyncWait(2); err != nil {
			log.Fatal(err)
		}
	}
	if err := master.SyncWait(3); err != nil {
		log.Fatal(err)
	}

	mu.Lock()
	sort.Strings(updated)
	fmt.Printf("updated hosts (%d/%d): %v\n", len(updated), updatees, updated)
	mu.Unlock()
	if len(updated) != updatees {
		log.Fatal("not every updatee acknowledged")
	}
	fmt.Println("network file update complete")
}

// updateeHandler is Listing 2's UpdateeHandler: on receiving the update,
// install it and send the host name back to the collector.
func updateeHandler(w *core.Node) func(core.Event) {
	return func(e core.Event) {
		if e.Attr.Name != "update" {
			return
		}
		fmt.Printf("%s: installed update %q (%d bytes)\n", w.Host, e.Data.Name, e.Data.Size)
		collector, err := w.BitDew.SearchDataFirst("collector")
		if err != nil {
			log.Printf("%s: no collector: %v", w.Host, err)
			return
		}
		hostData, err := w.BitDew.CreateData(w.Host)
		if err != nil {
			log.Print(err)
			return
		}
		if err := w.BitDew.Put(hostData, []byte(w.Host)); err != nil {
			log.Print(err)
			return
		}
		err = w.ActiveData.Schedule(*hostData, attr.Attribute{
			Name: "host", Replica: 1, Protocol: "http",
			Affinity: string(collector.UID),
		})
		if err != nil {
			log.Print(err)
		}
	}
}
