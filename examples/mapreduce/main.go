// Mapreduce: the distributed MapReduce abstraction the paper's conclusion
// proposes as future work, layered on BitDew's data-driven master/worker
// framework. A word-count over a corpus: splits scatter to workers as map
// tasks, intermediate pairs shuffle through the data space, reduce tasks
// fold the counts, and everything is cleaned by deleting the Collector.
// Both task waves are submitted through the batch-first request path
// (mw.Master.SubmitAll), so each phase costs a handful of service round
// trips regardless of the number of splits.
//
//	go run ./examples/mapreduce
package main

import (
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"
	"time"

	"bitdew/internal/collective"
	"bitdew/internal/core"
	"bitdew/internal/mw"
	"bitdew/internal/runtime"
)

const corpus = `
the desktop grid uses the idle resources of desktop computers
the data grid moves the data to the computation
bitdew bridges the desktop grid and the data grid
attributes drive replication placement lifetime and transfers
the scheduler places the data and the workers react to the data
`

func main() {
	services, err := runtime.NewContainer(runtime.ContainerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer services.Close()

	mnode, err := core.NewNode(core.NodeConfig{Host: "master", Comms: core.ConnectLocal(services.Mux)})
	if err != nil {
		log.Fatal(err)
	}
	master, err := mw.NewMaster(mnode)
	if err != nil {
		log.Fatal(err)
	}

	// Word-count map and reduce functions, installed on every worker.
	mapFn := func(split []byte, emit func(string, []byte)) error {
		for _, w := range strings.Fields(string(split)) {
			emit(strings.ToLower(w), []byte("1"))
		}
		return nil
	}
	reduceFn := func(key string, values [][]byte) ([]byte, error) {
		total := 0
		for _, v := range values {
			n, err := strconv.Atoi(string(v))
			if err != nil {
				return nil, err
			}
			total += n
		}
		return []byte(strconv.Itoa(total)), nil
	}
	for i := 0; i < 3; i++ {
		wn, err := core.NewNode(core.NodeConfig{
			Host:       fmt.Sprintf("worker-%d", i),
			Comms:      core.ConnectLocal(services.Mux),
			SyncPeriod: 20 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		mw.NewWorker(wn, nil, collective.WorkerFunc(mapFn, reduceFn))
		wn.Start()
		defer wn.Stop()
	}

	// One map split per corpus line, four reduce partitions.
	var splits [][]byte
	for _, line := range strings.Split(strings.TrimSpace(corpus), "\n") {
		splits = append(splits, []byte(line))
	}
	counts, err := collective.RunMapReduce(master, "wordcount", splits, 4, 600)
	if err != nil {
		log.Fatal(err)
	}

	type wc struct {
		word  string
		count int
	}
	var table []wc
	for w, c := range counts {
		n, _ := strconv.Atoi(string(c))
		table = append(table, wc{w, n})
	}
	sort.Slice(table, func(i, j int) bool {
		if table[i].count != table[j].count {
			return table[i].count > table[j].count
		}
		return table[i].word < table[j].word
	})
	fmt.Printf("word count over %d splits (%d distinct words):\n", len(splits), len(table))
	for _, e := range table[:8] {
		fmt.Printf("  %-12s %d\n", e.word, e.count)
	}
	if err := master.Shutdown(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("mapreduce complete")
}
