// Quickstart: the smallest complete BitDew program.
//
// It starts the runtime services in-process, creates a datum, puts content
// into the data space, tags it with an attribute that broadcasts it over
// HTTP, and watches two reservoir hosts receive it through the pull model.
//
//	go run ./examples/quickstart
//
// With -service HOST:PORT it attaches to an external service host (start
// one with cmd/bitdew-service) instead of starting services in-process —
// the flow is otherwise identical. Comma-separate several addresses to
// attach to a sharded service plane (bitdew-service -shards N, or one
// -shard-id process per host); the program is unchanged, the client
// routes the datum to its home shard. CI uses this to prove a -state-dir
// service survives a restart with the quickstart's data intact, and that
// a 2-shard plane keeps serving surviving data after losing a shard.
package main

import (
	"flag"
	"fmt"
	"log"

	"bitdew/internal/core"
	"bitdew/internal/runtime"
)

func main() {
	serviceAddr := flag.String("service", "", "external service rpc address(es), comma-separated for a sharded plane (default: start services in-process)")
	flag.Parse()

	// connect yields fresh service connections for each node: direct
	// in-process dispatch by default, TCP with -service. Every connection
	// is a ShardSet — over one service host it simply has one shard.
	var connect func() (*core.ShardSet, error)
	if *serviceAddr != "" {
		addrs := core.ParseMembership(*serviceAddr)
		// Over a replicated plane (bitdew-service -replicas R) the clients
		// learn R from the membership table and route around dead shards.
		replicas := 0
		if len(addrs) > 1 {
			replicas = runtime.DiscoverReplicas(addrs)
		}
		connect = func() (*core.ShardSet, error) {
			return core.ConnectSharded(addrs, core.WithReplicas(replicas))
		}
	} else {
		// A service container bundles the four D* services (Data Catalog,
		// Data Repository, Data Transfer, Data Scheduler) plus the transfer
		// protocol servers. Addr "" keeps everything in-process.
		services, err := runtime.NewContainer(runtime.ContainerConfig{})
		if err != nil {
			log.Fatal(err)
		}
		defer services.Close()
		connect = func() (*core.ShardSet, error) {
			return core.NewShardSet(core.ConnectLocal(services.Mux)), nil
		}
	}

	// The client node: attach, create a datum, put content.
	clientShards, err := connect()
	if err != nil {
		log.Fatal(err)
	}
	client, err := core.NewNode(core.NodeConfig{
		Host:   "client",
		Shards: clientShards,
	})
	if err != nil {
		log.Fatal(err)
	}
	client.SetClientOnly(true)

	d, err := client.BitDew.CreateData("greeting")
	if err != nil {
		log.Fatal(err)
	}
	if err := client.BitDew.Put(d, []byte("hello, data space")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("put: %s\n", d)

	// Tag it: one instance on every node, distributed over HTTP.
	a, err := client.ActiveData.CreateAttribute("attr greeting = { replica = -1, oob = http }")
	if err != nil {
		log.Fatal(err)
	}
	if err := client.ActiveData.Schedule(*d, a); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled: %s\n", a)

	// Two reservoir hosts join and pull. The runtime does the rest: the
	// scheduler assigns the datum, the transfer engine fetches it out-of-
	// band, the MD5 is verified, and the copy event fires.
	for i := 1; i <= 2; i++ {
		workerShards, err := connect()
		if err != nil {
			log.Fatal(err)
		}
		worker, err := core.NewNode(core.NodeConfig{
			Host:   fmt.Sprintf("worker-%d", i),
			Shards: workerShards,
		})
		if err != nil {
			log.Fatal(err)
		}
		worker.ActiveData.AddCallback(core.EventHandler{
			OnDataCopy: func(e core.Event) {
				content, _ := worker.Backend().Get(string(e.Data.UID))
				fmt.Printf("%s received %q -> %q\n", worker.Host, e.Data.Name, content)
			},
		})
		if err := worker.SyncWait(2); err != nil {
			log.Fatal(err)
		}
	}

	// Search works from any node.
	found, err := client.BitDew.SearchDataFirst("greeting")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search: found %s with checksum %.8s\n", found.Name, found.Checksum)
	fmt.Println("quickstart complete")
}
