package bitdew_test

import (
	"testing"

	"bitdew/internal/protocols/httpx"
	"bitdew/internal/repository"
)

// benchTransferFixture serves one in-memory backend over HTTP for the
// transfer benchmarks.
type benchTransferFixture struct {
	backend  *repository.MemBackend
	httpAddr string
}

func newBenchTransferFixture(b *testing.B) *benchTransferFixture {
	b.Helper()
	backend := repository.NewMemBackend()
	srv, err := httpx.NewServer(backend, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return &benchTransferFixture{backend: backend, httpAddr: srv.Addr()}
}
