package bitdew_test

import (
	"testing"
	"time"

	"bitdew/internal/testbed"
)

// ---- Failover latency (replicated plane, kill-the-owner) ----
//
// The replicated service plane's headline number: how long a key range is
// unreachable when its owning shard dies. Each measurement kills the
// current owner of a range and times the window from the kill to the first
// successful read of a datum homed there through a failover-aware client —
// detection (transport error), ownership probes, the successor's promotion
// (adopting the replicated rows into its live store) and the re-routed
// read. cmd/bitdew-stress -failover writes the same scenario into the
// BENCH_failover.json trajectory row.

// failoverConfig is the shared scenario: a 3-shard R=2 plane, two rounds so
// both a first failover and a promote-back after rejoin are measured.
func failoverConfig() testbed.FailoverConfig {
	return testbed.FailoverConfig{
		Shards:   3,
		Replicas: 2,
		Data:     16,
		Rounds:   2,
	}
}

func BenchmarkFailover(b *testing.B) {
	var sum time.Duration
	var n int
	for i := 0; i < b.N; i++ {
		report, err := testbed.RunFailover(failoverConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range report.Detections {
			sum += d
			n++
		}
	}
	b.ReportMetric(float64(sum.Milliseconds())/float64(n), "failover-ms")
}

// TestBenchFailoverAcceptance pins the claim the benchmark demonstrates:
// killing a range's owner costs bounded unavailability — every round's
// detection-to-promoted window stays under 10s (typical runs land well
// under 2s; 10s leaves headroom for loaded CI machines and the race
// detector), and the killed shard rejoins so the NEXT kill fails over too.
func TestBenchFailoverAcceptance(t *testing.T) {
	report, err := testbed.RunFailover(failoverConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Detections) != report.Rounds {
		t.Fatalf("measured %d rounds, want %d", len(report.Detections), report.Rounds)
	}
	for round, d := range report.Detections {
		t.Logf("round %d: detection-to-promoted %v", round, d)
		if d > 10*time.Second {
			t.Fatalf("round %d: failover took %v, want < 10s", round, d)
		}
	}
}
