package workload

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestGenebaseDeterministic(t *testing.T) {
	a := Genebase(10_000, 42)
	b := Genebase(10_000, 42)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different genebases")
	}
	c := Genebase(10_000, 43)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical genebases")
	}
	for _, ch := range a {
		if ch != 'A' && ch != 'C' && ch != 'G' && ch != 'T' {
			t.Fatalf("non-DNA byte %q", ch)
		}
	}
}

func TestSampleQueriesPlantedMatches(t *testing.T) {
	base := Genebase(100_000, 1)
	queries := SampleQueries(base, 10, 200, 0.02, 2)
	if len(queries) != 10 {
		t.Fatalf("got %d queries", len(queries))
	}
	for _, q := range queries {
		if len(q.Seq) != 200 {
			t.Errorf("%s: len %d", q.Name, len(q.Seq))
		}
		if q.Origin < 0 || q.Origin+200 > len(base) {
			t.Errorf("%s: origin %d out of range", q.Name, q.Origin)
		}
	}
}

func TestSearchFindsPlantedQuery(t *testing.T) {
	base := Genebase(200_000, 3)
	queries := SampleQueries(base, 5, 300, 0.01, 4)
	for _, q := range queries {
		hits := Search(base, q.Seq, 200)
		found := false
		for _, h := range hits {
			if h.Pos == q.Origin {
				found = true
				if h.Score < 250 { // ~1% mutations on 300 bases
					t.Errorf("%s: low score %d at origin", q.Name, h.Score)
				}
			}
		}
		if !found {
			t.Errorf("%s: planted match at %d not found (hits %v)", q.Name, q.Origin, hits)
		}
	}
}

func TestSearchNoFalseHitsForForeignQuery(t *testing.T) {
	base := Genebase(100_000, 5)
	foreign := Genebase(300, 999) // unrelated sequence
	hits := Search(base, foreign, 250)
	if len(hits) != 0 {
		t.Errorf("foreign query matched: %v", hits)
	}
}

func TestSearchEdgeCases(t *testing.T) {
	if hits := Search(nil, nil, 1); hits != nil {
		t.Error("nil inputs produced hits")
	}
	if hits := Search([]byte("ACGT"), []byte("ACGTACGTACGTACGT"), 1); hits != nil {
		t.Error("base shorter than seed produced hits")
	}
	base := Genebase(1000, 6)
	if hits := Search(base, base[:8], 1); hits != nil {
		t.Error("query shorter than seed produced hits")
	}
}

func TestSearchHandlesNonDNABytes(t *testing.T) {
	base := append(Genebase(1000, 7), 'N', 'N')
	base = append(base, Genebase(1000, 8)...)
	q := base[100:250]
	hits := Search(base, q, 100)
	if len(hits) == 0 {
		t.Error("exact substring not found across N-containing base")
	}
}

func TestQuickExactSubstringAlwaysFound(t *testing.T) {
	base := Genebase(50_000, 9)
	f := func(offSeed uint16, lenSeed uint8) bool {
		qlen := int(lenSeed)%200 + seedLen
		off := int(offSeed) % (len(base) - qlen)
		q := base[off : off+qlen]
		hits := Search(base, q, qlen) // exact match scores len(q)
		for _, h := range hits {
			if h.Pos == off && h.Score == qlen {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSearchReport(t *testing.T) {
	q := Query{Name: "q1"}
	if got := SearchReport(q, nil); !strings.Contains(got, "no hits") {
		t.Errorf("empty report = %q", got)
	}
	got := SearchReport(q, []Hit{{Pos: 5, Score: 10}, {Pos: 9, Score: 20}})
	if !strings.Contains(got, "best score 20 at 9") {
		t.Errorf("report = %q", got)
	}
}

func TestFilecules(t *testing.T) {
	fcs := Filecules(20, 1_000, 1_000_000, 11)
	if len(fcs) != 20 {
		t.Fatalf("got %d filecules", len(fcs))
	}
	sizes := map[int]int{}
	for _, fc := range fcs {
		if len(fc.Files) == 0 {
			t.Errorf("%s has no files", fc.Name)
		}
		sizes[len(fc.Files)]++
		for _, f := range fc.Files {
			if f.Size < 1_000 || f.Size > 1_000_000 {
				t.Errorf("%s: size %d out of range", f.Name, f.Size)
			}
		}
	}
	if len(sizes) < 3 {
		t.Errorf("group cardinality not heavy-tailed: %v", sizes)
	}
	// Determinism.
	again := Filecules(20, 1_000, 1_000_000, 11)
	if len(again) != len(fcs) || again[3].Files[0].Size != fcs[3].Files[0].Size {
		t.Error("filecules not deterministic")
	}
}
