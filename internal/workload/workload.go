// Package workload generates the synthetic scientific workloads used by
// the examples and benchmarks in place of the paper's proprietary inputs:
// a deterministic DNA "genebase" standing in for the 2.68 GB GeneBank
// archive, query sequences drawn from it, a sequence-similarity search
// kernel standing in for NCBI blastn (same I/O and compute pattern:
// seed-match scanning plus ungapped extension over the whole base), and a
// filecule generator reproducing the grouped-file access patterns of
// high-energy physics workloads the paper cites ([22]).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

var alphabet = []byte("ACGT")

// Genebase returns size bytes of deterministic pseudo-random DNA. The same
// (size, seed) pair always yields identical content, so distributed tests
// can verify checksums without shipping the base around.
func Genebase(size int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, size)
	for i := range out {
		out[i] = alphabet[rng.Intn(4)]
	}
	return out
}

// Query is one search sequence with a ground-truth origin.
type Query struct {
	Name string
	Seq  []byte
	// Origin is the offset in the genebase the query was sampled from
	// (-1 for random queries with no planted match).
	Origin int
}

// SampleQueries draws n queries of length qlen from the base, mutating
// mutRate of their positions, so the search kernel has real hits to find.
func SampleQueries(base []byte, n, qlen int, mutRate float64, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Query, 0, n)
	for i := 0; i < n; i++ {
		if qlen >= len(base) {
			qlen = len(base) / 2
		}
		origin := rng.Intn(len(base) - qlen)
		seq := append([]byte(nil), base[origin:origin+qlen]...)
		for j := range seq {
			if rng.Float64() < mutRate {
				seq[j] = alphabet[rng.Intn(4)]
			}
		}
		out = append(out, Query{Name: fmt.Sprintf("seq-%03d", i), Seq: seq, Origin: origin})
	}
	return out
}

// Hit is one local alignment found by Search.
type Hit struct {
	// Pos is the match position in the base.
	Pos int
	// Score is the ungapped-extension score (matches - mismatches).
	Score int
	// Length is the extended alignment length.
	Length int
}

const seedLen = 11 // blastn's default word size

// hashSeed maps a seedLen-mer to a table key (2 bits per symbol).
func hashSeed(s []byte) (uint32, bool) {
	var h uint32
	for _, c := range s {
		var code uint32
		switch c {
		case 'A':
			code = 0
		case 'C':
			code = 1
		case 'G':
			code = 2
		case 'T':
			code = 3
		default:
			return 0, false
		}
		h = h<<2 | code
	}
	return h, true
}

// Search runs the blastn-like kernel: index the query's seed words, scan
// the base for exact seed matches, then extend each match without gaps and
// keep alignments scoring at least minScore. The scan touches every byte
// of the base, matching the real tool's full-database compute profile.
func Search(base, query []byte, minScore int) []Hit {
	if len(query) < seedLen || len(base) < seedLen {
		return nil
	}
	// Index query seeds.
	seeds := make(map[uint32][]int)
	for i := 0; i+seedLen <= len(query); i++ {
		if h, ok := hashSeed(query[i : i+seedLen]); ok {
			seeds[h] = append(seeds[h], i)
		}
	}
	var hits []Hit
	lastPos := -1
	// Rolling scan of the base.
	var h uint32
	valid := 0
	const mask = 1<<(2*seedLen) - 1
	for i := 0; i < len(base); i++ {
		var code uint32
		switch base[i] {
		case 'A':
			code = 0
		case 'C':
			code = 1
		case 'G':
			code = 2
		case 'T':
			code = 3
		default:
			valid = 0
			continue
		}
		h = (h<<2 | code) & mask
		if valid < seedLen {
			valid++
		}
		if valid < seedLen {
			continue
		}
		basePos := i - seedLen + 1
		for _, qPos := range seeds[h] {
			start := basePos - qPos
			if start <= lastPos { // avoid re-reporting the same region
				continue
			}
			score, length := extend(base, query, start)
			if score >= minScore {
				hits = append(hits, Hit{Pos: start, Score: score, Length: length})
				lastPos = start
			}
		}
	}
	return hits
}

// extend aligns query against base at offset start without gaps.
func extend(base, query []byte, start int) (score, length int) {
	for i := 0; i < len(query); i++ {
		p := start + i
		if p < 0 || p >= len(base) {
			break
		}
		length++
		if base[p] == query[i] {
			score++
		} else {
			score--
		}
	}
	return score, length
}

// SearchReport formats hits the way the examples print them.
func SearchReport(q Query, hits []Hit) string {
	if len(hits) == 0 {
		return fmt.Sprintf("%s: no hits", q.Name)
	}
	best := hits[0]
	for _, h := range hits {
		if h.Score > best.Score {
			best = h
		}
	}
	return fmt.Sprintf("%s: %d hits, best score %d at %d", q.Name, len(hits), best.Score, best.Pos)
}

// Filecule is a group of files accessed together (the "filecules" of
// high-energy physics workloads, paper §2.2): replicating whole groups on
// the same hosts is what BitDew's affinity attribute enables.
type Filecule struct {
	Name  string
	Files []FileSpec
}

// FileSpec is one member file.
type FileSpec struct {
	Name string
	Size int64
}

// Filecules draws n groups. Group sizes follow a Zipf-like distribution
// (few big groups, many small ones) and file sizes are log-uniform between
// minSize and maxSize, matching the heavy-tailed mixes of [22].
func Filecules(n int, minSize, maxSize int64, seed int64) []Filecule {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Filecule, 0, n)
	for i := 0; i < n; i++ {
		// Zipf-ish group cardinality: rank-dependent, 1..12 files.
		members := 1 + int(12/float64(rng.Intn(12)+1))
		fc := Filecule{Name: fmt.Sprintf("filecule-%03d", i)}
		for j := 0; j < members; j++ {
			size := float64(minSize) * math.Pow(float64(maxSize)/float64(minSize), rng.Float64())
			fc.Files = append(fc.Files, FileSpec{
				Name: fmt.Sprintf("%s/f%02d", fc.Name, j),
				Size: int64(size),
			})
		}
		out = append(out, fc)
	}
	return out
}
