package db

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Default compaction policy of a DurableStore: compact once the WAL holds
// this many records (each Put/Delete is one record). Compaction cost is one
// full snapshot write, so the threshold trades recovery-replay length
// against snapshot churn.
const DefaultCompactEvery = 4096

const (
	snapshotFile = "snapshot.gob"
	walFile      = "wal.gob"
)

// DurableStore is a RowStore whose state survives process restarts: every
// mutation is appended to an on-disk write-ahead log before it is applied,
// and the log is periodically compacted by writing a full snapshot and
// rotating the log (the paper's §3.4–3.5 design, where all D* service
// meta-data lives in a relational database precisely so a service restart
// loses nothing).
//
// Layout inside the state directory:
//
//	snapshot.gob   full state at the last compaction (a WAL stream of puts)
//	wal.gob        mutations since the last compaction
//
// Open replays snapshot then WAL; a torn final WAL record (the crash
// happened mid-append) is tolerated and dropped. All methods are safe for
// concurrent use.
type DurableStore struct {
	mu  sync.Mutex
	mem *RowStore
	dir string

	walF   *os.File
	walEnc *gob.Encoder
	walN   int // records appended since the last compaction

	compactEvery    int
	compactInterval time.Duration
	stopCompact     chan struct{}
	compactWG       sync.WaitGroup

	// broken latches a WAL-append failure that compaction could not clear:
	// mutations are refused (reads and Close still work) so a damaged log
	// is never extended past the point recovery can trust.
	broken error
	closed bool
}

// DurableOption configures an OpenDurable call.
type DurableOption func(*DurableStore)

// WithCompactEvery sets the WAL record count that triggers an automatic
// compaction (0 keeps DefaultCompactEvery; negative disables count-based
// compaction).
func WithCompactEvery(n int) DurableOption {
	return func(s *DurableStore) { s.compactEvery = n }
}

// WithCompactInterval additionally compacts on a timer, so a mostly idle
// service still bounds its recovery-replay length.
func WithCompactInterval(d time.Duration) DurableOption {
	return func(s *DurableStore) { s.compactInterval = d }
}

// OpenDurable opens (creating if needed) the durable store rooted at dir
// and recovers its state: the last snapshot is replayed, then the WAL on
// top of it.
func OpenDurable(dir string, opts ...DurableOption) (*DurableStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("db: open durable: %w", err)
	}
	s := &DurableStore{
		mem:          NewRowStore(),
		dir:          dir,
		compactEvery: DefaultCompactEvery,
		stopCompact:  make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	if s.compactEvery == 0 {
		s.compactEvery = DefaultCompactEvery
	}
	if err := replayFile(s.mem, filepath.Join(dir, snapshotFile)); err != nil {
		return nil, err
	}
	walRecs, err := replayFileCount(s.mem, filepath.Join(dir, walFile))
	if err != nil {
		return nil, err
	}
	s.walN = walRecs
	walF, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("db: open wal: %w", err)
	}
	s.walF = walF
	s.walEnc = gob.NewEncoder(walF)
	// A recovered WAL may contain a torn final record; the gob stream we
	// append would then be unreadable past it. Compact immediately so the
	// new WAL starts from a clean snapshot — this also caps the next
	// recovery's replay at the snapshot plus a fresh log.
	if err := s.compactLocked(); err != nil {
		walF.Close()
		return nil, err
	}
	if s.compactInterval > 0 {
		s.compactWG.Add(1)
		go s.compactLoop()
	}
	return s, nil
}

// replayFile replays a snapshot/WAL file into mem; a missing file is fine.
func replayFile(mem *RowStore, path string) error {
	_, err := replayFileCount(mem, path)
	return err
}

// replayFileCount replays path into mem, returning the number of records
// applied. A torn trailing record (crash mid-append) ends the replay
// cleanly; any earlier corruption is a real error.
func replayFileCount(mem *RowStore, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, fmt.Errorf("db: recover %s: %w", path, err)
	}
	defer f.Close()
	dec := gob.NewDecoder(f)
	n := 0
	for {
		var rec walRecord
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return n, nil
			}
			return n, fmt.Errorf("db: recover %s: record %d: %w", path, n+1, err)
		}
		var applyErr error
		switch rec.Op {
		case 'P':
			applyErr = mem.Put(rec.Table, rec.Key, rec.Value)
		case 'D':
			applyErr = mem.Delete(rec.Table, rec.Key)
		default:
			applyErr = fmt.Errorf("db: recover %s: unknown op %q", path, rec.Op)
		}
		if applyErr != nil {
			return n, applyErr
		}
		n++
	}
}

func (s *DurableStore) compactLoop() {
	defer s.compactWG.Done()
	ticker := time.NewTicker(s.compactInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopCompact:
			return
		case <-ticker.C:
			s.Compact()
		}
	}
}

// append writes one WAL record, then applies fn to the in-memory state, and
// compacts when the WAL has grown past the threshold.
func (s *DurableStore) append(rec walRecord, fn func() error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.broken != nil {
		return s.broken
	}
	if err := s.walEnc.Encode(rec); err != nil {
		// The failed encode may have written part of the record, leaving a
		// torn region in the MIDDLE of the log once later appends succeed —
		// which recovery only tolerates at the tail. The mutation was not
		// applied, so the in-memory state is consistent: compact now to
		// snapshot it and rotate the damaged log away. If compaction also
		// fails (the disk is truly gone), refuse further mutations; reads
		// and Close keep working.
		if cerr := s.compactLocked(); cerr != nil {
			s.broken = fmt.Errorf("db: wal unwritable: %v (compaction failed too: %v)", err, cerr)
			return s.broken
		}
		return fmt.Errorf("db: wal append: %w", err)
	}
	if err := fn(); err != nil {
		return err
	}
	s.walN++
	if s.compactEvery > 0 && s.walN >= s.compactEvery {
		return s.compactLocked()
	}
	return nil
}

func (s *DurableStore) Put(table, key string, value []byte) error {
	return s.append(walRecord{Op: 'P', Table: table, Key: key, Value: value}, func() error {
		return s.mem.Put(table, key, value)
	})
}

func (s *DurableStore) Delete(table, key string) error {
	return s.append(walRecord{Op: 'D', Table: table, Key: key}, func() error {
		return s.mem.Delete(table, key)
	})
}

func (s *DurableStore) Get(table, key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	return s.mem.Get(table, key)
}

func (s *DurableStore) Keys(table string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	return s.mem.Keys(table)
}

func (s *DurableStore) Scan(table string, fn func(key string, value []byte) bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.mem.Scan(table, fn)
}

// Len reports the number of rows in a table.
func (s *DurableStore) Len(table string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.Len(table)
}

// SnapshotTo serialises the full current state to w as a WAL stream of puts
// (the replication feed's snapshot format), without touching the on-disk
// snapshot or rotating the log.
func (s *DurableStore) SnapshotTo(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.mem.Snapshot(w)
}

// WALRecords reports the records appended since the last compaction (the
// length of the replay a crash right now would pay on top of the snapshot).
func (s *DurableStore) WALRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walN
}

// Compact checkpoints the store: the full state is written to a fresh
// snapshot (atomically, via rename) and the WAL is rotated to empty. After
// a crash, recovery replays the snapshot plus only the post-compaction log.
func (s *DurableStore) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

func (s *DurableStore) compactLocked() error {
	tmp := filepath.Join(s.dir, snapshotFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("db: compact: %w", err)
	}
	if err := s.mem.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("db: compact: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("db: compact: sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("db: compact: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotFile)); err != nil {
		return fmt.Errorf("db: compact: publish snapshot: %w", err)
	}
	// Rotate the log: everything up to this instant is in the snapshot.
	if err := s.walF.Close(); err != nil {
		return fmt.Errorf("db: compact: rotate wal: %w", err)
	}
	walF, err := os.OpenFile(filepath.Join(s.dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("db: compact: rotate wal: %w", err)
	}
	s.walF = walF
	s.walEnc = gob.NewEncoder(walF)
	s.walN = 0
	return nil
}

// Close stops the compaction timer, flushes the WAL file and closes the
// store. Operations after Close return ErrClosed.
func (s *DurableStore) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.stopCompact)
	s.mu.Unlock()
	s.compactWG.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.walF.Sync()
	if cerr := s.walF.Close(); err == nil {
		err = cerr
	}
	if merr := s.mem.Close(); err == nil {
		err = merr
	}
	return err
}
