package db

import (
	"sync"
)

// Pool is the DBCP substitute: a bounded pool of live connections to a db
// Server. Acquiring from the pool reuses an idle connection when one exists
// and dials a new one otherwise, up to Max concurrent connections; further
// acquirers block until a connection is released.
type Pool struct {
	addr string
	max  int

	mu     sync.Mutex
	cond   *sync.Cond
	idle   []*Conn
	live   int
	closed bool
}

// NewPool creates a pool of at most max connections to the server at addr.
// A max of zero or less defaults to 8, DBCP's historical default ballpark.
func NewPool(addr string, max int) *Pool {
	if max <= 0 {
		max = 8
	}
	p := &Pool{addr: addr, max: max}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// acquire returns a live connection, blocking when the pool is exhausted.
func (p *Pool) acquire() (*Conn, error) {
	p.mu.Lock()
	for {
		if p.closed {
			p.mu.Unlock()
			return nil, ErrClosed
		}
		if n := len(p.idle); n > 0 {
			c := p.idle[n-1]
			p.idle = p.idle[:n-1]
			p.mu.Unlock()
			return c, nil
		}
		if p.live < p.max {
			p.live++
			p.mu.Unlock()
			c, err := DialConn(p.addr)
			if err != nil {
				p.mu.Lock()
				p.live--
				p.cond.Signal()
				p.mu.Unlock()
				return nil, err
			}
			return c, nil
		}
		p.cond.Wait()
	}
}

// release returns a connection to the idle list; a broken connection should
// be discarded with discard instead.
func (p *Pool) release(c *Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		p.live--
		c.Close()
		return
	}
	p.idle = append(p.idle, c)
	p.cond.Signal()
}

// discard closes a broken connection and frees its pool slot.
func (p *Pool) discard(c *Conn) {
	c.Close()
	p.mu.Lock()
	p.live--
	p.cond.Signal()
	p.mu.Unlock()
}

// Stats reports current pool occupancy: live connections and idle ones.
func (p *Pool) Stats() (live, idle int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live, len(p.idle)
}

// with runs fn on a pooled connection, recycling it on success and
// discarding it on error.
func (p *Pool) with(fn func(*Conn) error) error {
	c, err := p.acquire()
	if err != nil {
		return err
	}
	if err := fn(c); err != nil {
		p.discard(c)
		return err
	}
	p.release(c)
	return nil
}

// Put implements Store.
func (p *Pool) Put(table, key string, value []byte) error {
	return p.with(func(c *Conn) error { return c.Put(table, key, value) })
}

// Get implements Store.
func (p *Pool) Get(table, key string) (v []byte, found bool, err error) {
	err = p.with(func(c *Conn) error {
		v, found, err = c.Get(table, key)
		return err
	})
	return v, found, err
}

// Delete implements Store.
func (p *Pool) Delete(table, key string) error {
	return p.with(func(c *Conn) error { return c.Delete(table, key) })
}

// Keys implements Store.
func (p *Pool) Keys(table string) (keys []string, err error) {
	err = p.with(func(c *Conn) error {
		keys, err = c.Keys(table)
		return err
	})
	return keys, err
}

// Scan implements Store.
func (p *Pool) Scan(table string, fn func(string, []byte) bool) error {
	return p.with(func(c *Conn) error { return c.Scan(table, fn) })
}

// Close closes every idle connection and marks the pool closed. Connections
// currently in use are closed as they are released.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	for _, c := range p.idle {
		c.Close()
		p.live--
	}
	p.idle = nil
	p.cond.Broadcast()
	return nil
}
