package db

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"testing"
)

// encodeWAL renders records as the gob stream OpenDurable replays.
func encodeWAL(t testing.TB, recs ...walRecord) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// walTables decodes as much of a WAL byte stream as is well-formed and
// returns the table names it mentions — the replay's reachable state space,
// used to diff recovered stores.
func walTables(wal []byte) map[string]bool {
	tables := make(map[string]bool)
	dec := gob.NewDecoder(bytes.NewReader(wal))
	for {
		var rec walRecord
		if err := dec.Decode(&rec); err != nil {
			return tables
		}
		tables[rec.Table] = true
	}
}

// dumpTable snapshots one table as a key->value map.
func dumpTable(t *testing.T, s *DurableStore, table string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	if err := s.Scan(table, func(k string, v []byte) bool {
		out[k] = string(v)
		return true
	}); err != nil {
		t.Fatalf("scan %q: %v", table, err)
	}
	return out
}

// FuzzReplay throws arbitrary bytes at the WAL recovery path: whatever is
// on disk — a clean log, a torn tail from a crash mid-append, or outright
// garbage — OpenDurable must never panic, and any state it does accept must
// be stable: recovery compacts into a snapshot, and a clean close + re-open
// must reproduce exactly the same rows.
func FuzzReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a gob stream at all"))
	clean := encodeWAL(f,
		walRecord{Op: 'P', Table: "data", Key: "uid-1", Value: []byte("alpha")},
		walRecord{Op: 'P', Table: "locators", Key: "uid-1", Value: []byte("host-a")},
		walRecord{Op: 'D', Table: "data", Key: "uid-1"},
		walRecord{Op: 'P', Table: "data", Key: "uid-2", Value: []byte("beta")},
	)
	f.Add(clean)
	f.Add(clean[:len(clean)-3])                                            // torn tail: crash mid-append
	f.Add(encodeWAL(f, walRecord{Op: 'X', Table: "data", Key: "k"}))       // unknown op
	f.Add(encodeWAL(f, walRecord{Op: 'D', Table: "ghost", Key: "absent"})) // delete of a row never put

	f.Fuzz(func(t *testing.T, wal []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walFile), wal, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenDurable(dir)
		if err != nil {
			return // rejected log: only the absence of panics matters
		}
		tables := walTables(wal)
		before := make(map[string]map[string]string)
		for table := range tables {
			before[table] = dumpTable(t, s, table)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}

		// Recovery already compacted the accepted state into a snapshot; a
		// re-open must reproduce it exactly.
		s2, err := OpenDurable(dir)
		if err != nil {
			t.Fatalf("re-open of a cleanly closed store: %v", err)
		}
		defer s2.Close()
		for table := range tables {
			after := dumpTable(t, s2, table)
			if len(after) != len(before[table]) {
				t.Fatalf("table %q: %d rows recovered, %d after re-open", table, len(before[table]), len(after))
			}
			for k, v := range before[table] {
				got, ok := after[k]
				if !ok || got != v {
					t.Fatalf("table %q key %q: recovered %q, re-opened %q (present=%v)", table, k, v, got, ok)
				}
			}
		}
	})
}
