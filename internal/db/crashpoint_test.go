package db

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Crash-point recovery matrix for DurableStore: a crash can truncate the
// WAL at ANY byte, not just at a record boundary, and can die between
// writing the snapshot temp file and publishing it. durable_test.go covers
// the happy paths and one torn tail; this file sweeps every truncation
// point of the last record (and, for a small store, of the whole log) and
// the partial-compaction leftovers, asserting the recovery contract at
// each: everything before the cut survives, the torn record is dropped,
// and the reopened store keeps accepting and persisting writes.

// buildWAL opens a store in dir, applies n sequential puts with
// compaction disabled, closes it, and returns the WAL size after each
// record (boundaries[i] = file size once records 0..i are appended).
func buildWAL(t *testing.T, dir string, n int) (boundaries []int64) {
	t.Helper()
	s, err := OpenDurable(dir, WithCompactEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, "wal.gob")
	for i := 0; i < n; i++ {
		if err := s.Put("t", key(i), []byte(val(i))); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(wal)
		if err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, st.Size())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return boundaries
}

func key(i int) string { return fmt.Sprintf("key-%03d", i) }
func val(i int) string { return fmt.Sprintf("value-%03d", i) }

// copyDir clones the state directory so each crash point starts from the
// identical pre-crash image.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// recoverAt truncates the clone's WAL to cut bytes, reopens, and returns
// the recovered store (the caller closes it).
func recoverAt(t *testing.T, dir string, cut int64) *DurableStore {
	t.Helper()
	if err := os.Truncate(filepath.Join(dir, "wal.gob"), cut); err != nil {
		t.Fatal(err)
	}
	s, err := OpenDurable(dir, WithCompactEvery(-1))
	if err != nil {
		t.Fatalf("recovery at cut %d: %v", cut, err)
	}
	return s
}

// expectRecords asserts the store holds exactly records 0..n-1.
func expectRecords(t *testing.T, s *DurableStore, n int, cut int64) {
	t.Helper()
	if got := s.Len("t"); got != n {
		t.Fatalf("cut %d: recovered %d records, want %d", cut, got, n)
	}
	for i := 0; i < n; i++ {
		raw, ok, err := s.Get("t", key(i))
		if err != nil || !ok || string(raw) != val(i) {
			t.Fatalf("cut %d: record %d = %q, %v, %v", cut, i, raw, ok, err)
		}
	}
}

// TestTornWriteMatrixLastRecord truncates the WAL at EVERY byte boundary
// of the last record: each cut must recover all earlier records, drop the
// torn one (except the full-length cut, which keeps it), and leave a store
// that persists further writes across another clean restart.
func TestTornWriteMatrixLastRecord(t *testing.T) {
	const records = 5
	master := t.TempDir()
	boundaries := buildWAL(t, master, records)
	prevEnd := boundaries[records-2] // WAL size before the last record
	end := boundaries[records-1]
	if end <= prevEnd {
		t.Fatalf("last record occupies no bytes: %d..%d", prevEnd, end)
	}

	for cut := prevEnd; cut <= end; cut++ {
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("cut-%d", cut))
		copyDir(t, master, dir)
		s := recoverAt(t, dir, cut)

		want := records - 1
		if cut == end {
			want = records // nothing torn at full length
		}
		expectRecords(t, s, want, cut)

		// The recovered store must keep working: write one more record
		// (its own table, so the matrix count stays pure), close, reopen,
		// and find everything again.
		if err := s.Put("post", "post-crash", []byte("alive")); err != nil {
			t.Fatalf("cut %d: write after recovery: %v", cut, err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		s2, err := OpenDurable(dir, WithCompactEvery(-1))
		if err != nil {
			t.Fatalf("cut %d: second recovery: %v", cut, err)
		}
		expectRecords(t, s2, want, cut)
		if raw, ok, err := s2.Get("post", "post-crash"); err != nil || !ok || string(raw) != "alive" {
			t.Fatalf("cut %d: post-crash record = %q, %v, %v", cut, raw, ok, err)
		}
		s2.Close()
	}
}

// TestTornWriteMatrixWholeLog sweeps every byte of a small WAL, not just
// the final record, pinning that recovery yields a clean prefix at every
// cut: exactly the records wholly contained below the cut, never a later
// record without an earlier one, never an error.
func TestTornWriteMatrixWholeLog(t *testing.T) {
	const records = 3
	master := t.TempDir()
	boundaries := buildWAL(t, master, records)
	end := boundaries[records-1]

	for cut := int64(0); cut <= end; cut++ {
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("cut-%d", cut))
		copyDir(t, master, dir)
		s := recoverAt(t, dir, cut)

		// The expected prefix: records whose boundary is at or below cut.
		want := 0
		for _, b := range boundaries {
			if b <= cut {
				want++
			}
		}
		expectRecords(t, s, want, cut)
		s.Close()
	}
}

// TestCrashDuringCompactionLeavesTmpIgnored simulates dying between
// writing snapshot.gob.tmp and the atomic rename: recovery must ignore the
// temp file — whatever garbage it holds — recover from the published
// snapshot + WAL, and the next compaction must replace the leftovers.
func TestCrashDuringCompactionLeavesTmpIgnored(t *testing.T) {
	dir := t.TempDir()
	buildWAL(t, dir, 4)

	for _, junk := range [][]byte{nil, []byte("garbage, not gob"), make([]byte, 1<<16)} {
		if err := os.WriteFile(filepath.Join(dir, "snapshot.gob.tmp"), junk, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenDurable(dir, WithCompactEvery(-1))
		if err != nil {
			t.Fatalf("recovery with %d-byte tmp snapshot: %v", len(junk), err)
		}
		expectRecords(t, s, 4, -1)
		// A fresh compaction must atomically supersede the leftover.
		if err := s.Compact(); err != nil {
			t.Fatalf("compaction over leftover tmp: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s2, err := OpenDurable(dir, WithCompactEvery(-1))
		if err != nil {
			t.Fatal(err)
		}
		expectRecords(t, s2, 4, -1)
		s2.Close()
	}
}

// TestTornSnapshotTailRecovers truncates the SNAPSHOT mid-record. A
// published snapshot should never be torn (it is fsynced before the
// rename), but recovery treats a torn snapshot tail like a torn WAL tail —
// the surviving prefix loads — rather than refusing to start.
func TestTornSnapshotTailRecovers(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(dir, WithCompactEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Put("t", key(i), []byte(val(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil { // everything moves into the snapshot
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	snap := filepath.Join(dir, "snapshot.gob")
	st, err := os.Stat(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(snap, st.Size()-1); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenDurable(dir, WithCompactEvery(-1))
	if err != nil {
		t.Fatalf("recovery from torn snapshot tail: %v", err)
	}
	defer s2.Close()
	if got := s2.Len("t"); got != 3 {
		t.Fatalf("torn snapshot recovered %d records, want 3 (last one torn off)", got)
	}
}
