package db

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func collectFeed(t *testing.T, f *Feed, n int) []Mutation {
	t.Helper()
	out := make([]Mutation, 0, n)
	for m := range f.C() {
		out = append(out, m)
		if len(out) == n {
			return out
		}
	}
	t.Fatalf("feed closed after %d of %d mutations (err %v)", len(out), n, f.Err())
	return nil
}

// TestFeedStoreStream pins the core contract: every write through the
// FeedStore arrives on a subscription, in order, with contiguous sequence
// numbers starting just past the snapshot watermark.
func TestFeedStoreStream(t *testing.T) {
	fs, err := NewFeedStore(NewRowStore(), 7)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if fs.Epoch() != 7 {
		t.Fatalf("epoch = %d, want 7", fs.Epoch())
	}

	if err := fs.Put("t", "pre", []byte("x")); err != nil {
		t.Fatal(err)
	}
	seq, snap, feed, err := fs.SnapshotAndFollow(64)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Fatalf("snapshot watermark = %d, want 1", seq)
	}
	if len(snap) != 1 || snap[0].Key != "pre" || snap[0].Op != 'P' {
		t.Fatalf("snapshot = %+v", snap)
	}

	if err := fs.Put("t", "a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("t", "pre"); err != nil {
		t.Fatal(err)
	}
	got := collectFeed(t, feed, 2)
	if got[0].Seq != 2 || got[0].Op != 'P' || got[0].Key != "a" {
		t.Fatalf("first tail mutation = %+v", got[0])
	}
	if got[1].Seq != 3 || got[1].Op != 'D' || got[1].Key != "pre" {
		t.Fatalf("second tail mutation = %+v", got[1])
	}

	// Reads pass through.
	v, ok, err := fs.Get("t", "a")
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
	if _, ok, _ := fs.Get("t", "pre"); ok {
		t.Fatal("deleted key still readable")
	}
}

// TestFeedStoreOverflow pins the backpressure policy: a subscriber that
// falls further behind than its buffer is dropped with ErrFeedLost rather
// than stalling the write path, and other subscribers are unaffected.
func TestFeedStoreOverflow(t *testing.T) {
	fs, err := NewFeedStore(NewRowStore(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	_, _, slow, err := fs.SnapshotAndFollow(2)
	if err != nil {
		t.Fatal(err)
	}
	_, _, fast, err := fs.SnapshotAndFollow(64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := fs.Put("t", fmt.Sprintf("k%d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	// slow's buffer (2) overflowed on the third put: dropped with ErrFeedLost.
	n := 0
	for range slow.C() {
		n++
	}
	if n != 2 || slow.Err() != ErrFeedLost {
		t.Fatalf("slow subscription: %d buffered, err %v; want 2, ErrFeedLost", n, slow.Err())
	}
	// fast saw everything.
	got := collectFeed(t, fast, 5)
	for i, m := range got {
		if m.Seq != uint64(i+1) {
			t.Fatalf("fast mutation %d has seq %d", i, m.Seq)
		}
	}
}

// TestFeedStoreSnapshotAtomicity hammers SnapshotAndFollow against
// concurrent writers: for every subscription, snapshot ∪ tail must replay
// to a state with no gaps or duplicates — the watermark and the first tail
// seq always meet exactly.
func TestFeedStoreSnapshotAtomicity(t *testing.T) {
	fs, err := NewFeedStore(NewRowStore(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	const writes = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			_ = fs.Put("t", fmt.Sprintf("k%d", i), []byte{byte(i)})
		}
	}()
	for i := 0; i < 20; i++ {
		seq, snap, feed, err := fs.SnapshotAndFollow(writes + 8)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(len(snap)) != seq {
			t.Fatalf("snapshot has %d rows at watermark %d (all writes are distinct keys)", len(snap), seq)
		}
		// The first tail mutation, if the writer is still going, is seq+1.
		select {
		case m, ok := <-feed.C():
			if ok && m.Seq != seq+1 {
				t.Fatalf("watermark %d followed by tail seq %d", seq, m.Seq)
			}
		default:
		}
		feedDrop(fs, feed)
	}
	wg.Wait()
}

// feedDrop unsubscribes a feed (test helper: prod subscribers just stop
// draining and let overflow drop them).
func feedDrop(fs *FeedStore, f *Feed) {
	fs.mu.Lock()
	for i, s := range fs.subs {
		if s == f {
			fs.subs = append(fs.subs[:i], fs.subs[i+1:]...)
			break
		}
	}
	fs.mu.Unlock()
	f.drop(nil)
}

// TestFeedStoreClose pins orderly shutdown: Close closes every
// subscription channel with a nil error, refuses further writes, and
// leaves the inner store open (ownership stays with whoever opened it).
func TestFeedStoreClose(t *testing.T) {
	inner := NewRowStore()
	fs, err := NewFeedStore(inner, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, _, feed, err := fs.SnapshotAndFollow(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-feed.C(); ok {
		t.Fatal("subscription channel not closed")
	}
	if feed.Err() != nil {
		t.Fatalf("orderly close reported err %v", feed.Err())
	}
	if err := inner.Put("t", "k", nil); err != nil {
		t.Fatalf("inner store closed by FeedStore.Close: %v", err)
	}
	if err := fs.Put("t", "k2", nil); err != ErrClosed {
		t.Fatalf("feed Put after Close: %v", err)
	}
	if _, _, _, err := fs.SnapshotAndFollow(1); err != ErrClosed {
		t.Fatalf("SnapshotAndFollow after Close: %v", err)
	}
}

// TestFeedStoreBypass pins the deliberate hole: writes on the inner store
// do not enter the feed (the replication layer stores replica-namespace
// rows that way, and they must never re-enter the primary stream).
func TestFeedStoreBypass(t *testing.T) {
	inner := NewRowStore()
	fs, err := NewFeedStore(inner, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	_, _, feed, err := fs.SnapshotAndFollow(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Inner().Put("r0!t", "k", []byte("replica row")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Put("t", "k", nil); err != nil {
		t.Fatal(err)
	}
	m := collectFeed(t, feed, 1)[0]
	if m.Table != "t" || m.Seq != 1 {
		t.Fatalf("feed saw %+v; bypass write leaked into the stream", m)
	}
}

// TestDecodeMutations pins the WAL-stream bridge: a RowStore snapshot and a
// durable WAL both decode into mutations, and a torn tail is dropped
// silently, matching durable recovery.
func TestDecodeMutations(t *testing.T) {
	s := NewRowStore()
	if err := s.Put("a", "k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", "k2", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.SnapshotTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := append([]byte(nil), buf.Bytes()...)
	muts, err := DecodeMutations(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(muts) != 2 || muts[0].Table != "a" || muts[1].Table != "b" {
		t.Fatalf("decoded %+v", muts)
	}
	// Torn tail: drop the last byte; the first record still decodes.
	muts, err = DecodeMutations(full[:len(full)-1])
	if err != nil {
		t.Fatal(err)
	}
	if len(muts) != 1 || muts[0].Key != "k1" {
		t.Fatalf("torn-tail decode = %+v", muts)
	}
}

// TestFeedStoreOverDurable runs the stream contract over a DurableStore
// inner: SnapshotTo cuts the same canonical WAL-of-puts stream, and a
// reopened store serves the identical state (the primary-recovery path).
func TestFeedStoreOverDurable(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewFeedStore(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Put("t", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	seq, snap, _, err := fs.SnapshotAndFollow(4)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 || len(snap) != 1 || string(snap[0].Value) != "v" {
		t.Fatalf("durable snapshot: seq %d, %+v", seq, snap)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	v, ok, err := re.Get("t", "k")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("reopened durable: %q %v %v", v, ok, err)
	}
}
