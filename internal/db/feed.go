package db

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"
)

// The mutation feed turns a Store into a shippable ordered stream: every
// Put/Delete that flows through a FeedStore is assigned a monotonically
// increasing sequence number and broadcast to subscribers, and the full
// state can be cut as a snapshot that is atomic with respect to the
// sequence counter. A primary shard wraps its live store in a FeedStore and
// ships the stream to its replicas (internal/repl); the snapshot + tail is
// exactly the WAL-shipping protocol of the paper's replicated descendants
// (Sector/Sphere's replicated user data, BlobSeer's versioned metadata).
//
// Epochs: every FeedStore carries an epoch minted at construction. A
// restarted primary recovers its state from disk but NOT its in-memory
// sequence counter, so its stream restarts under a fresh epoch; a replica
// holding (epoch, seq) state for the old stream detects the mismatch and
// resynchronises from a snapshot instead of splicing two incommensurable
// sequence spaces together.

// Mutation is one entry of the replication stream: a WAL record plus its
// position in the primary's stream. Seq is 0 inside snapshots (a snapshot
// is an unordered bag of puts covered by the snapshot's own seq watermark).
type Mutation struct {
	Seq   uint64
	Op    byte // 'P' put, 'D' delete
	Table string
	Key   string
	Value []byte
}

// ErrFeedLost marks a subscription that fell further behind than its buffer:
// the subscriber must resynchronise from a fresh snapshot.
var ErrFeedLost = errors.New("db: feed subscription lost (buffer overflow)")

// snapshotter is satisfied by stores whose full state can be serialised as
// a WAL stream of puts (RowStore and DurableStore both qualify).
type snapshotter interface {
	SnapshotTo(w io.Writer) error
}

// FeedStore wraps a Store, numbering and broadcasting every mutation. All
// reads and writes pass through to the inner store; writes additionally
// enter the feed. Writes performed directly on the inner store bypass the
// feed — the replication layer uses that deliberately for replica-namespace
// rows, which must never re-enter the primary stream.
type FeedStore struct {
	inner Store
	snap  snapshotter
	epoch uint64

	mu     sync.Mutex
	seq    uint64
	subs   []*Feed
	closed bool
}

// NewFeedStore wraps inner, minting the stream's epoch. Inner must be able
// to snapshot its full state (RowStore or DurableStore).
func NewFeedStore(inner Store, epoch uint64) (*FeedStore, error) {
	snap, ok := inner.(snapshotter)
	if !ok {
		return nil, fmt.Errorf("db: feed store needs a snapshottable inner store, got %T", inner)
	}
	return &FeedStore{inner: inner, snap: snap, epoch: epoch}, nil
}

// Epoch returns the stream epoch minted at construction.
func (f *FeedStore) Epoch() uint64 { return f.epoch }

// Seq returns the sequence number of the last mutation fed.
func (f *FeedStore) Seq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// Inner returns the wrapped store. Writes through it bypass the feed.
func (f *FeedStore) Inner() Store { return f.inner }

func (f *FeedStore) Put(table, key string, value []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if err := f.inner.Put(table, key, value); err != nil {
		return err
	}
	f.seq++
	f.broadcastLocked(Mutation{Seq: f.seq, Op: 'P', Table: table, Key: key, Value: value})
	return nil
}

func (f *FeedStore) Delete(table, key string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if err := f.inner.Delete(table, key); err != nil {
		return err
	}
	f.seq++
	f.broadcastLocked(Mutation{Seq: f.seq, Op: 'D', Table: table, Key: key})
	return nil
}

func (f *FeedStore) Get(table, key string) ([]byte, bool, error) {
	return f.inner.Get(table, key)
}

func (f *FeedStore) Keys(table string) ([]string, error) { return f.inner.Keys(table) }

func (f *FeedStore) Scan(table string, fn func(key string, value []byte) bool) error {
	return f.inner.Scan(table, fn)
}

// Close ends the feed: every subscription channel is closed (with a nil
// Err) and further writes or SnapshotAndFollow calls fail with ErrClosed.
// The inner store is NOT closed — the feed is a wrapper, and ownership of
// the store stays with whoever opened it.
func (f *FeedStore) Close() error {
	f.mu.Lock()
	subs := f.subs
	f.subs = nil
	f.closed = true
	f.mu.Unlock()
	for _, s := range subs {
		s.drop(nil)
	}
	return nil
}

// broadcastLocked hands one mutation to every live subscription. A
// subscription whose buffer is full is dropped with ErrFeedLost — the
// subscriber resynchronises from a snapshot rather than stalling the
// primary's write path.
func (f *FeedStore) broadcastLocked(m Mutation) {
	live := f.subs[:0]
	for _, s := range f.subs {
		select {
		case s.ch <- m:
			live = append(live, s)
		default:
			s.drop(ErrFeedLost)
		}
	}
	f.subs = live
}

// SnapshotAndFollow atomically cuts a full-state snapshot and opens a
// subscription delivering every mutation after it: the snapshot covers
// sequence numbers up to the returned seq, and the subscription's first
// mutation (if any ever arrives) carries seq+1. buf bounds how far the
// subscriber may fall behind before the subscription is dropped with
// ErrFeedLost.
func (f *FeedStore) SnapshotAndFollow(buf int) (seq uint64, snapshot []Mutation, feed *Feed, err error) {
	if buf < 1 {
		buf = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, nil, nil, ErrClosed
	}
	var b bytes.Buffer
	if err := f.snap.SnapshotTo(&b); err != nil {
		return 0, nil, nil, fmt.Errorf("db: feed snapshot: %w", err)
	}
	snapshot, err = DecodeMutations(b.Bytes())
	if err != nil {
		return 0, nil, nil, err
	}
	feed = &Feed{ch: make(chan Mutation, buf), done: make(chan struct{})}
	f.subs = append(f.subs, feed)
	return f.seq, snapshot, feed, nil
}

// Unsubscribe removes one subscription from the feed and closes its
// channel (with a nil Err, like an orderly store close). A no-op for
// subscriptions already dropped. Mutations already buffered in the
// channel stay readable until the close is drained.
func (f *FeedStore) Unsubscribe(feed *Feed) {
	f.mu.Lock()
	live := f.subs[:0]
	for _, s := range f.subs {
		if s != feed {
			live = append(live, s)
		}
	}
	f.subs = live
	f.mu.Unlock()
	feed.drop(nil)
}

// Feed is one subscription to a FeedStore's mutation stream.
type Feed struct {
	ch chan Mutation

	mu   sync.Mutex
	err  error
	done chan struct{}
}

// C is the delivery channel. It is closed when the subscription ends;
// check Err to distinguish a lost subscription from a closed store.
func (s *Feed) C() <-chan Mutation { return s.ch }

// Err reports why the subscription ended (ErrFeedLost after overflow, nil
// after an orderly close), meaningful once C is closed.
func (s *Feed) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *Feed) drop(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.done:
		return
	default:
	}
	s.err = err
	close(s.done)
	close(s.ch)
}

// DecodeMutations parses a serialised WAL/snapshot stream (as written by
// SnapshotTo or the durable WAL) into mutations with Seq 0, tolerating a
// torn trailing record exactly like durable recovery does.
func DecodeMutations(raw []byte) ([]Mutation, error) {
	dec := gob.NewDecoder(bytes.NewReader(raw))
	var out []Mutation
	for {
		var rec walRecord
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return out, nil
			}
			return out, fmt.Errorf("db: decode mutations: record %d: %w", len(out)+1, err)
		}
		out = append(out, Mutation{Op: rec.Op, Table: rec.Table, Key: rec.Key, Value: rec.Value})
	}
}
