package db

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"
)

// dbRequest is one wire operation against a networked store.
type dbRequest struct {
	Op    byte // 'P' put, 'G' get, 'D' delete, 'K' keys, 'C' close
	Table string
	Key   string
	Value []byte
}

type dbResponse struct {
	Value []byte
	Keys  []string
	Found bool
	Err   string
}

// Server exposes a Store over TCP, playing the role of the MySQL server in
// the paper's evaluation: a separate engine reached through a client/server
// protocol, so every operation pays a real round trip.
type Server struct {
	store Store
	lis   net.Listener
	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  chan struct{}
	wg    sync.WaitGroup
}

// NewServer serves store on addr ("127.0.0.1:0" picks a free port).
func NewServer(store Store, addr string) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("db: listen %s: %w", addr, err)
	}
	s := &Server{store: store, lis: lis, conns: make(map[net.Conn]struct{}), done: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops the server and severs every client connection.
func (s *Server) Close() error {
	select {
	case <-s.done:
		return nil
	default:
	}
	close(s.done)
	err := s.lis.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req dbRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp dbResponse
		switch req.Op {
		case 'P':
			if err := s.store.Put(req.Table, req.Key, req.Value); err != nil {
				resp.Err = err.Error()
			}
		case 'G':
			v, ok, err := s.store.Get(req.Table, req.Key)
			resp.Value, resp.Found = v, ok
			if err != nil {
				resp.Err = err.Error()
			}
		case 'D':
			if err := s.store.Delete(req.Table, req.Key); err != nil {
				resp.Err = err.Error()
			}
		case 'K':
			keys, err := s.store.Keys(req.Table)
			resp.Keys = keys
			if err != nil {
				resp.Err = err.Error()
			}
		case 'C':
			_ = enc.Encode(resp)
			return
		default:
			resp.Err = fmt.Sprintf("db: unknown op %q", req.Op)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// Conn is one live client connection to a db Server; it implements Store.
// A Conn serialises its own operations and is safe for concurrent use, but
// concurrent callers should prefer a Pool of Conns.
type Conn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// DialConn opens one connection to a db Server.
func DialConn(addr string) (*Conn, error) {
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("db: dial %s: %w", addr, err)
	}
	return &Conn{conn: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}, nil
}

func (c *Conn) roundTrip(req dbRequest) (dbResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return dbResponse{}, fmt.Errorf("db: send: %w", err)
	}
	var resp dbResponse
	if err := c.dec.Decode(&resp); err != nil {
		return dbResponse{}, fmt.Errorf("db: recv: %w", err)
	}
	if resp.Err != "" {
		return resp, fmt.Errorf("db: server: %s", resp.Err)
	}
	return resp, nil
}

func (c *Conn) Put(table, key string, value []byte) error {
	_, err := c.roundTrip(dbRequest{Op: 'P', Table: table, Key: key, Value: value})
	return err
}

func (c *Conn) Get(table, key string) ([]byte, bool, error) {
	resp, err := c.roundTrip(dbRequest{Op: 'G', Table: table, Key: key})
	if err != nil {
		return nil, false, err
	}
	return resp.Value, resp.Found, nil
}

func (c *Conn) Delete(table, key string) error {
	_, err := c.roundTrip(dbRequest{Op: 'D', Table: table, Key: key})
	return err
}

func (c *Conn) Keys(table string) ([]string, error) {
	resp, err := c.roundTrip(dbRequest{Op: 'K', Table: table})
	if err != nil {
		return nil, err
	}
	return resp.Keys, nil
}

func (c *Conn) Scan(table string, fn func(key string, value []byte) bool) error {
	keys, err := c.Keys(table)
	if err != nil {
		return err
	}
	for _, k := range keys {
		v, ok, err := c.Get(table, k)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if !fn(k, v) {
			return nil
		}
	}
	return nil
}

func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_ = c.enc.Encode(dbRequest{Op: 'C'})
	return c.conn.Close()
}

// UnpooledStore implements Store by dialling a fresh connection for every
// single operation — exactly the behaviour the paper measured for MySQL
// "without DBCP", which it found to be a clear bottleneck (Table 2).
type UnpooledStore struct {
	addr string
}

// NewUnpooledStore returns a connection-per-operation client of the db
// server at addr.
func NewUnpooledStore(addr string) *UnpooledStore { return &UnpooledStore{addr: addr} }

func (u *UnpooledStore) with(fn func(*Conn) error) error {
	c, err := DialConn(u.addr)
	if err != nil {
		return err
	}
	defer c.Close()
	return fn(c)
}

func (u *UnpooledStore) Put(table, key string, value []byte) error {
	return u.with(func(c *Conn) error { return c.Put(table, key, value) })
}

func (u *UnpooledStore) Get(table, key string) (v []byte, found bool, err error) {
	err = u.with(func(c *Conn) error {
		v, found, err = c.Get(table, key)
		return err
	})
	return v, found, err
}

func (u *UnpooledStore) Delete(table, key string) error {
	return u.with(func(c *Conn) error { return c.Delete(table, key) })
}

func (u *UnpooledStore) Keys(table string) (keys []string, err error) {
	err = u.with(func(c *Conn) error {
		keys, err = c.Keys(table)
		return err
	})
	return keys, err
}

func (u *UnpooledStore) Scan(table string, fn func(string, []byte) bool) error {
	return u.with(func(c *Conn) error { return c.Scan(table, fn) })
}

func (u *UnpooledStore) Close() error { return nil }
