// Package db provides the SQL-database back-end of the BitDew runtime
// (paper §3.5). The original prototype persisted objects through Java JDO
// into either MySQL (a networked server reached through a client/server
// JDBC protocol) or HsqlDB (an embedded engine living in the service's
// process), optionally in front of the DBCP connection pool.
//
// This package reproduces the same three design axes with real costs:
//
//   - RowStore is the embedded engine (HsqlDB role): an in-process,
//     mutex-protected table store with optional write-ahead logging.
//   - Server/Client expose any Store over TCP (MySQL role): every operation
//     pays a real network round trip, and — exactly like JDBC without a
//     pool — an unpooled client dials a fresh connection per operation.
//   - Pool is the DBCP substitute: a bounded pool of live connections.
package db

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
)

// ErrClosed is returned by operations on a closed store or pool.
var ErrClosed = errors.New("db: closed")

// Store is the persistence interface used by every BitDew service that
// serialises objects (Data Catalog, Data Scheduler, Data Repository
// metadata). Keys are unique within a table.
type Store interface {
	// Put stores value under (table, key), overwriting any previous value.
	Put(table, key string, value []byte) error
	// Get retrieves the value under (table, key); found is false when the
	// key is absent.
	Get(table, key string) (value []byte, found bool, err error)
	// Delete removes (table, key); deleting an absent key is not an error.
	Delete(table, key string) error
	// Keys lists the keys of a table in sorted order.
	Keys(table string) ([]string, error)
	// Scan visits every (key, value) of a table in sorted key order until
	// fn returns false.
	Scan(table string, fn func(key string, value []byte) bool) error
	// Close releases resources. Operations after Close return ErrClosed.
	Close() error
}

// walRecord is one write-ahead-log entry.
type walRecord struct {
	Op    byte // 'P' put, 'D' delete
	Table string
	Key   string
	Value []byte
}

// RowStore is the embedded engine. The zero value is not usable; call
// NewRowStore. All methods are safe for concurrent use.
type RowStore struct {
	mu     sync.RWMutex
	tables map[string]map[string][]byte
	wal    *gob.Encoder
	walW   io.Writer
	closed bool
}

// RowStoreOption configures a RowStore.
type RowStoreOption func(*RowStore)

// WithWAL makes every mutation append a gob record to w before it is
// applied, so the store's state can be rebuilt with Replay after a transient
// service-host failure (the paper's fault model for service nodes).
func WithWAL(w io.Writer) RowStoreOption {
	return func(s *RowStore) {
		s.walW = w
		s.wal = gob.NewEncoder(w)
	}
}

// NewRowStore returns an empty embedded store.
func NewRowStore(opts ...RowStoreOption) *RowStore {
	s := &RowStore{tables: make(map[string]map[string][]byte)}
	for _, o := range opts {
		o(s)
	}
	return s
}

func (s *RowStore) Put(table, key string, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.wal != nil {
		if err := s.wal.Encode(walRecord{Op: 'P', Table: table, Key: key, Value: value}); err != nil {
			return fmt.Errorf("db: wal append: %w", err)
		}
	}
	t := s.tables[table]
	if t == nil {
		t = make(map[string][]byte)
		s.tables[table] = t
	}
	t[key] = append([]byte(nil), value...)
	return nil
}

func (s *RowStore) Get(table, key string) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	v, ok := s.tables[table][key]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

func (s *RowStore) Delete(table, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.wal != nil {
		if err := s.wal.Encode(walRecord{Op: 'D', Table: table, Key: key}); err != nil {
			return fmt.Errorf("db: wal append: %w", err)
		}
	}
	delete(s.tables[table], key)
	return nil
}

func (s *RowStore) Keys(table string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	t := s.tables[table]
	keys := make([]string, 0, len(t))
	for k := range t {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

func (s *RowStore) Scan(table string, fn func(key string, value []byte) bool) error {
	keys, err := s.Keys(table)
	if err != nil {
		return err
	}
	for _, k := range keys {
		v, ok, err := s.Get(table, k)
		if err != nil {
			return err
		}
		if !ok {
			continue // deleted concurrently
		}
		if !fn(k, v) {
			return nil
		}
	}
	return nil
}

func (s *RowStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// Len reports the number of rows in a table.
func (s *RowStore) Len(table string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tables[table])
}

// Snapshot serialises the whole store to w as a WAL stream of puts, suitable
// for Replay.
func (s *RowStore) Snapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	enc := gob.NewEncoder(w)
	tables := make([]string, 0, len(s.tables))
	for t := range s.tables {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		keys := make([]string, 0, len(s.tables[t]))
		for k := range s.tables[t] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := enc.Encode(walRecord{Op: 'P', Table: t, Key: k, Value: s.tables[t][k]}); err != nil {
				return err
			}
		}
	}
	return nil
}

// SnapshotTo is Snapshot under the name the replication feed's snapshotter
// interface uses (FeedStore wraps either a RowStore or a DurableStore).
func (s *RowStore) SnapshotTo(w io.Writer) error { return s.Snapshot(w) }

// Replay applies a WAL or snapshot stream from r into the store.
func (s *RowStore) Replay(r io.Reader) error {
	dec := gob.NewDecoder(r)
	for {
		var rec walRecord
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("db: replay: %w", err)
		}
		var err error
		switch rec.Op {
		case 'P':
			err = s.Put(rec.Table, rec.Key, rec.Value)
		case 'D':
			err = s.Delete(rec.Table, rec.Key)
		default:
			err = fmt.Errorf("db: replay: unknown op %q", rec.Op)
		}
		if err != nil {
			return err
		}
	}
}

// Clone copies the store's contents into a fresh RowStore (no WAL).
func (s *RowStore) Clone() *RowStore {
	var buf bytes.Buffer
	out := NewRowStore()
	if err := s.Snapshot(&buf); err != nil {
		return out
	}
	_ = out.Replay(&buf)
	return out
}
