package db

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

// storeFixtures builds each Store implementation over a shared server so the
// whole suite runs against every engine.
func storeFixtures(t *testing.T) map[string]Store {
	t.Helper()
	fixtures := map[string]Store{
		"rowstore": NewRowStore(),
	}
	backing := NewRowStore()
	srv, err := NewServer(backing, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	conn, err := DialConn(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	fixtures["conn"] = conn

	// Separate servers so the engines don't share tables.
	srv2, err := NewServer(NewRowStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv2.Close() })
	fixtures["unpooled"] = NewUnpooledStore(srv2.Addr())

	srv3, err := NewServer(NewRowStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv3.Close() })
	pool := NewPool(srv3.Addr(), 4)
	t.Cleanup(func() { pool.Close() })
	fixtures["pool"] = pool
	return fixtures
}

func TestStoreBasics(t *testing.T) {
	for name, s := range storeFixtures(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put("t", "k1", []byte("v1")); err != nil {
				t.Fatalf("Put: %v", err)
			}
			if err := s.Put("t", "k2", []byte("v2")); err != nil {
				t.Fatalf("Put: %v", err)
			}
			v, ok, err := s.Get("t", "k1")
			if err != nil || !ok || !bytes.Equal(v, []byte("v1")) {
				t.Fatalf("Get k1 = %q %v %v", v, ok, err)
			}
			if _, ok, _ := s.Get("t", "missing"); ok {
				t.Fatal("Get missing: found")
			}
			if _, ok, _ := s.Get("other", "k1"); ok {
				t.Fatal("table isolation broken")
			}
			// Overwrite.
			if err := s.Put("t", "k1", []byte("v1b")); err != nil {
				t.Fatal(err)
			}
			v, _, _ = s.Get("t", "k1")
			if !bytes.Equal(v, []byte("v1b")) {
				t.Fatalf("overwrite: got %q", v)
			}
			keys, err := s.Keys("t")
			if err != nil || !reflect.DeepEqual(keys, []string{"k1", "k2"}) {
				t.Fatalf("Keys = %v, %v", keys, err)
			}
			var visited []string
			if err := s.Scan("t", func(k string, v []byte) bool {
				visited = append(visited, k)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(visited, []string{"k1", "k2"}) {
				t.Fatalf("Scan visited %v", visited)
			}
			// Early-exit scan.
			visited = nil
			s.Scan("t", func(k string, v []byte) bool {
				visited = append(visited, k)
				return false
			})
			if len(visited) != 1 {
				t.Fatalf("Scan early exit visited %v", visited)
			}
			if err := s.Delete("t", "k1"); err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := s.Get("t", "k1"); ok {
				t.Fatal("Get after Delete: found")
			}
			if err := s.Delete("t", "never-existed"); err != nil {
				t.Fatalf("Delete absent key: %v", err)
			}
		})
	}
}

func TestStoreConcurrent(t *testing.T) {
	for name, s := range storeFixtures(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						key := fmt.Sprintf("w%d-k%d", w, i)
						if err := s.Put("c", key, []byte(key)); err != nil {
							t.Errorf("Put: %v", err)
							return
						}
						v, ok, err := s.Get("c", key)
						if err != nil || !ok || string(v) != key {
							t.Errorf("Get %s = %q %v %v", key, v, ok, err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			keys, err := s.Keys("c")
			if err != nil {
				t.Fatal(err)
			}
			if len(keys) != 8*50 {
				t.Fatalf("got %d keys, want 400", len(keys))
			}
		})
	}
}

func TestRowStoreClosed(t *testing.T) {
	s := NewRowStore()
	s.Close()
	if err := s.Put("t", "k", nil); err != ErrClosed {
		t.Errorf("Put after Close: %v", err)
	}
	if _, _, err := s.Get("t", "k"); err != ErrClosed {
		t.Errorf("Get after Close: %v", err)
	}
	if err := s.Delete("t", "k"); err != ErrClosed {
		t.Errorf("Delete after Close: %v", err)
	}
	if _, err := s.Keys("t"); err != ErrClosed {
		t.Errorf("Keys after Close: %v", err)
	}
}

func TestRowStoreValueIsolation(t *testing.T) {
	s := NewRowStore()
	v := []byte("mutable")
	s.Put("t", "k", v)
	v[0] = 'X'
	got, _, _ := s.Get("t", "k")
	if string(got) != "mutable" {
		t.Errorf("store aliased caller slice: %q", got)
	}
	got[0] = 'Y'
	got2, _, _ := s.Get("t", "k")
	if string(got2) != "mutable" {
		t.Errorf("Get returned aliased slice: %q", got2)
	}
}

func TestWALReplay(t *testing.T) {
	var wal bytes.Buffer
	s := NewRowStore(WithWAL(&wal))
	s.Put("t", "a", []byte("1"))
	s.Put("t", "b", []byte("2"))
	s.Put("u", "c", []byte("3"))
	s.Delete("t", "a")
	s.Put("t", "b", []byte("2b"))

	restored := NewRowStore()
	if err := restored.Replay(&wal); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := restored.Get("t", "a"); ok {
		t.Error("deleted key a resurrected")
	}
	if v, _, _ := restored.Get("t", "b"); string(v) != "2b" {
		t.Errorf("b = %q, want 2b", v)
	}
	if v, _, _ := restored.Get("u", "c"); string(v) != "3" {
		t.Errorf("c = %q, want 3", v)
	}
}

func TestSnapshotRestoresEverything(t *testing.T) {
	s := NewRowStore()
	for i := 0; i < 100; i++ {
		s.Put("t", fmt.Sprintf("k%03d", i), []byte(fmt.Sprint(i)))
	}
	var snap bytes.Buffer
	if err := s.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	r := NewRowStore()
	if err := r.Replay(&snap); err != nil {
		t.Fatal(err)
	}
	if r.Len("t") != 100 {
		t.Fatalf("restored %d rows, want 100", r.Len("t"))
	}
}

func TestClone(t *testing.T) {
	s := NewRowStore()
	s.Put("t", "k", []byte("v"))
	c := s.Clone()
	c.Put("t", "k2", []byte("v2"))
	if s.Len("t") != 1 || c.Len("t") != 2 {
		t.Errorf("clone not independent: s=%d c=%d", s.Len("t"), c.Len("t"))
	}
}

func TestQuickRowStorePutGet(t *testing.T) {
	s := NewRowStore()
	f := func(table, key string, value []byte) bool {
		if err := s.Put(table, key, value); err != nil {
			return false
		}
		got, ok, err := s.Get(table, key)
		return err == nil && ok && bytes.Equal(got, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickWALRoundTrip(t *testing.T) {
	type op struct {
		Del        bool
		Table, Key string
		Value      []byte
	}
	f := func(ops []op) bool {
		var wal bytes.Buffer
		s := NewRowStore(WithWAL(&wal))
		for _, o := range ops {
			if o.Del {
				s.Delete(o.Table, o.Key)
			} else {
				s.Put(o.Table, o.Key, o.Value)
			}
		}
		r := NewRowStore()
		if err := r.Replay(&wal); err != nil {
			return false
		}
		// Final states must agree on every (table,key) touched.
		for _, o := range ops {
			want, wok, _ := s.Get(o.Table, o.Key)
			got, gok, _ := r.Get(o.Table, o.Key)
			if wok != gok || !bytes.Equal(want, got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPoolBounded(t *testing.T) {
	srv, err := NewServer(NewRowStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := NewPool(srv.Addr(), 3)
	defer p.Close()

	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := p.Put("t", fmt.Sprint(i), []byte("v")); err != nil {
				t.Errorf("Put: %v", err)
			}
		}(i)
	}
	wg.Wait()
	live, idle := p.Stats()
	if live > 3 {
		t.Errorf("pool exceeded max: live=%d", live)
	}
	if idle > live {
		t.Errorf("idle %d > live %d", idle, live)
	}
	keys, err := p.Keys("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 30 {
		t.Errorf("got %d keys, want 30", len(keys))
	}
}

func TestPoolReusesConnections(t *testing.T) {
	srv, err := NewServer(NewRowStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := NewPool(srv.Addr(), 4)
	defer p.Close()
	for i := 0; i < 20; i++ {
		if err := p.Put("t", "k", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	live, idle := p.Stats()
	if live != 1 || idle != 1 {
		t.Errorf("sequential use should hold one connection: live=%d idle=%d", live, idle)
	}
}

func TestPoolClose(t *testing.T) {
	srv, err := NewServer(NewRowStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := NewPool(srv.Addr(), 2)
	p.Put("t", "k", []byte("v"))
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p.Close() // idempotent
	if err := p.Put("t", "k2", nil); err != ErrClosed {
		t.Errorf("Put after Close: %v", err)
	}
}

func TestPoolDiscardOnServerFailure(t *testing.T) {
	srv, err := NewServer(NewRowStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(srv.Addr(), 2)
	defer p.Close()
	if err := p.Put("t", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if err := p.Put("t", "k2", []byte("v")); err == nil {
		t.Fatal("Put against dead server succeeded")
	}
	live, _ := p.Stats()
	if live != 0 {
		t.Errorf("broken connections not discarded: live=%d", live)
	}
}

func TestUnpooledDialsPerOperation(t *testing.T) {
	srv, err := NewServer(NewRowStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	u := NewUnpooledStore(srv.Addr())
	for i := 0; i < 10; i++ {
		if err := u.Put("t", fmt.Sprint(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := u.Keys("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 10 {
		t.Errorf("got %d keys", len(keys))
	}
	if err := u.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// failingWriter errors after n bytes, simulating a full or failing disk
// under the WAL.
type failingWriter struct{ n int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, fmt.Errorf("disk full")
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWALWriteFailureRejectsMutation(t *testing.T) {
	s := NewRowStore(WithWAL(&failingWriter{n: 16}))
	// First put may or may not fit in 16 bytes of WAL; keep writing until
	// the WAL fails, then verify the failed mutation was not applied.
	var failedKey string
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := s.Put("t", key, []byte("v")); err != nil {
			failedKey = key
			break
		}
	}
	if failedKey == "" {
		t.Fatal("WAL never failed")
	}
	if _, ok, _ := s.Get("t", failedKey); ok {
		t.Error("mutation applied despite WAL append failure")
	}
}

func TestReplayCorruptWAL(t *testing.T) {
	s := NewRowStore()
	if err := s.Replay(bytes.NewReader([]byte("definitely not gob"))); err == nil {
		t.Error("corrupt WAL replayed without error")
	}
}
