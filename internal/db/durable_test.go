package db

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestDurableRecoversAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put("t", fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete("t", "k3"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len("t") != 9 {
		t.Fatalf("recovered %d rows, want 9", re.Len("t"))
	}
	v, ok, err := re.Get("t", "k7")
	if err != nil || !ok || string(v) != "v7" {
		t.Fatalf("Get k7 = %q, %v, %v", v, ok, err)
	}
	if _, ok, _ := re.Get("t", "k3"); ok {
		t.Fatal("deleted key k3 survived recovery")
	}
}

func TestDurableCompactionRotatesWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(dir, WithCompactEvery(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Put("t", fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// 20 appends with a threshold of 8 must have compacted at least twice,
	// leaving fewer than 8 records in the live WAL.
	if n := s.WALRecords(); n >= 8 {
		t.Fatalf("WAL holds %d records after auto-compaction, want < 8", n)
	}
	if fi, err := os.Stat(filepath.Join(dir, snapshotFile)); err != nil || fi.Size() == 0 {
		t.Fatalf("snapshot missing or empty after compaction: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len("t") != 20 {
		t.Fatalf("recovered %d rows, want 20", re.Len("t"))
	}
}

func TestDurableExplicitCompactAndRecover(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(dir, WithCompactEvery(-1)) // no auto-compaction
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Put("t", fmt.Sprintf("k%d", i), []byte("v"))
	}
	if n := s.WALRecords(); n != 5 {
		t.Fatalf("WAL records = %d, want 5", n)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if n := s.WALRecords(); n != 0 {
		t.Fatalf("WAL records after Compact = %d, want 0", n)
	}
	s.Put("t", "post", []byte("after-compact"))
	s.Close()

	re, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len("t") != 6 {
		t.Fatalf("recovered %d rows, want 6", re.Len("t"))
	}
	if v, ok, _ := re.Get("t", "post"); !ok || string(v) != "after-compact" {
		t.Fatalf("post-compaction record lost: %q, %v", v, ok)
	}
}

func TestDurableToleratesTornWALTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(dir, WithCompactEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	s.Put("t", "safe", []byte("committed"))
	s.Put("t", "torn", []byte("this record will be cut"))
	s.Close()

	// Simulate a crash mid-append: truncate the WAL inside its last record.
	walPath := filepath.Join(dir, walFile)
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDurable(dir)
	if err != nil {
		t.Fatalf("recovery with torn tail failed: %v", err)
	}
	defer re.Close()
	if _, ok, _ := re.Get("t", "safe"); !ok {
		t.Fatal("committed record lost")
	}
	// The torn record is dropped, not resurrected.
	if _, ok, _ := re.Get("t", "torn"); ok {
		t.Fatal("torn record survived")
	}
	// And the store stays writable with a clean log.
	if err := re.Put("t", "next", []byte("v")); err != nil {
		t.Fatal(err)
	}
}

func TestDurableIntervalCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(dir, WithCompactEvery(-1), WithCompactInterval(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5; i++ {
		s.Put("t", fmt.Sprintf("k%d", i), []byte("v"))
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.WALRecords() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("timer compaction never ran; WAL records = %d", s.WALRecords())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDurableClosedOps(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Put("t", "k", nil); err != ErrClosed {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
	if err := s.Compact(); err != ErrClosed {
		t.Fatalf("Compact after Close = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close = %v", err)
	}
}
