package collective

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"bitdew/internal/core"
	"bitdew/internal/mw"
	"bitdew/internal/runtime"
)

func TestSplitJoinBytes(t *testing.T) {
	content := []byte("abcdefghij")
	cases := []struct {
		n    int
		want []string
	}{
		{1, []string{"abcdefghij"}},
		{2, []string{"abcde", "fghij"}},
		{3, []string{"abc", "def", "ghij"}},
		{10, []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}},
		{99, nil}, // clamped to len(content)
		{0, []string{"abcdefghij"}},
	}
	for _, tc := range cases {
		got := SplitBytes(content, tc.n)
		if tc.want != nil {
			if len(got) != len(tc.want) {
				t.Errorf("Split(%d) = %d parts, want %d", tc.n, len(got), len(tc.want))
				continue
			}
			for i := range got {
				if string(got[i]) != tc.want[i] {
					t.Errorf("Split(%d)[%d] = %q, want %q", tc.n, i, got[i], tc.want[i])
				}
			}
		}
		if !bytes.Equal(JoinBytes(got), content) {
			t.Errorf("Join(Split(%d)) != content", tc.n)
		}
	}
	empty := SplitBytes(nil, 4)
	if len(empty) != 1 || len(empty[0]) != 0 {
		t.Errorf("Split(nil) = %v", empty)
	}
}

func TestQuickSplitJoinRoundTrip(t *testing.T) {
	f := func(content []byte, nSeed uint8) bool {
		n := int(nSeed)%12 + 1
		parts := SplitBytes(content, n)
		if len(parts) == 0 {
			return false
		}
		return bytes.Equal(JoinBytes(parts), content)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickPartitionStableAndBounded(t *testing.T) {
	f := func(key string, rSeed uint8) bool {
		r := int(rSeed)%16 + 1
		p := partition(key, r)
		return p >= 0 && p < r && p == partition(key, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestKVCodecRoundTrip(t *testing.T) {
	in := []KV{{Key: "a", Value: []byte("1")}, {Key: "b", Value: nil}}
	raw, err := encodeKVs(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := decodeKVs(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Key != "a" || string(out[0].Value) != "1" || out[1].Key != "b" {
		t.Errorf("round trip = %+v", out)
	}
	if _, err := decodeKVs([]byte("junk")); err == nil {
		t.Error("decoding junk succeeded")
	}
}

// cluster spins up a master and w workers running fn.
func cluster(t *testing.T, w int, fn mw.TaskFunc) (*mw.Master, func()) {
	t.Helper()
	c, err := runtime.NewContainer(runtime.ContainerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mnode, err := core.NewNode(core.NodeConfig{Host: "master", Comms: core.ConnectLocal(c.Mux)})
	if err != nil {
		t.Fatal(err)
	}
	master, err := mw.NewMaster(mnode)
	if err != nil {
		t.Fatal(err)
	}
	var stops []func()
	for i := 0; i < w; i++ {
		wn, err := core.NewNode(core.NodeConfig{
			Host:       fmt.Sprintf("w%d", i),
			Comms:      core.ConnectLocal(c.Mux),
			SyncPeriod: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		mw.NewWorker(wn, nil, fn)
		wn.Start()
		stops = append(stops, wn.Stop)
	}
	return master, func() {
		for _, s := range stops {
			s()
		}
		c.Close()
	}
}

func TestScatterGather(t *testing.T) {
	// Each worker uppercases its slice; gather reassembles in order.
	master, cleanup := cluster(t, 3, func(task string, input []byte, shared map[string][]byte) ([]byte, error) {
		return bytes.ToUpper(input), nil
	})
	defer cleanup()

	content := []byte(strings.Repeat("the quick brown fox ", 50))
	const slices = 6
	if err := Scatter(master, "upcase", content, slices); err != nil {
		t.Fatal(err)
	}
	got, err := Gather(master, "upcase", slices, 400)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.ToUpper(content)) {
		t.Fatalf("gathered %d bytes, mismatch", len(got))
	}
}

func TestMapReduceWordCount(t *testing.T) {
	mapFn := func(split []byte, emit func(string, []byte)) error {
		for _, w := range strings.Fields(string(split)) {
			emit(w, []byte("1"))
		}
		return nil
	}
	reduceFn := func(key string, values [][]byte) ([]byte, error) {
		total := 0
		for _, v := range values {
			n, err := strconv.Atoi(string(v))
			if err != nil {
				return nil, err
			}
			total += n
		}
		return []byte(strconv.Itoa(total)), nil
	}
	master, cleanup := cluster(t, 2, WorkerFunc(mapFn, reduceFn))
	defer cleanup()

	splits := [][]byte{
		[]byte("data dew bit dew"),
		[]byte("dew grid data grid grid"),
		[]byte("bit bit"),
	}
	out, err := RunMapReduce(master, "wc", splits, 3, 400)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"data": "2", "dew": "3", "bit": "3", "grid": "3"}
	if len(out) != len(want) {
		t.Fatalf("out = %v", out)
	}
	for k, v := range want {
		if string(out[k]) != v {
			t.Errorf("count[%s] = %s, want %s", k, out[k], v)
		}
	}
}

func TestWorkerFuncRejectsUnknownTask(t *testing.T) {
	fn := WorkerFunc(
		func([]byte, func(string, []byte)) error { return nil },
		func(string, [][]byte) ([]byte, error) { return nil, nil },
	)
	if _, err := fn("bogus:task", nil, nil); err == nil {
		t.Error("unknown task kind accepted")
	}
	if _, err := fn("reduce:x:0", []byte("not gob"), nil); err == nil {
		t.Error("junk reduce input accepted")
	}
}

func TestMapErrorPropagates(t *testing.T) {
	fn := WorkerFunc(
		func([]byte, func(string, []byte)) error { return fmt.Errorf("boom") },
		func(string, [][]byte) ([]byte, error) { return nil, nil },
	)
	if _, err := fn("map:j:0", []byte("x"), nil); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("map error = %v", err)
	}
}
