// Package collective implements the programming abstractions the paper's
// conclusion names as future work for a Data Desktop Grid: sliced data,
// collective communication (broadcast is native to BitDew's replica = -1;
// this package adds scatter and gather), and distributed MapReduce. All of
// it is layered on the public BitDew API through the mw framework —
// placement, transfers, fault tolerance and cleanup remain attribute-
// driven underneath.
package collective

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"bitdew/internal/mw"
)

// SplitBytes slices content into n near-equal contiguous parts. The last
// part absorbs the remainder; n is clamped to [1, len(content)] (an empty
// content yields one empty slice).
func SplitBytes(content []byte, n int) [][]byte {
	if n < 1 {
		n = 1
	}
	if n > len(content) && len(content) > 0 {
		n = len(content)
	}
	if len(content) == 0 {
		return [][]byte{nil}
	}
	out := make([][]byte, 0, n)
	per := len(content) / n
	off := 0
	for i := 0; i < n; i++ {
		end := off + per
		if i == n-1 {
			end = len(content)
		}
		out = append(out, content[off:end])
		off = end
	}
	return out
}

// JoinBytes reassembles slices produced by SplitBytes.
func JoinBytes(slices [][]byte) []byte {
	var total int
	for _, s := range slices {
		total += len(s)
	}
	out := make([]byte, 0, total)
	for _, s := range slices {
		out = append(out, s...)
	}
	return out
}

// sliceTaskName builds the task name of slice i of a scatter.
func sliceTaskName(name string, i int) string {
	return fmt.Sprintf("scatter:%s:%06d", name, i)
}

// Scatter distributes content in n slices across the reservoir hosts: each
// slice becomes a fault-tolerant task datum the scheduler places on
// exactly one host. Workers see slices as ordinary tasks (name
// "scatter:<name>:<index>"). All slices are submitted through the batched
// request path in a handful of round trips.
func Scatter(master *mw.Master, name string, content []byte, n int) error {
	var specs []mw.TaskSpec
	for i, slice := range SplitBytes(content, n) {
		specs = append(specs, mw.TaskSpec{Name: sliceTaskName(name, i), Input: slice, Replica: 1})
	}
	if _, err := master.SubmitAll(specs); err != nil {
		return fmt.Errorf("collective: scatter %s: %w", name, err)
	}
	return nil
}

// Gather collects the n per-slice results of a scattered computation and
// reassembles them in slice order. It drives the master's pull loop for at
// most `rounds` synchronizations.
func Gather(master *mw.Master, name string, n, rounds int) ([]byte, error) {
	results, err := master.Collect(n, rounds)
	if err != nil {
		return nil, fmt.Errorf("collective: gather %s: %w", name, err)
	}
	prefix := "scatter:" + name + ":"
	slices := make([][]byte, n)
	for _, r := range results {
		if !strings.HasPrefix(r.Task, prefix) {
			continue
		}
		idx, err := strconv.Atoi(strings.TrimPrefix(r.Task, prefix))
		if err != nil || idx < 0 || idx >= n {
			return nil, fmt.Errorf("collective: gather %s: unexpected task %q", name, r.Task)
		}
		slices[idx] = r.Content
	}
	for i, s := range slices {
		if s == nil {
			return nil, fmt.Errorf("collective: gather %s: slice %d missing", name, i)
		}
	}
	return JoinBytes(slices), nil
}

// KV is one intermediate key/value pair of a MapReduce job.
type KV struct {
	Key   string
	Value []byte
}

// MapFunc processes one input split, emitting intermediate pairs.
type MapFunc func(split []byte, emit func(key string, value []byte)) error

// ReduceFunc folds all values of one key into a final value.
type ReduceFunc func(key string, values [][]byte) ([]byte, error)

// encodeKVs/decodeKVs serialise intermediate data for transport through
// the data space.
func encodeKVs(kvs []KV) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(kvs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeKVs(raw []byte) ([]KV, error) {
	var kvs []KV
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&kvs); err != nil {
		return nil, err
	}
	return kvs, nil
}

// partition assigns a key to one of r reduce partitions.
func partition(key string, r int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32()) % r
}

// WorkerFunc builds the mw task function executing both phases of a
// MapReduce job on a worker: tasks named "map:…" run mapFn and return the
// encoded intermediate pairs; tasks named "reduce:…" decode the grouped
// pairs and run reduceFn per key. Install it with mw.NewWorker.
func WorkerFunc(mapFn MapFunc, reduceFn ReduceFunc) mw.TaskFunc {
	return func(task string, input []byte, shared map[string][]byte) ([]byte, error) {
		switch {
		case strings.HasPrefix(task, "map:"):
			var kvs []KV
			err := mapFn(input, func(key string, value []byte) {
				kvs = append(kvs, KV{Key: key, Value: append([]byte(nil), value...)})
			})
			if err != nil {
				return nil, fmt.Errorf("collective: map %s: %w", task, err)
			}
			return encodeKVs(kvs)
		case strings.HasPrefix(task, "reduce:"):
			kvs, err := decodeKVs(input)
			if err != nil {
				return nil, fmt.Errorf("collective: reduce %s: decode: %w", task, err)
			}
			grouped := make(map[string][][]byte)
			var order []string
			for _, kv := range kvs {
				if _, ok := grouped[kv.Key]; !ok {
					order = append(order, kv.Key)
				}
				grouped[kv.Key] = append(grouped[kv.Key], kv.Value)
			}
			sort.Strings(order)
			var out []KV
			for _, key := range order {
				v, err := reduceFn(key, grouped[key])
				if err != nil {
					return nil, fmt.Errorf("collective: reduce %s key %q: %w", task, key, err)
				}
				out = append(out, KV{Key: key, Value: v})
			}
			return encodeKVs(out)
		default:
			return nil, fmt.Errorf("collective: unknown task kind %q", task)
		}
	}
}

// RunMapReduce executes a complete job from the master's side: scatter the
// splits as map tasks, collect and shuffle the intermediate pairs, scatter
// r reduce tasks, and collect the final key/value table. Workers must be
// running WorkerFunc(mapFn, reduceFn). rounds bounds each phase's
// synchronization budget.
func RunMapReduce(master *mw.Master, job string, splits [][]byte, r, rounds int) (map[string][]byte, error) {
	if r < 1 {
		r = 1
	}
	// Map phase: every split submitted in one batch.
	mapSpecs := make([]mw.TaskSpec, len(splits))
	for i, split := range splits {
		mapSpecs[i] = mw.TaskSpec{Name: fmt.Sprintf("map:%s:%06d", job, i), Input: split, Replica: 1}
	}
	if _, err := master.SubmitAll(mapSpecs); err != nil {
		return nil, fmt.Errorf("collective: submitting map tasks: %w", err)
	}
	mapResults, err := master.Collect(len(splits), rounds)
	if err != nil {
		return nil, fmt.Errorf("collective: map phase: %w", err)
	}
	// Shuffle: group intermediate pairs into r partitions.
	parts := make([][]KV, r)
	for _, res := range mapResults {
		kvs, err := decodeKVs(res.Content)
		if err != nil {
			return nil, fmt.Errorf("collective: intermediate of %s: %w", res.Task, err)
		}
		for _, kv := range kvs {
			p := partition(kv.Key, r)
			parts[p] = append(parts[p], kv)
		}
	}
	// Reduce phase, batched like the map phase.
	var reduceSpecs []mw.TaskSpec
	for p, kvs := range parts {
		if len(kvs) == 0 {
			continue
		}
		raw, err := encodeKVs(kvs)
		if err != nil {
			return nil, err
		}
		reduceSpecs = append(reduceSpecs, mw.TaskSpec{
			Name: fmt.Sprintf("reduce:%s:%06d", job, p), Input: raw, Replica: 1,
		})
	}
	if _, err := master.SubmitAll(reduceSpecs); err != nil {
		return nil, fmt.Errorf("collective: submitting reduce tasks: %w", err)
	}
	reduceResults, err := master.Collect(len(reduceSpecs), rounds)
	if err != nil {
		return nil, fmt.Errorf("collective: reduce phase: %w", err)
	}
	out := make(map[string][]byte)
	for _, res := range reduceResults {
		kvs, err := decodeKVs(res.Content)
		if err != nil {
			return nil, fmt.Errorf("collective: output of %s: %w", res.Task, err)
		}
		for _, kv := range kvs {
			out[kv.Key] = kv.Value
		}
	}
	return out, nil
}
