// Package simgrid runs BitDew's evaluation experiments on simulated
// testbeds: it combines the simnet flow simulator, the testbed presets and
// — for the fault-tolerance scenario — the real Data Scheduler driven on a
// virtual clock. Each entry point regenerates one figure of the paper's
// evaluation section (see DESIGN.md's per-experiment index).
package simgrid

import (
	"fmt"
	"math"
	"sort"

	"bitdew/internal/simnet"
	"bitdew/internal/testbed"
)

// Overhead parameterises the BitDew control plane laid over a raw file
// transfer protocol (the Figure 3b/3c experiment). The paper's stressed
// configuration monitors transfers every 500 ms and synchronizes with the
// scheduler every second.
type Overhead struct {
	// RTT is the control-message round-trip time in seconds.
	RTT float64
	// SetupRounds is the number of control round trips before a transfer
	// starts: DC locator lookup, DR protocol description, DT registration
	// (§4.3 names exactly these three).
	SetupRounds int
	// MonitorPeriod is the DT heartbeat in seconds.
	MonitorPeriod float64
	// SyncPeriod is the DS synchronization period in seconds.
	SyncPeriod float64
	// MsgBytes is the total wire cost (request + reply, with transport
	// overhead) of one control message.
	MsgBytes float64
}

// DefaultOverhead reproduces the paper's stress configuration.
func DefaultOverhead() *Overhead {
	return &Overhead{
		RTT:           0.001, // LAN round trip
		SetupRounds:   3,
		MonitorPeriod: 0.5,
		SyncPeriod:    1.0,
		MsgBytes:      8 * 1024, // serialized RMI call + TCP overhead
	}
}

// BroadcastResult reports one distribution experiment.
type BroadcastResult struct {
	// Completion is the time from replication start to the last node
	// finishing, the paper's Figure 3a metric.
	Completion float64
	// PerNode holds each node's individual completion time, sorted.
	PerNode []float64
	// ControlBytes is the total control-plane traffic generated.
	ControlBytes float64
	// Requests is the number of control messages sent to the services.
	Requests int64
}

// buildNodes registers the platform's server and the first n worker nodes
// into a fresh simulation. The server uplink is reduced by the control-
// plane drain when ov is non-nil: n nodes each produce monitor heartbeats
// and scheduler synchronizations whose replies consume server bandwidth —
// the paper attributes the measured overhead mainly to this traffic.
func buildNodes(sim *simnet.Sim, p testbed.Platform, n int, ov *Overhead, duration float64) (names []string, drain float64) {
	serverUp := p.ServerUpBps
	if ov != nil {
		perNode := ov.MsgBytes/ov.MonitorPeriod + ov.MsgBytes/ov.SyncPeriod
		drain = float64(n) * perNode
		if drain > 0.5*serverUp {
			drain = 0.5 * serverUp // control plane cannot starve data entirely
		}
		serverUp -= drain
	}
	sim.AddNode("server", serverUp, p.ServerDownBps)
	for i := 0; i < n; i++ {
		c, _, err := p.NodeSpec(i)
		if err != nil {
			break
		}
		name := fmt.Sprintf("n%03d", i)
		sim.AddNode(name, c.UpBps, c.DownBps)
		names = append(names, name)
	}
	return names, drain
}

// startDelay is the deterministic per-node delay before its transfer
// begins under BitDew: waiting for the next scheduler synchronization plus
// the three control round trips. The golden-ratio stride spreads sync
// arrival phases evenly without randomness.
func startDelay(i int, ov *Overhead) float64 {
	if ov == nil {
		return 0
	}
	const phi = 0.6180339887498949
	phase := math.Mod(float64(i+1)*phi, 1.0)
	return phase*ov.SyncPeriod + float64(ov.SetupRounds)*ov.RTT
}

// FTPBroadcast distributes size bytes from the server to n nodes over the
// client/server protocol: one direct flow per node, all sharing the server
// uplink. With ov non-nil the BitDew control plane is layered on top.
func FTPBroadcast(p testbed.Platform, n int, size float64, ov *Overhead) BroadcastResult {
	sim := simnet.New()
	names, _ := buildNodes(sim, p, n, ov, 0)
	times := make([]float64, 0, len(names))
	for i, name := range names {
		name := name
		sim.At(startDelay(i, ov), func() {
			sim.StartFlow("server", name, size, func(at float64) {
				times = append(times, at)
			})
		})
	}
	completion := sim.Run()
	sort.Float64s(times)
	res := BroadcastResult{Completion: completion, PerNode: times}
	if ov != nil {
		msgsPerNode := completion * (1/ov.MonitorPeriod + 1/ov.SyncPeriod)
		res.Requests = int64(float64(n) * msgsPerNode)
		res.ControlBytes = float64(res.Requests) * ov.MsgBytes
	}
	return res
}

// SwarmParams tunes the collaborative-distribution fluid model.
type SwarmParams struct {
	// Eta is piece-exchange effectiveness: the fraction of peer uplink
	// usable on average given piece availability (Avalanche-style network
	// coding would push it toward 1).
	Eta float64
	// StartupDelay is the fixed protocol cost before any payload moves:
	// tracker announce, metainfo fetch, peer handshakes.
	StartupDelay float64
	// PieceBytes is the piece size; the last-piece endgame adds roughly
	// one piece time per log2(n) swarm generations.
	PieceBytes float64
	// Jitter is the deterministic spread (fraction of completion) applied
	// across nodes, reproducing BitTorrent's observed variability.
	Jitter float64
	// Step is the fluid-integration step in seconds.
	Step float64
	// PeerRateCap bounds each peer's effective download rate in bytes/s.
	// BTPD-era clients on gigabit LANs were far from line rate (piece
	// handling, hashing, disk): the paper's own Figure 5 shows BitTorrent
	// losing to FTP up to ~20 workers on a 117 MB/s server, which implies
	// an effective per-peer ceiling around 117/20 ≈ 6 MB/s.
	PeerRateCap float64
}

// DefaultSwarmParams matches the behaviour of BTPD-era BitTorrent on a
// gigabit cluster as reported in the paper's prior study [41].
func DefaultSwarmParams() *SwarmParams {
	return &SwarmParams{
		Eta:          0.72,
		StartupDelay: 11.0,
		PieceBytes:   256 * 1024,
		Jitter:       0.08,
		Step:         0.05,
		PeerRateCap:  6e6,
	}
}

// SwarmBroadcast distributes size bytes to n nodes collaboratively using a
// fluid swarm model: every peer uploads the fraction of content it already
// holds, so aggregate service capacity grows from the single seeder to the
// whole swarm. This reproduces BitTorrent's signature behaviours — near-
// flat completion time in n (Figure 3a/5) and a fixed protocol overhead
// that loses to FTP on small files and small swarms.
func SwarmBroadcast(p testbed.Platform, n int, size float64, ov *Overhead, sp *SwarmParams) BroadcastResult {
	if sp == nil {
		sp = DefaultSwarmParams()
	}
	type peer struct {
		have     float64
		up, down float64
		done     float64 // completion time, 0 while downloading
	}
	peers := make([]*peer, 0, n)
	for i := 0; i < n; i++ {
		c, _, err := p.NodeSpec(i)
		if err != nil {
			break
		}
		peers = append(peers, &peer{up: c.UpBps, down: c.DownBps})
	}
	seedUp := p.ServerUpBps
	if ov != nil {
		perNode := ov.MsgBytes/ov.MonitorPeriod + ov.MsgBytes/ov.SyncPeriod
		drain := float64(len(peers)) * perNode
		if drain > 0.5*seedUp {
			drain = 0.5 * seedUp
		}
		seedUp -= drain
	}

	t := sp.StartupDelay
	if ov != nil {
		t += float64(ov.SetupRounds)*ov.RTT + ov.SyncPeriod/2
	}
	remaining := len(peers)
	for remaining > 0 {
		// Aggregate upload capacity: the seeder plus every peer weighted
		// by the content fraction it can serve.
		capacity := seedUp
		for _, pe := range peers {
			frac := pe.have / size
			if pe.done > 0 {
				frac = 1
			}
			capacity += pe.up * sp.Eta * frac
		}
		share := capacity / float64(remaining)
		for _, pe := range peers {
			if pe.done > 0 {
				continue
			}
			rate := math.Min(pe.down, share)
			if sp.PeerRateCap > 0 {
				rate = math.Min(rate, sp.PeerRateCap)
			}
			pe.have += rate * sp.Step
			if pe.have >= size {
				pe.have = size
				pe.done = t + sp.Step
				remaining--
			}
		}
		t += sp.Step
		if t > 1e7 {
			break // stalled configuration guard
		}
	}

	// Endgame: the last pieces ripple through log2(n) swarm generations.
	gen := math.Log2(float64(len(peers)) + 1)
	endgame := gen * sp.PieceBytes / (p.ServerUpBps + 1)
	times := make([]float64, len(peers))
	for i, pe := range peers {
		jitter := 1 + sp.Jitter*(math.Mod(float64(i)*0.618, 1.0)-0.5)*2
		times[i] = (pe.done + endgame) * jitter
	}
	sort.Float64s(times)
	res := BroadcastResult{PerNode: times}
	if len(times) > 0 {
		res.Completion = times[len(times)-1]
	}
	if ov != nil {
		msgsPerNode := res.Completion * (1/ov.MonitorPeriod + 1/ov.SyncPeriod)
		res.Requests = int64(float64(len(peers)) * msgsPerNode)
		res.ControlBytes = float64(res.Requests) * ov.MsgBytes
	}
	return res
}

// Broadcast dispatches on protocol name ("ftp" or "bittorrent").
func Broadcast(p testbed.Platform, protocol string, n int, size float64, ov *Overhead) (BroadcastResult, error) {
	switch protocol {
	case "ftp", "http":
		return FTPBroadcast(p, n, size, ov), nil
	case "bittorrent", "bt", "swarm":
		return SwarmBroadcast(p, n, size, ov, nil), nil
	default:
		return BroadcastResult{}, fmt.Errorf("simgrid: unknown protocol %q", protocol)
	}
}
