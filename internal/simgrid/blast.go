package simgrid

import (
	"fmt"
	"sort"

	"bitdew/internal/testbed"
)

// BlastParams describes the Master/Worker BLAST experiment of paper §5.
type BlastParams struct {
	// AppBytes is the BLAST binary size (4.45 MB in the paper), broadcast
	// to every node over BitTorrent.
	AppBytes float64
	// GenebaseBytes is the compressed database archive (2.68 GB).
	GenebaseBytes float64
	// SequenceBytes is one query sequence (small text file, sent over
	// HTTP per the paper's protocol-selection discussion).
	SequenceBytes float64
	// ResultBytes is one result file collected back to the master.
	ResultBytes float64
	// ExecSeconds is the blastn runtime for one worker's query workload on
	// the reference CPU (cluster CPUFactor scales it).
	ExecSeconds float64
	// Protocol distributes the genebase: "ftp" or "bittorrent".
	Protocol string
}

// DefaultBlastParams reproduces the paper's workload.
func DefaultBlastParams(protocol string) BlastParams {
	return BlastParams{
		AppBytes:      4.45e6,
		GenebaseBytes: 2.68e9,
		SequenceBytes: 2e3,
		ResultBytes:   50e3,
		ExecSeconds:   240,
		Protocol:      protocol,
	}
}

// Breakdown is the per-phase timing of Figure 6.
type Breakdown struct {
	Transfer float64
	Unzip    float64
	Exec     float64
}

// Total sums the phases.
func (b Breakdown) Total() float64 { return b.Transfer + b.Unzip + b.Exec }

// BlastResult reports one Master/Worker run.
type BlastResult struct {
	// TotalTime is the completion time of the slowest worker (Figure 5's
	// y-axis).
	TotalTime float64
	// ByCluster averages the breakdown per cluster (Figure 6's bars).
	ByCluster map[string]Breakdown
	// Mean is the platform-wide average breakdown (Figure 6's rightmost
	// columns).
	Mean Breakdown
	// Workers is the number of workers simulated.
	Workers int
}

// BlastRun simulates the Master/Worker BLAST application on n workers of
// the platform: broadcast the application (BitTorrent), distribute the
// genebase over params.Protocol, unzip it locally, run the search, and
// return results to the master. Per-worker total = transfer + unzip +
// exec, the decomposition of Figure 6; the experiment's completion is the
// slowest worker.
func BlastRun(p testbed.Platform, n int, params BlastParams) (BlastResult, error) {
	if n > p.TotalNodes() {
		return BlastResult{}, fmt.Errorf("simgrid: platform %s has %d nodes, %d requested", p.Name, p.TotalNodes(), n)
	}
	// Application broadcast: always collaborative (replica = -1 with
	// oob = bittorrent in Listing 3). Small file: startup dominates.
	app := SwarmBroadcast(p, n, params.AppBytes, nil, nil)

	// Genebase distribution over the chosen protocol.
	gene, err := Broadcast(p, params.Protocol, n, params.GenebaseBytes, nil)
	if err != nil {
		return BlastResult{}, err
	}
	// Sequences: tiny HTTP transfers, negligible but accounted.
	seqTime := params.SequenceBytes / p.ServerUpBps * float64(n)

	res := BlastResult{ByCluster: make(map[string]Breakdown), Workers: n}
	counts := make(map[string]int)
	var clusterOrder []string
	worst := 0.0
	var sumT, sumU, sumE float64
	clusters := allocateProportional(p, n)
	for i := 0; i < n; i++ {
		c := clusters[i]
		transfer := app.PerNode[min(i, len(app.PerNode)-1)] +
			gene.PerNode[min(i, len(gene.PerNode)-1)] + seqTime
		unzip := params.GenebaseBytes / c.UnzipBps
		exec := params.ExecSeconds / c.CPUFactor
		// Result upload: small, shares server downlink across n workers.
		resultUp := params.ResultBytes / (p.ServerDownBps / float64(n))

		total := transfer + unzip + exec + resultUp
		if total > worst {
			worst = total
		}
		b := res.ByCluster[c.Name]
		if counts[c.Name] == 0 {
			clusterOrder = append(clusterOrder, c.Name)
		}
		b.Transfer += transfer
		b.Unzip += unzip
		b.Exec += exec
		res.ByCluster[c.Name] = b
		counts[c.Name]++
		sumT += transfer
		sumU += unzip
		sumE += exec
	}
	for _, name := range clusterOrder {
		b := res.ByCluster[name]
		k := float64(counts[name])
		res.ByCluster[name] = Breakdown{Transfer: b.Transfer / k, Unzip: b.Unzip / k, Exec: b.Exec / k}
	}
	res.Mean = Breakdown{Transfer: sumT / float64(n), Unzip: sumU / float64(n), Exec: sumE / float64(n)}
	res.TotalTime = worst
	return res, nil
}

// BlastSweep runs Figure 5's worker sweep for one protocol.
func BlastSweep(p testbed.Platform, workers []int, protocol string) ([]float64, error) {
	params := DefaultBlastParams(protocol)
	out := make([]float64, 0, len(workers))
	for _, n := range workers {
		r, err := BlastRun(p, n, params)
		if err != nil {
			return nil, err
		}
		out = append(out, r.TotalTime)
	}
	return out, nil
}

// ClusterNames returns the breakdown keys in platform order.
func (r BlastResult) ClusterNames() []string {
	names := make([]string, 0, len(r.ByCluster))
	for n := range r.ByCluster {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// allocateProportional spreads n workers across the platform's clusters in
// proportion to cluster size (largest-remainder rounding), the way the
// paper's 400-node run drew workers from all four Grid'5000 clusters.
func allocateProportional(p testbed.Platform, n int) []testbed.Cluster {
	total := p.TotalNodes()
	out := make([]testbed.Cluster, 0, n)
	type share struct {
		c     testbed.Cluster
		count int
		frac  float64
	}
	shares := make([]share, len(p.Clusters))
	assigned := 0
	for i, c := range p.Clusters {
		exact := float64(n) * float64(c.Nodes) / float64(total)
		count := int(exact)
		shares[i] = share{c: c, count: count, frac: exact - float64(count)}
		assigned += count
	}
	for assigned < n {
		best := 0
		for i := range shares {
			if shares[i].frac > shares[best].frac {
				best = i
			}
		}
		shares[best].count++
		shares[best].frac = -1
		assigned++
	}
	for _, s := range shares {
		for j := 0; j < s.count && len(out) < n; j++ {
			out = append(out, s.c)
		}
	}
	return out
}
