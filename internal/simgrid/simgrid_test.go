package simgrid

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"bitdew/internal/testbed"
)

const mb = 1e6

func TestFTPBroadcastScalesLinearlyInNodes(t *testing.T) {
	p := testbed.GdX()
	t50 := FTPBroadcast(p, 50, 100*mb, nil).Completion
	t100 := FTPBroadcast(p, 100, 100*mb, nil).Completion
	t200 := FTPBroadcast(p, 200, 100*mb, nil).Completion
	if !(t50 < t100 && t100 < t200) {
		t.Fatalf("FTP not monotone in nodes: %v %v %v", t50, t100, t200)
	}
	// Uplink-bound: doubling nodes ~doubles completion.
	if ratio := t200 / t100; ratio < 1.7 || ratio > 2.3 {
		t.Errorf("FTP scaling ratio = %.2f, want ~2", ratio)
	}
}

func TestSwarmBroadcastNearlyFlatInNodes(t *testing.T) {
	p := testbed.GdX()
	t50 := SwarmBroadcast(p, 50, 100*mb, nil, nil).Completion
	t250 := SwarmBroadcast(p, 250, 100*mb, nil, nil).Completion
	// A 5x node increase should cost far less than 5x (paper: nearly flat).
	if t250 > 2*t50 {
		t.Errorf("swarm completion grew %vx from 50 to 250 nodes (%.1fs -> %.1fs)", t250/t50, t50, t250)
	}
}

func TestProtocolCrossover(t *testing.T) {
	// Paper Figure 3a: BitTorrent outperforms FTP for >20MB files on >10
	// nodes; FTP wins on small files / few nodes where the swarm's fixed
	// startup cost dominates.
	p := testbed.GdX()
	big, nodes := 250*mb, 100
	ftp := FTPBroadcast(p, nodes, big, nil).Completion
	bt := SwarmBroadcast(p, nodes, big, nil, nil).Completion
	if bt >= ftp {
		t.Errorf("big broadcast: bt=%.1fs not faster than ftp=%.1fs", bt, ftp)
	}
	small, few := 10*mb, 5
	ftpS := FTPBroadcast(p, few, small, nil).Completion
	btS := SwarmBroadcast(p, few, small, nil, nil).Completion
	if ftpS >= btS {
		t.Errorf("small broadcast: ftp=%.1fs not faster than bt=%.1fs", ftpS, btS)
	}
}

func TestOverheadPositiveAndShapedLikePaper(t *testing.T) {
	p := testbed.GdX()
	ov := DefaultOverhead()
	type pt struct {
		n    int
		size float64
	}
	overheadPct := func(c pt) float64 {
		raw := FTPBroadcast(p, c.n, c.size, nil).Completion
		bd := FTPBroadcast(p, c.n, c.size, ov).Completion
		return (bd - raw) / raw * 100
	}
	smallFew := overheadPct(pt{10, 10 * mb})
	bigMany := overheadPct(pt{250, 500 * mb})
	if smallFew <= 0 || bigMany <= 0 {
		t.Fatalf("overheads must be positive: %v %v", smallFew, bigMany)
	}
	// Figure 3b: relative overhead is strongest for small files on few
	// nodes and fades for large distributions.
	if smallFew <= bigMany {
		t.Errorf("overhead%% small/few (%.1f%%) should exceed big/many (%.1f%%)", smallFew, bigMany)
	}
	if smallFew > 100 {
		t.Errorf("overhead%% = %.1f%%, implausibly large", smallFew)
	}
	// Figure 3c: absolute overhead grows with size and node count.
	rawSmall := FTPBroadcast(p, 10, 10*mb, nil).Completion
	bdSmall := FTPBroadcast(p, 10, 10*mb, ov).Completion
	rawBig := FTPBroadcast(p, 250, 500*mb, nil).Completion
	bdBig := FTPBroadcast(p, 250, 500*mb, ov).Completion
	if (bdBig - rawBig) <= (bdSmall - rawSmall) {
		t.Errorf("absolute overhead should grow with size x nodes: small=%.2fs big=%.2fs",
			bdSmall-rawSmall, bdBig-rawBig)
	}
}

func TestControlTrafficAccounting(t *testing.T) {
	p := testbed.GdX()
	ov := DefaultOverhead()
	r := FTPBroadcast(p, 250, 500*mb, ov)
	// Paper §4.3: distributing 500MB to 250 nodes generates at least
	// 500000 requests to the DT service.
	if r.Requests < 400_000 {
		t.Errorf("Requests = %d, want hundreds of thousands", r.Requests)
	}
	if r.ControlBytes <= 0 {
		t.Error("no control bytes accounted")
	}
}

func TestBroadcastUnknownProtocol(t *testing.T) {
	if _, err := Broadcast(testbed.GdX(), "pigeon", 1, 1, nil); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestFaultScenarioDetectionDelay(t *testing.T) {
	p := testbed.DSLLab()
	const heartbeat = 1.0
	r := FaultScenario(p, 4*mb, 5, 5, 20, heartbeat)
	if len(r.Events) != 10 {
		t.Fatalf("events = %d, want 10 (5 initial + 5 newcomers)", len(r.Events))
	}
	// Initial nodes schedule almost immediately.
	for _, e := range r.Events[:5] {
		if e.DownloadStart-e.Arrival > 2*heartbeat {
			t.Errorf("initial node %s waited %.1fs", e.Node, e.DownloadStart-e.Arrival)
		}
	}
	// Newcomers wait for the failure detector: ~3 heartbeats (+ sync
	// alignment), clearly more than the initial nodes, well under 10s.
	for _, e := range r.Events[5:] {
		wait := e.DownloadStart - e.Arrival
		if wait < 2*heartbeat || wait > 8*heartbeat {
			t.Errorf("newcomer %s waited %.1fs, want ~3 heartbeats", e.Node, wait)
		}
	}
	// Bandwidths differ across ADSL nodes (heterogeneous platform).
	bw := map[float64]bool{}
	for _, e := range r.Events {
		if e.BandwidthBps > 0 {
			bw[math.Round(e.BandwidthBps/1e3)] = true
		}
	}
	if len(bw) < 4 {
		t.Errorf("bandwidth diversity too low: %v", bw)
	}
	if !strings.Contains(r.FormatGantt(), "DSL01") {
		t.Error("gantt missing first node")
	}
}

func TestFaultScenarioMaintainsReplicas(t *testing.T) {
	p := testbed.DSLLab()
	r := FaultScenario(p, 1*mb, 5, 5, 20, 1.0)
	if len(r.ReplicaTimeline) == 0 {
		t.Fatal("no replica timeline")
	}
	last := r.ReplicaTimeline[len(r.ReplicaTimeline)-1]
	if last[1] < 5 {
		t.Errorf("final live replicas = %.0f, want >= 5", last[1])
	}
}

func TestBlastRunBreakdownSane(t *testing.T) {
	p := testbed.Grid5000()
	r, err := BlastRun(p, 400, DefaultBlastParams("bittorrent"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ByCluster) != 4 {
		t.Fatalf("clusters = %v", r.ClusterNames())
	}
	for name, b := range r.ByCluster {
		if b.Transfer <= 0 || b.Unzip <= 0 || b.Exec <= 0 {
			t.Errorf("cluster %s has empty phases: %+v", name, b)
		}
	}
	if r.Mean.Total() <= 0 || r.TotalTime < r.Mean.Total() {
		t.Errorf("TotalTime %.1f vs mean %.1f", r.TotalTime, r.Mean.Total())
	}
}

func TestBlastFigure5Shape(t *testing.T) {
	// Paper Figure 5: FTP total grows sharply with workers; BitTorrent is
	// nearly flat; FTP is better at 10-20 workers.
	p := testbed.GdX()
	workers := []int{10, 20, 50, 100, 150, 200, 250}
	ftp, err := BlastSweep(p, workers, "ftp")
	if err != nil {
		t.Fatal(err)
	}
	bt, err := BlastSweep(p, workers, "bittorrent")
	if err != nil {
		t.Fatal(err)
	}
	if ftp[0] >= bt[0] {
		t.Errorf("at 10 workers FTP (%.0fs) should beat BT (%.0fs)", ftp[0], bt[0])
	}
	last := len(workers) - 1
	if bt[last] >= ftp[last] {
		t.Errorf("at 250 workers BT (%.0fs) should beat FTP (%.0fs)", bt[last], ftp[last])
	}
	// BT flatness: growth from 50 to 250 workers under 30%.
	if bt[last] > 1.3*bt[2] {
		t.Errorf("BT grew %.0fs -> %.0fs between 50 and 250 workers", bt[2], bt[last])
	}
	// FTP near-linear growth.
	if ftp[last] < 3*ftp[2] {
		t.Errorf("FTP only grew %.0fs -> %.0fs between 50 and 250 workers", ftp[2], ftp[last])
	}
}

func TestBlastTransferGainFactorFigure6(t *testing.T) {
	// Paper §5: at 400 nodes, BitTorrent gains almost a factor 10 on data
	// delivery time versus FTP.
	p := testbed.Grid5000()
	ftp, err := BlastRun(p, 400, DefaultBlastParams("ftp"))
	if err != nil {
		t.Fatal(err)
	}
	bt, err := BlastRun(p, 400, DefaultBlastParams("bittorrent"))
	if err != nil {
		t.Fatal(err)
	}
	gain := ftp.Mean.Transfer / bt.Mean.Transfer
	if gain < 5 {
		t.Errorf("transfer gain = %.1fx, want >= 5x (paper: ~10x)", gain)
	}
	// Unzip and exec are protocol-independent.
	if math.Abs(ftp.Mean.Unzip-bt.Mean.Unzip) > 1e-6 {
		t.Error("unzip time depends on protocol")
	}
	if math.Abs(ftp.Mean.Exec-bt.Mean.Exec) > 1e-6 {
		t.Error("exec time depends on protocol")
	}
}

func TestBlastTooManyWorkers(t *testing.T) {
	if _, err := BlastRun(testbed.DSLLab(), 100, DefaultBlastParams("ftp")); err == nil {
		t.Error("oversubscribed platform accepted")
	}
}

func TestTestbedPresets(t *testing.T) {
	if got := testbed.GdX().TotalNodes(); got != 312 {
		t.Errorf("GdX nodes = %d", got)
	}
	if got := testbed.Grid5000().TotalNodes(); got != 544 {
		t.Errorf("Grid5000 nodes = %d (want 312+120+47+65)", got)
	}
	if got := testbed.DSLLab().TotalNodes(); got != 12 {
		t.Errorf("DSLLab nodes = %d", got)
	}
	if _, _, err := testbed.GdX().NodeSpec(311); err != nil {
		t.Errorf("NodeSpec(311): %v", err)
	}
	if _, _, err := testbed.GdX().NodeSpec(312); err == nil {
		t.Error("NodeSpec out of range accepted")
	}
}

func TestQuickBroadcastMonotoneInSize(t *testing.T) {
	// Completion time must be monotone in file size for both protocols.
	p := testbed.GdX()
	f := func(aSeed, bSeed uint8) bool {
		a := float64(aSeed%200+1) * mb
		b := float64(bSeed%200+1) * mb
		if a > b {
			a, b = b, a
		}
		ftpA := FTPBroadcast(p, 40, a, nil).Completion
		ftpB := FTPBroadcast(p, 40, b, nil).Completion
		btA := SwarmBroadcast(p, 40, a, nil, nil).Completion
		btB := SwarmBroadcast(p, 40, b, nil, nil).Completion
		return ftpA <= ftpB+1e-9 && btA <= btB+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSwarmBroadcastWithOverhead(t *testing.T) {
	p := testbed.GdX()
	plain := SwarmBroadcast(p, 50, 100*mb, nil, nil)
	withOv := SwarmBroadcast(p, 50, 100*mb, DefaultOverhead(), nil)
	if withOv.Completion <= plain.Completion {
		t.Errorf("overheaded swarm (%.1fs) not slower than plain (%.1fs)", withOv.Completion, plain.Completion)
	}
	if withOv.Requests == 0 || withOv.ControlBytes == 0 {
		t.Error("no control traffic accounted for swarm overhead")
	}
}

func TestBroadcastPerNodeSorted(t *testing.T) {
	p := testbed.GdX()
	for _, proto := range []string{"ftp", "bittorrent"} {
		r, err := Broadcast(p, proto, 30, 50*mb, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.PerNode) != 30 {
			t.Fatalf("%s: PerNode = %d", proto, len(r.PerNode))
		}
		for i := 1; i < len(r.PerNode); i++ {
			if r.PerNode[i] < r.PerNode[i-1] {
				t.Fatalf("%s: PerNode not sorted", proto)
			}
		}
		if r.Completion != r.PerNode[len(r.PerNode)-1] {
			t.Errorf("%s: Completion %.2f != last PerNode %.2f", proto, r.Completion, r.PerNode[len(r.PerNode)-1])
		}
	}
}
