package simgrid

import (
	"fmt"
	"time"

	"bitdew/internal/attr"
	"bitdew/internal/data"
	"bitdew/internal/scheduler"
	"bitdew/internal/simnet"
	"bitdew/internal/testbed"
)

// FaultEvent is one node's life in the fault-tolerance scenario: the Gantt
// row of Figure 4 (waiting time, download time, crash mark, bandwidth).
type FaultEvent struct {
	Node string
	// Arrival is when the node joined the system.
	Arrival float64
	// DownloadStart is when the scheduler assigned the datum and the
	// transfer began; DownloadStart-Arrival is the red "waiting" box,
	// dominated by the failure detector (3 heartbeats).
	DownloadStart float64
	// DownloadEnd is transfer completion (end of the blue box).
	DownloadEnd float64
	// CrashedAt is the node's failure time (0 if it survived).
	CrashedAt float64
	// BandwidthBps is the observed mean download rate.
	BandwidthBps float64
}

// FaultResult is the full scenario outcome.
type FaultResult struct {
	Events []FaultEvent
	// ReplicaTimeline samples (time, liveReplicas) after every event.
	ReplicaTimeline [][2]float64
}

// FaultScenario reproduces the §4.4 experiment on the DSL-Lab platform
// using the real Data Scheduler driven on virtual time: a datum with
// replica = r and fault tolerance = true is placed on r nodes; every
// killPeriod seconds one owner crashes and a fresh node arrives. The
// scheduler's timeout (3 × heartbeat) detects the failure and re-schedules
// the datum to the newcomer, keeping the live replica count at r.
func FaultScenario(p testbed.Platform, size float64, replica int, kills int, killPeriod, heartbeat float64) FaultResult {
	sim := simnet.New()
	sim.AddNode("server", p.ServerUpBps, p.ServerDownBps)

	total := p.TotalNodes()
	if replica+kills > total {
		kills = total - replica
	}
	names := make([]string, total)
	for i := 0; i < total; i++ {
		c, _, _ := p.NodeSpec(i)
		names[i] = c.Name // DSL-Lab presets have one node per cluster
		sim.AddNode(names[i], c.UpBps, c.DownBps)
	}

	ds := scheduler.New()
	ds.Timeout = time.Duration(3 * heartbeat * float64(time.Second))
	epoch := time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC)
	ds.SetClock(func() time.Time {
		return epoch.Add(time.Duration(sim.Now() * float64(time.Second)))
	})

	d := *data.NewFromBytes("replicated", []byte("x"))
	d.Size = int64(size)
	ds.Schedule(d, attr.Attribute{Name: "r", Replica: replica, FaultTolerant: true, Protocol: "ftp"})

	events := make(map[string]*FaultEvent)
	var result FaultResult
	alive := make(map[string]bool)
	// holds marks the datum as part of a node's reservoir dataset from the
	// moment it is assigned (the set Ψk the host manages), so ownership
	// heartbeats continue during long ADSL downloads; downloaded marks
	// actual replica availability for the timeline.
	holds := make(map[string]bool)
	downloaded := make(map[string]bool)

	recordReplicas := func() {
		live := 0
		for n := range downloaded {
			if alive[n] {
				live++
			}
		}
		result.ReplicaTimeline = append(result.ReplicaTimeline, [2]float64{sim.Now(), float64(live)})
	}

	// tick is one heartbeat for a node: sync with the scheduler, start
	// downloads for new assignments, and re-arm.
	var tick func(name string)
	tick = func(name string) {
		if !alive[name] {
			return
		}
		var cache []data.UID
		if holds[name] {
			cache = append(cache, d.UID)
		}
		res := ds.Sync(name, cache)
		for _, as := range res.Fetch {
			ev := events[name]
			if ev.DownloadStart < 0 {
				ev.DownloadStart = sim.Now()
			}
			node := name
			holds[node] = true
			sim.StartFlowF("server", node, float64(as.Data.Size), func(at float64) {
				ev := events[node]
				ev.DownloadEnd = at
				if at > ev.DownloadStart {
					ev.BandwidthBps = float64(as.Data.Size) / (at - ev.DownloadStart)
				}
				downloaded[node] = true
				recordReplicas()
			}, nil)
		}
		sim.After(heartbeat, func() { tick(name) })
	}

	arrive := func(name string, at float64) {
		sim.At(at, func() {
			alive[name] = true
			sim.ReviveNode(name)
			events[name] = &FaultEvent{Node: name, Arrival: sim.Now(), DownloadStart: -1}
			tick(name)
		})
	}

	// Initial population: the first `replica` nodes are online at t=0.
	for i := 0; i < replica; i++ {
		arrive(names[i], 0)
	}
	// Churn: every killPeriod, the oldest holder crashes and a new node
	// arrives simultaneously (the experiment's protocol).
	for k := 0; k < kills; k++ {
		at := killPeriod * float64(k+1)
		victimIdx := k // kill in arrival order
		newcomer := replica + k
		sim.At(at, func() {
			victim := names[victimIdx]
			alive[victim] = false
			if ev := events[victim]; ev != nil {
				ev.CrashedAt = sim.Now()
			}
			sim.FailNode(victim)
			recordReplicas()
		})
		arrive(names[newcomer], at)
	}

	horizon := killPeriod*float64(kills+1) + 60
	sim.RunUntil(horizon)

	for i := 0; i < replica+kills && i < total; i++ {
		if ev := events[names[i]]; ev != nil {
			result.Events = append(result.Events, *ev)
		}
	}
	return result
}

// FormatGantt renders the scenario as the textual Gantt chart of Figure 4.
func (r FaultResult) FormatGantt() string {
	out := "node    arrival  wait[s]  download[s]  bandwidth  crashed\n"
	for _, e := range r.Events {
		wait := e.DownloadStart - e.Arrival
		dl := e.DownloadEnd - e.DownloadStart
		crash := "-"
		if e.CrashedAt > 0 {
			crash = fmt.Sprintf("t=%.0fs", e.CrashedAt)
		}
		if e.DownloadStart < 0 { // never scheduled (crashed too early)
			wait, dl = 0, 0
		}
		out += fmt.Sprintf("%-7s %7.1f  %7.1f  %11.1f  %6.0fKB/s  %s\n",
			e.Node, e.Arrival, wait, dl, e.BandwidthBps/1e3, crash)
	}
	return out
}
