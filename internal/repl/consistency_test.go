package repl

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"bitdew/internal/db"
)

// The consistency property: after any prefix-closed mutation stream is
// applied to a primary's feed — puts, deletes, overwrites, deletes of
// absent keys, across any mix of tables — and the plane reports
// replicated, the replica's namespace for that primary holds EXACTLY the
// primary's live rows, byte for byte. The streams come from the durable
// store's fuzz corpus (internal/db/testdata/fuzz/FuzzReplay), so the same
// adversarial logs that exercise WAL replay also exercise the ship/apply
// pipeline, and every new crash-shape the fuzzer finds automatically
// becomes a replication test case. A replica kill+restart is interleaved
// mid-stream, so each corpus entry also crosses the snapshot-resync path,
// not just incremental shipping.

// loadFuzzCorpus decodes every seed in the FuzzReplay corpus into its
// mutation stream. Corpus files are Go fuzz v1 format: a header line, then
// one []byte("...") literal holding a gob stream of walRecords — exactly
// what db.DecodeMutations reads (tolerating torn/corrupt tails the same
// way WAL replay does, so seed-not-gob and seed-torn-* yield the
// well-formed prefix).
func loadFuzzCorpus(t *testing.T) map[string][]db.Mutation {
	t.Helper()
	dir := filepath.Join("..", "db", "testdata", "fuzz", "FuzzReplay")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fuzz corpus missing: %v", err)
	}
	corpus := make(map[string][]db.Mutation)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(string(raw), "\n")
		if len(lines) < 2 || !strings.HasPrefix(lines[0], "go test fuzz v1") {
			t.Fatalf("%s: not a fuzz corpus file", e.Name())
		}
		lit := strings.TrimSpace(lines[1])
		lit = strings.TrimPrefix(lit, "[]byte(")
		lit = strings.TrimSuffix(lit, ")")
		payload, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s: unquote: %v", e.Name(), err)
		}
		// Corrupt tails are the corpus's point: take the well-formed prefix.
		muts, _ := db.DecodeMutations([]byte(payload))
		corpus[e.Name()] = muts
	}
	if len(corpus) == 0 {
		t.Fatal("fuzz corpus is empty")
	}
	return corpus
}

// applyMutations replays a decoded stream onto a primary's feed. Unknown
// ops are skipped — the WAL replayer ignores them too, and the feed only
// ever emits 'P'/'D'.
func applyMutations(t *testing.T, feed *db.FeedStore, muts []db.Mutation) {
	t.Helper()
	for _, m := range muts {
		var err error
		switch m.Op {
		case 'P':
			err = feed.Put(m.Table, m.Key, m.Value)
		case 'D':
			err = feed.Delete(m.Table, m.Key)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

// tableRows scans one table of a store into a key→value map.
func tableRows(t *testing.T, s db.Store, table string) map[string][]byte {
	t.Helper()
	rows := make(map[string][]byte)
	err := s.Scan(table, func(key string, value []byte) bool {
		rows[key] = append([]byte(nil), value...)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// assertReplicaMatches compares, for every table the stream touched, the
// primary's live rows against the replica's namespace for that primary.
func assertReplicaMatches(t *testing.T, primary *testShard, replica *testShard, src int, tables []string) {
	t.Helper()
	for _, table := range tables {
		want := tableRows(t, primary.feed, table)
		got := tableRows(t, replica.node.rstore, nsTable(src, table))
		if len(got) != len(want) {
			t.Errorf("table %q: primary has %d rows, replica has %d", table, len(want), len(got))
		}
		for k, wv := range want {
			gv, ok := got[k]
			if !ok {
				t.Errorf("table %q: row %q missing on replica", table, k)
				continue
			}
			if !bytes.Equal(gv, wv) {
				t.Errorf("table %q row %q: primary %q, replica %q", table, k, wv, gv)
			}
		}
		for k := range got {
			if _, ok := want[k]; !ok {
				t.Errorf("table %q: replica holds row %q the primary does not", table, k)
			}
		}
	}
}

// streamTables lists the distinct tables a stream touches, sorted.
func streamTables(muts []db.Mutation) []string {
	seen := make(map[string]bool)
	for _, m := range muts {
		seen[m.Table] = true
	}
	tables := make([]string, 0, len(seen))
	for table := range seen {
		tables = append(tables, table)
	}
	sort.Strings(tables)
	return tables
}

// TestReplicaConsistencyCorpus replays each fuzz-corpus stream onto a
// 2-shard R=2 plane's primary with a replica crash+restart in the middle,
// then asserts the replica namespace is byte-identical to the primary's
// live state. The split forces half the stream through incremental
// shipping, the restart through full snapshot resync, and the second half
// through shipping-after-resync.
func TestReplicaConsistencyCorpus(t *testing.T) {
	for name, muts := range loadFuzzCorpus(t) {
		muts := muts
		t.Run(name, func(t *testing.T) {
			p := newPlane(t, 2, 2)
			half := len(muts) / 2
			applyMutations(t, p.shards[0].feed, muts[:half])
			if err := p.shards[0].node.WaitReplicated(testWait); err != nil {
				t.Fatal(err)
			}
			// Crash the replica: everything shipped so far is lost with its
			// in-memory store; the restart must rebuild it from a snapshot.
			p.kill(1)
			applyMutations(t, p.shards[0].feed, muts[half:])
			p.restart(1)
			if err := p.shards[0].node.WaitReplicated(testWait); err != nil {
				t.Fatal(err)
			}
			assertReplicaMatches(t, p.shards[0], p.shards[1], 0, streamTables(muts))
		})
	}
}

// TestReplicaConsistencyCombined concatenates the whole corpus into one
// long stream — overwrite shapes from one seed interleave with delete
// shapes from another — and replays it with a replica restart every few
// records, so resync happens repeatedly at arbitrary stream positions.
func TestReplicaConsistencyCombined(t *testing.T) {
	corpus := loadFuzzCorpus(t)
	names := make([]string, 0, len(corpus))
	for name := range corpus {
		names = append(names, name)
	}
	sort.Strings(names)
	var all []db.Mutation
	for i, name := range names {
		for _, m := range corpus[name] {
			// Suffix keys per seed so streams overlap on tables but not on
			// every key: both shared-key overwrites (same seed) and
			// disjoint-key merges (across seeds) are represented.
			m.Key = m.Key + "#" + fmt.Sprintf("%02d", i%3)
			all = append(all, m)
		}
	}
	if len(all) < 8 {
		t.Fatalf("combined corpus only has %d mutations — corpus shrank?", len(all))
	}

	p := newPlane(t, 2, 2)
	chunk := (len(all) + 3) / 4
	for start := 0; start < len(all); start += chunk {
		end := start + chunk
		if end > len(all) {
			end = len(all)
		}
		applyMutations(t, p.shards[0].feed, all[start:end])
		if err := p.shards[0].node.WaitReplicated(testWait); err != nil {
			t.Fatal(err)
		}
		// Bounce the replica between chunks: each boundary is a fresh
		// epoch and a fresh snapshot resync at a different stream offset.
		if end < len(all) {
			p.kill(1)
			p.restart(1)
		}
	}
	if err := p.shards[0].node.WaitReplicated(testWait); err != nil {
		t.Fatal(err)
	}
	assertReplicaMatches(t, p.shards[0], p.shards[1], 0, streamTables(all))
}
