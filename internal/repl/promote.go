package repl

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"bitdew/internal/db"
)

// Promotion and boot-time ownership resolution.
//
// Ownership is ordered by claim epochs (TableOwner rows, shipped in every
// stream like ordinary rows): whoever adopts a range writes a claim strictly
// higher than every claim it can see, so "who owned this range most
// recently" is answerable from any replica namespace, across arbitrary
// kill/promote/restart interleavings. Promotion itself is guarded twice:
// a live earlier candidate always wins (the probe pass), and a promotion
// in flight is visible to probers as Promoting, which they treat as
// unresolved and wait out rather than assuming either outcome.

// bootProbePasses bounds how long a booting shard waits for an in-flight
// promotion of one of its ranges to resolve (passes x bootProbeDelay).
const bootProbePasses = 50

// Promote makes this shard the owner of rangeID, if every earlier candidate
// in the range's replica set is dead. It is called remotely (by the
// client-side failover router, or by a peer's boot check) and locally.
// A no-op when the range is already served here.
func (n *Node) Promote(rangeID int) error {
	cands := n.successors(rangeID)
	pos := -1
	for i, c := range cands {
		if c == n.cfg.Shard {
			pos = i
			break
		}
	}
	if pos < 0 {
		return fmt.Errorf("repl: shard %d is not in range %d's replica set %v", n.cfg.Shard, rangeID, cands)
	}
	n.mu.Lock()
	if _, ok := n.serving[rangeID]; ok {
		n.mu.Unlock()
		return nil
	}
	if n.promoting[rangeID] {
		n.mu.Unlock()
		return fmt.Errorf("repl: promotion of range %d already in flight on shard %d", rangeID, n.cfg.Shard)
	}
	n.promoting[rangeID] = true
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.promoting, rangeID)
		n.mu.Unlock()
	}()

	// Split-brain guard: any earlier candidate that answers at all — serving,
	// promoting, or merely alive — outranks us. Probes run outside n.mu.
	for _, c := range cands[:pos] {
		rep, err := n.probeOwner(n.cfg.Addrs[c], rangeID)
		if err != nil {
			continue // dead for this pass
		}
		return fmt.Errorf("repl: refusing to promote range %d on shard %d: earlier candidate shard %d is alive (serving=%v promoting=%v)",
			rangeID, n.cfg.Shard, rep.Shard, rep.Serving, rep.Promoting)
	}
	return n.commitPromotion(rangeID)
}

// commitPromotion adopts rangeID: pick the newest claim visible here, copy
// that stream's rows for the range into the live store (re-feeding them, so
// they ship onward to our own replicas), rebuild scheduler state, bump the
// claim, and open the gate.
func (n *Node) commitPromotion(rangeID int) error {
	src, claim := n.bestClaim(rangeID)
	adopted := 0
	if src >= 0 {
		for _, tbl := range n.cfg.GatedTables {
			rows, err := n.claimRows(src, tbl, rangeID)
			if err != nil {
				return err
			}
			keys := make([]string, 0, len(rows))
			for k := range rows {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if err := n.cfg.Feed.Put(tbl, k, rows[k]); err != nil {
					return fmt.Errorf("repl: promote range %d: adopting %s/%s: %w", rangeID, tbl, k, err)
				}
				if tbl == n.cfg.ContentTable {
					n.pull.enqueue(k)
				}
				adopted++
			}
		}
		if n.cfg.SchedulerTable != "" && n.cfg.AdoptScheduler != nil {
			rows, err := n.claimRows(src, n.cfg.SchedulerTable, rangeID)
			if err != nil {
				return err
			}
			if len(rows) > 0 {
				if err := n.cfg.AdoptScheduler(rows); err != nil {
					return fmt.Errorf("repl: promote range %d: adopting scheduler rows: %w", rangeID, err)
				}
				adopted += len(rows)
			}
		}
	}
	if err := n.cfg.Feed.Put(TableOwner, ownerKey(rangeID), encodeClaim(claim+1)); err != nil {
		return fmt.Errorf("repl: promote range %d: writing claim: %w", rangeID, err)
	}
	n.mu.Lock()
	n.serving[rangeID] = claim + 1
	// The adopted range's surviving candidates must now receive OUR stream:
	// they are the next line of defence for the range, and (when the dead
	// primary returns) the retrying shipper doubles as its rejoin catch-up.
	for _, c := range n.successors(rangeID) {
		if c != n.cfg.Shard {
			n.startShipperLocked(n.cfg.Addrs[c])
		}
	}
	n.mu.Unlock()
	n.logf("repl: shard %d promoted to owner of range %d (claim %d, %d rows adopted from %s)",
		n.cfg.Shard, rangeID, claim+1, adopted, claimSource(src))
	return nil
}

func claimSource(src int) string {
	if src < 0 {
		return "own live store"
	}
	return "stream of shard " + strconv.Itoa(src)
}

// bestClaim picks the stream holding the newest ownership claim on rangeID
// visible at this shard: our own live store (src -1) or any replica
// namespace. Higher claim epoch wins; our own store wins ties, so a shard
// that was itself the last owner adopts from its own (freshest) rows.
func (n *Node) bestClaim(rangeID int) (src int, epoch uint64) {
	src = -1
	if v, ok, _ := n.cfg.Feed.Get(TableOwner, ownerKey(rangeID)); ok {
		epoch = decodeClaim(v)
	}
	n.mu.Lock()
	sources := make([]int, 0, len(n.replicas))
	for s := range n.replicas {
		sources = append(sources, s)
	}
	n.mu.Unlock()
	sort.Ints(sources) // deterministic tie-break across equal remote claims
	for _, s := range sources {
		v, ok, err := n.rstore.Get(nsTable(s, TableOwner), ownerKey(rangeID))
		if err != nil || !ok {
			continue
		}
		if e := decodeClaim(v); e > epoch || (src == -1 && epoch == 0 && e == 0) {
			// A remote claim-0 beats NO local claim (epoch 0 with no row):
			// the original owner's replicated rows are better than nothing.
			if _, hasLocal, _ := n.cfg.Feed.Get(TableOwner, ownerKey(rangeID)); e > epoch || !hasLocal {
				src, epoch = s, e
			}
		}
	}
	return src, epoch
}

// claimRows collects rangeID's rows of one table from a stream: src -1
// reads the live store, otherwise the source's replica namespace. Only keys
// homing on rangeID qualify — a stream carries its shard's whole state,
// which after promotions can span several ranges.
func (n *Node) claimRows(src int, table string, rangeID int) (map[string][]byte, error) {
	store, tbl := db.Store(n.cfg.Feed), table
	if src >= 0 {
		store, tbl = n.rstore, nsTable(src, table)
	}
	rows := make(map[string][]byte)
	err := store.Scan(tbl, func(k string, v []byte) bool {
		if n.place.ShardOf(k) == rangeID {
			rows[k] = append([]byte(nil), v...)
		}
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("repl: collecting %s rows of range %d: %w", table, rangeID, err)
	}
	return rows, nil
}

// claimedRanges lists every range this shard's live store holds an
// ownership claim for, plus its own home range.
func (n *Node) claimedRanges() []int {
	ranges := []int{n.cfg.Shard}
	seen := map[int]bool{n.cfg.Shard: true}
	_ = n.cfg.Feed.Scan(TableOwner, func(k string, _ []byte) bool {
		if r, err := strconv.Atoi(k); err == nil && !seen[r] && r >= 0 && r < len(n.cfg.Addrs) {
			seen[r] = true
			ranges = append(ranges, r)
		}
		return true
	})
	sort.Ints(ranges)
	return ranges
}

// bootCheck resolves ownership of every range this shard has a stake in
// BEFORE the rpc server answers: for each, if a peer candidate is serving
// it we stand down (and, for our home range, rejoin its owner as a
// replica); if a promotion is in flight we wait for it to resolve; if
// nobody has it, we adopt it with a bumped claim. The ordering — resolve
// first, serve after — is what makes a restart split-brain-free: no client
// or peer can observe this shard alive while its ownership is undecided.
func (n *Node) bootCheck() {
	for _, r := range n.claimedRanges() {
		n.bootResolveRange(r)
	}
}

func (n *Node) bootResolveRange(rangeID int) {
	cands := n.successors(rangeID)
	for pass := 0; pass < bootProbePasses; pass++ {
		ownerAddr := ""
		promoting := false
		for _, c := range cands {
			if c == n.cfg.Shard {
				continue
			}
			rep, err := n.probeOwner(n.cfg.Addrs[c], rangeID)
			if err != nil {
				continue
			}
			if rep.Serving {
				ownerAddr = n.cfg.Addrs[c]
				break
			}
			if rep.Promoting {
				promoting = true
			}
		}
		switch {
		case ownerAddr != "":
			n.logf("repl: shard %d range %d is owned by %s; standing down", n.cfg.Shard, rangeID, ownerAddr)
			if rangeID == n.cfg.Shard {
				n.rejoinOwner(ownerAddr)
			}
			return
		case promoting:
			// An in-flight promotion will land Serving or die; wait it out.
			if !n.sleepStop(100 * time.Millisecond) {
				return
			}
		default:
			n.adopt(rangeID, true)
			return
		}
	}
	// The promotion never resolved (its shard died mid-flight): take over.
	n.adopt(rangeID, true)
}

// rejoinOwner registers us as an extra ship target of our range's current
// owner. Best-effort: the owner's own retrying shipper (started at its
// promotion) reaches us anyway; this just shortens the catch-up.
func (n *Node) rejoinOwner(ownerAddr string) {
	for i := 0; i < 5; i++ {
		if err := n.callRejoin(ownerAddr); err == nil {
			return
		}
		if !n.sleepStop(200 * time.Millisecond) {
			return
		}
	}
	n.logf("repl: shard %d could not rejoin owner %s; waiting for its shipper", n.cfg.Shard, ownerAddr)
}

// adoptOwnRange is the fresh-boot fast path (SkipBootCheck): the whole
// plane is starting together, so nobody can have promoted anything — each
// shard takes its home range, keeping any claim recovered from disk.
func (n *Node) adoptOwnRange() {
	n.adopt(n.cfg.Shard, false)
}

// adopt marks rangeID served here. bump writes a claim strictly above our
// stored one — required on restart readoption, where a peer may have owned
// the range while we were down and died before we returned: without the
// bump, its (unreachable) higher claim would outrank our live one at the
// next promotion and resurrect staler rows.
func (n *Node) adopt(rangeID int, bump bool) {
	var claim uint64
	if v, ok, _ := n.cfg.Feed.Get(TableOwner, ownerKey(rangeID)); ok {
		claim = decodeClaim(v)
		if bump {
			claim++
		}
	}
	if err := n.cfg.Feed.Put(TableOwner, ownerKey(rangeID), encodeClaim(claim)); err != nil {
		n.logf("repl: shard %d adopting range %d: writing claim: %v", n.cfg.Shard, rangeID, err)
	}
	n.mu.Lock()
	n.serving[rangeID] = claim
	for _, c := range n.successors(rangeID) {
		if c != n.cfg.Shard {
			n.startShipperLocked(n.cfg.Addrs[c])
		}
	}
	n.mu.Unlock()
	n.logf("repl: shard %d serving range %d (claim %d)", n.cfg.Shard, rangeID, claim)
}
