package repl

import (
	"fmt"
	"sync"
	"time"

	"bitdew/internal/db"
	"bitdew/internal/rpc"
)

const (
	// shipBatchMax bounds mutations per Apply frame; the shipper drains the
	// feed opportunistically up to it, so a bursty primary ships large
	// batches and an idle one ships singles with no added latency.
	shipBatchMax = 256
	// shipBuffer is the feed subscription depth; a replica that falls this
	// far behind is cut loose (db.ErrFeedLost) and resynced from a snapshot
	// rather than stalling the primary's write path.
	shipBuffer = 8192
	// shipCallTimeout bounds each Apply/Sync round trip. Snapshots can be
	// large, so this is generous; the stop channel still bounds shutdown.
	shipCallTimeout = 30 * time.Second

	shipBackoff    = 50 * time.Millisecond
	shipBackoffMax = 2 * time.Second
)

// shipper streams this shard's feed to one replica: snapshot first, then
// the tail in batches, tracking the replica's acked sequence number. It
// survives replica restarts (NeedSync → fresh snapshot) and outlives
// transport failures (the lazy reconnecting client plus its own stop-gated
// retry loop), so a successor that is down simply catches up when it
// returns.
type shipper struct {
	n      *Node
	target string
	client rpc.Client
	poke   chan struct{} // WaitReplicated heartbeat requests

	mu      sync.Mutex
	acked   uint64
	synced  bool
	pending int // replica's reported outstanding content pulls
}

// startShipperLocked registers and starts a shipper to addr (idempotent;
// never to ourselves). Caller holds n.mu.
func (n *Node) startShipperLocked(addr string) {
	if addr == n.cfg.Addrs[n.cfg.Shard] {
		return
	}
	if _, ok := n.shippers[addr]; ok {
		return
	}
	s := &shipper{
		n:      n,
		target: addr,
		client: rpc.DialAutoLazy(addr, n.dialOpts(addr, shipCallTimeout)...),
		poke:   make(chan struct{}, 1),
	}
	n.shippers[addr] = s
	n.wg.Add(1)
	go s.run()
}

func (s *shipper) state() (acked uint64, synced bool, pendingContent int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acked, s.synced, s.pending
}

func (s *shipper) record(ack uint64, pendingContent int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.acked = ack
	s.pending = pendingContent
}

func (s *shipper) setSynced(v bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.synced = v
}

// run is the ship cycle: cut an atomic snapshot+subscription, push the
// snapshot until the replica acknowledges it, then stream the tail. Any
// NeedSync, epoch drift or lost subscription restarts the cycle.
func (s *shipper) run() {
	defer s.n.wg.Done()
	defer s.client.Close()
	for {
		select {
		case <-s.n.stop:
			return
		default:
		}
		seq, snap, feed, err := s.n.cfg.Feed.SnapshotAndFollow(shipBuffer)
		if err != nil {
			return // store closed: the container is shutting down
		}
		s.setSynced(false)
		if !s.pushSnapshot(seq, snap) {
			return
		}
		s.setSynced(true)
		s.n.logf("repl: shard %d shipped snapshot seq %d (%d rows) to %s", s.n.cfg.Shard, seq, len(snap), s.target)
		if !s.stream(feed) {
			return
		}
		// Resync requested: drop the stale subscription and start over.
	}
}

// pushSnapshot sends the Sync frame until the replica accepts it; false
// means the node stopped.
func (s *shipper) pushSnapshot(seq uint64, snap []db.Mutation) bool {
	args := SyncArgs{Shard: s.n.cfg.Shard, Epoch: s.n.Epoch(), Seq: seq, Snapshot: snap}
	backoff := shipBackoff
	for {
		var rep SyncReply
		//vet:ignore deadlineprop retry-forever is the shipper's contract (a down replica catches up when it returns); every iteration passes through n.sleepStop, which selects on n.stop — shutdown, not a deadline, bounds this loop
		err := s.client.Call(ServiceName, "Sync", args, &rep)
		if err == nil {
			s.record(rep.AckSeq, rep.PendingContent)
			return true
		}
		// Sync is idempotent (it replaces the namespace wholesale), so
		// resending after any failure — including rpc.ErrDeadline's
		// possibly-delivered case — is safe.
		if !s.n.sleepStop(backoff) {
			return false
		}
		if backoff *= 2; backoff > shipBackoffMax {
			backoff = shipBackoffMax
		}
	}
}

// stream ships tail mutations as they arrive. It returns true when the
// replica asked for a resync (or the subscription overflowed) and false
// when the node is stopping or the store closed.
func (s *shipper) stream(feed *db.Feed) (resync bool) {
	var pending []db.Mutation
	for {
		select {
		case <-s.n.stop:
			return false
		case <-s.poke:
			// Heartbeat: an empty Apply refreshes the replica's ack and
			// pending-content report without shipping anything.
			rep, ok := s.applyBatch(nil)
			if !ok {
				return false
			}
			if rep.NeedSync {
				return true
			}
		case m, ok := <-feed.C():
			if !ok {
				return feed.Err() == db.ErrFeedLost
			}
			pending = append(pending, m)
			closed := false
			for !closed && len(pending) < shipBatchMax {
				select {
				case m2, ok2 := <-feed.C():
					if !ok2 {
						closed = true
					} else {
						pending = append(pending, m2)
					}
				default:
					closed = true // nothing more buffered; ship what we have
					goto send
				}
			}
		send:
			rep, ok2 := s.applyBatch(pending)
			if !ok2 {
				return false
			}
			if rep.NeedSync {
				return true
			}
			pending = pending[:0]
		}
	}
}

// applyBatch sends one Apply frame until it is answered; false means the
// node stopped. Apply is sequence-numbered and duplicate-tolerant on the
// replica, so retrying after ANY failure — transport or deadline — can
// never double-apply; this is the designed exception to the plane's
// never-replay-a-possibly-executed-call rule.
func (s *shipper) applyBatch(muts []db.Mutation) (ApplyReply, bool) {
	args := ApplyArgs{Shard: s.n.cfg.Shard, Epoch: s.n.Epoch(), Muts: muts}
	backoff := shipBackoff
	for {
		var rep ApplyReply
		//vet:ignore deadlineprop retry-forever is the shipper's contract (a down replica catches up when it returns); every iteration passes through n.sleepStop, which selects on n.stop — shutdown, not a deadline, bounds this loop
		err := s.client.Call(ServiceName, "Apply", args, &rep)
		if err == nil {
			s.record(rep.AckSeq, rep.PendingContent)
			return rep, true
		}
		if !s.n.sleepStop(backoff) {
			return ApplyReply{}, false
		}
		if backoff *= 2; backoff > shipBackoffMax {
			backoff = shipBackoffMax
		}
	}
}

// WaitReplicated blocks until every ship target has acknowledged the
// feed's current sequence number and reports no outstanding content pulls,
// or the deadline passes. Idle shippers are poked to heartbeat so a
// replica's pull progress becomes visible without new writes.
func (n *Node) WaitReplicated(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		seq := n.cfg.Feed.Seq()
		n.mu.Lock()
		shippers := make([]*shipper, 0, len(n.shippers))
		for _, s := range n.shippers {
			shippers = append(shippers, s)
		}
		n.mu.Unlock()
		lagging := 0
		for _, s := range shippers {
			acked, synced, pendingContent := s.state()
			if !synced || acked < seq || pendingContent > 0 {
				lagging++
				select {
				case s.poke <- struct{}{}:
				default:
				}
			}
		}
		if lagging == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("repl: shard %d: %d of %d targets lagging after %v (feed seq %d)",
				n.cfg.Shard, lagging, len(shippers), timeout, seq)
		}
		if !n.sleepStop(10 * time.Millisecond) {
			return fmt.Errorf("repl: node stopped while waiting for replication")
		}
	}
}

// puller fetches content for locator rows the replica streams in, storing
// it in this shard's own backend so a promoted shard serves bytes, not just
// metadata, from the first request. Pulls are pull-based and idempotent:
// already-present content is skipped, failed pulls are retried from every
// member of the datum's replica set.
type puller struct {
	n    *Node
	kick chan struct{}

	mu       sync.Mutex
	queue    []string
	queued   map[string]bool
	inflight int
}

func newPuller(n *Node) *puller {
	return &puller{n: n, kick: make(chan struct{}, 1), queued: make(map[string]bool)}
}

// enqueue schedules a pull of uid's content (no-op when already queued).
// The present-content check happens in the pull loop, NOT here: enqueue is
// called with n.mu held and the backend probe is real I/O on dir backends.
func (p *puller) enqueue(uid string) {
	p.mu.Lock()
	if !p.queued[uid] {
		p.queued[uid] = true
		p.queue = append(p.queue, uid)
	}
	p.mu.Unlock()
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

// pending counts queued plus in-flight pulls.
func (p *puller) pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue) + p.inflight
}

func (p *puller) pop() (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.queue) == 0 {
		return "", false
	}
	uid := p.queue[0]
	p.queue = p.queue[1:]
	p.inflight++
	return uid, true
}

// finish retires an in-flight pull; failed pulls requeue for the next round.
func (p *puller) finish(uid string, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.inflight--
	if ok {
		delete(p.queued, uid)
	} else {
		p.queue = append(p.queue, uid)
	}
}

func (p *puller) run() {
	defer p.n.wg.Done()
	for {
		select {
		case <-p.n.stop:
			return
		case <-p.kick:
		}
		for {
			uid, ok := p.pop()
			if !ok {
				break
			}
			//vet:ignore deadlineprop the loop drains a finite queue (every iteration pops or breaks), and a round of failed pulls breaks out through n.sleepStop's stop-gated backoff — it cannot spin against dead peers
			done := p.pullOne(uid)
			p.finish(uid, done)
			if !done {
				// Every source failed (the whole replica set may be mid-
				// failover); back off before the next round instead of
				// spinning against dead peers.
				if !p.n.sleepStop(200 * time.Millisecond) {
					return
				}
				break
			}
		}
	}
}

// pullOne fetches uid's content from any member of its range's replica
// set. True means the content is present locally (pulled or already there).
func (p *puller) pullOne(uid string) bool {
	n := p.n
	if n.cfg.HasContent != nil && n.cfg.HasContent(uid) {
		return true
	}
	if n.cfg.PutContent == nil {
		return true // container replicates metadata only
	}
	for _, member := range n.successors(n.place.ShardOf(uid)) {
		if member == n.cfg.Shard {
			continue
		}
		addr := n.cfg.Addrs[member]
		c, err := rpc.Dial(addr, n.dialOpts(addr, shipCallTimeout)...)
		if err != nil {
			continue
		}
		var rep FetchContentReply
		err = c.Call(ServiceName, "FetchContent", FetchContentArgs{UID: uid}, &rep)
		c.Close()
		if err != nil || !rep.Found {
			continue
		}
		if err := n.cfg.PutContent(uid, rep.Content); err != nil {
			n.logf("repl: shard %d: storing pulled content %s: %v", n.cfg.Shard, uid, err)
			return false
		}
		return true
	}
	return false
}
