// Package repl replicates each shard's key range onto its successor shards
// on the dht.Placement circle, primary/backup style, and drives automatic
// failover when a primary dies.
//
// BitDew's sharded D* service plane (runtime.ShardedContainer, PR 3) spreads
// catalog, repository and scheduler state across N independent containers;
// losing one container made its key range unreachable until an administrator
// intervened. The paper's descendants solved exactly this with replication —
// Sector/Sphere replicates user data across slave servers so a node loss
// costs nothing, and BlobSeer keeps versioned replicated metadata readable
// through churn (PAPERS.md). This package gives the plane the same property:
//
//   - Every shard wraps its live meta store in a db.FeedStore and SHIPS the
//     ordered mutation stream to the R-1 distinct successor shards of its
//     key range (dht.Placement.Successors) — a snapshot first, then the
//     tail, with acked sequence numbers and per-boot stream epochs. A
//     replica that misses mutations or sees a new epoch resynchronises from
//     a fresh snapshot instead of guessing.
//   - Replicas store shipped rows in a SEPARATE in-memory namespace (one
//     per source shard), never in their own live tables, so replica state
//     can never leak into a replica's own outbound stream and cascade.
//   - Content (repository payloads) is pulled, not pushed: a replica that
//     applies a locator row fetches the datum's bytes from the range's
//     members and stores them in its own backend, ready to serve the moment
//     it is promoted.
//   - On primary loss, the client-side failover router (core) asks the
//     first LIVE successor to Promote the range. Promotion probes every
//     earlier candidate (split-brain guard: a live earlier candidate always
//     wins), then atomically adopts the replicated rows into the live
//     store — re-feeding them, so they ship onward to the promoted shard's
//     own successors — and bumps the range's ownership epoch.
//   - A recovered shard asks its successors who owns its range BEFORE it
//     serves: if a successor promoted while it was down, it rejoins as a
//     replica (the owner adds it as an extra ship target) and its stale
//     rows are hidden by the ownership gate. There is no automatic
//     handback — ownership only moves when an owner dies — because handing
//     a range back would need every client to re-route without the death
//     signal they key on.
//
// The ownership gate (Node.Guard / Node.GateUID) is what makes rejoin
// split-brain-free: a shard refuses reads and writes for ranges it does not
// currently own with ErrNotOwner, which clients treat as a safe-to-retry
// redirect (the call was refused, never executed).
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"bitdew/internal/db"
	"bitdew/internal/dht"
	"bitdew/internal/rpc"
)

// ServiceName is the rpc service the replication protocol is served under.
const ServiceName = "repl"

// TableOwner is the live-store table holding one ownership claim per range
// this shard serves: key = range id (decimal), value = 8-byte big-endian
// owner epoch. The rows ship in the feed like any other, so every replica
// knows which stream's claim on a range is newest — promotion picks the
// highest epoch and writes claim+1, giving ownership a total order that
// survives arbitrary kill/promote/rejoin interleavings.
const TableOwner = "repl_owner"

// ErrNotOwner is returned (and recognised across the wire by IsNotOwner)
// when a shard refuses an operation on a key range it does not currently
// own. The refusal happens before any state changes, so callers may always
// retry it elsewhere — unlike rpc.ErrDeadline, it never marks a
// possibly-executed call.
var ErrNotOwner = errors.New("repl: not owner of range")

// IsNotOwner reports whether err is an ownership refusal, including ones
// that crossed the wire as plain strings.
func IsNotOwner(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrNotOwner) || strings.Contains(err.Error(), ErrNotOwner.Error())
}

// DefaultProbeTimeout bounds each liveness/ownership probe of a candidate
// shard. Probes are the failover-latency floor, so this is deliberately
// much shorter than core.DefaultCallTimeout: a candidate that cannot
// answer Owner in this window is treated as dead for this pass.
const DefaultProbeTimeout = 750 * time.Millisecond

// Config wires a replication node into its container.
type Config struct {
	// Shard is this container's own shard index; Addrs is the full
	// membership table in placement order (Addrs[Shard] is our address).
	Shard int
	Addrs []string
	// Replicas is R: each range lives on its primary plus R-1 successors.
	Replicas int
	// Feed is the live meta store, feed-wrapped: every service write flows
	// through it and ships to the replicas. The node also uses it directly
	// (bypassing the ownership gate) to adopt rows at promotion.
	Feed *db.FeedStore
	// GatedTables are the UID-keyed live tables that replicate and that the
	// ownership gate protects (catalog data + locators).
	GatedTables []string
	// SchedulerTable is the UID-keyed scheduler persistence table; its rows
	// replicate like the gated ones but adoption goes through
	// AdoptScheduler so the in-memory scheduler state is rebuilt too.
	SchedulerTable string
	// ContentTable is the table whose Put records mean "this datum's
	// content is committed at the source" (catalog locators); applying one
	// on a replica triggers a content pull.
	ContentTable string
	// AdoptScheduler hands adopted scheduler rows (raw persisted entries,
	// keyed by UID) to the container's scheduler at promotion.
	AdoptScheduler func(rows map[string][]byte) error
	// GetContent / PutContent / HasContent bridge to the repository
	// backend: serving FetchContent to replicas, storing pulled content,
	// and skipping pulls for content already present.
	GetContent func(uid string) ([]byte, error)
	PutContent func(uid string, content []byte) error
	HasContent func(uid string) bool
	// DialOpts, when set, contributes extra dial options for every outbound
	// connection to the given address — the fault-injection hook the
	// crash-point tests script ship-cycle failures through.
	DialOpts func(addr string) []rpc.DialOption
	// ProbeTimeout overrides DefaultProbeTimeout (0 keeps the default).
	ProbeTimeout time.Duration
	// SkipBootCheck skips the who-owns-my-range probe at Start. Only a
	// caller that KNOWS the whole plane is booting fresh (no shard can have
	// promoted anything yet) may set it; restarts must always probe.
	SkipBootCheck bool
	// Logf, when set, receives replication life-cycle events.
	Logf func(format string, args ...any)
}

// replicaState tracks one inbound stream (rows shipped TO us by source).
type replicaState struct {
	epoch  uint64
	last   uint64 // last applied sequence number
	synced bool
	tables map[string]bool // live tables seen, for wholesale resync
}

// Node is one shard's replication endpoint: it ships the shard's own feed
// to its successors, applies the streams shipped to it, answers ownership
// queries, and performs promotion and rejoin. Mount it on the container's
// Mux and Start it before the rpc server begins answering.
type Node struct {
	cfg          Config
	place        *dht.Placement
	rstore       *db.RowStore // replica namespaces: table "r<src>!<table>"
	probeTimeout time.Duration

	stop chan struct{}
	wg   sync.WaitGroup
	pull *puller

	mu        sync.Mutex
	serving   map[int]uint64 // range -> ownership epoch
	promoting map[int]bool
	replicas  map[int]*replicaState
	shippers  map[string]*shipper
	started   bool
	stopped   bool
}

// NewNode builds the replication node. The container must Mount it and,
// once every service is constructed, Start it (before serving rpc).
func NewNode(cfg Config) (*Node, error) {
	if cfg.Replicas < 2 {
		return nil, fmt.Errorf("repl: replication needs >= 2 replicas, got %d", cfg.Replicas)
	}
	if cfg.Shard < 0 || cfg.Shard >= len(cfg.Addrs) {
		return nil, fmt.Errorf("repl: shard %d outside membership of %d", cfg.Shard, len(cfg.Addrs))
	}
	if cfg.Feed == nil {
		return nil, fmt.Errorf("repl: nil feed store")
	}
	n := &Node{
		cfg:          cfg,
		place:        dht.NewPlacement(len(cfg.Addrs)),
		rstore:       db.NewRowStore(),
		probeTimeout: cfg.ProbeTimeout,
		stop:         make(chan struct{}),
		serving:      make(map[int]uint64),
		promoting:    make(map[int]bool),
		replicas:     make(map[int]*replicaState),
		shippers:     make(map[string]*shipper),
	}
	if n.probeTimeout <= 0 {
		n.probeTimeout = DefaultProbeTimeout
	}
	n.pull = newPuller(n)
	return n, nil
}

// Epoch returns this boot's stream epoch.
func (n *Node) Epoch() uint64 { return n.cfg.Feed.Epoch() }

// successors returns the replica set of rangeID under this plane's R.
func (n *Node) successors(rangeID int) []int {
	return n.place.Successors(rangeID, n.cfg.Replicas)
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// Start runs the boot-time ownership check (unless SkipBootCheck), then
// starts the shippers to this shard's successors and the content puller.
// Call it after every service is built and BEFORE the rpc server answers:
// the ordering is part of the split-brain argument — a restarting shard
// resolves who owns its range before any peer or client can observe it
// alive.
func (n *Node) Start() {
	n.mu.Lock()
	if n.started || n.stopped {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.mu.Unlock()

	if n.cfg.SkipBootCheck {
		n.adoptOwnRange()
	} else {
		n.bootCheck()
	}

	n.mu.Lock()
	for _, succ := range n.successors(n.cfg.Shard) {
		if succ != n.cfg.Shard {
			n.startShipperLocked(n.cfg.Addrs[succ])
		}
	}
	n.mu.Unlock()
	n.wg.Add(1)
	go n.pull.run()
}

// Stop terminates the shippers and puller and waits for them.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	started := n.started
	n.mu.Unlock()
	close(n.stop)
	if started {
		n.wg.Wait()
	}
	n.rstore.Close()
}

// Serves reports whether this shard currently owns rangeID.
func (n *Node) Serves(rangeID int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.serving[rangeID]
	return ok
}

// ServingRanges returns the owned ranges and their ownership epochs.
func (n *Node) ServingRanges() map[int]uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[int]uint64, len(n.serving))
	for r, e := range n.serving {
		out[r] = e
	}
	return out
}

// GateUID is the per-key ownership gate: nil when uid's range is served
// here, ErrNotOwner otherwise. The scheduler consults it directly; the
// catalog tables go through Guard.
func (n *Node) GateUID(uid string) error {
	rangeID := n.place.ShardOf(uid)
	if n.Serves(rangeID) {
		return nil
	}
	return fmt.Errorf("%w: key %q homes on range %d", ErrNotOwner, uid, rangeID)
}

// guardStore enforces the ownership gate over the UID-keyed gated tables:
// point operations on a key whose range is not served here are refused with
// ErrNotOwner (before touching state, so they are always safe to retry on
// the real owner), and table walks skip unowned rows so a rejoined shard's
// stale rows are invisible to searches.
type guardStore struct {
	db.Store
	n     *Node
	gated map[string]bool
}

// Guard wraps the live store with the ownership gate. Tables not listed in
// GatedTables pass through untouched.
func (n *Node) Guard(inner db.Store) db.Store {
	gated := make(map[string]bool, len(n.cfg.GatedTables))
	for _, t := range n.cfg.GatedTables {
		gated[t] = true
	}
	return &guardStore{Store: inner, n: n, gated: gated}
}

func (g *guardStore) Put(table, key string, value []byte) error {
	if g.gated[table] {
		if err := g.n.GateUID(key); err != nil {
			return err
		}
	}
	return g.Store.Put(table, key, value)
}

func (g *guardStore) Get(table, key string) ([]byte, bool, error) {
	if g.gated[table] {
		if err := g.n.GateUID(key); err != nil {
			return nil, false, err
		}
	}
	return g.Store.Get(table, key)
}

func (g *guardStore) Delete(table, key string) error {
	if g.gated[table] {
		if err := g.n.GateUID(key); err != nil {
			return err
		}
	}
	return g.Store.Delete(table, key)
}

func (g *guardStore) Keys(table string) ([]string, error) {
	keys, err := g.Store.Keys(table)
	if err != nil || !g.gated[table] {
		return keys, err
	}
	kept := keys[:0]
	for _, k := range keys {
		if g.n.Serves(g.n.place.ShardOf(k)) {
			kept = append(kept, k)
		}
	}
	return kept, nil
}

func (g *guardStore) Scan(table string, fn func(key string, value []byte) bool) error {
	if !g.gated[table] {
		return g.Store.Scan(table, fn)
	}
	return g.Store.Scan(table, func(k string, v []byte) bool {
		if !g.n.Serves(g.n.place.ShardOf(k)) {
			return true
		}
		return fn(k, v)
	})
}

// nsTable maps a (source shard, live table) pair to its replica-namespace
// table in rstore.
func nsTable(src int, table string) string {
	return "r" + strconv.Itoa(src) + "!" + table
}

// ownerKey is the TableOwner row key of a range.
func ownerKey(rangeID int) string { return strconv.Itoa(rangeID) }

func encodeClaim(epoch uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], epoch)
	return b[:]
}

func decodeClaim(v []byte) uint64 {
	if len(v) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(v)
}

// dialOpts assembles the dial options for an outbound connection to addr:
// a call timeout (every loop that ships or probes must be bounded) plus the
// test hook's injected options.
func (n *Node) dialOpts(addr string, timeout time.Duration) []rpc.DialOption {
	opts := []rpc.DialOption{rpc.WithCallTimeout(timeout)}
	if n.cfg.DialOpts != nil {
		opts = append(opts, n.cfg.DialOpts(addr)...)
	}
	return opts
}

// sleepStop waits d or until the node stops; false means stopped.
func (n *Node) sleepStop(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-n.stop:
		return false
	case <-t.C:
		return true
	}
}
