package repl

import (
	"fmt"

	"bitdew/internal/db"
	"bitdew/internal/rpc"
)

// Wire types of the replication protocol. All fields are concrete (splice-
// safe); mutation batches ride the same db.Mutation records the feed emits.

// PingArgs/PingReply probe liveness; a shard answers the moment its rpc
// server is up, which is exactly the instant the split-brain ordering
// argument needs (a shard that answers Ping has already resolved who owns
// its range).
type PingArgs struct{}
type PingReply struct {
	Shard int
	Epoch uint64
}

// ApplyArgs ships a batch of tail mutations of one source shard's stream.
// An empty Muts slice is a heartbeat: the reply reports the replica's
// current ack state without changing anything.
type ApplyArgs struct {
	Shard int    // source shard (whose stream this is)
	Epoch uint64 // source stream epoch
	Muts  []db.Mutation
}

// ApplyReply acks the highest contiguously-applied sequence number.
// NeedSync asks the shipper to restart from a snapshot: the replica has
// never synced, saw a different epoch (source rebooted), or detected a gap.
type ApplyReply struct {
	AckSeq         uint64
	NeedSync       bool
	PendingContent int // content pulls not yet completed on this replica
}

// SyncArgs replaces the replica's whole namespace for the source shard
// with a snapshot cut at sequence number Seq.
type SyncArgs struct {
	Shard    int
	Epoch    uint64
	Seq      uint64
	Snapshot []db.Mutation
}

type SyncReply struct {
	AckSeq         uint64
	PendingContent int
}

// OwnerArgs/OwnerReply answer "who owns this range": Serving means this
// shard does; Promoting means a promotion of that range is in flight here
// (callers must wait for it to resolve rather than assume either outcome).
type OwnerArgs struct{ Range int }
type OwnerReply struct {
	Shard      int
	Serving    bool
	Promoting  bool
	OwnerEpoch uint64
}

// PromoteArgs asks this shard to take ownership of a range whose earlier
// candidates are dead.
type PromoteArgs struct{ Range int }
type PromoteReply struct{ Promoted bool }

// RejoinArgs registers a recovered shard as an extra ship target of this
// shard's stream, so it catches up and can be promoted later.
type RejoinArgs struct{ Addr string }
type RejoinReply struct{ Accepted bool }

// FetchContentArgs pulls one datum's content bytes.
type FetchContentArgs struct{ UID string }
type FetchContentReply struct {
	Found   bool
	Content []byte
}

// StatusArgs/StatusReply expose the node's replication state (CLI `bitdew
// repl`, tests, convergence waits).
type StatusArgs struct{}
type StatusReply struct {
	Shard          int
	Epoch          uint64
	Seq            uint64         // last sequence number fed locally
	Serving        map[int]uint64 // owned ranges -> ownership epoch
	Replicas       map[int]ReplicaStatus
	Targets        []TargetStatus
	PendingContent int
}

type ReplicaStatus struct {
	Epoch  uint64
	AckSeq uint64
	Synced bool
}

type TargetStatus struct {
	Addr           string
	Acked          uint64
	Synced         bool
	PendingContent int
}

// Mount registers the replication protocol on the shard's Mux.
func (n *Node) Mount(m *rpc.Mux) {
	rpc.Register(m, ServiceName, "Ping", func(PingArgs) (PingReply, error) {
		return PingReply{Shard: n.cfg.Shard, Epoch: n.Epoch()}, nil
	})
	rpc.Register(m, ServiceName, "Apply", n.handleApply)
	rpc.Register(m, ServiceName, "Sync", n.handleSync)
	rpc.Register(m, ServiceName, "Owner", n.handleOwner)
	rpc.Register(m, ServiceName, "Promote", n.handlePromote)
	rpc.Register(m, ServiceName, "Rejoin", n.handleRejoin)
	rpc.Register(m, ServiceName, "FetchContent", n.handleFetchContent)
	rpc.Register(m, ServiceName, "Status", n.handleStatus)
}

// handleApply applies a tail batch to the source's replica namespace.
// Duplicates (Seq <= last applied) are dropped — re-sending a possibly-
// delivered batch after an ambiguous failure is safe by design, which is
// why the shipper may retry Apply even after rpc.ErrDeadline. A gap means
// mutations were lost between shipper and replica; the replica refuses the
// whole suffix and asks for a snapshot instead of applying out of order.
func (n *Node) handleApply(a ApplyArgs) (ApplyReply, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.replicas[a.Shard]
	if st == nil || !st.synced || st.epoch != a.Epoch {
		var ack uint64
		if st != nil {
			ack = st.last
		}
		return ApplyReply{AckSeq: ack, NeedSync: true, PendingContent: n.pull.pending()}, nil
	}
	for _, m := range a.Muts {
		if m.Seq <= st.last {
			continue // duplicate delivery
		}
		if m.Seq != st.last+1 {
			return ApplyReply{AckSeq: st.last, NeedSync: true, PendingContent: n.pull.pending()}, nil
		}
		if err := n.applyOneLocked(a.Shard, st, m); err != nil {
			return ApplyReply{AckSeq: st.last}, err
		}
		st.last = m.Seq
	}
	return ApplyReply{AckSeq: st.last, PendingContent: n.pull.pending()}, nil
}

// applyOneLocked writes one mutation into the source's namespace and
// schedules a content pull when it announces committed content.
func (n *Node) applyOneLocked(src int, st *replicaState, m db.Mutation) error {
	tbl := nsTable(src, m.Table)
	st.tables[m.Table] = true
	switch m.Op {
	case 'P':
		if err := n.rstore.Put(tbl, m.Key, m.Value); err != nil {
			return fmt.Errorf("repl: apply: %w", err)
		}
		if m.Table == n.cfg.ContentTable {
			n.pull.enqueue(m.Key)
		}
	case 'D':
		if err := n.rstore.Delete(tbl, m.Key); err != nil {
			return fmt.Errorf("repl: apply: %w", err)
		}
	default:
		return fmt.Errorf("repl: apply: unknown op %q", m.Op)
	}
	return nil
}

// handleSync replaces the source's namespace wholesale with the snapshot.
func (n *Node) handleSync(a SyncArgs) (SyncReply, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	old := n.replicas[a.Shard]
	if old != nil {
		for tbl := range old.tables {
			keys, err := n.rstore.Keys(nsTable(a.Shard, tbl))
			if err != nil {
				return SyncReply{}, fmt.Errorf("repl: sync: %w", err)
			}
			for _, k := range keys {
				if err := n.rstore.Delete(nsTable(a.Shard, tbl), k); err != nil {
					return SyncReply{}, fmt.Errorf("repl: sync: %w", err)
				}
			}
		}
	}
	st := &replicaState{epoch: a.Epoch, last: a.Seq, synced: true, tables: make(map[string]bool)}
	n.replicas[a.Shard] = st
	for _, m := range a.Snapshot {
		if err := n.applyOneLocked(a.Shard, st, m); err != nil {
			st.synced = false
			return SyncReply{}, err
		}
	}
	n.logf("repl: shard %d synced stream of shard %d at epoch %d seq %d (%d rows)",
		n.cfg.Shard, a.Shard, a.Epoch, a.Seq, len(a.Snapshot))
	return SyncReply{AckSeq: st.last, PendingContent: n.pull.pending()}, nil
}

func (n *Node) handleOwner(a OwnerArgs) (OwnerReply, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	epoch, serving := n.serving[a.Range]
	return OwnerReply{
		Shard:      n.cfg.Shard,
		Serving:    serving,
		Promoting:  n.promoting[a.Range],
		OwnerEpoch: epoch,
	}, nil
}

func (n *Node) handlePromote(a PromoteArgs) (PromoteReply, error) {
	if err := n.Promote(a.Range); err != nil {
		return PromoteReply{}, err
	}
	return PromoteReply{Promoted: true}, nil
}

func (n *Node) handleRejoin(a RejoinArgs) (RejoinReply, error) {
	if a.Addr == "" || a.Addr == n.cfg.Addrs[n.cfg.Shard] {
		return RejoinReply{}, fmt.Errorf("repl: rejoin: bad address %q", a.Addr)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		return RejoinReply{}, fmt.Errorf("repl: rejoin: node stopped")
	}
	n.startShipperLocked(a.Addr)
	return RejoinReply{Accepted: true}, nil
}

func (n *Node) handleFetchContent(a FetchContentArgs) (FetchContentReply, error) {
	if n.cfg.GetContent == nil {
		return FetchContentReply{}, nil
	}
	content, err := n.cfg.GetContent(a.UID)
	if err != nil {
		return FetchContentReply{}, nil // absent content is not an error: the puller falls back
	}
	return FetchContentReply{Found: true, Content: content}, nil
}

func (n *Node) handleStatus(StatusArgs) (StatusReply, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	rep := StatusReply{
		Shard:          n.cfg.Shard,
		Epoch:          n.Epoch(),
		Seq:            n.cfg.Feed.Seq(),
		Serving:        make(map[int]uint64, len(n.serving)),
		Replicas:       make(map[int]ReplicaStatus, len(n.replicas)),
		PendingContent: n.pull.pending(),
	}
	for r, e := range n.serving {
		rep.Serving[r] = e
	}
	for src, st := range n.replicas {
		rep.Replicas[src] = ReplicaStatus{Epoch: st.epoch, AckSeq: st.last, Synced: st.synced}
	}
	for _, s := range n.shippers {
		acked, synced, pending := s.state()
		rep.Targets = append(rep.Targets, TargetStatus{Addr: s.target, Acked: acked, Synced: synced, PendingContent: pending})
	}
	return rep, nil
}

// probeOwner asks the shard at addr who owns rangeID, on a fresh bounded
// connection. Any error means "treat as dead for this pass".
func (n *Node) probeOwner(addr string, rangeID int) (OwnerReply, error) {
	c, err := rpc.Dial(addr, n.dialOpts(addr, n.probeTimeout)...)
	if err != nil {
		return OwnerReply{}, err
	}
	defer c.Close()
	var rep OwnerReply
	err = c.Call(ServiceName, "Owner", OwnerArgs{Range: rangeID}, &rep)
	return rep, err
}

// callRejoin asks the owner at addr to add us as an extra ship target.
func (n *Node) callRejoin(addr string) error {
	c, err := rpc.Dial(addr, n.dialOpts(addr, n.probeTimeout)...)
	if err != nil {
		return err
	}
	defer c.Close()
	var rep RejoinReply
	return c.Call(ServiceName, "Rejoin", RejoinArgs{Addr: n.cfg.Addrs[n.cfg.Shard]}, &rep)
}
