package repl

import (
	"testing"

	"bitdew/internal/dht"
	"bitdew/internal/rpc"
)

// The crash-point matrix: the primary dies at precise points in the
// shipping of a mutation — scripted with rpc.FaultPlan on the
// primary→replica link, so the frame carrying the mutation is lost,
// duplicated or retried deterministically — and in every case the
// promoted replica serves a clean prefix of the mutation stream: no torn
// rows, no duplicated application, no reordering. These are the failure
// shapes a whole-server kill (failover_test.go, testbed) cannot reach,
// because there the link and the process die at the same instant.

// faultPlane boots a 2-shard R=2 plane whose shard-0 outbound replication
// dials are armed with plan. Both the Sync and every Apply frame shard 0
// ships to its successor count against the plan, redials included.
func faultPlane(t *testing.T, plan *rpc.FaultPlan) *plane {
	t.Helper()
	return newFaultPlane(t, 2, 2, func(from int, addr string) []rpc.DialOption {
		if from == 0 {
			return []rpc.DialOption{rpc.WithFaultPlan(plan)}
		}
		return nil
	})
}

// dropFrom scripts FaultDrop for the next n frames after the plan's
// current count — "the link is dead from this instant on".
func dropFrom(plan *rpc.FaultPlan, n uint64) uint64 {
	base := plan.Frames()
	for f := base + 1; f <= base+n; f++ {
		plan.Set(f, rpc.Fault{Action: rpc.FaultDrop})
	}
	return base
}

// TestCrashMidShip kills the primary while a mutation is in flight and
// every frame carrying it is lost: the promoted replica must serve the
// acknowledged prefix byte-exact and must NOT have the in-flight row in
// any form — absent entirely, never torn or half-applied.
func TestCrashMidShip(t *testing.T) {
	plan := rpc.NewFaultPlan()
	p := faultPlane(t, plan)
	place := dht.NewPlacement(2)
	kStable := keyOn(place, 0, "midship", 0)
	kTorn := keyOn(place, 0, "midship", 1)

	if err := p.shards[0].feed.Put("dc_data", kStable, []byte("stable")); err != nil {
		t.Fatal(err)
	}
	if err := p.shards[0].node.WaitReplicated(testWait); err != nil {
		t.Fatal(err)
	}
	// From here the link drops everything: the next Apply never arrives.
	base := dropFrom(plan, 512)
	if err := p.shards[0].feed.Put("dc_data", kTorn, []byte("torn")); err != nil {
		t.Fatal(err)
	}
	// The shipper must have attempted (and lost) at least one frame before
	// the crash, or the test degenerates to a plain kill.
	waitFor(t, "dropped ship attempt", func() bool { return plan.Frames() > base })
	p.kill(0)

	if err := p.shards[1].node.Promote(0); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := p.shards[1].feed.Get("dc_data", kStable); err != nil || !ok || string(v) != "stable" {
		t.Fatalf("acknowledged row %s = %q %v %v after promotion", kStable, v, ok, err)
	}
	if v, ok, _ := p.shards[1].feed.Get("dc_data", kTorn); ok {
		t.Fatalf("in-flight row %s = %q survived on the promoted replica — it was never acknowledged", kTorn, v)
	}
}

// TestCrashDuplicatedShip delivers Apply frames twice (the dup fault: the
// replica executes the same batch twice back to back), then kills the
// primary: seq-dedup on the replica must have applied each mutation
// exactly once, so the promoted state shows the LAST write of each key and
// deleted keys stay deleted — a replayed stale batch would resurrect them.
func TestCrashDuplicatedShip(t *testing.T) {
	plan := rpc.NewFaultPlan()
	p := faultPlane(t, plan)
	place := dht.NewPlacement(2)
	kOver := keyOn(place, 0, "dupship", 0)
	kGone := keyOn(place, 0, "dupship", 1)

	if err := p.shards[0].feed.Put("dc_data", kGone, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := p.shards[0].node.WaitReplicated(testWait); err != nil {
		t.Fatal(err)
	}
	// Every frame for a while is delivered twice; the overwrite chain and
	// the delete below ride duplicated frames.
	base := plan.Frames()
	for f := base + 1; f <= base+16; f++ {
		plan.Set(f, rpc.Fault{Action: rpc.FaultDup})
	}
	if err := p.shards[0].feed.Put("dc_data", kOver, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := p.shards[0].node.WaitReplicated(testWait); err != nil {
		t.Fatal(err)
	}
	if err := p.shards[0].feed.Put("dc_data", kOver, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := p.shards[0].feed.Delete("dc_data", kGone); err != nil {
		t.Fatal(err)
	}
	if err := p.shards[0].node.WaitReplicated(testWait); err != nil {
		t.Fatal(err)
	}
	p.kill(0)

	if err := p.shards[1].node.Promote(0); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := p.shards[1].feed.Get("dc_data", kOver); err != nil || !ok || string(v) != "v2" {
		t.Fatalf("overwritten row %s = %q %v %v, want final value v2", kOver, v, ok, err)
	}
	if v, ok, _ := p.shards[1].feed.Get("dc_data", kGone); ok {
		t.Fatalf("deleted row %s = %q resurrected on the promoted replica", kGone, v)
	}
}

// TestCrashShipRetryOnce drops exactly one Apply frame: the shipper's
// redial+resend must deliver the batch exactly once (the replica dedups by
// seq), ordering must hold across the retry, and the promoted state after
// a later crash is the clean final state.
func TestCrashShipRetryOnce(t *testing.T) {
	plan := rpc.NewFaultPlan()
	p := faultPlane(t, plan)
	place := dht.NewPlacement(2)
	k := keyOn(place, 0, "retryship", 0)

	if err := p.shards[0].node.WaitReplicated(testWait); err != nil {
		t.Fatal(err)
	}
	plan.DropFrames(plan.Frames() + 1)
	if err := p.shards[0].feed.Put("dc_data", k, []byte("first")); err != nil {
		t.Fatal(err)
	}
	// The drop breaks the connection; convergence proves the resend landed.
	if err := p.shards[0].node.WaitReplicated(testWait); err != nil {
		t.Fatal(err)
	}
	if err := p.shards[0].feed.Put("dc_data", k, []byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := p.shards[0].node.WaitReplicated(testWait); err != nil {
		t.Fatal(err)
	}
	p.kill(0)

	if err := p.shards[1].node.Promote(0); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := p.shards[1].feed.Get("dc_data", k); err != nil || !ok || string(v) != "second" {
		t.Fatalf("row %s = %q %v %v after retried ship + failover, want second", k, v, ok, err)
	}
}

// TestCrashMidResync drops frames while a restarted replica is being
// resynced from a snapshot: the Sync push retries until accepted, and a
// primary crash after convergence promotes the full state — a replica
// stuck half-synced would be missing the pre-restart rows.
func TestCrashMidResync(t *testing.T) {
	plan := rpc.NewFaultPlan()
	p := faultPlane(t, plan)
	place := dht.NewPlacement(2)
	kOld := keyOn(place, 0, "resync", 0)
	kNew := keyOn(place, 0, "resync", 1)

	if err := p.shards[0].feed.Put("dc_data", kOld, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := p.shards[0].node.WaitReplicated(testWait); err != nil {
		t.Fatal(err)
	}
	p.kill(1)
	if err := p.shards[0].feed.Put("dc_data", kNew, []byte("new")); err != nil {
		t.Fatal(err)
	}
	// The next frames — the NeedSync discovery and the snapshot push to the
	// restarted replica — are lost a few times before the link heals.
	dropFrom(plan, 3)
	p.restart(1)
	if err := p.shards[0].node.WaitReplicated(testWait); err != nil {
		t.Fatal(err)
	}
	p.kill(0)

	if err := p.shards[1].node.Promote(0); err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]string{kOld: "old", kNew: "new"} {
		if v, ok, err := p.shards[1].feed.Get("dc_data", k); err != nil || !ok || string(v) != want {
			t.Fatalf("row %s = %q %v %v after faulted resync + failover, want %q", k, v, ok, err, want)
		}
	}
}
