package repl

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"bitdew/internal/db"
	"bitdew/internal/dht"
	"bitdew/internal/rpc"
)

// The repl unit tests run real planes: every shard is a FeedStore + Node +
// rpc server on loopback, so ship/apply/ack, resync, promotion and rejoin
// are exercised over the actual wire protocol, not against mocks.

const testWait = 15 * time.Second

type contentBox struct {
	mu sync.Mutex
	m  map[string][]byte
}

func (b *contentBox) put(uid string, c []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[uid] = append([]byte(nil), c...)
	return nil
}

func (b *contentBox) get(uid string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c, ok := b.m[uid]
	if !ok {
		return nil, fmt.Errorf("no content %s", uid)
	}
	return c, nil
}

func (b *contentBox) has(uid string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.m[uid]
	return ok
}

type testShard struct {
	addr    string
	feed    *db.FeedStore
	node    *Node
	srv     *rpc.Server
	content *contentBox
}

type plane struct {
	t        *testing.T
	addrs    []string
	replicas int
	epoch    uint64
	shards   []*testShard
	// dialOpts, when set, contributes extra options to every shard's
	// outbound replication dials — the crash-point tests arm FaultPlans on
	// the primary→replica link with it. Survives restarts (boot rereads it).
	dialOpts func(from int, addr string) []rpc.DialOption
}

// newPlane boots n fresh shards with pre-listened addresses, mirroring the
// ShardedContainer fresh-boot path (SkipBootCheck: the whole plane starts
// together, so nobody can have promoted anything).
func newPlane(t *testing.T, n, replicas int) *plane {
	t.Helper()
	return newFaultPlane(t, n, replicas, nil)
}

// newFaultPlane is newPlane with the outbound-dial hook armed before any
// shard boots, so even the first Sync frame is scripted.
func newFaultPlane(t *testing.T, n, replicas int, dialOpts func(from int, addr string) []rpc.DialOption) *plane {
	t.Helper()
	p := &plane{t: t, replicas: replicas, epoch: 1, shards: make([]*testShard, n), dialOpts: dialOpts}
	liss := make([]net.Listener, n)
	for i := range liss {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		liss[i] = lis
		p.addrs = append(p.addrs, lis.Addr().String())
	}
	for i, lis := range liss {
		p.shards[i] = p.boot(i, lis, true)
	}
	t.Cleanup(func() {
		for _, s := range p.shards {
			if s != nil {
				p.killShard(s)
			}
		}
	})
	return p
}

func (p *plane) boot(i int, lis net.Listener, skipBootCheck bool) *testShard {
	p.t.Helper()
	p.epoch++
	feed, err := db.NewFeedStore(db.NewRowStore(), p.epoch)
	if err != nil {
		p.t.Fatal(err)
	}
	box := &contentBox{m: make(map[string][]byte)}
	var dialOpts func(addr string) []rpc.DialOption
	if p.dialOpts != nil {
		from := i
		dialOpts = func(addr string) []rpc.DialOption { return p.dialOpts(from, addr) }
	}
	node, err := NewNode(Config{
		Shard:         i,
		Addrs:         p.addrs,
		Replicas:      p.replicas,
		Feed:          feed,
		DialOpts:      dialOpts,
		GatedTables:   []string{"dc_data", "dc_locators"},
		ContentTable:  "dc_locators",
		GetContent:    box.get,
		PutContent:    box.put,
		HasContent:    box.has,
		ProbeTimeout:  150 * time.Millisecond,
		SkipBootCheck: skipBootCheck,
		Logf:          p.t.Logf,
	})
	if err != nil {
		p.t.Fatal(err)
	}
	mux := rpc.NewMux()
	node.Mount(mux)
	// Prod ordering: ownership resolved before the server answers.
	node.Start()
	return &testShard{addr: p.addrs[i], feed: feed, node: node, srv: rpc.NewServer(lis, mux), content: box}
}

func (p *plane) killShard(s *testShard) {
	s.srv.Close()
	s.node.Stop()
	s.feed.Close()
}

// kill takes shard i down hard (server first, so peers see a dead address).
func (p *plane) kill(i int) {
	p.t.Helper()
	p.killShard(p.shards[i])
	p.shards[i] = nil
}

// restart brings shard i back on its old address with a fresh store and a
// new stream epoch — the in-memory analogue of a process restart.
func (p *plane) restart(i int) {
	p.t.Helper()
	var lis net.Listener
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		lis, err = net.Listen("tcp", p.addrs[i])
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		p.t.Fatalf("rebinding %s: %v", p.addrs[i], err)
	}
	p.shards[i] = p.boot(i, lis, false)
}

// keyOn derives a key homing on range r.
func keyOn(place *dht.Placement, r int, salt string, i int) string {
	for j := 0; ; j++ {
		k := fmt.Sprintf("%s-%d-%d", salt, i, j)
		if place.ShardOf(k) == r {
			return k
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(testWait)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShipApplyAck pins the steady-state pipeline: mutations written on a
// primary arrive in its successor's replica namespace, deletes included,
// and WaitReplicated only returns once the acks cover them.
func TestShipApplyAck(t *testing.T) {
	p := newPlane(t, 2, 2)
	place := dht.NewPlacement(2)
	k0 := keyOn(place, 0, "ship", 0)
	k1 := keyOn(place, 0, "ship", 1)
	if err := p.shards[0].feed.Put("dc_data", k0, []byte("v0")); err != nil {
		t.Fatal(err)
	}
	if err := p.shards[0].feed.Put("dc_data", k1, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := p.shards[0].node.WaitReplicated(testWait); err != nil {
		t.Fatal(err)
	}
	v, ok, err := p.shards[1].node.rstore.Get(nsTable(0, "dc_data"), k0)
	if err != nil || !ok || string(v) != "v0" {
		t.Fatalf("replica row %s = %q %v %v", k0, v, ok, err)
	}
	if err := p.shards[0].feed.Delete("dc_data", k1); err != nil {
		t.Fatal(err)
	}
	if err := p.shards[0].node.WaitReplicated(testWait); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := p.shards[1].node.rstore.Get(nsTable(0, "dc_data"), k1); ok {
		t.Fatalf("deleted row %s still on replica", k1)
	}
}

// TestReplicaRestartResync pins epoch-driven resync: a replica that loses
// all state (process restart) is rebuilt wholesale from a fresh snapshot,
// including rows shipped before it died.
func TestReplicaRestartResync(t *testing.T) {
	p := newPlane(t, 2, 2)
	place := dht.NewPlacement(2)
	kOld := keyOn(place, 0, "old", 0)
	if err := p.shards[0].feed.Put("dc_data", kOld, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := p.shards[0].node.WaitReplicated(testWait); err != nil {
		t.Fatal(err)
	}
	p.kill(1)
	kMid := keyOn(place, 0, "mid", 0)
	if err := p.shards[0].feed.Put("dc_data", kMid, []byte("mid")); err != nil {
		t.Fatal(err)
	}
	p.restart(1)
	if err := p.shards[0].node.WaitReplicated(testWait); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{kOld, kMid} {
		if _, ok, _ := p.shards[1].node.rstore.Get(nsTable(0, "dc_data"), k); !ok {
			t.Fatalf("row %s missing after resync", k)
		}
	}
	// The restarted shard re-owns its own (unclaimed) range.
	if !p.shards[1].node.Serves(1) {
		t.Fatal("restarted shard does not serve its own range")
	}
}

// TestPromotion pins failover: when the primary dies, its successor adopts
// the range — replicated rows become live, the ownership claim bumps, the
// gate opens there and stays shut everywhere else.
func TestPromotion(t *testing.T) {
	p := newPlane(t, 3, 2)
	place := dht.NewPlacement(3)
	keys := make([]string, 3)
	for i := range keys {
		keys[i] = keyOn(place, 0, "promo", i)
		if err := p.shards[0].feed.Put("dc_data", keys[i], []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.shards[0].node.WaitReplicated(testWait); err != nil {
		t.Fatal(err)
	}
	succ := place.Successors(0, 2)[1]
	// Split-brain guard: promotion refused while the primary lives.
	if err := p.shards[succ].node.Promote(0); err == nil {
		t.Fatal("promotion succeeded against a live primary")
	}
	p.kill(0)
	if err := p.shards[succ].node.Promote(0); err != nil {
		t.Fatal(err)
	}
	if !p.shards[succ].node.Serves(0) {
		t.Fatal("promoted shard does not serve the range")
	}
	for i, k := range keys {
		v, ok, err := p.shards[succ].feed.Get("dc_data", k)
		if err != nil || !ok || v[0] != byte(i) {
			t.Fatalf("adopted row %s = %q %v %v", k, v, ok, err)
		}
	}
	if got := p.shards[succ].node.ServingRanges()[0]; got != 1 {
		t.Fatalf("ownership claim = %d, want 1", got)
	}
	// Promote is idempotent on the owner.
	if err := p.shards[succ].node.Promote(0); err != nil {
		t.Fatalf("re-promoting on the owner: %v", err)
	}
	// The third shard still refuses the range.
	var other int
	for i := 1; i < 3; i++ {
		if i != succ {
			other = i
		}
	}
	if err := p.shards[other].node.GateUID(keys[0]); !IsNotOwner(err) {
		t.Fatalf("gate on non-owner = %v", err)
	}
}

// TestRejoinAfterPromotion pins the recovery path: a restarted ex-primary
// finds its range owned elsewhere, stands down (gate shut), and catches up
// as a replica of the new owner's stream.
func TestRejoinAfterPromotion(t *testing.T) {
	p := newPlane(t, 3, 2)
	place := dht.NewPlacement(3)
	k := keyOn(place, 0, "rejoin", 0)
	if err := p.shards[0].feed.Put("dc_data", k, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := p.shards[0].node.WaitReplicated(testWait); err != nil {
		t.Fatal(err)
	}
	succ := place.Successors(0, 2)[1]
	p.kill(0)
	if err := p.shards[succ].node.Promote(0); err != nil {
		t.Fatal(err)
	}
	p.restart(0)
	if p.shards[0].node.Serves(0) {
		t.Fatal("rejoined shard serves a range it lost (split brain)")
	}
	if err := p.shards[0].node.GateUID(k); !IsNotOwner(err) {
		t.Fatalf("gate on rejoined shard = %v", err)
	}
	// The owner's stream reaches the rejoined shard: a fresh write lands in
	// its replica namespace for the owner.
	k2 := keyOn(place, 0, "rejoin", 1)
	if err := p.shards[succ].feed.Put("dc_data", k2, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "owner stream to reach rejoined shard", func() bool {
		_, ok, _ := p.shards[0].node.rstore.Get(nsTable(succ, "dc_data"), k2)
		return ok
	})
}

// TestContentPull pins pull-based content replication: a locator row
// shipping to a replica triggers a fetch of the datum's bytes, and
// WaitReplicated does not return while pulls are outstanding.
func TestContentPull(t *testing.T) {
	p := newPlane(t, 2, 2)
	place := dht.NewPlacement(2)
	uid := keyOn(place, 0, "blob", 0)
	p.shards[0].content.m[uid] = []byte("payload")
	if err := p.shards[0].feed.Put("dc_locators", uid, []byte("locator")); err != nil {
		t.Fatal(err)
	}
	if err := p.shards[0].node.WaitReplicated(testWait); err != nil {
		t.Fatal(err)
	}
	c, err := p.shards[1].content.get(uid)
	if err != nil || string(c) != "payload" {
		t.Fatalf("replica content = %q, %v", c, err)
	}
}

// TestGuardStore pins the ownership gate at the store layer: point
// operations on unowned keys are refused with ErrNotOwner before touching
// state, walks hide unowned rows, and ungated tables pass through.
func TestGuardStore(t *testing.T) {
	p := newPlane(t, 2, 2)
	place := dht.NewPlacement(2)
	mine := keyOn(place, 0, "guard", 0)
	theirs := keyOn(place, 1, "guard", 1)
	g := p.shards[0].node.Guard(p.shards[0].feed)
	if err := g.Put("dc_data", mine, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := g.Put("dc_data", theirs, []byte("no")); !IsNotOwner(err) {
		t.Fatalf("Put on unowned key = %v", err)
	}
	if _, _, err := g.Get("dc_data", theirs); !IsNotOwner(err) {
		t.Fatalf("Get on unowned key = %v", err)
	}
	if err := g.Delete("dc_data", theirs); !IsNotOwner(err) {
		t.Fatalf("Delete on unowned key = %v", err)
	}
	// A stale row smuggled under the gate stays invisible to walks.
	if err := p.shards[0].feed.Put("dc_data", theirs, []byte("stale")); err != nil {
		t.Fatal(err)
	}
	keys, err := g.Keys("dc_data")
	if err != nil || len(keys) != 1 || keys[0] != mine {
		t.Fatalf("gated Keys = %v, %v", keys, err)
	}
	seen := 0
	if err := g.Scan("dc_data", func(k string, _ []byte) bool { seen++; return true }); err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Fatalf("gated Scan visited %d rows, want 1", seen)
	}
	if err := g.Put("ds_entries", theirs, []byte("ungated")); err != nil {
		t.Fatalf("ungated table refused: %v", err)
	}
}

// TestDoubleFailure pins degraded-but-correct behaviour with R=3: after the
// primary AND the first successor die, the second successor still promotes
// and serves every row the original primary replicated.
func TestDoubleFailure(t *testing.T) {
	p := newPlane(t, 4, 3)
	place := dht.NewPlacement(4)
	cands := place.Successors(0, 3)
	k := keyOn(place, 0, "double", 0)
	if err := p.shards[0].feed.Put("dc_data", k, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := p.shards[0].node.WaitReplicated(testWait); err != nil {
		t.Fatal(err)
	}
	p.kill(cands[0])
	p.kill(cands[1])
	last := cands[2]
	if err := p.shards[last].node.Promote(0); err != nil {
		t.Fatal(err)
	}
	v, ok, err := p.shards[last].feed.Get("dc_data", k)
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("row after double failure = %q %v %v", v, ok, err)
	}
}
