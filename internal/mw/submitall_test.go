package mw

import (
	"fmt"
	"strings"
	"testing"

	"bitdew/internal/core"
)

// TestSubmitAll runs a full master/worker computation whose task wave is
// submitted in one batch, and checks every result comes back.
func TestSubmitAll(t *testing.T) {
	c := newContainer(t)
	mnode := newNode(t, c, "master")
	master, err := NewMaster(mnode)
	if err != nil {
		t.Fatal(err)
	}
	var wnodes []*core.Node
	const tasks = 9
	specs := make([]TaskSpec, tasks)
	for i := range specs {
		specs[i] = TaskSpec{Name: fmt.Sprintf("t%02d", i), Input: []byte(fmt.Sprintf("in-%02d", i))}
	}

	for i := 0; i < 3; i++ {
		wn := newNode(t, c, fmt.Sprintf("w%d", i))
		wnodes = append(wnodes, wn)
		NewWorker(wn, nil, func(task string, input []byte, shared map[string][]byte) ([]byte, error) {
			return []byte(strings.ToUpper(string(input))), nil
		})
	}

	ds, err := master.SubmitAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != tasks {
		t.Fatalf("submitted %d data, want %d", len(ds), tasks)
	}
	for i, d := range ds {
		if d.Name != TaskPrefix+specs[i].Name {
			t.Errorf("datum %d named %q", i, d.Name)
		}
	}

	var results []Result
	drive(t, mnode, wnodes, 200, func() bool {
		for {
			select {
			case r := <-master.Results():
				results = append(results, r)
				continue
			default:
			}
			break
		}
		return len(results) >= tasks
	})
	if len(results) != tasks {
		t.Fatalf("collected %d/%d results", len(results), tasks)
	}
	byTask := map[string]string{}
	for _, r := range results {
		byTask[r.Task] = string(r.Content)
	}
	for i := range specs {
		want := strings.ToUpper(fmt.Sprintf("in-%02d", i))
		if got := byTask[specs[i].Name]; got != want {
			t.Errorf("task %s = %q, want %q", specs[i].Name, got, want)
		}
	}
}

func TestSubmitAllEmpty(t *testing.T) {
	c := newContainer(t)
	master, err := NewMaster(newNode(t, c, "master"))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := master.SubmitAll(nil)
	if err != nil || ds != nil {
		t.Fatalf("empty SubmitAll = %v, %v", ds, err)
	}
}

// TestSubmitReplicaClamp: Submit (the single-task wrapper) still clamps
// replica to 1 and registers the task under the prefix.
func TestSubmitReplicaClamp(t *testing.T) {
	c := newContainer(t)
	master, err := NewMaster(newNode(t, c, "master"))
	if err != nil {
		t.Fatal(err)
	}
	d, err := master.Submit("solo", []byte("x"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != TaskPrefix+"solo" {
		t.Errorf("name = %q", d.Name)
	}
	entries := c.DS.Entries()
	if len(entries) != 2 { // collector + task
		t.Fatalf("scheduled %d entries", len(entries))
	}
	for _, e := range entries {
		if e.Data.UID == d.UID && e.Attr.Replica != 1 {
			t.Errorf("replica = %d, want clamped 1", e.Attr.Replica)
		}
	}
}
