package mw

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"bitdew/internal/core"
	"bitdew/internal/runtime"
	"bitdew/internal/workload"
)

func newNode(t *testing.T, c *runtime.Container, host string) *core.Node {
	t.Helper()
	n, err := core.NewNode(core.NodeConfig{
		Host:  host,
		Comms: core.ConnectLocal(c.Mux),
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func newContainer(t *testing.T) *runtime.Container {
	t.Helper()
	c, err := runtime.NewContainer(runtime.ContainerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// drive alternates worker and master synchronizations until done() or the
// round budget runs out.
func drive(t *testing.T, master *core.Node, workers []*core.Node, rounds int, done func() bool) {
	t.Helper()
	for i := 0; i < rounds; i++ {
		for _, w := range workers {
			if err := w.SyncWait(1); err != nil {
				t.Fatal(err)
			}
		}
		if err := master.SyncWait(1); err != nil {
			t.Fatal(err)
		}
		if done != nil && done() {
			return
		}
	}
}

func TestMasterWorkerEcho(t *testing.T) {
	c := newContainer(t)
	mnode := newNode(t, c, "master")
	master, err := NewMaster(mnode)
	if err != nil {
		t.Fatal(err)
	}
	var wnodes []*core.Node
	for i := 0; i < 3; i++ {
		wn := newNode(t, c, fmt.Sprintf("w%d", i))
		wnodes = append(wnodes, wn)
		NewWorker(wn, nil, func(task string, input []byte, shared map[string][]byte) ([]byte, error) {
			return []byte(strings.ToUpper(string(input))), nil
		})
	}
	const tasks = 6
	for i := 0; i < tasks; i++ {
		if _, err := master.Submit(fmt.Sprintf("t%d", i), []byte(fmt.Sprintf("payload-%d", i)), 1); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]string{}
	drive(t, mnode, wnodes, 20, func() bool {
		for {
			select {
			case r := <-master.Results():
				got[r.Task] = string(r.Content)
			default:
				return len(got) == tasks
			}
		}
	})
	if len(got) != tasks {
		t.Fatalf("got %d/%d results: %v", len(got), tasks, got)
	}
	for i := 0; i < tasks; i++ {
		want := fmt.Sprintf("PAYLOAD-%d", i)
		if got[fmt.Sprintf("t%d", i)] != want {
			t.Errorf("task t%d = %q, want %q", i, got[fmt.Sprintf("t%d", i)], want)
		}
	}
}

func TestSharedDependenciesGateExecution(t *testing.T) {
	c := newContainer(t)
	mnode := newNode(t, c, "master")
	master, err := NewMaster(mnode)
	if err != nil {
		t.Fatal(err)
	}
	wn := newNode(t, c, "w0")
	executed := make(chan string, 8)
	NewWorker(wn, []string{"Genebase"}, func(task string, input []byte, shared map[string][]byte) ([]byte, error) {
		if len(shared["Genebase"]) == 0 {
			t.Error("task ran without its shared dependency")
		}
		executed <- task
		return []byte("ok"), nil
	})

	if _, err := master.Submit("needy", []byte("in"), 1); err != nil {
		t.Fatal(err)
	}
	// One sync: the task arrives, but the genebase is not shared yet, so
	// nothing must execute.
	if err := wn.SyncWait(1); err != nil {
		t.Fatal(err)
	}
	select {
	case task := <-executed:
		t.Fatalf("task %s executed before its dependency", task)
	default:
	}
	// Share the dependency; the task runs at the next copy event.
	if _, err := master.Share("Genebase", []byte("ACGTACGT"), "attr Genebase = { replica = -1, oob = http }"); err != nil {
		t.Fatal(err)
	}
	drive(t, mnode, []*core.Node{wn}, 10, func() bool { return len(executed) > 0 })
	select {
	case task := <-executed:
		if task != "needy" {
			t.Errorf("executed %q", task)
		}
	default:
		t.Fatal("task never executed after dependency arrived")
	}
}

func TestReplicatedTaskDeliversOnce(t *testing.T) {
	c := newContainer(t)
	mnode := newNode(t, c, "master")
	master, err := NewMaster(mnode)
	if err != nil {
		t.Fatal(err)
	}
	var wnodes []*core.Node
	for i := 0; i < 3; i++ {
		wn := newNode(t, c, fmt.Sprintf("w%d", i))
		wnodes = append(wnodes, wn)
		NewWorker(wn, nil, func(task string, input []byte, shared map[string][]byte) ([]byte, error) {
			return input, nil
		})
	}
	if _, err := master.Submit("dup", []byte("x"), 2); err != nil { // 2 replicas
		t.Fatal(err)
	}
	count := 0
	drive(t, mnode, wnodes, 12, func() bool {
		for {
			select {
			case <-master.Results():
				count++
			default:
				return false // run all rounds to catch duplicates
			}
		}
	})
	if count != 1 {
		t.Fatalf("replicated task delivered %d results, want 1 (dedup)", count)
	}
}

func TestFaultTolerantTaskReassigned(t *testing.T) {
	c := newContainer(t)
	c.DS.Timeout = 150 * time.Millisecond
	mnode := newNode(t, c, "master")
	master, err := NewMaster(mnode)
	if err != nil {
		t.Fatal(err)
	}
	// Worker 1 receives the task but "crashes" before executing: we
	// simulate by syncing it once with a no-op function that never runs
	// because the node stops syncing afterwards... instead, make w1 a node
	// with NO worker attached: it caches the task datum but never answers.
	w1 := newNode(t, c, "w1")
	if _, err := master.Submit("orphan", []byte("x"), 1); err != nil {
		t.Fatal(err)
	}
	if err := w1.SyncWait(2); err != nil {
		t.Fatal(err)
	}
	// w1 now owns the task and goes silent. After the timeout, w2 (a real
	// worker) must receive it and produce the result.
	time.Sleep(250 * time.Millisecond)
	w2 := newNode(t, c, "w2")
	NewWorker(w2, nil, func(task string, input []byte, shared map[string][]byte) ([]byte, error) {
		return []byte("recovered"), nil
	})
	var got []Result
	// The result rides an asynchronous upload + schedule pipeline on w2;
	// pause between empty rounds so sleep-free heartbeats cannot outrun it
	// (under -race the pipeline can lag the fast rounds by tens of ms).
	drive(t, mnode, []*core.Node{w2}, 40, func() bool {
		select {
		case r := <-master.Results():
			got = append(got, r)
		default:
			time.Sleep(5 * time.Millisecond)
		}
		return len(got) > 0
	})
	if len(got) != 1 || string(got[0].Content) != "recovered" {
		t.Fatalf("results = %+v", got)
	}
}

func TestShutdownCleansWorkers(t *testing.T) {
	c := newContainer(t)
	mnode := newNode(t, c, "master")
	master, err := NewMaster(mnode)
	if err != nil {
		t.Fatal(err)
	}
	wn := newNode(t, c, "w0")
	NewWorker(wn, nil, func(task string, input []byte, shared map[string][]byte) ([]byte, error) {
		return input, nil
	})
	shared, err := master.Share("Genebase", []byte("ACGT"), "attr Genebase = { replica = -1, oob = http }")
	if err != nil {
		t.Fatal(err)
	}
	if err := wn.SyncWait(2); err != nil {
		t.Fatal(err)
	}
	if !wn.Holds(shared.UID) {
		t.Fatal("worker never received shared datum")
	}
	if err := master.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := wn.SyncWait(1); err != nil {
		t.Fatal(err)
	}
	if wn.Holds(shared.UID) {
		t.Error("shared datum survived master shutdown (relative lifetime broken)")
	}
}

func TestMiniBlastPipeline(t *testing.T) {
	// End-to-end: the paper's §5 application on the real stack with the
	// synthetic workload package.
	c := newContainer(t)
	mnode := newNode(t, c, "master")
	master, err := NewMaster(mnode)
	if err != nil {
		t.Fatal(err)
	}
	base := workload.Genebase(60_000, 1)
	queries := workload.SampleQueries(base, 4, 150, 0.01, 2)

	var wnodes []*core.Node
	for i := 0; i < 2; i++ {
		wn := newNode(t, c, fmt.Sprintf("w%d", i))
		wnodes = append(wnodes, wn)
		NewWorker(wn, []string{"Genebase"}, func(task string, input []byte, shared map[string][]byte) ([]byte, error) {
			hits := workload.Search(shared["Genebase"], input, 100)
			return []byte(fmt.Sprintf("%d", len(hits))), nil
		})
	}
	if _, err := master.Share("Genebase", base, "attr Genebase = { replica = -1, oob = http }"); err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if _, err := master.Submit(q.Name, q.Seq, 1); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]string{}
	drive(t, mnode, wnodes, 25, func() bool {
		for {
			select {
			case r := <-master.Results():
				got[r.Task] = string(r.Content)
			default:
				return len(got) == len(queries)
			}
		}
	})
	if len(got) != len(queries) {
		t.Fatalf("got %d/%d results", len(got), len(queries))
	}
	for task, hits := range got {
		if hits == "0" {
			t.Errorf("task %s found no hits (planted match missed)", task)
		}
	}
	for _, wn := range wnodes {
		_ = wn
	}
}

func TestCollectHelper(t *testing.T) {
	c := newContainer(t)
	mnode := newNode(t, c, "master")
	master, err := NewMaster(mnode)
	if err != nil {
		t.Fatal(err)
	}
	wn := newNode(t, c, "w0")
	w := NewWorker(wn, nil, func(task string, input []byte, shared map[string][]byte) ([]byte, error) {
		return input, nil
	})
	master.Submit("a", []byte("1"), 1)
	master.Submit("b", []byte("2"), 1)
	go func() {
		for i := 0; i < 20; i++ {
			wn.SyncWait(1)
			time.Sleep(10 * time.Millisecond)
		}
	}()
	results, err := master.Collect(2, 40)
	if err != nil {
		t.Fatalf("Collect: %v (worker errs: %v)", err, w.Errs())
	}
	if len(results) != 2 {
		t.Fatalf("results = %+v", results)
	}
	// Collect returning fewer than wanted errors out.
	if _, err := master.Collect(1, 2); err == nil {
		t.Error("Collect with no pending tasks succeeded")
	}
}
