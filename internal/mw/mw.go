// Package mw is a Master/Worker framework built entirely on BitDew's
// public API, following the data-driven design of paper §5: instead of a
// scheduler pushing tasks at workers, data are scheduled to hosts and
// computation reacts to data-copy events.
//
//   - The master shares common inputs (application binary, genebase) with
//     broadcast or affinity attributes, submits each task as a small input
//     datum, and pins an empty Collector.
//   - Workers react to task-data copies: once the shared dependencies have
//     arrived (the scheduler's affinity attribute drags them along), the
//     task function runs and its output is scheduled back with affinity to
//     the Collector and a relative lifetime bound to it.
//   - Results therefore flow to the master automatically, tasks on crashed
//     workers are re-scheduled through the fault-tolerance attribute, and
//     deleting the Collector obsoletes every intermediate datum at the
//     workers' next synchronization — the paper's cleanup idiom.
package mw

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"bitdew/internal/attr"
	"bitdew/internal/core"
	"bitdew/internal/data"
)

// Attribute names recognised by the framework.
const (
	attrTask   = "Task"
	attrResult = "Result"
	// TaskPrefix namespaces task data names.
	TaskPrefix = "task:"
	// ResultPrefix namespaces result data names.
	ResultPrefix = "result:"
)

// Result is one completed task delivered to the master.
type Result struct {
	Task    string
	Content []byte
}

// Master drives a data-driven master/worker computation.
type Master struct {
	node      *core.Node
	collector *data.Data

	mu        sync.Mutex
	delivered map[string]bool
	results   chan Result
	submitted int
}

// NewMaster attaches a master to a node: it marks the node a client host
// (masters receive results through affinity, never replica placements),
// pins an empty Collector and installs the result-collection callback.
func NewMaster(node *core.Node) (*Master, error) {
	node.SetClientOnly(true)
	collector, err := node.BitDew.CreateData("Collector")
	if err != nil {
		return nil, fmt.Errorf("mw: creating collector: %w", err)
	}
	if err := node.ActiveData.Pin(*collector, attr.Attribute{Name: "Collector"}); err != nil {
		return nil, fmt.Errorf("mw: pinning collector: %w", err)
	}
	m := &Master{
		node:      node,
		collector: collector,
		delivered: make(map[string]bool),
		results:   make(chan Result, 1024),
	}
	node.ActiveData.AddCallback(core.EventHandler{OnDataCopy: m.onCopy})
	return m, nil
}

// Collector exposes the pinned collector datum (workers bind result
// affinity and lifetimes to it).
func (m *Master) Collector() data.Data { return *m.collector }

// onCopy collects Result data landing on the master, de-duplicating
// replicated executions (replica >= 2 tasks legitimately produce the same
// result twice; the paper defers majority voting to a result certifier).
func (m *Master) onCopy(e core.Event) {
	if e.Attr.Name != attrResult {
		return
	}
	task := strings.TrimPrefix(e.Data.Name, ResultPrefix)
	m.mu.Lock()
	if m.delivered[task] {
		m.mu.Unlock()
		return
	}
	m.delivered[task] = true
	m.mu.Unlock()
	content, err := m.node.Backend().Get(string(e.Data.UID))
	if err != nil {
		return
	}
	m.results <- Result{Task: task, Content: content}
}

// Share publishes a common input under the given attribute definition
// (e.g. the paper's Listing 3 attributes). The attribute is parsed with
// the framework's attribute language.
func (m *Master) Share(name string, content []byte, attrSpec string) (data.Data, error) {
	a, err := attr.Parse(attrSpec)
	if err != nil {
		return data.Data{}, err
	}
	d, err := m.node.BitDew.CreateData(name)
	if err != nil {
		return data.Data{}, err
	}
	if err := m.node.BitDew.Put(d, content); err != nil {
		return data.Data{}, err
	}
	// Bind shared data to the collector's lifetime so Shutdown cleans up.
	if a.LifetimeRel == "" {
		a.LifetimeRel = string(m.collector.UID)
	}
	if err := m.node.ActiveData.Schedule(*d, a); err != nil {
		return data.Data{}, err
	}
	return *d, nil
}

// TaskSpec describes one task for SubmitAll.
type TaskSpec struct {
	// Name identifies the task (namespaced under TaskPrefix).
	Name string
	// Input is the task datum's content.
	Input []byte
	// Replica is the number of workers the task is distributed to
	// (clamped to ≥ 1).
	Replica int
}

// Submit schedules one task: input content distributed to `replica`
// workers with fault tolerance on, so a crashed worker's task re-runs
// elsewhere (paper §5's Sequence attribute). It is the single-task wrapper
// over SubmitAll; a master with a task list should submit it in one batch.
func (m *Master) Submit(name string, input []byte, replica int) (data.Data, error) {
	ds, err := m.SubmitAll([]TaskSpec{{Name: name, Input: input, Replica: replica}})
	if err != nil {
		return data.Data{}, err
	}
	return ds[0], nil
}

// SubmitAll submits N tasks through the batch-first request path: one
// catalog round trip creates every slot, one PutAll moves all inputs to the
// repository (2 more round trips plus the out-of-band uploads), and one
// batched frame schedules them — instead of 5·N sequential service calls.
// This is what keeps a master submitting 10k tasks from dying of per-datum
// round trips (the paper's §4 fine-grain-access bottleneck).
func (m *Master) SubmitAll(specs []TaskSpec) ([]data.Data, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	names := make([]string, len(specs))
	inputs := make([][]byte, len(specs))
	attrs := make([]attr.Attribute, len(specs))
	for i, s := range specs {
		names[i] = TaskPrefix + s.Name
		inputs[i] = s.Input
		replica := s.Replica
		if replica < 1 {
			replica = 1
		}
		attrs[i] = attr.Attribute{
			Name: attrTask, Replica: replica, FaultTolerant: true,
			Protocol: "http", LifetimeRel: string(m.collector.UID),
		}
	}
	ds, err := m.node.BitDew.CreateDataBatch(names)
	if err != nil {
		return nil, fmt.Errorf("mw: submit batch of %d: %w", len(specs), err)
	}
	if err := m.node.BitDew.PutAll(ds, inputs); err != nil {
		return nil, fmt.Errorf("mw: submit batch of %d: %w", len(specs), err)
	}
	out := make([]data.Data, len(ds))
	for i, d := range ds {
		out[i] = *d
	}
	if err := m.node.ActiveData.ScheduleAll(out, attrs); err != nil {
		return nil, fmt.Errorf("mw: submit batch of %d: %w", len(specs), err)
	}
	m.mu.Lock()
	m.submitted += len(specs)
	m.mu.Unlock()
	return out, nil
}

// Results returns the channel of de-duplicated task results.
func (m *Master) Results() <-chan Result { return m.results }

// Collect drives the master's pull loop until want results have arrived or
// rounds synchronizations have elapsed, pausing briefly between empty
// rounds so concurrently syncing workers can make progress.
func (m *Master) Collect(want, rounds int) ([]Result, error) {
	var out []Result
	for i := 0; i < rounds && len(out) < want; i++ {
		if err := m.node.SyncWait(1); err != nil {
			return out, err
		}
		progressed := false
		for len(out) < want {
			select {
			case r := <-m.results:
				out = append(out, r)
				progressed = true
				continue
			default:
			}
			break
		}
		if !progressed {
			time.Sleep(20 * time.Millisecond)
		}
	}
	if len(out) < want {
		return out, fmt.Errorf("mw: collected %d/%d results after %d rounds", len(out), want, rounds)
	}
	return out, nil
}

// Shutdown deletes the Collector, which obsoletes every datum whose
// lifetime is bound to it: workers purge their caches at the next sync.
func (m *Master) Shutdown() error {
	return m.node.BitDew.DeleteData(*m.collector)
}

// TaskFunc computes one task: input is the task datum's content, shared
// maps each shared datum's name to its local content.
type TaskFunc func(task string, input []byte, shared map[string][]byte) ([]byte, error)

// Worker executes tasks arriving through data placement.
type Worker struct {
	node *core.Node
	fn   TaskFunc
	// needs lists shared data names that must be cached before any task
	// runs (the BLAST worker needs the Application and the Genebase).
	needs []string

	mu      sync.Mutex
	shared  map[string][]byte
	pending []pendingTask
	done    map[string]bool
	errs    []error
}

type pendingTask struct {
	d data.Data
}

// NewWorker attaches a worker to a node. fn runs for every task datum
// copied to the node once every name in needs is locally cached.
func NewWorker(node *core.Node, needs []string, fn TaskFunc) *Worker {
	w := &Worker{
		node:   node,
		fn:     fn,
		needs:  needs,
		shared: make(map[string][]byte),
		done:   make(map[string]bool),
	}
	node.ActiveData.AddCallback(core.EventHandler{
		OnDataCopy:   w.onCopy,
		OnDataDelete: w.onDelete,
	})
	return w
}

// Errs returns task-execution errors observed so far.
func (w *Worker) Errs() []error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]error(nil), w.errs...)
}

func (w *Worker) onCopy(e core.Event) {
	switch e.Attr.Name {
	case attrTask:
		w.mu.Lock()
		w.pending = append(w.pending, pendingTask{d: e.Data})
		w.mu.Unlock()
	case attrResult:
		return // other workers' results (replica routing), ignore
	default:
		// A shared input landed.
		content, err := w.node.Backend().Get(string(e.Data.UID))
		if err == nil {
			w.mu.Lock()
			w.shared[e.Data.Name] = content
			w.mu.Unlock()
		}
	}
	w.runReady()
}

func (w *Worker) onDelete(e core.Event) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.shared, e.Data.Name)
}

// ready reports whether all shared dependencies are present.
func (w *Worker) ready() bool {
	for _, n := range w.needs {
		if _, ok := w.shared[n]; !ok {
			return false
		}
	}
	return true
}

// runReady executes every pending task whose dependencies are satisfied.
func (w *Worker) runReady() {
	w.mu.Lock()
	if !w.ready() {
		w.mu.Unlock()
		return
	}
	tasks := w.pending
	w.pending = nil
	sharedCopy := make(map[string][]byte, len(w.shared))
	for k, v := range w.shared {
		sharedCopy[k] = v
	}
	w.mu.Unlock()

	for _, pt := range tasks {
		taskName := strings.TrimPrefix(pt.d.Name, TaskPrefix)
		w.mu.Lock()
		if w.done[taskName] {
			w.mu.Unlock()
			continue
		}
		w.done[taskName] = true
		w.mu.Unlock()
		if err := w.execute(taskName, pt.d, sharedCopy); err != nil {
			w.mu.Lock()
			w.errs = append(w.errs, err)
			w.mu.Unlock()
		}
	}
}

// execute runs one task and schedules its result back to the collector.
func (w *Worker) execute(taskName string, d data.Data, shared map[string][]byte) error {
	input, err := w.node.Backend().Get(string(d.UID))
	if err != nil {
		return fmt.Errorf("mw: task %s input: %w", taskName, err)
	}
	output, err := w.fn(taskName, input, shared)
	if err != nil {
		return fmt.Errorf("mw: task %s: %w", taskName, err)
	}
	collector, err := w.node.BitDew.SearchDataFirst("Collector")
	if err != nil {
		return fmt.Errorf("mw: task %s: no collector: %w", taskName, err)
	}
	rd, err := w.node.BitDew.CreateData(ResultPrefix + taskName)
	if err != nil {
		return err
	}
	if err := w.node.BitDew.Put(rd, output); err != nil {
		return err
	}
	return w.node.ActiveData.Schedule(*rd, attr.Attribute{
		Name: attrResult, Replica: 1, Protocol: "http",
		Affinity:    string(collector.UID),
		LifetimeRel: string(collector.UID),
	})
}
