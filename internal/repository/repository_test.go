package repository

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"bitdew/internal/data"
	"bitdew/internal/rpc"
)

func backends(t *testing.T) map[string]Backend {
	t.Helper()
	dir, err := NewDirBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Backend{
		"mem": NewMemBackend(),
		"dir": dir,
	}
}

func TestBackendBasics(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := b.Put("r1", []byte("hello")); err != nil {
				t.Fatal(err)
			}
			got, err := b.Get("r1")
			if err != nil || !bytes.Equal(got, []byte("hello")) {
				t.Fatalf("Get = %q, %v", got, err)
			}
			n, err := b.Size("r1")
			if err != nil || n != 5 {
				t.Fatalf("Size = %d, %v", n, err)
			}
			// Overwrite.
			b.Put("r1", []byte("bye"))
			got, _ = b.Get("r1")
			if string(got) != "bye" {
				t.Fatalf("overwrite: %q", got)
			}
			// Missing refs.
			if _, err := b.Get("missing"); !errors.Is(err, ErrNoContent) {
				t.Errorf("Get missing: %v", err)
			}
			if _, err := b.Size("missing"); !errors.Is(err, ErrNoContent) {
				t.Errorf("Size missing: %v", err)
			}
			// Delete (idempotent).
			if err := b.Delete("r1"); err != nil {
				t.Fatal(err)
			}
			if err := b.Delete("r1"); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Get("r1"); err == nil {
				t.Fatal("Get after Delete succeeded")
			}
		})
	}
}

func TestBackendAppendAndRange(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := b.Append("f", []byte("abc")); err != nil { // append creates
				t.Fatal(err)
			}
			if err := b.Append("f", []byte("defgh")); err != nil {
				t.Fatal(err)
			}
			got, _ := b.Get("f")
			if string(got) != "abcdefgh" {
				t.Fatalf("after appends: %q", got)
			}
			r, err := b.GetRange("f", 2, 3)
			if err != nil || string(r) != "cde" {
				t.Fatalf("GetRange(2,3) = %q, %v", r, err)
			}
			// Range clipped at end.
			r, err = b.GetRange("f", 6, 100)
			if err != nil || string(r) != "gh" {
				t.Fatalf("GetRange(6,100) = %q, %v", r, err)
			}
			// Zero-length range at end is legal (resume of complete file).
			r, err = b.GetRange("f", 8, 4)
			if err != nil || len(r) != 0 {
				t.Fatalf("GetRange(8,4) = %q, %v", r, err)
			}
			// Out of bounds.
			if _, err := b.GetRange("f", 9, 1); err == nil {
				t.Error("GetRange past end succeeded")
			}
			if _, err := b.GetRange("f", -1, 1); err == nil {
				t.Error("GetRange negative offset succeeded")
			}
			if _, err := b.GetRange("missing", 0, 1); !errors.Is(err, ErrNoContent) {
				t.Errorf("GetRange missing: %v", err)
			}
		})
	}
}

func TestBackendRefs(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			b.Put("b", []byte("1"))
			b.Put("a", []byte("2"))
			b.Put("c", []byte("3"))
			refs, err := b.Refs()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(refs, []string{"a", "b", "c"}) {
				t.Errorf("Refs = %v", refs)
			}
		})
	}
}

func TestBackendConcurrentAppend(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := 0; j < 25; j++ {
						if err := b.Append("cc", []byte("x")); err != nil {
							t.Errorf("Append: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			n, err := b.Size("cc")
			if err != nil || n != 200 {
				t.Errorf("Size = %d, %v; want 200", n, err)
			}
		})
	}
}

func TestDirBackendSanitisesRefs(t *testing.T) {
	dir := t.TempDir()
	b, err := NewDirBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("../escape", []byte("x")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Get("../escape")
	if err != nil || string(got) != "x" {
		t.Fatalf("round trip through hostile ref: %q, %v", got, err)
	}
	refs, _ := b.Refs()
	for _, r := range refs {
		if bytes.ContainsAny([]byte(r), "/\\") {
			t.Errorf("ref escaped into path: %q", r)
		}
	}
}

func TestQuickMemBackendRoundTrip(t *testing.T) {
	b := NewMemBackend()
	f := func(ref string, content []byte) bool {
		if err := b.Put(ref, content); err != nil {
			return false
		}
		got, err := b.Get(ref)
		return err == nil && bytes.Equal(got, content)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickRangeConsistent(t *testing.T) {
	b := NewMemBackend()
	content := []byte("0123456789abcdefghij")
	b.Put("r", content)
	f := func(off, n uint8) bool {
		o, c := int64(off)%21, int64(n)%25
		got, err := b.GetRange("r", o, c)
		if err != nil {
			return false
		}
		end := o + c
		if end > int64(len(content)) {
			end = int64(len(content))
		}
		return bytes.Equal(got, content[o:end])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestServiceLocators(t *testing.T) {
	s := NewService(NewMemBackend())
	uid := data.NewUID()
	s.Backend().Put(string(uid), []byte("content"))

	if _, err := s.Locator(uid, "ftp"); err == nil {
		t.Error("Locator with no endpoints succeeded")
	}
	s.RegisterEndpoint("ftp", "127.0.0.1:2121")
	s.RegisterEndpoint("http", "127.0.0.1:8080")

	l, err := s.Locator(uid, "ftp")
	if err != nil {
		t.Fatal(err)
	}
	if l.Host != "127.0.0.1:2121" || l.Ref != string(uid) || l.Protocol != "ftp" {
		t.Errorf("Locator = %+v", l)
	}
	if got := s.Protocols(); !reflect.DeepEqual(got, []string{"ftp", "http"}) {
		t.Errorf("Protocols = %v", got)
	}
	// LocatorAny: preferred honoured, fallback when absent.
	l, err = s.LocatorAny(uid, "http")
	if err != nil || l.Protocol != "http" {
		t.Errorf("LocatorAny preferred = %+v, %v", l, err)
	}
	l, err = s.LocatorAny(uid, "bittorrent")
	if err != nil || l.Protocol != "ftp" {
		t.Errorf("LocatorAny fallback = %+v, %v", l, err)
	}
	if !s.Has(uid) {
		t.Error("Has = false for stored datum")
	}
	if s.Has(data.NewUID()) {
		t.Error("Has = true for unknown datum")
	}
}

func TestServiceOverRPC(t *testing.T) {
	s := NewService(NewMemBackend())
	s.RegisterEndpoint("http", "127.0.0.1:9999")
	uid := data.NewUID()
	s.Backend().Put(string(uid), []byte("payload"))

	mux := rpc.NewMux()
	s.Mount(mux)
	srv, err := rpc.Listen("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rcl, err := rpc.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.Close()
	c := NewClient(rcl)

	l, err := c.Locator(uid, "http")
	if err != nil || l.Host != "127.0.0.1:9999" {
		t.Fatalf("Locator = %+v, %v", l, err)
	}
	if _, err := c.Locator(uid, "ftp"); err == nil {
		t.Error("Locator over unserved protocol succeeded")
	}
	protos, err := c.Protocols()
	if err != nil || len(protos) != 1 {
		t.Fatalf("Protocols = %v, %v", protos, err)
	}
	ok, err := c.Has(uid)
	if err != nil || !ok {
		t.Fatalf("Has = %v, %v", ok, err)
	}
	if err := c.Delete(uid); err != nil {
		t.Fatal(err)
	}
	ok, _ = c.Has(uid)
	if ok {
		t.Error("Has after Delete = true")
	}
	l, err = c.LocatorAny(uid, "")
	if err != nil || l.Protocol != "http" {
		t.Errorf("LocatorAny = %+v, %v", l, err)
	}
}

func TestLocatorAnyDeterministicFallback(t *testing.T) {
	s := NewService(NewMemBackend())
	s.RegisterEndpoint("http", "h")
	s.RegisterEndpoint("bittorrent", "b")
	s.RegisterEndpoint("ftp", "f")
	for i := 0; i < 5; i++ {
		l, err := s.LocatorAny(data.UID(fmt.Sprint(i)), "")
		if err != nil || l.Protocol != "bittorrent" {
			t.Errorf("LocatorAny fallback = %+v (want first sorted protocol)", l)
		}
	}
}
