package repository

import (
	"strings"
	"testing"

	"bitdew/internal/data"
	"bitdew/internal/rpc"
)

func TestLocatorBatch(t *testing.T) {
	s := NewService(NewMemBackend())
	s.RegisterEndpoint("http", "h:80")
	s.RegisterEndpoint("ftp", "h:21")

	uids := []data.UID{data.NewUID(), data.NewUID(), data.NewUID()}
	locs, err := s.LocatorBatch(uids, "http")
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != len(uids) {
		t.Fatalf("got %d locators, want %d (aligned)", len(locs), len(uids))
	}
	for i, l := range locs {
		if l.DataUID != uids[i] || l.Protocol != "http" || l.Host != "h:80" || l.Ref != string(uids[i]) {
			t.Errorf("locator %d = %+v", i, l)
		}
	}

	// Empty protocol falls back to LocatorAny (first sorted protocol).
	locs, err = s.LocatorBatch(uids[:1], "")
	if err != nil || len(locs) != 1 || locs[0].Protocol != "ftp" {
		t.Fatalf("LocatorAny batch = %+v, %v", locs, err)
	}

	// Unserved protocol yields zero locators, not a frame error.
	locs, err = s.LocatorBatch(uids, "bittorrent")
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range locs {
		if l != (data.Locator{}) {
			t.Errorf("slot %d = %+v, want zero locator", i, l)
		}
	}
}

// TestLocatorBatchHookFailure: a hook error is a real fault (a seeder
// failed to start, say) and must fail the batch naming the datum — only
// the protocol-not-served case degrades to a zero slot.
func TestLocatorBatchHookFailure(t *testing.T) {
	s := NewService(NewMemBackend())
	s.RegisterEndpoint("http", "h:80")
	bad := data.NewUID()
	s.SetLocatorHook(func(uid data.UID, protocol string) error {
		if uid == bad {
			return errAlways
		}
		return nil
	})
	good := data.NewUID()
	_, err := s.LocatorBatch([]data.UID{good, bad}, "http")
	if err == nil || !strings.Contains(err.Error(), string(bad)) {
		t.Fatalf("err = %v, want hook failure naming %s", err, bad)
	}
}

var errAlways = errBatch("seeder failed")

type errBatch string

func (e errBatch) Error() string { return string(e) }

func TestLocatorBatchOverRPC(t *testing.T) {
	s := NewService(NewMemBackend())
	s.RegisterEndpoint("http", "h:80")
	mux := rpc.NewMux()
	s.Mount(mux)
	c := NewClient(rpc.NewLocalClient(mux, 0))

	uids := []data.UID{data.NewUID(), data.NewUID()}
	locs, err := c.LocatorBatch(uids, "http")
	if err != nil || len(locs) != 2 {
		t.Fatalf("LocatorBatch = %+v, %v", locs, err)
	}
	if out, err := c.LocatorBatch(nil, "http"); err != nil || out != nil {
		t.Fatalf("empty batch = %v, %v", out, err)
	}
}
