package repository

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"bitdew/internal/data"
	"bitdew/internal/db"
	"bitdew/internal/rpc"
)

// ServiceName is the rpc service name of the Data Repository.
const ServiceName = "dr"

// ErrProtocolNotServed marks a locator request for a protocol this
// repository has no endpoint for — the one locator failure batch callers
// may treat as "skip this slot" rather than a real fault.
var ErrProtocolNotServed = errors.New("repository: protocol not served")

// Service is the Data Repository: persistent storage for permanent copies,
// plus the mapping from transfer-protocol names to the endpoints serving
// this storage. Protocol servers (ftp, http, bittorrent seeders) are
// started around the same Backend and registered here; the DR then answers
// "how do I fetch / where do I store datum X over protocol P" with a
// Locator (paper §3.4.2).
type Service struct {
	backend Backend

	mu        sync.RWMutex
	endpoints map[string]string // protocol -> host:port
	// store, when set, receives a durable copy of the endpoint table, so a
	// restarted repository still knows where its content is served before
	// (or without) the protocol servers re-registering.
	store db.Store
	// locatorHook, when set, runs before a locator is issued; the service
	// container uses it to lazily start protocol servers that need
	// per-datum state (e.g. a swarm seeder for "bittorrent").
	locatorHook func(uid data.UID, protocol string) error
}

// tableEndpoints is the db.Store table mapping protocol names to endpoint
// addresses.
const tableEndpoints = "dr_endpoints"

// NewService wraps a storage backend as a Data Repository.
func NewService(backend Backend) *Service {
	return &Service{backend: backend, endpoints: make(map[string]string)}
}

// NewDurableService is NewService with the endpoint table backed by store:
// previously persisted endpoints are recovered (protocol servers that
// re-register on restart simply overwrite their row), and registrations are
// written through.
func NewDurableService(backend Backend, store db.Store) (*Service, error) {
	s := NewService(backend)
	err := store.Scan(tableEndpoints, func(protocol string, addr []byte) bool {
		s.endpoints[protocol] = string(addr)
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("repository: recover endpoints: %w", err)
	}
	s.store = store
	return s, nil
}

// Backend exposes the repository's storage to co-located protocol servers.
func (s *Service) Backend() Backend { return s.backend }

// RegisterEndpoint announces that protocol is served at addr for this
// repository's content. On a durable repository the registration is
// persisted (best-effort: an endpoint is re-announced on every start, so a
// lost write heals at the next restart).
func (s *Service) RegisterEndpoint(protocol, addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.endpoints[protocol] = addr
	if s.store != nil {
		_ = s.store.Put(tableEndpoints, protocol, []byte(addr))
	}
}

// Protocols lists the protocols this repository serves, sorted.
func (s *Service) Protocols() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.endpoints))
	for p := range s.endpoints {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Endpoints returns a copy of the protocol → host:port endpoint table.
func (s *Service) Endpoints() map[string]string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]string, len(s.endpoints))
	for p, addr := range s.endpoints {
		out[p] = addr
	}
	return out
}

// SetLocatorHook installs a callback invoked before each locator is issued.
func (s *Service) SetLocatorHook(fn func(uid data.UID, protocol string) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.locatorHook = fn
}

// Locator builds the remote-access description for uid over protocol. The
// ref is the data UID: protocol servers address repository content by UID.
func (s *Service) Locator(uid data.UID, protocol string) (data.Locator, error) {
	s.mu.RLock()
	addr, ok := s.endpoints[protocol]
	hook := s.locatorHook
	s.mu.RUnlock()
	if !ok {
		return data.Locator{}, fmt.Errorf("%w: %q (have %v)", ErrProtocolNotServed, protocol, s.Protocols())
	}
	if hook != nil {
		if err := hook(uid, protocol); err != nil {
			return data.Locator{}, err
		}
	}
	return data.Locator{DataUID: uid, Protocol: protocol, Host: addr, Ref: string(uid)}, nil
}

// LocatorAny returns a locator over the preferred protocol when served,
// otherwise over any served protocol (deterministically the first sorted).
func (s *Service) LocatorAny(uid data.UID, preferred string) (data.Locator, error) {
	if preferred != "" {
		if l, err := s.Locator(uid, preferred); err == nil {
			return l, nil
		}
	}
	protos := s.Protocols()
	if len(protos) == 0 {
		return data.Locator{}, fmt.Errorf("%w: no protocol endpoints registered", ErrProtocolNotServed)
	}
	return s.Locator(uid, protos[0])
}

// LocatorBatch issues locators for many data in one call, aligned with
// uids: each entry delegates to Locator (protocol set) or LocatorAny
// (protocol empty). An unserved protocol yields a zero Locator at its slot
// (callers fall back per datum, as with sequential calls); any other
// per-datum failure — a locator hook erroring, say — is a real fault and
// fails the batch with the datum named, exactly as its sequential call
// would have surfaced it.
func (s *Service) LocatorBatch(uids []data.UID, protocol string) ([]data.Locator, error) {
	out := make([]data.Locator, len(uids))
	for i, uid := range uids {
		var l data.Locator
		var err error
		if protocol != "" {
			l, err = s.Locator(uid, protocol)
		} else {
			l, err = s.LocatorAny(uid, "")
		}
		switch {
		case err == nil:
			out[i] = l
		case errors.Is(err, ErrProtocolNotServed):
			// leave the zero Locator
		default:
			return nil, fmt.Errorf("repository: locator of %s: %w", uid, err)
		}
	}
	return out, nil
}

// LocatorAnyBatch is LocatorBatch with LocatorAny's fallback semantics:
// each slot gets a locator over the preferred protocol when served,
// otherwise over any served protocol, or the zero Locator when none.
func (s *Service) LocatorAnyBatch(uids []data.UID, preferred string) ([]data.Locator, error) {
	out := make([]data.Locator, len(uids))
	for i, uid := range uids {
		if l, err := s.LocatorAny(uid, preferred); err == nil {
			out[i] = l
		}
	}
	return out, nil
}

// Has reports whether the repository stores content for uid.
func (s *Service) Has(uid data.UID) bool {
	_, err := s.backend.Size(string(uid))
	return err == nil
}

// Mount registers the Data Repository methods on an rpc Mux under "dr".
func (s *Service) Mount(m *rpc.Mux) {
	type locatorArgs struct {
		UID      data.UID
		Protocol string
	}
	rpc.Register(m, ServiceName, "Locator", func(a locatorArgs) (data.Locator, error) {
		return s.Locator(a.UID, a.Protocol)
	})
	rpc.Register(m, ServiceName, "LocatorAny", func(a locatorArgs) (data.Locator, error) {
		return s.LocatorAny(a.UID, a.Protocol)
	})
	rpc.Register(m, ServiceName, "LocatorBatch", func(a locatorBatchArgs) ([]data.Locator, error) {
		return s.LocatorBatch(a.UIDs, a.Protocol)
	})
	rpc.Register(m, ServiceName, "LocatorAnyBatch", func(a locatorBatchArgs) ([]data.Locator, error) {
		return s.LocatorAnyBatch(a.UIDs, a.Protocol)
	})
	rpc.Register(m, ServiceName, "Protocols", func(struct{}) ([]string, error) {
		return s.Protocols(), nil
	})
	rpc.Register(m, ServiceName, "Has", func(uid data.UID) (bool, error) {
		return s.Has(uid), nil
	})
	rpc.Register(m, ServiceName, "Delete", func(uid data.UID) (struct{}, error) {
		return struct{}{}, s.backend.Delete(string(uid))
	})
}

// Client is the typed client of a remote Data Repository.
type Client struct {
	c rpc.Client
}

// NewClient wraps an rpc client as a Data Repository client.
func NewClient(c rpc.Client) *Client { return &Client{c: c} }

type locatorArgs struct {
	UID      data.UID
	Protocol string
}

// Locator asks the DR for a locator of uid over protocol.
func (c *Client) Locator(uid data.UID, protocol string) (data.Locator, error) {
	var l data.Locator
	err := c.c.Call(ServiceName, "Locator", locatorArgs{UID: uid, Protocol: protocol}, &l)
	return l, err
}

// LocatorAny asks for a locator over the preferred protocol, falling back
// to any protocol the DR serves.
func (c *Client) LocatorAny(uid data.UID, preferred string) (data.Locator, error) {
	var l data.Locator
	err := c.c.Call(ServiceName, "LocatorAny", locatorArgs{UID: uid, Protocol: preferred}, &l)
	return l, err
}

// locatorBatchArgs is the wire argument of the batch locator endpoints,
// shared by the Mount handlers and the client methods.
type locatorBatchArgs struct {
	UIDs     []data.UID
	Protocol string
}

// LocatorBatch asks for locators of many data in one round trip, aligned
// with uids; unservable data come back as zero Locators.
func (c *Client) LocatorBatch(uids []data.UID, protocol string) ([]data.Locator, error) {
	if len(uids) == 0 {
		return nil, nil
	}
	var out []data.Locator
	err := c.c.Call(ServiceName, "LocatorBatch", locatorBatchArgs{uids, protocol}, &out)
	return out, err
}

// LocatorBatchCall builds the batchable form of LocatorBatch for a
// cross-service rpc.CallBatch frame, decoding into reply.
func (c *Client) LocatorBatchCall(uids []data.UID, protocol string, reply *[]data.Locator) *rpc.Call {
	return rpc.NewCall(ServiceName, "LocatorBatch", locatorBatchArgs{uids, protocol}, reply)
}

// LocatorAnyBatchCall builds the batchable form of LocatorAnyBatch.
func (c *Client) LocatorAnyBatchCall(uids []data.UID, preferred string, reply *[]data.Locator) *rpc.Call {
	return rpc.NewCall(ServiceName, "LocatorAnyBatch", locatorBatchArgs{uids, preferred}, reply)
}

// LocatorAnyBatch asks for locators with per-datum protocol fallback, in
// one round trip.
func (c *Client) LocatorAnyBatch(uids []data.UID, preferred string) ([]data.Locator, error) {
	if len(uids) == 0 {
		return nil, nil
	}
	var out []data.Locator
	err := c.c.Call(ServiceName, "LocatorAnyBatch", locatorBatchArgs{uids, preferred}, &out)
	return out, err
}

// DeleteCall builds a batchable delete for a cross-service rpc.CallBatch
// frame.
func (c *Client) DeleteCall(uid data.UID) *rpc.Call {
	return rpc.NewCall(ServiceName, "Delete", uid, nil)
}

// Protocols lists the DR's served protocols.
func (c *Client) Protocols() ([]string, error) {
	var out []string
	err := c.c.Call(ServiceName, "Protocols", struct{}{}, &out)
	return out, err
}

// Has reports whether the DR stores uid's content.
func (c *Client) Has(uid data.UID) (bool, error) {
	var ok bool
	err := c.c.Call(ServiceName, "Has", uid, &ok)
	return ok, err
}

// Delete removes uid's content from the DR.
func (c *Client) Delete(uid data.UID) error {
	return c.c.Call(ServiceName, "Delete", uid, nil)
}
