package repository

import (
	"fmt"
	"sort"
	"sync"

	"bitdew/internal/data"
	"bitdew/internal/rpc"
)

// ServiceName is the rpc service name of the Data Repository.
const ServiceName = "dr"

// Service is the Data Repository: persistent storage for permanent copies,
// plus the mapping from transfer-protocol names to the endpoints serving
// this storage. Protocol servers (ftp, http, bittorrent seeders) are
// started around the same Backend and registered here; the DR then answers
// "how do I fetch / where do I store datum X over protocol P" with a
// Locator (paper §3.4.2).
type Service struct {
	backend Backend

	mu        sync.RWMutex
	endpoints map[string]string // protocol -> host:port
	// locatorHook, when set, runs before a locator is issued; the service
	// container uses it to lazily start protocol servers that need
	// per-datum state (e.g. a swarm seeder for "bittorrent").
	locatorHook func(uid data.UID, protocol string) error
}

// NewService wraps a storage backend as a Data Repository.
func NewService(backend Backend) *Service {
	return &Service{backend: backend, endpoints: make(map[string]string)}
}

// Backend exposes the repository's storage to co-located protocol servers.
func (s *Service) Backend() Backend { return s.backend }

// RegisterEndpoint announces that protocol is served at addr for this
// repository's content.
func (s *Service) RegisterEndpoint(protocol, addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.endpoints[protocol] = addr
}

// Protocols lists the protocols this repository serves, sorted.
func (s *Service) Protocols() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.endpoints))
	for p := range s.endpoints {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// SetLocatorHook installs a callback invoked before each locator is issued.
func (s *Service) SetLocatorHook(fn func(uid data.UID, protocol string) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.locatorHook = fn
}

// Locator builds the remote-access description for uid over protocol. The
// ref is the data UID: protocol servers address repository content by UID.
func (s *Service) Locator(uid data.UID, protocol string) (data.Locator, error) {
	s.mu.RLock()
	addr, ok := s.endpoints[protocol]
	hook := s.locatorHook
	s.mu.RUnlock()
	if !ok {
		return data.Locator{}, fmt.Errorf("repository: protocol %q not served (have %v)", protocol, s.Protocols())
	}
	if hook != nil {
		if err := hook(uid, protocol); err != nil {
			return data.Locator{}, err
		}
	}
	return data.Locator{DataUID: uid, Protocol: protocol, Host: addr, Ref: string(uid)}, nil
}

// LocatorAny returns a locator over the preferred protocol when served,
// otherwise over any served protocol (deterministically the first sorted).
func (s *Service) LocatorAny(uid data.UID, preferred string) (data.Locator, error) {
	if preferred != "" {
		if l, err := s.Locator(uid, preferred); err == nil {
			return l, nil
		}
	}
	protos := s.Protocols()
	if len(protos) == 0 {
		return data.Locator{}, fmt.Errorf("repository: no protocol endpoints registered")
	}
	return s.Locator(uid, protos[0])
}

// Has reports whether the repository stores content for uid.
func (s *Service) Has(uid data.UID) bool {
	_, err := s.backend.Size(string(uid))
	return err == nil
}

// Mount registers the Data Repository methods on an rpc Mux under "dr".
func (s *Service) Mount(m *rpc.Mux) {
	type locatorArgs struct {
		UID      data.UID
		Protocol string
	}
	rpc.Register(m, ServiceName, "Locator", func(a locatorArgs) (data.Locator, error) {
		return s.Locator(a.UID, a.Protocol)
	})
	rpc.Register(m, ServiceName, "LocatorAny", func(a locatorArgs) (data.Locator, error) {
		return s.LocatorAny(a.UID, a.Protocol)
	})
	rpc.Register(m, ServiceName, "Protocols", func(struct{}) ([]string, error) {
		return s.Protocols(), nil
	})
	rpc.Register(m, ServiceName, "Has", func(uid data.UID) (bool, error) {
		return s.Has(uid), nil
	})
	rpc.Register(m, ServiceName, "Delete", func(uid data.UID) (struct{}, error) {
		return struct{}{}, s.backend.Delete(string(uid))
	})
}

// Client is the typed client of a remote Data Repository.
type Client struct {
	c rpc.Client
}

// NewClient wraps an rpc client as a Data Repository client.
func NewClient(c rpc.Client) *Client { return &Client{c: c} }

type locatorArgs struct {
	UID      data.UID
	Protocol string
}

// Locator asks the DR for a locator of uid over protocol.
func (c *Client) Locator(uid data.UID, protocol string) (data.Locator, error) {
	var l data.Locator
	err := c.c.Call(ServiceName, "Locator", locatorArgs{UID: uid, Protocol: protocol}, &l)
	return l, err
}

// LocatorAny asks for a locator over the preferred protocol, falling back
// to any protocol the DR serves.
func (c *Client) LocatorAny(uid data.UID, preferred string) (data.Locator, error) {
	var l data.Locator
	err := c.c.Call(ServiceName, "LocatorAny", locatorArgs{UID: uid, Protocol: preferred}, &l)
	return l, err
}

// Protocols lists the DR's served protocols.
func (c *Client) Protocols() ([]string, error) {
	var out []string
	err := c.c.Call(ServiceName, "Protocols", struct{}{}, &out)
	return out, err
}

// Has reports whether the DR stores uid's content.
func (c *Client) Has(uid data.UID) (bool, error) {
	var ok bool
	err := c.c.Call(ServiceName, "Has", uid, &ok)
	return ok, err
}

// Delete removes uid's content from the DR.
func (c *Client) Delete(uid data.UID) error {
	return c.c.Call(ServiceName, "Delete", uid, nil)
}
