package repository

import (
	"testing"

	"bitdew/internal/data"
	"bitdew/internal/db"
)

func TestDurableServiceRecoversEndpoints(t *testing.T) {
	store := db.NewRowStore()
	s, err := NewDurableService(NewMemBackend(), store)
	if err != nil {
		t.Fatal(err)
	}
	s.RegisterEndpoint("http", "127.0.0.1:8080")
	s.RegisterEndpoint("ftp", "127.0.0.1:2121")

	re, err := NewDurableService(NewMemBackend(), store)
	if err != nil {
		t.Fatal(err)
	}
	protos := re.Protocols()
	if len(protos) != 2 || protos[0] != "ftp" || protos[1] != "http" {
		t.Fatalf("recovered protocols = %v", protos)
	}
	loc, err := re.Locator(data.UID("u1"), "http")
	if err != nil {
		t.Fatal(err)
	}
	if loc.Host != "127.0.0.1:8080" {
		t.Fatalf("recovered locator host = %q", loc.Host)
	}

	// A re-registration after restart (new ephemeral port) overwrites the
	// recovered row, durably.
	re.RegisterEndpoint("http", "127.0.0.1:9090")
	re2, err := NewDurableService(NewMemBackend(), store)
	if err != nil {
		t.Fatal(err)
	}
	loc, err = re2.Locator(data.UID("u1"), "http")
	if err != nil || loc.Host != "127.0.0.1:9090" {
		t.Fatalf("overwritten endpoint = %q, %v", loc.Host, err)
	}
}
