// Package repository implements BitDew's Data Repository service (DR,
// paper §3.4.2): the interface between the data space and persistent
// storage, plus the remote-access descriptions (Locators) that let other
// nodes fetch permanent copies out-of-band. The DR wraps a storage Backend
// the way the original wraps a legacy file server or local file system, so
// BitDew can be mapped onto an existing infrastructure.
package repository

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNoContent is returned when a ref has no stored content.
var ErrNoContent = errors.New("repository: no content")

// Backend is persistent content storage addressed by reference strings
// (BitDew uses data UIDs as refs). Backends must support random-access
// reads and append-style writes so transfer protocols can resume
// interrupted transfers at an offset.
type Backend interface {
	// Put stores content under ref, replacing any previous content.
	Put(ref string, content []byte) error
	// Append extends ref's content; used by resuming receivers. Appending
	// to an absent ref creates it.
	Append(ref string, chunk []byte) error
	// Get returns the full content of ref.
	Get(ref string) ([]byte, error)
	// GetRange returns up to n bytes of ref starting at off. Fewer bytes
	// are returned only at end of content.
	GetRange(ref string, off, n int64) ([]byte, error)
	// Size returns the stored length of ref, or ErrNoContent.
	Size(ref string) (int64, error)
	// Delete removes ref; deleting an absent ref is not an error.
	Delete(ref string) error
	// Refs lists stored references in sorted order.
	Refs() ([]string, error)
}

// MemBackend stores content in memory; it is the reservoir-host cache of
// the prototype and the default backend in tests and simulations.
type MemBackend struct {
	mu      sync.RWMutex
	content map[string][]byte
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{content: make(map[string][]byte)}
}

func (b *MemBackend) Put(ref string, content []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.content[ref] = append([]byte(nil), content...)
	return nil
}

func (b *MemBackend) Append(ref string, chunk []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.content[ref] = append(b.content[ref], chunk...)
	return nil
}

func (b *MemBackend) Get(ref string) ([]byte, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	c, ok := b.content[ref]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoContent, ref)
	}
	return append([]byte(nil), c...), nil
}

func (b *MemBackend) GetRange(ref string, off, n int64) ([]byte, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	c, ok := b.content[ref]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoContent, ref)
	}
	if off < 0 || off > int64(len(c)) {
		return nil, fmt.Errorf("repository: range [%d,+%d) out of bounds for %s (len %d)", off, n, ref, len(c))
	}
	end := off + n
	if end > int64(len(c)) {
		end = int64(len(c))
	}
	return append([]byte(nil), c[off:end]...), nil
}

func (b *MemBackend) Size(ref string) (int64, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	c, ok := b.content[ref]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoContent, ref)
	}
	return int64(len(c)), nil
}

func (b *MemBackend) Delete(ref string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.content, ref)
	return nil
}

func (b *MemBackend) Refs() ([]string, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.content))
	for r := range b.content {
		out = append(out, r)
	}
	sort.Strings(out)
	return out, nil
}

// DirBackend stores each ref as a file under a root directory, the way the
// original DR wraps a local file system. Refs are sanitised into flat file
// names to keep traversal out.
type DirBackend struct {
	root string
	mu   sync.RWMutex
}

// NewDirBackend creates (if needed) and wraps a directory.
func NewDirBackend(root string) (*DirBackend, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("repository: %w", err)
	}
	return &DirBackend{root: root}, nil
}

// path maps a ref to a safe file path.
func (b *DirBackend) path(ref string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == '-' || r == '_' || r == '.':
			return r
		default:
			return '_'
		}
	}, ref)
	return filepath.Join(b.root, safe)
}

func (b *DirBackend) Put(ref string, content []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return os.WriteFile(b.path(ref), content, 0o644)
}

func (b *DirBackend) Append(ref string, chunk []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	f, err := os.OpenFile(b.path(ref), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(chunk)
	return err
}

func (b *DirBackend) Get(ref string) ([]byte, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	c, err := os.ReadFile(b.path(ref))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNoContent, ref)
	}
	return c, err
}

func (b *DirBackend) GetRange(ref string, off, n int64) ([]byte, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	f, err := os.Open(b.path(ref))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNoContent, ref)
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if off < 0 || off > st.Size() {
		return nil, fmt.Errorf("repository: range [%d,+%d) out of bounds for %s (len %d)", off, n, ref, st.Size())
	}
	end := off + n
	if end > st.Size() {
		end = st.Size()
	}
	buf := make([]byte, end-off)
	if _, err := f.ReadAt(buf, off); err != nil && err != io.EOF {
		return nil, err
	}
	return buf, nil
}

func (b *DirBackend) Size(ref string) (int64, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	st, err := os.Stat(b.path(ref))
	if errors.Is(err, os.ErrNotExist) {
		return 0, fmt.Errorf("%w: %s", ErrNoContent, ref)
	}
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (b *DirBackend) Delete(ref string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	err := os.Remove(b.path(ref))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

func (b *DirBackend) Refs() ([]string, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	entries, err := os.ReadDir(b.root)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}
