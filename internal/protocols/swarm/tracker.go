package swarm

import (
	"encoding/gob"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// trackerRequest is the announce/scrape wire message.
type trackerRequest struct {
	Op       string // "announce" | "peers" | "leave" | "setmeta" | "getmeta"
	InfoHash string
	PeerAddr string
	Meta     Metainfo
}

type trackerResponse struct {
	Peers []string
	Meta  Metainfo
	Err   string
}

// Tracker coordinates peer discovery per infohash, the way a BitTorrent
// tracker does. Announcing registers the caller and returns the other known
// peers of the swarm.
type Tracker struct {
	lis net.Listener

	mu     sync.Mutex
	swarms map[string]map[string]time.Time // infohash -> peerAddr -> lastSeen
	metas  map[string]Metainfo             // infohash -> metainfo
	conns  map[net.Conn]struct{}
	done   chan struct{}
	wg     sync.WaitGroup
}

// NewTracker starts a tracker on addr.
func NewTracker(addr string) (*Tracker, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("swarm: tracker listen %s: %w", addr, err)
	}
	t := &Tracker{
		lis:    lis,
		swarms: make(map[string]map[string]time.Time),
		metas:  make(map[string]Metainfo),
		conns:  make(map[net.Conn]struct{}),
		done:   make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the tracker's listen address.
func (t *Tracker) Addr() string { return t.lis.Addr().String() }

// Close stops the tracker.
func (t *Tracker) Close() error {
	select {
	case <-t.done:
		return nil
	default:
	}
	close(t.done)
	err := t.lis.Close()
	t.mu.Lock()
	for c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return err
}

// Swarm returns the current peer set of an infohash (for tests/metrics).
func (t *Tracker) Swarm(infohash string) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []string
	for p := range t.swarms[infohash] {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func (t *Tracker) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.lis.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
				continue
			}
		}
		t.mu.Lock()
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.serveConn(conn)
	}
}

func (t *Tracker) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req trackerRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp trackerResponse
		switch req.Op {
		case "announce":
			t.mu.Lock()
			s := t.swarms[req.InfoHash]
			if s == nil {
				s = make(map[string]time.Time)
				t.swarms[req.InfoHash] = s
			}
			s[req.PeerAddr] = time.Now()
			for p := range s {
				if p != req.PeerAddr {
					resp.Peers = append(resp.Peers, p)
				}
			}
			t.mu.Unlock()
			sort.Strings(resp.Peers)
		case "peers":
			t.mu.Lock()
			for p := range t.swarms[req.InfoHash] {
				if p != req.PeerAddr {
					resp.Peers = append(resp.Peers, p)
				}
			}
			t.mu.Unlock()
			sort.Strings(resp.Peers)
		case "leave":
			t.mu.Lock()
			delete(t.swarms[req.InfoHash], req.PeerAddr)
			t.mu.Unlock()
		case "setmeta":
			t.mu.Lock()
			t.metas[req.InfoHash] = req.Meta
			t.mu.Unlock()
		case "getmeta":
			t.mu.Lock()
			meta, ok := t.metas[req.InfoHash]
			t.mu.Unlock()
			if !ok {
				resp.Err = fmt.Sprintf("swarm: no metainfo for %s", req.InfoHash)
			} else {
				resp.Meta = meta
			}
		default:
			resp.Err = fmt.Sprintf("swarm: unknown tracker op %q", req.Op)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// trackerClient is one connection to a tracker.
type trackerClient struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

func dialTracker(addr string) (*trackerClient, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("swarm: dial tracker %s: %w", addr, err)
	}
	return &trackerClient{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

func (c *trackerClient) roundTrip(req trackerRequest) (trackerResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return trackerResponse{}, err
	}
	var resp trackerResponse
	if err := c.dec.Decode(&resp); err != nil {
		return trackerResponse{}, err
	}
	if resp.Err != "" {
		return resp, fmt.Errorf("%s", resp.Err)
	}
	return resp, nil
}

func (c *trackerClient) announce(infohash, peerAddr string) ([]string, error) {
	resp, err := c.roundTrip(trackerRequest{Op: "announce", InfoHash: infohash, PeerAddr: peerAddr})
	return resp.Peers, err
}

func (c *trackerClient) leave(infohash, peerAddr string) error {
	_, err := c.roundTrip(trackerRequest{Op: "leave", InfoHash: infohash, PeerAddr: peerAddr})
	return err
}

func (c *trackerClient) setMeta(infohash string, meta Metainfo) error {
	_, err := c.roundTrip(trackerRequest{Op: "setmeta", InfoHash: infohash, Meta: meta})
	return err
}

func (c *trackerClient) getMeta(infohash string) (Metainfo, error) {
	resp, err := c.roundTrip(trackerRequest{Op: "getmeta", InfoHash: infohash})
	return resp.Meta, err
}

// FetchMeta retrieves the metainfo registered for infohash at the tracker,
// letting a leecher bootstrap a swarm download from a datum's checksum and
// a tracker address alone (the content of a BitDew Locator).
func FetchMeta(trackerAddr, infohash string) (Metainfo, error) {
	tc, err := dialTracker(trackerAddr)
	if err != nil {
		return Metainfo{}, err
	}
	defer tc.close()
	return tc.getMeta(infohash)
}

func (c *trackerClient) close() error { return c.conn.Close() }
