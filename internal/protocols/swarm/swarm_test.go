package swarm

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"bitdew/internal/repository"
)

func randBytes(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestMetainfo(t *testing.T) {
	content := randBytes(1000, 1)
	m := NewMetainfo("ref", content, 256)
	if m.Size != 1000 || m.NumPieces() != 4 {
		t.Fatalf("meta = %+v", m)
	}
	if m.PieceLength(0) != 256 || m.PieceLength(3) != 232 {
		t.Errorf("piece lengths: %d, %d", m.PieceLength(0), m.PieceLength(3))
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if !m.VerifyPiece(0, content[:256]) {
		t.Error("VerifyPiece(0) = false for correct content")
	}
	if m.VerifyPiece(0, content[1:257]) {
		t.Error("VerifyPiece accepted wrong content")
	}
	if m.VerifyPiece(0, content[:255]) {
		t.Error("VerifyPiece accepted short content")
	}
	if m.VerifyPiece(-1, nil) || m.VerifyPiece(4, nil) {
		t.Error("VerifyPiece accepted out-of-range index")
	}
}

func TestMetainfoExactMultiple(t *testing.T) {
	content := randBytes(512, 2)
	m := NewMetainfo("ref", content, 256)
	if m.NumPieces() != 2 || m.PieceLength(1) != 256 {
		t.Errorf("meta = %+v", m)
	}
}

func TestMetainfoEmpty(t *testing.T) {
	m := NewMetainfo("ref", nil, 256)
	if m.NumPieces() != 0 || m.Validate() != nil {
		t.Errorf("empty meta = %+v, %v", m, m.Validate())
	}
}

func TestMetainfoDefaultPieceSize(t *testing.T) {
	m := NewMetainfo("ref", randBytes(10, 3), 0)
	if m.PieceSize != DefaultPieceSize {
		t.Errorf("PieceSize = %d", m.PieceSize)
	}
}

func TestQuickMetainfoCoversContent(t *testing.T) {
	f := func(content []byte, pieceSizeSeed uint8) bool {
		pieceSize := int64(pieceSizeSeed)%64 + 1
		m := NewMetainfo("r", content, pieceSize)
		if m.Validate() != nil {
			return false
		}
		var total int64
		for i := 0; i < m.NumPieces(); i++ {
			total += m.PieceLength(i)
		}
		return total == int64(len(content))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTrackerAnnounce(t *testing.T) {
	tr, err := NewTracker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tc, err := dialTracker(tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tc.close()
	peers, err := tc.announce("hash1", "p1:1")
	if err != nil || len(peers) != 0 {
		t.Fatalf("first announce = %v, %v", peers, err)
	}
	peers, err = tc.announce("hash1", "p2:1")
	if err != nil || len(peers) != 1 || peers[0] != "p1:1" {
		t.Fatalf("second announce = %v, %v", peers, err)
	}
	// Swarm isolation by infohash.
	peers, _ = tc.announce("hash2", "p3:1")
	if len(peers) != 0 {
		t.Fatalf("cross-swarm peers leaked: %v", peers)
	}
	// Leave removes.
	if err := tc.leave("hash1", "p1:1"); err != nil {
		t.Fatal(err)
	}
	if got := tr.Swarm("hash1"); len(got) != 1 || got[0] != "p2:1" {
		t.Fatalf("after leave: %v", got)
	}
}

// startSwarm seeds content and returns the tracker, metainfo and seeder.
func startSwarm(t *testing.T, content []byte, pieceSize int64) (*Tracker, Metainfo, *Peer) {
	t.Helper()
	tr, err := NewTracker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	backend := repository.NewMemBackend()
	backend.Put("the-data", content)
	meta := NewMetainfo("the-data", content, pieceSize)
	seeder, err := NewSeeder(backend, meta, tr.Addr(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { seeder.Close() })
	return tr, meta, seeder
}

func TestSingleLeecherDownload(t *testing.T) {
	content := randBytes(300_000, 4)
	tr, meta, _ := startSwarm(t, content, 16*1024)

	backend := repository.NewMemBackend()
	leecher, err := NewLeecher(backend, meta, tr.Addr(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer leecher.Close()
	if err := leecher.Download(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	got, err := backend.Get("the-data")
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("downloaded %d bytes, want %d; %v", len(got), len(content), err)
	}
	if !leecher.Complete() {
		t.Error("leecher not Complete after Download")
	}
}

func TestManyLeechersSharePieces(t *testing.T) {
	content := randBytes(400_000, 5)
	tr, meta, _ := startSwarm(t, content, 32*1024)

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	backends := make([]*repository.MemBackend, n)
	for i := 0; i < n; i++ {
		backends[i] = repository.NewMemBackend()
		leecher, err := NewLeecher(backends[i], meta, tr.Addr(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer leecher.Close()
		wg.Add(1)
		go func(i int, l *Peer) {
			defer wg.Done()
			errs[i] = l.Download(60 * time.Second)
		}(i, leecher)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("leecher %d: %v", i, errs[i])
		}
		got, err := backends[i].Get("the-data")
		if err != nil || !bytes.Equal(got, content) {
			t.Fatalf("leecher %d content mismatch (%d bytes), %v", i, len(got), err)
		}
	}
	// The swarm should now know all peers.
	if got := len(tr.Swarm(meta.InfoHash)); got < n {
		t.Errorf("tracker swarm has %d peers, want >= %d", got, n)
	}
}

func TestDownloadTimesOutWithoutSeeder(t *testing.T) {
	tr, err := NewTracker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	content := randBytes(10_000, 6)
	meta := NewMetainfo("lost", content, 1024)
	leecher, err := NewLeecher(repository.NewMemBackend(), meta, tr.Addr(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer leecher.Close()
	if err := leecher.Download(300 * time.Millisecond); err == nil {
		t.Fatal("Download with no seeder succeeded")
	}
}

func TestSeederRequiresContent(t *testing.T) {
	tr, err := NewTracker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	meta := NewMetainfo("absent", randBytes(100, 7), 64)
	if _, err := NewSeeder(repository.NewMemBackend(), meta, tr.Addr(), "127.0.0.1:0"); err == nil {
		t.Fatal("seeder without content started")
	}
}

func TestCorruptSeederRejected(t *testing.T) {
	// A peer serving tampered pieces must not poison the leecher: piece
	// verification rejects them (the sabotage-tolerance point of §2.2).
	content := randBytes(64_000, 8)
	tr, meta, _ := startSwarm(t, content, 8*1024)

	// Evil peer: holds content of the right size but different bytes,
	// claiming the same metainfo.
	evil := repository.NewMemBackend()
	evilContent := randBytes(64_000, 9)
	evil.Put("the-data", evilContent)
	evilPeer, err := newPeer(evil, meta, tr.Addr(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	evilPeer.store.markAllFrom(evilContent)
	if err := evilPeer.announce(); err != nil {
		t.Fatal(err)
	}
	defer evilPeer.Close()

	backend := repository.NewMemBackend()
	leecher, err := NewLeecher(backend, meta, tr.Addr(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer leecher.Close()
	if err := leecher.Download(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	got, _ := backend.Get("the-data")
	if !bytes.Equal(got, content) {
		t.Fatal("leecher accepted corrupt pieces")
	}
}

func TestLateLeecherJoinsLiveSwarm(t *testing.T) {
	content := randBytes(200_000, 10)
	tr, meta, _ := startSwarm(t, content, 16*1024)

	first, err := NewLeecher(repository.NewMemBackend(), meta, tr.Addr(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if err := first.Download(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Second leecher can now draw pieces from two sources.
	b2 := repository.NewMemBackend()
	second, err := NewLeecher(b2, meta, tr.Addr(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if err := second.Download(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	got, _ := b2.Get("the-data")
	if !bytes.Equal(got, content) {
		t.Fatal("late leecher content mismatch")
	}
}

func TestProgressReporting(t *testing.T) {
	content := randBytes(50_000, 11)
	_, meta, seeder := startSwarm(t, content, 4096)
	have, total := seeder.Progress()
	if have != total || total != meta.NumPieces() {
		t.Errorf("seeder progress = %d/%d, want %d/%d", have, total, meta.NumPieces(), meta.NumPieces())
	}
	if seeder.Addr() == "" {
		t.Error("seeder has no address")
	}
}

func TestFetchMeta(t *testing.T) {
	content := randBytes(10_000, 12)
	tr, meta, _ := startSwarm(t, content, 1024)
	got, err := FetchMeta(tr.Addr(), meta.InfoHash)
	if err != nil {
		t.Fatal(err)
	}
	if got.InfoHash != meta.InfoHash || got.Size != meta.Size || got.NumPieces() != meta.NumPieces() {
		t.Errorf("FetchMeta = %+v, want %+v", got, meta)
	}
	if _, err := FetchMeta(tr.Addr(), "unknown-hash"); err == nil {
		t.Error("FetchMeta for unknown infohash succeeded")
	}
}

func TestSwarmSurvivesSeederDeparture(t *testing.T) {
	// Once one leecher completes, the original seeder can leave and later
	// leechers still finish from the surviving peer — the churn resilience
	// that motivates collaborative distribution on volatile hosts.
	content := randBytes(150_000, 13)
	tr, meta, seeder := startSwarm(t, content, 8*1024)

	first, err := NewLeecher(repository.NewMemBackend(), meta, tr.Addr(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if err := first.Download(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	seeder.Close() // the origin disappears

	b2 := repository.NewMemBackend()
	second, err := NewLeecher(b2, meta, tr.Addr(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if err := second.Download(30 * time.Second); err != nil {
		t.Fatalf("download after seeder departure: %v", err)
	}
	got, _ := b2.Get("the-data")
	if !bytes.Equal(got, content) {
		t.Fatal("content mismatch after seeder departure")
	}
}

func TestRandomPieceSelectionStillCompletes(t *testing.T) {
	content := randBytes(80_000, 14)
	tr, meta, _ := startSwarm(t, content, 8*1024)
	backend := repository.NewMemBackend()
	leecher, err := NewLeecher(backend, meta, tr.Addr(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer leecher.Close()
	leecher.RandomPieces = true
	if err := leecher.Download(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	got, _ := backend.Get("the-data")
	if !bytes.Equal(got, content) {
		t.Fatal("random-selection content mismatch")
	}
}
