// Package swarm implements BitDew's collaborative content-distribution
// protocol, standing in for the BitTorrent back-end (BTPD / Azureus) of the
// original prototype. Content is split into pieces, each peer advertises a
// bitfield of the pieces it holds, and leechers fetch pieces rarest-first
// from whichever peers already have them — including other leechers — so a
// broadcast to n nodes does not funnel through the seeder's uplink. This is
// the property behind the paper's Figure 3a and Figure 5 results, where
// BitTorrent's completion time stays nearly flat as nodes are added while
// FTP's grows linearly.
package swarm

import (
	"crypto/md5"
	"encoding/hex"
	"fmt"
)

// DefaultPieceSize is the piece length used when none is specified.
const DefaultPieceSize = 256 * 1024

// Metainfo describes a swarmed file: identity, size and piece hashes. It is
// the equivalent of a .torrent file and travels through the Data Catalog as
// part of the datum's locator.
type Metainfo struct {
	// InfoHash identifies the swarm; BitDew uses the datum's MD5 checksum,
	// which doubles as whole-file integrity verification.
	InfoHash string
	// Ref is the repository reference (the data UID).
	Ref string
	// Size is the content length in bytes.
	Size int64
	// PieceSize is the length of every piece except possibly the last.
	PieceSize int64
	// PieceHashes holds the hex MD5 of each piece.
	PieceHashes []string
}

// NewMetainfo computes the metainfo of content.
func NewMetainfo(ref string, content []byte, pieceSize int64) Metainfo {
	if pieceSize <= 0 {
		pieceSize = DefaultPieceSize
	}
	whole := md5.Sum(content)
	m := Metainfo{
		InfoHash:  hex.EncodeToString(whole[:]),
		Ref:       ref,
		Size:      int64(len(content)),
		PieceSize: pieceSize,
	}
	for off := int64(0); off < m.Size; off += pieceSize {
		end := off + pieceSize
		if end > m.Size {
			end = m.Size
		}
		sum := md5.Sum(content[off:end])
		m.PieceHashes = append(m.PieceHashes, hex.EncodeToString(sum[:]))
	}
	if m.Size == 0 {
		m.PieceHashes = nil
	}
	return m
}

// NumPieces returns the number of pieces.
func (m Metainfo) NumPieces() int { return len(m.PieceHashes) }

// PieceLength returns the byte length of piece i.
func (m Metainfo) PieceLength(i int) int64 {
	if i < 0 || i >= m.NumPieces() {
		return 0
	}
	if i == m.NumPieces()-1 {
		if rem := m.Size % m.PieceSize; rem != 0 {
			return rem
		}
	}
	return m.PieceSize
}

// VerifyPiece checks piece i's content against its recorded hash.
func (m Metainfo) VerifyPiece(i int, content []byte) bool {
	if i < 0 || i >= m.NumPieces() {
		return false
	}
	if int64(len(content)) != m.PieceLength(i) {
		return false
	}
	sum := md5.Sum(content)
	return hex.EncodeToString(sum[:]) == m.PieceHashes[i]
}

// Validate reports the first structural problem with the metainfo.
func (m Metainfo) Validate() error {
	if m.InfoHash == "" {
		return fmt.Errorf("swarm: metainfo missing infohash")
	}
	if m.PieceSize <= 0 {
		return fmt.Errorf("swarm: non-positive piece size")
	}
	want := int((m.Size + m.PieceSize - 1) / m.PieceSize)
	if m.NumPieces() != want {
		return fmt.Errorf("swarm: %d piece hashes for size %d / piece %d (want %d)",
			m.NumPieces(), m.Size, m.PieceSize, want)
	}
	return nil
}
