package swarm

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"bitdew/internal/repository"
)

// peerRequest is the peer-to-peer wire message.
type peerRequest struct {
	Op       string // "bitfield" | "piece"
	InfoHash string
	Index    int
}

type peerResponse struct {
	Bitfield []bool
	Data     []byte
	Err      string
}

// pieceStore tracks which pieces a peer holds and their bytes.
type pieceStore struct {
	mu     sync.RWMutex
	meta   Metainfo
	have   []bool
	pieces [][]byte
	count  int
}

func newPieceStore(meta Metainfo) *pieceStore {
	return &pieceStore{
		meta:   meta,
		have:   make([]bool, meta.NumPieces()),
		pieces: make([][]byte, meta.NumPieces()),
	}
}

func (s *pieceStore) markAllFrom(content []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.have {
		off := int64(i) * s.meta.PieceSize
		end := off + s.meta.PieceLength(i)
		s.pieces[i] = append([]byte(nil), content[off:end]...)
		s.have[i] = true
	}
	s.count = len(s.have)
}

func (s *pieceStore) bitfield() []bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]bool(nil), s.have...)
}

func (s *pieceStore) get(i int) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if i < 0 || i >= len(s.have) || !s.have[i] {
		return nil, false
	}
	return s.pieces[i], true
}

// set stores a verified piece; it reports whether the piece was new.
func (s *pieceStore) set(i int, content []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.have[i] {
		return false
	}
	s.pieces[i] = append([]byte(nil), content...)
	s.have[i] = true
	s.count++
	return true
}

func (s *pieceStore) complete() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count == len(s.have)
}

func (s *pieceStore) assemble() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]byte, 0, s.meta.Size)
	for _, p := range s.pieces {
		out = append(out, p...)
	}
	return out
}

// Peer is one swarm participant: it serves the pieces it holds and, when
// started as a leecher, downloads the missing ones rarest-first.
type Peer struct {
	meta    Metainfo
	store   *pieceStore
	backend repository.Backend
	tracker string
	lis     net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	done   chan struct{}
	wg     sync.WaitGroup
	rng    *rand.Rand
	rngMu  sync.Mutex
	closed bool

	// Fanout caps how many peers are consulted per round; RoundWait is the
	// pause between rounds when no progress is possible yet.
	Fanout    int
	RoundWait time.Duration
	// RandomPieces disables rarest-first selection (ablation switch):
	// pieces are then fetched in shuffled order regardless of how many
	// peers hold them.
	RandomPieces bool
}

// newPeer builds the shared state of seeders and leechers.
func newPeer(backend repository.Backend, meta Metainfo, trackerAddr, addr string) (*Peer, error) {
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("swarm: peer listen %s: %w", addr, err)
	}
	p := &Peer{
		meta:      meta,
		store:     newPieceStore(meta),
		backend:   backend,
		tracker:   trackerAddr,
		lis:       lis,
		conns:     make(map[net.Conn]struct{}),
		done:      make(chan struct{}),
		rng:       rand.New(rand.NewSource(time.Now().UnixNano())),
		Fanout:    8,
		RoundWait: 50 * time.Millisecond,
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// NewSeeder starts a peer that already holds the full content (read from
// the backend under meta.Ref) and announces it to the tracker.
func NewSeeder(backend repository.Backend, meta Metainfo, trackerAddr, addr string) (*Peer, error) {
	content, err := backend.Get(meta.Ref)
	if err != nil {
		return nil, fmt.Errorf("swarm: seeder content: %w", err)
	}
	if int64(len(content)) != meta.Size {
		return nil, fmt.Errorf("swarm: seeder content size %d != metainfo %d", len(content), meta.Size)
	}
	p, err := newPeer(backend, meta, trackerAddr, addr)
	if err != nil {
		return nil, err
	}
	p.store.markAllFrom(content)
	if err := p.announce(); err != nil {
		p.Close()
		return nil, err
	}
	// Publish the metainfo so leechers can bootstrap from a Locator (data
	// checksum + tracker address) without side channels.
	if tc, terr := dialTracker(trackerAddr); terr == nil {
		tc.setMeta(meta.InfoHash, meta)
		tc.close()
	}
	return p, nil
}

// NewLeecher starts an empty peer; call Download to fetch the content.
func NewLeecher(backend repository.Backend, meta Metainfo, trackerAddr, addr string) (*Peer, error) {
	p, err := newPeer(backend, meta, trackerAddr, addr)
	if err != nil {
		return nil, err
	}
	if err := p.announce(); err != nil {
		p.Close()
		return nil, err
	}
	return p, nil
}

// Addr returns the peer's serving address.
func (p *Peer) Addr() string { return p.lis.Addr().String() }

// Progress returns pieces held and total pieces.
func (p *Peer) Progress() (have, total int) {
	p.store.mu.RLock()
	defer p.store.mu.RUnlock()
	return p.store.count, len(p.store.have)
}

// Complete reports whether the peer holds every piece.
func (p *Peer) Complete() bool { return p.store.complete() }

// Close stops serving and withdraws from the tracker.
func (p *Peer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.done)
	err := p.lis.Close()
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	if tc, terr := dialTracker(p.tracker); terr == nil {
		tc.leave(p.meta.InfoHash, p.Addr())
		tc.close()
	}
	p.wg.Wait()
	return err
}

func (p *Peer) announce() error {
	tc, err := dialTracker(p.tracker)
	if err != nil {
		return err
	}
	defer tc.close()
	_, err = tc.announce(p.meta.InfoHash, p.Addr())
	return err
}

func (p *Peer) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.lis.Accept()
		if err != nil {
			select {
			case <-p.done:
				return
			default:
				continue
			}
		}
		p.mu.Lock()
		p.conns[conn] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go p.serveConn(conn)
	}
}

func (p *Peer) serveConn(conn net.Conn) {
	defer p.wg.Done()
	defer func() {
		conn.Close()
		p.mu.Lock()
		delete(p.conns, conn)
		p.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req peerRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp peerResponse
		if req.InfoHash != p.meta.InfoHash {
			resp.Err = "swarm: wrong infohash"
		} else {
			switch req.Op {
			case "bitfield":
				resp.Bitfield = p.store.bitfield()
			case "piece":
				if data, ok := p.store.get(req.Index); ok {
					resp.Data = data
				} else {
					resp.Err = fmt.Sprintf("swarm: piece %d not held", req.Index)
				}
			default:
				resp.Err = fmt.Sprintf("swarm: unknown op %q", req.Op)
			}
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// peerConn is an outbound connection to another peer.
type peerConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

func dialPeer(addr string) (*peerConn, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &peerConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

func (c *peerConn) roundTrip(req peerRequest) (peerResponse, error) {
	if err := c.enc.Encode(req); err != nil {
		return peerResponse{}, err
	}
	var resp peerResponse
	if err := c.dec.Decode(&resp); err != nil {
		return peerResponse{}, err
	}
	if resp.Err != "" {
		return resp, errors.New(resp.Err)
	}
	return resp, nil
}

func (c *peerConn) close() { c.conn.Close() }

// Download fetches every missing piece, rarest-first, within the deadline.
// On completion the assembled content is stored in the backend under
// meta.Ref and verified against the infohash via the piece hashes.
func (p *Peer) Download(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	workers := 4
	for !p.store.complete() {
		if time.Now().After(deadline) {
			have, total := p.Progress()
			return fmt.Errorf("swarm: download timed out with %d/%d pieces", have, total)
		}
		peers, err := p.peerList()
		if err != nil || len(peers) == 0 {
			time.Sleep(p.RoundWait)
			continue
		}
		// Survey bitfields of up to Fanout peers.
		p.rngMu.Lock()
		p.rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
		p.rngMu.Unlock()
		if len(peers) > p.Fanout {
			peers = peers[:p.Fanout]
		}
		var views []peerView
		for _, addr := range peers {
			pc, err := dialPeer(addr)
			if err != nil {
				continue
			}
			resp, err := pc.roundTrip(peerRequest{Op: "bitfield", InfoHash: p.meta.InfoHash})
			if err != nil || len(resp.Bitfield) != p.meta.NumPieces() {
				pc.close()
				continue
			}
			views = append(views, peerView{addr: addr, conn: pc, have: resp.Bitfield})
		}
		if len(views) == 0 {
			time.Sleep(p.RoundWait)
			continue
		}
		// Rarest-first order over missing pieces available somewhere.
		mine := p.store.bitfield()
		type cand struct {
			index, owners int
		}
		var cands []cand
		for i := range mine {
			if mine[i] {
				continue
			}
			owners := 0
			for _, v := range views {
				if v.have[i] {
					owners++
				}
			}
			if owners > 0 {
				cands = append(cands, cand{index: i, owners: owners})
			}
		}
		if len(cands) == 0 {
			for _, v := range views {
				v.conn.close()
			}
			time.Sleep(p.RoundWait)
			continue
		}
		p.rngMu.Lock()
		p.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		p.rngMu.Unlock()
		if !p.RandomPieces {
			sortByOwners(cands, func(c cand) int { return c.owners })
		}

		// Fetch this round's batch with a small worker pool, one connection
		// per worker per peer choice.
		batch := cands
		if len(batch) > workers*4 {
			batch = batch[:workers*4]
		}
		jobs := make(chan cand, len(batch))
		for _, c := range batch {
			jobs <- c
		}
		close(jobs)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for c := range jobs {
					p.fetchPiece(c.index, views2addrs(views, c.index))
				}
			}()
		}
		wg.Wait()
		for _, v := range views {
			v.conn.close()
		}
	}
	content := p.store.assemble()
	if err := p.backend.Put(p.meta.Ref, content); err != nil {
		return fmt.Errorf("swarm: storing assembled content: %w", err)
	}
	return nil
}

// peerView is one surveyed peer: its address, live connection and bitfield.
type peerView struct {
	addr string
	conn *peerConn
	have []bool
}

// views2addrs lists the addresses of peers holding piece index.
func views2addrs(views []peerView, index int) []string {
	var out []string
	for _, v := range views {
		if v.have[index] {
			out = append(out, v.addr)
		}
	}
	return out
}

// sortByOwners is an insertion sort keeping the earlier shuffle as the
// tiebreaker (random among equally-rare pieces, the BitTorrent heuristic).
func sortByOwners[T any](s []T, key func(T) int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && key(s[j]) < key(s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// fetchPiece downloads and verifies one piece from any of the given owners.
func (p *Peer) fetchPiece(index int, owners []string) {
	if _, ok := p.store.get(index); ok {
		return
	}
	p.rngMu.Lock()
	p.rng.Shuffle(len(owners), func(i, j int) { owners[i], owners[j] = owners[j], owners[i] })
	p.rngMu.Unlock()
	for _, addr := range owners {
		pc, err := dialPeer(addr)
		if err != nil {
			continue
		}
		resp, err := pc.roundTrip(peerRequest{Op: "piece", InfoHash: p.meta.InfoHash, Index: index})
		pc.close()
		if err != nil {
			continue
		}
		if !p.meta.VerifyPiece(index, resp.Data) {
			continue // corrupt or truncated: try another owner
		}
		p.store.set(index, resp.Data)
		return
	}
}

// peerList asks the tracker for the current swarm membership.
func (p *Peer) peerList() ([]string, error) {
	tc, err := dialTracker(p.tracker)
	if err != nil {
		return nil, err
	}
	defer tc.close()
	return tc.announce(p.meta.InfoHash, p.Addr())
}
