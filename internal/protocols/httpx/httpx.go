// Package httpx is BitDew's HTTP transfer back-end: repository content
// served over plain HTTP with Range support for resume, plus PUT uploads.
// The paper recommends HTTP/FTP for small, unique files (e.g. the BLAST
// query sequences of §5) where collaborative protocols pay more overhead
// than they recover.
package httpx

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"bitdew/internal/repository"
)

// Server serves a repository backend over HTTP at /data/<ref>.
type Server struct {
	backend repository.Backend
	lis     net.Listener
	srv     *http.Server
}

// NewServer starts an HTTP transfer server on addr.
func NewServer(backend repository.Backend, addr string) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("httpx: listen %s: %w", addr, err)
	}
	s := &Server{backend: backend, lis: lis}
	mux := http.NewServeMux()
	mux.HandleFunc("/data/", s.handle)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(lis)
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	ref := strings.TrimPrefix(r.URL.Path, "/data/")
	if ref == "" {
		http.Error(w, "missing ref", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodHead:
		size, err := s.backend.Size(ref)
		if err != nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
		w.Header().Set("Accept-Ranges", "bytes")
	case http.MethodGet:
		s.get(w, r, ref)
	case http.MethodPut:
		s.put(w, r, ref)
	case http.MethodDelete:
		if err := s.backend.Delete(ref); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) get(w http.ResponseWriter, r *http.Request, ref string) {
	size, err := s.backend.Size(ref)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	off := int64(0)
	end := size // exclusive
	status := http.StatusOK
	if rng := r.Header.Get("Range"); rng != "" {
		var parseErr error
		off, end, parseErr = parseRange(rng, size)
		if parseErr != nil {
			http.Error(w, parseErr.Error(), http.StatusRequestedRangeNotSatisfiable)
			return
		}
		status = http.StatusPartialContent
		w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", off, end-1, size))
	}
	w.Header().Set("Accept-Ranges", "bytes")
	w.Header().Set("Content-Length", strconv.FormatInt(end-off, 10))
	w.WriteHeader(status)
	const chunk = 64 * 1024
	for off < end {
		n := int64(chunk)
		if n > end-off {
			n = end - off
		}
		payload, err := s.backend.GetRange(ref, off, n)
		if err != nil || len(payload) == 0 {
			return
		}
		if _, err := w.Write(payload); err != nil {
			return
		}
		off += int64(len(payload))
	}
}

// parseRange handles the single-range form "bytes=from-[to]".
func parseRange(header string, size int64) (off, end int64, err error) {
	spec, ok := strings.CutPrefix(header, "bytes=")
	if !ok || strings.Contains(spec, ",") {
		return 0, 0, fmt.Errorf("httpx: unsupported range %q", header)
	}
	from, to, ok := strings.Cut(spec, "-")
	if !ok {
		return 0, 0, fmt.Errorf("httpx: malformed range %q", header)
	}
	off, err = strconv.ParseInt(strings.TrimSpace(from), 10, 64)
	if err != nil || off < 0 || off > size {
		return 0, 0, fmt.Errorf("httpx: bad range start %q for size %d", from, size)
	}
	end = size
	if t := strings.TrimSpace(to); t != "" {
		last, err := strconv.ParseInt(t, 10, 64)
		if err != nil || last < off {
			return 0, 0, fmt.Errorf("httpx: bad range end %q", to)
		}
		end = last + 1
		if end > size {
			end = size
		}
	}
	return off, end, nil
}

func (s *Server) put(w http.ResponseWriter, r *http.Request, ref string) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Content-Range "bytes <off>-*/*" appends at off (resume); absent means
	// whole-file upload.
	if cr := r.Header.Get("Content-Range"); cr != "" {
		fields := strings.Fields(strings.TrimPrefix(cr, "bytes"))
		if len(fields) == 0 {
			http.Error(w, "malformed Content-Range", http.StatusBadRequest)
			return
		}
		from, _, _ := strings.Cut(fields[0], "-")
		off, err := strconv.ParseInt(from, 10, 64)
		if err != nil {
			http.Error(w, "malformed Content-Range offset", http.StatusBadRequest)
			return
		}
		cur, serr := s.backend.Size(ref)
		if serr != nil {
			cur = 0
		}
		if off != cur {
			http.Error(w, fmt.Sprintf("resume offset %d != stored size %d", off, cur), http.StatusConflict)
			return
		}
		if err := s.backend.Append(ref, body); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	} else {
		if err := s.backend.Put(ref, body); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// Client fetches and uploads repository content over HTTP.
type Client struct {
	hc *http.Client
}

// NewClient returns a transfer client with sane timeouts.
func NewClient() *Client {
	return &Client{hc: &http.Client{Timeout: 5 * time.Minute}}
}

func url(addr, ref string) string { return "http://" + addr + "/data/" + ref }

// Size returns the remote size of ref on addr.
func (c *Client) Size(addr, ref string) (int64, error) {
	resp, err := c.hc.Head(url(addr, ref))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("httpx: HEAD %s: %s", ref, resp.Status)
	}
	return strconv.ParseInt(resp.Header.Get("Content-Length"), 10, 64)
}

// Get downloads ref from addr starting at offset, writing payload to w and
// returning the number of bytes written.
func (c *Client) Get(addr, ref string, offset int64, w io.Writer) (int64, error) {
	req, err := http.NewRequest(http.MethodGet, url(addr, ref), nil)
	if err != nil {
		return 0, err
	}
	if offset > 0 {
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-", offset))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusPartialContent {
		return 0, fmt.Errorf("httpx: GET %s: %s", ref, resp.Status)
	}
	return io.Copy(w, resp.Body)
}

// Put uploads content as the whole of ref on addr.
func (c *Client) Put(addr, ref string, content io.Reader) error {
	req, err := http.NewRequest(http.MethodPut, url(addr, ref), content)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("httpx: PUT %s: %s", ref, resp.Status)
	}
	return nil
}

// Append uploads chunk at offset of ref (resume); offset must match the
// currently stored size.
func (c *Client) Append(addr, ref string, offset int64, chunk io.Reader) error {
	req, err := http.NewRequest(http.MethodPut, url(addr, ref), chunk)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Range", fmt.Sprintf("bytes %d-*/*", offset))
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("httpx: PUT(range) %s: %s", ref, resp.Status)
	}
	return nil
}

// Delete removes ref on addr.
func (c *Client) Delete(addr, ref string) error {
	req, err := http.NewRequest(http.MethodDelete, url(addr, ref), nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("httpx: DELETE %s: %s", ref, resp.Status)
	}
	return nil
}
