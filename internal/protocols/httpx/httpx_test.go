package httpx

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"bitdew/internal/repository"
)

func newServer(t *testing.T) (*Server, repository.Backend) {
	t.Helper()
	backend := repository.NewMemBackend()
	srv, err := NewServer(backend, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, backend
}

func randBytes(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestGetWhole(t *testing.T) {
	srv, backend := newServer(t)
	content := randBytes(150_000, 1)
	backend.Put("f", content)

	c := NewClient()
	size, err := c.Size(srv.Addr(), "f")
	if err != nil || size != int64(len(content)) {
		t.Fatalf("Size = %d, %v", size, err)
	}
	var buf bytes.Buffer
	n, err := c.Get(srv.Addr(), "f", 0, &buf)
	if err != nil || n != int64(len(content)) || !bytes.Equal(buf.Bytes(), content) {
		t.Fatalf("Get = %d bytes, %v", n, err)
	}
}

func TestGetResumeFromOffset(t *testing.T) {
	srv, backend := newServer(t)
	content := randBytes(90_000, 2)
	backend.Put("f", content)

	c := NewClient()
	var buf bytes.Buffer
	buf.Write(content[:30_000]) // pretend the first 30k arrived before a crash
	n, err := c.Get(srv.Addr(), "f", 30_000, &buf)
	if err != nil || n != 60_000 {
		t.Fatalf("resume Get = %d, %v", n, err)
	}
	if !bytes.Equal(buf.Bytes(), content) {
		t.Fatal("resumed content mismatch")
	}
}

func TestGetMissing(t *testing.T) {
	srv, _ := newServer(t)
	c := NewClient()
	var buf bytes.Buffer
	if _, err := c.Get(srv.Addr(), "missing", 0, &buf); err == nil {
		t.Error("Get of missing ref succeeded")
	}
	if _, err := c.Size(srv.Addr(), "missing"); err == nil {
		t.Error("Size of missing ref succeeded")
	}
}

func TestPutWholeAndDelete(t *testing.T) {
	srv, backend := newServer(t)
	content := randBytes(40_000, 3)
	c := NewClient()
	if err := c.Put(srv.Addr(), "up", bytes.NewReader(content)); err != nil {
		t.Fatal(err)
	}
	got, err := backend.Get("up")
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("stored: %d bytes, %v", len(got), err)
	}
	if err := c.Delete(srv.Addr(), "up"); err != nil {
		t.Fatal(err)
	}
	if _, err := backend.Get("up"); err == nil {
		t.Error("content survived DELETE")
	}
}

func TestAppendResumeUpload(t *testing.T) {
	srv, backend := newServer(t)
	content := randBytes(64_000, 4)
	c := NewClient()
	if err := c.Put(srv.Addr(), "up", bytes.NewReader(content[:20_000])); err != nil {
		t.Fatal(err)
	}
	if err := c.Append(srv.Addr(), "up", 20_000, bytes.NewReader(content[20_000:])); err != nil {
		t.Fatal(err)
	}
	got, _ := backend.Get("up")
	if !bytes.Equal(got, content) {
		t.Fatal("append-resumed content mismatch")
	}
	// Wrong offset refused.
	if err := c.Append(srv.Addr(), "up", 5, bytes.NewReader([]byte("x"))); err == nil {
		t.Error("append at wrong offset accepted")
	}
}

func TestParseRange(t *testing.T) {
	cases := []struct {
		header   string
		size     int64
		off, end int64
		wantErr  bool
	}{
		{"bytes=0-", 100, 0, 100, false},
		{"bytes=10-", 100, 10, 100, false},
		{"bytes=10-19", 100, 10, 20, false},
		{"bytes=10-999", 100, 10, 100, false},
		{"bytes=100-", 100, 100, 100, false}, // empty tail is satisfiable
		{"bytes=101-", 100, 0, 0, true},
		{"bytes=-5", 100, 0, 0, true},
		{"bytes=5-2", 100, 0, 0, true},
		{"bytes=0-5,10-12", 100, 0, 0, true},
		{"bits=0-5", 100, 0, 0, true},
	}
	for _, tc := range cases {
		off, end, err := parseRange(tc.header, tc.size)
		if (err != nil) != tc.wantErr {
			t.Errorf("parseRange(%q): err = %v, wantErr %v", tc.header, err, tc.wantErr)
			continue
		}
		if err == nil && (off != tc.off || end != tc.end) {
			t.Errorf("parseRange(%q) = (%d,%d), want (%d,%d)", tc.header, off, end, tc.off, tc.end)
		}
	}
}

func TestConcurrentGets(t *testing.T) {
	srv, backend := newServer(t)
	content := randBytes(120_000, 5)
	backend.Put("shared", content)
	c := NewClient()
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			if _, err := c.Get(srv.Addr(), "shared", 0, &buf); err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			if !bytes.Equal(buf.Bytes(), content) {
				t.Error("content mismatch")
			}
		}()
	}
	wg.Wait()
}
