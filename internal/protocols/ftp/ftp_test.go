package ftp

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"bitdew/internal/repository"
)

func newPair(t *testing.T, opts ...Option) (*Server, repository.Backend) {
	t.Helper()
	backend := repository.NewMemBackend()
	srv, err := NewServer(backend, "127.0.0.1:0", opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, backend
}

func randBytes(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestSizeRetrieve(t *testing.T) {
	srv, backend := newPair(t)
	content := randBytes(200_000, 1)
	backend.Put("big", content)

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	n, err := c.Size("big")
	if err != nil || n != int64(len(content)) {
		t.Fatalf("Size = %d, %v", n, err)
	}
	var buf bytes.Buffer
	written, err := c.Retrieve("big", 0, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if written != int64(len(content)) || !bytes.Equal(buf.Bytes(), content) {
		t.Fatalf("Retrieve: %d bytes, equal=%v", written, bytes.Equal(buf.Bytes(), content))
	}
}

func TestRetrieveWithOffsetResume(t *testing.T) {
	srv, backend := newPair(t)
	content := randBytes(50_000, 2)
	backend.Put("f", content)

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Simulate an interrupted download: first 20k fetched, then resume.
	var buf bytes.Buffer
	if _, err := c.Retrieve("f", 0, &limitWriter{w: &buf, n: 20_000}); err == nil {
		// limitWriter errors mid-payload, breaking the stream; a fresh
		// connection resumes at the recorded offset.
		t.Log("first fetch completed unexpectedly (fast path), still fine")
	}
	c.Close()

	c2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got := buf.Bytes()
	var rest bytes.Buffer
	if _, err := c2.Retrieve("f", int64(len(got)), &rest); err != nil {
		t.Fatal(err)
	}
	whole := append(append([]byte(nil), got...), rest.Bytes()...)
	if !bytes.Equal(whole, content) {
		t.Fatalf("resumed content mismatch: %d vs %d bytes", len(whole), len(content))
	}
}

// limitWriter fails after n bytes, emulating a crashed receiver.
type limitWriter struct {
	w io.Writer
	n int
}

func (l *limitWriter) Write(p []byte) (int, error) {
	if l.n <= 0 {
		return 0, fmt.Errorf("limit reached")
	}
	if len(p) > l.n {
		p = p[:l.n]
	}
	n, err := l.w.Write(p)
	l.n -= n
	if err != nil {
		return n, err
	}
	if l.n == 0 {
		return n, fmt.Errorf("limit reached")
	}
	return n, nil
}

func TestStoreAndResume(t *testing.T) {
	srv, backend := newPair(t)
	content := randBytes(80_000, 3)

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Upload the first half, then resume with the second half.
	half := int64(len(content) / 2)
	if err := c.Store("up", 0, half, bytes.NewReader(content[:half])); err != nil {
		t.Fatal(err)
	}
	if err := c.Store("up", half, int64(len(content))-half, bytes.NewReader(content[half:])); err != nil {
		t.Fatal(err)
	}
	got, err := backend.Get("up")
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("stored content mismatch (%d vs %d bytes), %v", len(got), len(content), err)
	}
}

func TestStoreBadResumeOffsetRejected(t *testing.T) {
	srv, _ := newPair(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Store("x", 0, 4, bytes.NewReader([]byte("abcd"))); err != nil {
		t.Fatal(err)
	}
	if err := c.Store("x", 99, 1, bytes.NewReader([]byte("z"))); err == nil {
		t.Fatal("mismatched resume offset accepted")
	}
}

func TestStoreOffsetZeroRestarts(t *testing.T) {
	srv, backend := newPair(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Store("x", 0, 4, bytes.NewReader([]byte("abcd")))
	c.Store("x", 0, 2, bytes.NewReader([]byte("zz")))
	got, _ := backend.Get("x")
	if string(got) != "zz" {
		t.Fatalf("restart: %q", got)
	}
}

func TestErrors(t *testing.T) {
	srv, _ := newPair(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Size("missing"); err == nil {
		t.Error("Size of missing ref succeeded")
	}
	var buf bytes.Buffer
	if _, err := c.Retrieve("missing", 0, &buf); err == nil {
		t.Error("Retrieve of missing ref succeeded")
	}
	if _, err := c.Retrieve("missing", -4, &buf); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, backend := newPair(t)
	content := randBytes(100_000, 4)
	backend.Put("shared", content)

	var wg sync.WaitGroup
	errs := make([]error, 10)
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			var buf bytes.Buffer
			if _, err := c.Retrieve("shared", 0, &buf); err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(buf.Bytes(), content) {
				errs[i] = fmt.Errorf("content mismatch")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
}

func TestThrottle(t *testing.T) {
	srv, backend := newPair(t, WithThrottle(200_000)) // 200 KB/s
	content := randBytes(100_000, 5)
	backend.Put("slow", content)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	var buf bytes.Buffer
	if _, err := c.Retrieve("slow", 0, &buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// 100 KB at 200 KB/s should take ~0.5s.
	if elapsed < 300*time.Millisecond {
		t.Errorf("throttled download of 100KB took only %v", elapsed)
	}
	if !bytes.Equal(buf.Bytes(), content) {
		t.Error("throttled content mismatch")
	}
}

func TestServerCloseSeversClients(t *testing.T) {
	srv, backend := newPair(t)
	backend.Put("f", randBytes(10, 6))
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv.Close()
	if _, err := c.Size("f"); err == nil {
		t.Error("Size after server close succeeded")
	}
}

// TestIdleConnectionSevered is the regression test for the deadlineprop
// finding on serveConn: before the idle deadline existed, a peer that
// went silent without closing its socket pinned the connection goroutine
// forever. Now the server severs it within one idle timeout.
func TestIdleConnectionSevered(t *testing.T) {
	srv, _ := newPair(t, WithIdleTimeout(100*time.Millisecond))
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Send nothing. The server must hang up on its own; the blocked read
	// below observes the close. Bound the wait so a regression fails fast
	// instead of deadlocking the test binary.
	done := make(chan error, 1)
	go func() {
		_, rerr := c.r.ReadString('\n')
		done <- rerr
	}()
	select {
	case rerr := <-done:
		if rerr == nil {
			t.Fatal("read returned nil error; expected server-side close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server kept the idle connection open past the idle timeout")
	}
}

// TestActiveConnectionSurvivesShortIdleTimeout pins that the deadline
// measures stall, not session length: a connection issuing commands and
// moving payload bytes across many idle-timeout windows stays up.
func TestActiveConnectionSurvivesShortIdleTimeout(t *testing.T) {
	srv, backend := newPair(t, WithIdleTimeout(150*time.Millisecond))
	content := randBytes(30_000, 7)
	backend.Put("f", content)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(600 * time.Millisecond)
	for time.Now().Before(deadline) {
		var buf bytes.Buffer
		if _, err := c.Retrieve("f", 0, &buf); err != nil {
			t.Fatalf("active connection severed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), content) {
			t.Fatal("content mismatch on active connection")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestUnknownCommand(t *testing.T) {
	srv, _ := newPair(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c.w, "NOPE\n")
	c.w.Flush()
	if _, err := c.readStatus(); err == nil {
		t.Error("unknown command acknowledged")
	}
}
