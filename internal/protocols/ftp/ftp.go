// Package ftp implements the client/server file-transfer protocol of the
// BitDew back-end layer. The original prototype drove a ProFTPD server
// through the apache commons-net FTP client; this package provides an
// equivalent single-source transfer protocol over TCP with the properties
// the Data Transfer service relies on: per-file addressing, SIZE probing
// and offset-based resume of interrupted transfers in both directions.
//
// Wire protocol (one text command line, then optional binary payload):
//
//	SIZE <ref>\n                 -> OK <n>\n | ERR <msg>\n
//	RETR <ref> <offset>\n        -> OK <n>\n then n raw bytes
//	STOR <ref> <offset> <n>\n    -> OK\n, client sends n bytes, -> DONE\n
//	QUIT\n                       -> connection closes
package ftp

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"bitdew/internal/repository"
)

// DefaultChunk is the transfer chunk size.
const DefaultChunk = 64 * 1024

// DefaultIdleTimeout bounds how long a connection may sit without making
// progress (no command read, no payload byte transferred) before the
// server severs it. A peer that dies without closing its socket would
// otherwise pin a goroutine and a connection slot until Close — the
// paper's transient-fault model makes such peers a normal operating
// condition, not an anomaly.
const DefaultIdleTimeout = 2 * time.Minute

// Server serves a repository backend over the FTP-like protocol.
type Server struct {
	backend repository.Backend
	lis     net.Listener
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	done    chan struct{}
	wg      sync.WaitGroup

	// Throttle, when positive, caps per-connection throughput in bytes/s;
	// benchmarks use it to emulate constrained server uplinks.
	throttle int64
	// idleTimeout is the per-connection progress deadline; zero disables.
	idleTimeout time.Duration
}

// Option configures a Server.
type Option func(*Server)

// WithThrottle caps each connection's send rate at bps bytes per second.
func WithThrottle(bps int64) Option {
	return func(s *Server) { s.throttle = bps }
}

// WithIdleTimeout overrides DefaultIdleTimeout; d <= 0 disables the
// progress deadline entirely (tests that deliberately stall use this).
func WithIdleTimeout(d time.Duration) Option {
	return func(s *Server) { s.idleTimeout = d }
}

// NewServer starts serving backend on addr ("127.0.0.1:0" picks a port).
func NewServer(backend repository.Backend, addr string, opts ...Option) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ftp: listen %s: %w", addr, err)
	}
	s := &Server{
		backend:     backend,
		lis:         lis,
		conns:       make(map[net.Conn]struct{}),
		done:        make(chan struct{}),
		idleTimeout: DefaultIdleTimeout,
	}
	for _, o := range opts {
		o(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops the server and severs open connections.
func (s *Server) Close() error {
	select {
	case <-s.done:
		return nil
	default:
	}
	close(s.done)
	err := s.lis.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		if s.idleTimeout > 0 {
			conn.SetDeadline(time.Now().Add(s.idleTimeout))
		}
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "SIZE":
			if len(fields) != 2 {
				fmt.Fprintf(w, "ERR SIZE wants 1 arg\n")
				break
			}
			n, err := s.backend.Size(fields[1])
			if err != nil {
				fmt.Fprintf(w, "ERR %v\n", err)
				break
			}
			fmt.Fprintf(w, "OK %d\n", n)
		case "RETR":
			if len(fields) != 3 {
				fmt.Fprintf(w, "ERR RETR wants 2 args\n")
				break
			}
			off, perr := strconv.ParseInt(fields[2], 10, 64)
			if perr != nil {
				fmt.Fprintf(w, "ERR bad offset\n")
				break
			}
			if err := s.retr(conn, w, fields[1], off); err != nil {
				return // stream broken mid-payload; abandon connection
			}
		case "STOR":
			if len(fields) != 4 {
				fmt.Fprintf(w, "ERR STOR wants 3 args\n")
				break
			}
			off, e1 := strconv.ParseInt(fields[2], 10, 64)
			n, e2 := strconv.ParseInt(fields[3], 10, 64)
			if e1 != nil || e2 != nil || off < 0 || n < 0 {
				fmt.Fprintf(w, "ERR bad offset or length\n")
				break
			}
			if err := s.stor(conn, r, w, fields[1], off, n); err != nil {
				return
			}
		case "QUIT":
			w.Flush()
			return
		default:
			fmt.Fprintf(w, "ERR unknown command %s\n", fields[0])
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// arm pushes conn's deadline out by the idle timeout. Transfer loops call
// it once per chunk, so the deadline measures stall, not total duration:
// a slow-but-moving peer (throttled benchmarks included) keeps re-arming,
// while a dead one trips it within one idleTimeout.
func (s *Server) arm(conn net.Conn) {
	if s.idleTimeout > 0 {
		conn.SetDeadline(time.Now().Add(s.idleTimeout))
	}
}

// retr streams ref from offset to the client.
func (s *Server) retr(conn net.Conn, w *bufio.Writer, ref string, off int64) error {
	size, err := s.backend.Size(ref)
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return w.Flush()
	}
	if off < 0 || off > size {
		fmt.Fprintf(w, "ERR offset %d out of range\n", off)
		return w.Flush()
	}
	remaining := size - off
	if _, err := fmt.Fprintf(w, "OK %d\n", remaining); err != nil {
		return err
	}
	limiter := newThrottle(s.throttle)
	for remaining > 0 {
		chunkLen := int64(DefaultChunk)
		if chunkLen > remaining {
			chunkLen = remaining
		}
		chunk, err := s.backend.GetRange(ref, off, chunkLen)
		if err != nil {
			return err
		}
		if len(chunk) == 0 {
			return fmt.Errorf("ftp: content of %s shrank mid-transfer", ref)
		}
		if _, err := w.Write(chunk); err != nil {
			return err
		}
		off += int64(len(chunk))
		remaining -= int64(len(chunk))
		s.arm(conn)
		limiter.wait(int64(len(chunk)))
	}
	return w.Flush()
}

// stor receives n bytes into ref at offset. A non-zero offset must equal the
// current stored size (append-resume); offset zero restarts the file.
func (s *Server) stor(conn net.Conn, r *bufio.Reader, w *bufio.Writer, ref string, off, n int64) error {
	cur, err := s.backend.Size(ref)
	if err != nil {
		cur = 0
	}
	if off == 0 {
		if err := s.backend.Put(ref, nil); err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return w.Flush()
		}
	} else if off != cur {
		fmt.Fprintf(w, "ERR resume offset %d does not match stored size %d\n", off, cur)
		return w.Flush()
	}
	if _, err := fmt.Fprintf(w, "OK\n"); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	buf := make([]byte, DefaultChunk)
	remaining := n
	for remaining > 0 {
		chunkLen := int64(len(buf))
		if chunkLen > remaining {
			chunkLen = remaining
		}
		read, err := io.ReadFull(r, buf[:chunkLen])
		if read > 0 {
			if aerr := s.backend.Append(ref, buf[:read]); aerr != nil {
				return aerr
			}
			remaining -= int64(read)
			s.arm(conn)
		}
		if err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(w, "DONE\n")
	if err != nil {
		return err
	}
	return w.Flush()
}

// throttleState paces writes to a target rate.
type throttleState struct {
	bps   int64
	start time.Time
	sent  int64
}

func newThrottle(bps int64) *throttleState {
	return &throttleState{bps: bps, start: time.Now()}
}

// wait sleeps long enough that cumulative throughput stays at or below bps.
func (t *throttleState) wait(n int64) {
	if t.bps <= 0 {
		return
	}
	t.sent += n
	due := time.Duration(float64(t.sent) / float64(t.bps) * float64(time.Second))
	elapsed := time.Since(t.start)
	if due > elapsed {
		time.Sleep(due - elapsed)
	}
}
