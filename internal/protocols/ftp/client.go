package ftp

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"
)

// Client is one connection to an ftp Server. It is not safe for concurrent
// use; the Data Transfer service opens one client per transfer.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to the server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("ftp: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Close sends QUIT and closes the connection.
func (c *Client) Close() error {
	fmt.Fprintf(c.w, "QUIT\n")
	c.w.Flush()
	return c.conn.Close()
}

// readStatus parses an OK/ERR line, returning OK's arguments.
func (c *Client) readStatus() ([]string, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("ftp: reading status: %w", err)
	}
	line = strings.TrimSpace(line)
	switch {
	case line == "OK":
		return nil, nil
	case strings.HasPrefix(line, "OK "):
		return strings.Fields(line[3:]), nil
	case strings.HasPrefix(line, "ERR"):
		return nil, fmt.Errorf("ftp: server: %s", strings.TrimSpace(strings.TrimPrefix(line, "ERR")))
	default:
		return nil, fmt.Errorf("ftp: malformed status %q", line)
	}
}

// Size returns the remote size of ref.
func (c *Client) Size(ref string) (int64, error) {
	if _, err := fmt.Fprintf(c.w, "SIZE %s\n", ref); err != nil {
		return 0, err
	}
	if err := c.w.Flush(); err != nil {
		return 0, err
	}
	args, err := c.readStatus()
	if err != nil {
		return 0, err
	}
	if len(args) != 1 {
		return 0, fmt.Errorf("ftp: SIZE answered %v", args)
	}
	return strconv.ParseInt(args[0], 10, 64)
}

// Retrieve downloads ref starting at offset, writing the payload to w.
// It returns the number of payload bytes written, enabling the caller to
// resume from offset+n after a partial failure.
func (c *Client) Retrieve(ref string, offset int64, w io.Writer) (int64, error) {
	if _, err := fmt.Fprintf(c.w, "RETR %s %d\n", ref, offset); err != nil {
		return 0, err
	}
	if err := c.w.Flush(); err != nil {
		return 0, err
	}
	args, err := c.readStatus()
	if err != nil {
		return 0, err
	}
	if len(args) != 1 {
		return 0, fmt.Errorf("ftp: RETR answered %v", args)
	}
	n, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("ftp: RETR length: %w", err)
	}
	written, err := io.CopyN(w, c.r, n)
	if err != nil {
		return written, fmt.Errorf("ftp: payload after %d/%d bytes: %w", written, n, err)
	}
	return written, nil
}

// Store uploads n bytes from r into ref at offset. Offset zero truncates the
// remote file; a non-zero offset must match the remote size (resume).
func (c *Client) Store(ref string, offset, n int64, r io.Reader) error {
	if _, err := fmt.Fprintf(c.w, "STOR %s %d %d\n", ref, offset, n); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	if _, err := c.readStatus(); err != nil {
		return err
	}
	if _, err := io.CopyN(c.w, r, n); err != nil {
		return fmt.Errorf("ftp: upload payload: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return fmt.Errorf("ftp: awaiting DONE: %w", err)
	}
	if strings.TrimSpace(line) != "DONE" {
		return fmt.Errorf("ftp: upload not acknowledged: %q", line)
	}
	return nil
}
