package scheduler

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"bitdew/internal/data"
)

// Replication support: the range gate keeps a replicated scheduler from
// acting on key ranges its shard does not currently own (a rejoined
// ex-primary holds stale Θ entries recovered from disk — they must neither
// be assigned to hosts nor reported as drops), and AdoptRows is how a
// promoted shard rebuilds live scheduler state from a dead peer's
// replicated persistence rows.

// SetRangeGate installs the shard-ownership gate: when set, Schedule and
// Pin refuse data whose UID's key range is not served by this shard
// (returning the gate's error, which clients treat as a retry-elsewhere
// redirect), and sync rounds ignore gated entries entirely.
func (s *Service) SetRangeGate(gate func(uid data.UID) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gate = gate
}

// gateLocked returns nil when uid may be acted on here.
func (s *Service) gateLocked(uid data.UID) error {
	if s.gate == nil {
		return nil
	}
	return s.gate(uid)
}

// AdoptRows installs replicated persistence rows (raw persistedEntry
// records keyed by UID, as shipped in the "ds_entries" stream) as live
// scheduler state: Θ entries, Ω owners and pins are rebuilt exactly as a
// durable restart would, and each adopted row is persisted through this
// shard's own store — re-entering its outbound stream, so the adopted range
// replicates onward. Host sessions are not touched: owners re-confirm
// through their next full resync, the protocol's designed recovery path.
func (s *Service) AdoptRows(rows map[string][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for key, raw := range rows {
		var p persistedEntry
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&p); err != nil {
			return fmt.Errorf("scheduler: adopt %s: %w", key, err)
		}
		uid := data.UID(key)
		s.theta[uid] = &Entry{Data: p.Data, Attr: p.Attr, scheduledAt: p.ScheduledAt, order: p.Order}
		if len(p.Owners) > 0 {
			s.owners[uid] = p.Owners
		} else {
			delete(s.owners, uid)
		}
		if len(p.Pinned) > 0 {
			s.pinned[uid] = p.Pinned
		} else {
			delete(s.pinned, uid)
		}
		if p.Order > s.orderC {
			s.orderC = p.Order
		}
		s.persistLocked(uid)
	}
	return nil
}
