package scheduler

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"bitdew/internal/attr"
	"bitdew/internal/data"
	"bitdew/internal/db"
)

// tableEntries is the db.Store table holding one record per scheduled datum.
const tableEntries = "ds_entries"

// TableEntries names the scheduler's persistence table; the replication
// layer ships it and rebuilds live state from it at promotion (AdoptRows).
const TableEntries = tableEntries

// persistedEntry is the durable image of one datum under management: the
// Θ entry itself plus its placement state (Ω owners and pins). Host
// sessions — the delta-sync cache mirrors and their epochs — are
// deliberately NOT persisted: after a restart every host's first delta
// heartbeat gets Resync=true and re-establishes its session with a full
// report, which is the protocol's designed recovery path and avoids
// trusting mirrors that may have drifted while the service was down.
type persistedEntry struct {
	Data        data.Data
	Attr        attr.Attribute
	ScheduledAt time.Time
	Order       int
	Owners      map[string]time.Time
	Pinned      map[string]bool
}

// NewDurable returns a scheduler whose placement state is backed by store:
// previously persisted entries are recovered, and every subsequent
// placement change is written through, so a service restart loses no
// scheduled datum (paper §3.4–3.5, where all D* meta-data lives in the
// relational back-end).
func NewDurable(store db.Store) (*Service, error) {
	s := New()
	if err := s.AttachStore(store); err != nil {
		return nil, err
	}
	return s, nil
}

// AttachStore recovers any persisted scheduler state from store and makes
// the scheduler write placement changes through to it from now on. It must
// be called before the scheduler starts serving.
func (s *Service) AttachStore(store db.Store) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var scanErr error
	err := store.Scan(tableEntries, func(key string, raw []byte) bool {
		var p persistedEntry
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&p); err != nil {
			scanErr = fmt.Errorf("scheduler: recover %s: %w", key, err)
			return false
		}
		uid := data.UID(key)
		s.theta[uid] = &Entry{Data: p.Data, Attr: p.Attr, scheduledAt: p.ScheduledAt, order: p.Order}
		if len(p.Owners) > 0 {
			s.owners[uid] = p.Owners
		}
		if len(p.Pinned) > 0 {
			s.pinned[uid] = p.Pinned
		}
		if p.Order > s.orderC {
			s.orderC = p.Order
		}
		return true
	})
	if err != nil {
		return fmt.Errorf("scheduler: recover: %w", err)
	}
	if scanErr != nil {
		return scanErr
	}
	s.store = store
	return nil
}

// StoreErr returns the first persistence failure seen on the heartbeat
// path (where errors cannot be returned to the remote host), or nil.
func (s *Service) StoreErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.storeErr
}

// persistLocked writes the durable record of uid — or deletes it when the
// datum left Θ. Owner-timestamp refreshes are persisted only together with
// a membership change (see syncLocked's dirty set): after a restart stale
// timestamps merely cause one round of re-confirmation through the hosts'
// full resyncs, whereas persisting every refresh would cost one write per
// owned datum per heartbeat.
func (s *Service) persistLocked(uid data.UID) {
	if s.store == nil {
		return
	}
	e, ok := s.theta[uid]
	if !ok {
		if err := s.store.Delete(tableEntries, string(uid)); err != nil && s.storeErr == nil {
			s.storeErr = err
		}
		return
	}
	p := persistedEntry{
		Data:        e.Data,
		Attr:        e.Attr,
		ScheduledAt: e.scheduledAt,
		Order:       e.order,
		Owners:      s.owners[uid],
		Pinned:      s.pinned[uid],
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		if s.storeErr == nil {
			s.storeErr = fmt.Errorf("scheduler: persist %s: %w", uid, err)
		}
		return
	}
	if err := s.store.Put(tableEntries, string(uid), buf.Bytes()); err != nil && s.storeErr == nil {
		s.storeErr = err
	}
}
