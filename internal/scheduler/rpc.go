package scheduler

import (
	"bitdew/internal/attr"
	"bitdew/internal/data"
	"bitdew/internal/rpc"
)

// ServiceName is the rpc service name of the Data Scheduler.
const ServiceName = "ds"

type scheduleArgs struct {
	Data data.Data
	Attr attr.Attribute
}

type pinArgs struct {
	Data data.Data
	Attr attr.Attribute
	Host string
}

type syncArgs struct {
	Host       string
	Cache      []data.UID
	ClientOnly bool
}

// SyncDeltaArgs is the delta heartbeat's request: the adds and removes to
// the host cache since Epoch, or (Full) a complete cache re-report.
type SyncDeltaArgs struct {
	Host string
	// Epoch is the server epoch the deltas are relative to (ignored when
	// Full is set).
	Epoch uint64
	// Full marks a (re)synchronizing report: Added carries the complete
	// cache and Removed is empty.
	Full           bool
	Added, Removed []data.UID
	ClientOnly     bool
}

// Mount registers the Data Scheduler methods on an rpc Mux under "ds".
func (s *Service) Mount(m *rpc.Mux) {
	rpc.Register(m, ServiceName, "Schedule", func(a scheduleArgs) (struct{}, error) {
		return struct{}{}, s.Schedule(a.Data, a.Attr)
	})
	rpc.Register(m, ServiceName, "Pin", func(a pinArgs) (struct{}, error) {
		return struct{}{}, s.Pin(a.Data, a.Attr, a.Host)
	})
	rpc.Register(m, ServiceName, "Unschedule", func(uid data.UID) (struct{}, error) {
		return struct{}{}, s.Unschedule(uid)
	})
	rpc.Register(m, ServiceName, "Sync", func(a syncArgs) (SyncResult, error) {
		return s.SyncAs(a.Host, a.Cache, a.ClientOnly), nil
	})
	rpc.Register(m, ServiceName, "SyncDelta", func(a SyncDeltaArgs) (SyncDeltaResult, error) {
		return s.SyncDelta(a.Host, a.Epoch, a.Full, a.Added, a.Removed, a.ClientOnly), nil
	})
	rpc.Register(m, ServiceName, "Owners", func(uid data.UID) ([]string, error) {
		return s.Owners(uid), nil
	})
	rpc.Register(m, ServiceName, "GC", func(struct{}) (int, error) {
		return s.GC(), nil
	})
}

// Client is the typed client of a remote Data Scheduler.
type Client struct {
	c rpc.Client
}

// NewClient wraps an rpc client as a DS client.
func NewClient(c rpc.Client) *Client { return &Client{c: c} }

// Schedule places a datum under management.
func (c *Client) Schedule(d data.Data, a attr.Attribute) error {
	return c.c.Call(ServiceName, "Schedule", scheduleArgs{Data: d, Attr: a}, nil)
}

// Pin registers a datum as owned by host.
func (c *Client) Pin(d data.Data, a attr.Attribute, host string) error {
	return c.c.Call(ServiceName, "Pin", pinArgs{Data: d, Attr: a, Host: host}, nil)
}

// Unschedule withdraws a datum.
func (c *Client) Unschedule(uid data.UID) error {
	return c.c.Call(ServiceName, "Unschedule", uid, nil)
}

// Sync runs one Algorithm 1 synchronization for host.
func (c *Client) Sync(host string, cache []data.UID) (SyncResult, error) {
	return c.SyncAs(host, cache, false)
}

// SyncAs is Sync with an explicit client-only role.
func (c *Client) SyncAs(host string, cache []data.UID, clientOnly bool) (SyncResult, error) {
	var r SyncResult
	err := c.c.Call(ServiceName, "Sync", syncArgs{Host: host, Cache: cache, ClientOnly: clientOnly}, &r)
	return r, err
}

// SyncDelta runs one delta heartbeat (see Service.SyncDelta).
func (c *Client) SyncDelta(a SyncDeltaArgs) (SyncDeltaResult, error) {
	var r SyncDeltaResult
	err := c.c.Call(ServiceName, "SyncDelta", a, &r)
	return r, err
}

// ScheduleCall builds a batchable Schedule for an rpc.CallBatch frame, so a
// master submitting N tasks pays one round trip instead of N.
func (c *Client) ScheduleCall(d data.Data, a attr.Attribute) *rpc.Call {
	return rpc.NewCall(ServiceName, "Schedule", scheduleArgs{Data: d, Attr: a}, nil)
}

// UnscheduleCall builds a batchable Unschedule for an rpc.CallBatch frame.
func (c *Client) UnscheduleCall(uid data.UID) *rpc.Call {
	return rpc.NewCall(ServiceName, "Unschedule", uid, nil)
}

// Owners lists the hosts owning uid.
func (c *Client) Owners(uid data.UID) ([]string, error) {
	var out []string
	err := c.c.Call(ServiceName, "Owners", uid, &out)
	return out, err
}

// GC purges expired entries server-side.
func (c *Client) GC() (int, error) {
	var n int
	err := c.c.Call(ServiceName, "GC", struct{}{}, &n)
	return n, err
}
