package scheduler

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"bitdew/internal/attr"
	"bitdew/internal/data"
	"bitdew/internal/rpc"
)

// fakeClock is an adjustable clock for deterministic lifetime/failure tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 6, 11, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestService() (*Service, *fakeClock) {
	s := New()
	c := newFakeClock()
	s.SetClock(c.now)
	return s, c
}
func mkdata(name string) data.Data { return *data.NewFromBytes(name, []byte(name)) }
func uids(as []Assignment) map[data.UID]bool {
	m := map[data.UID]bool{}
	for _, a := range as {
		m[a.Data.UID] = true
	}
	return m
}

func TestReplicaScheduling(t *testing.T) {
	s, _ := newTestService()
	d := mkdata("file")
	if err := s.Schedule(d, attr.Attribute{Name: "a", Replica: 2}); err != nil {
		t.Fatal(err)
	}
	// First host gets it.
	r := s.Sync("h1", nil)
	if len(r.Fetch) != 1 || r.Fetch[0].Data.UID != d.UID {
		t.Fatalf("h1 fetch = %+v", r.Fetch)
	}
	// Second host gets the second replica.
	r = s.Sync("h2", nil)
	if len(r.Fetch) != 1 {
		t.Fatalf("h2 fetch = %+v", r.Fetch)
	}
	// Third host does not: replica satisfied.
	r = s.Sync("h3", nil)
	if len(r.Fetch) != 0 {
		t.Fatalf("h3 fetch = %+v (replica over-provisioned)", r.Fetch)
	}
	if got := len(s.Owners(d.UID)); got != 2 {
		t.Errorf("owners = %d, want 2", got)
	}
}

func TestBroadcastReplica(t *testing.T) {
	s, _ := newTestService()
	d := mkdata("app")
	s.Schedule(d, attr.Attribute{Name: "Application", Replica: attr.ReplicaAll})
	for i := 0; i < 10; i++ {
		r := s.Sync(fmt.Sprintf("h%d", i), nil)
		if len(r.Fetch) != 1 {
			t.Fatalf("host %d did not receive broadcast: %+v", i, r.Fetch)
		}
	}
}

func TestCacheValidation(t *testing.T) {
	s, _ := newTestService()
	d := mkdata("f")
	s.Schedule(d, attr.Attribute{Name: "a", Replica: 1})
	r := s.Sync("h1", nil)
	if len(r.Fetch) != 1 {
		t.Fatal("no assignment")
	}
	// Host now reports the datum cached: kept, not re-fetched.
	r = s.Sync("h1", []data.UID{d.UID})
	if len(r.Keep) != 1 || len(r.Fetch) != 0 || len(r.Drop) != 0 {
		t.Fatalf("second sync = %+v", r)
	}
	// Unknown cached data are dropped.
	stranger := data.NewUID()
	r = s.Sync("h1", []data.UID{d.UID, stranger})
	if len(r.Drop) != 1 || r.Drop[0] != stranger {
		t.Fatalf("Drop = %v", r.Drop)
	}
}

func TestAbsoluteLifetime(t *testing.T) {
	s, clock := newTestService()
	d := mkdata("ttl")
	s.Schedule(d, attr.Attribute{Name: "a", Replica: 1, LifetimeAbs: 10 * time.Second})
	r := s.Sync("h1", nil)
	if len(r.Fetch) != 1 {
		t.Fatal("no assignment")
	}
	clock.advance(11 * time.Second)
	// Expired: host must drop it, and no new host receives it.
	r = s.Sync("h1", []data.UID{d.UID})
	if len(r.Drop) != 1 || len(r.Keep) != 0 {
		t.Fatalf("after expiry = %+v", r)
	}
	r = s.Sync("h2", nil)
	if len(r.Fetch) != 0 {
		t.Fatalf("expired datum assigned: %+v", r.Fetch)
	}
	if n := s.GC(); n != 1 {
		t.Errorf("GC removed %d, want 1", n)
	}
}

func TestRelativeLifetime(t *testing.T) {
	s, _ := newTestService()
	collector := mkdata("Collector")
	result := mkdata("result-1")
	s.Pin(collector, attr.Attribute{Name: "Collector"}, "master")
	s.Schedule(result, attr.Attribute{Name: "Result", Replica: 1, LifetimeRel: "Collector"})
	r := s.Sync("h1", nil)
	if len(r.Fetch) != 1 {
		t.Fatalf("fetch = %+v", r.Fetch)
	}
	// Deleting the Collector obsoletes the Result (the BLAST cleanup idiom).
	if err := s.Unschedule(collector.UID); err != nil {
		t.Fatal(err)
	}
	r = s.Sync("h1", []data.UID{result.UID})
	if len(r.Drop) != 1 || r.Drop[0] != result.UID {
		t.Fatalf("after collector deletion = %+v", r)
	}
	if s.GC() == 0 {
		t.Error("GC did not purge the orphaned result")
	}
}

func TestAffinityPlacement(t *testing.T) {
	s, _ := newTestService()
	seq := mkdata("Sequence")
	gene := mkdata("Genebase")
	s.Schedule(seq, attr.Attribute{Name: "Sequence", Replica: 1})
	s.Schedule(gene, attr.Attribute{Name: "Genebase", Replica: 1, Affinity: "Sequence"})

	// h1 receives the sequence (and, affinity chaining within one sync,
	// possibly the genebase too).
	r := s.Sync("h1", nil)
	got := uids(r.Fetch)
	if !got[seq.UID] {
		t.Fatalf("h1 did not get sequence: %+v", r.Fetch)
	}
	if !got[gene.UID] {
		// Genebase follows at the next sync at the latest.
		r = s.Sync("h1", []data.UID{seq.UID})
		if !uids(r.Fetch)[gene.UID] {
			t.Fatalf("genebase did not follow sequence: %+v", r.Fetch)
		}
	}
	// A host without the sequence never receives the genebase.
	r = s.Sync("h2", nil)
	if uids(r.Fetch)[gene.UID] {
		t.Fatalf("genebase scheduled to host without sequence")
	}
}

func TestAffinityStrongerThanReplica(t *testing.T) {
	// Paper §3.2: if A is replicated on rn nodes and B has affinity to A,
	// B is replicated to all rn nodes regardless of B's replica value.
	s, _ := newTestService()
	a := mkdata("A")
	b := mkdata("B")
	s.Schedule(a, attr.Attribute{Name: "A", Replica: 3})
	s.Schedule(b, attr.Attribute{Name: "B", Replica: 1, Affinity: "A"})
	hosts := []string{"h1", "h2", "h3"}
	caches := map[string][]data.UID{}
	for round := 0; round < 3; round++ {
		for _, h := range hosts {
			r := s.Sync(h, caches[h])
			for _, f := range r.Fetch {
				caches[h] = append(caches[h], f.Data.UID)
			}
		}
	}
	for _, h := range hosts {
		hasB := false
		for _, uid := range caches[h] {
			if uid == b.UID {
				hasB = true
			}
		}
		if !hasB {
			t.Errorf("host %s holds A but not B (affinity must override replica)", h)
		}
	}
}

func TestFaultToleranceRescheduling(t *testing.T) {
	s, clock := newTestService()
	s.Timeout = 3 * time.Second
	d := mkdata("ft")
	s.Schedule(d, attr.Attribute{Name: "a", Replica: 1, FaultTolerant: true})
	r := s.Sync("h1", nil)
	if len(r.Fetch) != 1 {
		t.Fatal("no assignment")
	}
	s.Sync("h1", []data.UID{d.UID}) // h1 confirms ownership
	// h1 goes silent; h2 keeps syncing. After the timeout the datum is
	// rescheduled to h2.
	clock.advance(2 * time.Second)
	r = s.Sync("h2", nil)
	if len(r.Fetch) != 0 {
		t.Fatal("rescheduled before timeout")
	}
	clock.advance(2 * time.Second) // h1 now 4s silent > 3s timeout
	r = s.Sync("h2", nil)
	if len(r.Fetch) != 1 || r.Fetch[0].Data.UID != d.UID {
		t.Fatalf("not rescheduled after owner failure: %+v", r.Fetch)
	}
}

func TestNonFaultTolerantNotRescheduled(t *testing.T) {
	s, clock := newTestService()
	s.Timeout = 3 * time.Second
	d := mkdata("fragile")
	s.Schedule(d, attr.Attribute{Name: "a", Replica: 1, FaultTolerant: false})
	s.Sync("h1", nil)
	s.Sync("h1", []data.UID{d.UID})
	clock.advance(10 * time.Second)
	r := s.Sync("h2", nil)
	if len(r.Fetch) != 0 {
		t.Fatalf("non-FT datum rescheduled after host silence: %+v", r.Fetch)
	}
}

func TestPinnedOwnerNeverExpires(t *testing.T) {
	s, clock := newTestService()
	s.Timeout = time.Second
	d := mkdata("pinned")
	s.Pin(d, attr.Attribute{Name: "a", Replica: 1, FaultTolerant: true}, "master")
	clock.advance(time.Hour)
	r := s.Sync("worker", nil)
	if len(r.Fetch) != 0 {
		t.Fatalf("pinned datum rescheduled away from silent master: %+v", r.Fetch)
	}
	if got := s.Owners(d.UID); len(got) != 1 || got[0] != "master" {
		t.Errorf("Owners = %v", got)
	}
}

func TestMaxDataSchedule(t *testing.T) {
	s, _ := newTestService()
	s.MaxDataSchedule = 3
	for i := 0; i < 10; i++ {
		s.Schedule(mkdata(fmt.Sprintf("d%d", i)), attr.Attribute{Name: "a", Replica: 1})
	}
	r := s.Sync("h1", nil)
	if len(r.Fetch) != 3 {
		t.Fatalf("fetch = %d, want MaxDataSchedule=3", len(r.Fetch))
	}
	// Next sync brings the next batch.
	cache := make([]data.UID, 0)
	for _, f := range r.Fetch {
		cache = append(cache, f.Data.UID)
	}
	r = s.Sync("h1", cache)
	if len(r.Fetch) != 3 {
		t.Fatalf("second batch = %d", len(r.Fetch))
	}
}

func TestUnscheduleUnknown(t *testing.T) {
	s, _ := newTestService()
	if err := s.Unschedule("ghost"); err == nil {
		t.Error("Unschedule of unknown datum succeeded")
	}
}

func TestRescheduleUpdatesAttribute(t *testing.T) {
	s, _ := newTestService()
	d := mkdata("d")
	s.Schedule(d, attr.Attribute{Name: "a", Replica: 1})
	s.Sync("h1", nil)
	// Dynamically raise replication (the paper's §5 strategy for idle hosts).
	s.Schedule(d, attr.Attribute{Name: "a", Replica: 2})
	r := s.Sync("h2", nil)
	if len(r.Fetch) != 1 {
		t.Fatalf("raised replica not honoured: %+v", r.Fetch)
	}
}

func TestScheduleRejectsInvalidAttr(t *testing.T) {
	s, _ := newTestService()
	if err := s.Schedule(mkdata("x"), attr.Attribute{Name: "a", Replica: -5}); err == nil {
		t.Error("invalid attribute accepted")
	}
}

func TestHostsTracking(t *testing.T) {
	s, clock := newTestService()
	s.Timeout = 3 * time.Second
	s.Sync("h1", nil)
	s.Sync("h2", nil)
	if got := len(s.Hosts()); got != 2 {
		t.Fatalf("Hosts = %d", got)
	}
	clock.advance(5 * time.Second)
	s.Sync("h2", nil)
	if got := s.Hosts(); len(got) != 1 || got[0] != "h2" {
		t.Fatalf("Hosts after timeout = %v", got)
	}
}

func TestQuickSyncInvariants(t *testing.T) {
	// Properties over random scheduling sequences:
	//  1. Fetch never exceeds MaxDataSchedule.
	//  2. Keep ∪ Drop == submitted cache (partition).
	//  3. Fetch ∩ cache = ∅.
	f := func(seed uint8, cacheSel []bool) bool {
		s, _ := newTestService()
		s.MaxDataSchedule = int(seed%5) + 1
		var all []data.Data
		for i := 0; i < 12; i++ {
			d := mkdata(fmt.Sprintf("d%d", i))
			all = append(all, d)
			a := attr.Attribute{Name: fmt.Sprintf("a%d", i), Replica: int(seed)%3 + 1}
			if i%4 == 0 {
				a.Replica = attr.ReplicaAll
			}
			s.Schedule(d, a)
		}
		var cache []data.UID
		for i, b := range cacheSel {
			if b && i < len(all) {
				cache = append(cache, all[i].UID)
			}
		}
		r := s.Sync("h", cache)
		if len(r.Fetch) > s.MaxDataSchedule {
			return false
		}
		if len(r.Keep)+len(r.Drop) != len(cache) {
			return false
		}
		inCache := map[data.UID]bool{}
		for _, uid := range cache {
			inCache[uid] = true
		}
		for _, f := range r.Fetch {
			if inCache[f.Data.UID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSchedulerOverRPC(t *testing.T) {
	s, _ := newTestService()
	mux := rpc.NewMux()
	s.Mount(mux)
	srv, err := rpc.Listen("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rcl, err := rpc.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.Close()
	c := NewClient(rcl)

	d := mkdata("remote")
	if err := c.Schedule(d, attr.Attribute{Name: "a", Replica: 1}); err != nil {
		t.Fatal(err)
	}
	r, err := c.Sync("h1", nil)
	if err != nil || len(r.Fetch) != 1 {
		t.Fatalf("Sync = %+v, %v", r, err)
	}
	owners, err := c.Owners(d.UID)
	if err != nil || len(owners) != 1 {
		t.Fatalf("Owners = %v, %v", owners, err)
	}
	pin := mkdata("pinned")
	if err := c.Pin(pin, attr.Attribute{Name: "p"}, "master"); err != nil {
		t.Fatal(err)
	}
	if err := c.Unschedule(d.UID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GC(); err != nil {
		t.Fatal(err)
	}
}

func TestClientOnlyHostSkipsReplicaPlacement(t *testing.T) {
	s, _ := newTestService()
	d := mkdata("bulk")
	s.Schedule(d, attr.Attribute{Name: "a", Replica: attr.ReplicaAll})
	r := s.SyncAs("client-1", nil, true)
	if len(r.Fetch) != 0 {
		t.Fatalf("client host received broadcast datum: %+v", r.Fetch)
	}
	// Affinity to a pinned datum still routes to the client.
	col := mkdata("Collector")
	s.Pin(col, attr.Attribute{Name: "Collector"}, "client-1")
	res := mkdata("result-1")
	s.Schedule(res, attr.Attribute{Name: "Result", Replica: 1, Affinity: string(col.UID)})
	r = s.SyncAs("client-1", []data.UID{col.UID}, true)
	if len(r.Fetch) != 1 || r.Fetch[0].Data.UID != res.UID {
		t.Fatalf("affinity datum not routed to client: %+v", r.Fetch)
	}
}

func TestStaleOwnershipReconciled(t *testing.T) {
	// A host assigned a datum whose download then fails reports a cache
	// without it at the next sync; the stale ownership must be withdrawn
	// and the datum re-offered (paper's replica counts track live copies).
	s, _ := newTestService()
	d := mkdata("flaky")
	s.Schedule(d, attr.Attribute{Name: "a", Replica: 1})
	r := s.Sync("h1", nil)
	if len(r.Fetch) != 1 {
		t.Fatal("no assignment")
	}
	// h1's download failed: it syncs again with an empty cache and must be
	// offered the datum again.
	r = s.Sync("h1", nil)
	if len(r.Fetch) != 1 || r.Fetch[0].Data.UID != d.UID {
		t.Fatalf("failed download not re-offered: %+v", r.Fetch)
	}
	// A different host syncing while h1 stays silent can also take it
	// (h1's stale ownership was dropped, freeing the replica slot)...
	r = s.Sync("h2", nil)
	if len(r.Fetch) != 0 {
		// h1 re-claimed it above, so h2 gets nothing; drop h1's claim by
		// syncing h1 empty-cached again, then h2 must receive it.
		t.Fatalf("h2 fetch = %+v", r.Fetch)
	}
	s.Sync("h1", nil) // h1 still failing
	// h1 holds the claim again; kill it via another empty sync from h1 and
	// immediately offer to h2? The claim belongs to whoever synced last.
	r = s.Sync("h2", nil)
	if len(r.Fetch) != 0 {
		t.Fatalf("h2 should not fetch while h1 holds a fresh claim: %+v", r.Fetch)
	}
}

func TestPinnedOwnershipNotReconciledAway(t *testing.T) {
	s, _ := newTestService()
	d := mkdata("pinned")
	s.Pin(d, attr.Attribute{Name: "a", Replica: 1}, "master")
	// Master syncs with an empty cache (e.g. before adopting the datum
	// locally); pinned ownership must survive.
	s.Sync("master", nil)
	owners := s.Owners(d.UID)
	if len(owners) != 1 || owners[0] != "master" {
		t.Fatalf("pinned ownership lost: %v", owners)
	}
}

// TestQuickChurnReplicaInvariant drives random churn (hosts joining,
// crashing, syncing in arbitrary order) against a fault-tolerant datum and
// checks the system invariant: once churn stops and the survivors keep
// syncing past the failure timeout, the live owner count converges to
// min(replica, live hosts) and every recorded owner is a live host.
func TestQuickChurnReplicaInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, clock := newTestService()
		s.Timeout = 3 * time.Second
		replica := rng.Intn(4) + 1
		d := mkdata("churny")
		s.Schedule(d, attr.Attribute{Name: "a", Replica: replica, FaultTolerant: true})

		hosts := []string{"h0", "h1", "h2", "h3", "h4", "h5"}
		alive := map[string]bool{}
		caches := map[string][]data.UID{}
		sync := func(h string) {
			r := s.Sync(h, caches[h])
			next := append([]data.UID(nil), r.Keep...)
			for _, f := range r.Fetch {
				next = append(next, f.Data.UID)
			}
			caches[h] = next
		}
		// Churn phase: random joins, crashes and syncs.
		for step := 0; step < 60; step++ {
			h := hosts[rng.Intn(len(hosts))]
			switch rng.Intn(4) {
			case 0:
				alive[h] = true
			case 1:
				alive[h] = false
				caches[h] = nil
			default:
				if alive[h] {
					sync(h)
				}
			}
			clock.advance(time.Duration(rng.Intn(1500)) * time.Millisecond)
		}
		// Settle: survivors sync repeatedly past the timeout.
		var live []string
		for _, h := range hosts {
			if alive[h] {
				live = append(live, h)
			}
		}
		if len(live) == 0 {
			return true // nobody left; nothing to check
		}
		for round := 0; round < 8; round++ {
			for _, h := range live {
				sync(h)
			}
			clock.advance(time.Second)
		}
		owners := s.Owners(d.UID)
		want := replica
		if len(live) < want {
			want = len(live)
		}
		// §3.2: at least `replica` live owners must exist, but the runtime
		// never deletes excess replicas, so transient churn may leave more
		// — bounded by the live population.
		if len(owners) < want || len(owners) > len(live) {
			t.Logf("seed %d: owners %v, want %d..%d of %v", seed, owners, want, len(live), live)
			return false
		}
		liveSet := map[string]bool{}
		for _, h := range live {
			liveSet[h] = true
		}
		for _, o := range owners {
			if !liveSet[o] {
				t.Logf("seed %d: dead owner %s", seed, o)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
