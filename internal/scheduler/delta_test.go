package scheduler

import (
	"fmt"
	"testing"

	"bitdew/internal/attr"
	"bitdew/internal/data"
	"bitdew/internal/rpc"
)

// TestSyncDeltaEquivalence: driving a host through delta heartbeats reaches
// the same Ψ as full-set syncs, while the payload after the first report is
// only the Δ.
func TestSyncDeltaEquivalence(t *testing.T) {
	s, _ := newTestService()
	var all []data.Data
	for i := 0; i < 12; i++ {
		d := mkdata(fmt.Sprintf("d%02d", i))
		all = append(all, d)
		if err := s.Schedule(d, attr.Attribute{Name: "a", Replica: 1}); err != nil {
			t.Fatal(err)
		}
	}

	// First heartbeat: full report of an empty cache.
	r := s.SyncDelta("h1", 0, true, nil, nil, false)
	if r.Resync {
		t.Fatal("full report answered with Resync")
	}
	if len(r.Fetch) != DefaultMaxDataSchedule {
		t.Fatalf("fetch = %d, want MaxDataSchedule", len(r.Fetch))
	}
	cache := map[data.UID]bool{}
	var added []data.UID
	for _, f := range r.Fetch {
		cache[f.Data.UID] = true
		added = append(added, f.Data.UID)
	}

	// Second heartbeat: only the adds travel.
	r = s.SyncDelta("h1", r.Epoch, false, added, nil, false)
	if r.Resync {
		t.Fatal("delta with matching epoch answered with Resync")
	}
	if len(r.Keep) != len(added) {
		t.Errorf("keep = %d, want %d", len(r.Keep), len(added))
	}
	for _, f := range r.Fetch {
		cache[f.Data.UID] = true
	}
	if len(cache) != len(all) {
		t.Errorf("converged to %d data, want %d", len(cache), len(all))
	}
}

func TestSyncDeltaEpochMismatchResyncs(t *testing.T) {
	s, _ := newTestService()
	d := mkdata("x")
	s.Schedule(d, attr.Attribute{Name: "a", Replica: 1})

	r := s.SyncDelta("h1", 0, true, nil, nil, false)
	if r.Resync || len(r.Fetch) != 1 {
		t.Fatalf("first sync: %+v", r)
	}
	// Stale epoch (e.g. a lost ack): server refuses the delta.
	stale := s.SyncDelta("h1", r.Epoch+7, false, nil, nil, false)
	if !stale.Resync {
		t.Fatal("stale epoch not answered with Resync")
	}
	if len(stale.Fetch) != 0 && len(stale.Keep) != 0 && len(stale.Drop) != 0 {
		t.Fatal("resync answer must be empty")
	}
	// The fallback full report re-establishes the session.
	r2 := s.SyncDelta("h1", 0, true, []data.UID{d.UID}, nil, false)
	if r2.Resync || len(r2.Keep) != 1 {
		t.Fatalf("fallback full report: %+v", r2)
	}
}

func TestSyncDeltaUnknownHostResyncs(t *testing.T) {
	s, _ := newTestService()
	r := s.SyncDelta("ghost", 3, false, nil, nil, false)
	if !r.Resync {
		t.Fatal("delta from unknown host must demand a resync")
	}
}

// TestSyncDeltaAfterFullSync: a plain full Sync invalidates the delta
// session, so the next delta is refused rather than applied to a stale
// mirror.
func TestSyncDeltaAfterFullSync(t *testing.T) {
	s, _ := newTestService()
	d := mkdata("x")
	s.Schedule(d, attr.Attribute{Name: "a", Replica: 1})

	r := s.SyncDelta("h1", 0, true, nil, nil, false)
	if r.Resync {
		t.Fatal("unexpected resync")
	}
	s.Sync("h1", []data.UID{d.UID})
	if r2 := s.SyncDelta("h1", r.Epoch+1, false, nil, nil, false); !r2.Resync {
		t.Fatal("delta after full Sync must resync")
	}
}

// TestSyncDeltaRemoves: removals shrink the mirrored cache and withdraw
// ownership exactly as a full report omitting the datum would.
func TestSyncDeltaRemoves(t *testing.T) {
	s, _ := newTestService()
	d := mkdata("x")
	s.Schedule(d, attr.Attribute{Name: "a", Replica: 1, FaultTolerant: true})

	r := s.SyncDelta("h1", 0, true, nil, nil, false)
	if len(r.Fetch) != 1 {
		t.Fatalf("fetch = %+v", r.Fetch)
	}
	r = s.SyncDelta("h1", r.Epoch, false, []data.UID{d.UID}, nil, false)
	if len(s.Owners(d.UID)) != 1 {
		t.Fatalf("owners = %v", s.Owners(d.UID))
	}
	// The host loses the copy (disk purge) and reports the removal. The
	// stale ownership is withdrawn, which makes the datum under-replicated
	// and immediately re-assigned — to this very host, proving the
	// withdrawal happened (a still-owned datum is never in Fetch).
	r = s.SyncDelta("h1", r.Epoch, false, nil, []data.UID{d.UID}, false)
	if len(r.Keep) != 0 {
		t.Errorf("removed datum still kept: %+v", r.Keep)
	}
	if len(r.Fetch) != 1 || r.Fetch[0].Data.UID != d.UID {
		t.Errorf("removed datum not re-assigned: %+v", r.Fetch)
	}
}

// TestSyncDeltaSessionPruning: cache mirrors of hosts gone quiet are
// dropped (bounding scheduler memory under churn); a pruned host's next
// delta is answered with Resync and a full report recovers.
func TestSyncDeltaSessionPruning(t *testing.T) {
	s, clk := newTestService()
	r := s.SyncDelta("h1", 0, true, nil, nil, false)
	if r.Resync {
		t.Fatal("unexpected resync")
	}
	// h1 goes silent well past the prune horizon; another host's sync
	// triggers the sweep.
	clk.advance(4 * s.Timeout)
	s.SyncDelta("h2", 0, true, nil, nil, false)
	stale := s.SyncDelta("h1", r.Epoch, false, nil, nil, false)
	if !stale.Resync {
		t.Fatal("pruned session not answered with Resync")
	}
	if r2 := s.SyncDelta("h1", 0, true, nil, nil, false); r2.Resync {
		t.Fatal("full report after pruning refused")
	}
}

func TestSyncDeltaOverRPC(t *testing.T) {
	s, _ := newTestService()
	d := mkdata("x")
	s.Schedule(d, attr.Attribute{Name: "a", Replica: 1})
	mux := rpc.NewMux()
	s.Mount(mux)
	c := NewClient(rpc.NewLocalClient(mux, 0))

	r, err := c.SyncDelta(SyncDeltaArgs{Host: "h1", Full: true})
	if err != nil || r.Resync {
		t.Fatalf("SyncDelta: %+v, %v", r, err)
	}
	if len(r.Fetch) != 1 || r.Fetch[0].Data.UID != d.UID {
		t.Fatalf("fetch = %+v", r.Fetch)
	}
	r2, err := c.SyncDelta(SyncDeltaArgs{Host: "h1", Epoch: r.Epoch, Added: []data.UID{d.UID}})
	if err != nil || r2.Resync || len(r2.Keep) != 1 {
		t.Fatalf("delta heartbeat: %+v, %v", r2, err)
	}
}

// TestScheduleCallBatch submits N Schedule calls in one rpc frame.
func TestScheduleCallBatch(t *testing.T) {
	s, _ := newTestService()
	mux := rpc.NewMux()
	s.Mount(mux)
	lc := rpc.NewLocalClient(mux, 0)
	c := NewClient(lc)

	var calls []*rpc.Call
	for i := 0; i < 5; i++ {
		calls = append(calls, c.ScheduleCall(mkdata(fmt.Sprintf("d%d", i)), attr.Attribute{Name: "a", Replica: 1}))
	}
	if err := rpc.CallBatch(lc, calls); err != nil {
		t.Fatal(err)
	}
	if err := rpc.FirstError(calls); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Entries()); got != 5 {
		t.Errorf("entries = %d, want 5", got)
	}
	if n, _ := rpc.RoundTrips(lc); n != 1 {
		t.Errorf("round trips = %d, want 1", n)
	}
}
