// Package scheduler implements BitDew's Data Scheduler service (DS) — the
// component that turns data attributes into transfer orders (paper §3.4.3,
// Algorithm 1).
//
// Reservoir hosts periodically contact the scheduler with the set of data
// held in their local cache (Δk). The scheduler scans its own data set (Θ)
// and answers with a new cache set (Ψk). The host can then safely delete
// obsolete data (Δk \ Ψk), keep the validated cache (Δk ∩ Ψk), and download
// newly assigned data (Ψk \ Δk).
//
// The scheduler also implements fault tolerance: each datum carries a list
// of active owners Ω refreshed at every synchronization, and owners of
// fault-tolerant data that miss heartbeats past the timeout are dropped, so
// the datum's replica count falls below its attribute and it is scheduled
// again to a new host.
package scheduler

import (
	"fmt"
	"sync"
	"time"

	"bitdew/internal/attr"
	"bitdew/internal/data"
	"bitdew/internal/db"
)

// DefaultMaxDataSchedule caps how many new data one synchronization may
// assign (the threshold that stops Algorithm 1's second loop).
const DefaultMaxDataSchedule = 8

// DefaultTimeout is the failure-detection timeout; the paper sets it to
// three heartbeat periods (3 × 1 s in the DSL-Lab experiment of §4.4).
const DefaultTimeout = 3 * time.Second

// Entry is one datum under management: its meta-information, its attribute
// and internal scheduling state.
type Entry struct {
	Data data.Data
	Attr attr.Attribute
	// scheduledAt anchors the absolute lifetime.
	scheduledAt time.Time
	// order preserves insertion order for deterministic scheduling.
	order int
}

// Assignment is one datum a host must download, with the attribute that
// drove the decision (the host needs the protocol hint and, for events, the
// attribute name).
type Assignment struct {
	Data data.Data
	Attr attr.Attribute
}

// SyncResult partitions the scheduler's answer Ψk relative to the host
// cache Δk.
type SyncResult struct {
	// Keep is Δk ∩ Ψk: cached data the host retains.
	Keep []data.UID
	// Drop is Δk \ Ψk: obsolete data the host deletes (firing data-delete
	// life-cycle events).
	Drop []data.UID
	// Fetch is Ψk \ Δk: data newly assigned to the host.
	Fetch []Assignment
}

// SyncDeltaResult is the answer to a delta synchronization: the usual
// Algorithm 1 partition plus the epoch protocol state.
type SyncDeltaResult struct {
	SyncResult
	// Epoch identifies the server-side cache mirror after this sync; the
	// host echoes it on its next delta so both sides agree on the base set.
	Epoch uint64
	// Resync, when true, means the server could not apply the delta (no
	// session, or epoch mismatch after a scheduler restart): the result is
	// empty and the host must repeat the sync with Full=true.
	Resync bool
}

// hostSession mirrors one host's last reported cache so heartbeats can ship
// Δ-sized deltas instead of the full set.
type hostSession struct {
	epoch uint64
	cache map[data.UID]bool
}

// Service is the Data Scheduler. All methods are safe for concurrent use.
type Service struct {
	mu     sync.Mutex
	theta  map[data.UID]*Entry
	orderC int
	// owners is Ω: data UID -> host -> last time ownership was confirmed.
	owners map[data.UID]map[string]time.Time
	// pinned marks (data, host) pairs registered through Pin; a pinned
	// owner never expires and its datum is never dropped from that host.
	pinned map[data.UID]map[string]bool
	// hosts tracks each host's last synchronization.
	hosts map[string]time.Time
	// sessions holds the per-host cache mirrors of the delta-sync protocol.
	sessions map[string]*hostSession
	// store, when set (AttachStore / NewDurable), receives a durable record
	// of every placement change; storeErr latches the first write failure
	// on the heartbeat path.
	store    db.Store
	storeErr error
	// gate, when set (SetRangeGate), restricts the scheduler to the key
	// ranges its shard currently owns in a replicated plane.
	gate func(uid data.UID) error

	// MaxDataSchedule caps new assignments per sync.
	MaxDataSchedule int
	// Timeout is the owner-expiry deadline for fault-tolerant data.
	Timeout time.Duration

	// now is the clock, injectable in tests and simulations.
	now func() time.Time
}

// New returns an empty scheduler with default thresholds.
func New() *Service {
	return &Service{
		theta:           make(map[data.UID]*Entry),
		owners:          make(map[data.UID]map[string]time.Time),
		pinned:          make(map[data.UID]map[string]bool),
		hosts:           make(map[string]time.Time),
		sessions:        make(map[string]*hostSession),
		MaxDataSchedule: DefaultMaxDataSchedule,
		Timeout:         DefaultTimeout,
		now:             time.Now,
	}
}

// SetClock replaces the scheduler's clock (simulations drive virtual time).
func (s *Service) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// Schedule places a datum under management with the given attribute,
// mirroring activeData.schedule(data, attr). Re-scheduling an existing
// datum updates its attribute without resetting ownership.
func (s *Service) Schedule(d data.Data, a attr.Attribute) error {
	a = a.Normalize()
	if err := a.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.gateLocked(d.UID); err != nil {
		return err
	}
	if e, ok := s.theta[d.UID]; ok {
		e.Data = d
		e.Attr = a
		s.persistLocked(d.UID)
		return nil
	}
	s.orderC++
	s.theta[d.UID] = &Entry{Data: d, Attr: a, scheduledAt: s.now(), order: s.orderC}
	s.persistLocked(d.UID)
	return nil
}

// Pin registers a datum as owned by a specific host (activeData.pin): the
// host counts as an owner, never expires, and the datum is always part of
// that host's Ψ.
func (s *Service) Pin(d data.Data, a attr.Attribute, host string) error {
	if err := s.Schedule(d, a); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addOwnerLocked(d.UID, host)
	if s.pinned[d.UID] == nil {
		s.pinned[d.UID] = make(map[string]bool)
	}
	s.pinned[d.UID][host] = true
	s.persistLocked(d.UID)
	return nil
}

// Unschedule removes a datum from management. Data with a relative
// lifetime bound to it become obsolete at their owners' next sync.
func (s *Service) Unschedule(uid data.UID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.theta[uid]; !ok {
		return fmt.Errorf("scheduler: datum %s not scheduled", uid)
	}
	delete(s.theta, uid)
	delete(s.owners, uid)
	delete(s.pinned, uid)
	s.persistLocked(uid)
	return nil
}

// Entries returns a snapshot of Θ in insertion order.
func (s *Service) Entries() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.theta))
	for _, e := range s.orderedEntriesLocked() {
		out = append(out, *e)
	}
	return out
}

// Owners returns the hosts currently owning uid, sorted-free snapshot.
func (s *Service) Owners(uid data.UID) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.owners[uid]))
	for h := range s.owners[uid] {
		out = append(out, h)
	}
	return out
}

// Hosts returns hosts seen within the failure timeout.
func (s *Service) Hosts() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	var out []string
	for h, seen := range s.hosts {
		if now.Sub(seen) <= s.Timeout {
			out = append(out, h)
		}
	}
	return out
}

// addOwnerLocked records (or refreshes) host's ownership of uid, reporting
// whether the membership changed (a new owner, as opposed to a timestamp
// refresh) — the signal the persistence layer uses to decide what to write.
func (s *Service) addOwnerLocked(uid data.UID, host string) bool {
	m := s.owners[uid]
	if m == nil {
		m = make(map[string]time.Time)
		s.owners[uid] = m
	}
	_, existed := m[host]
	m[host] = s.now()
	return !existed
}

// orderedEntriesLocked returns live entries in insertion order.
func (s *Service) orderedEntriesLocked() []*Entry {
	out := make([]*Entry, 0, len(s.theta))
	for _, e := range s.theta {
		out = append(out, e)
	}
	// Insertion sort by order (sets are small; avoids sort import games).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].order < out[j-1].order; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// aliveLocked reports whether an entry is still live: present in Θ, its
// absolute lifetime (anchored at scheduling) not expired, and its relative
// lifetime reference still in Θ.
func (s *Service) aliveLocked(e *Entry) bool {
	if e.Attr.LifetimeAbs > 0 && s.now().After(e.scheduledAt.Add(e.Attr.LifetimeAbs)) {
		return false
	}
	if ref := e.Attr.LifetimeRel; ref != "" {
		if s.findByRefLocked(ref) == nil {
			return false
		}
	}
	return true
}

// findByRefLocked resolves a data reference (UID, data name or attribute
// name) against Θ.
func (s *Service) findByRefLocked(ref string) *Entry {
	if e, ok := s.theta[data.UID(ref)]; ok {
		return e
	}
	for _, e := range s.theta {
		if e.Data.Name == ref || e.Attr.Name == ref {
			return e
		}
	}
	return nil
}

// expireOwnersLocked implements failure detection: owners of fault-tolerant
// data whose last confirmation is older than the timeout are dropped
// (unless pinned), so the replica count falls and Algorithm 1 reschedules
// the datum. Owners of non-fault-tolerant data are kept: the replica is
// simply unavailable while its host is down (paper §3.2).
func (s *Service) expireOwnersLocked(dirty map[data.UID]bool) {
	now := s.now()
	for uid, e := range s.theta {
		if !e.Attr.FaultTolerant {
			continue
		}
		for host, seen := range s.owners[uid] {
			if s.pinned[uid][host] {
				continue
			}
			if now.Sub(seen) > s.Timeout {
				delete(s.owners[uid], host)
				dirty[uid] = true
			}
		}
	}
	// Prune state of hosts gone quiet: delta-sync cache mirrors (and the
	// last-seen timestamps themselves) would otherwise accumulate forever
	// under churn. Hosts() only reports hosts seen within one Timeout, so
	// dropping >3×Timeout entries is invisible to it; a pruned-but-alive
	// host simply gets one Resync on its next heartbeat and re-establishes
	// its session.
	for host, seen := range s.hosts {
		if now.Sub(seen) > 3*s.Timeout {
			delete(s.sessions, host)
			delete(s.hosts, host)
		}
	}
}

// Sync is Algorithm 1: the reservoir host k reports its cache Δk and
// receives the partitioned new set Ψk.
func (s *Service) Sync(host string, cache []data.UID) SyncResult {
	return s.SyncAs(host, cache, false)
}

// SyncAs is Sync with an explicit host role. A client host (the paper's
// "client hosts ask for storage resources; reservoir hosts offer their
// local storage", §3.1) never receives replica- or broadcast-driven
// assignments — only data whose affinity points at something the client
// already holds (pinned Collectors attracting Results).
func (s *Service) SyncAs(host string, cache []data.UID, clientOnly bool) SyncResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	// A full report supersedes any delta session: drop it so a host mixing
	// the two protocols gets a clean resync on its next delta.
	delete(s.sessions, host)
	return s.syncLocked(host, cache, clientOnly)
}

// SyncDelta is the delta heartbeat: instead of reshipping its full cache Δk
// every period, the host sends only the adds and removes since the epoch it
// last acknowledged, and the scheduler replays them onto its mirror of the
// host's cache. Full=true (re)establishes the session with Added as the
// complete cache; an epoch mismatch (scheduler restarted, missed ack)
// returns Resync=true and the host falls back to a full report.
func (s *Service) SyncDelta(host string, epoch uint64, full bool, added, removed []data.UID, clientOnly bool) SyncDeltaResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessions[host]
	if full {
		sess = &hostSession{cache: make(map[data.UID]bool, len(added))}
		for _, uid := range added {
			sess.cache[uid] = true
		}
		s.sessions[host] = sess
	} else {
		if sess == nil || epoch != sess.epoch {
			return SyncDeltaResult{Resync: true}
		}
		for _, uid := range added {
			sess.cache[uid] = true
		}
		for _, uid := range removed {
			delete(sess.cache, uid)
		}
	}
	sess.epoch++
	cache := make([]data.UID, 0, len(sess.cache))
	for uid := range sess.cache {
		cache = append(cache, uid)
	}
	return SyncDeltaResult{
		SyncResult: s.syncLocked(host, cache, clientOnly),
		Epoch:      sess.epoch,
	}
}

// syncLocked is the shared body of SyncAs and SyncDelta (Algorithm 1 against
// an explicit cache set). Callers hold s.mu.
func (s *Service) syncLocked(host string, cache []data.UID, clientOnly bool) SyncResult {
	s.hosts[host] = s.now()
	// dirty collects the data whose placement membership changed this sync;
	// they are persisted in one pass at the end (timestamp-only refreshes
	// are not persisted — see persistLocked).
	dirty := make(map[data.UID]bool)
	s.expireOwnersLocked(dirty)

	inCache := make(map[data.UID]bool, len(cache))
	for _, uid := range cache {
		inCache[uid] = true
	}
	psi := make(map[data.UID]bool)
	var result SyncResult

	// Step 1: keep cached data that is still live.
	for _, uid := range cache {
		if s.gateLocked(uid) != nil {
			// Not our range: stay non-committal. Reporting Keep (without
			// any ownership bookkeeping) stops a rejoined ex-primary's
			// stale Θ from ordering hosts to delete live data; the range's
			// real owner is the authority on this datum's fate.
			psi[uid] = true
			result.Keep = append(result.Keep, uid)
			continue
		}
		e, ok := s.theta[uid]
		if ok && s.aliveLocked(e) {
			psi[uid] = true
			result.Keep = append(result.Keep, uid)
			// Confirm ownership. Algorithm 1 refreshes Ω for fault-
			// tolerant data; we also record first-time ownership for
			// non-FT data so replica counting sees the copy, but never
			// refresh its timestamp (its liveness is not tracked).
			if e.Attr.FaultTolerant {
				if s.addOwnerLocked(uid, host) {
					dirty[uid] = true
				}
			} else if _, owned := s.owners[uid][host]; !owned {
				s.addOwnerLocked(uid, host)
				dirty[uid] = true
			}
		} else {
			result.Drop = append(result.Drop, uid)
		}
	}

	// Reconcile ownership: if this host is recorded as an owner of a datum
	// it did not report (a failed download, or a host that came back from
	// a crash with an empty cache), withdraw the stale ownership so the
	// replica count reflects reality and the datum can be re-assigned —
	// possibly to this very host in step 2. Pinned ownership is exempt.
	for uid, owners := range s.owners {
		if s.gateLocked(uid) != nil {
			continue // unowned range: leave its replicated state frozen
		}
		if _, owned := owners[host]; owned && !inCache[uid] && !s.pinned[uid][host] {
			delete(owners, host)
			dirty[uid] = true
		}
	}

	// Step 2: assign new data.
	newCount := 0
	entries := s.orderedEntriesLocked()
	for _, e := range entries {
		if newCount >= s.MaxDataSchedule {
			break
		}
		uid := e.Data.UID
		if psi[uid] || inCache[uid] || !s.aliveLocked(e) {
			continue
		}
		if s.gateLocked(uid) != nil {
			continue // never assign data from a range this shard lost
		}
		assign := false
		// Affinity: schedule where the referenced datum already is.
		// Affinity is stronger than replica (§3.2): it bypasses the
		// replica count entirely.
		if ref := e.Attr.Affinity; ref != "" {
			if target := s.findByRefLocked(ref); target != nil && psi[target.Data.UID] {
				assign = true
			}
		} else if !clientOnly {
			// Replica: -1 broadcasts to every node; otherwise top up to
			// the requested count.
			if e.Attr.WantsBroadcast() || len(s.owners[uid]) < e.Attr.Replica {
				assign = true
			}
		}
		if assign {
			psi[uid] = true
			s.addOwnerLocked(uid, host)
			dirty[uid] = true
			result.Fetch = append(result.Fetch, Assignment{Data: e.Data, Attr: e.Attr})
			newCount++
		}
	}
	for uid := range dirty {
		s.persistLocked(uid)
	}
	return result
}

// GC removes entries whose lifetime has expired from Θ entirely; the
// runtime calls it periodically so dead data do not accumulate.
func (s *Service) GC() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	// Repeat until fixpoint: removing a datum may expire relative
	// lifetimes bound to it.
	for {
		var dead []data.UID
		for uid, e := range s.theta {
			if !s.aliveLocked(e) {
				dead = append(dead, uid)
			}
		}
		if len(dead) == 0 {
			return removed
		}
		for _, uid := range dead {
			delete(s.theta, uid)
			delete(s.owners, uid)
			delete(s.pinned, uid)
			s.persistLocked(uid)
			removed++
		}
	}
}
