package scheduler

import (
	"testing"
	"time"

	"bitdew/internal/attr"
	"bitdew/internal/data"
	"bitdew/internal/db"
)

// restartDurable closes nothing (the store is in-memory) but simulates a
// service crash/restart: a fresh scheduler recovered from the same store.
func restartDurable(t *testing.T, store db.Store) *Service {
	t.Helper()
	s, err := NewDurable(store)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDurableSchedulerRecoversEntries(t *testing.T) {
	store := db.NewRowStore()
	s := restartDurable(t, store)

	d1 := data.New("a")
	d2 := data.New("b")
	if err := s.Schedule(*d1, attr.Attribute{Name: "one", Replica: 2, FaultTolerant: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.Pin(*d2, attr.Attribute{Name: "coll", Pinned: true}, "master"); err != nil {
		t.Fatal(err)
	}
	s.Sync("w1", nil) // w1 gets assigned d1

	re := restartDurable(t, store)
	entries := re.Entries()
	if len(entries) != 2 {
		t.Fatalf("recovered %d entries, want 2", len(entries))
	}
	// Insertion order survives the restart.
	if entries[0].Data.UID != d1.UID || entries[1].Data.UID != d2.UID {
		t.Fatalf("recovered order = %s, %s", entries[0].Data.Name, entries[1].Data.Name)
	}
	if entries[0].Attr.Replica != 2 || !entries[0].Attr.FaultTolerant {
		t.Fatalf("recovered attr = %+v", entries[0].Attr)
	}
	// Placements survive: w1 still owns d1, the pin still holds.
	if owners := re.Owners(d1.UID); len(owners) != 1 || owners[0] != "w1" {
		t.Fatalf("recovered owners of d1 = %v", owners)
	}
	if owners := re.Owners(d2.UID); len(owners) != 1 || owners[0] != "master" {
		t.Fatalf("recovered owners of pinned d2 = %v", owners)
	}
	// The pin itself survives: a sync from master with an empty cache must
	// not withdraw pinned ownership.
	re.Sync("master", nil)
	if owners := re.Owners(d2.UID); len(owners) != 1 {
		t.Fatalf("pin lost after restart: owners = %v", owners)
	}
	if err := re.StoreErr(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableSchedulerUnscheduleAndGCDeleteRows(t *testing.T) {
	store := db.NewRowStore()
	s := restartDurable(t, store)

	d := data.New("doomed")
	if err := s.Schedule(*d, attr.Default()); err != nil {
		t.Fatal(err)
	}
	if store.Len(tableEntries) != 1 {
		t.Fatalf("rows = %d, want 1", store.Len(tableEntries))
	}
	if err := s.Unschedule(d.UID); err != nil {
		t.Fatal(err)
	}
	if store.Len(tableEntries) != 0 {
		t.Fatalf("rows after Unschedule = %d, want 0", store.Len(tableEntries))
	}

	// GC also deletes the durable rows of expired entries.
	now := time.Now()
	s.SetClock(func() time.Time { return now })
	exp := data.New("expiring")
	s.Schedule(*exp, attr.Attribute{Name: "short", LifetimeAbs: time.Second})
	now = now.Add(2 * time.Second)
	if n := s.GC(); n != 1 {
		t.Fatalf("GC removed %d, want 1", n)
	}
	if store.Len(tableEntries) != 0 {
		t.Fatalf("rows after GC = %d, want 0", store.Len(tableEntries))
	}
}

func TestDurableSchedulerNewOrderContinues(t *testing.T) {
	store := db.NewRowStore()
	s := restartDurable(t, store)
	d1 := data.New("first")
	s.Schedule(*d1, attr.Default())

	re := restartDurable(t, store)
	d2 := data.New("second")
	re.Schedule(*d2, attr.Default())
	entries := re.Entries()
	if len(entries) != 2 || entries[0].Data.UID != d1.UID || entries[1].Data.UID != d2.UID {
		t.Fatalf("post-restart scheduling broke insertion order: %+v", entries)
	}
}

func TestDurableSchedulerRestartForcesResync(t *testing.T) {
	store := db.NewRowStore()
	s := restartDurable(t, store)
	d := data.New("x")
	s.Schedule(*d, attr.Default())

	// Establish a delta session.
	res := s.SyncDelta("w1", 0, true, nil, nil, false)
	if res.Resync {
		t.Fatal("full report refused")
	}

	// Sessions are not persisted: after a restart the host's next delta is
	// told to resync, and its full report reconverges.
	re := restartDurable(t, store)
	res2 := re.SyncDelta("w1", res.Epoch, false, nil, nil, false)
	if !res2.Resync {
		t.Fatal("restarted scheduler accepted a stale delta session")
	}
	res3 := re.SyncDelta("w1", 0, true, []data.UID{d.UID}, nil, false)
	if res3.Resync {
		t.Fatal("full resync refused after restart")
	}
	if len(res3.Keep) != 1 || res3.Keep[0] != d.UID {
		t.Fatalf("reconverged keep = %v", res3.Keep)
	}
}

func TestDurableSchedulerOverDurableStore(t *testing.T) {
	dir := t.TempDir()
	ds, err := db.OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewDurable(ds)
	if err != nil {
		t.Fatal(err)
	}
	d := data.New("persisted")
	s.Schedule(*d, attr.Attribute{Name: "bcast", Replica: attr.ReplicaAll, Protocol: "http"})
	s.Sync("w1", nil)
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	ds2, err := db.OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	re, err := NewDurable(ds2)
	if err != nil {
		t.Fatal(err)
	}
	entries := re.Entries()
	if len(entries) != 1 || entries[0].Data.UID != d.UID {
		t.Fatalf("entries after disk restart = %+v", entries)
	}
	if entries[0].Attr.Protocol != "http" || !entries[0].Attr.WantsBroadcast() {
		t.Fatalf("attr after disk restart = %+v", entries[0].Attr)
	}
	if owners := re.Owners(d.UID); len(owners) != 1 || owners[0] != "w1" {
		t.Fatalf("owners after disk restart = %v", owners)
	}
}
