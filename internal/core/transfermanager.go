package core

import (
	"time"

	"bitdew/internal/data"
	"bitdew/internal/transfer"
)

// TransferManager is the non-blocking transfer API of paper §3.3: probe
// transfers, wait for completion, create barriers and tune concurrency.
type TransferManager struct {
	engine *transfer.Engine
}

// NewTransferManager wraps the node's transfer engine.
func NewTransferManager(engine *transfer.Engine) *TransferManager {
	return &TransferManager{engine: engine}
}

// Download starts an asynchronous fetch of d from loc.
func (t *TransferManager) Download(d data.Data, loc data.Locator) *transfer.Handle {
	return t.engine.Download(d, loc)
}

// Upload starts an asynchronous push of d's local content to loc.
func (t *TransferManager) Upload(d data.Data, loc data.Locator) *transfer.Handle {
	return t.engine.Upload(d, loc)
}

// WaitFor blocks until every transfer of the datum completes — the
// paper's transferManager.waitFor(data).
func (t *TransferManager) WaitFor(d data.Data) error {
	return t.engine.WaitFor(d.UID)
}

// Barrier blocks until every given transfer completes, returning the first
// error.
func (t *TransferManager) Barrier(handles ...*transfer.Handle) error {
	return transfer.Barrier(handles...)
}

// Probe reports a handle's progress without blocking.
func (t *TransferManager) Probe(h *transfer.Handle) transfer.Progress {
	return h.Probe()
}

// SetMonitorPeriod tunes the receiver-driven monitoring heartbeat.
func (t *TransferManager) SetMonitorPeriod(d time.Duration) {
	t.engine.MonitorPeriod = d
}

// SetMaxAttempts tunes how many times a faulty transfer is resumed before
// being declared failed (the programmer's resume-or-cancel preference).
func (t *TransferManager) SetMaxAttempts(n int) {
	if n > 0 {
		t.engine.MaxAttempts = n
	}
}
