package core_test

import (
	"net"
	"testing"
	"time"

	"bitdew/internal/attr"
	"bitdew/internal/core"
	"bitdew/internal/runtime"
)

// TestNodeReconvergesAfterServiceRestart bounces the whole service host
// (all four D* services) mid-workload: the node's reconnecting comms ride
// through the restart, the delta-sync session is re-established with a
// full report, and data scheduled before the crash is still assigned
// afterwards — nothing is lost.
func TestNodeReconvergesAfterServiceRestart(t *testing.T) {
	stateDir := t.TempDir()
	cfg := runtime.ContainerConfig{
		Addr:         "127.0.0.1:0",
		StateDir:     stateDir,
		DisableFTP:   true,
		DisableSwarm: true,
	}
	services, err := runtime.NewContainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr := services.Addr()

	comms, err := core.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer comms.Close()
	master, err := core.NewNode(core.NodeConfig{Host: "master", Comms: comms})
	if err != nil {
		t.Fatal(err)
	}
	master.SetClientOnly(true)

	d1, err := master.BitDew.CreateData("pre-crash")
	if err != nil {
		t.Fatal(err)
	}
	if err := master.BitDew.Put(d1, []byte("survives the restart")); err != nil {
		t.Fatal(err)
	}
	if err := master.ActiveData.Schedule(*d1, attr.Attribute{Name: "bcast", Replica: attr.ReplicaAll, Protocol: "http"}); err != nil {
		t.Fatal(err)
	}

	wcomms, err := core.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wcomms.Close()
	worker, err := core.NewNode(core.NodeConfig{Host: "w1", Comms: wcomms})
	if err != nil {
		t.Fatal(err)
	}
	// Converge once pre-crash: establishes a delta session with an epoch.
	if err := worker.SyncWait(2); err != nil {
		t.Fatal(err)
	}
	if !worker.Holds(d1.UID) {
		t.Fatal("worker did not converge before the crash")
	}

	// Crash and restart the service host on the same address.
	if err := services.Close(); err != nil {
		t.Fatal(err)
	}
	cfg.Addr = addr
	restarted, err := runtime.NewContainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()

	// The worker's next heartbeats must reconverge (Resync → full report)
	// without dropping the datum it already holds.
	if err := worker.SyncWait(2); err != nil {
		t.Fatalf("sync after restart: %v", err)
	}
	if !worker.Holds(d1.UID) {
		t.Fatal("worker lost its datum across the service restart")
	}
	if owners := restarted.DS.Owners(d1.UID); len(owners) == 0 {
		t.Fatal("restarted scheduler shows no owner after reconvergence")
	}

	// New work flows through the same (reconnected) comms: a fresh datum
	// put and scheduled post-restart reaches the worker.
	d2, err := master.BitDew.CreateData("post-crash")
	if err != nil {
		t.Fatal(err)
	}
	if err := master.BitDew.Put(d2, []byte("after the restart")); err != nil {
		t.Fatal(err)
	}
	if err := master.ActiveData.Schedule(*d2, attr.Attribute{Name: "bcast2", Replica: attr.ReplicaAll, Protocol: "http"}); err != nil {
		t.Fatal(err)
	}
	if err := worker.SyncWait(2); err != nil {
		t.Fatal(err)
	}
	if !worker.Holds(d2.UID) {
		t.Fatal("post-restart datum never reached the worker")
	}
}

// TestNodeHeartbeatErrorsWhileServiceDown verifies a node does not wedge
// while the service host is down: heartbeats fail with an error, and the
// same node recovers once the host is back.
func TestNodeHeartbeatErrorsWhileServiceDown(t *testing.T) {
	services, err := runtime.NewContainer(runtime.ContainerConfig{
		Addr: "127.0.0.1:0", DisableFTP: true, DisableSwarm: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := services.Addr()
	comms, err := core.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer comms.Close()
	worker, err := core.NewNode(core.NodeConfig{Host: "w1", Comms: comms, SyncPeriod: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := worker.SyncOnce(); err != nil {
		t.Fatal(err)
	}

	services.Close()
	if err := worker.SyncOnce(); err == nil {
		t.Fatal("heartbeat against a dead service host succeeded")
	}

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	lis.Close() // only checking the port is free again; restart for real:
	restarted, err := runtime.NewContainer(runtime.ContainerConfig{
		Addr: addr, DisableFTP: true, DisableSwarm: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	if err := worker.SyncOnce(); err != nil {
		t.Fatalf("heartbeat after service came back: %v", err)
	}
}
