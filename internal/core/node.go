package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bitdew/internal/attr"
	"bitdew/internal/data"
	"bitdew/internal/repository"
	"bitdew/internal/scheduler"
	"bitdew/internal/transfer"
)

// DefaultSyncPeriod is the reservoir host's pull period; the paper's
// stressed experiments synchronize with the scheduler every second.
const DefaultSyncPeriod = time.Second

// DefaultWaitTimeout bounds each SyncWait round's wait for in-flight
// transfers. Generous enough for the slowest protocol emulation in the
// experiment suite, but finite: a transfer wedged on a dead peer surfaces
// as an error instead of hanging the caller forever.
const DefaultWaitTimeout = 2 * time.Minute

// NodeConfig configures a volatile host.
type NodeConfig struct {
	// Host is the node's identity towards the scheduler. Required.
	Host string
	// Comms are the service connections of a single-host service plane.
	// Either Comms or Shards is required; Shards wins when both are set.
	Comms *Comms
	// Shards are the service connections of a sharded service plane
	// (ConnectSharded): the node heartbeats every shard's scheduler and
	// routes each datum's calls to its home shard.
	Shards *ShardSet
	// Backend is local storage (defaults to an in-memory backend, the
	// reservoir cache).
	Backend repository.Backend
	// SyncPeriod is the pull period (defaults to DefaultSyncPeriod).
	SyncPeriod time.Duration
	// Concurrency caps simultaneous transfers (defaults to 4).
	Concurrency int
}

// cacheEntry is one locally held datum with the attribute it arrived under.
type cacheEntry struct {
	d data.Data
	a attr.Attribute
}

// Node is a volatile host (client or reservoir) attached to the runtime
// services. It periodically pulls the Data Scheduler, reconciles its local
// cache with the returned set (keep / drop / fetch of Algorithm 1's Ψ),
// downloads new data out-of-band and fires data life-cycle events.
type Node struct {
	Host string

	set     *ShardSet
	backend repository.Backend
	engine  *transfer.Engine

	// BitDew, ActiveData and Transfers are the node's API instances.
	BitDew     *BitDew
	ActiveData *ActiveData
	Transfers  *TransferManager

	syncPeriod time.Duration
	// waitTimeout bounds each SyncWait round's wait for in-flight
	// transfers; zero means DefaultWaitTimeout. Tests shrink it to fail
	// fast instead of hanging on a wedged transfer.
	waitTimeout time.Duration

	mu         sync.Mutex
	cache      map[data.UID]cacheEntry
	inflight   map[data.UID]bool
	lastErr    error
	clientOnly bool
	// syncMu serializes heartbeat rounds: the delta protocol is stateful
	// (each shard session's reported set + epoch must match that
	// scheduler's view), so the periodic loop and manual SyncOnce/SyncWait
	// callers must not interleave their reports. It is held only across
	// the report, never across the drop/fetch apply phase or its callbacks.
	syncMu sync.Mutex
	// sessions holds the delta-heartbeat state keyed by the PHYSICAL shard
	// whose scheduler acknowledged it, guarded by syncMu (not mu): the
	// subset of the cache that scheduler acknowledged, at which epoch. On
	// an unreplicated plane the key is simply the home-shard index; on a
	// replicated plane it is the range's current owner (set.OwnerOf), so a
	// failover retires the dead shard's session and starts the promoted
	// owner's fresh — whose first heartbeat is a full report, the delta
	// protocol's designed recovery. Each heartbeat ships only the
	// difference between the owner's current set and its session's
	// reported set, falling back to a full report when that scheduler
	// demands a resync (restart, lost ack). Shards fail independently: a
	// dead shard's heartbeat error never blocks the others' placements
	// from applying.
	sessions map[int]*shardSession
	// lastViewEpoch is the membership epoch the sessions were built
	// against (guarded by syncMu). When an elastic plane commits a new
	// epoch, every shard's key ranges move, so the delta sessions restart
	// from full reports under the new placement.
	lastViewEpoch uint64

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// shardSession is one shard's delta-heartbeat state.
type shardSession struct {
	reported map[data.UID]bool
	epoch    uint64
	hasEpoch bool
}

// NewNode builds a volatile host from its configuration.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Host == "" {
		return nil, fmt.Errorf("core: node needs a host identity")
	}
	set := cfg.Shards
	if set == nil {
		if cfg.Comms == nil {
			return nil, fmt.Errorf("core: node needs service connections")
		}
		set = shardSetOf(cfg.Comms)
	}
	if cfg.Backend == nil {
		cfg.Backend = repository.NewMemBackend()
	}
	if cfg.SyncPeriod <= 0 {
		cfg.SyncPeriod = DefaultSyncPeriod
	}
	// The transfer engine reports each transfer to the DT service of the
	// datum's home shard, co-locating monitoring with the rest of the
	// datum's service state.
	engine := transfer.NewEngineRouted(cfg.Backend, func(uid data.UID) *transfer.Client {
		return set.For(uid).DT
	}, cfg.Host, cfg.Concurrency)
	n := &Node{
		Host:       cfg.Host,
		set:        set,
		backend:    cfg.Backend,
		engine:     engine,
		syncPeriod: cfg.SyncPeriod,
		cache:      make(map[data.UID]cacheEntry),
		inflight:   make(map[data.UID]bool),
		sessions:   make(map[int]*shardSession),
		stop:       make(chan struct{}),
	}
	n.BitDew = NewBitDewSharded(set, cfg.Backend, engine, cfg.Host)
	n.ActiveData = NewActiveDataSharded(set)
	n.ActiveData.node = n
	n.Transfers = NewTransferManager(engine)
	return n, nil
}

// Backend exposes the node's local storage.
func (n *Node) Backend() repository.Backend { return n.backend }

// SetClientOnly marks this node a client host: it asks for storage (its
// pinned data attract affinity-routed results) but never offers its own,
// so the scheduler skips it for replica and broadcast placement. Masters
// of master/worker applications run client-only (§3.1's client/reservoir
// distinction).
func (n *Node) SetClientOnly(v bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.clientOnly = v
}

// Cache lists the UIDs currently held (or being fetched) by this node.
func (n *Node) Cache() []data.UID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]data.UID, 0, len(n.cache))
	for uid := range n.cache {
		out = append(out, uid)
	}
	return out
}

// Holds reports whether the datum is in the node's cache.
func (n *Node) Holds(uid data.UID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.cache[uid]
	return ok
}

// LastErr returns the most recent pull-loop error (nil when healthy).
func (n *Node) LastErr() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastErr
}

// adoptLocal records a locally created datum (e.g. a pinned Collector) in
// the cache so synchronizations report it.
func (n *Node) adoptLocal(d data.Data, a attr.Attribute) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cache[d.UID] = cacheEntry{d: d, a: a}
}

// Start launches the periodic pull loop.
func (n *Node) Start() {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		ticker := time.NewTicker(n.syncPeriod)
		defer ticker.Stop()
		for {
			select {
			case <-n.stop:
				return
			case <-ticker.C:
				if err := n.SyncOnce(); err != nil {
					n.mu.Lock()
					n.lastErr = err
					n.mu.Unlock()
				}
			}
		}
	}()
}

// Stop halts the pull loop. The node can still be driven with SyncOnce.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
}

// SyncOnce performs one pull-model synchronization as a delta heartbeat to
// every shard's scheduler: for each shard, report the adds and removes to
// the shard-homed slice of the cache since that session's acknowledged
// epoch (Δ of Δk, not the full set), then apply the merged answers. A host
// with a quiescent 10k-datum cache therefore heartbeats with empty payloads
// instead of reshipping 10k UIDs every period. When a scheduler cannot
// apply its delta (restart, epoch mismatch) it answers Resync and the node
// repeats that shard's heartbeat as a full report. Shards that answered are
// applied even when others failed (the error still reports the failures),
// so one dead shard never freezes placements on the survivors. Downloads
// are started asynchronously so heartbeats continue during long transfers;
// SyncWait additionally blocks until they land.
func (n *Node) SyncOnce() error {
	res, err := n.heartbeat()

	// Apply the answers outside syncMu, as the lock-free pre-delta code
	// did: life-cycle callbacks fired below may themselves drive the node
	// (a handler calling SyncWait must not self-deadlock).

	// Drop Δk \ Ψk: delete local copies and fire delete events.
	for _, uid := range res.Drop {
		n.mu.Lock()
		entry, ok := n.cache[uid]
		delete(n.cache, uid)
		n.mu.Unlock()
		n.backend.Delete(string(uid))
		if ok {
			n.ActiveData.fireDelete(Event{Data: entry.d, Attr: entry.a})
		}
	}

	// Fetch Ψk \ Δk.
	for _, as := range res.Fetch {
		n.startFetch(as)
	}
	return err
}

// heartbeat runs the report half of one synchronization under syncMu: one
// delta heartbeat per physical shard, in parallel, each against its own
// session. Over a replicated plane the cache is grouped by each range's
// CURRENT owner — after a failover one physical shard may answer for
// several ranges, and must receive those ranges' data in one session — and
// the heartbeat goes through that range's slot so it keeps failing over
// mid-report. The merged result carries every successful shard's answer;
// the error joins the failed shards'.
func (n *Node) heartbeat() (scheduler.SyncDeltaResult, error) {
	n.syncMu.Lock()
	defer n.syncMu.Unlock()

	// Follow elastic membership changes, then capture ONE view for the
	// whole round: grouping, sessions and reports all agree on a single
	// placement even when a rebalance commits mid-round.
	n.set.PollEpoch()
	v := n.set.currentView()
	if v.epoch != n.lastViewEpoch {
		// The membership changed: every shard's key ranges moved, so the
		// per-shard delta sessions describe slices that no longer exist.
		// Restart them — the next report per shard is a full one.
		n.sessions = make(map[int]*shardSession)
		n.lastViewEpoch = v.epoch
	}

	// The reported cache is the dataset this host manages: completed
	// copies plus in-flight downloads. Reporting in-flight data keeps the
	// scheduler's ownership heartbeats alive during transfers longer than
	// the failure-detection timeout.
	n.mu.Lock()
	clientOnly := n.clientOnly
	perShard := make([]map[data.UID]bool, len(v.shards))
	for i := range perShard {
		perShard[i] = make(map[data.UID]bool)
	}
	for uid := range n.cache {
		perShard[v.place.ShardOf(string(uid))][uid] = true
	}
	for uid := range n.inflight {
		perShard[v.place.ShardOf(string(uid))][uid] = true
	}
	n.mu.Unlock()

	// Group ranges by current owner: owner → (representative range slot,
	// union of the owned ranges' sets). Identity on an unreplicated plane.
	type ownerGroup struct {
		slot    int
		current map[data.UID]bool
	}
	groups := make(map[int]*ownerGroup, len(v.shards))
	for i := range v.shards {
		owner := n.set.OwnerOf(i)
		g := groups[owner]
		if g == nil {
			g = &ownerGroup{slot: i, current: perShard[i]}
			groups[owner] = g
			continue
		}
		for uid := range perShard[i] {
			g.current[uid] = true
		}
	}
	// Sessions of shards that currently own nothing (failed over, not yet
	// rejoined) are dead weight at best and would resurrect stale mirrors
	// at worst; drop them. Create missing ones here, single-threaded, so
	// the per-owner goroutines below never write the map.
	for owner := range n.sessions {
		if groups[owner] == nil {
			delete(n.sessions, owner)
		}
	}
	for owner := range groups {
		if n.sessions[owner] == nil {
			n.sessions[owner] = &shardSession{}
		}
	}

	var merged scheduler.SyncDeltaResult
	if len(groups) == 1 {
		for owner, g := range groups {
			res, err := n.heartbeatShard(owner, v.shards[g.slot], g.current, clientOnly)
			if err != nil {
				return merged, err
			}
			merged.Drop = res.Drop
			merged.Fetch = res.Fetch
		}
		return merged, nil
	}

	results := make(map[int]scheduler.SyncDeltaResult, len(groups))
	errs := make([]error, 0, len(groups))
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	for owner, g := range groups {
		wg.Add(1)
		go func(owner int, g *ownerGroup) {
			defer wg.Done()
			res, err := n.heartbeatShard(owner, v.shards[g.slot], g.current, clientOnly)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, err)
				return
			}
			results[owner] = res
		}(owner, g)
	}
	wg.Wait()
	for _, res := range results {
		merged.Drop = append(merged.Drop, res.Drop...)
		merged.Fetch = append(merged.Fetch, res.Fetch...)
	}
	return merged, errors.Join(errs...)
}

// heartbeatShard runs one physical shard's delta heartbeat (with the
// full-report fallback) against its session, committing the acknowledged
// state on success. The report travels over the round's captured view of
// the range slot's connection so it benefits from failover routing. The
// caller holds syncMu and has created the session; each owner's session is
// touched only by its own goroutine.
func (n *Node) heartbeatShard(owner int, c *Comms, current map[data.UID]bool, clientOnly bool) (scheduler.SyncDeltaResult, error) {
	sess := n.sessions[owner]
	args := scheduler.SyncDeltaArgs{
		Host:       n.Host,
		Epoch:      sess.epoch,
		Full:       !sess.hasEpoch,
		ClientOnly: clientOnly,
	}
	if args.Full {
		for uid := range current {
			args.Added = append(args.Added, uid)
		}
	} else {
		for uid := range current {
			if !sess.reported[uid] {
				args.Added = append(args.Added, uid)
			}
		}
		for uid := range sess.reported {
			if !current[uid] {
				args.Removed = append(args.Removed, uid)
			}
		}
	}

	ds := c.DS
	res, err := ds.SyncDelta(args)
	if err != nil {
		return res, fmt.Errorf("core: sync %s: %w", n.Host, err)
	}
	// An epoch that did not advance past the one we reported against means
	// the scheduler restarted and some other report re-established our
	// session underneath us (a restarted scheduler normally answers Resync
	// outright, since delta sessions are deliberately not persisted).
	// Either way the server's mirror cannot be trusted: reconverge through
	// a full report.
	if !args.Full && !res.Resync && res.Epoch <= args.Epoch {
		res.Resync = true
	}
	if res.Resync {
		// The scheduler lost (or never had) our session: repeat as a full
		// report of the same snapshot.
		args.Full = true
		args.Epoch = 0
		args.Added = args.Added[:0]
		for uid := range current {
			args.Added = append(args.Added, uid)
		}
		args.Removed = nil
		if res, err = ds.SyncDelta(args); err != nil {
			return res, fmt.Errorf("core: sync %s: %w", n.Host, err)
		}
		if res.Resync {
			return res, fmt.Errorf("core: sync %s: scheduler refused full resync", n.Host)
		}
	}
	sess.reported = current
	sess.epoch = res.Epoch
	sess.hasEpoch = true
	return res, nil
}

// startFetch begins downloading one assignment unless already in flight.
func (n *Node) startFetch(as scheduler.Assignment) {
	n.mu.Lock()
	if n.inflight[as.Data.UID] {
		n.mu.Unlock()
		return
	}
	if _, cached := n.cache[as.Data.UID]; cached {
		n.mu.Unlock()
		return
	}
	n.inflight[as.Data.UID] = true
	n.mu.Unlock()

	finish := func(ok bool) {
		n.mu.Lock()
		delete(n.inflight, as.Data.UID)
		if ok {
			n.cache[as.Data.UID] = cacheEntry{d: as.Data, a: as.Attr}
		}
		n.mu.Unlock()
		if ok {
			n.ActiveData.fireCopy(Event{Data: as.Data, Attr: as.Attr})
		}
	}

	// Empty slots (created but never filled, e.g. a Collector) have no
	// content to move: adopt them directly.
	if as.Data.Size == 0 && as.Data.Checksum == "" {
		if err := n.backend.Put(string(as.Data.UID), nil); err != nil {
			finish(false)
			return
		}
		finish(true)
		return
	}

	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		finish(n.BitDew.Fetch(as.Data, as.Attr.Protocol) == nil)
	}()
}

// SyncWait runs SyncOnce rounds until the node's cache is quiescent: no
// transfers in flight and a final round neither fetched nor dropped
// anything. It is the deterministic driver used by tests and examples.
// Each round's wait for in-flight transfers is bounded (DefaultWaitTimeout,
// shrinkable via the node's waitTimeout): a transfer wedged on a dead peer
// turns into an error here instead of a hung caller.
func (n *Node) SyncWait(rounds int) error {
	timeout := n.waitTimeout
	if timeout <= 0 {
		timeout = DefaultWaitTimeout
	}
	for i := 0; i < rounds; i++ {
		if err := n.SyncOnce(); err != nil {
			return err
		}
		// Wait for in-flight downloads from this round, up to the deadline.
		deadline := time.Now().Add(timeout)
		for {
			n.mu.Lock()
			busy := len(n.inflight)
			n.mu.Unlock()
			if busy == 0 {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("core: SyncWait round %d: %d transfer(s) still in flight after %v", i, busy, timeout)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return nil
}
