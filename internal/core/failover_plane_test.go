package core_test

import (
	"bytes"
	"testing"
	"time"

	"bitdew/internal/core"
	"bitdew/internal/data"
	"bitdew/internal/dht"
	"bitdew/internal/repl"
	"bitdew/internal/rpc"
	"bitdew/internal/runtime"
)

// Plane-level failover coverage beyond the single-kill happy path: a
// double failure (the victim range loses BOTH its candidates mid-wave)
// must degrade to clean errors on that range while every other range keeps
// serving byte-exact, and a flapping shard (restarted DURING the
// promotion it triggered) must rejoin as a replica without split-brain.

const planeWait = 30 * time.Second

// replicatedHarness boots a Shards-shard R=2 plane plus a failover-aware
// client node, and distributes a wave through it.
func replicatedHarness(t *testing.T, shards, waveSize int) (*runtime.ShardedContainer, *core.ShardSet, *core.Node, []*data.Data, [][]byte) {
	t.Helper()
	plane, err := runtime.NewShardedContainer(runtime.ShardedConfig{
		Shards:       shards,
		Replicas:     2,
		DisableFTP:   true,
		DisableSwarm: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { plane.Close() })
	set, err := core.ConnectSharded(plane.Addrs(), core.WithReplicas(plane.Replicas()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { set.Close() })
	node, err := core.NewNode(core.NodeConfig{Host: "failover-client", Shards: set, Concurrency: 16})
	if err != nil {
		t.Fatal(err)
	}
	node.SetClientOnly(true)
	t.Cleanup(node.Stop)
	wave, contents := putWave(t, node, waveSize)
	if err := plane.WaitReplicated(planeWait); err != nil {
		t.Fatal(err)
	}
	return plane, set, node, wave, contents
}

// fetchUntil reads d through the node until it succeeds or the deadline
// passes, returning the bytes. Retries ride the failover path: the first
// post-kill read triggers detection and promotion.
func fetchUntil(t *testing.T, node *core.Node, d *data.Data, deadline time.Duration) []byte {
	t.Helper()
	limit := time.Now().Add(deadline)
	for {
		raw, err := node.BitDew.GetBytes(*d)
		if err == nil {
			return raw
		}
		if time.Now().After(limit) {
			t.Fatalf("%s unreachable after %v: %v", d.Name, deadline, err)
		}
	}
}

// servingCount probes the live shards over the repl wire protocol and
// counts how many claim to be serving rangeID.
func servingCount(t *testing.T, plane *runtime.ShardedContainer, rangeID int) int {
	t.Helper()
	count := 0
	for i, addr := range plane.Addrs() {
		if plane.Shard(i) == nil {
			continue
		}
		c, err := rpc.Dial(addr, rpc.WithCallTimeout(2*time.Second))
		if err != nil {
			continue
		}
		var rep repl.OwnerReply
		err = c.Call(repl.ServiceName, "Owner", repl.OwnerArgs{Range: rangeID}, &rep)
		c.Close()
		if err == nil && rep.Serving {
			count++
		}
	}
	return count
}

// TestDoubleFailureDegradedButCorrect kills the victim range's owner
// mid-wave, lets the first successor promote, then kills the successor
// too: with R=2 the range's whole candidate set is gone, so reads of its
// data must fail with a clean error — never hang, never return wrong
// bytes — while every range with a surviving candidate keeps serving the
// wave byte-exact through the same client.
func TestDoubleFailureDegradedButCorrect(t *testing.T) {
	plane, set, node, wave, contents := replicatedHarness(t, 3, 18)
	place := dht.NewPlacement(3)

	victimRange := set.ShardOf(wave[0].UID)
	primary := set.OwnerOf(victimRange)
	successor := place.Successors(victimRange, 2)[1]

	// First failure mid-wave: read part of the wave, kill the owner, keep
	// reading — the witness read drives detection and promotion.
	for i, d := range wave[:len(wave)/3] {
		if got := fetchUntil(t, node, d, planeWait); !bytes.Equal(got, contents[i]) {
			t.Fatalf("%s corrupted before any failure", d.Name)
		}
	}
	if err := plane.KillShard(primary); err != nil {
		t.Fatal(err)
	}
	if got := fetchUntil(t, node, wave[0], planeWait); !bytes.Equal(got, contents[0]) {
		t.Fatalf("%s corrupted after first failover", wave[0].Name)
	}
	if owner := set.OwnerOf(victimRange); owner != successor {
		t.Fatalf("range %d failed over to shard %d, want first successor %d", victimRange, owner, successor)
	}

	// Second failure: the promoted successor dies too. The victim range
	// has no candidates left; everything else must still serve.
	if err := plane.KillShard(successor); err != nil {
		t.Fatal(err)
	}
	deadRangeChecked := false
	for i, d := range wave {
		home := set.ShardOf(d.UID)
		if home == victimRange {
			if deadRangeChecked {
				continue // one clean-error probe is enough; each costs a full resolve
			}
			deadRangeChecked = true
			c := set.Shard(home)
			if _, err := c.DC.Get(d.UID); err == nil {
				t.Fatalf("%s homed on the dead range answered after both candidates died", d.Name)
			}
			continue
		}
		if got := fetchUntil(t, node, d, planeWait); !bytes.Equal(got, contents[i]) {
			t.Fatalf("%s corrupted after double failure", d.Name)
		}
	}
	if !deadRangeChecked {
		t.Fatal("no wave datum homed on the victim range — double-failure audit proved nothing")
	}
}

// TestFlappingRestartDuringPromotion kills a range's owner and restarts it
// WHILE the promotion it triggered is racing in from the client: the
// restarted ex-owner must rejoin as a replica (or keep the range if it won
// the race) — but never BOTH: exactly one shard serves the range, the
// plane reconverges, and a follow-up kill of whichever shard owns the
// range fails over to the other candidate with byte-exact data, proving
// the flap caused no divergence.
func TestFlappingRestartDuringPromotion(t *testing.T) {
	plane, set, node, wave, contents := replicatedHarness(t, 3, 12)

	victimRange := set.ShardOf(wave[0].UID)
	primary := set.OwnerOf(victimRange)
	if err := plane.KillShard(primary); err != nil {
		t.Fatal(err)
	}
	// Restart the dead owner concurrently with the read that drives the
	// successor's promotion — the flap lands mid-promotion.
	restarted := make(chan error, 1)
	go func() {
		time.Sleep(50 * time.Millisecond)
		restarted <- plane.RestartShard(primary)
	}()
	if got := fetchUntil(t, node, wave[0], planeWait); !bytes.Equal(got, contents[0]) {
		t.Fatalf("%s corrupted across the flap", wave[0].Name)
	}
	if err := <-restarted; err != nil {
		t.Fatal(err)
	}

	// No split-brain: however the race resolved, exactly one shard serves
	// the range once the dust settles.
	deadline := time.Now().Add(planeWait)
	for {
		if n := servingCount(t, plane, victimRange); n == 1 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("%d shards serve range %d after the flap, want exactly 1", n, victimRange)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := plane.WaitReplicated(planeWait); err != nil {
		t.Fatalf("plane did not reconverge after the flap: %v", err)
	}

	// The rejoined replica caught up: kill the current owner and the range
	// must fail over to the other candidate with the same bytes.
	owner := set.OwnerOf(victimRange)
	if err := plane.KillShard(owner); err != nil {
		t.Fatal(err)
	}
	if got := fetchUntil(t, node, wave[0], planeWait); !bytes.Equal(got, contents[0]) {
		t.Fatalf("%s corrupted after post-flap failover", wave[0].Name)
	}
	if newOwner := set.OwnerOf(victimRange); newOwner == owner {
		t.Fatalf("range %d still routed to killed shard %d", victimRange, owner)
	}
}
