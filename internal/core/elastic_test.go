package core_test

import (
	"fmt"
	"reflect"
	"testing"

	"bitdew/internal/core"
)

// TestParseMembership pins the membership parser every client and server
// share: blanks trim, empty entries (trailing commas, doubled commas) drop,
// and duplicate addresses collapse to their first occurrence — a doubled
// address must not give one host two placement slots.
func TestParseMembership(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{",", nil},
		{" , ,", nil},
		{"a:1", []string{"a:1"}},
		{"a:1,b:2", []string{"a:1", "b:2"}},
		{"a:1,b:2,", []string{"a:1", "b:2"}},
		{",a:1,,b:2,,", []string{"a:1", "b:2"}},
		{"  a:1 ,\tb:2  ", []string{"a:1", "b:2"}},
		{"a:1,a:1", []string{"a:1"}},
		{"a:1,b:2,a:1", []string{"a:1", "b:2"}},
		{"a:1, a:1 ,b:2,b:2", []string{"a:1", "b:2"}},
	}
	for _, c := range cases {
		if got := core.ParseMembership(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseMembership(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestElasticScaleOut grows a live 2-shard plane to 3 under a connected
// client and checks the full contract: reads stay byte-exact BEFORE the
// client learns the new membership (stale cached locators resolve against
// retained content), the refresh adopts the bumped epoch and flushes the
// cache, and afterwards every datum — including the ones re-homed onto the
// new shard — still reads byte-exact through the committed placement.
func TestElasticScaleOut(t *testing.T) {
	h := newShardedHarness(t, 2)
	set := h.connect()
	master, err := core.NewNode(core.NodeConfig{Host: "master", Shards: set})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(master.Stop)
	master.SetClientOnly(true)

	if got := set.Epoch(); got != 1 {
		t.Fatalf("connect: epoch %d, want 1", got)
	}
	ds, contents := putWave(t, master, 40)
	// Warm the locator cache: these are the entries a rebalance must not
	// let go stale-and-wrong.
	for _, d := range ds {
		if _, err := master.BitDew.GetBytes(*d); err != nil {
			t.Fatalf("warm fetch %s: %v", d.Name, err)
		}
	}

	newIdx, err := h.plane.AddShard()
	if err != nil {
		t.Fatal(err)
	}
	if newIdx != 2 {
		t.Fatalf("AddShard: new index %d, want 2", newIdx)
	}
	if got := h.plane.Epoch(); got != 2 {
		t.Fatalf("plane epoch %d after AddShard, want 2", got)
	}

	// Window between commit and client refresh: the view still has 2
	// shards and the cache still points at pre-move endpoints. Every read
	// must stay byte-exact — moved content is retained on its old shard.
	if set.N() != 2 {
		t.Fatalf("pre-refresh view has %d shards, want 2", set.N())
	}
	for i, d := range ds {
		got, err := master.BitDew.GetBytes(*d)
		if err != nil {
			t.Fatalf("stale-view fetch %s: %v", d.Name, err)
		}
		if string(got) != string(contents[i]) {
			t.Fatalf("stale-view fetch %s: got %q want %q", d.Name, got, contents[i])
		}
	}

	if !set.Refresh() {
		t.Fatal("Refresh did not adopt the committed membership")
	}
	if got := set.Epoch(); got != 2 {
		t.Fatalf("post-refresh epoch %d, want 2", got)
	}
	if set.N() != 3 {
		t.Fatalf("post-refresh view has %d shards, want 3", set.N())
	}

	// The epoch bump must have flushed the cache (satellite: no fetch may
	// ride a pre-bump entry past a refresh): re-fetch everything through
	// the new placement and check the re-homed data actually moved.
	_, missesBefore := set.LocatorCacheStats()
	moved := 0
	for i, d := range ds {
		if set.ShardOf(d.UID) == 2 {
			moved++
		}
		got, err := master.BitDew.GetBytes(*d)
		if err != nil {
			t.Fatalf("post-refresh fetch %s: %v", d.Name, err)
		}
		if string(got) != string(contents[i]) {
			t.Fatalf("post-refresh fetch %s: got %q want %q", d.Name, got, contents[i])
		}
	}
	_, missesAfter := set.LocatorCacheStats()
	if missesAfter == missesBefore {
		t.Fatal("post-refresh fetches all hit the locator cache: the epoch bump did not flush it")
	}
	if moved == 0 {
		t.Fatal("no datum re-homed onto the new shard (40 data over 3 shards)")
	}
	// The re-homed data must be served by the NEW shard's catalog.
	for _, d := range ds {
		if set.ShardOf(d.UID) != 2 {
			continue
		}
		if _, err := h.plane.Shard(2).DC.Get(d.UID); err != nil {
			t.Fatalf("%s homed on new shard but not in its catalog: %v", d.Name, err)
		}
	}
}

// TestElasticDrain shrinks a live 3-shard plane to 2 and checks no datum is
// lost: every row and its content re-homes onto the survivors, the client
// follows the shrunk membership, and reads stay byte-exact even after the
// drained container is released.
func TestElasticDrain(t *testing.T) {
	h := newShardedHarness(t, 3)
	set := h.connect()
	master, err := core.NewNode(core.NodeConfig{Host: "master", Shards: set})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(master.Stop)
	master.SetClientOnly(true)

	ds, contents := putWave(t, master, 40)
	onLast := 0
	for _, d := range ds {
		if set.ShardOf(d.UID) == 2 {
			onLast++
		}
	}
	if onLast == 0 {
		t.Fatal("no datum homed on the shard to drain; test proves nothing")
	}

	retired, err := h.plane.DrainShard()
	if err != nil {
		t.Fatal(err)
	}
	if retired != 2 {
		t.Fatalf("DrainShard retired %d, want 2", retired)
	}
	if !set.Refresh() {
		t.Fatal("Refresh did not adopt the shrunk membership")
	}
	if set.N() != 2 {
		t.Fatalf("post-drain view has %d shards, want 2", set.N())
	}
	// Release the retired container: from here the old endpoints are dead,
	// so every fetch must resolve through the survivors.
	if err := h.plane.ReleaseDrained(); err != nil {
		t.Fatal(err)
	}
	for i, d := range ds {
		got, err := master.BitDew.GetBytes(*d)
		if err != nil {
			t.Fatalf("post-drain fetch %s: %v", d.Name, err)
		}
		if string(got) != string(contents[i]) {
			t.Fatalf("post-drain fetch %s: got %q want %q", d.Name, got, contents[i])
		}
	}
	all, err := master.BitDew.AllData()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(ds) {
		t.Fatalf("post-drain AllData: %d data, want %d", len(all), len(ds))
	}
}

// TestElasticRetrySchedule pins the not-owner retry path: a client that
// refuses to refresh spontaneously (its view is stale) must still land
// single-datum calls after a rebalance, by following the not-owner handoff
// through a refresh.
func TestElasticRetrySchedule(t *testing.T) {
	h := newShardedHarness(t, 2)
	set := h.connect()
	master, err := core.NewNode(core.NodeConfig{Host: "master", Shards: set})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(master.Stop)
	master.SetClientOnly(true)

	ds, _ := putWave(t, master, 24)
	if _, err := h.plane.AddShard(); err != nil {
		t.Fatal(err)
	}

	// The view is still the 2-shard one. Scheduling a datum that re-homed
	// onto shard 2 hits its OLD shard first, which answers not-owner; the
	// call must converge through the elastic retry, not surface the error.
	a, err := master.ActiveData.CreateAttribute(fmt.Sprintf("attr pin%d = { replica = 1 }", 0))
	if err != nil {
		t.Fatal(err)
	}
	scheduled := 0
	for _, d := range ds {
		if err := master.ActiveData.Schedule(*d, a); err != nil {
			t.Fatalf("schedule %s across rebalance: %v", d.Name, err)
		}
		scheduled++
	}
	if set.Epoch() != 2 {
		t.Fatalf("retry path did not adopt the new epoch: %d", set.Epoch())
	}
	if scheduled != len(ds) {
		t.Fatalf("scheduled %d of %d", scheduled, len(ds))
	}
}
