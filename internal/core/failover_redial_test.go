package core

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"bitdew/internal/repl"
	"bitdew/internal/rpc"
)

// The redial tests pin the failover router's address discipline at the
// wire level: when the owner's link faults (a dropped request frame, or
// the address dead outright), the retried call must land on the range's
// SUCCESSOR — never be burned re-sent at the stale address — and the
// refused/dead shard must see no further data traffic. rpc.FaultPlan
// scripts the link fault precisely, so this covers the narrow failure
// (frame lost, server alive) that killing a whole shard cannot produce.

type echoArgs struct{ N int }
type echoReply struct {
	N     int
	Shard int
}

// stubShard is one fake plane member: a real rpc server whose repl
// ownership answers are scripted by the test and whose echo service counts
// the data calls it handled.
type stubShard struct {
	shard   int
	addr    string
	srv     *rpc.Server
	serving atomic.Bool
	accepts atomic.Bool // whether Promote succeeds here
	echoed  atomic.Int64
}

func newStubShard(t *testing.T, shard int) *stubShard {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &stubShard{shard: shard, addr: lis.Addr().String()}
	mux := rpc.NewMux()
	rpc.Register(mux, repl.ServiceName, "Owner", func(a repl.OwnerArgs) (repl.OwnerReply, error) {
		return repl.OwnerReply{Shard: s.shard, Serving: s.serving.Load()}, nil
	})
	rpc.Register(mux, repl.ServiceName, "Promote", func(a repl.PromoteArgs) (repl.PromoteReply, error) {
		if !s.accepts.Load() {
			return repl.PromoteReply{}, nil
		}
		s.serving.Store(true)
		return repl.PromoteReply{Promoted: true}, nil
	})
	rpc.Register(mux, "echo", "Echo", func(a echoArgs) (echoReply, error) {
		s.echoed.Add(1)
		return echoReply{N: a.N, Shard: s.shard}, nil
	})
	s.srv = rpc.NewServer(lis, mux)
	t.Cleanup(func() { s.srv.Close() })
	return s
}

// TestFailoverRedialsSuccessorOnLinkFault drops the request frames to the
// owner while its server stays up (the owner is stepping down: alive, not
// serving, refusing promotion). The call must re-route to the successor —
// the stale owner handles no further echo calls.
func TestFailoverRedialsSuccessorOnLinkFault(t *testing.T) {
	a, b := newStubShard(t, 0), newStubShard(t, 1)
	a.serving.Store(true)
	b.accepts.Store(true)

	plan := rpc.NewFaultPlan()
	r := newFailoverRouter([]string{a.addr, b.addr}, 2)
	r.dialExtra = []rpc.DialOption{rpc.WithFaultPlan(plan)}
	defer r.Close()
	fc := &failoverClient{r: r, rangeID: 0}

	var rep echoReply
	if err := fc.Call("echo", "Echo", echoArgs{N: 1}, &rep); err != nil || rep.Shard != 0 {
		t.Fatalf("healthy call = %+v, %v; want shard 0", rep, err)
	}
	// The owner's link dies as it stops serving: the next call's frame and
	// its same-address retry (the router's 2-attempt budget) are both lost.
	a.serving.Store(false)
	base := plan.Frames()
	plan.DropFrames(base+1, base+2)

	if err := fc.Call("echo", "Echo", echoArgs{N: 2}, &rep); err != nil {
		t.Fatalf("faulted call did not fail over: %v", err)
	}
	if rep.Shard != 1 {
		t.Fatalf("faulted call answered by shard %d, want successor 1", rep.Shard)
	}
	if got := r.ownerOf(0); got != 1 {
		t.Fatalf("router owner of range 0 = %d after failover, want 1", got)
	}
	if n := a.echoed.Load(); n != 1 {
		t.Fatalf("stale owner handled %d echo calls, want 1 (pre-fault only)", n)
	}
	// Steady state: traffic flows to the successor, none to the old owner.
	if err := fc.Call("echo", "Echo", echoArgs{N: 3}, &rep); err != nil || rep.Shard != 1 {
		t.Fatalf("post-failover call = %+v, %v; want shard 1", rep, err)
	}
	if n := a.echoed.Load(); n != 1 {
		t.Fatalf("stale owner still receiving traffic after failover (%d calls)", n)
	}
}

// TestFailoverRedialsSuccessorOnDeadAddress kills the owner's server
// outright before any call: the first call must establish ownership on the
// successor and succeed without the dead address ever answering.
func TestFailoverRedialsSuccessorOnDeadAddress(t *testing.T) {
	a, b := newStubShard(t, 0), newStubShard(t, 1)
	b.accepts.Store(true)
	a.srv.Close()

	r := newFailoverRouter([]string{a.addr, b.addr}, 2)
	defer r.Close()
	fc := &failoverClient{r: r, rangeID: 0}

	var rep echoReply
	if err := fc.Call("echo", "Echo", echoArgs{N: 1}, &rep); err != nil {
		t.Fatalf("call against dead owner did not fail over: %v", err)
	}
	if rep.Shard != 1 {
		t.Fatalf("answered by shard %d, want successor 1", rep.Shard)
	}
	if n := a.echoed.Load(); n != 0 {
		t.Fatalf("dead shard handled %d calls", n)
	}
}

// TestFailoverBatchRefusalsReplayOnSuccessor pins the batch path: when the
// owner answers a batch but refuses some calls with an ownership error,
// only the refused calls replay on the successor — answered calls keep
// their replies and are not re-executed anywhere.
func TestFailoverBatchRefusalsReplayOnSuccessor(t *testing.T) {
	a, b := newStubShard(t, 0), newStubShard(t, 1)
	a.serving.Store(true)
	b.accepts.Store(true)

	// Shard A's echo refuses every second call with NotOwner, as a primary
	// would for keys of a range it just handed off.
	refuse := atomic.Bool{}
	mux := rpc.NewMux()
	rpc.Register(mux, repl.ServiceName, "Owner", func(repl.OwnerArgs) (repl.OwnerReply, error) {
		return repl.OwnerReply{Shard: 0, Serving: a.serving.Load()}, nil
	})
	rpc.Register(mux, "echo", "Echo", func(ar echoArgs) (echoReply, error) {
		a.echoed.Add(1)
		if refuse.Load() && ar.N%2 == 1 {
			return echoReply{}, repl.ErrNotOwner
		}
		return echoReply{N: ar.N, Shard: 0}, nil
	})
	a.srv.Close()
	var lis net.Listener
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		if lis, err = net.Listen("tcp", a.addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	a.srv = rpc.NewServer(lis, mux)
	refuse.Store(true)
	// The handoff is visible to probes: A no longer claims the range, the
	// successor already serves it — resolve finds B without a promotion.
	a.serving.Store(false)
	b.serving.Store(true)

	r := newFailoverRouter([]string{a.addr, b.addr}, 2)
	defer r.Close()
	fc := &failoverClient{r: r, rangeID: 0}

	calls := make([]*rpc.Call, 4)
	replies := make([]echoReply, 4)
	for i := range calls {
		calls[i] = &rpc.Call{Service: "echo", Method: "Echo", Args: echoArgs{N: i}, Reply: &replies[i]}
	}
	if err := fc.CallBatch(calls); err != nil {
		t.Fatal(err)
	}
	for i, call := range calls {
		if call.Err != nil {
			t.Fatalf("call %d: %v", i, call.Err)
		}
		wantShard := 0
		if i%2 == 1 {
			wantShard = 1 // refused on A, replayed on B
		}
		if replies[i].N != i || replies[i].Shard != wantShard {
			t.Fatalf("call %d answered %+v, want N=%d shard %d", i, replies[i], i, wantShard)
		}
	}
	if n := b.echoed.Load(); n != 2 {
		t.Fatalf("successor handled %d calls, want exactly the 2 refused", n)
	}
}
