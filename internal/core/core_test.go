package core_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"bitdew/internal/attr"
	"bitdew/internal/core"
	"bitdew/internal/data"
	"bitdew/internal/runtime"
	"bitdew/internal/workload"
)

func randBytes(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// harness is one container plus helpers to spawn nodes against it.
type harness struct {
	t   *testing.T
	c   *runtime.Container
	tcp bool
}

func newHarness(t *testing.T, tcp bool) *harness {
	t.Helper()
	addr := ""
	if tcp {
		addr = "127.0.0.1:0"
	}
	c, err := runtime.NewContainer(runtime.ContainerConfig{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &harness{t: t, c: c, tcp: tcp}
}

func (h *harness) comms() *core.Comms {
	h.t.Helper()
	if h.tcp {
		comms, err := core.Connect(h.c.Addr())
		if err != nil {
			h.t.Fatal(err)
		}
		h.t.Cleanup(func() { comms.Close() })
		return comms
	}
	return core.ConnectLocal(h.c.Mux)
}

func (h *harness) node(host string) *core.Node {
	h.t.Helper()
	n, err := core.NewNode(core.NodeConfig{Host: host, Comms: h.comms(), SyncPeriod: 50 * time.Millisecond})
	if err != nil {
		h.t.Fatal(err)
	}
	return n
}

func TestNodeConfigValidation(t *testing.T) {
	if _, err := core.NewNode(core.NodeConfig{}); err == nil {
		t.Error("node without host accepted")
	}
	if _, err := core.NewNode(core.NodeConfig{Host: "h"}); err == nil {
		t.Error("node without comms accepted")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	for _, tcp := range []bool{false, true} {
		t.Run(fmt.Sprintf("tcp=%v", tcp), func(t *testing.T) {
			h := newHarness(t, tcp)
			master := h.node("master")
			content := randBytes(120_000, 1)
			d, err := master.BitDew.CreateData("payload")
			if err != nil {
				t.Fatal(err)
			}
			if err := master.BitDew.Put(d, content); err != nil {
				t.Fatal(err)
			}
			// Another node fetches by search.
			worker := h.node("worker")
			found, err := worker.BitDew.SearchDataFirst("payload")
			if err != nil {
				t.Fatal(err)
			}
			if found.UID != d.UID || found.Checksum != d.Checksum {
				t.Fatalf("search = %+v, want %+v", found, d)
			}
			got, err := worker.BitDew.GetBytes(found)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, content) {
				t.Fatal("content mismatch")
			}
			if !worker.BitDew.Local(found) {
				t.Error("Local = false after Get")
			}
		})
	}
}

func TestScheduleBroadcast(t *testing.T) {
	h := newHarness(t, false)
	master := h.node("master")
	content := randBytes(60_000, 2)
	d, err := master.BitDew.CreateData("update")
	if err != nil {
		t.Fatal(err)
	}
	if err := master.BitDew.Put(d, content); err != nil {
		t.Fatal(err)
	}
	a, err := master.ActiveData.CreateAttribute("attr update = { replica = -1, oob = http }")
	if err != nil {
		t.Fatal(err)
	}
	if err := master.ActiveData.Schedule(*d, a); err != nil {
		t.Fatal(err)
	}
	// Every worker that syncs receives the datum.
	for i := 0; i < 4; i++ {
		w := h.node(fmt.Sprintf("w%d", i))
		if err := w.SyncWait(2); err != nil {
			t.Fatal(err)
		}
		if !w.Holds(d.UID) {
			t.Fatalf("worker %d missing broadcast datum", i)
		}
		got, err := w.Backend().Get(string(d.UID))
		if err != nil || !bytes.Equal(got, content) {
			t.Fatalf("worker %d content: %d bytes, %v", i, len(got), err)
		}
	}
}

func TestScheduleOverBitTorrent(t *testing.T) {
	h := newHarness(t, false)
	master := h.node("master")
	content := randBytes(600_000, 3)
	d, err := master.BitDew.CreateData("big")
	if err != nil {
		t.Fatal(err)
	}
	if err := master.BitDew.Put(d, content); err != nil {
		t.Fatal(err)
	}
	a, err := master.ActiveData.CreateAttribute("attr big = { replica = -1, oob = bittorrent }")
	if err != nil {
		t.Fatal(err)
	}
	if err := master.ActiveData.Schedule(*d, a); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 3)
	workers := make([]*core.Node, 3)
	for i := range workers {
		workers[i] = h.node(fmt.Sprintf("bt-w%d", i))
	}
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *core.Node) {
			defer wg.Done()
			errs[i] = w.SyncWait(2)
		}(i, w)
	}
	wg.Wait()
	for i, w := range workers {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		got, err := w.Backend().Get(string(d.UID))
		if err != nil || !bytes.Equal(got, content) {
			t.Fatalf("worker %d swarm content: %d bytes, %v", i, len(got), err)
		}
	}
}

func TestCopyAndDeleteEvents(t *testing.T) {
	h := newHarness(t, false)
	master := h.node("master")
	content := randBytes(10_000, 4)
	d, _ := master.BitDew.CreateData("evented")
	if err := master.BitDew.Put(d, content); err != nil {
		t.Fatal(err)
	}
	a := attr.Attribute{Name: "evented", Replica: 1, Protocol: "http"}
	if err := master.ActiveData.Schedule(*d, a); err != nil {
		t.Fatal(err)
	}

	worker := h.node("worker")
	var mu sync.Mutex
	var copies, deletes []string
	worker.ActiveData.AddCallback(core.EventHandler{
		OnDataCopy: func(e core.Event) {
			mu.Lock()
			copies = append(copies, e.Attr.Name)
			mu.Unlock()
		},
		OnDataDelete: func(e core.Event) {
			mu.Lock()
			deletes = append(deletes, e.Attr.Name)
			mu.Unlock()
		},
	})
	if err := worker.SyncWait(2); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(copies) != 1 || copies[0] != "evented" {
		t.Fatalf("copies = %v", copies)
	}
	mu.Unlock()

	// Delete the datum: next sync drops it and fires the delete event.
	if err := master.BitDew.DeleteData(*d); err != nil {
		t.Fatal(err)
	}
	if err := worker.SyncWait(1); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(deletes) != 1 || deletes[0] != "evented" {
		t.Fatalf("deletes = %v", deletes)
	}
	if worker.Holds(d.UID) {
		t.Error("worker still holds deleted datum")
	}
}

// TestUpdaterScenario replays the paper's Listing 1/2 example end to end:
// a master broadcasts an update file; each updatee installs it and sends
// back a small "host" datum with affinity to a Collector pinned on the
// master; the master collects the updated-host list.
func TestUpdaterScenario(t *testing.T) {
	h := newHarness(t, false)
	master := h.node("master")

	// Master: put the update file and broadcast it.
	update := randBytes(80_000, 5)
	updateData, _ := master.BitDew.CreateData("update")
	if err := master.BitDew.Put(updateData, update); err != nil {
		t.Fatal(err)
	}
	updateAttr, err := master.ActiveData.CreateAttribute("attr update = { replica = -1, oob = http }")
	if err != nil {
		t.Fatal(err)
	}
	master.ActiveData.Schedule(*updateData, updateAttr)

	// Master: pin an empty Collector and install the handler recording
	// updated hosts.
	collector, _ := master.BitDew.CreateData("collector")
	if err := master.ActiveData.Pin(*collector, attr.Attribute{Name: "collector"}); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	updated := map[string]bool{}
	master.ActiveData.AddCallback(core.EventHandler{
		OnDataCopy: func(e core.Event) {
			if e.Attr.Name == "host" {
				mu.Lock()
				updated[e.Data.Name] = true
				mu.Unlock()
			}
		},
	})

	// Updatees: install handler reacting to "update" copies.
	const updatees = 3
	var nodes []*core.Node
	for i := 0; i < updatees; i++ {
		w := h.node(fmt.Sprintf("updatee-%d", i))
		w.ActiveData.AddCallback(core.EventHandler{
			OnDataCopy: func(w *core.Node) func(core.Event) {
				return func(e core.Event) {
					if e.Attr.Name != "update" {
						return
					}
					// Send back the host name with affinity to the collector.
					col, err := w.BitDew.SearchDataFirst("collector")
					if err != nil {
						t.Errorf("%s: search collector: %v", w.Host, err)
						return
					}
					hostData, err := w.BitDew.CreateDataFromBytes(w.Host, []byte(w.Host))
					if err != nil {
						t.Errorf("%s: create host datum: %v", w.Host, err)
						return
					}
					if err := w.BitDew.Put(hostData, []byte(w.Host)); err != nil {
						t.Errorf("%s: put host datum: %v", w.Host, err)
						return
					}
					w.ActiveData.Schedule(*hostData, attr.Attribute{
						Name: "host", Replica: 1, Protocol: "http",
						Affinity: string(col.UID),
					})
				}
			}(w),
		})
		nodes = append(nodes, w)
	}

	// Drive: updatees pull the update, then the master pulls the host data.
	for _, w := range nodes {
		if err := w.SyncWait(2); err != nil {
			t.Fatal(err)
		}
	}
	if err := master.SyncWait(3); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(updated) != updatees {
		t.Fatalf("master collected %d updatees (%v), want %d", len(updated), updated, updatees)
	}
}

func TestFaultToleranceReplication(t *testing.T) {
	h := newHarness(t, false)
	master := h.node("master")
	content := randBytes(20_000, 6)
	d, _ := master.BitDew.CreateData("resilient")
	if err := master.BitDew.Put(d, content); err != nil {
		t.Fatal(err)
	}
	// replica = 2, fault tolerant; scheduler timeout shortened via service.
	h.c.DS.Timeout = 200 * time.Millisecond
	master.ActiveData.Schedule(*d, attr.Attribute{
		Name: "r", Replica: 2, FaultTolerant: true, Protocol: "http",
	})

	w1, w2, w3 := h.node("w1"), h.node("w2"), h.node("w3")
	w1.SyncWait(2)
	w2.SyncWait(2)
	if !w1.Holds(d.UID) || !w2.Holds(d.UID) {
		t.Fatal("initial replicas not placed")
	}
	// w3 syncs but the replica count is satisfied.
	w3.SyncWait(1)
	if w3.Holds(d.UID) {
		t.Fatal("over-replicated")
	}
	// w1 crashes (stops syncing). After the timeout, w3 must receive the
	// replica.
	time.Sleep(300 * time.Millisecond)
	w2.SyncWait(1) // keeps w2 alive
	w3.SyncWait(2)
	if !w3.Holds(d.UID) {
		t.Fatal("lost replica not rescheduled to w3")
	}
}

func TestRelativeLifetimeCleanup(t *testing.T) {
	h := newHarness(t, false)
	master := h.node("master")
	collector, _ := master.BitDew.CreateData("Collector")
	master.ActiveData.Pin(*collector, attr.Attribute{Name: "Collector"})

	content := randBytes(5_000, 7)
	d, _ := master.BitDew.CreateData("genebase")
	master.BitDew.Put(d, content)
	master.ActiveData.Schedule(*d, attr.Attribute{
		Name: "Genebase", Replica: 1, Protocol: "http", LifetimeRel: "Collector",
	})

	w := h.node("w")
	w.SyncWait(2)
	if !w.Holds(d.UID) {
		t.Fatal("datum not placed")
	}
	// Deleting the collector obsoletes the genebase on the next sync.
	if err := master.ActiveData.Unschedule(*collector); err != nil {
		t.Fatal(err)
	}
	w.SyncWait(1)
	if w.Holds(d.UID) {
		t.Fatal("datum survived its relative lifetime")
	}
}

func TestNodeStartStopLoop(t *testing.T) {
	h := newHarness(t, false)
	master := h.node("master")
	content := randBytes(8_000, 8)
	d, _ := master.BitDew.CreateData("auto")
	master.BitDew.Put(d, content)
	master.ActiveData.Schedule(*d, attr.Attribute{Name: "a", Replica: 1, Protocol: "http"})

	w := h.node("w-auto")
	w.Start()
	defer w.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for !w.Holds(d.UID) {
		if time.Now().After(deadline) {
			t.Fatalf("pull loop did not fetch datum; lastErr=%v", w.LastErr())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestSearchDataFirstMissing(t *testing.T) {
	h := newHarness(t, false)
	n := h.node("n")
	if _, err := n.BitDew.SearchDataFirst("ghost"); err == nil {
		t.Error("SearchDataFirst for absent name succeeded")
	}
}

func TestDeleteDataClearsEverywhere(t *testing.T) {
	h := newHarness(t, false)
	n := h.node("n")
	d, _ := n.BitDew.CreateData("temp")
	if err := n.BitDew.Put(d, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := n.BitDew.DeleteData(*d); err != nil {
		t.Fatal(err)
	}
	if _, err := n.BitDew.SearchDataFirst("temp"); err == nil {
		t.Error("datum still searchable after delete")
	}
	ok, _ := n.BitDew.Local(*d), 0
	_ = ok
	if n.BitDew.Local(*d) {
		t.Error("content still local after delete")
	}
}

func TestPinnedDataSurvivesAsAffinityTarget(t *testing.T) {
	// A Result datum with affinity to a pinned Collector flows to the
	// master node (the paper's result-collection idiom).
	h := newHarness(t, false)
	master := h.node("master")
	collector, _ := master.BitDew.CreateData("Collector")
	master.ActiveData.Pin(*collector, attr.Attribute{Name: "Collector"})

	worker := h.node("worker")
	resultContent := randBytes(3_000, 9)
	result, _ := worker.BitDew.CreateDataFromBytes("result-1", resultContent)
	if err := worker.BitDew.Put(result, resultContent); err != nil {
		t.Fatal(err)
	}
	worker.ActiveData.Schedule(*result, attr.Attribute{
		Name: "Result", Replica: 1, Protocol: "http", Affinity: string(collector.UID),
	})
	if err := master.SyncWait(2); err != nil {
		t.Fatal(err)
	}
	if !master.Holds(result.UID) {
		t.Fatal("result did not flow to the collector's node")
	}
	got, err := master.Backend().Get(string(result.UID))
	if err != nil || !bytes.Equal(got, resultContent) {
		t.Fatalf("collected result mismatch: %d bytes, %v", len(got), err)
	}
}

func TestFileAPIs(t *testing.T) {
	h := newHarness(t, false)
	n := h.node("files")
	dir := t.TempDir()
	src := dir + "/input.bin"
	content := randBytes(30_000, 10)
	if err := os.WriteFile(src, content, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := n.BitDew.CreateDataFromFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "input.bin" || d.Size != int64(len(content)) {
		t.Fatalf("datum = %+v", d)
	}
	if err := n.BitDew.PutFile(d, src); err != nil {
		t.Fatal(err)
	}
	dst := dir + "/output.bin"
	if err := n.BitDew.GetFile(*d, dst); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(dst)
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("round trip: %d bytes, %v", len(got), err)
	}
	if _, err := n.BitDew.CreateDataFromFile(dir + "/missing"); err == nil {
		t.Error("CreateDataFromFile of missing file succeeded")
	}
	if err := n.BitDew.PutFile(d, dir+"/missing"); err == nil {
		t.Error("PutFile of missing file succeeded")
	}
}

func TestTransferManagerSurface(t *testing.T) {
	h := newHarness(t, false)
	master := h.node("m")
	content := randBytes(50_000, 11)
	d, _ := master.BitDew.CreateData("tm")
	if err := master.BitDew.Put(d, content); err != nil {
		t.Fatal(err)
	}
	w := h.node("w")
	w.Transfers.SetMonitorPeriod(10 * time.Millisecond)
	w.Transfers.SetMaxAttempts(2)
	w.Transfers.SetMaxAttempts(0) // ignored: must stay positive
	found, err := w.BitDew.SearchDataFirst("tm")
	if err != nil {
		t.Fatal(err)
	}
	handle, err := w.BitDew.Get(found)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Transfers.Barrier(handle); err != nil {
		t.Fatal(err)
	}
	if p := w.Transfers.Probe(handle); !p.Done {
		t.Errorf("Probe after barrier = %+v", p)
	}
	if err := w.Transfers.WaitFor(found); err != nil {
		t.Fatal(err)
	}
}

func TestConnectWithLatency(t *testing.T) {
	h := newHarness(t, true)
	comms, err := core.ConnectWithLatency(h.c.Addr(), 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer comms.Close()
	start := time.Now()
	if _, err := comms.DC.All(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("latency not applied: %v", d)
	}
}

func TestAllData(t *testing.T) {
	h := newHarness(t, false)
	n := h.node("n")
	for i := 0; i < 3; i++ {
		d, _ := n.BitDew.CreateData(fmt.Sprintf("d%d", i))
		_ = d
	}
	all, err := n.BitDew.AllData()
	if err != nil || len(all) != 3 {
		t.Fatalf("AllData = %d, %v", len(all), err)
	}
}

// TestFileculeCoPlacement replays §2.2's high-energy-physics motivation:
// files accessed in groups ("filecules") must land on the same hosts.
// BitDew expresses this with affinity chains: every member points at the
// group head, so wherever the head is replicated the whole group follows.
func TestFileculeCoPlacement(t *testing.T) {
	h := newHarness(t, false)
	master := h.node("master")

	fc := workload.Filecules(1, 2_000, 8_000, 3)[0]
	if len(fc.Files) < 2 {
		fc.Files = append(fc.Files, workload.FileSpec{Name: fc.Name + "/extra", Size: 3000})
	}
	// Head: replicated to 2 hosts; members: affinity to the head.
	head, _ := master.BitDew.CreateData(fc.Files[0].Name)
	if err := master.BitDew.Put(head, randBytes(int(fc.Files[0].Size), 30)); err != nil {
		t.Fatal(err)
	}
	master.ActiveData.Schedule(*head, attr.Attribute{Name: "filecule-head", Replica: 2, Protocol: "http"})
	var members []*core.Node
	_ = members
	var memberUIDs []string
	for _, f := range fc.Files[1:] {
		d, _ := master.BitDew.CreateData(f.Name)
		if err := master.BitDew.Put(d, randBytes(int(f.Size), 31)); err != nil {
			t.Fatal(err)
		}
		master.ActiveData.Schedule(*d, attr.Attribute{
			Name: "filecule-member", Replica: 1, Protocol: "http",
			Affinity: string(head.UID),
		})
		memberUIDs = append(memberUIDs, string(d.UID))
	}

	w1, w2, w3 := h.node("f1"), h.node("f2"), h.node("f3")
	for _, w := range []*core.Node{w1, w2, w3} {
		if err := w.SyncWait(3); err != nil {
			t.Fatal(err)
		}
	}
	// Exactly the hosts holding the head hold every member.
	for _, w := range []*core.Node{w1, w2, w3} {
		hasHead := w.Holds(head.UID)
		for _, uid := range memberUIDs {
			if w.Holds(data.UID(uid)) != hasHead {
				t.Errorf("%s: member co-placement broken (head=%v)", w.Host, hasHead)
			}
		}
	}
	holders := 0
	for _, w := range []*core.Node{w1, w2, w3} {
		if w.Holds(head.UID) {
			holders++
		}
	}
	if holders != 2 {
		t.Errorf("head on %d hosts, want 2", holders)
	}
}
