package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"bitdew/internal/attr"
	"bitdew/internal/core"
	"bitdew/internal/data"
	"bitdew/internal/runtime"
)

func TestCreateDataBatch(t *testing.T) {
	h := newHarness(t, false)
	n := h.node("client")
	names := []string{"a", "b", "c"}
	ds, err := n.BitDew.CreateDataBatch(names)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 {
		t.Fatalf("created %d slots", len(ds))
	}
	for i, d := range ds {
		if d.Name != names[i] || d.UID == "" {
			t.Errorf("slot %d = %+v", i, d)
		}
		if _, err := h.c.DC.Get(d.UID); err != nil {
			t.Errorf("slot %s not in catalog: %v", d.Name, err)
		}
	}
}

func TestPutAllAndFetchAll(t *testing.T) {
	for _, tcp := range []bool{false, true} {
		t.Run(fmt.Sprintf("tcp=%v", tcp), func(t *testing.T) {
			h := newHarness(t, tcp)
			producer := h.node("producer")

			const n = 10
			names := make([]string, n)
			contents := make([][]byte, n)
			for i := range names {
				names[i] = fmt.Sprintf("blob-%02d", i)
				contents[i] = randBytes(2048, int64(i+1))
			}
			ds, err := producer.BitDew.CreateDataBatch(names)
			if err != nil {
				t.Fatal(err)
			}
			if err := producer.BitDew.PutAll(ds, contents); err != nil {
				t.Fatal(err)
			}
			for i, d := range ds {
				if d.Size != int64(len(contents[i])) || d.Checksum == "" {
					t.Errorf("meta of %s not updated: %+v", d.Name, d)
				}
				locs, err := h.c.DC.Locators(d.UID)
				if err != nil || len(locs) != 1 {
					t.Errorf("locators of %s = %v, %v", d.Name, locs, err)
				}
			}

			// A second node fetches everything in bulk.
			consumer := h.node("consumer")
			fetch := make([]data.Data, n)
			for i, d := range ds {
				fetch[i] = *d
			}
			if err := consumer.BitDew.FetchAll(fetch, ""); err != nil {
				t.Fatal(err)
			}
			for i, d := range fetch {
				got, err := consumer.Backend().Get(string(d.UID))
				if err != nil || !bytes.Equal(got, contents[i]) {
					t.Errorf("fetched %s: %d bytes, %v", d.Name, len(got), err)
				}
			}
		})
	}
}

func TestPutAllLengthMismatch(t *testing.T) {
	h := newHarness(t, false)
	n := h.node("client")
	d, err := n.BitDew.CreateData("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.BitDew.PutAll([]*data.Data{d}, nil); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if err := n.BitDew.PutAll(nil, nil); err != nil {
		t.Errorf("empty PutAll: %v", err)
	}
}

func TestFetchAllNoLocator(t *testing.T) {
	h := newHarness(t, false)
	n := h.node("client")
	orphan := *data.New("orphan") // never Put: no locator anywhere
	err := n.BitDew.FetchAll([]data.Data{orphan}, "")
	if err == nil {
		t.Error("FetchAll of unstored datum succeeded")
	}
}

// TestPutAllRoundTripCollapse is the acceptance check at the core layer:
// putting N data through PutAll must use far fewer round trips (≥5× here,
// actually ~100×) than N sequential Puts.
func TestPutAllRoundTripCollapse(t *testing.T) {
	const n = 100
	mkInputs := func() ([]string, [][]byte) {
		names := make([]string, n)
		contents := make([][]byte, n)
		for i := range names {
			names[i] = fmt.Sprintf("d%03d", i)
			contents[i] = []byte(fmt.Sprintf("content-%03d", i))
		}
		return names, contents
	}

	h := newHarness(t, true)

	seq := h.comms()
	seqNode, err := core.NewNode(core.NodeConfig{Host: "seq", Comms: seq})
	if err != nil {
		t.Fatal(err)
	}
	names, contents := mkInputs()
	base := seq.RoundTrips()
	for i := range names {
		d, err := seqNode.BitDew.CreateData(names[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := seqNode.BitDew.Put(d, contents[i]); err != nil {
			t.Fatal(err)
		}
	}
	seqTrips := seq.RoundTrips() - base

	batch := h.comms()
	batchNode, err := core.NewNode(core.NodeConfig{Host: "batch", Comms: batch})
	if err != nil {
		t.Fatal(err)
	}
	names, contents = mkInputs()
	base = batch.RoundTrips()
	ds, err := batchNode.BitDew.CreateDataBatch(names)
	if err != nil {
		t.Fatal(err)
	}
	if err := batchNode.BitDew.PutAll(ds, contents); err != nil {
		t.Fatal(err)
	}
	batchTrips := batch.RoundTrips() - base

	t.Logf("sequential: %d round trips, batch: %d round trips", seqTrips, batchTrips)
	if batchTrips*5 > seqTrips {
		t.Errorf("batch path used %d round trips vs %d sequential: want ≥5× fewer", batchTrips, seqTrips)
	}
}

func TestScheduleAll(t *testing.T) {
	h := newHarness(t, false)
	n := h.node("client")
	ds, err := n.BitDew.CreateDataBatch([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	sched := make([]data.Data, len(ds))
	for i, d := range ds {
		sched[i] = *d
	}
	if err := n.ActiveData.ScheduleAll(sched, []attr.Attribute{{Name: "x", Replica: 1}}); err != nil {
		t.Fatal(err)
	}
	if got := len(h.c.DS.Entries()); got != 3 {
		t.Errorf("scheduled %d entries, want 3", got)
	}
	// Mismatched attribute count is rejected client-side.
	if err := n.ActiveData.ScheduleAll(sched, make([]attr.Attribute, 2)); err == nil {
		t.Error("mismatched attribute slice accepted")
	}
}

func TestDeleteDataBatchedFrame(t *testing.T) {
	h := newHarness(t, true)
	comms := h.comms()
	n, err := core.NewNode(core.NodeConfig{Host: "client", Comms: comms})
	if err != nil {
		t.Fatal(err)
	}
	d, err := n.BitDew.CreateData("doomed")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.BitDew.Put(d, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := n.ActiveData.Schedule(*d, attr.Attribute{Name: "x", Replica: 1}); err != nil {
		t.Fatal(err)
	}
	base := comms.RoundTrips()
	if err := n.BitDew.DeleteData(*d); err != nil {
		t.Fatal(err)
	}
	// Catalog delete gates the rest (1 trip), then scheduler + repository
	// deletes share a frame (1 trip).
	if trips := comms.RoundTrips() - base; trips != 2 {
		t.Errorf("DeleteData used %d round trips, want 2", trips)
	}
	if _, err := h.c.DC.Get(d.UID); err == nil {
		t.Error("datum still in catalog")
	}
	if len(h.c.DS.Entries()) != 0 {
		t.Error("datum still scheduled")
	}
	// Deleting an unscheduled datum stays non-fatal for DS/DR legs.
	d2, _ := n.BitDew.CreateData("plain")
	if err := n.BitDew.DeleteData(*d2); err != nil {
		t.Errorf("DeleteData of unscheduled datum: %v", err)
	}
}

// TestNodeDeltaHeartbeat drives a node against the scheduler and asserts
// the heartbeats really ship deltas: after the cache is quiescent the
// session survives, and a scheduler restart forces a transparent resync.
func TestNodeDeltaHeartbeat(t *testing.T) {
	h := newHarness(t, false)
	master := h.node("master")
	d, err := master.BitDew.CreateData("shared")
	if err != nil {
		t.Fatal(err)
	}
	if err := master.BitDew.Put(d, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := master.ActiveData.Schedule(*d, attr.Attribute{Name: "x", Replica: 1}); err != nil {
		t.Fatal(err)
	}

	worker := h.node("worker")
	if err := worker.SyncWait(2); err != nil {
		t.Fatal(err)
	}
	if !worker.Holds(d.UID) {
		t.Fatal("worker did not receive the datum")
	}
	// Quiescent heartbeats keep working (empty deltas).
	for i := 0; i < 3; i++ {
		if err := worker.SyncOnce(); err != nil {
			t.Fatal(err)
		}
	}
	if !worker.Holds(d.UID) {
		t.Error("quiescent heartbeat dropped the datum")
	}
}

// TestNodeResyncAfterSchedulerRestart: a fresh scheduler (lost sessions)
// answers Resync and the node transparently re-reports its full cache.
func TestNodeResyncAfterSchedulerRestart(t *testing.T) {
	store := runtime.ContainerConfig{}
	_ = store
	h := newHarness(t, false)
	master := h.node("master")
	d, err := master.BitDew.CreateData("shared")
	if err != nil {
		t.Fatal(err)
	}
	if err := master.BitDew.Put(d, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := master.ActiveData.Schedule(*d, attr.Attribute{Name: "x", Replica: 1}); err != nil {
		t.Fatal(err)
	}
	worker := h.node("worker")
	if err := worker.SyncWait(2); err != nil {
		t.Fatal(err)
	}
	if !worker.Holds(d.UID) {
		t.Fatal("worker did not receive the datum")
	}

	// Simulate a scheduler restart by wiping the delta sessions: a full
	// Sync from another identity only clears that host's session, so use
	// the service-side restart path — re-register the datum on a fresh
	// scheduler is overkill; instead force an epoch mismatch via a full
	// sync under the worker's identity from outside the node.
	h.c.DS.Sync("worker", []data.UID{d.UID})

	// The node's next delta heartbeat hits an epoch mismatch, resyncs in
	// the same SyncOnce call, and keeps its cache.
	if err := worker.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if !worker.Holds(d.UID) {
		t.Error("resync dropped the datum")
	}
	if owners := h.c.DS.Owners(d.UID); len(owners) != 1 || owners[0] != "worker" {
		t.Errorf("owners after resync = %v", owners)
	}
}
