package core

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"bitdew/internal/data"
	"bitdew/internal/repl"
	"bitdew/internal/repository"
	"bitdew/internal/rpc"
	"bitdew/internal/transfer"
)

// UploadProtocol is the protocol used by Put to push content to the Data
// Repository. Distribution to other nodes then follows each datum's own
// transfer-protocol attribute.
const UploadProtocol = "http"

// BitDew is the data-space API: it aggregates the storage resources of the
// system and virtualizes them as a unique space where data are stored
// (the Tuple-Space heritage the paper cites). Create a slot, put content
// into it, get content out of it, search by name.
//
// The API is shard-aware: over a sharded service plane (ConnectSharded)
// every datum homes on one shard by consistent hash of its UID, single-datum
// calls route to that shard, and the batch calls (PutAll, FetchAll,
// CreateDataBatch) partition their inputs per shard and run the per-shard
// frames in parallel. Over a single service host the routing degenerates to
// the plain batch-first path.
type BitDew struct {
	set     *ShardSet
	backend repository.Backend
	engine  *transfer.Engine
	host    string
}

// NewBitDew builds the API over one service connection, local storage and
// the node's transfer engine.
func NewBitDew(comms *Comms, backend repository.Backend, engine *transfer.Engine, host string) *BitDew {
	return NewBitDewSharded(shardSetOf(comms), backend, engine, host)
}

// NewBitDewSharded is NewBitDew over a sharded service plane.
func NewBitDewSharded(set *ShardSet, backend repository.Backend, engine *transfer.Engine, host string) *BitDew {
	return &BitDew{set: set, backend: backend, engine: engine, host: host}
}

// CreateData creates an empty slot in the data space. It is the single-slot
// wrapper over CreateDataBatch.
func (b *BitDew) CreateData(name string) (*data.Data, error) {
	ds, err := b.CreateDataBatch([]string{name})
	if err != nil {
		return nil, err
	}
	return ds[0], nil
}

// CreateDataBatch creates one empty slot per name in a single catalog round
// trip per shard: the new UIDs are partitioned onto their home shards and
// each shard gets one RegisterBatch, the frames running in parallel. On a
// partial failure the registrations that DID land are deleted again
// (best-effort) before the error returns — a retry mints fresh UIDs, so
// half-registered slots from a failed batch must not linger in the
// surviving shards' catalogs as unreachable orphans.
func (b *BitDew) CreateDataBatch(names []string) ([]*data.Data, error) {
	ds := make([]*data.Data, len(names))
	regs := make([]data.Data, len(names))
	for i, name := range names {
		ds[i] = data.New(name)
		regs[i] = *ds[i]
	}
	// Registration is put-overwrite idempotent, so the whole fan-out can
	// rerun when an elastic rebalance moves a UID mid-batch; the rollback
	// only happens once the retries are exhausted or the failure is real.
	var registered map[int][]*Comms // index -> connections that registered it
	err := b.set.retryElastic(func() error {
		v := b.set.currentView()
		groups := v.partition(len(ds), func(i int) data.UID { return ds[i].UID })
		var mu sync.Mutex
		return v.eachShard(groups, func(shard int, c *Comms, idx []int) error {
			part := make([]data.Data, len(idx))
			for j, i := range idx {
				part[j] = regs[i]
			}
			if err := c.DC.RegisterBatch(part); err != nil {
				return fmt.Errorf("bitdew: createData batch of %d on shard %d: %w", len(part), shard, err)
			}
			mu.Lock()
			if registered == nil {
				registered = make(map[int][]*Comms)
			}
			for _, i := range idx {
				registered[i] = append(registered[i], c)
			}
			mu.Unlock()
			return nil
		})
	})
	if err != nil {
		// Best-effort rollback everywhere a registration landed (a retried
		// batch may have registered a UID on its old and new home).
		rollback := make(map[*Comms][]*rpc.Call)
		for i, conns := range registered {
			for _, c := range conns {
				rollback[c] = append(rollback[c], c.DC.DeleteCall(ds[i].UID))
			}
		}
		for c, calls := range rollback {
			//vet:ignore errlost rollback is best-effort: the create already failed and is being reported; a shard that also fails the delete leaves an orphan slot, which is harmless
			c.CallBatch(calls)
		}
		return nil, err
	}
	return ds, nil
}

// CreateDataFromBytes creates a slot whose meta-information (size, MD5) is
// computed from content. The content stays local until Put.
func (b *BitDew) CreateDataFromBytes(name string, content []byte) (*data.Data, error) {
	d := data.NewFromBytes(name, content)
	if err := b.backend.Put(string(d.UID), content); err != nil {
		return nil, err
	}
	err := b.set.homeCall(d.UID, func(c *Comms) error { return c.DC.Register(*d) })
	if err != nil {
		return nil, fmt.Errorf("bitdew: createData %s: %w", name, err)
	}
	return d, nil
}

// CreateDataFromFile creates a slot from a local file.
func (b *BitDew) CreateDataFromFile(path string) (*data.Data, error) {
	content, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bitdew: %w", err)
	}
	d, err := data.NewFromFile(path)
	if err != nil {
		return nil, err
	}
	if err := b.backend.Put(string(d.UID), content); err != nil {
		return nil, err
	}
	err = b.set.homeCall(d.UID, func(c *Comms) error { return c.DC.Register(*d) })
	if err != nil {
		return nil, fmt.Errorf("bitdew: createData %s: %w", path, err)
	}
	return d, nil
}

// Put copies content into the datum's slot: local storage, upload to the
// Data Repository, and catalog registration of meta-information and
// locator. It blocks until the permanent copy is safe, mirroring
// bitdew.put(data, file). It is the single-datum wrapper over PutAll;
// prefer PutAll when several data move together — it collapses the 4
// sequential service round trips per datum into 2 per shard for the whole
// batch.
func (b *BitDew) Put(d *data.Data, content []byte) error {
	return b.PutAll([]*data.Data{d}, [][]byte{content})
}

// PutAll is the batch-first Put: the data are partitioned onto their home
// shards and each shard runs the two-round-trip batch protocol
// (RegisterBatch + LocatorBatch in one frame, uploads out-of-band, one
// AddLocatorBatch) — the per-shard frames in parallel, so N shards see
// N-way concurrent distribution of one wave. Each datum's meta-information
// is updated in place.
func (b *BitDew) PutAll(ds []*data.Data, contents [][]byte) error {
	if len(ds) != len(contents) {
		return fmt.Errorf("bitdew: putAll: %d data but %d contents", len(ds), len(contents))
	}
	if len(ds) == 0 {
		return nil
	}
	for i, d := range ds {
		*d = *d.WithContent(contents[i])
		if err := b.backend.Put(string(d.UID), contents[i]); err != nil {
			return err
		}
	}
	// The per-shard protocol (register, locators, upload, publish) is
	// put-overwrite idempotent end to end, so a wave caught mid-rebalance
	// simply reruns against the refreshed placement.
	return b.set.retryElastic(func() error {
		v := b.set.currentView()
		groups := v.partition(len(ds), func(i int) data.UID { return ds[i].UID })
		return v.eachShard(groups, func(shard int, c *Comms, idx []int) error {
			part := make([]*data.Data, len(idx))
			for j, i := range idx {
				part[j] = ds[i]
			}
			return b.putShard(c, part)
		})
	})
}

// putShard runs the batch Put protocol for data homed on one shard.
func (b *BitDew) putShard(c *Comms, ds []*data.Data) error {
	regs := make([]data.Data, len(ds))
	uids := make([]data.UID, len(ds))
	for i, d := range ds {
		regs[i] = *d
		uids[i] = d.UID
	}

	// Round trip 1: register meta-information and ask for upload locators,
	// batched across the dc and dr services in one frame.
	var locs []data.Locator
	calls := []*rpc.Call{
		c.DC.RegisterBatchCall(regs),
		c.DR.LocatorBatchCall(uids, UploadProtocol, &locs),
	}
	if err := c.CallBatch(calls); err != nil {
		return fmt.Errorf("bitdew: putAll: %w", err)
	}
	if err := calls[0].Err; err != nil {
		return fmt.Errorf("bitdew: putAll: register: %w", err)
	}
	if err := calls[1].Err; err != nil {
		return fmt.Errorf("bitdew: putAll: locators: %w", err)
	}
	if len(locs) != len(ds) {
		return fmt.Errorf("bitdew: putAll: repository issued %d locators for %d data", len(locs), len(ds))
	}
	for i, loc := range locs {
		if loc == (data.Locator{}) {
			return fmt.Errorf("bitdew: put %s: locator: protocol %q not served", ds[i].Name, UploadProtocol)
		}
	}

	// Uploads go out-of-band, concurrently, bounded by the engine; their DT
	// registrations share one batch frame (UploadAll) and their completion
	// reports coalesce on the DT client.
	handles := b.engine.UploadAll(regs, locs)
	var errs []error
	for i, h := range handles {
		if err := h.Wait(); err != nil {
			errs = append(errs, fmt.Errorf("bitdew: put %s: upload: %w", ds[i].Name, err))
		}
	}
	if len(errs) > 0 {
		return errors.Join(errs...)
	}

	// Round trip 2: publish every locator at once.
	if err := c.DC.AddLocatorBatch(locs); err != nil {
		return fmt.Errorf("bitdew: putAll: publish locators: %w", err)
	}
	return nil
}

// PutFile is Put reading content from a local file.
func (b *BitDew) PutFile(d *data.Data, path string) error {
	content, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bitdew: %w", err)
	}
	return b.Put(d, content)
}

// Get starts fetching the datum's content from the data space into local
// storage and returns a transfer handle; block on it with the
// TransferManager (transferManager.waitFor(data) in the paper's Listing 2).
func (b *BitDew) Get(d data.Data) (*transfer.Handle, error) {
	loc, err := b.locatorFor(d, "")
	if err != nil {
		return nil, err
	}
	return b.engine.Download(d, loc), nil
}

// GetBytes is a blocking Get returning the verified content. It tries
// every known locator in turn (catalog-registered first, then a fresh
// repository locator), so stale catalog entries — e.g. a service host that
// came back on a new endpoint after a transient failure — do not strand
// the datum.
func (b *BitDew) GetBytes(d data.Data) ([]byte, error) {
	if err := b.Fetch(d, ""); err != nil {
		return nil, err
	}
	return b.backend.Get(string(d.UID))
}

// Fetch downloads d into local storage, trying each candidate locator
// until one succeeds. It is the single-datum wrapper over FetchAll.
func (b *BitDew) Fetch(d data.Data, protocol string) error {
	return b.FetchAll([]data.Data{d}, protocol)
}

// FetchAll downloads many data into local storage. Candidate locators come
// from the client-side locator cache when a previous lookup filled it —
// those data never touch the wire — and otherwise from one locator round
// trip per home shard (the catalog's locator lists and the repository's
// fallback locators share a multi-call frame), the per-shard frames in
// parallel. Downloads then run concurrently through the engine, each datum
// falling back through its candidate locators; a datum whose *cached*
// candidates all fail retries once with fresh locators from the wire, so a
// stale cache heals instead of stranding the datum.
func (b *BitDew) FetchAll(ds []data.Data, protocol string) error {
	if len(ds) == 0 {
		return nil
	}
	candidates := make([][]data.Locator, len(ds))
	fromCache := make([]bool, len(ds))
	var miss []int
	for i, d := range ds {
		if locs, ok := b.set.cache.get(d.UID, protocol); ok {
			candidates[i] = locs
			fromCache[i] = true
			continue
		}
		miss = append(miss, i)
	}
	errs := make([]error, len(ds))
	b.lookupLocators(ds, protocol, miss, candidates, errs)

	var wg sync.WaitGroup
	for i, d := range ds {
		if errs[i] != nil {
			// The datum's home shard refused the lookup frame (e.g. the
			// shard is down); only ITS data fail — the rest of the batch
			// still fetches.
			continue
		}
		locs := candidates[i]
		if len(locs) == 0 {
			errs[i] = fmt.Errorf("bitdew: no locator for %s", d.Name)
			continue
		}
		wg.Add(1)
		go func(i int, d data.Data, locs []data.Locator) {
			defer wg.Done()
			err := b.download(d, locs)
			if err != nil && fromCache[i] {
				// The cached locators all failed: drop them and retry once
				// against fresh ones from the service plane.
				b.set.cache.invalidate(d.UID)
				fresh := make([][]data.Locator, 1)
				ferr := make([]error, 1)
				b.lookupLocators([]data.Data{d}, protocol, []int{0}, fresh, ferr)
				if ferr[0] == nil && len(fresh[0]) > 0 {
					err = b.download(d, fresh[0])
				}
			}
			errs[i] = err
		}(i, d, locs)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// lookupLocators fills candidates[i] for every i in miss with the merged
// catalog + repository locators of ds[i], one multi-call frame per home
// shard (frames in parallel), feeding the results into the locator cache.
// A shard whose frame fails outright marks only its own data's errs slots
// — shards fail independently, exactly like the heartbeat fan-out. On an
// elastic plane, data refused as not-owner (their range moved mid-lookup)
// are retried against a refreshed membership view, recomputing the pending
// set each pass so only the moved data go back to the wire.
func (b *BitDew) lookupLocators(ds []data.Data, protocol string, miss []int, candidates [][]data.Locator, errs []error) {
	pending := miss
	for pass := 0; len(pending) > 0; pass++ {
		retry := b.lookupLocatorsOnce(ds, protocol, pending, candidates, errs)
		if len(retry) == 0 || !b.set.elastic() || pass >= elasticRetryPasses-1 {
			return
		}
		if !b.set.Refresh() {
			time.Sleep(elasticRetryBackoff)
			b.set.Refresh()
		}
		pending = retry
	}
}

// lookupLocatorsOnce runs one lookup pass over the current membership view
// and returns the miss entries that failed with a not-owner handoff (worth
// retrying after a refresh on an elastic plane).
func (b *BitDew) lookupLocatorsOnce(ds []data.Data, protocol string, miss []int, candidates [][]data.Locator, errs []error) []int {
	if len(miss) == 0 {
		return nil
	}
	var (
		mu    sync.Mutex
		retry []int
	)
	v := b.set.currentView()
	groups := v.partition(len(miss), func(j int) data.UID { return ds[miss[j]].UID })
	v.eachShard(groups, func(shard int, c *Comms, idx []int) error {
		uids := make([]data.UID, len(idx))
		for k, j := range idx {
			uids[k] = ds[miss[j]].UID
		}

		// One frame: catalog locator lists + repository fallbacks.
		var catLocs [][]data.Locator
		var repLocs []data.Locator
		calls := []*rpc.Call{
			c.DC.LocatorsBatchCall(uids, &catLocs),
			c.DR.LocatorAnyBatchCall(uids, protocol, &repLocs),
		}
		if err := c.CallBatch(calls); err != nil {
			notOwner := repl.IsNotOwner(err)
			mu.Lock()
			for _, j := range idx {
				errs[miss[j]] = fmt.Errorf("bitdew: fetch %s: shard %d: %w", ds[miss[j]].Name, shard, err)
				if notOwner {
					retry = append(retry, j)
				}
			}
			mu.Unlock()
			return nil
		}
		// Either source may fail independently (a stale catalog, a repository
		// with no endpoints); a datum only errors when it ends up with no
		// candidate at all, matching the sequential path's best-effort merge.
		// A not-owner refusal from the catalog means the whole range moved:
		// mark those data retryable instead of caching an empty answer.
		notOwner := repl.IsNotOwner(calls[0].Err)
		for k, j := range idx {
			var out []data.Locator
			seen := map[data.Locator]bool{}
			if calls[0].Err == nil && k < len(catLocs) {
				for _, l := range catLocs[k] {
					if protocol == "" || l.Protocol == protocol {
						out = append(out, l)
						seen[l] = true
					}
				}
			}
			if calls[1].Err == nil && k < len(repLocs) {
				if l := repLocs[k]; l != (data.Locator{}) && !seen[l] {
					out = append(out, l)
				}
			}
			i := miss[j]
			errs[i] = nil
			candidates[i] = out
			if notOwner && len(out) == 0 {
				mu.Lock()
				retry = append(retry, j)
				mu.Unlock()
				continue
			}
			b.set.cache.put(ds[i].UID, protocol, out)
		}
		return nil
	})
	out := make([]int, len(retry))
	for i, j := range retry {
		out[i] = miss[j]
	}
	return out
}

// download fetches d through the first working candidate locator.
func (b *BitDew) download(d data.Data, locs []data.Locator) error {
	var lastErr error
	for _, loc := range locs {
		if err := b.engine.Download(d, loc).Wait(); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return fmt.Errorf("bitdew: fetching %s: all %d locators failed: %w", d.Name, len(locs), lastErr)
}

// GetFile is a blocking Get writing the content to a local file.
func (b *BitDew) GetFile(d data.Data, path string) error {
	content, err := b.GetBytes(d)
	if err != nil {
		return err
	}
	return os.WriteFile(path, content, 0o644)
}

// locatorsFor lists every candidate source for d, in preference order:
// catalog-registered locators matching the requested protocol, then a
// repository locator (which also covers restarted repositories whose
// endpoints moved). Both queries go to d's home shard. It deliberately
// does NOT read the locator cache: its caller (Get) hands out a single
// transfer handle with no fallback chain, so it must see live endpoints
// every time — a cached-but-dead locator would strand the datum with
// nothing downstream to invalidate and retry. The cached fast path with
// stale-healing lives in FetchAll; locatorsFor only FEEDS the cache.
func (b *BitDew) locatorsFor(d data.Data, protocol string) ([]data.Locator, error) {
	var out []data.Locator
	err := b.set.homeCall(d.UID, func(c *Comms) error {
		out = out[:0]
		seen := map[data.Locator]bool{}
		locs, catErr := c.DC.Locators(d.UID)
		if catErr == nil {
			for _, l := range locs {
				if protocol == "" || l.Protocol == protocol {
					out = append(out, l)
					seen[l] = true
				}
			}
		}
		loc, repErr := c.DR.LocatorAny(d.UID, protocol)
		if repErr == nil && !seen[loc] {
			out = append(out, loc)
		}
		if len(out) == 0 {
			// Surface a not-owner refusal so homeCall re-homes the datum
			// after a rebalance; anything else keeps the best-effort merge's
			// "no locator" answer.
			if repl.IsNotOwner(catErr) {
				return catErr
			}
			if repl.IsNotOwner(repErr) {
				return repErr
			}
			return fmt.Errorf("bitdew: no locator for %s", d.Name)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	b.set.cache.put(d.UID, protocol, out)
	return out, nil
}

// locatorFor returns the preferred locator for d.
func (b *BitDew) locatorFor(d data.Data, protocol string) (data.Locator, error) {
	locs, err := b.locatorsFor(d, protocol)
	if err != nil {
		return data.Locator{}, err
	}
	return locs[0], nil
}

// SearchData finds data in the catalog by name; when several match, they
// are returned in stable UID order. Over a sharded plane the query fans out
// to every shard's catalog and the answers merge.
func (b *BitDew) SearchData(name string) ([]data.Data, error) {
	return b.fanOutSearch(func(c *Comms) ([]data.Data, error) {
		return c.DC.SearchByName(name)
	})
}

// AllData lists every datum registered in the catalog (all shards).
func (b *BitDew) AllData() ([]data.Data, error) {
	return b.fanOutSearch(func(c *Comms) ([]data.Data, error) {
		return c.DC.All()
	})
}

// fanOutSearch runs a catalog query against every shard in parallel and
// merges the answers in stable UID order. On an unreplicated plane a datum
// lives on exactly one shard, so the merge never deduplicates. Shards fail
// independently here too: while the plane is degraded the merged answer is
// the SURVIVORS' view — their data stay searchable and fetchable, which is
// the whole point of the blast-radius design — and the query only errors
// when every shard refused it.
//
// Over a replicated plane the query runs once per DISTINCT owner (after a
// failover one physical shard serves several ranges, and would answer with
// its whole gated view per range slot queried), and the merge dedupes by
// UID as a second line of defense against owner moves mid-query.
func (b *BitDew) fanOutSearch(query func(*Comms) ([]data.Data, error)) ([]data.Data, error) {
	v := b.set.currentView()
	if len(v.shards) == 1 {
		return query(v.shards[0])
	}
	slots := make([]int, 0, len(v.shards))
	ownerSeen := make(map[int]bool, len(v.shards))
	for i := range v.shards {
		if owner := b.set.OwnerOf(i); !ownerSeen[owner] {
			ownerSeen[owner] = true
			slots = append(slots, i)
		}
	}
	parts := make([][]data.Data, len(slots))
	errs := make([]error, len(slots))
	var wg sync.WaitGroup
	for j, i := range slots {
		wg.Add(1)
		go func(j, i int) {
			defer wg.Done()
			parts[j], errs[j] = query(v.shards[i])
		}(j, i)
	}
	wg.Wait()
	failed := 0
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	if failed == len(slots) {
		return nil, errors.Join(errs...)
	}
	var out []data.Data
	for _, p := range parts {
		out = append(out, p...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UID < out[j].UID })
	if b.set.Replicated() || b.set.elastic() {
		// Replicated: owner moves mid-query can answer a range twice.
		// Elastic: a query racing a commit's garbage collection can see a
		// migrated datum on both its old and new home for a moment.
		out = dedupeByUID(out)
	}
	return out, nil
}

// dedupeByUID collapses adjacent duplicates in a UID-sorted slice.
func dedupeByUID(in []data.Data) []data.Data {
	out := in[:0]
	for i, d := range in {
		if i == 0 || d.UID != in[i-1].UID {
			out = append(out, d)
		}
	}
	return out
}

// SearchDataFirst returns the single match for name, erroring on none.
func (b *BitDew) SearchDataFirst(name string) (data.Data, error) {
	found, err := b.SearchData(name)
	if err != nil {
		return data.Data{}, err
	}
	if len(found) == 0 {
		return data.Data{}, fmt.Errorf("bitdew: no data named %q", name)
	}
	return found[0], nil
}

// DeleteData removes the datum everywhere the node can reach: catalog
// (with locators), scheduler, repository and local cache — all on the
// datum's home shard. Data holding a relative lifetime on it will expire at
// their owners' next sync. The catalog delete goes first and gates the rest
// — if it fails, the datum stays fully intact for a retry rather than
// lingering in the catalog with its content gone. The two best-effort
// deletions (scheduler, repository) then share one multi-call round trip.
func (b *BitDew) DeleteData(d data.Data) error {
	err := b.set.homeCall(d.UID, func(c *Comms) error { return c.DC.Delete(d.UID) })
	if err != nil {
		return err
	}
	b.set.cache.invalidate(d.UID)
	// homeCall above refreshed the view on a rebalance, so For now resolves
	// the datum's committed home.
	c := b.set.For(d.UID)
	//vet:ignore errlost both deletions are best-effort by contract (the datum may be unscheduled or empty); the gating catalog delete above already succeeded
	c.CallBatch([]*rpc.Call{
		c.DS.UnscheduleCall(d.UID), // best-effort: may not be scheduled
		c.DR.DeleteCall(d.UID),     // best-effort: may hold no content
	})
	return b.backend.Delete(string(d.UID))
}

// Local reports whether the datum's content is in this node's local cache.
func (b *BitDew) Local(d data.Data) bool {
	n, err := b.backend.Size(string(d.UID))
	return err == nil && n == d.Size
}
