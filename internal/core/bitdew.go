package core

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"bitdew/internal/data"
	"bitdew/internal/repository"
	"bitdew/internal/rpc"
	"bitdew/internal/transfer"
)

// UploadProtocol is the protocol used by Put to push content to the Data
// Repository. Distribution to other nodes then follows each datum's own
// transfer-protocol attribute.
const UploadProtocol = "http"

// BitDew is the data-space API: it aggregates the storage resources of the
// system and virtualizes them as a unique space where data are stored
// (the Tuple-Space heritage the paper cites). Create a slot, put content
// into it, get content out of it, search by name.
type BitDew struct {
	comms   *Comms
	backend repository.Backend
	engine  *transfer.Engine
	host    string
}

// NewBitDew builds the API over service connections, local storage and the
// node's transfer engine.
func NewBitDew(comms *Comms, backend repository.Backend, engine *transfer.Engine, host string) *BitDew {
	return &BitDew{comms: comms, backend: backend, engine: engine, host: host}
}

// CreateData creates an empty slot in the data space. It is the single-slot
// wrapper over CreateDataBatch.
func (b *BitDew) CreateData(name string) (*data.Data, error) {
	ds, err := b.CreateDataBatch([]string{name})
	if err != nil {
		return nil, err
	}
	return ds[0], nil
}

// CreateDataBatch creates one empty slot per name in a single catalog round
// trip. It is the batch-first entry point for masters creating many slots
// (one RegisterBatch call instead of N Registers).
func (b *BitDew) CreateDataBatch(names []string) ([]*data.Data, error) {
	ds := make([]*data.Data, len(names))
	regs := make([]data.Data, len(names))
	for i, name := range names {
		ds[i] = data.New(name)
		regs[i] = *ds[i]
	}
	if err := b.comms.DC.RegisterBatch(regs); err != nil {
		return nil, fmt.Errorf("bitdew: createData batch of %d: %w", len(names), err)
	}
	return ds, nil
}

// CreateDataFromBytes creates a slot whose meta-information (size, MD5) is
// computed from content. The content stays local until Put.
func (b *BitDew) CreateDataFromBytes(name string, content []byte) (*data.Data, error) {
	d := data.NewFromBytes(name, content)
	if err := b.backend.Put(string(d.UID), content); err != nil {
		return nil, err
	}
	if err := b.comms.DC.Register(*d); err != nil {
		return nil, fmt.Errorf("bitdew: createData %s: %w", name, err)
	}
	return d, nil
}

// CreateDataFromFile creates a slot from a local file.
func (b *BitDew) CreateDataFromFile(path string) (*data.Data, error) {
	content, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bitdew: %w", err)
	}
	d, err := data.NewFromFile(path)
	if err != nil {
		return nil, err
	}
	if err := b.backend.Put(string(d.UID), content); err != nil {
		return nil, err
	}
	if err := b.comms.DC.Register(*d); err != nil {
		return nil, fmt.Errorf("bitdew: createData %s: %w", path, err)
	}
	return d, nil
}

// Put copies content into the datum's slot: local storage, upload to the
// Data Repository, and catalog registration of meta-information and
// locator. It blocks until the permanent copy is safe, mirroring
// bitdew.put(data, file). It is the single-datum wrapper over PutAll;
// prefer PutAll when several data move together — it collapses the 4
// sequential service round trips per datum into 2 for the whole batch.
func (b *BitDew) Put(d *data.Data, content []byte) error {
	return b.PutAll([]*data.Data{d}, [][]byte{content})
}

// PutAll is the batch-first Put: it registers all N data and obtains their
// repository locators in ONE multi-call round trip (RegisterBatch +
// LocatorBatch share a frame), uploads the contents concurrently through
// the transfer engine, and publishes all locators in one AddLocatorBatch
// call — 2 round trips and N out-of-band uploads, versus 4·N round trips
// for sequential Puts. Each datum's meta-information is updated in place.
func (b *BitDew) PutAll(ds []*data.Data, contents [][]byte) error {
	if len(ds) != len(contents) {
		return fmt.Errorf("bitdew: putAll: %d data but %d contents", len(ds), len(contents))
	}
	if len(ds) == 0 {
		return nil
	}
	regs := make([]data.Data, len(ds))
	uids := make([]data.UID, len(ds))
	for i, d := range ds {
		*d = *d.WithContent(contents[i])
		if err := b.backend.Put(string(d.UID), contents[i]); err != nil {
			return err
		}
		regs[i] = *d
		uids[i] = d.UID
	}

	// Round trip 1: register meta-information and ask for upload locators,
	// batched across the dc and dr services in one frame.
	var locs []data.Locator
	calls := []*rpc.Call{
		b.comms.DC.RegisterBatchCall(regs),
		b.comms.DR.LocatorBatchCall(uids, UploadProtocol, &locs),
	}
	if err := b.comms.CallBatch(calls); err != nil {
		return fmt.Errorf("bitdew: putAll: %w", err)
	}
	if err := calls[0].Err; err != nil {
		return fmt.Errorf("bitdew: putAll: register: %w", err)
	}
	if err := calls[1].Err; err != nil {
		return fmt.Errorf("bitdew: putAll: locators: %w", err)
	}
	if len(locs) != len(ds) {
		return fmt.Errorf("bitdew: putAll: repository issued %d locators for %d data", len(locs), len(ds))
	}
	for i, loc := range locs {
		if loc == (data.Locator{}) {
			return fmt.Errorf("bitdew: put %s: locator: protocol %q not served", ds[i].Name, UploadProtocol)
		}
	}

	// Uploads go out-of-band, concurrently, bounded by the engine; their DT
	// registrations share one batch frame (UploadAll) and their completion
	// reports coalesce on the DT client.
	handles := b.engine.UploadAll(regs, locs)
	var errs []error
	for i, h := range handles {
		if err := h.Wait(); err != nil {
			errs = append(errs, fmt.Errorf("bitdew: put %s: upload: %w", ds[i].Name, err))
		}
	}
	if len(errs) > 0 {
		return errors.Join(errs...)
	}

	// Round trip 2: publish every locator at once.
	if err := b.comms.DC.AddLocatorBatch(locs); err != nil {
		return fmt.Errorf("bitdew: putAll: publish locators: %w", err)
	}
	return nil
}

// PutFile is Put reading content from a local file.
func (b *BitDew) PutFile(d *data.Data, path string) error {
	content, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bitdew: %w", err)
	}
	return b.Put(d, content)
}

// Get starts fetching the datum's content from the data space into local
// storage and returns a transfer handle; block on it with the
// TransferManager (transferManager.waitFor(data) in the paper's Listing 2).
func (b *BitDew) Get(d data.Data) (*transfer.Handle, error) {
	loc, err := b.locatorFor(d, "")
	if err != nil {
		return nil, err
	}
	return b.engine.Download(d, loc), nil
}

// GetBytes is a blocking Get returning the verified content. It tries
// every known locator in turn (catalog-registered first, then a fresh
// repository locator), so stale catalog entries — e.g. a service host that
// came back on a new endpoint after a transient failure — do not strand
// the datum.
func (b *BitDew) GetBytes(d data.Data) ([]byte, error) {
	if err := b.Fetch(d, ""); err != nil {
		return nil, err
	}
	return b.backend.Get(string(d.UID))
}

// Fetch downloads d into local storage, trying each candidate locator
// until one succeeds. It is the single-datum wrapper over FetchAll.
func (b *BitDew) Fetch(d data.Data, protocol string) error {
	return b.FetchAll([]data.Data{d}, protocol)
}

// FetchAll downloads many data into local storage in one locator round
// trip: the catalog's locator lists and the repository's fallback locators
// for ALL data are gathered in a single multi-call frame, then the
// downloads run concurrently through the engine, each datum falling back
// through its candidate locators exactly as a sequential Fetch would.
func (b *BitDew) FetchAll(ds []data.Data, protocol string) error {
	if len(ds) == 0 {
		return nil
	}
	uids := make([]data.UID, len(ds))
	for i, d := range ds {
		uids[i] = d.UID
	}

	// One frame: catalog locator lists + repository fallbacks for all data.
	var catLocs [][]data.Locator
	var repLocs []data.Locator
	calls := []*rpc.Call{
		b.comms.DC.LocatorsBatchCall(uids, &catLocs),
		b.comms.DR.LocatorAnyBatchCall(uids, protocol, &repLocs),
	}
	if err := b.comms.CallBatch(calls); err != nil {
		return fmt.Errorf("bitdew: fetchAll: %w", err)
	}
	// Either source may fail independently (a stale catalog, a repository
	// with no endpoints); a datum only errors when it ends up with no
	// candidate at all, matching the sequential path's best-effort merge.
	candidates := func(i int) []data.Locator {
		var out []data.Locator
		seen := map[data.Locator]bool{}
		if calls[0].Err == nil && i < len(catLocs) {
			for _, l := range catLocs[i] {
				if protocol == "" || l.Protocol == protocol {
					out = append(out, l)
					seen[l] = true
				}
			}
		}
		if calls[1].Err == nil && i < len(repLocs) {
			if l := repLocs[i]; l != (data.Locator{}) && !seen[l] {
				out = append(out, l)
			}
		}
		return out
	}

	errs := make([]error, len(ds))
	var wg sync.WaitGroup
	for i, d := range ds {
		locs := candidates(i)
		if len(locs) == 0 {
			errs[i] = fmt.Errorf("bitdew: no locator for %s", d.Name)
			continue
		}
		wg.Add(1)
		go func(i int, d data.Data, locs []data.Locator) {
			defer wg.Done()
			var lastErr error
			for _, loc := range locs {
				if err := b.engine.Download(d, loc).Wait(); err != nil {
					lastErr = err
					continue
				}
				return
			}
			errs[i] = fmt.Errorf("bitdew: fetching %s: all %d locators failed: %w", d.Name, len(locs), lastErr)
		}(i, d, locs)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// GetFile is a blocking Get writing the content to a local file.
func (b *BitDew) GetFile(d data.Data, path string) error {
	content, err := b.GetBytes(d)
	if err != nil {
		return err
	}
	return os.WriteFile(path, content, 0o644)
}

// locatorsFor lists every candidate source for d, in preference order:
// catalog-registered locators matching the requested protocol, then a
// repository locator (which also covers restarted repositories whose
// endpoints moved).
func (b *BitDew) locatorsFor(d data.Data, protocol string) ([]data.Locator, error) {
	var out []data.Locator
	seen := map[data.Locator]bool{}
	if locs, err := b.comms.DC.Locators(d.UID); err == nil {
		for _, l := range locs {
			if protocol == "" || l.Protocol == protocol {
				out = append(out, l)
				seen[l] = true
			}
		}
	}
	if loc, err := b.comms.DR.LocatorAny(d.UID, protocol); err == nil && !seen[loc] {
		out = append(out, loc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bitdew: no locator for %s", d.Name)
	}
	return out, nil
}

// locatorFor returns the preferred locator for d.
func (b *BitDew) locatorFor(d data.Data, protocol string) (data.Locator, error) {
	locs, err := b.locatorsFor(d, protocol)
	if err != nil {
		return data.Locator{}, err
	}
	return locs[0], nil
}

// SearchData finds data in the catalog by name; when several match, they
// are returned in stable UID order.
func (b *BitDew) SearchData(name string) ([]data.Data, error) {
	return b.comms.DC.SearchByName(name)
}

// AllData lists every datum registered in the catalog.
func (b *BitDew) AllData() ([]data.Data, error) {
	return b.comms.DC.All()
}

// SearchDataFirst returns the single match for name, erroring on none.
func (b *BitDew) SearchDataFirst(name string) (data.Data, error) {
	found, err := b.comms.DC.SearchByName(name)
	if err != nil {
		return data.Data{}, err
	}
	if len(found) == 0 {
		return data.Data{}, fmt.Errorf("bitdew: no data named %q", name)
	}
	return found[0], nil
}

// DeleteData removes the datum everywhere the node can reach: catalog
// (with locators), scheduler, repository and local cache. Data holding a
// relative lifetime on it will expire at their owners' next sync. The
// catalog delete goes first and gates the rest — if it fails, the datum
// stays fully intact for a retry rather than lingering in the catalog with
// its content gone. The two best-effort deletions (scheduler, repository)
// then share one multi-call round trip.
func (b *BitDew) DeleteData(d data.Data) error {
	if err := b.comms.DC.Delete(d.UID); err != nil {
		return err
	}
	b.comms.CallBatch([]*rpc.Call{
		b.comms.DS.UnscheduleCall(d.UID), // best-effort: may not be scheduled
		b.comms.DR.DeleteCall(d.UID),     // best-effort: may hold no content
	})
	return b.backend.Delete(string(d.UID))
}

// Local reports whether the datum's content is in this node's local cache.
func (b *BitDew) Local(d data.Data) bool {
	n, err := b.backend.Size(string(d.UID))
	return err == nil && n == d.Size
}
