package core

import (
	"fmt"
	"os"

	"bitdew/internal/data"
	"bitdew/internal/repository"
	"bitdew/internal/transfer"
)

// UploadProtocol is the protocol used by Put to push content to the Data
// Repository. Distribution to other nodes then follows each datum's own
// transfer-protocol attribute.
const UploadProtocol = "http"

// BitDew is the data-space API: it aggregates the storage resources of the
// system and virtualizes them as a unique space where data are stored
// (the Tuple-Space heritage the paper cites). Create a slot, put content
// into it, get content out of it, search by name.
type BitDew struct {
	comms   *Comms
	backend repository.Backend
	engine  *transfer.Engine
	host    string
}

// NewBitDew builds the API over service connections, local storage and the
// node's transfer engine.
func NewBitDew(comms *Comms, backend repository.Backend, engine *transfer.Engine, host string) *BitDew {
	return &BitDew{comms: comms, backend: backend, engine: engine, host: host}
}

// CreateData creates an empty slot in the data space.
func (b *BitDew) CreateData(name string) (*data.Data, error) {
	d := data.New(name)
	if err := b.comms.DC.Register(*d); err != nil {
		return nil, fmt.Errorf("bitdew: createData %s: %w", name, err)
	}
	return d, nil
}

// CreateDataFromBytes creates a slot whose meta-information (size, MD5) is
// computed from content. The content stays local until Put.
func (b *BitDew) CreateDataFromBytes(name string, content []byte) (*data.Data, error) {
	d := data.NewFromBytes(name, content)
	if err := b.backend.Put(string(d.UID), content); err != nil {
		return nil, err
	}
	if err := b.comms.DC.Register(*d); err != nil {
		return nil, fmt.Errorf("bitdew: createData %s: %w", name, err)
	}
	return d, nil
}

// CreateDataFromFile creates a slot from a local file.
func (b *BitDew) CreateDataFromFile(path string) (*data.Data, error) {
	content, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bitdew: %w", err)
	}
	d, err := data.NewFromFile(path)
	if err != nil {
		return nil, err
	}
	if err := b.backend.Put(string(d.UID), content); err != nil {
		return nil, err
	}
	if err := b.comms.DC.Register(*d); err != nil {
		return nil, fmt.Errorf("bitdew: createData %s: %w", path, err)
	}
	return d, nil
}

// Put copies content into the datum's slot: local storage, upload to the
// Data Repository, and catalog registration of meta-information and
// locator. It blocks until the permanent copy is safe, mirroring
// bitdew.put(data, file).
func (b *BitDew) Put(d *data.Data, content []byte) error {
	*d = *d.WithContent(content)
	if err := b.backend.Put(string(d.UID), content); err != nil {
		return err
	}
	if err := b.comms.DC.Register(*d); err != nil {
		return fmt.Errorf("bitdew: put %s: register: %w", d.Name, err)
	}
	loc, err := b.comms.DR.Locator(d.UID, UploadProtocol)
	if err != nil {
		return fmt.Errorf("bitdew: put %s: locator: %w", d.Name, err)
	}
	if err := b.engine.Upload(*d, loc).Wait(); err != nil {
		return fmt.Errorf("bitdew: put %s: upload: %w", d.Name, err)
	}
	if err := b.comms.DC.AddLocator(loc); err != nil {
		return fmt.Errorf("bitdew: put %s: publish locator: %w", d.Name, err)
	}
	return nil
}

// PutFile is Put reading content from a local file.
func (b *BitDew) PutFile(d *data.Data, path string) error {
	content, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bitdew: %w", err)
	}
	return b.Put(d, content)
}

// Get starts fetching the datum's content from the data space into local
// storage and returns a transfer handle; block on it with the
// TransferManager (transferManager.waitFor(data) in the paper's Listing 2).
func (b *BitDew) Get(d data.Data) (*transfer.Handle, error) {
	loc, err := b.locatorFor(d, "")
	if err != nil {
		return nil, err
	}
	return b.engine.Download(d, loc), nil
}

// GetBytes is a blocking Get returning the verified content. It tries
// every known locator in turn (catalog-registered first, then a fresh
// repository locator), so stale catalog entries — e.g. a service host that
// came back on a new endpoint after a transient failure — do not strand
// the datum.
func (b *BitDew) GetBytes(d data.Data) ([]byte, error) {
	if err := b.Fetch(d, ""); err != nil {
		return nil, err
	}
	return b.backend.Get(string(d.UID))
}

// Fetch downloads d into local storage, trying each candidate locator
// until one succeeds.
func (b *BitDew) Fetch(d data.Data, protocol string) error {
	locs, err := b.locatorsFor(d, protocol)
	if err != nil {
		return err
	}
	var lastErr error
	for _, loc := range locs {
		if err := b.engine.Download(d, loc).Wait(); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return fmt.Errorf("bitdew: fetching %s: all %d locators failed: %w", d.Name, len(locs), lastErr)
}

// GetFile is a blocking Get writing the content to a local file.
func (b *BitDew) GetFile(d data.Data, path string) error {
	content, err := b.GetBytes(d)
	if err != nil {
		return err
	}
	return os.WriteFile(path, content, 0o644)
}

// locatorsFor lists every candidate source for d, in preference order:
// catalog-registered locators matching the requested protocol, then a
// repository locator (which also covers restarted repositories whose
// endpoints moved).
func (b *BitDew) locatorsFor(d data.Data, protocol string) ([]data.Locator, error) {
	var out []data.Locator
	seen := map[data.Locator]bool{}
	if locs, err := b.comms.DC.Locators(d.UID); err == nil {
		for _, l := range locs {
			if protocol == "" || l.Protocol == protocol {
				out = append(out, l)
				seen[l] = true
			}
		}
	}
	if loc, err := b.comms.DR.LocatorAny(d.UID, protocol); err == nil && !seen[loc] {
		out = append(out, loc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bitdew: no locator for %s", d.Name)
	}
	return out, nil
}

// locatorFor returns the preferred locator for d.
func (b *BitDew) locatorFor(d data.Data, protocol string) (data.Locator, error) {
	locs, err := b.locatorsFor(d, protocol)
	if err != nil {
		return data.Locator{}, err
	}
	return locs[0], nil
}

// SearchData finds data in the catalog by name; when several match, they
// are returned in stable UID order.
func (b *BitDew) SearchData(name string) ([]data.Data, error) {
	return b.comms.DC.SearchByName(name)
}

// AllData lists every datum registered in the catalog.
func (b *BitDew) AllData() ([]data.Data, error) {
	return b.comms.DC.All()
}

// SearchDataFirst returns the single match for name, erroring on none.
func (b *BitDew) SearchDataFirst(name string) (data.Data, error) {
	found, err := b.comms.DC.SearchByName(name)
	if err != nil {
		return data.Data{}, err
	}
	if len(found) == 0 {
		return data.Data{}, fmt.Errorf("bitdew: no data named %q", name)
	}
	return found[0], nil
}

// DeleteData removes the datum everywhere the node can reach: catalog
// (with locators), scheduler, repository and local cache. Data holding a
// relative lifetime on it will expire at their owners' next sync.
func (b *BitDew) DeleteData(d data.Data) error {
	if err := b.comms.DC.Delete(d.UID); err != nil {
		return err
	}
	b.comms.DS.Unschedule(d.UID) // best-effort: may not be scheduled
	b.comms.DR.Delete(d.UID)
	return b.backend.Delete(string(d.UID))
}

// Local reports whether the datum's content is in this node's local cache.
func (b *BitDew) Local(d data.Data) bool {
	n, err := b.backend.Size(string(d.UID))
	return err == nil && n == d.Size
}
