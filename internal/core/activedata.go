package core

import (
	"fmt"
	"sync"

	"bitdew/internal/attr"
	"bitdew/internal/data"
	"bitdew/internal/rpc"
)

// Event is one data life-cycle occurrence delivered to callbacks.
type Event struct {
	Data data.Data
	Attr attr.Attribute
}

// EventHandler receives data life-cycle events. Any field may be nil.
// Handlers run on the node's pull-loop goroutine; they dispatch on the
// attribute name exactly as the paper's Listing 2 handlers do.
type EventHandler struct {
	// OnDataCopy fires when a datum's content has landed in the local
	// cache (after integrity verification).
	OnDataCopy func(Event)
	// OnDataDelete fires when the scheduler obsoletes a cached datum and
	// the local copy is removed.
	OnDataDelete func(Event)
}

// ActiveData is the scheduling-and-events API: it manages data attributes,
// interfaces with the Data Scheduler, and delivers life-cycle callbacks.
type ActiveData struct {
	comms *Comms
	node  *Node // back-reference for cache bookkeeping; nil off-node

	mu       sync.Mutex
	handlers []EventHandler
}

// NewActiveData builds the API over service connections. Attach it to a
// Node (via Node.ActiveData) to receive callbacks.
func NewActiveData(comms *Comms) *ActiveData {
	return &ActiveData{comms: comms}
}

// CreateAttribute parses an attribute definition in the paper's language,
// e.g. bitdew.createAttribute("attr update = {replica = -1, oob =
// bittorrent}").
func (a *ActiveData) CreateAttribute(spec string) (attr.Attribute, error) {
	return attr.Parse(spec)
}

// Schedule associates the datum with an attribute and orders the Data
// Scheduler to place it according to Algorithm 1.
func (a *ActiveData) Schedule(d data.Data, at attr.Attribute) error {
	return a.comms.DS.Schedule(d, at)
}

// ScheduleAll schedules many data in one round trip: the N Schedule calls
// travel in a single rpc batch frame. as must either match ds in length or
// hold a single attribute applied to every datum.
func (a *ActiveData) ScheduleAll(ds []data.Data, as []attr.Attribute) error {
	if len(as) != len(ds) && len(as) != 1 {
		return fmt.Errorf("core: scheduleAll: %d data but %d attributes", len(ds), len(as))
	}
	calls := make([]*rpc.Call, len(ds))
	for i, d := range ds {
		at := as[0]
		if len(as) == len(ds) {
			at = as[i]
		}
		calls[i] = a.comms.DS.ScheduleCall(d, at)
	}
	if err := a.comms.CallBatch(calls); err != nil {
		return err
	}
	return rpc.FirstError(calls)
}

// Pin schedules the datum and declares it owned by this node: the
// scheduler will never expire that ownership, and affinity references
// resolve to this node. Off-node (no attached Node), host must be set by
// PinAs.
func (a *ActiveData) Pin(d data.Data, at attr.Attribute) error {
	host := ""
	if a.node != nil {
		host = a.node.Host
	}
	return a.PinAs(d, at, host)
}

// PinAs pins the datum for an explicit host identity.
func (a *ActiveData) PinAs(d data.Data, at attr.Attribute, host string) error {
	if err := a.comms.DS.Pin(d, at, host); err != nil {
		return err
	}
	if a.node != nil && a.node.Host == host {
		a.node.adoptLocal(d, at)
	}
	return nil
}

// Unschedule withdraws the datum from the scheduler; data bound to it by
// relative lifetime become obsolete.
func (a *ActiveData) Unschedule(d data.Data) error {
	return a.comms.DS.Unschedule(d.UID)
}

// AddCallback installs a life-cycle event handler (Listing 1's
// activeData.addCallback(new UpdaterHandler())).
func (a *ActiveData) AddCallback(h EventHandler) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.handlers = append(a.handlers, h)
}

// fireCopy delivers a data-copy event to every handler.
func (a *ActiveData) fireCopy(e Event) {
	a.mu.Lock()
	hs := append([]EventHandler(nil), a.handlers...)
	a.mu.Unlock()
	for _, h := range hs {
		if h.OnDataCopy != nil {
			h.OnDataCopy(e)
		}
	}
}

// fireDelete delivers a data-delete event to every handler.
func (a *ActiveData) fireDelete(e Event) {
	a.mu.Lock()
	hs := append([]EventHandler(nil), a.handlers...)
	a.mu.Unlock()
	for _, h := range hs {
		if h.OnDataDelete != nil {
			h.OnDataDelete(e)
		}
	}
}
