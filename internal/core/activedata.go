package core

import (
	"fmt"
	"sync"

	"bitdew/internal/attr"
	"bitdew/internal/data"
	"bitdew/internal/rpc"
)

// Event is one data life-cycle occurrence delivered to callbacks.
type Event struct {
	Data data.Data
	Attr attr.Attribute
}

// EventHandler receives data life-cycle events. Any field may be nil.
// Handlers run on the node's pull-loop goroutine; they dispatch on the
// attribute name exactly as the paper's Listing 2 handlers do.
type EventHandler struct {
	// OnDataCopy fires when a datum's content has landed in the local
	// cache (after integrity verification).
	OnDataCopy func(Event)
	// OnDataDelete fires when the scheduler obsoletes a cached datum and
	// the local copy is removed.
	OnDataDelete func(Event)
}

// ActiveData is the scheduling-and-events API: it manages data attributes,
// interfaces with the Data Scheduler, and delivers life-cycle callbacks.
// Over a sharded service plane each datum is scheduled on its home shard's
// scheduler; note that affinity and relative-lifetime references resolve
// within one shard, so data linked by them should share a home shard (see
// DESIGN.md, "Sharded service plane").
type ActiveData struct {
	set  *ShardSet
	node *Node // back-reference for cache bookkeeping; nil off-node

	mu       sync.Mutex
	handlers []EventHandler
}

// NewActiveData builds the API over service connections. Attach it to a
// Node (via Node.ActiveData) to receive callbacks.
func NewActiveData(comms *Comms) *ActiveData {
	return NewActiveDataSharded(shardSetOf(comms))
}

// NewActiveDataSharded is NewActiveData over a sharded service plane.
func NewActiveDataSharded(set *ShardSet) *ActiveData {
	return &ActiveData{set: set}
}

// CreateAttribute parses an attribute definition in the paper's language,
// e.g. bitdew.createAttribute("attr update = {replica = -1, oob =
// bittorrent}").
func (a *ActiveData) CreateAttribute(spec string) (attr.Attribute, error) {
	return attr.Parse(spec)
}

// Schedule associates the datum with an attribute and orders its home
// shard's Data Scheduler to place it according to Algorithm 1.
func (a *ActiveData) Schedule(d data.Data, at attr.Attribute) error {
	return a.set.homeCall(d.UID, func(c *Comms) error { return c.DS.Schedule(d, at) })
}

// ScheduleAll schedules many data in one round trip per home shard: the
// Schedule calls are partitioned onto their data's shards and each shard's
// calls travel in a single rpc batch frame, the frames in parallel. as must
// either match ds in length or hold a single attribute applied to every
// datum.
func (a *ActiveData) ScheduleAll(ds []data.Data, as []attr.Attribute) error {
	if len(as) != len(ds) && len(as) != 1 {
		return fmt.Errorf("core: scheduleAll: %d data but %d attributes", len(ds), len(as))
	}
	attrAt := func(i int) attr.Attribute {
		if len(as) == len(ds) {
			return as[i]
		}
		return as[0]
	}
	// Schedule is put-overwrite idempotent, so a wave caught mid-rebalance
	// reruns wholesale against the refreshed placement.
	return a.set.retryElastic(func() error {
		v := a.set.currentView()
		groups := v.partition(len(ds), func(i int) data.UID { return ds[i].UID })
		return v.eachShard(groups, func(shard int, c *Comms, idx []int) error {
			calls := make([]*rpc.Call, len(idx))
			for j, i := range idx {
				calls[j] = c.DS.ScheduleCall(ds[i], attrAt(i))
			}
			if err := c.CallBatch(calls); err != nil {
				return err
			}
			return rpc.FirstError(calls)
		})
	})
}

// Pin schedules the datum and declares it owned by this node: the
// scheduler will never expire that ownership, and affinity references
// resolve to this node. Off-node (no attached Node), host must be set by
// PinAs.
func (a *ActiveData) Pin(d data.Data, at attr.Attribute) error {
	host := ""
	if a.node != nil {
		host = a.node.Host
	}
	return a.PinAs(d, at, host)
}

// PinAs pins the datum for an explicit host identity.
func (a *ActiveData) PinAs(d data.Data, at attr.Attribute, host string) error {
	err := a.set.homeCall(d.UID, func(c *Comms) error { return c.DS.Pin(d, at, host) })
	if err != nil {
		return err
	}
	if a.node != nil && a.node.Host == host {
		a.node.adoptLocal(d, at)
	}
	return nil
}

// Unschedule withdraws the datum from its home shard's scheduler; data
// bound to it by relative lifetime become obsolete.
func (a *ActiveData) Unschedule(d data.Data) error {
	return a.set.homeCall(d.UID, func(c *Comms) error { return c.DS.Unschedule(d.UID) })
}

// AddCallback installs a life-cycle event handler (Listing 1's
// activeData.addCallback(new UpdaterHandler())).
func (a *ActiveData) AddCallback(h EventHandler) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.handlers = append(a.handlers, h)
}

// fireCopy delivers a data-copy event to every handler.
func (a *ActiveData) fireCopy(e Event) {
	a.mu.Lock()
	hs := append([]EventHandler(nil), a.handlers...)
	a.mu.Unlock()
	for _, h := range hs {
		if h.OnDataCopy != nil {
			h.OnDataCopy(e)
		}
	}
}

// fireDelete delivers a data-delete event to every handler.
func (a *ActiveData) fireDelete(e Event) {
	a.mu.Lock()
	hs := append([]EventHandler(nil), a.handlers...)
	a.mu.Unlock()
	for _, h := range hs {
		if h.OnDataDelete != nil {
			h.OnDataDelete(e)
		}
	}
}
