package core

import (
	"container/list"
	"sync"

	"bitdew/internal/data"
	"bitdew/internal/dht"
)

// defaultLocatorCacheSize bounds the client-side locator cache. Each entry
// is a handful of locators (tens of bytes), so the default keeps the cache
// under ~1 MB while covering far more data than a node touches in a
// typical master/worker wave.
const defaultLocatorCacheSize = 4096

// locatorKey identifies one cached lookup: the candidate list depends on
// the protocol filter the caller asked with, so the protocol is part of the
// key rather than the value.
type locatorKey struct {
	uid      data.UID
	protocol string
}

// locatorCache is a bounded LRU of locator candidate lists keyed by
// (datum, protocol). It exists so the second and later fetches of a datum —
// a master collecting results in rounds, a worker re-verifying a broadcast
// base — skip the catalog/repository round trip entirely. Entries are
// invalidated when a cached locator turns out dead (the fetch path falls
// back to the wire) and when the datum is deleted.
type locatorCache struct {
	mu      sync.Mutex
	max     int
	entries map[locatorKey]*list.Element
	order   *list.List // front = most recently used
	hits    uint64
	misses  uint64
	// epoch is the membership epoch the entries were resolved under; a
	// bump flushes everything (see setEpoch).
	epoch uint64
}

type locatorCacheEntry struct {
	key  locatorKey
	locs []data.Locator
}

func newLocatorCache(max int) *locatorCache {
	if max < 1 {
		max = 1
	}
	return &locatorCache{
		max:     max,
		entries: make(map[locatorKey]*list.Element),
		order:   list.New(),
	}
}

// get returns the cached candidates for (uid, protocol), if any, marking
// the entry most-recently-used. Empty candidate lists are never cached, so
// ok implies at least one locator.
func (c *locatorCache) get(uid data.UID, protocol string) ([]data.Locator, bool) {
	key := locatorKey{uid: uid, protocol: protocol}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	locs := el.Value.(*locatorCacheEntry).locs
	out := make([]data.Locator, len(locs))
	copy(out, locs)
	return out, true
}

// put stores the candidates for (uid, protocol), evicting the least
// recently used entry when full. Empty lists are ignored: "no locator yet"
// is a transient state that must keep hitting the wire.
func (c *locatorCache) put(uid data.UID, protocol string, locs []data.Locator) {
	if len(locs) == 0 {
		return
	}
	stored := make([]data.Locator, len(locs))
	copy(stored, locs)
	key := locatorKey{uid: uid, protocol: protocol}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*locatorCacheEntry).locs = stored
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&locatorCacheEntry{key: key, locs: stored})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*locatorCacheEntry).key)
	}
}

// invalidate drops every entry of uid (all protocol variants).
func (c *locatorCache) invalidate(uid data.UID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		entry := el.Value.(*locatorCacheEntry)
		if entry.key.uid == uid {
			c.order.Remove(el)
			delete(c.entries, entry.key)
		}
		el = next
	}
}

// invalidateRange drops every entry whose datum homes on rangeID under
// place. The failover router calls it when a range's ownership moves: the
// cached endpoints may belong to the dead shard, and the promoted owner
// must be re-consulted.
func (c *locatorCache) invalidateRange(place *dht.Placement, rangeID int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		entry := el.Value.(*locatorCacheEntry)
		if place.ShardOf(string(entry.key.uid)) == rangeID {
			c.order.Remove(el)
			delete(c.entries, entry.key)
		}
		el = next
	}
}

// setEpoch records the membership epoch the cache's entries resolve under.
// A bump past a previously learned epoch flushes every entry: a rebalance
// moved key ranges, so cached endpoints may point at a shard that no
// longer owns (or soon stops serving) the datum. The first learned epoch
// (0 → e) flushes nothing — the entries were resolved under that same
// membership, the client just had not seen its number yet.
func (c *locatorCache) setEpoch(e uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch != 0 && e != c.epoch {
		c.entries = make(map[locatorKey]*list.Element)
		c.order.Init()
	}
	c.epoch = e
}

// stats returns the cumulative hit and miss counts.
func (c *locatorCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
