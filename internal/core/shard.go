package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"bitdew/internal/data"
	"bitdew/internal/dht"
	"bitdew/internal/repl"
	"bitdew/internal/rpc"
)

// ShardSet is the client side of a sharded D* service plane: one Comms per
// service container, plus the consistent-hash placement (dht.Placement)
// that assigns every datum a home shard by its UID. All catalog, repository
// and scheduler state of a datum lives on its home shard, so single-datum
// calls route to one shard and batch calls fan out per shard in parallel.
//
// A ShardSet over one shard is exactly the pre-sharding client: every datum
// homes on shard 0 and the fan-out degenerates to the plain batch path. The
// set also carries a bounded client-side locator cache shared by the node's
// APIs, so repeat lookups of the same datum skip the wire entirely.
//
// Over an ELASTIC plane (unreplicated, servers built with rebalance wiring)
// the membership can change while the client runs: AddShard/DrainShard
// commit a new address list at a bumped epoch. The set then swaps in a new
// immutable view — reusing the connections of unchanged shards, flushing
// the locator cache — and the call paths retry not-owner refusals through a
// refresh, so a rebalance is invisible to the application.
type ShardSet struct {
	mu   sync.Mutex
	view *shardView

	cache *locatorCache
	// router, when non-nil, makes the shards slots RANGE slots over a
	// replicated plane: slot i forwards to whichever shard currently owns
	// range i, failing over when it dies (see failover.go). Nil over an
	// unreplicated plane, where slot i IS shard i.
	router *failoverRouter

	// dial, when non-nil, marks the plane elastic: it builds the connection
	// of a shard that joined after connect time. Nil sets (local Comms,
	// replicated planes) never change membership.
	dial func(addr string) *Comms
	// orphans holds connections dropped from the view by a membership
	// change; they stay open (in-flight calls, stale-locator reads against
	// a drained shard) until Close.
	orphans    []*Comms
	refreshing bool
	closed     bool
	lastPoll   time.Time
	pollIdx    int
	pollOff    bool
}

// shardView is one immutable membership view: every call path captures a
// view once and works against it, so a concurrent membership swap can never
// tear a fan-out between two placements.
type shardView struct {
	epoch  uint64
	addrs  []string
	shards []*Comms
	place  *dht.Placement
}

// epochPollPeriod throttles the node heartbeat's membership poll: at most
// one tiny ring/Members frame per period, round-robin across shards.
const epochPollPeriod = 500 * time.Millisecond

// Elastic retry budget: a rebalance cutover-to-commit window is
// milliseconds, so a handful of refresh-and-retry passes rides any one
// membership change; the backoff keeps a confused client from hammering.
const (
	elasticRetryPasses  = 10
	elasticRetryBackoff = 200 * time.Millisecond
)

// ShardOption configures ConnectSharded.
type ShardOption func(*shardOptions)

type shardOptions struct {
	replicas int
}

// WithReplicas tells the client the plane's replication factor R (from its
// -replicas flag or the ring membership table). With R > 1 every range slot
// routes around dead shards: calls failing at the transport level or
// refused as not-owner are retried against the range's promoted successor.
// Deadline errors are never retried — the call may have executed.
func WithReplicas(r int) ShardOption {
	return func(o *shardOptions) { o.replicas = r }
}

// ParseMembership splits a comma-separated shard address list, trimming
// blanks and dropping duplicate addresses (keeping the first occurrence —
// a doubled address would give one host two placement slots and split its
// data across phantom shards). The membership list is the placement
// contract (its order decides every datum's home shard), so every client
// and server must parse it the same way — this is the one parser they all
// share.
func ParseMembership(s string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" && !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// ConnectSharded dials every shard of a service plane over TCP, in the
// given membership order — the order is the placement contract, so every
// client (and the shards' own tooling) must use the same list. Each
// connection reconnects itself like Connect's. A shard that is down AT
// CONNECT TIME does not abort the join: its connection is built lazily
// (rpc.DialAutoLazy) and heals when the shard restarts, so a new client
// can attach to a degraded plane exactly as an old client rides through
// the degradation. Only a plane with EVERY shard unreachable refuses the
// connect.
//
// With WithReplicas(R>1) the connections become failover-aware range slots
// instead of fixed per-shard links (see failover.go). Without it the set is
// elastic: it follows committed AddShard/DrainShard membership changes.
func ConnectSharded(addrs []string, opts ...ShardOption) (*ShardSet, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("core: connect sharded: empty membership")
	}
	var o shardOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.replicas > len(addrs) {
		o.replicas = len(addrs)
	}
	if o.replicas > 1 {
		return connectFailover(addrs, o.replicas)
	}
	shards := make([]*Comms, 0, len(addrs))
	var dialErrs []error
	for i, addr := range addrs {
		c, err := Connect(addr)
		if err != nil {
			dialErrs = append(dialErrs, fmt.Errorf("core: connect shard %d of %d: %w", i, len(addrs), err))
			c = commsFrom(rpc.DialAutoLazy(addr, rpc.WithCallTimeout(DefaultCallTimeout)))
		}
		shards = append(shards, c)
	}
	if len(dialErrs) == len(addrs) {
		for _, s := range shards {
			s.Close()
		}
		return nil, errors.Join(dialErrs...)
	}
	set := NewShardSet(shards...)
	set.view.addrs = append([]string(nil), addrs...)
	set.dial = func(addr string) *Comms {
		return commsFrom(rpc.DialAutoLazy(addr, rpc.WithCallTimeout(DefaultCallTimeout)))
	}
	// Learn the plane's membership epoch up front (best-effort): a client
	// handed yesterday's address list converges on the committed membership
	// right here, and the locator cache learns which epoch its entries
	// resolve under so a later bump flushes them.
	set.Refresh()
	return set, nil
}

// connectFailover builds the replicated-plane client: one shared router
// over the physical shard connections, and one failoverClient-backed Comms
// per key range. Like the unreplicated connect, it only refuses when the
// whole plane is unreachable.
func connectFailover(addrs []string, replicas int) (*ShardSet, error) {
	var dialErrs []error
	reachable := false
	for i, addr := range addrs {
		c, err := rpc.Dial(addr, rpc.WithCallTimeout(failoverProbeTimeout))
		if err == nil {
			c.Close()
			reachable = true
			break
		}
		dialErrs = append(dialErrs, fmt.Errorf("core: connect shard %d of %d: %w", i, len(addrs), err))
	}
	if !reachable {
		return nil, errors.Join(dialErrs...)
	}
	router := newFailoverRouter(addrs, replicas)
	shards := make([]*Comms, len(addrs))
	for i := range shards {
		shards[i] = commsFrom(&failoverClient{r: router, rangeID: i})
	}
	set := NewShardSet(shards...)
	set.router = router
	// A promotion moves a range's rows to another physical host, so cached
	// locator endpoints of that range may now be dead — drop them and let
	// the next fetch re-resolve through the promoted owner.
	router.onReroute = func(rangeID, _ int) {
		set.cache.invalidateRange(set.currentView().place, rangeID)
	}
	return set, nil
}

// NewShardSet assembles a shard router over already-connected Comms (TCP,
// local, or mixed), in membership order.
func NewShardSet(shards ...*Comms) *ShardSet {
	if len(shards) == 0 {
		panic("core: shard set over zero shards")
	}
	return &ShardSet{
		view: &shardView{
			shards: shards,
			place:  dht.NewPlacement(len(shards)),
		},
		cache: newLocatorCache(defaultLocatorCacheSize),
	}
}

// shardSetOf wraps a single service connection as a degenerate one-shard
// set — the adapter that keeps the pre-sharding Comms constructors working.
func shardSetOf(c *Comms) *ShardSet { return NewShardSet(c) }

// currentView returns the membership view to run one operation against.
func (s *ShardSet) currentView() *shardView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.view
}

// elastic reports whether this set follows membership changes.
func (s *ShardSet) elastic() bool { return s.dial != nil && s.router == nil }

// Epoch returns the membership epoch of the current view (0 until an
// elastic plane's epoch has been learned; always 0 on static planes).
func (s *ShardSet) Epoch() uint64 { return s.currentView().epoch }

// N returns the number of shards.
func (s *ShardSet) N() int { return len(s.currentView().shards) }

// ShardOf returns the index of uid's home shard.
func (s *ShardSet) ShardOf(uid data.UID) int {
	return s.currentView().place.ShardOf(string(uid))
}

// For returns the service connection of uid's home shard.
func (s *ShardSet) For(uid data.UID) *Comms {
	v := s.currentView()
	return v.shards[v.place.ShardOf(string(uid))]
}

// Shard returns the i-th shard's connection.
func (s *ShardSet) Shard(i int) *Comms { return s.currentView().shards[i] }

// Shards returns the shard connections in membership order. The slice is
// shared; do not mutate it.
func (s *ShardSet) Shards() []*Comms { return s.currentView().shards }

// OwnerOf returns the physical shard currently serving range i: i itself on
// an unreplicated plane, possibly a promoted successor on a replicated one.
// Callers that fan out per shard use it to visit each live host once.
func (s *ShardSet) OwnerOf(i int) int {
	if s.router == nil {
		return i
	}
	return s.router.ownerOf(i)
}

// Replicated reports whether this client routes over a replicated plane.
func (s *ShardSet) Replicated() bool { return s.router != nil }

// RoundTrips sums the request frames sent to every shard.
func (s *ShardSet) RoundTrips() uint64 {
	if s.router != nil {
		// Range slots share the router's physical connections; counting
		// per-slot would double-count shared frames, so ask the router once.
		return s.router.RoundTrips()
	}
	s.mu.Lock()
	conns := append([]*Comms(nil), s.view.shards...)
	conns = append(conns, s.orphans...)
	s.mu.Unlock()
	var total uint64
	for _, c := range conns {
		total += c.RoundTrips()
	}
	return total
}

// LocatorCacheStats reports the client-side locator cache's hits and misses
// since connect; benchmarks and tests use it to show repeat lookups skip
// the wire.
func (s *ShardSet) LocatorCacheStats() (hits, misses uint64) {
	return s.cache.stats()
}

// Close releases every shard connection (including connections orphaned by
// membership changes), returning the first error.
func (s *ShardSet) Close() error {
	s.mu.Lock()
	conns := append([]*Comms(nil), s.view.shards...)
	conns = append(conns, s.orphans...)
	s.orphans = nil
	s.closed = true
	s.mu.Unlock()
	var first error
	for _, c := range conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ringTable mirrors runtime.Membership on the wire (gob decodes by field
// name); core keeps its own copy to stay independent of the runtime
// package.
type ringTable struct {
	Self     int
	Addrs    []string
	Replicas int
	Epoch    uint64
}

// membershipCall builds the ring/Members fetch for one shard connection.
func fetchRing(c *Comms) (ringTable, error) {
	var t ringTable
	calls := []*rpc.Call{rpc.NewCall("ring", "Members", struct{}{}, &t)}
	if err := c.CallBatch(calls); err != nil {
		return t, err
	}
	return t, calls[0].Err
}

// Refresh re-reads the membership table from the plane and adopts it when
// it carries a newer epoch, rebuilding the view around the new address
// list: connections of unchanged shards are reused, departed ones are
// orphaned (kept open), joined ones are dialed, and the locator cache is
// flushed. Returns true when the view changed. No-op (false) on static
// planes and while another refresh is in flight.
func (s *ShardSet) Refresh() bool {
	s.mu.Lock()
	if !s.elastic() || s.closed || s.refreshing {
		s.mu.Unlock()
		return false
	}
	s.refreshing = true
	v := s.view
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.refreshing = false
		s.mu.Unlock()
	}()
	for _, c := range v.shards {
		t, err := fetchRing(c)
		if err != nil {
			continue
		}
		return s.adoptTable(t)
	}
	return false
}

// PollEpoch is the heartbeat-path membership probe: at most once per
// epochPollPeriod it asks one shard (round-robin) for the ring table and
// adopts any newer epoch. Static planes (epoch 0) disable themselves after
// the first answer.
func (s *ShardSet) PollEpoch() {
	s.mu.Lock()
	if !s.elastic() || s.closed || s.pollOff || time.Since(s.lastPoll) < epochPollPeriod {
		s.mu.Unlock()
		return
	}
	s.lastPoll = time.Now()
	v := s.view
	idx := s.pollIdx % len(v.shards)
	s.pollIdx++
	s.mu.Unlock()
	t, err := fetchRing(v.shards[idx])
	if err != nil {
		return
	}
	if t.Epoch == 0 {
		// The plane predates elastic membership; nothing will ever change.
		s.mu.Lock()
		s.pollOff = true
		s.mu.Unlock()
		return
	}
	s.adoptTable(t)
}

// adoptTable swaps in a view built from a fetched membership table when the
// table is newer than the current view. Returns true when the view changed.
func (s *ShardSet) adoptTable(t ringTable) bool {
	if t.Epoch == 0 || len(t.Addrs) == 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.view
	if s.closed || t.Epoch <= v.epoch {
		return false
	}
	if v.epoch == 0 && sameAddrs(v.addrs, t.Addrs) {
		// First contact with an elastic plane: learn the epoch without
		// rebuilding (the view already matches) or flushing the cache.
		s.view = &shardView{epoch: t.Epoch, addrs: v.addrs, shards: v.shards, place: v.place}
		s.cache.setEpoch(t.Epoch)
		return false
	}
	shards := make([]*Comms, len(t.Addrs))
	for i, addr := range t.Addrs {
		if i < len(v.addrs) && v.addrs[i] == addr {
			shards[i] = v.shards[i]
		} else {
			shards[i] = s.dial(addr)
		}
	}
	for i, c := range v.shards {
		if i >= len(shards) || shards[i] != c {
			// Dropped from the view, not closed: in-flight calls and reads
			// against retained content on a drained shard still complete.
			s.orphans = append(s.orphans, c)
		}
	}
	s.view = &shardView{
		epoch:  t.Epoch,
		addrs:  append([]string(nil), t.Addrs...),
		shards: shards,
		place:  dht.NewPlacement(len(t.Addrs)),
	}
	s.cache.setEpoch(t.Epoch)
	return true
}

func sameAddrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// homeCall runs fn against uid's home shard. On an elastic plane a
// not-owner refusal means a rebalance moved the key mid-call: the set
// refreshes its membership view and retries against the new home, bounded
// by elasticRetryPasses. All other errors — including deadlines, which may
// have executed — return unretried.
func (s *ShardSet) homeCall(uid data.UID, fn func(c *Comms) error) error {
	var err error
	for pass := 0; pass < elasticRetryPasses; pass++ {
		if pass > 0 && !s.Refresh() {
			// The new membership has not committed yet (cutover-to-commit
			// window); give it a beat and look again.
			time.Sleep(elasticRetryBackoff)
			s.Refresh()
		}
		err = fn(s.For(uid))
		if err == nil || !s.elastic() || !repl.IsNotOwner(err) {
			return err
		}
	}
	return err
}

// retryElastic reruns an idempotent fan-out while an elastic plane answers
// not-owner — each pass re-partitions under a freshly refreshed view, so a
// batch caught mid-rebalance converges on the committed placement. attempt
// must be safe to repeat wholesale (all batch writes on this plane are
// put-overwrite idempotent).
func (s *ShardSet) retryElastic(attempt func() error) error {
	err := attempt()
	if err == nil || !s.elastic() || !repl.IsNotOwner(err) {
		return err
	}
	for pass := 1; pass < elasticRetryPasses; pass++ {
		if !s.Refresh() {
			time.Sleep(elasticRetryBackoff)
			s.Refresh()
		}
		err = attempt()
		if err == nil || !repl.IsNotOwner(err) {
			return err
		}
	}
	return err
}

// partition groups the indexes 0..n-1 by the home shard of uidAt(i) under
// this view, preserving order inside each group. Only shards that receive
// at least one index appear in the map.
func (v *shardView) partition(n int, uidAt func(int) data.UID) map[int][]int {
	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		shard := v.place.ShardOf(string(uidAt(i)))
		groups[shard] = append(groups[shard], i)
	}
	return groups
}

// eachShard runs fn once per shard group, concurrently when more than one
// shard is involved, and joins the per-shard errors. fn receives the shard's
// connection and the (ordered) indexes homed on it. Groups must come from
// the same view's partition, so indexes and connections agree.
func (v *shardView) eachShard(groups map[int][]int, fn func(shard int, c *Comms, idx []int) error) error {
	if len(groups) == 0 {
		return nil
	}
	if len(groups) == 1 {
		for shard, idx := range groups {
			return fn(shard, v.shards[shard], idx)
		}
	}
	errs := make([]error, 0, len(groups))
	ch := make(chan error, len(groups))
	for shard, idx := range groups {
		go func(shard int, idx []int) {
			ch <- fn(shard, v.shards[shard], idx)
		}(shard, idx)
	}
	for range groups {
		if err := <-ch; err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
