package core

import (
	"errors"
	"fmt"
	"strings"

	"bitdew/internal/data"
	"bitdew/internal/dht"
	"bitdew/internal/rpc"
)

// ShardSet is the client side of a sharded D* service plane: one Comms per
// service container, plus the consistent-hash placement (dht.Placement)
// that assigns every datum a home shard by its UID. All catalog, repository
// and scheduler state of a datum lives on its home shard, so single-datum
// calls route to one shard and batch calls fan out per shard in parallel.
//
// A ShardSet over one shard is exactly the pre-sharding client: every datum
// homes on shard 0 and the fan-out degenerates to the plain batch path. The
// set also carries a bounded client-side locator cache shared by the node's
// APIs, so repeat lookups of the same datum skip the wire entirely.
type ShardSet struct {
	shards []*Comms
	place  *dht.Placement
	cache  *locatorCache
	// router, when non-nil, makes the shards slots RANGE slots over a
	// replicated plane: slot i forwards to whichever shard currently owns
	// range i, failing over when it dies (see failover.go). Nil over an
	// unreplicated plane, where slot i IS shard i.
	router *failoverRouter
}

// ShardOption configures ConnectSharded.
type ShardOption func(*shardOptions)

type shardOptions struct {
	replicas int
}

// WithReplicas tells the client the plane's replication factor R (from its
// -replicas flag or the ring membership table). With R > 1 every range slot
// routes around dead shards: calls failing at the transport level or
// refused as not-owner are retried against the range's promoted successor.
// Deadline errors are never retried — the call may have executed.
func WithReplicas(r int) ShardOption {
	return func(o *shardOptions) { o.replicas = r }
}

// ParseMembership splits a comma-separated shard address list, trimming
// blanks. The membership list is the placement contract (its order decides
// every datum's home shard), so every client and server must parse it the
// same way — this is the one parser they all share.
func ParseMembership(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// ConnectSharded dials every shard of a service plane over TCP, in the
// given membership order — the order is the placement contract, so every
// client (and the shards' own tooling) must use the same list. Each
// connection reconnects itself like Connect's. A shard that is down AT
// CONNECT TIME does not abort the join: its connection is built lazily
// (rpc.DialAutoLazy) and heals when the shard restarts, so a new client
// can attach to a degraded plane exactly as an old client rides through
// the degradation. Only a plane with EVERY shard unreachable refuses the
// connect.
//
// With WithReplicas(R>1) the connections become failover-aware range slots
// instead of fixed per-shard links (see failover.go).
func ConnectSharded(addrs []string, opts ...ShardOption) (*ShardSet, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("core: connect sharded: empty membership")
	}
	var o shardOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.replicas > len(addrs) {
		o.replicas = len(addrs)
	}
	if o.replicas > 1 {
		return connectFailover(addrs, o.replicas)
	}
	shards := make([]*Comms, 0, len(addrs))
	var dialErrs []error
	for i, addr := range addrs {
		c, err := Connect(addr)
		if err != nil {
			dialErrs = append(dialErrs, fmt.Errorf("core: connect shard %d of %d: %w", i, len(addrs), err))
			c = commsFrom(rpc.DialAutoLazy(addr, rpc.WithCallTimeout(DefaultCallTimeout)))
		}
		shards = append(shards, c)
	}
	if len(dialErrs) == len(addrs) {
		for _, s := range shards {
			s.Close()
		}
		return nil, errors.Join(dialErrs...)
	}
	return NewShardSet(shards...), nil
}

// connectFailover builds the replicated-plane client: one shared router
// over the physical shard connections, and one failoverClient-backed Comms
// per key range. Like the unreplicated connect, it only refuses when the
// whole plane is unreachable.
func connectFailover(addrs []string, replicas int) (*ShardSet, error) {
	var dialErrs []error
	reachable := false
	for i, addr := range addrs {
		c, err := rpc.Dial(addr, rpc.WithCallTimeout(failoverProbeTimeout))
		if err == nil {
			c.Close()
			reachable = true
			break
		}
		dialErrs = append(dialErrs, fmt.Errorf("core: connect shard %d of %d: %w", i, len(addrs), err))
	}
	if !reachable {
		return nil, errors.Join(dialErrs...)
	}
	router := newFailoverRouter(addrs, replicas)
	shards := make([]*Comms, len(addrs))
	for i := range shards {
		shards[i] = commsFrom(&failoverClient{r: router, rangeID: i})
	}
	set := NewShardSet(shards...)
	set.router = router
	// A promotion moves a range's rows to another physical host, so cached
	// locator endpoints of that range may now be dead — drop them and let
	// the next fetch re-resolve through the promoted owner.
	router.onReroute = func(rangeID, _ int) {
		set.cache.invalidateRange(set.place, rangeID)
	}
	return set, nil
}

// NewShardSet assembles a shard router over already-connected Comms (TCP,
// local, or mixed), in membership order.
func NewShardSet(shards ...*Comms) *ShardSet {
	if len(shards) == 0 {
		panic("core: shard set over zero shards")
	}
	return &ShardSet{
		shards: shards,
		place:  dht.NewPlacement(len(shards)),
		cache:  newLocatorCache(defaultLocatorCacheSize),
	}
}

// shardSetOf wraps a single service connection as a degenerate one-shard
// set — the adapter that keeps the pre-sharding Comms constructors working.
func shardSetOf(c *Comms) *ShardSet { return NewShardSet(c) }

// N returns the number of shards.
func (s *ShardSet) N() int { return len(s.shards) }

// ShardOf returns the index of uid's home shard.
func (s *ShardSet) ShardOf(uid data.UID) int { return s.place.ShardOf(string(uid)) }

// For returns the service connection of uid's home shard.
func (s *ShardSet) For(uid data.UID) *Comms { return s.shards[s.ShardOf(uid)] }

// Shard returns the i-th shard's connection.
func (s *ShardSet) Shard(i int) *Comms { return s.shards[i] }

// Shards returns the shard connections in membership order. The slice is
// shared; do not mutate it.
func (s *ShardSet) Shards() []*Comms { return s.shards }

// OwnerOf returns the physical shard currently serving range i: i itself on
// an unreplicated plane, possibly a promoted successor on a replicated one.
// Callers that fan out per shard use it to visit each live host once.
func (s *ShardSet) OwnerOf(i int) int {
	if s.router == nil {
		return i
	}
	return s.router.ownerOf(i)
}

// Replicated reports whether this client routes over a replicated plane.
func (s *ShardSet) Replicated() bool { return s.router != nil }

// RoundTrips sums the request frames sent to every shard.
func (s *ShardSet) RoundTrips() uint64 {
	if s.router != nil {
		// Range slots share the router's physical connections; counting
		// per-slot would double-count shared frames, so ask the router once.
		return s.router.RoundTrips()
	}
	var total uint64
	for _, c := range s.shards {
		total += c.RoundTrips()
	}
	return total
}

// LocatorCacheStats reports the client-side locator cache's hits and misses
// since connect; benchmarks and tests use it to show repeat lookups skip
// the wire.
func (s *ShardSet) LocatorCacheStats() (hits, misses uint64) {
	return s.cache.stats()
}

// Close releases every shard connection, returning the first error.
func (s *ShardSet) Close() error {
	var first error
	for _, c := range s.shards {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// partition groups the indexes 0..n-1 by the home shard of uidAt(i),
// preserving order inside each group. Only shards that receive at least one
// index appear in the map.
func (s *ShardSet) partition(n int, uidAt func(int) data.UID) map[int][]int {
	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		shard := s.ShardOf(uidAt(i))
		groups[shard] = append(groups[shard], i)
	}
	return groups
}

// eachShard runs fn once per shard group, concurrently when more than one
// shard is involved, and joins the per-shard errors. fn receives the shard's
// connection and the (ordered) indexes homed on it.
func (s *ShardSet) eachShard(groups map[int][]int, fn func(shard int, c *Comms, idx []int) error) error {
	if len(groups) == 0 {
		return nil
	}
	if len(groups) == 1 {
		for shard, idx := range groups {
			return fn(shard, s.shards[shard], idx)
		}
	}
	errs := make([]error, 0, len(groups))
	ch := make(chan error, len(groups))
	for shard, idx := range groups {
		go func(shard int, idx []int) {
			ch <- fn(shard, s.shards[shard], idx)
		}(shard, idx)
	}
	for range groups {
		if err := <-ch; err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
