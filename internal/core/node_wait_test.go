package core

import (
	"strings"
	"testing"
	"time"

	"bitdew/internal/catalog"
	"bitdew/internal/db"
	"bitdew/internal/repository"
	"bitdew/internal/rpc"
	"bitdew/internal/scheduler"
	"bitdew/internal/transfer"
)

// newWaitTestNode builds a node against a minimal in-process service plane
// (white-box: the test needs the unexported waitTimeout and inflight).
func newWaitTestNode(t *testing.T) *Node {
	t.Helper()
	mux := rpc.NewMux()
	catalog.NewService(db.NewRowStore()).Mount(mux)
	repository.NewService(repository.NewMemBackend()).Mount(mux)
	transfer.NewService().Mount(mux)
	scheduler.New().Mount(mux)
	n, err := NewNode(NodeConfig{Host: "wait-test", Comms: ConnectLocal(mux)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	return n
}

// TestSyncWaitBounded is the regression test for the rpcdeadline finding on
// SyncWait: its in-flight poll loop used to spin forever, so one wedged
// transfer hung every caller. It must now fail within the wait timeout,
// naming the stuck work.
func TestSyncWaitBounded(t *testing.T) {
	n := newWaitTestNode(t)
	n.waitTimeout = 30 * time.Millisecond

	// A transfer that never finishes: the inflight entry is planted and
	// nothing will ever clear it.
	n.mu.Lock()
	n.inflight["wedged-datum"] = true
	n.mu.Unlock()

	start := time.Now()
	err := n.SyncWait(1)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("SyncWait returned nil with a transfer permanently in flight")
	}
	if !strings.Contains(err.Error(), "in flight") {
		t.Fatalf("SyncWait error = %v, want it to name the in-flight transfer", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("SyncWait took %v to give up, want ~30ms", elapsed)
	}

	// Once the transfer clears, the same node syncs fine.
	n.mu.Lock()
	delete(n.inflight, "wedged-datum")
	n.mu.Unlock()
	if err := n.SyncWait(1); err != nil {
		t.Fatalf("SyncWait after the transfer cleared: %v", err)
	}
}
