// Package core provides BitDew's three programming interfaces (paper §3.3):
//
//   - BitDew: create data slots in the virtual data space, put and get
//     content, search and delete data;
//   - ActiveData: attach attributes, schedule and pin data, and react to
//     data life-cycle events through callbacks;
//   - TransferManager: non-blocking concurrent transfers, probing, waiting
//     and barriers.
//
// It also provides Node, the volatile-host runtime that periodically pulls
// the Data Scheduler (the classical Desktop-Grid pull model), synchronizes
// the local cache against the returned set, downloads newly assigned data
// out-of-band and fires life-cycle events.
package core

import (
	"fmt"
	"time"

	"bitdew/internal/catalog"
	"bitdew/internal/repository"
	"bitdew/internal/rpc"
	"bitdew/internal/scheduler"
	"bitdew/internal/transfer"
)

// Comms bundles typed clients to the four runtime services — the Go
// analogue of the paper's ComWorld.getMultipleComms(host, "RMI", port,
// "dc", "dr", "dt", "ds"). In a distributed setup each service may live on
// a different host; instantiate Comms per pool as the paper recommends.
//
// The request path is batch-first: all four clients share one pipelined
// connection, and CallBatch ships several logical calls — to the same
// service or across services — in a single round trip. The batch APIs
// (BitDew.PutAll / CreateDataBatch / FetchAll, ActiveData.ScheduleAll, the
// Node's delta heartbeat) are built on it; the single-datum APIs are thin
// wrappers over the same path, so prefer the batch forms whenever N > 1
// data move together.
type Comms struct {
	DC *catalog.Client
	DR *repository.Client
	DT *transfer.Client
	DS *scheduler.Client

	underlying []rpc.Client
}

// DefaultCallTimeout bounds every call made over a Connect*-built
// connection. A service host that stops answering without closing the
// connection (kernel keeps the TCP session alive, process is wedged) would
// otherwise block the caller forever — outside the reconnect layer's reach,
// which only sees closed connections. Generous enough for the slowest
// emulated deployment in the experiment suite, including convoyed batches
// behind WithServeLimit.
const DefaultCallTimeout = 2 * time.Minute

// Connect dials the service host at addr over TCP for all four services.
// The connection reconnects itself: when a service host bounces (the
// paper's transient fault model — an administrator restarts it), calls
// failing at the transport level are retried on a fresh connection instead
// of wedging the client, so a node rides through a D* restart. Calls are
// deadline-bounded (DefaultCallTimeout) so a wedged-but-connected host
// surfaces as rpc.ErrDeadline instead of a hang.
func Connect(addr string) (*Comms, error) {
	c, err := rpc.DialAuto(addr, rpc.WithCallTimeout(DefaultCallTimeout))
	if err != nil {
		return nil, fmt.Errorf("core: connect %s: %w", addr, err)
	}
	return commsFrom(c), nil
}

// ConnectWithLatency dials addr injecting a per-call latency, used to
// emulate wide-area deployments from one machine. Reconnects and
// deadline-bounds calls like Connect.
func ConnectWithLatency(addr string, latency time.Duration) (*Comms, error) {
	c, err := rpc.DialAuto(addr, rpc.WithCallLatency(latency), rpc.WithCallTimeout(DefaultCallTimeout))
	if err != nil {
		return nil, fmt.Errorf("core: connect %s: %w", addr, err)
	}
	return commsFrom(c), nil
}

// ConnectLocal attaches to services mounted on an in-process Mux (the
// paper's "local" configuration where a function call replaces the RMI).
func ConnectLocal(m *rpc.Mux) *Comms {
	return commsFrom(rpc.NewLocalClient(m, 0))
}

func commsFrom(c rpc.Client) *Comms {
	return &Comms{
		DC: catalog.NewClient(c),
		DR: repository.NewClient(c),
		// The DT control plane is called concurrently by every in-flight
		// transfer; a coalescer merges those reports into shared batch
		// frames. The other services stay on the bare (still pipelined)
		// client: their calls are latency-sensitive and sequential.
		DT:         transfer.NewClient(rpc.NewCoalescer(c)),
		DS:         scheduler.NewClient(c),
		underlying: []rpc.Client{c},
	}
}

// CallBatch ships several logical calls — typed-client Call builders such
// as scheduler.Client.ScheduleCall or catalog.Client.DeleteCall — over the
// shared connection in one round trip, preserving per-call errors.
func (c *Comms) CallBatch(calls []*rpc.Call) error {
	return rpc.CallBatch(c.underlying[0], calls)
}

// RoundTrips sums the request frames sent over the underlying connections
// (batched calls count one frame regardless of size).
func (c *Comms) RoundTrips() uint64 {
	var total uint64
	for _, u := range c.underlying {
		if n, ok := rpc.RoundTrips(u); ok {
			total += n
		}
	}
	return total
}

// Close releases every underlying connection.
func (c *Comms) Close() error {
	var first error
	for _, u := range c.underlying {
		if err := u.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
