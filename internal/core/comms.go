// Package core provides BitDew's three programming interfaces (paper §3.3):
//
//   - BitDew: create data slots in the virtual data space, put and get
//     content, search and delete data;
//   - ActiveData: attach attributes, schedule and pin data, and react to
//     data life-cycle events through callbacks;
//   - TransferManager: non-blocking concurrent transfers, probing, waiting
//     and barriers.
//
// It also provides Node, the volatile-host runtime that periodically pulls
// the Data Scheduler (the classical Desktop-Grid pull model), synchronizes
// the local cache against the returned set, downloads newly assigned data
// out-of-band and fires life-cycle events.
package core

import (
	"fmt"
	"time"

	"bitdew/internal/catalog"
	"bitdew/internal/repository"
	"bitdew/internal/rpc"
	"bitdew/internal/scheduler"
	"bitdew/internal/transfer"
)

// Comms bundles typed clients to the four runtime services — the Go
// analogue of the paper's ComWorld.getMultipleComms(host, "RMI", port,
// "dc", "dr", "dt", "ds"). In a distributed setup each service may live on
// a different host; instantiate Comms per pool as the paper recommends.
type Comms struct {
	DC *catalog.Client
	DR *repository.Client
	DT *transfer.Client
	DS *scheduler.Client

	underlying []rpc.Client
}

// Connect dials the service host at addr over TCP for all four services.
func Connect(addr string) (*Comms, error) {
	c, err := rpc.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("core: connect %s: %w", addr, err)
	}
	return commsFrom(c), nil
}

// ConnectWithLatency dials addr injecting a per-call latency, used to
// emulate wide-area deployments from one machine.
func ConnectWithLatency(addr string, latency time.Duration) (*Comms, error) {
	c, err := rpc.Dial(addr, rpc.WithCallLatency(latency))
	if err != nil {
		return nil, fmt.Errorf("core: connect %s: %w", addr, err)
	}
	return commsFrom(c), nil
}

// ConnectLocal attaches to services mounted on an in-process Mux (the
// paper's "local" configuration where a function call replaces the RMI).
func ConnectLocal(m *rpc.Mux) *Comms {
	return commsFrom(rpc.NewLocalClient(m, 0))
}

func commsFrom(c rpc.Client) *Comms {
	return &Comms{
		DC:         catalog.NewClient(c),
		DR:         repository.NewClient(c),
		DT:         transfer.NewClient(c),
		DS:         scheduler.NewClient(c),
		underlying: []rpc.Client{c},
	}
}

// Close releases every underlying connection.
func (c *Comms) Close() error {
	var first error
	for _, u := range c.underlying {
		if err := u.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
