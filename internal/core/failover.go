package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bitdew/internal/dht"
	"bitdew/internal/repl"
	"bitdew/internal/rpc"
)

// Client-side failover routing for a replicated plane (internal/repl).
//
// Over an unreplicated plane, slot i of a ShardSet IS shard i. Over a
// replicated plane the slots become key RANGES: slot i's connection is a
// failoverClient that forwards to whichever shard currently owns range i,
// re-resolving ownership when the owner dies. The rest of the client stack
// (batch partitioning, locator cache, heartbeats) keeps addressing slots
// and never learns about failover — except that two slots may temporarily
// share one physical shard, which is why searches dedupe and heartbeats
// group by owner.
//
// The retry contract is strict: a call is re-routed only on rpc.ErrTransport
// (the reconnect layer guarantees it was never delivered) or a repl
// ownership refusal (rejected before execution). rpc.ErrDeadline is NEVER
// retried — the call may have executed, and replaying a Put/Schedule/Delete
// could double-apply it. Deadline errors surface to the caller exactly as
// they do on an unreplicated plane.

const (
	// failoverProbeTimeout bounds each ownership probe; it is the client's
	// share of the failover-latency budget.
	failoverProbeTimeout = 750 * time.Millisecond
	// failoverPromoteTimeout bounds a Promote call, which copies the whole
	// adopted range into the successor's live store.
	failoverPromoteTimeout = 30 * time.Second
	// failoverPasses bounds how many times one logical call may re-route
	// before giving up; resolvePasses bounds one resolution's probe rounds
	// (it must outlast a promotion racing in from another client).
	failoverPasses = 3
	resolvePasses  = 40
	resolveBackoff = 250 * time.Millisecond
	// failoverDialAttempts keeps the per-call reconnect budget small: the
	// router wants a dead owner to surface as ErrTransport in tens of
	// milliseconds so the probe/promote path can take over, not after the
	// multi-second budget that suits an unreplicated plane.
	failoverDialAttempts = 2
)

// failoverRouter tracks range ownership for one client and owns the
// physical per-shard connections the range slots share.
type failoverRouter struct {
	addrs    []string
	replicas int
	place    *dht.Placement
	// onReroute, when set, is told that rangeID moved to shard newOwner
	// (the ShardSet uses it to drop cached locators of the range).
	onReroute func(rangeID, newOwner int)
	// dialExtra contributes extra options to the shared per-shard dials;
	// fault-injection tests arm rpc.FaultPlans with it. Probe and Promote
	// connections are NOT armed — they model the control path, and tests
	// script the data path.
	dialExtra []rpc.DialOption

	mu      sync.Mutex
	owner   []int // owner[r] = shard currently serving range r
	clients map[int]rpc.Client
	closed  bool
}

func newFailoverRouter(addrs []string, replicas int) *failoverRouter {
	r := &failoverRouter{
		addrs:    addrs,
		replicas: replicas,
		place:    dht.NewPlacement(len(addrs)),
		owner:    make([]int, len(addrs)),
		clients:  make(map[int]rpc.Client),
	}
	for i := range r.owner {
		r.owner[i] = i
	}
	return r
}

// ownerOf returns the shard currently believed to own rangeID.
func (r *failoverRouter) ownerOf(rangeID int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.owner[rangeID]
}

// clientFor returns (building lazily) the shared connection to shard.
func (r *failoverRouter) clientFor(shard int) rpc.Client {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.clients[shard]; ok {
		return c
	}
	opts := append([]rpc.DialOption{rpc.WithCallTimeout(DefaultCallTimeout)}, r.dialExtra...)
	c := rpc.DialAutoLazyN(r.addrs[shard], failoverDialAttempts, opts...)
	r.clients[shard] = c
	return c
}

// retryableFailover reports whether err licenses re-routing: transport
// errors were never delivered and ownership refusals were rejected before
// execution. Deadline errors never qualify.
func retryableFailover(err error) bool {
	return errors.Is(err, rpc.ErrTransport) || repl.IsNotOwner(err)
}

// reroute re-resolves rangeID's owner after err and records it. It returns
// false when no owner could be established (the whole replica set is down).
func (r *failoverRouter) reroute(rangeID int, err error) bool {
	newOwner, rerr := r.resolve(rangeID)
	if rerr != nil {
		return false
	}
	r.mu.Lock()
	changed := r.owner[rangeID] != newOwner
	r.owner[rangeID] = newOwner
	r.mu.Unlock()
	if changed && r.onReroute != nil {
		r.onReroute(rangeID, newOwner)
	}
	return true
}

// resolve finds rangeID's current owner: probe the replica set for a shard
// already Serving; while a promotion is in flight anywhere, wait for it to
// resolve; if nobody serves and nothing is in flight, ask the first LIVE
// candidate to promote itself. Bounded by resolvePasses.
func (r *failoverRouter) resolve(rangeID int) (int, error) {
	cands := r.place.Successors(rangeID, r.replicas)
	for pass := 0; pass < resolvePasses; pass++ {
		promoting := false
		for _, c := range cands {
			rep, err := r.probeOwner(c, rangeID)
			if err != nil {
				continue
			}
			if rep.Serving {
				return c, nil
			}
			if rep.Promoting {
				promoting = true
			}
		}
		if !promoting {
			for _, c := range cands {
				if r.promote(c, rangeID) {
					return c, nil
				}
			}
		}
		time.Sleep(resolveBackoff)
	}
	return 0, fmt.Errorf("core: no live owner for range %d among shards %v", rangeID, cands)
}

// probeOwner asks shard c who owns rangeID on a fresh, tightly-bounded
// connection (the shared lazy client would mask death behind reconnects).
func (r *failoverRouter) probeOwner(shard, rangeID int) (repl.OwnerReply, error) {
	c, err := rpc.Dial(r.addrs[shard], rpc.WithCallTimeout(failoverProbeTimeout))
	if err != nil {
		return repl.OwnerReply{}, err
	}
	defer c.Close()
	var rep repl.OwnerReply
	err = c.Call(repl.ServiceName, "Owner", repl.OwnerArgs{Range: rangeID}, &rep)
	return rep, err
}

// promote asks shard c to take ownership of rangeID; false on refusal
// (an earlier candidate is alive — the next resolve pass will find it).
func (r *failoverRouter) promote(shard, rangeID int) bool {
	c, err := rpc.Dial(r.addrs[shard], rpc.WithCallTimeout(failoverPromoteTimeout))
	if err != nil {
		return false
	}
	defer c.Close()
	var rep repl.PromoteReply
	if err := c.Call(repl.ServiceName, "Promote", repl.PromoteArgs{Range: rangeID}, &rep); err != nil {
		return false
	}
	return rep.Promoted
}

// RoundTrips sums request frames across the physical shard connections.
func (r *failoverRouter) RoundTrips() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total uint64
	for _, c := range r.clients {
		if n, ok := rpc.RoundTrips(c); ok {
			total += n
		}
	}
	return total
}

// Close releases every physical connection (idempotent; shared by all
// range slots, so the first slot's Close does the work).
func (r *failoverRouter) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	var first error
	for _, c := range r.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// failoverClient is range slot's rpc.Client: every call forwards to the
// range's current owner and re-routes on transport or ownership errors.
type failoverClient struct {
	r       *failoverRouter
	rangeID int
}

func (f *failoverClient) Call(service, method string, args, reply any) error {
	var err error
	for pass := 0; pass < failoverPasses; pass++ {
		owner := f.r.ownerOf(f.rangeID)
		err = f.r.clientFor(owner).Call(service, method, args, reply)
		if err == nil || !retryableFailover(err) {
			return err
		}
		if !f.r.reroute(f.rangeID, err) {
			return err
		}
	}
	return err
}

// CallBatch ships the batch to the range's owner. A transport-level
// failure re-routes and replays the whole batch (ErrTransport guarantees
// none of it was delivered); per-call ownership refusals replay just the
// refused calls on the new owner, preserving the others' replies.
func (f *failoverClient) CallBatch(calls []*rpc.Call) error {
	pending := calls
	var err error
	for pass := 0; pass < failoverPasses; pass++ {
		owner := f.r.ownerOf(f.rangeID)
		err = rpc.CallBatch(f.r.clientFor(owner), pending)
		if err != nil {
			if !retryableFailover(err) {
				return err
			}
			if !f.r.reroute(f.rangeID, err) {
				return err
			}
			continue
		}
		var refused []*rpc.Call
		for _, call := range pending {
			if call.Err != nil && repl.IsNotOwner(call.Err) {
				refused = append(refused, call)
			}
		}
		if len(refused) == 0 {
			return nil
		}
		if !f.r.reroute(f.rangeID, refused[0].Err) {
			return nil // refusals stay in call.Err for the caller
		}
		pending = refused
	}
	return err
}

func (f *failoverClient) RoundTrips() uint64 {
	// Physical traffic is shared by all slots; the router reports it once
	// (ShardSet special-cases this), so slots report none themselves.
	return 0
}

func (f *failoverClient) Close() error { return f.r.Close() }
