package core_test

import (
	"fmt"
	"testing"

	"bitdew/internal/attr"
	"bitdew/internal/core"
	"bitdew/internal/data"
	"bitdew/internal/runtime"
)

// shardedHarness is a 2-shard service plane plus helpers for sharded
// clients; everything runs in-process over local Muxes except where a test
// opts into TCP.
type shardedHarness struct {
	t     *testing.T
	plane *runtime.ShardedContainer
}

func newShardedHarness(t *testing.T, shards int) *shardedHarness {
	t.Helper()
	plane, err := runtime.NewShardedContainer(runtime.ShardedConfig{
		Shards:       shards,
		DisableFTP:   true,
		DisableSwarm: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { plane.Close() })
	return &shardedHarness{t: t, plane: plane}
}

func (h *shardedHarness) connect() *core.ShardSet {
	set, err := core.ConnectSharded(h.plane.Addrs())
	if err != nil {
		h.t.Fatal(err)
	}
	h.t.Cleanup(func() { set.Close() })
	return set
}

func (h *shardedHarness) node(host string) *core.Node {
	n, err := core.NewNode(core.NodeConfig{Host: host, Shards: h.connect()})
	if err != nil {
		h.t.Fatal(err)
	}
	h.t.Cleanup(n.Stop)
	return n
}

// putWave creates and fills n data through the node, returning them with
// their contents.
func putWave(t *testing.T, n *core.Node, count int) ([]*data.Data, [][]byte) {
	t.Helper()
	names := make([]string, count)
	for i := range names {
		names[i] = fmt.Sprintf("wave-%03d", i)
	}
	ds, err := n.BitDew.CreateDataBatch(names)
	if err != nil {
		t.Fatal(err)
	}
	contents := make([][]byte, count)
	for i := range contents {
		contents[i] = []byte(fmt.Sprintf("content of %s", names[i]))
	}
	if err := n.BitDew.PutAll(ds, contents); err != nil {
		t.Fatal(err)
	}
	return ds, contents
}

// TestShardedPutAllPartitions checks a batch put lands every datum on its
// home shard and nowhere else, and that the data stay fetchable through
// the sharded client.
func TestShardedPutAllPartitions(t *testing.T) {
	h := newShardedHarness(t, 2)
	master := h.node("master")
	master.SetClientOnly(true)
	ds, contents := putWave(t, master, 16)

	set := core.NewShardSet(core.ConnectLocal(h.plane.Shard(0).Mux), core.ConnectLocal(h.plane.Shard(1).Mux))
	for i, d := range ds {
		home := set.ShardOf(d.UID)
		if _, err := h.plane.Shard(home).DC.Get(d.UID); err != nil {
			t.Fatalf("%s not on home shard %d: %v", d.Name, home, err)
		}
		if _, err := h.plane.Shard(1 - home).DC.Get(d.UID); err == nil {
			t.Fatalf("%s duplicated onto shard %d", d.Name, 1-home)
		}
		got, err := master.BitDew.GetBytes(*d)
		if err != nil {
			t.Fatalf("fetch %s: %v", d.Name, err)
		}
		if string(got) != string(contents[i]) {
			t.Fatalf("fetch %s: got %q want %q", d.Name, got, contents[i])
		}
	}
}

// TestShardedSearchMerges checks the catalog fan-out: search and ls see
// every shard's data in stable UID order.
func TestShardedSearchMerges(t *testing.T) {
	h := newShardedHarness(t, 2)
	master := h.node("master")
	master.SetClientOnly(true)
	ds, _ := putWave(t, master, 10)

	all, err := master.BitDew.AllData()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(ds) {
		t.Fatalf("AllData over 2 shards: %d data, want %d", len(all), len(ds))
	}
	for i := 1; i < len(all); i++ {
		if !(all[i-1].UID < all[i].UID) {
			t.Fatalf("AllData not in UID order at %d: %s >= %s", i, all[i-1].UID, all[i].UID)
		}
	}
	first, err := master.BitDew.SearchDataFirst(ds[3].Name)
	if err != nil {
		t.Fatal(err)
	}
	if first.UID != ds[3].UID {
		t.Fatalf("search %s found %s", ds[3].Name, first.UID)
	}
}

// TestShardedScheduleAndSync checks the scheduling path end to end over
// shards: a broadcast datum reaches a worker regardless of which shard it
// homes on, because the worker heartbeats every shard's scheduler.
func TestShardedScheduleAndSync(t *testing.T) {
	h := newShardedHarness(t, 2)
	master := h.node("master")
	master.SetClientOnly(true)
	ds, contents := putWave(t, master, 8)

	scheduled := make([]data.Data, len(ds))
	for i, d := range ds {
		scheduled[i] = *d
	}
	bcast := attr.Attribute{Name: "everywhere", Replica: attr.ReplicaAll, Protocol: "http"}
	if err := master.ActiveData.ScheduleAll(scheduled, []attr.Attribute{bcast}); err != nil {
		t.Fatal(err)
	}

	worker := h.node("worker-1")
	if err := worker.SyncWait(2); err != nil {
		t.Fatal(err)
	}
	for i, d := range ds {
		if !worker.Holds(d.UID) {
			t.Fatalf("worker missing broadcast datum %s", d.Name)
		}
		got, err := worker.Backend().Get(string(d.UID))
		if err != nil || string(got) != string(contents[i]) {
			t.Fatalf("worker content of %s: %q, %v", d.Name, got, err)
		}
	}
}

// TestShardedDeleteRoutesHome checks DeleteData cleans the datum off its
// home shard (catalog, scheduler, repository) through the sharded client.
func TestShardedDeleteRoutesHome(t *testing.T) {
	h := newShardedHarness(t, 2)
	master := h.node("master")
	master.SetClientOnly(true)
	ds, _ := putWave(t, master, 4)

	victim := ds[0]
	if err := master.BitDew.DeleteData(*victim); err != nil {
		t.Fatal(err)
	}
	set := core.NewShardSet(core.ConnectLocal(h.plane.Shard(0).Mux), core.ConnectLocal(h.plane.Shard(1).Mux))
	home := h.plane.Shard(set.ShardOf(victim.UID))
	if _, err := home.DC.Get(victim.UID); err == nil {
		t.Fatalf("%s still in home catalog after delete", victim.Name)
	}
	if home.DR.Has(victim.UID) {
		t.Fatalf("%s content still in home repository after delete", victim.Name)
	}
	survivors, err := master.BitDew.AllData()
	if err != nil {
		t.Fatal(err)
	}
	if len(survivors) != len(ds)-1 {
		t.Fatalf("%d data after delete, want %d", len(survivors), len(ds)-1)
	}
}

// TestLocatorCacheSkipsWire pins the cache contract: the second FetchAll
// of the same data answers every locator lookup from the cache — no
// lookup misses, one hit per datum. (The downloads themselves still
// produce DT monitoring traffic; the cache removes the catalog/repository
// lookup frames, which the round-trip comparison below shows.)
func TestLocatorCacheSkipsWire(t *testing.T) {
	h := newShardedHarness(t, 2)
	set := h.connect()
	node, err := core.NewNode(core.NodeConfig{Host: "client", Shards: set})
	if err != nil {
		t.Fatal(err)
	}
	node.SetClientOnly(true)
	ds, _ := putWave(t, node, 6)

	fetchable := make([]data.Data, len(ds))
	for i, d := range ds {
		fetchable[i] = *d
	}
	start := set.RoundTrips()
	if err := node.BitDew.FetchAll(fetchable, ""); err != nil {
		t.Fatal(err)
	}
	coldTrips := set.RoundTrips() - start
	hits, misses := set.LocatorCacheStats()
	if hits != 0 || misses != uint64(len(ds)) {
		t.Fatalf("first fetch: %d hits, %d misses — expected %d cold misses", hits, misses, len(ds))
	}

	before := set.RoundTrips()
	if err := node.BitDew.FetchAll(fetchable, ""); err != nil {
		t.Fatal(err)
	}
	warmTrips := set.RoundTrips() - before
	hits, misses = set.LocatorCacheStats()
	if misses != uint64(len(ds)) {
		t.Fatalf("second fetch missed the cache: %d misses total, want still %d", misses, len(ds))
	}
	if hits != uint64(len(ds)) {
		t.Fatalf("second fetch: %d cache hits for %d data", hits, len(ds))
	}
	// The warm fetch drops the 2 per-shard lookup frames; only the DT
	// monitoring traffic (whose coalescing can vary by a frame) remains,
	// so allow that one frame of jitter — the hit/miss assertions above
	// are the real cache gate.
	if warmTrips > coldTrips+1 {
		t.Fatalf("cached fetch cost %d round trips, cold fetch %d — cache saved nothing", warmTrips, coldTrips)
	}
}

// TestLocatorCacheHealsAfterRestart pins the staleness story: locators
// cached before a full plane restart point at dead protocol endpoints; the
// fetch path must invalidate, re-look-up and succeed — not strand.
func TestLocatorCacheHealsAfterRestart(t *testing.T) {
	plane, err := runtime.NewShardedContainer(runtime.ShardedConfig{
		Shards:       2,
		StateDir:     t.TempDir(),
		DisableFTP:   true,
		DisableSwarm: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer plane.Close()
	set, err := core.ConnectSharded(plane.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	node, err := core.NewNode(core.NodeConfig{Host: "client", Shards: set})
	if err != nil {
		t.Fatal(err)
	}
	node.SetClientOnly(true)
	ds, contents := putWave(t, node, 4)

	// Warm the cache, then bounce both shards: the HTTP endpoints move.
	for _, d := range ds {
		if _, err := node.BitDew.GetBytes(*d); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := plane.KillShard(i); err != nil {
			t.Fatal(err)
		}
		if err := plane.RestartShard(i); err != nil {
			t.Fatal(err)
		}
	}
	for i, d := range ds {
		got, err := node.BitDew.GetBytes(*d)
		if err != nil {
			t.Fatalf("fetch %s through stale cache: %v", d.Name, err)
		}
		if string(got) != string(contents[i]) {
			t.Fatalf("fetch %s: got %q want %q", d.Name, got, contents[i])
		}
	}
}
