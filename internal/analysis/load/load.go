// Package load parses and type-checks packages for the bitdew-vet
// analyzers without golang.org/x/tools/go/packages (the module builds
// offline; see internal/analysis). It understands three kinds of import
// paths:
//
//   - paths inside this module ("bitdew/..."): resolved against the module
//     root and type-checked recursively, results cached;
//   - fixture paths rooted at an extra GOPATH-style directory (a
//     testdata/src tree, the layout x/tools' analysistest uses): resolved
//     there first, so fixtures can ship stub "rpc"-like packages;
//   - everything else: delegated to the standard library's source
//     importer, which type-checks GOROOT packages from source — no
//     compiled export data needed.
//
// Test files (_test.go) are excluded: the invariants the suite enforces
// live in production code, and external test packages would need a second
// type-checking universe for little gain.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed, type-checked package.
type Package struct {
	// Path is the import path the package was loaded under.
	Path string
	// Dir is the directory its files were read from.
	Dir string
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types and Info are the go/types results for Files.
	Types *types.Package
	Info  *types.Info
}

// A Loader loads packages into a shared FileSet and type universe.
type Loader struct {
	Fset *token.FileSet

	moduleDir  string // absolute directory holding go.mod
	modulePath string // module path declared there
	extraRoots []string

	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// New returns a Loader for the module rooted at moduleDir (the directory
// containing go.mod). extraRoots are GOPATH-style roots — each containing
// a src/ directory — consulted before the module for import resolution;
// analysistest passes fixture testdata directories here.
func New(moduleDir string, extraRoots ...string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:       fset,
		moduleDir:  abs,
		modulePath: modPath,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}
	for _, r := range extraRoots {
		ar, err := filepath.Abs(r)
		if err != nil {
			return nil, err
		}
		l.extraRoots = append(l.extraRoots, ar)
	}
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("load: source importer unavailable")
	}
	l.std = std
	return l, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	raw, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("load: %w", err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("load: no module directive in %s", gomod)
}

// Expand resolves package patterns relative to the module root into import
// paths. Supported forms: "./..." (every package under the module), a
// "./dir[/...]" path, or a plain import path inside the module. Directories
// named testdata and hidden directories are skipped, as the go tool does.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	var out []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			paths, err := l.walkPackages(l.moduleDir)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			dir := filepath.Join(l.moduleDir, strings.TrimSuffix(pat, "/..."))
			paths, err := l.walkPackages(dir)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		case strings.HasPrefix(pat, "./"):
			rel, err := filepath.Rel(l.moduleDir, filepath.Join(l.moduleDir, pat))
			if err != nil {
				return nil, err
			}
			if rel == "." {
				add(l.modulePath)
			} else {
				add(l.modulePath + "/" + filepath.ToSlash(rel))
			}
		default:
			add(pat)
		}
	}
	return out, nil
}

// walkPackages lists the import path of every directory under root that
// holds at least one buildable non-test .go file.
func (l *Loader) walkPackages(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := l.sourceFiles(path)
		if err != nil || len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.moduleDir, path)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, l.modulePath)
		} else {
			out = append(out, l.modulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	return out, err
}

// sourceFiles lists the buildable non-test .go files of dir, honouring
// build constraints for the host platform.
func (l *Loader) sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		ok, err := ctx.MatchFile(dir, name)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, filepath.Join(dir, name))
		}
	}
	sort.Strings(out)
	return out, nil
}

// dirFor maps an import path to the directory to load it from, or "" when
// the path belongs to neither the module nor an extra root (i.e. it is a
// standard-library path).
func (l *Loader) dirFor(path string) string {
	for _, root := range l.extraRoots {
		dir := filepath.Join(root, "src", filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir
		}
	}
	if path == l.modulePath {
		return l.moduleDir
	}
	if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
		return filepath.Join(l.moduleDir, filepath.FromSlash(rest))
	}
	return ""
}

// Load type-checks the package at the given import path (module-internal
// or fixture), loading its module/fixture dependencies recursively.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %s", path)
	}
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("load: %s: not in module %s or fixture roots", path, l.modulePath)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.sourceFiles(dir)
	if err != nil {
		return nil, fmt.Errorf("load: %s: %w", path, err)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: %s: no buildable Go files in %s", path, dir)
	}
	var parsed []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(l.Fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		parsed = append(parsed, af)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: &loaderImporter{l: l},
	}
	tpkg, err := conf.Check(path, l.Fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: parsed, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// loaderImporter routes import requests: module and fixture paths go back
// through the Loader, everything else to the stdlib source importer.
type loaderImporter struct {
	l *Loader
}

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, li.l.moduleDir, 0)
}

func (li *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if li.l.dirFor(path) != "" {
		p, err := li.l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return li.l.std.ImportFrom(path, srcDir, mode)
}
