package load

import (
	"path/filepath"
	"strings"
	"testing"

	"bitdew/internal/analysis"
	"bitdew/internal/analysis/passes/deadlineprop"
	"bitdew/internal/analysis/passes/lockorder"
	"bitdew/internal/analysis/passes/splicereach"
)

// analyzeFixtureOnce runs the fact-exporting passes over the deadlineprop
// fixture with a completely fresh loader and store.
func analyzeFixtureOnce(t *testing.T, fixture string, patterns ...string) *Run {
	t.Helper()
	l, err := New(moduleRoot(t), fixture)
	if err != nil {
		t.Fatal(err)
	}
	run, err := l.Analyze([]*analysis.Analyzer{
		deadlineprop.Analyzer, lockorder.Analyzer, splicereach.Analyzer,
	}, patterns)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// TestFactSerializationDeterministic pins that two independent runs —
// fresh loaders, fresh fact stores, fresh type-checker universes —
// serialize byte-identical fact stores: the ordering guarantees of the
// dependency walk, the edge sorts and the store summary hold end to end.
func TestFactSerializationDeterministic(t *testing.T) {
	fixture := filepath.Join(moduleRoot(t), "internal", "analysis", "passes", "deadlineprop", "testdata")
	a := analyzeFixtureOnce(t, fixture, "deadlinehelp", "deadlineprop")
	b := analyzeFixtureOnce(t, fixture, "deadlinehelp", "deadlineprop")
	sa, sb := a.Facts.Summary(), b.Facts.Summary()
	if len(sa) == 0 {
		t.Fatal("no facts serialized: the fixture should export BlocksOnRPC facts")
	}
	if strings.Join(sa, "\n") != strings.Join(sb, "\n") {
		t.Errorf("fact stores differ between runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			strings.Join(sa, "\n"), strings.Join(sb, "\n"))
	}
	for _, line := range sa {
		if strings.Contains(line, "deadlinehelp.FetchOne") && strings.Contains(line, "BlocksOnRPC") {
			return
		}
	}
	t.Errorf("summary missing the cross-package BlocksOnRPC fact:\n%s", strings.Join(sa, "\n"))
}

// TestDiagnosticsDeterministic pins the diagnostic ordering contract of
// Analyze across runs on the same fixture.
func TestDiagnosticsDeterministic(t *testing.T) {
	fixture := filepath.Join(moduleRoot(t), "internal", "analysis", "passes", "lockorder", "testdata")
	a := analyzeFixtureOnce(t, fixture, "locka", "lockorder")
	b := analyzeFixtureOnce(t, fixture, "locka", "lockorder")
	render := func(r *Run) string {
		var sb strings.Builder
		for _, d := range r.Diagnostics {
			sb.WriteString(d.String())
			sb.WriteString("\n")
		}
		return sb.String()
	}
	if da, db := render(a), render(b); da != db {
		t.Errorf("diagnostics differ between runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", da, db)
	} else if !strings.Contains(da, "lock order cycle") {
		t.Errorf("expected a lock order cycle diagnostic, got:\n%s", da)
	}
}
