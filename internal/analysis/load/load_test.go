package load

import (
	"go/types"
	"path/filepath"
	"runtime"
	"testing"
)

// moduleRoot locates the repository root from this source file's position,
// so the tests work regardless of the package the test binary runs in.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Clean(filepath.Join(filepath.Dir(file), "..", "..", ".."))
}

func TestLoadModulePackage(t *testing.T) {
	l, err := New(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.Load("bitdew/internal/attr")
	if err != nil {
		t.Fatal(err)
	}
	if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
		t.Fatalf("incomplete package: %+v", p)
	}
	obj := p.Types.Scope().Lookup("Parse")
	if obj == nil {
		t.Fatal("attr.Parse not found in loaded package scope")
	}
	if _, ok := obj.(*types.Func); !ok {
		t.Fatalf("attr.Parse is %T, want *types.Func", obj)
	}
}

// TestLoadTransitive loads a package whose dependency closure spans both
// module-internal packages and the networked standard library, proving the
// split importer resolves each side correctly.
func TestLoadTransitive(t *testing.T) {
	l, err := New(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.Load("bitdew/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, imp := range p.Types.Imports() {
		if imp.Path() == "bitdew/internal/rpc" {
			found = true
		}
	}
	if !found {
		t.Fatal("core's type-checked imports do not include bitdew/internal/rpc")
	}
	// Loading again must come from cache: identical *types.Package.
	q, err := l.Load("bitdew/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	if q.Types != p.Types {
		t.Fatal("second Load returned a different types.Package (cache miss)")
	}
}

func TestExpandPatterns(t *testing.T) {
	l, err := New(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"bitdew":              false, // root package (doc.go)
		"bitdew/internal/rpc": false,
		"bitdew/cmd/bitdew":   false,
	}
	for _, p := range paths {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("Expand(./...) missing %s (got %d paths)", p, len(paths))
		}
	}

	single, err := l.Expand([]string{"./internal/attr"})
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != 1 || single[0] != "bitdew/internal/attr" {
		t.Fatalf("Expand(./internal/attr) = %v", single)
	}
}
