// Whole-program analysis driver: walks packages in dependency order so an
// analyzer's facts (analysis.Fact) are serialized — gob-encoded into the
// shared FactStore — before any importer is analyzed, exactly the flow
// x/tools' drivers implement with on-disk fact files. Dependencies that
// are not analysis targets still run every analyzer ("facts only"): their
// diagnostics are discarded but their exported facts feed the targets.
package load

import (
	"fmt"
	"sort"

	"bitdew/internal/analysis"
)

// A Run is the outcome of one Analyze call.
type Run struct {
	// Diagnostics are the findings of the target packages (the ones
	// matched by the patterns), suppression-annotated, grouped in pattern
	// order and position-sorted within each package.
	Diagnostics []analysis.Diagnostic
	// Facts is the shared store after every package ran; its Summary is
	// the deterministic rendering the determinism test pins.
	Facts *analysis.FactStore
	// Targets lists the packages diagnostics were collected for.
	Targets []*Package

	results map[string]map[*analysis.Analyzer]any
}

// ResultOf returns the Run result of one analyzer on one analyzed package
// (target or dependency), or nil. bitdew-vet -graph uses it to pull the
// callgraph analyzer's per-package graphs out of a finished run.
func (r *Run) ResultOf(pkgPath string, a *analysis.Analyzer) any {
	return r.results[pkgPath][a]
}

// Analyze expands patterns, loads the matched packages plus their
// module/fixture dependency closure, and applies the analyzers to every
// loaded package in dependency order, sharing one fact store across the
// walk. Diagnostics are kept only for pattern-matched packages.
func (l *Loader) Analyze(analyzers []*analysis.Analyzer, patterns []string) (*Run, error) {
	paths, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	targets := make(map[string]bool, len(paths))
	for _, p := range paths {
		targets[p] = true
		if _, err := l.Load(p); err != nil {
			return nil, err
		}
	}

	// Dependency-first order over every module/fixture package the
	// targets pulled in. Import lists are sorted so the walk — and with
	// it fact serialization order — is deterministic run to run.
	var order []*Package
	seen := make(map[string]bool)
	var visit func(p *Package)
	visit = func(p *Package) {
		if seen[p.Path] {
			return
		}
		seen[p.Path] = true
		imps := p.Types.Imports()
		impPaths := make([]string, 0, len(imps))
		for _, imp := range imps {
			impPaths = append(impPaths, imp.Path())
		}
		sort.Strings(impPaths)
		for _, ip := range impPaths {
			if dep, ok := l.pkgs[ip]; ok {
				visit(dep)
			}
		}
		order = append(order, p)
	}
	for _, p := range paths {
		visit(l.pkgs[p])
	}

	run := &Run{
		Facts:   analysis.NewFactStore(),
		results: make(map[string]map[*analysis.Analyzer]any, len(order)),
	}
	perPkg := make(map[string][]analysis.Diagnostic)
	for _, p := range order {
		diags, results, err := analysis.RunPackage(run.Facts, analyzers, l.Fset, p.Files, p.Types, p.Info)
		if err != nil {
			return nil, fmt.Errorf("load: analyzing %s: %w", p.Path, err)
		}
		run.results[p.Path] = results
		if targets[p.Path] {
			perPkg[p.Path] = diags
		}
	}
	for _, p := range paths {
		run.Diagnostics = append(run.Diagnostics, perPkg[p]...)
		run.Targets = append(run.Targets, l.pkgs[p])
	}
	return run, nil
}
