// Package analysis is a self-contained, dependency-free analogue of
// golang.org/x/tools/go/analysis: the substrate on which bitdew-vet's
// project-specific analyzers run. The module builds offline by design
// (ROADMAP: no third-party deps), so instead of importing x/tools this
// package re-creates the slice of its API the suite needs — Analyzer,
// Pass, Diagnostic, Facts, Requires/ResultOf — on top of go/ast and
// go/types alone.
//
// The suite exists for the same reason the runtime has a WAL and the rpc
// layer has a splice-safety gate: BitDew's promises (paper §2 — resilience
// and schedulable transfers guaranteed by the runtime, not by programmer
// discipline) only hold while a handful of cross-cutting invariants hold.
// Those invariants were previously enforced by convention and by whichever
// race the stress harness happened to trip; each analyzer in passes/ turns
// one of them into a machine-checked CI gate. See DESIGN.md "Static
// analysis & invariants".
//
// # Facts
//
// Invariants that span packages (lock acquisition order, call-timeout
// propagation through helpers, splice safety of payloads built far from
// their Register site) need analysis results to flow across package
// boundaries. Mirroring x/tools, an analyzer may attach a Fact to an
// object it declares (ExportObjectFact) or to its package
// (ExportPackageFact); the driver (analysis/load) serializes each
// package's facts with encoding/gob when the package's analysis completes
// and makes them importable (ImportObjectFact / ImportPackageFact) from
// every package analyzed later in dependency order. The gob round trip is
// mandatory, not an optimization: it guarantees facts carry only plain
// serializable data — no AST or types references that would pin a
// package's syntax in memory — and gives fact flow a deterministic,
// pinnable byte form (see load's determinism test).
package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker. Mirrors the x/tools type of
// the same name so the passes read like stock go/analysis code (and could
// be ported to the real framework wholesale if the offline constraint ever
// lifts).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //vet:ignore
	// suppressions. Lower-case, no spaces.
	Name string
	// Doc states the invariant the analyzer enforces; the first line is
	// shown by bitdew-vet -list.
	Doc string
	// Requires lists analyzers that must run on the same package first;
	// their Run results are available through Pass.ResultOf. The driver
	// runs the closure in dependency order and rejects cycles.
	Requires []*Analyzer
	// FactTypes declares the Fact types this analyzer exports or imports,
	// as zero values (conventionally pointers to zero structs). Every type
	// is registered with gob; an analyzer that touches facts without
	// declaring them here fails at export time.
	FactTypes []Fact
	// Run applies the analyzer to one package. Its first result is the
	// value exposed to dependents via Pass.ResultOf (nil when the analyzer
	// exists only for its diagnostics or facts). A non-nil error aborts
	// the whole vet run (reserved for analyzer bugs, not findings).
	Run func(*Pass) (any, error)
}

// A Fact is a serializable unit of analysis output attached to an object
// or package, visible to later analysis of importing packages. The AFact
// marker method keeps arbitrary values out of the fact store; facts must
// gob-encode (exported fields only, no AST/types references).
type Fact interface{ AFact() }

// A Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// ResultOf holds the Run results of this package's Requires closure,
	// keyed by analyzer.
	ResultOf map[*Analyzer]any

	facts *FactStore
	diags *[]Diagnostic
}

// A Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed marks a finding covered by a well-formed //vet:ignore;
	// Suppression carries its reason. Suppressed findings are kept (the
	// -json report shows them) but do not count against the exit status.
	Suppressed  bool
	Suppression string
}

// String renders the diagnostic in the file:line:col style of go vet.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportObjectFact attaches fact to obj, which must be declared by the
// package under analysis: facts flow strictly in dependency order, so a
// pass cannot annotate an imported object (the importee was analyzed
// first). The fact is gob-encoded immediately — a non-serializable fact is
// an analyzer bug surfaced at the export site.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil || obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("analysis: %s: ExportObjectFact on object %v not declared by %s",
			p.Analyzer.Name, obj, p.Pkg.Path()))
	}
	p.facts.exportObject(p.Analyzer, obj, fact)
}

// ImportObjectFact copies the fact of the given type attached to obj into
// *fact, reporting whether one exists. obj may belong to any package
// analyzed earlier (or the current one).
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.facts.importObject(p.Analyzer, obj, fact)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.facts.exportPackage(p.Analyzer, p.Pkg, fact)
}

// ImportPackageFact copies the fact of the given type attached to pkg into
// *fact, reporting whether one exists.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	return p.facts.importPackage(p.Analyzer, pkg, fact)
}

// AllPackageFacts lists every package fact exported by this analyzer so
// far, across all packages analyzed before (and including) this one, in
// deterministic package-path order. Whole-plane passes (lockorder) use it
// to union per-package graphs without re-walking the import closure.
func (p *Pass) AllPackageFacts() []PackageFact {
	return p.facts.allPackageFacts(p.Analyzer)
}

// An ObjectFact is one (object, fact) pair as recorded in the store.
type ObjectFact struct {
	Object   types.Object
	Analyzer string
	Fact     Fact
}

// A PackageFact is one (package, fact) pair as recorded in the store.
type PackageFact struct {
	Package  *types.Package
	Analyzer string
	Fact     Fact
}

// FactStore holds the facts exported while a driver walks packages in
// dependency order. Facts are stored gob-encoded (the serialized form IS
// the source of truth) and decoded on import; Summary exposes the
// deterministic rendering the load tests pin.
type FactStore struct {
	objects  map[objectFactKey][]byte
	packages map[pkgFactKey][]byte
	// objOrder/pkgOrder remember insertion objects for enumeration with
	// stable, position-independent sort keys.
	objIndex map[objectFactKey]types.Object
	pkgIndex map[pkgFactKey]*types.Package
}

type objectFactKey struct {
	analyzer string
	obj      types.Object
	factType reflect.Type
}

type pkgFactKey struct {
	analyzer string
	pkg      *types.Package
	factType reflect.Type
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{
		objects:  make(map[objectFactKey][]byte),
		packages: make(map[pkgFactKey][]byte),
		objIndex: make(map[objectFactKey]types.Object),
		pkgIndex: make(map[pkgFactKey]*types.Package),
	}
}

// registerFactTypes makes the analyzer's declared fact types known to gob.
// Registration is idempotent per concrete type.
func registerFactTypes(a *Analyzer) {
	for _, f := range a.FactTypes {
		gob.Register(f)
	}
}

func encodeFact(analyzer string, fact Fact) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&fact); err != nil {
		panic(fmt.Sprintf("analysis: %s: fact %T does not gob-encode: %v (declare it in FactTypes and keep it plain data)",
			analyzer, fact, err))
	}
	return buf.Bytes()
}

func decodeFact(raw []byte) Fact {
	var fact Fact
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&fact); err != nil {
		panic(fmt.Sprintf("analysis: stored fact does not gob-decode: %v", err))
	}
	return fact
}

func (s *FactStore) exportObject(a *Analyzer, obj types.Object, fact Fact) {
	registerFactTypes(a)
	key := objectFactKey{analyzer: a.Name, obj: obj, factType: reflect.TypeOf(fact)}
	s.objects[key] = encodeFact(a.Name, fact)
	s.objIndex[key] = obj
}

func (s *FactStore) importObject(a *Analyzer, obj types.Object, fact Fact) bool {
	registerFactTypes(a)
	raw, ok := s.objects[objectFactKey{analyzer: a.Name, obj: obj, factType: reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	copyFact(decodeFact(raw), fact)
	return true
}

func (s *FactStore) exportPackage(a *Analyzer, pkg *types.Package, fact Fact) {
	registerFactTypes(a)
	key := pkgFactKey{analyzer: a.Name, pkg: pkg, factType: reflect.TypeOf(fact)}
	s.packages[key] = encodeFact(a.Name, fact)
	s.pkgIndex[key] = pkg
}

func (s *FactStore) importPackage(a *Analyzer, pkg *types.Package, fact Fact) bool {
	registerFactTypes(a)
	raw, ok := s.packages[pkgFactKey{analyzer: a.Name, pkg: pkg, factType: reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	copyFact(decodeFact(raw), fact)
	return true
}

// copyFact copies the decoded fact value into the caller's pointer.
func copyFact(from Fact, into Fact) {
	dv := reflect.ValueOf(into)
	sv := reflect.ValueOf(from)
	if dv.Kind() != reflect.Pointer || sv.Kind() != reflect.Pointer || dv.Type() != sv.Type() {
		panic(fmt.Sprintf("analysis: fact type mismatch: stored %T, want %T", from, into))
	}
	dv.Elem().Set(sv.Elem())
}

func (s *FactStore) allPackageFacts(a *Analyzer) []PackageFact {
	var out []PackageFact
	for key, raw := range s.packages {
		if key.analyzer != a.Name {
			continue
		}
		out = append(out, PackageFact{Package: s.pkgIndex[key], Analyzer: key.analyzer, Fact: decodeFact(raw)})
	}
	sort.Slice(out, func(i, j int) bool {
		if a, b := out[i].Package.Path(), out[j].Package.Path(); a != b {
			return a < b
		}
		return fmt.Sprintf("%T", out[i].Fact) < fmt.Sprintf("%T", out[j].Fact)
	})
	return out
}

// AllObjectFacts lists every stored object fact in deterministic order
// (package path, object name, analyzer, fact type). The analysistest
// runner matches `// want fact:"re"` comments against this view.
func (s *FactStore) AllObjectFacts() []ObjectFact {
	type row struct {
		key  string
		fact ObjectFact
	}
	var rows []row
	for key, raw := range s.objects {
		obj := s.objIndex[key]
		rows = append(rows, row{
			key:  objectKey(obj) + "\x00" + key.analyzer + "\x00" + key.factType.String(),
			fact: ObjectFact{Object: obj, Analyzer: key.analyzer, Fact: decodeFact(raw)},
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	out := make([]ObjectFact, len(rows))
	for i, r := range rows {
		out[i] = r.fact
	}
	return out
}

// objectKey renders a stable, position-independent identity for an object:
// package path plus the object's qualified name (receiver-qualified for
// methods).
func objectKey(obj types.Object) string {
	if obj == nil {
		return "<nil>"
	}
	pkg := "<builtin>"
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	name := obj.Name()
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			name = types.TypeString(sig.Recv().Type(), func(p *types.Package) string { return "" }) + "." + name
		}
	}
	return pkg + "." + name
}

// Summary renders the whole store deterministically, one line per fact:
// "objectKey analyzer=FactRendering". The load determinism test pins that
// two independent runs produce byte-identical summaries.
func (s *FactStore) Summary() []string {
	var out []string
	for _, of := range s.AllObjectFacts() {
		out = append(out, fmt.Sprintf("%s %s=%v [%d bytes]",
			objectKey(of.Object), of.Analyzer, of.Fact, len(s.objects[objectFactKey{
				analyzer: of.Analyzer, obj: of.Object, factType: reflect.TypeOf(of.Fact)}])))
	}
	type prow struct{ key, line string }
	var prows []prow
	for key, raw := range s.packages {
		fact := decodeFact(raw)
		prows = append(prows, prow{
			key: s.pkgIndex[key].Path() + "\x00" + key.analyzer + "\x00" + key.factType.String(),
			line: fmt.Sprintf("package:%s %s=%v [%d bytes]",
				s.pkgIndex[key].Path(), key.analyzer, fact, len(raw)),
		})
	}
	sort.Slice(prows, func(i, j int) bool { return prows[i].key < prows[j].key })
	for _, r := range prows {
		out = append(out, r.line)
	}
	return out
}

// ignoreDirective is the suppression marker. A comment of the form
//
//	//vet:ignore <analyzer> <reason>
//
// on the flagged line (or alone on the line directly above it) silences
// that analyzer for that line. The reason is mandatory: a suppression is a
// documented design decision (e.g. a deliberately best-effort CallBatch),
// and a bare one is itself reported as a finding.
const ignoreDirective = "//vet:ignore"

// suppression is one parsed //vet:ignore comment.
type suppression struct {
	analyzer string
	reason   string
	pos      token.Position
}

// RequiresClosure flattens the analyzers plus their transitive Requires
// into execution order (dependencies first), rejecting cycles.
func RequiresClosure(analyzers []*Analyzer) ([]*Analyzer, error) {
	var order []*Analyzer
	state := make(map[*Analyzer]int) // 0 unseen, 1 visiting, 2 done
	var visit func(a *Analyzer) error
	visit = func(a *Analyzer) error {
		switch state[a] {
		case 1:
			return fmt.Errorf("analysis: Requires cycle through %s", a.Name)
		case 2:
			return nil
		}
		state[a] = 1
		for _, dep := range a.Requires {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[a] = 2
		order = append(order, a)
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// RunPackage applies the analyzers (plus their Requires closure) to one
// package, sharing facts through store: exports land in it, imports read
// from it. Returns the surviving diagnostics annotated with suppressions
// and sorted by position, plus each analyzer's Run result. The store must
// have seen the package's dependencies already — analysis/load walks
// packages in dependency order to guarantee it.
func RunPackage(store *FactStore, analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, map[*Analyzer]any, error) {
	order, err := RequiresClosure(analyzers)
	if err != nil {
		return nil, nil, err
	}
	var diags []Diagnostic
	results := make(map[*Analyzer]any)
	for _, a := range order {
		registerFactTypes(a)
		resultOf := make(map[*Analyzer]any, len(a.Requires))
		for _, dep := range a.Requires {
			resultOf[dep] = results[dep]
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			ResultOf:  resultOf,
			facts:     store,
			diags:     &diags,
		}
		res, err := a.Run(pass)
		if err != nil {
			return nil, nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
		results[a] = res
	}
	diags = applySuppressions(diags, fset, files)
	SortDiagnostics(diags)
	return diags, results, nil
}

// RunAnalyzers applies every analyzer to a single package with a fresh
// fact store and returns only unsuppressed diagnostics — the pre-facts
// entry point, kept for single-package callers with no cross-package
// analyzers in play.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	diags, _, err := RunPackage(NewFactStore(), analyzers, fset, files, pkg, info)
	if err != nil {
		return nil, err
	}
	out := diags[:0]
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out, nil
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer —
// the stable CI-diff order every driver emits.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// applySuppressions annotates diags covered by the files' //vet:ignore
// comments and appends diagnostics for malformed suppressions (missing
// reason). Suppressed diagnostics are kept — the -json report shows them
// with their reasons — but drivers exclude them from counts and text
// output.
func applySuppressions(diags []Diagnostic, fset *token.FileSet, files []*ast.File) []Diagnostic {
	// (file, line, analyzer) -> suppression
	index := make(map[string]*suppression)
	var all []*suppression
	key := func(file string, line int, analyzer string) string {
		return fmt.Sprintf("%s:%d:%s", file, line, analyzer)
	}
	// ignoreLines records which lines hold //vet:ignore comments, so a
	// stack of suppressions above one statement all reach past each other
	// to the flagged line.
	ignoreLines := make(map[string]bool) // "file:line"
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				pos := fset.Position(c.Pos())
				ignoreLines[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = true
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignoreDirective))
				name, reason, _ := strings.Cut(rest, " ")
				s := &suppression{analyzer: name, reason: strings.TrimSpace(reason), pos: pos}
				all = append(all, s)
			}
		}
	}
	for _, s := range all {
		if s.analyzer == "" || s.reason == "" {
			continue // malformed; reported below, suppresses nothing
		}
		// The suppression covers its own line (trailing comment) and the
		// next non-suppression line (comment line above the flagged
		// statement, possibly below further stacked suppressions).
		index[key(s.pos.Filename, s.pos.Line, s.analyzer)] = s
		next := s.pos.Line + 1
		for ignoreLines[fmt.Sprintf("%s:%d", s.pos.Filename, next)] {
			next++
		}
		index[key(s.pos.Filename, next, s.analyzer)] = s
	}
	for i := range diags {
		if s := index[key(diags[i].Pos.Filename, diags[i].Pos.Line, diags[i].Analyzer)]; s != nil {
			diags[i].Suppressed = true
			diags[i].Suppression = s.reason
		}
	}
	out := diags
	for _, s := range all {
		if s.analyzer == "" || s.reason == "" {
			out = append(out, Diagnostic{
				Pos:      s.pos,
				Analyzer: "suppress",
				Message:  "malformed //vet:ignore: want \"//vet:ignore <analyzer> <reason>\" with a non-empty reason",
			})
		}
	}
	return out
}
