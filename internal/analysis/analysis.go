// Package analysis is a self-contained, dependency-free analogue of
// golang.org/x/tools/go/analysis: the substrate on which bitdew-vet's
// project-specific analyzers run. The module builds offline by design
// (ROADMAP: no third-party deps), so instead of importing x/tools this
// package re-creates the small slice of its API the suite needs —
// Analyzer, Pass, Diagnostic — on top of go/ast and go/types alone.
//
// The suite exists for the same reason the runtime has a WAL and the rpc
// layer has a splice-safety gate: BitDew's promises (paper §2 — resilience
// and schedulable transfers guaranteed by the runtime, not by programmer
// discipline) only hold while a handful of cross-cutting invariants hold.
// Those invariants were previously enforced by convention and by whichever
// race the stress harness happened to trip; each analyzer in passes/ turns
// one of them into a machine-checked CI gate. See DESIGN.md "Static
// analysis & invariants".
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker. Mirrors the x/tools type of
// the same name so the passes read like stock go/analysis code (and could
// be ported to the real framework wholesale if the offline constraint ever
// lifts).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //vet:ignore
	// suppressions. Lower-case, no spaces.
	Name string
	// Doc states the invariant the analyzer enforces; the first line is
	// shown by bitdew-vet -list.
	Doc string
	// Run applies the analyzer to one package, reporting findings through
	// pass.Reportf. A non-nil error aborts the whole vet run (reserved for
	// analyzer bugs, not findings).
	Run func(*Pass) error
}

// A Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the file:line:col style of go vet.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is the suppression marker. A comment of the form
//
//	//vet:ignore <analyzer> <reason>
//
// on the flagged line (or alone on the line directly above it) silences
// that analyzer for that line. The reason is mandatory: a suppression is a
// documented design decision (e.g. a deliberately best-effort CallBatch),
// and a bare one is itself reported as a finding.
const ignoreDirective = "//vet:ignore"

// suppression is one parsed //vet:ignore comment.
type suppression struct {
	analyzer string
	reason   string
	pos      token.Position
}

// RunAnalyzers applies every analyzer to the package and returns the
// surviving diagnostics: findings on lines carrying a well-formed
// //vet:ignore for that analyzer are dropped, malformed or unused
// suppressions are themselves reported. Diagnostics come back sorted by
// position.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	diags = applySuppressions(diags, fset, files)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// applySuppressions filters diags through the files' //vet:ignore comments
// and appends diagnostics for malformed suppressions (missing reason).
func applySuppressions(diags []Diagnostic, fset *token.FileSet, files []*ast.File) []Diagnostic {
	// (file, line, analyzer) -> suppression
	index := make(map[string]*suppression)
	var all []*suppression
	key := func(file string, line int, analyzer string) string {
		return fmt.Sprintf("%s:%d:%s", file, line, analyzer)
	}
	// ignoreLines records which lines hold //vet:ignore comments, so a
	// stack of suppressions above one statement all reach past each other
	// to the flagged line.
	ignoreLines := make(map[string]bool) // "file:line"
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				pos := fset.Position(c.Pos())
				ignoreLines[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = true
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignoreDirective))
				name, reason, _ := strings.Cut(rest, " ")
				s := &suppression{analyzer: name, reason: strings.TrimSpace(reason), pos: pos}
				all = append(all, s)
			}
		}
	}
	for _, s := range all {
		if s.analyzer == "" || s.reason == "" {
			continue // malformed; reported below, suppresses nothing
		}
		// The suppression covers its own line (trailing comment) and the
		// next non-suppression line (comment line above the flagged
		// statement, possibly below further stacked suppressions).
		index[key(s.pos.Filename, s.pos.Line, s.analyzer)] = s
		next := s.pos.Line + 1
		for ignoreLines[fmt.Sprintf("%s:%d", s.pos.Filename, next)] {
			next++
		}
		index[key(s.pos.Filename, next, s.analyzer)] = s
	}
	var out []Diagnostic
	for _, d := range diags {
		if index[key(d.Pos.Filename, d.Pos.Line, d.Analyzer)] != nil {
			continue
		}
		out = append(out, d)
	}
	for _, s := range all {
		if s.analyzer == "" || s.reason == "" {
			out = append(out, Diagnostic{
				Pos:      s.pos,
				Analyzer: "suppress",
				Message:  "malformed //vet:ignore: want \"//vet:ignore <analyzer> <reason>\" with a non-empty reason",
			})
		}
	}
	return out
}
