package deadlineprop_test

import (
	"testing"

	"bitdew/internal/analysis/analysistest"
	"bitdew/internal/analysis/passes/deadlineprop"
)

// The helper package is listed first so its BlocksOnRPC facts serialize
// before the importing fixture is analyzed, exercising cross-package
// propagation.
func TestDeadlineprop(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture(t), deadlineprop.Analyzer, "deadlinehelp", "deadlineprop")
}
