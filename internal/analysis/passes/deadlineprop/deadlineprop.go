// Package deadlineprop enforces the retry half of the service plane's
// timeout discipline, interprocedurally: RPC-blocking work inside an
// unbounded `for { ... }` loop must be deadline-bounded — even when the
// blocking call hides behind helper functions, in this package or
// another.
//
// The original rpcdeadline check only recognized *direct* calls to the
// blocking surface (Call/CallBatch, rpc.Dial*, time.Sleep) inside the
// loop, so wrapping the call in a helper silently escaped the gate — and
// the helpers are exactly what the batch-first refactors multiplied
// (PutAll → fan-out → per-shard CallBatch is three frames deep). This
// pass closes the hole with a BlocksOnRPC object fact:
//
//   - a function that directly performs a blocking rpc primitive gets
//     BlocksOnRPC with the primitive as its Via;
//   - a function that (synchronously — callgraph.KindCall edges only; a
//     go'd or deferred call does not block its caller) calls a
//     BlocksOnRPC function inherits the fact with the callee prepended
//     to the chain;
//   - facts serialize between packages in dependency order, so a helper
//     in internal/transfer taints its callers in internal/mw.
//
// The loop check is the old one, generalized: an unconditional for-loop
// with no deadline facility (bounded attempt count, time budget, context
// or stop-channel select, pacing channel receive) is flagged if it calls
// anything that blocks on rpc, directly or via the fact. The diagnostic
// prints the propagation chain so the reader can see where the hidden
// blocking lives.
package deadlineprop

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"bitdew/internal/analysis"
	"bitdew/internal/analysis/astq"
	"bitdew/internal/analysis/callgraph"
)

// BlocksOnRPC marks a function that may block on the rpc surface when
// called: it performs a Call/CallBatch/Dial/Sleep itself or synchronously
// calls a function that does. Via renders the propagation chain down to
// the primitive ("fetchOne → rpc Call").
type BlocksOnRPC struct {
	Via string
}

func (*BlocksOnRPC) AFact() {}

func (f *BlocksOnRPC) String() string { return "BlocksOnRPC(" + f.Via + ")" }

var Analyzer = &analysis.Analyzer{
	Name: "deadlineprop",
	Doc: "unbounded retry loops must not block on rpc, even through helpers (BlocksOnRPC fact propagation)\n\n" +
		"Propagates a BlocksOnRPC fact up the call graph so a helper-wrapped Call/Dial/Sleep inside a " +
		"for{} loop with no deadline is flagged like a direct one; replaces rpcdeadline's direct-site-only loop check.",
	Requires:  []*analysis.Analyzer{callgraph.Analyzer},
	FactTypes: []analysis.Fact{(*BlocksOnRPC)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) (any, error) {
	graph := pass.ResultOf[callgraph.Analyzer].(*callgraph.Graph)

	// Fixpoint over the package's functions: a function blocks if any
	// synchronous call edge reaches a primitive, a local function already
	// known to block, or an imported function carrying the fact. Funcs()
	// is source-ordered, so the chain each function ends up with is
	// deterministic.
	blocks := make(map[*types.Func]string)
	for changed := true; changed; {
		changed = false
		for _, fn := range graph.Funcs() {
			if _, done := blocks[fn]; done {
				continue
			}
			for _, e := range graph.Calls(fn) {
				if e.Kind != callgraph.KindCall {
					continue
				}
				if via := calleeVia(pass, blocks, e.Callee); via != "" {
					blocks[fn] = via
					changed = true
					break
				}
			}
		}
	}
	for _, fn := range graph.Funcs() {
		if via, ok := blocks[fn]; ok {
			pass.ExportObjectFact(fn, &BlocksOnRPC{Via: via})
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if loop, ok := n.(*ast.ForStmt); ok && isUnconditional(loop) {
				checkLoop(pass, blocks, loop)
			}
			return true
		})
	}
	return nil, nil
}

// calleeVia resolves how calling fn blocks on rpc: "" when it does not.
func calleeVia(pass *analysis.Pass, blocks map[*types.Func]string, fn *types.Func) string {
	if fn == nil {
		return ""
	}
	if p := primitive(fn); p != "" {
		return p
	}
	if fn.Pkg() == pass.Pkg {
		if via, ok := blocks[fn]; ok {
			return chain(fn, via)
		}
		return ""
	}
	var fact BlocksOnRPC
	if pass.ImportObjectFact(fn, &fact) {
		return chain(fn, fact.Via)
	}
	return ""
}

// chain prepends a helper to a via chain, keeping the rendering short:
// long chains elide their middle.
func chain(fn *types.Func, via string) string {
	c := fn.Name() + " → " + via
	if parts := strings.Split(c, " → "); len(parts) > 4 {
		c = strings.Join(parts[:2], " → ") + " → … → " + parts[len(parts)-1]
	}
	return c
}

// primitive classifies fn as a directly-blocking rpc surface call,
// returning the rendering the diagnostics use ("" when it is not one).
// The set matches lockheld's deny list minus the dial/listen of package
// net (plain TCP dials outside rpc are the transport's own business).
func primitive(fn *types.Func) string {
	switch {
	case astq.IsMethodNamed(fn, "", "Call", "CallBatch"):
		return "rpc " + fn.Name()
	case astq.IsPkgFunc(fn, "rpc", "Dial"), astq.IsPkgFunc(fn, "rpc", "DialAuto"),
		astq.IsPkgFunc(fn, "rpc", "DialAutoLazy"), astq.IsPkgFunc(fn, "rpc", "CallBatch"):
		return "rpc." + fn.Name()
	case astq.IsPkgFunc(fn, "time", "Sleep"):
		return "time.Sleep polling"
	}
	return ""
}

// isUnconditional reports loops of the form `for { ... }` or `for true`.
func isUnconditional(f *ast.ForStmt) bool {
	if f.Cond == nil {
		return true
	}
	id, ok := ast.Unparen(f.Cond).(*ast.Ident)
	return ok && id.Name == "true"
}

// checkLoop flags an unconditional loop doing blocking RPC-ish work —
// directly or through BlocksOnRPC helpers — with no deadline facility in
// sight.
func checkLoop(pass *analysis.Pass, blocks map[*types.Func]string, loop *ast.ForStmt) {
	var blocking *ast.CallExpr
	var blockingWhat string
	bounded := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			return false // runs on its own goroutine/schedule
		case *ast.GoStmt, *ast.DeferStmt:
			return false // does not block this loop iteration
		case *ast.SelectStmt:
			// A select with a real receive case is a stop/timeout point.
			for _, c := range nn.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					bounded = true
				}
			}
		case *ast.UnaryExpr:
			// A bare channel receive blocks until signalled — the loop is
			// paced by a channel, not spinning on the network.
			if nn.Op == token.ARROW {
				bounded = true
			}
		case *ast.CallExpr:
			fn := astq.Callee(pass.TypesInfo, nn)
			switch {
			case isDeadlineFunc(fn):
				bounded = true
			case blocking == nil:
				if p := primitive(fn); p != "" {
					blocking, blockingWhat = nn, p
				} else if via := calleeVia(pass, blocks, fn); via != "" {
					blocking = nn
					blockingWhat = fmt.Sprintf("call to %s (blocks on rpc via %s)", funcLabel(fn), via)
				}
			}
		}
		return true
	})
	if blocking != nil && !bounded {
		pass.Reportf(blocking.Pos(),
			"%s inside an unbounded for-loop with no deadline: bound the retries (attempt budget, time.Now deadline, context or stop-channel select) so a dead peer cannot wedge this goroutine forever",
			blockingWhat)
	}
}

// funcLabel renders a callee compactly for the diagnostic.
func funcLabel(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return astq.TypeName(sig.Recv().Type()) + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// isDeadlineFunc recognizes the time/context calls that make an infinite
// loop time-bounded or cancellable.
func isDeadlineFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "After", "Since", "Until", "NewTimer":
			return true
		}
	case "context":
		// Covers ctx.Done()/Deadline()/Err() too: methods of the
		// context.Context interface resolve to package context.
		return true
	}
	return false
}
