// Package rpc is an analysistest stub of bitdew/internal/rpc (see the
// spliceiface fixture for the convention).
package rpc

import "time"

type Client interface {
	Call(service, method string, args, reply any) error
	CallBatch(calls []*Call) error
	Close() error
}

type Call struct {
	Service, Method string
	Args, Reply     any
	Err             error
}

type DialOption func()

func Dial(addr string, opts ...DialOption) (Client, error)     { return nil, nil }
func DialAuto(addr string, opts ...DialOption) (Client, error) { return nil, nil }
func DialAutoLazy(addr string, opts ...DialOption) Client      { return nil }
func WithCallTimeout(d time.Duration) DialOption               { return func() {} }
func WithCallLatency(d time.Duration) DialOption               { return func() {} }
