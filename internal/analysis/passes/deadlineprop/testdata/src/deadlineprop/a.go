// Fixture for the deadlineprop analyzer: no retries-forever loops, even
// when the blocking call hides behind helper functions — local ones or
// imported ones carrying the BlocksOnRPC fact.
package deadlineprop

import (
	"context"
	"time"

	"deadlinehelp"
	"rpc"
)

func retriesForever(c rpc.Client) { // want fact:"BlocksOnRPC\\(rpc Call\\)"
	for {
		if err := c.Call("a", "b", nil, nil); err == nil { // want "rpc Call inside an unbounded for-loop with no deadline"
			return
		}
	}
}

func pollsForever(ready func() bool) { // want fact:"BlocksOnRPC\\(time.Sleep polling\\)"
	for {
		if ready() {
			return
		}
		time.Sleep(time.Millisecond) // want "time.Sleep polling inside an unbounded for-loop with no deadline"
	}
}

func redialForever() { // want fact:"BlocksOnRPC\\(rpc.DialAuto\\)"
	for {
		if _, err := rpc.DialAuto("addr", rpc.WithCallTimeout(time.Second)); err == nil { // want "rpc.DialAuto inside an unbounded for-loop with no deadline"
			return
		}
	}
}

// fetchOne hides the blocking call one frame deep.
func fetchOne(c rpc.Client) error { // want fact:"BlocksOnRPC\\(rpc Call\\)"
	return c.Call("store", "get", nil, nil)
}

func retriesViaHelper(c rpc.Client) { // want fact:"BlocksOnRPC\\(fetchOne → rpc Call\\)"
	for {
		if fetchOne(c) == nil { // want "call to deadlineprop.fetchOne \\(blocks on rpc via fetchOne → rpc Call\\) inside an unbounded for-loop with no deadline"
			return
		}
	}
}

func retriesViaImport(c rpc.Client) { // want fact:"BlocksOnRPC\\(FetchOne → rpc Call\\)"
	for {
		if deadlinehelp.FetchOne(c) == nil { // want "call to deadlinehelp.FetchOne \\(blocks on rpc via FetchOne → rpc Call\\) inside an unbounded for-loop with no deadline"
			return
		}
	}
}

// spawnsHelper launches the helper on its own goroutine: the loop itself
// never blocks on rpc, and the fact does not propagate through go.
func spawnsHelper(c rpc.Client, stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		go fetchOne(c)
		return
	}
}

func boundedAttempts(c rpc.Client) { // want fact:"BlocksOnRPC\\(rpc Call\\)"
	for i := 0; i < 5; i++ {
		if err := c.Call("a", "b", nil, nil); err == nil {
			return
		}
	}
}

func timeBudget(c rpc.Client) { // want fact:"BlocksOnRPC\\(rpc Call\\)"
	deadline := time.Now().Add(time.Second)
	for {
		if err := c.Call("a", "b", nil, nil); err == nil {
			return
		}
		if time.Now().After(deadline) {
			return
		}
	}
}

func stopChannel(c rpc.Client, stop chan struct{}) { // want fact:"BlocksOnRPC\\(rpc Call\\)"
	for {
		select {
		case <-stop:
			return
		default:
		}
		if err := c.Call("a", "b", nil, nil); err == nil {
			return
		}
	}
}

func contextBound(ctx context.Context, c rpc.Client) { // want fact:"BlocksOnRPC\\(rpc Call\\)"
	for {
		if ctx.Err() != nil {
			return
		}
		if err := c.Call("a", "b", nil, nil); err == nil {
			return
		}
	}
}

func pacedByChannel(c rpc.Client, tick chan struct{}) { // want fact:"BlocksOnRPC\\(rpc Call\\)"
	for {
		<-tick
		_ = c.Call("a", "b", nil, nil)
	}
}

// boundedViaHelper: helper-wrapped blocking is fine inside a bounded loop.
func boundedViaHelper(c rpc.Client) { // want fact:"BlocksOnRPC\\(fetchOne → rpc Call\\)"
	for i := 0; i < 3; i++ {
		if fetchOne(c) == nil {
			return
		}
	}
}
