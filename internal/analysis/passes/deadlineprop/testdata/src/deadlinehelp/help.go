// Package deadlinehelp is a fixture dependency of the deadlineprop
// fixture: its helpers' BlocksOnRPC facts must serialize here and flow
// into the importing package.
package deadlinehelp

import "rpc"

// FetchOne blocks on one rpc round trip.
func FetchOne(c rpc.Client) error { // want fact:"BlocksOnRPC\\(rpc Call\\)"
	return c.Call("store", "get", nil, nil)
}

// Describe does no rpc work at all: no fact.
func Describe() string { return "helper package" }
