package errlost_test

import (
	"testing"

	"bitdew/internal/analysis/analysistest"
	"bitdew/internal/analysis/passes/errlost"
)

func TestErrlost(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture(t), errlost.Analyzer, "errlost")
}
