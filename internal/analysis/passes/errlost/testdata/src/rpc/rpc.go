// Package rpc is an analysistest stub of bitdew/internal/rpc (see the
// spliceiface fixture for the convention).
package rpc

type Client interface {
	Call(service, method string, args, reply any) error
	CallBatch(calls []*Call) error
	Close() error
}

type Call struct {
	Service, Method string
	Args, Reply     any
	Err             error
}

func NewCall(service, method string, args, reply any) *Call {
	return &Call{Service: service, Method: method, Args: args, Reply: reply}
}

func CallBatch(c Client, calls []*Call) error { return c.CallBatch(calls) }

func FirstError(calls []*Call) error {
	for _, call := range calls {
		if call.Err != nil {
			return call.Err
		}
	}
	return nil
}
