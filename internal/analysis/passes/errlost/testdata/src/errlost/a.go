// Fixture for the errlost analyzer: batch errors must be checked.
package errlost

import "rpc"

// BD stands in for the batch-first core APIs.
type BD struct{}

func (BD) PutAll(ds []string) error    { return nil }
func (BD) FetchAll(ds []string) error  { return nil }
func (BD) SubmitAll(ds []string) error { return nil }
func (BD) Fetch(d string) error        { return nil } // not a batch endpoint

func dropsFrameError(c rpc.Client) {
	calls := []*rpc.Call{rpc.NewCall("s", "m", nil, nil)}
	c.CallBatch(calls) // want "result of CallBatch discarded"
	_ = rpc.FirstError(calls)
}

func dropsFrameErrorBlank(c rpc.Client) {
	calls := []*rpc.Call{rpc.NewCall("s", "m", nil, nil)}
	_ = c.CallBatch(calls) // want "result of CallBatch discarded"
	_ = rpc.FirstError(calls)
}

func neverExaminesPerCall(c rpc.Client) error {
	calls := []*rpc.Call{rpc.NewCall("s", "m", nil, nil)}
	return c.CallBatch(calls) // want "per-call errors of CallBatch never examined"
}

func checksFirstError(c rpc.Client) error {
	calls := []*rpc.Call{rpc.NewCall("s", "m", nil, nil)}
	if err := c.CallBatch(calls); err != nil {
		return err
	}
	return rpc.FirstError(calls)
}

func checksEachErr(c rpc.Client) error {
	calls := []*rpc.Call{rpc.NewCall("s", "m", nil, nil)}
	if err := rpc.CallBatch(c, calls); err != nil {
		return err
	}
	for _, call := range calls {
		if call.Err != nil {
			return call.Err
		}
	}
	return nil
}

func forwardsParameterBatch(c rpc.Client, calls []*rpc.Call) error {
	// calls is owned by the caller, which does the checking.
	return c.CallBatch(calls)
}

func suppressedBestEffort(c rpc.Client) {
	calls := []*rpc.Call{rpc.NewCall("s", "m", nil, nil)}
	//vet:ignore errlost best-effort rollback; outcome deliberately ignored
	c.CallBatch(calls)
}

func endpointDrops(b BD) {
	b.PutAll(nil)       // want "error of batch endpoint PutAll dropped"
	_ = b.FetchAll(nil) // want "error of batch endpoint FetchAll dropped"
	go b.SubmitAll(nil) // want "error of batch endpoint SubmitAll dropped"
	b.Fetch("one")      // single-datum endpoint: out of scope here
}

func endpointChecked(b BD) error {
	if err := b.PutAll(nil); err != nil {
		return err
	}
	return b.FetchAll(nil)
}
