// Package errlost enforces the batch-error contract of the request path:
// a CallBatch never collapses per-call errors (each Call carries its own
// Err), so callers must actually look at them — and the frame-level error
// of a batch, or of a batch-first endpoint like PutAll, must not be
// dropped on the floor.
//
// Three rules:
//
//  1. The result of CallBatch must not be discarded (expression statement
//     or assignment to _): that error is the transport-level failure of
//     the whole frame.
//
//  2. When the calls slice handed to CallBatch is a local variable, the
//     function must examine it after the call — rpc.FirstError(calls), a
//     range over the per-call Err fields, or forwarding the slice on.
//     Building a batch, shipping it and never reading a reply or error is
//     the bug class batching made possible: every per-call failure
//     vanishes silently.
//
//  3. Errors returned by the batch-first endpoints (PutAll, FetchAll,
//     SubmitAll, ScheduleAll, RegisterBatch, AddLocatorBatch,
//     LocatorsBatch, OpenAll, CreateDataBatch) must not be discarded
//     either — these aggregate many data movements; dropping one error
//     drops N failures.
//
// Deliberately best-effort sites (rollback, delete-everywhere) carry a
// //vet:ignore errlost suppression with the design reason.
package errlost

import (
	"go/ast"
	"go/types"

	"bitdew/internal/analysis"
	"bitdew/internal/analysis/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "errlost",
	Doc: "batch errors must be checked: CallBatch results, per-call Err fields and batch-endpoint errors cannot be dropped\n\n" +
		"Per-item error slices are the batch path's contract; a dropped one silently loses N failures.",
	Run: run,
}

// batchEndpoints are the batch-first API methods whose error aggregates
// many per-datum outcomes.
var batchEndpoints = map[string]bool{
	"PutAll": true, "FetchAll": true, "SubmitAll": true, "ScheduleAll": true,
	"RegisterBatch": true, "AddLocatorBatch": true, "LocatorsBatch": true,
	"OpenAll": true, "CreateDataBatch": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkFunc(pass, fd)
			return true
		})
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := astq.Callee(pass.TypesInfo, call)
		isBatch := astq.IsMethodNamed(fn, "", "CallBatch") || astq.IsPkgFunc(fn, "rpc", "CallBatch")
		if !isBatch {
			if fn != nil && fn.Type() != nil && isDroppedErrorCall(pass, fd, call) &&
				(astq.IsMethodNamed(fn, "", keys(batchEndpoints)...) && returnsError(fn)) {
				pass.Reportf(call.Pos(),
					"error of batch endpoint %s dropped: it aggregates per-datum failures — check it or suppress with a reason",
					fn.Name())
			}
			return true
		}
		if isDroppedErrorCall(pass, fd, call) {
			pass.Reportf(call.Pos(),
				"result of %s discarded: the frame-level transport error is lost — check it (and the per-call Err fields) or suppress with a reason",
				fn.Name())
			return true
		}
		checkPerCallErrs(pass, fd, call, fn)
		return true
	})
}

// keys flattens the endpoint set for IsMethodNamed.
func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}

// isDroppedErrorCall reports whether the call's results are discarded: the
// call is a bare expression statement, or every assigned destination is
// the blank identifier.
func isDroppedErrorCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) bool {
	parent := parentStmt(fd.Body, call)
	switch p := parent.(type) {
	case *ast.ExprStmt:
		return ast.Unparen(p.X) == call
	case *ast.AssignStmt:
		if len(p.Rhs) != 1 || ast.Unparen(p.Rhs[0]) != call {
			return false
		}
		for _, lhs := range p.Lhs {
			if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
				return false
			}
		}
		return true
	case *ast.GoStmt, *ast.DeferStmt:
		return true
	}
	return false
}

// parentStmt finds the innermost statement containing the call.
func parentStmt(body *ast.BlockStmt, call *ast.CallExpr) ast.Stmt {
	var found ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || n.Pos() > call.Pos() || n.End() < call.End() {
			return false
		}
		if s, ok := n.(ast.Stmt); ok {
			switch s.(type) {
			case *ast.ExprStmt, *ast.AssignStmt, *ast.GoStmt, *ast.DeferStmt, *ast.ReturnStmt, *ast.IfStmt:
				found = s
			}
		}
		return true
	})
	return found
}

// checkPerCallErrs applies rule 2: a locally-built calls slice must be
// examined after the batch ships.
func checkPerCallErrs(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, fn *types.Func) {
	// The calls argument: last arg of either form (method CallBatch(calls)
	// or package rpc.CallBatch(client, calls)).
	if len(call.Args) == 0 {
		return
	}
	arg, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[arg]
	if obj == nil || !objDeclaredIn(obj, fd) {
		return // parameter or package-level: the caller owns the check
	}
	used := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id == arg || id.Pos() <= call.End() {
			return true
		}
		if pass.TypesInfo.Uses[id] == obj {
			used = true
		}
		return true
	})
	if !used {
		pass.Reportf(call.Pos(),
			"per-call errors of %s never examined: %s is not used after the batch ships — check each Call.Err (or rpc.FirstError) or suppress with a reason",
			fn.Name(), arg.Name)
	}
}

// objDeclaredIn reports whether obj's declaration lies inside fd's body —
// parameters (declared in the signature) don't count: a batch received
// from the caller is the caller's to check.
func objDeclaredIn(obj types.Object, fd *ast.FuncDecl) bool {
	return fd.Body != nil && obj.Pos() >= fd.Body.Pos() && obj.Pos() <= fd.Body.End()
}
