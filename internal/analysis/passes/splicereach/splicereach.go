// Package splicereach extends the wire-format gate of spliceiface across
// function and package boundaries: a value that *reaches* an rpc payload
// position through helpers, or a payload type instantiated far from its
// Register site, must still be splice-safe (no reachable interface,
// channel or func component — the condition for the splice fast path of
// internal/rpc/splice.go).
//
// spliceiface checks the literal Register/NewCall/Call sites; it is blind
// to two interprocedural escapes this pass closes with facts:
//
//   - Helper-wrapped sends. `func Send[T any](c rpc.Client, v T)` that
//     forwards v into c.Call's args position makes every Send call site a
//     payload site, in whatever package. The CarriesPayload object fact
//     marks such functions (parameter indexes whose payload type is
//     decided by the caller — type-parameter- or interface-typed ones),
//     propagated through forwarding chains; each call site then checks
//     the concrete argument type. Parameters with concrete declared
//     types need no fact: the helper's own body is a checkable payload
//     site for them (spliceiface's job).
//
//   - Cross-package construction of generic payload types. A generic
//     type registered as Envelope[Small] in its home package may be
//     constructed as Envelope[Unsafe] by any importer; the registered
//     origin carries the SpliceSafe type-fact (exported at
//     Register/NewCall/Call sites for types declared in the analyzed
//     package), and every composite literal of an instantiation is
//     checked against it. Non-generic payload types are spliceiface's
//     business at the declaration-side sites; splicereach only judges
//     instantiations, where the type argument is new information.
//
// Soundness limits (DESIGN.md "Interprocedural analysis"): payload types
// registered from a package that does not declare them cannot carry the
// fact (facts attach only to own objects, x/tools rule), and values that
// flow through non-parameter channels (struct fields, globals) are not
// tracked.
package splicereach

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"

	"bitdew/internal/analysis"
	"bitdew/internal/analysis/astq"
	"bitdew/internal/analysis/callgraph"
)

// CarriesPayload marks a function that forwards the listed parameters
// (0-based, receiver excluded) into rpc payload positions — directly into
// Call/NewCall args/reply or through another payload carrier. Only
// caller-typed parameters (type parameters, interfaces) are listed.
type CarriesPayload struct {
	Params []int
}

func (*CarriesPayload) AFact() {}

func (f *CarriesPayload) String() string { return fmt.Sprintf("CarriesPayload(%v)", f.Params) }

// SpliceSafe marks a named type observed in an rpc payload position (so
// it is — and must stay — splice-safe); At records the observing site.
// Constructions of generic instantiations are checked against it.
type SpliceSafe struct {
	At string
}

func (*SpliceSafe) AFact() {}

func (f *SpliceSafe) String() string { return "SpliceSafe(" + f.At + ")" }

var Analyzer = &analysis.Analyzer{
	Name: "splicereach",
	Doc: "rpc payloads must stay splice-safe through helpers and cross-package generic instantiation\n\n" +
		"Propagates CarriesPayload facts up forwarding chains and SpliceSafe facts onto registered " +
		"payload types, then checks helper call sites and generic constructions everywhere.",
	Requires:  []*analysis.Analyzer{callgraph.Analyzer},
	FactTypes: []analysis.Fact{(*CarriesPayload)(nil), (*SpliceSafe)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) (any, error) {
	if astq.PkgIs(pass.Pkg, "rpc") {
		// The transport itself juggles any-typed payloads by design; its
		// internals are gated by TestSpliceMatchesFreshEncoder instead.
		return nil, nil
	}
	graph := pass.ResultOf[callgraph.Analyzer].(*callgraph.Graph)

	carriers := carrierFixpoint(pass, graph)
	for _, fn := range graph.Funcs() {
		if params := carriers[fn]; len(params) > 0 {
			pass.ExportObjectFact(fn, &CarriesPayload{Params: params})
		}
	}
	exportPayloadTypes(pass)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.CallExpr:
				checkCarrierCallSite(pass, carriers, nn)
			case *ast.CompositeLit:
				checkConstruction(pass, nn)
			}
			return true
		})
	}
	return nil, nil
}

// carrierFixpoint finds, for each local function, the caller-typed
// parameters that flow into payload positions — directly or through other
// carriers (local via the fixpoint, imported via facts).
func carrierFixpoint(pass *analysis.Pass, graph *callgraph.Graph) map[*types.Func][]int {
	out := make(map[*types.Func]map[int]bool)
	for _, fn := range graph.Funcs() {
		out[fn] = make(map[int]bool)
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range graph.Funcs() {
			decl := graph.Decl(fn)
			if decl == nil || decl.Body == nil {
				continue
			}
			params := paramObjects(fn)
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, pos := range payloadArgPositions(pass, out, call) {
					if pos >= len(call.Args) {
						continue
					}
					id, ok := ast.Unparen(call.Args[pos]).(*ast.Ident)
					if !ok {
						continue
					}
					obj := pass.TypesInfo.Uses[id]
					for i, p := range params {
						if obj == p && callerTyped(p.Type()) && !out[fn][i] {
							out[fn][i] = true
							changed = true
						}
					}
				}
				return true
			})
		}
	}
	result := make(map[*types.Func][]int, len(out))
	for fn, set := range out {
		idxs := make([]int, 0, len(set))
		for i := range set {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		result[fn] = idxs
	}
	return result
}

// payloadArgPositions lists the argument indexes of call that are payload
// positions: args/reply of NewCall and Client.Call, or the carrier
// parameters of a known payload-forwarding callee.
func payloadArgPositions(pass *analysis.Pass, local map[*types.Func]map[int]bool, call *ast.CallExpr) []int {
	fn := astq.Callee(pass.TypesInfo, call)
	if fn == nil {
		return nil
	}
	switch {
	case astq.IsPkgFunc(fn, "rpc", "NewCall") && len(call.Args) == 4:
		return []int{2, 3}
	case astq.IsMethodNamed(fn, "rpc", "Call") && len(call.Args) == 4:
		return []int{2, 3}
	}
	if fn.Pkg() == pass.Pkg {
		if set, ok := local[fn]; ok && len(set) > 0 {
			idxs := make([]int, 0, len(set))
			for i := range set {
				idxs = append(idxs, i)
			}
			sort.Ints(idxs)
			return idxs
		}
		return nil
	}
	var fact CarriesPayload
	if pass.ImportObjectFact(fn, &fact) {
		return fact.Params
	}
	return nil
}

// paramObjects lists the parameter objects of fn in declaration order
// (receiver excluded).
func paramObjects(fn *types.Func) []*types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	out := make([]*types.Var, sig.Params().Len())
	for i := range out {
		out[i] = sig.Params().At(i)
	}
	return out
}

// callerTyped reports whether a parameter's payload type is decided at
// the call site: its type is (or contains) a type parameter, or is an
// interface. Concrete parameters are checkable inside the helper itself.
func callerTyped(t types.Type) bool {
	return openType(t, make(map[types.Type]bool))
}

func openType(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.TypeParam:
		return true
	case *types.Named:
		args := u.TypeArgs()
		for i := 0; i < args.Len(); i++ {
			if openType(args.At(i), seen) {
				return true
			}
		}
		return openType(u.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Interface:
		return true
	case *types.Pointer:
		return openType(u.Elem(), seen)
	case *types.Slice:
		return openType(u.Elem(), seen)
	case *types.Array:
		return openType(u.Elem(), seen)
	case *types.Map:
		return openType(u.Key(), seen) || openType(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if openType(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// exportPayloadTypes attaches the SpliceSafe fact to every named type
// declared in this package that appears in a payload position here:
// Register type arguments and the static types of NewCall/Call args.
func exportPayloadTypes(pass *analysis.Pass) {
	seen := make(map[*types.TypeName]bool)
	export := func(t types.Type, site ast.Node) {
		tn := namedOrigin(t)
		if tn == nil || tn.Pkg() != pass.Pkg || seen[tn] {
			return
		}
		seen[tn] = true
		p := pass.Fset.Position(site.Pos())
		pass.ExportObjectFact(tn, &SpliceSafe{At: fmt.Sprintf("%s:%d", p.Filename, p.Line)})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := astq.Callee(pass.TypesInfo, call)
			switch {
			case astq.IsPkgFunc(fn, "rpc", "Register"):
				if id := calleeIdent(call); id != nil {
					if inst, ok := pass.TypesInfo.Instances[id]; ok && inst.TypeArgs != nil {
						for i := 0; i < inst.TypeArgs.Len(); i++ {
							export(inst.TypeArgs.At(i), call)
						}
					}
				}
			case astq.IsPkgFunc(fn, "rpc", "NewCall") && len(call.Args) == 4,
				astq.IsMethodNamed(fn, "rpc", "Call") && len(call.Args) == 4:
				for _, arg := range call.Args[2:4] {
					if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Type != nil {
						t := tv.Type
						if ptr, ok := t.Underlying().(*types.Pointer); ok {
							t = ptr.Elem()
						}
						export(t, call)
					}
				}
			}
			return true
		})
	}
}

// checkCarrierCallSite validates the concrete argument types at a call to
// a payload-forwarding function.
func checkCarrierCallSite(pass *analysis.Pass, carriers map[*types.Func][]int, call *ast.CallExpr) {
	fn := astq.Callee(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	var params []int
	if fn.Pkg() == pass.Pkg {
		// Local carrier: the fixpoint's view (facts would say the same).
		params = carriers[fn]
	} else {
		var fact CarriesPayload
		if !pass.ImportObjectFact(fn, &fact) {
			return
		}
		params = fact.Params
	}
	for _, idx := range params {
		if idx >= len(call.Args) {
			continue
		}
		arg := call.Args[idx]
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		t := tv.Type
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		switch t.Underlying().(type) {
		case *types.Interface, *types.Basic, *types.TypeParam:
			continue // no concrete payload type to judge here
		}
		if _, ok := t.(*types.TypeParam); ok {
			continue // generic forwarding: this caller's callers are checked
		}
		if p := astq.InterfacePath(t); p != "" {
			pass.Reportf(arg.Pos(),
				"rpc payload through %s (parameter %d): type %s reaches interface-typed component at %s: it will never take the splice fast path (internal/rpc/splice.go); use concrete field types",
				funcLabel(fn), idx, astq.TypeName(t), p)
		}
	}
}

// checkConstruction validates a composite literal of an instantiated
// generic payload type.
func checkConstruction(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	t := tv.Type
	named, ok := t.(*types.Named)
	if !ok || named.TypeArgs() == nil || named.TypeArgs().Len() == 0 {
		return // only instantiations carry call-site-new information
	}
	tn := named.Origin().Obj()
	var fact SpliceSafe
	if !pass.ImportObjectFact(tn, &fact) {
		return
	}
	if p := astq.InterfacePath(t); p != "" {
		pass.Reportf(lit.Pos(),
			"construction of rpc payload type %s reaches interface-typed component at %s (payload type registered splice-safe at %s): it will never take the splice fast path (internal/rpc/splice.go); use concrete type arguments",
			astq.TypeName(t), p, fact.At)
	}
}

// namedOrigin resolves a type to its origin *types.TypeName, or nil for
// unnamed types.
func namedOrigin(t types.Type) *types.TypeName {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Origin().Obj()
}

// calleeIdent digs the callee identifier out of a (possibly explicitly
// instantiated) call expression.
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	fun := ast.Unparen(call.Fun)
	switch e := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(e.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(e.X)
	}
	switch e := fun.(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

// funcLabel renders a callee compactly for diagnostics.
func funcLabel(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return astq.TypeName(sig.Recv().Type()) + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
