package splicereach_test

import (
	"testing"

	"bitdew/internal/analysis/analysistest"
	"bitdew/internal/analysis/passes/splicereach"
)

// payload declares and registers the generic payload type (SpliceSafe
// fact) and the forwarding helpers (CarriesPayload facts); the
// splicereach fixture consumes both across the package boundary.
func TestSplicereach(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture(t), splicereach.Analyzer, "payload", "splicereach")
}
