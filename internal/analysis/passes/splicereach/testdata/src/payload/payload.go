// Package payload is a fixture dependency of the splicereach fixture: it
// declares and registers a generic payload type (SpliceSafe fact on the
// origin) and exports payload-forwarding helpers (CarriesPayload facts),
// all of which must flow into the importing package.
package payload

import "rpc"

// Envelope is the registered generic payload wrapper; every instantiation
// constructed anywhere must stay splice-safe.
type Envelope[T any] struct { // want fact:"SpliceSafe\\(.*payload.go:\\d+\\)"
	Seq  uint64
	Body T
}

// Meta is the registered reply type.
type Meta struct { // want fact:"SpliceSafe\\(.*payload.go:\\d+\\)"
	Name string
}

func Install(m *rpc.Mux) {
	rpc.Register(m, "store", "put", func(e Envelope[Meta]) (Meta, error) { return e.Body, nil })
}

// Send forwards v into the args payload position: the caller decides the
// concrete payload type, so every call site is a payload site.
func Send[T any](c rpc.Client, v T) error { // want fact:"CarriesPayload\\(\\[1\\]\\)"
	return c.Call("store", "put", v, nil)
}

// SendVia forwards through Send: the fact propagates up the chain.
func SendVia[T any](c rpc.Client, v T) error { // want fact:"CarriesPayload\\(\\[1\\]\\)"
	return Send(c, v)
}

// SendMeta's payload type is fixed here: its own Call site is the
// checkable one (spliceiface's job), so no fact and no call-site checks.
func SendMeta(c rpc.Client, m Meta) error {
	return c.Call("store", "put", m, nil)
}
