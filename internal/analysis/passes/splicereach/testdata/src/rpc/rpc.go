// Package rpc is an analysistest stub of bitdew/internal/rpc: just enough
// surface (by name and shape) for the fixtures to exercise the analyzers'
// package-suffix matching.
package rpc

type Mux struct{}

type Client interface {
	Call(service, method string, args, reply any) error
	CallBatch(calls []*Call) error
	Close() error
}

type Call struct {
	Service, Method string
	Args, Reply     any
	Err             error
}

func NewCall(service, method string, args, reply any) *Call {
	return &Call{Service: service, Method: method, Args: args, Reply: reply}
}

func Register[A, R any](m *Mux, service, method string, fn func(A) (R, error)) {}
