// Fixture for the splicereach analyzer: payload types stay splice-safe
// through helper forwarding and cross-package generic instantiation.
package splicereach

import (
	"payload"
	"rpc"
)

// Good is fully concrete: splice-safe anywhere.
type Good struct {
	Name string
}

// Evil reaches an interface: demoted to the slow path if spliced.
type Evil struct {
	Name string
	Blob any
}

func sends(c rpc.Client) {
	_ = payload.Send(c, Good{Name: "x"})
	_ = payload.Send(c, Evil{})    // want "rpc payload through payload.Send \\(parameter 1\\): type splicereach.Evil reaches interface-typed component at Blob"
	_ = payload.SendVia(c, Evil{}) // want "rpc payload through payload.SendVia \\(parameter 1\\): type splicereach.Evil reaches interface-typed component at Blob"

	// An any-typed argument carries no concrete type to judge here.
	var opaque any = Good{}
	_ = payload.Send(c, opaque)
}

// forward is a local carrier: its own callers are checked instead.
func forward[T any](c rpc.Client, v T) error { // want fact:"CarriesPayload\\(\\[1\\]\\)"
	return payload.Send(c, v)
}

func sendsViaLocal(c rpc.Client) {
	_ = forward(c, Evil{}) // want "rpc payload through splicereach.forward \\(parameter 1\\): type splicereach.Evil reaches interface-typed component at Blob"
	_ = forward(c, Good{})
}

func constructs() payload.Envelope[Evil] {
	good := payload.Envelope[Good]{Seq: 1, Body: Good{}}
	_ = good
	return payload.Envelope[Evil]{Seq: 2, Body: Evil{}} // want "construction of rpc payload type payload.Envelope\\[splicereach.Evil\\] reaches interface-typed component at Body.Blob \\(payload type registered splice-safe at .*payload.go:\\d+\\)"
}
