package lockorder_test

import (
	"testing"

	"bitdew/internal/analysis/analysistest"
	"bitdew/internal/analysis/passes/lockorder"
)

// locka contributes one direction of the cross-package cycle via its
// LockEdges package fact; the lockorder fixture closes it and carries the
// report.
func TestLockorder(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture(t), lockorder.Analyzer, "locka", "lockorder")
}
