// Fixture for the lockorder analyzer: no cycles in the module-wide mutex
// acquisition-order graph. The flagged cases close a cross-package cycle
// against locka, an ABBA cycle inside this package, and a recursive
// re-acquisition through a helper; the clean cases lock in one global
// order or hand off to another goroutine.
package lockorder

import (
	"sync"

	"locka"
)

// crossOrder acquires locka.Store.Mu while holding locka.RegMu — the
// reverse of locka.(*Store).Update, closing the cycle. The report lands
// here: this package is where the union graph first becomes cyclic.
func crossOrder(s *locka.Store) { // want fact:"Acquires\\(locka.RegMu,locka.Store.Mu\\)"
	locka.RegMu.Lock()
	s.Mu.Lock() // want "lock order cycle \\(potential deadlock\\): locka.RegMu \\(held at .*\\) → locka.Store.Mu \\(acquired at .*\\); locka.Store.Mu \\(held at .*\\) → locka.RegMu \\(acquired at .*\\)"
	s.Mu.Unlock()
	locka.RegMu.Unlock()
}

var muA sync.Mutex
var muB sync.Mutex

func abOrder() { // want fact:"Acquires\\(lockorder.muA,lockorder.muB\\)"
	muA.Lock()
	muB.Lock() // want "lock order cycle \\(potential deadlock\\): lockorder.muA \\(held at .*\\) → lockorder.muB \\(acquired at .*\\); lockorder.muB \\(held at .*\\) → lockorder.muA \\(acquired at .*\\)"
	muB.Unlock()
	muA.Unlock()
}

func baOrder() { // want fact:"Acquires\\(lockorder.muA,lockorder.muB\\)"
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

var selfMu sync.Mutex

// lockedHelper's Acquires fact makes the re-acquisition below visible.
func lockedHelper() { // want fact:"Acquires\\(lockorder.selfMu\\)"
	selfMu.Lock()
	defer selfMu.Unlock()
}

func reenters() { // want fact:"Acquires\\(lockorder.selfMu\\)"
	selfMu.Lock()
	defer selfMu.Unlock()
	lockedHelper() // want "lock order cycle \\(potential deadlock\\): lockorder.selfMu \\(held at .*\\) → lockorder.selfMu \\(acquired at .* via call to lockorder.lockedHelper\\)"
}

var order1 sync.Mutex
var order2 sync.Mutex

// hierarchyOne/hierarchyTwo acquire in the same global order: no cycle.
func hierarchyOne() { // want fact:"Acquires\\(lockorder.order1,lockorder.order2\\)"
	order1.Lock()
	order2.Lock()
	order2.Unlock()
	order1.Unlock()
}

func hierarchyTwo() { // want fact:"Acquires\\(lockorder.order1,lockorder.order2\\)"
	order1.Lock()
	defer order1.Unlock()
	order2.Lock()
	defer order2.Unlock()
}

// goWrongOrder hands the reversed acquisition to a new goroutine, which
// runs under its own stack: no order2 → order1 edge.
func goWrongOrder() { // want fact:"Acquires\\(lockorder.order2\\)"
	order2.Lock()
	go func() {
		order1.Lock()
		order1.Unlock()
	}()
	order2.Unlock()
}

// releasedBefore releases muB before taking muA: no overlap, no edge.
func releasedBefore() { // want fact:"Acquires\\(lockorder.muA,lockorder.muB\\)"
	muB.Lock()
	muB.Unlock()
	muA.Lock()
	muA.Unlock()
}
