// Package locka is a fixture dependency of the lockorder fixture: its
// lock-order edges (LockEdges package fact) and per-function Acquires
// facts must serialize here and flow into the importing package, where a
// reversed acquisition closes the cross-package cycle.
package locka

import "sync"

// RegMu guards the fixture's fake registry.
var RegMu sync.Mutex

// Store carries its own per-instance lock; all instances share the lock
// class locka.Store.Mu.
type Store struct {
	Mu sync.Mutex
	n  int
}

// Update acquires RegMu while holding the store lock: the edge
// locka.Store.Mu → locka.RegMu. No cycle exists yet in this package.
func (s *Store) Update() { // want fact:"Acquires\\(locka.RegMu,locka.Store.Mu\\)"
	s.Mu.Lock()
	RegMu.Lock()
	s.n++
	RegMu.Unlock()
	s.Mu.Unlock()
}
