// Package lockorder detects potential deadlocks across the whole module:
// it builds the mutex acquisition-order graph — "lock B was acquired
// while lock A was held" — propagates lock-acquisition sets through the
// call graph and across packages via facts, and reports every cycle in
// the union graph as a potential deadlock, printing both acquisition
// paths.
//
// Locks are classified by declaration site, lockdep-style: a struct field
// mutex is "pkg.Type.field" (every instance of core.ShardSet shares one
// class), a package-level mutex is "pkg.name", a local one is
// "pkg.func.name". Class-level aliasing is deliberate: a cycle between
// two instances of the same class (A.mu → B.mu → A.mu with A, B the same
// type) is exactly the ABBA deadlock worth hearing about, at the price of
// over-approximating self-edges on tree-shaped structures — those carry a
// //vet:ignore with the shape argument.
//
// Three fact flows make the analysis whole-plane:
//
//   - Acquires (object fact): the lock classes a function may acquire,
//     transitively through synchronous calls (callgraph.KindCall — a
//     go'd goroutine acquires under its own stack, not the caller's);
//   - LockEdges (package fact): the order edges this package's bodies
//     contribute, each with its acquisition positions;
//   - at each package, the cycle check runs over the union of every
//     LockEdges fact serialized so far (dependency order), and reports
//     only cycles containing an edge local to the current package — so a
//     cross-package cycle is reported exactly once, at the package that
//     closes it.
//
// Held-set tracking is syntactic and branch-local like lockheld's: a
// Lock/RLock as a direct statement enters the held set, Unlock/RUnlock
// leaves it, `defer mu.Unlock()` keeps it held for the rest of the body,
// and nested blocks scan with a copy. RLock shares its Lock's class:
// recursive read-locking deadlocks against a queued writer, so read
// edges are real edges.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"bitdew/internal/analysis"
	"bitdew/internal/analysis/astq"
	"bitdew/internal/analysis/callgraph"
)

// Acquires is the object fact marking the lock classes a function may
// acquire, directly or through synchronous calls.
type Acquires struct {
	Classes []string
}

func (*Acquires) AFact() {}

func (f *Acquires) String() string { return "Acquires(" + strings.Join(f.Classes, ",") + ")" }

// A LockEdge is one observed ordering: To was acquired (or a function
// acquiring it was called) while From was held.
type LockEdge struct {
	From, To string
	// FromPos/ToPos are "file:line" of the two acquisition sites; Via
	// names the callee when the To acquisition happened inside a call.
	FromPos, ToPos string
	Via            string
}

// LockEdges is the package fact carrying the order edges a package
// contributes to the module-wide graph.
type LockEdges struct {
	Edges []LockEdge
}

func (*LockEdges) AFact() {}

func (f *LockEdges) String() string {
	parts := make([]string, len(f.Edges))
	for i, e := range f.Edges {
		parts[i] = e.From + "→" + e.To
	}
	return "LockEdges(" + strings.Join(parts, ",") + ")"
}

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "no cycles in the module-wide mutex acquisition-order graph (potential deadlock)\n\n" +
		"Builds lock-order edges from held-sets propagated through the call graph and across packages " +
		"via facts; any cycle is reported once, with both acquisition paths printed.",
	Requires:  []*analysis.Analyzer{callgraph.Analyzer},
	FactTypes: []analysis.Fact{(*Acquires)(nil), (*LockEdges)(nil)},
	Run:       run,
}

// localEdge is a LockEdge still carrying its reportable position.
type localEdge struct {
	LockEdge
	pos token.Pos
}

func run(pass *analysis.Pass) (any, error) {
	graph := pass.ResultOf[callgraph.Analyzer].(*callgraph.Graph)

	// Pass 1: the transitive Acquires set of every local function.
	acq := acquiresFixpoint(pass, graph)
	for _, fn := range graph.Funcs() {
		if classes := acq[fn]; len(classes) > 0 {
			pass.ExportObjectFact(fn, &Acquires{Classes: classes})
		}
	}

	// Pass 2: order edges from held-set scans of every body.
	var edges []localEdge
	for _, fn := range graph.Funcs() {
		decl := graph.Decl(fn)
		if decl == nil || decl.Body == nil {
			continue
		}
		s := &scanner{pass: pass, acq: acq, fnName: fn.Name()}
		s.scanStmts(decl.Body.List, map[string]heldLock{})
		edges = append(edges, s.edges...)
	}
	edges = dedupe(edges)
	// Deterministic fact and report order regardless of held-map
	// iteration order during the scan.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		if edges[i].To != edges[j].To {
			return edges[i].To < edges[j].To
		}
		return edges[i].ToPos < edges[j].ToPos
	})
	if len(edges) > 0 {
		fact := &LockEdges{}
		for _, e := range edges {
			fact.Edges = append(fact.Edges, e.LockEdge)
		}
		pass.ExportPackageFact(fact)
	}

	// Pass 3: cycle check over the union of every package's edges
	// serialized so far plus this package's own.
	reportCycles(pass, edges)
	return nil, nil
}

// heldLock records one held lock class and where it was acquired.
type heldLock struct {
	pos token.Pos
}

// acquiresFixpoint computes each local function's transitive acquire set:
// direct Lock/RLock sites (outside go/defer regions) plus the sets of
// synchronously-called functions, local or imported.
func acquiresFixpoint(pass *analysis.Pass, graph *callgraph.Graph) map[*types.Func][]string {
	direct := make(map[*types.Func]map[string]bool)
	for _, fn := range graph.Funcs() {
		decl := graph.Decl(fn)
		set := make(map[string]bool)
		if decl != nil && decl.Body != nil {
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				switch nn := n.(type) {
				case *ast.GoStmt, *ast.DeferStmt:
					return false // acquired under another stack / at return
				case *ast.CallExpr:
					if recv, name := lockMethodExpr(pass.TypesInfo, nn); name == "Lock" || name == "RLock" {
						set[lockClass(pass, recv, fn.Name())] = true
					}
				}
				return true
			})
		}
		direct[fn] = set
	}
	full := make(map[*types.Func]map[string]bool)
	for fn, set := range direct {
		full[fn] = copySet(set)
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range graph.Funcs() {
			for _, e := range graph.Calls(fn) {
				if e.Kind != callgraph.KindCall {
					continue
				}
				for _, c := range calleeAcquires(pass, full, e.Callee) {
					if !full[fn][c] {
						full[fn][c] = true
						changed = true
					}
				}
			}
		}
	}
	out := make(map[*types.Func][]string, len(full))
	for fn, set := range full {
		classes := make([]string, 0, len(set))
		for c := range set {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		out[fn] = classes
	}
	return out
}

// calleeAcquires resolves the acquire set of a callee: local functions
// from the in-progress fixpoint, imported ones from their fact.
func calleeAcquires(pass *analysis.Pass, full map[*types.Func]map[string]bool, fn *types.Func) []string {
	if fn == nil {
		return nil
	}
	if fn.Pkg() == pass.Pkg {
		set := full[fn]
		classes := make([]string, 0, len(set))
		for c := range set {
			classes = append(classes, c)
		}
		return classes
	}
	var fact Acquires
	if pass.ImportObjectFact(fn, &fact) {
		return fact.Classes
	}
	return nil
}

func copySet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// scanner walks one function body tracking the held set and emitting
// order edges.
type scanner struct {
	pass   *analysis.Pass
	acq    map[*types.Func][]string
	fnName string
	edges  []localEdge
}

func (s *scanner) scanStmts(stmts []ast.Stmt, held map[string]heldLock) {
	for _, st := range stmts {
		switch stt := st.(type) {
		case *ast.ExprStmt:
			if call, ok := stt.X.(*ast.CallExpr); ok {
				if recv, name := lockMethodExpr(s.pass.TypesInfo, call); name != "" {
					class := lockClass(s.pass, recv, s.fnName)
					switch name {
					case "Lock", "RLock":
						for from, h := range held {
							s.addEdge(from, class, h.pos, call.Pos(), "")
						}
						held[class] = heldLock{pos: call.Pos()}
					case "Unlock", "RUnlock":
						delete(held, class)
					}
					continue
				}
			}
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held for the remainder —
			// exactly the region being scanned — so it does not release.
			continue
		case *ast.GoStmt:
			// The goroutine body does not run under the caller's locks.
			continue
		}
		if len(held) > 0 {
			s.callsUnderHeld(st, held)
		}
		for _, inner := range innerBlocks(st) {
			s.scanStmts(inner, copyHeld(held))
		}
	}
}

// callsUnderHeld emits edges for calls appearing directly in st (nested
// statement lists are scanned with their own held copies) whose callees
// acquire locks.
func (s *scanner) callsUnderHeld(st ast.Stmt, held map[string]heldLock) {
	shallowInspect(st, func(call *ast.CallExpr) {
		// Direct Lock/RLock in expression position (rare) — treat as an
		// acquisition edge without entering the held set.
		if recv, name := lockMethodExpr(s.pass.TypesInfo, call); name == "Lock" || name == "RLock" {
			class := lockClass(s.pass, recv, s.fnName)
			for from, h := range held {
				s.addEdge(from, class, h.pos, call.Pos(), "")
			}
			return
		}
		fn := astq.Callee(s.pass.TypesInfo, call)
		if fn == nil {
			return
		}
		for _, class := range s.calleeClasses(fn) {
			for from, h := range held {
				s.addEdge(from, class, h.pos, call.Pos(), funcLabel(fn))
			}
		}
	})
}

func (s *scanner) calleeClasses(fn *types.Func) []string {
	if fn.Pkg() == s.pass.Pkg {
		return s.acq[fn]
	}
	var fact Acquires
	if s.pass.ImportObjectFact(fn, &fact) {
		return fact.Classes
	}
	return nil
}

func (s *scanner) addEdge(from, to string, fromPos, toPos token.Pos, via string) {
	s.edges = append(s.edges, localEdge{
		LockEdge: LockEdge{
			From:    from,
			To:      to,
			FromPos: posString(s.pass.Fset, fromPos),
			ToPos:   posString(s.pass.Fset, toPos),
			Via:     via,
		},
		pos: toPos,
	})
}

func posString(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}

// dedupe keeps the first edge per (From, To) pair, preserving scan order
// so reports are deterministic.
func dedupe(edges []localEdge) []localEdge {
	seen := make(map[[2]string]bool, len(edges))
	out := edges[:0]
	for _, e := range edges {
		key := [2]string{e.From, e.To}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, e)
	}
	return out
}

// reportCycles searches the union graph (every serialized LockEdges fact
// plus this package's local edges) for cycles through a local edge and
// reports each distinct cycle once.
func reportCycles(pass *analysis.Pass, local []localEdge) {
	adj := make(map[string][]LockEdge)
	add := func(e LockEdge) {
		adj[e.From] = append(adj[e.From], e)
	}
	for _, pf := range pass.AllPackageFacts() {
		if f, ok := pf.Fact.(*LockEdges); ok && pf.Package != pass.Pkg {
			for _, e := range f.Edges {
				add(e)
			}
		}
	}
	for _, e := range local {
		add(e.LockEdge)
	}
	for from := range adj {
		es := adj[from]
		sort.Slice(es, func(i, j int) bool {
			if es[i].To != es[j].To {
				return es[i].To < es[j].To
			}
			if es[i].ToPos != es[j].ToPos {
				return es[i].ToPos < es[j].ToPos
			}
			return es[i].FromPos < es[j].FromPos
		})
	}

	reported := make(map[string]bool)
	for _, e := range local {
		path := shortestPath(adj, e.To, e.From)
		if path == nil {
			continue
		}
		cycle := append([]LockEdge{e.LockEdge}, path...)
		key := cycleKey(cycle)
		if reported[key] {
			continue
		}
		reported[key] = true
		pass.Reportf(e.pos, "lock order cycle (potential deadlock): %s — acquire these locks in one global order or break the cycle",
			renderCycle(cycle))
	}
}

// shortestPath BFSes from one class to another over the union adjacency,
// returning the edge path ([] when from == to, nil when unreachable).
func shortestPath(adj map[string][]LockEdge, from, to string) []LockEdge {
	if from == to {
		return []LockEdge{}
	}
	type queued struct {
		class string
		path  []LockEdge
	}
	visited := map[string]bool{from: true}
	queue := []queued{{class: from}}
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		for _, e := range adj[q.class] {
			if visited[e.To] {
				continue
			}
			next := append(append([]LockEdge{}, q.path...), e)
			if e.To == to {
				return next
			}
			visited[e.To] = true
			queue = append(queue, queued{class: e.To, path: next})
		}
	}
	return nil
}

// cycleKey canonicalizes a cycle by its sorted class set.
func cycleKey(cycle []LockEdge) string {
	classes := make([]string, 0, len(cycle))
	for _, e := range cycle {
		classes = append(classes, e.From)
	}
	sort.Strings(classes)
	return strings.Join(classes, "|")
}

// renderCycle prints every edge with both acquisition positions.
func renderCycle(cycle []LockEdge) string {
	parts := make([]string, len(cycle))
	for i, e := range cycle {
		via := ""
		if e.Via != "" {
			via = fmt.Sprintf(" via call to %s", e.Via)
		}
		parts[i] = fmt.Sprintf("%s (held at %s) → %s (acquired at %s%s)", e.From, e.FromPos, e.To, e.ToPos, via)
	}
	return strings.Join(parts, "; ")
}

// lockMethodExpr classifies a call as a sync lock-surface method,
// returning the receiver expression and method name.
func lockMethodExpr(info *types.Info, call *ast.CallExpr) (recv ast.Expr, name string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return sel.X, fn.Name()
	}
	return nil, ""
}

// lockClass names the lock's declaration-site class: "pkg.Type.field" for
// struct field mutexes, "pkg.name" for package-level ones, and
// "pkg.func.name" for locals. fnName disambiguates locals of different
// functions.
func lockClass(pass *analysis.Pass, recv ast.Expr, fnName string) string {
	recv = ast.Unparen(recv)
	switch e := recv.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok {
			t := sel.Recv()
			for {
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
					continue
				}
				break
			}
			if named, ok := t.(*types.Named); ok {
				obj := named.Origin().Obj()
				return pkgPath(obj.Pkg()) + "." + obj.Name() + "." + e.Sel.Name
			}
		}
		if v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok {
			return pkgPath(v.Pkg()) + "." + v.Name()
		}
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = pass.TypesInfo.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return pkgPath(v.Pkg()) + "." + v.Name()
			}
			return pkgPath(v.Pkg()) + "." + fnName + "." + v.Name()
		}
	}
	return pkgPath(pass.Pkg) + "." + types.ExprString(recv)
}

func pkgPath(pkg *types.Package) string {
	if pkg == nil {
		return "<builtin>"
	}
	return pkg.Path()
}

// funcLabel renders a callee compactly for edge annotations.
func funcLabel(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return astq.TypeName(sig.Recv().Type()) + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// innerBlocks lists the nested statement lists of a compound statement.
func innerBlocks(s ast.Stmt) [][]ast.Stmt {
	switch st := s.(type) {
	case *ast.BlockStmt:
		return [][]ast.Stmt{st.List}
	case *ast.IfStmt:
		out := [][]ast.Stmt{st.Body.List}
		if st.Else != nil {
			out = append(out, []ast.Stmt{st.Else})
		}
		return out
	case *ast.ForStmt:
		return [][]ast.Stmt{st.Body.List}
	case *ast.RangeStmt:
		return [][]ast.Stmt{st.Body.List}
	case *ast.SwitchStmt:
		return clauses(st.Body)
	case *ast.TypeSwitchStmt:
		return clauses(st.Body)
	case *ast.SelectStmt:
		return clauses(st.Body)
	case *ast.LabeledStmt:
		return [][]ast.Stmt{{st.Stmt}}
	}
	return nil
}

func clauses(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		switch cc := c.(type) {
		case *ast.CaseClause:
			out = append(out, cc.Body)
		case *ast.CommClause:
			out = append(out, cc.Body)
		}
	}
	return out
}

func copyHeld(held map[string]heldLock) map[string]heldLock {
	out := make(map[string]heldLock, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// shallowInspect visits call expressions in the statement's expression
// trees, descending into nested statements only through expressions, and
// into function literals only when they are invoked in place.
func shallowInspect(s ast.Stmt, visit func(*ast.CallExpr)) {
	ast.Inspect(s, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
			return false
		case *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			visit(nn)
			if lit, ok := ast.Unparen(nn.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok {
						visit(c)
					}
					return true
				})
			}
			return true
		}
		return true
	})
}
