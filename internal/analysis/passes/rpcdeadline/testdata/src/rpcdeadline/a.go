// Fixture for the rpcdeadline analyzer: no retries-forever loops, no dial
// sites without a call timeout.
package rpcdeadline

import (
	"context"
	"time"

	"rpc"
)

func retriesForever(c rpc.Client) {
	for {
		if err := c.Call("a", "b", nil, nil); err == nil { // want "rpc Call inside an unbounded for-loop with no deadline"
			return
		}
	}
}

func pollsForever(ready func() bool) {
	for {
		if ready() {
			return
		}
		time.Sleep(time.Millisecond) // want "time.Sleep polling inside an unbounded for-loop with no deadline"
	}
}

func redialForever() {
	for {
		if _, err := rpc.DialAuto("addr", rpc.WithCallTimeout(time.Second)); err == nil { // want "rpc.DialAuto inside an unbounded for-loop with no deadline"
			return
		}
	}
}

func boundedAttempts(c rpc.Client) {
	for i := 0; i < 5; i++ {
		if err := c.Call("a", "b", nil, nil); err == nil {
			return
		}
	}
}

func timeBudget(c rpc.Client) {
	deadline := time.Now().Add(time.Second)
	for {
		if err := c.Call("a", "b", nil, nil); err == nil {
			return
		}
		if time.Now().After(deadline) {
			return
		}
	}
}

func stopChannel(c rpc.Client, stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		if err := c.Call("a", "b", nil, nil); err == nil {
			return
		}
	}
}

func contextBound(ctx context.Context, c rpc.Client) {
	for {
		if ctx.Err() != nil {
			return
		}
		if err := c.Call("a", "b", nil, nil); err == nil {
			return
		}
	}
}

func pacedByChannel(c rpc.Client, tick chan struct{}) {
	for {
		<-tick
		_ = c.Call("a", "b", nil, nil)
	}
}

func dialSites() {
	_, _ = rpc.Dial("addr")                                            // want "rpc.Dial without rpc.WithCallTimeout"
	_ = rpc.DialAutoLazy("addr")                                       // want "rpc.DialAutoLazy without rpc.WithCallTimeout"
	_, _ = rpc.DialAuto("addr", rpc.WithCallLatency(time.Millisecond)) // want "rpc.DialAuto without rpc.WithCallTimeout"
	_, _ = rpc.Dial("addr", rpc.WithCallTimeout(time.Second))
	_, _ = rpc.DialAuto("addr", rpc.WithCallLatency(time.Millisecond), rpc.WithCallTimeout(time.Second))
}

func forwardedOpts(opts ...rpc.DialOption) {
	// Wholesale forwarding: the originating site carries the timeout.
	_, _ = rpc.DialAuto("addr", opts...)
}
