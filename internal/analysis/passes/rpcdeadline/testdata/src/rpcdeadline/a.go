// Fixture for the rpcdeadline analyzer: no dial sites without a call
// timeout. (Retry-loop discipline is the deadlineprop fixture's half.)
package rpcdeadline

import (
	"time"

	"rpc"
)

func dialSites() {
	_, _ = rpc.Dial("addr")                                            // want "rpc.Dial without rpc.WithCallTimeout"
	_ = rpc.DialAutoLazy("addr")                                       // want "rpc.DialAutoLazy without rpc.WithCallTimeout"
	_, _ = rpc.DialAuto("addr", rpc.WithCallLatency(time.Millisecond)) // want "rpc.DialAuto without rpc.WithCallTimeout"
	_, _ = rpc.Dial("addr", rpc.WithCallTimeout(time.Second))
	_, _ = rpc.DialAuto("addr", rpc.WithCallLatency(time.Millisecond), rpc.WithCallTimeout(time.Second))
}

func forwardedOpts(opts ...rpc.DialOption) {
	// Wholesale forwarding: the originating site carries the timeout.
	_, _ = rpc.DialAuto("addr", opts...)
}
