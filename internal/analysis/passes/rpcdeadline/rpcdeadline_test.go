package rpcdeadline_test

import (
	"testing"

	"bitdew/internal/analysis/analysistest"
	"bitdew/internal/analysis/passes/rpcdeadline"
)

func TestRpcdeadline(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture(t), rpcdeadline.Analyzer, "rpcdeadline")
}
