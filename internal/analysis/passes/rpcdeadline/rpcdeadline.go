// Package rpcdeadline enforces the dial-site half of the service plane's
// timeout discipline: every rpc connection must arm a per-call deadline.
//
// Outside the rpc package itself, rpc.Dial / rpc.DialAuto /
// rpc.DialAutoLazy call sites must pass rpc.WithCallTimeout(...): without
// it a request whose response frame never arrives blocks its caller
// forever (the transport only fails pending calls when the connection
// breaks — a hung peer breaks nothing; the paper's transient-fault model
// makes hung peers a normal operating condition, not an anomaly).
//
// The companion rule — RPC-blocking work inside unbounded retry loops —
// lives in the deadlineprop analyzer, which generalized this package's
// original direct-call-site-only loop check into an interprocedural one:
// deadlineprop propagates a BlocksOnRPC fact up the call graph so a
// helper that wraps the blocking call no longer hides it.
package rpcdeadline

import (
	"go/ast"

	"bitdew/internal/analysis"
	"bitdew/internal/analysis/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "rpcdeadline",
	Doc: "rpc dial sites must arm a per-call deadline (rpc.WithCallTimeout)\n\n" +
		"A peer that stops answering without closing the connection blocks callers forever; " +
		"unbounded retry loops are the deadlineprop analyzer's half of the discipline.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if astq.PkgIs(pass.Pkg, "rpc") {
		return nil, nil // the transport arms its own timers
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkDialSite(pass, call)
			}
			return true
		})
	}
	return nil, nil
}

// checkDialSite flags rpc dial calls missing a WithCallTimeout option.
func checkDialSite(pass *analysis.Pass, call *ast.CallExpr) {
	fn := astq.Callee(pass.TypesInfo, call)
	if !astq.IsPkgFunc(fn, "rpc", "Dial") && !astq.IsPkgFunc(fn, "rpc", "DialAuto") &&
		!astq.IsPkgFunc(fn, "rpc", "DialAutoLazy") {
		return
	}
	if call.Ellipsis.IsValid() {
		return // opts forwarded wholesale; the originating site is checked
	}
	for _, arg := range call.Args[1:] {
		if opt, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
			if astq.IsPkgFunc(astq.Callee(pass.TypesInfo, opt), "rpc", "WithCallTimeout") {
				return
			}
		}
	}
	pass.Reportf(call.Pos(),
		"rpc.%s without rpc.WithCallTimeout: a peer that stops answering (without closing the connection) blocks callers forever; arm a per-call deadline",
		fn.Name())
}
