// Package rpcdeadline enforces the timeout discipline of the service
// plane: RPC work must always be bounded in time.
//
// Two rules, both drawn from the plane's failure model (a service host may
// stop answering at any moment — the paper's transient-fault model — and a
// frame may be lost without the connection dying):
//
//  1. Retry loops must be bounded. A `for { ... }` (or `for true`) loop
//     that performs rpc calls, dials or sleeps must reference a deadline
//     facility: a bounded attempt count belongs in the loop condition, a
//     time budget in a time.Now/After/Since check, a context in a
//     ctx.Done() select, or a stop channel in a select receive. A bare
//     retries-forever loop turns one lost frame into a wedged goroutine.
//
//  2. Service-plane dial sites must arm a call deadline. Outside the rpc
//     package itself, rpc.Dial / rpc.DialAuto / rpc.DialAutoLazy call
//     sites must pass rpc.WithCallTimeout(...): without it a request whose
//     response frame never arrives blocks its caller forever (the
//     transport only fails pending calls when the connection breaks — a
//     hung peer breaks nothing).
package rpcdeadline

import (
	"go/ast"
	"go/token"
	"go/types"

	"bitdew/internal/analysis"
	"bitdew/internal/analysis/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "rpcdeadline",
	Doc: "service-plane RPC must be time-bounded: no retries-forever loops, no dial sites without a call timeout\n\n" +
		"Unbounded loops around Call/Dial/Sleep and rpc dial sites missing rpc.WithCallTimeout are flagged.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	inRPCPkg := astq.PkgIs(pass.Pkg, "rpc")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.ForStmt:
				if isUnconditional(nn) {
					checkLoop(pass, nn)
				}
			case *ast.CallExpr:
				if !inRPCPkg {
					checkDialSite(pass, nn)
				}
			}
			return true
		})
	}
	return nil
}

// isUnconditional reports loops of the form `for { ... }` or `for true`.
func isUnconditional(f *ast.ForStmt) bool {
	if f.Cond == nil {
		return true
	}
	id, ok := ast.Unparen(f.Cond).(*ast.Ident)
	return ok && id.Name == "true"
}

// checkLoop flags an unconditional loop doing blocking RPC-ish work with
// no deadline facility in sight.
func checkLoop(pass *analysis.Pass, loop *ast.ForStmt) {
	var blocking *ast.CallExpr
	var blockingWhat string
	bounded := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			return false // runs on its own goroutine/schedule
		case *ast.SelectStmt:
			// A select with a real receive case is a stop/timeout point.
			for _, c := range nn.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					bounded = true
				}
			}
		case *ast.UnaryExpr:
			// A bare channel receive blocks until signalled — the loop is
			// paced by a channel, not spinning on the network.
			if nn.Op == token.ARROW {
				bounded = true
			}
		case *ast.CallExpr:
			fn := astq.Callee(pass.TypesInfo, nn)
			switch {
			case isDeadlineFunc(fn):
				bounded = true
			case blocking == nil && astq.IsMethodNamed(fn, "", "Call", "CallBatch"):
				blocking, blockingWhat = nn, "rpc "+fn.Name()
			case blocking == nil && (astq.IsPkgFunc(fn, "rpc", "Dial") || astq.IsPkgFunc(fn, "rpc", "DialAuto") ||
				astq.IsPkgFunc(fn, "rpc", "DialAutoLazy") || astq.IsPkgFunc(fn, "rpc", "CallBatch")):
				blocking, blockingWhat = nn, "rpc."+fn.Name()
			case blocking == nil && astq.IsPkgFunc(fn, "time", "Sleep"):
				blocking, blockingWhat = nn, "time.Sleep polling"
			}
		}
		return true
	})
	if blocking != nil && !bounded {
		pass.Reportf(blocking.Pos(),
			"%s inside an unbounded for-loop with no deadline: bound the retries (attempt budget, time.Now deadline, context or stop-channel select) so a dead peer cannot wedge this goroutine forever",
			blockingWhat)
	}
}

// isDeadlineFunc recognizes the time/context calls that make an infinite
// loop time-bounded or cancellable.
func isDeadlineFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "After", "Since", "Until", "NewTimer":
			return true
		}
	case "context":
		// Covers ctx.Done()/Deadline()/Err() too: methods of the
		// context.Context interface resolve to package context.
		return true
	}
	return false
}

// checkDialSite flags rpc dial calls missing a WithCallTimeout option.
func checkDialSite(pass *analysis.Pass, call *ast.CallExpr) {
	fn := astq.Callee(pass.TypesInfo, call)
	if !astq.IsPkgFunc(fn, "rpc", "Dial") && !astq.IsPkgFunc(fn, "rpc", "DialAuto") &&
		!astq.IsPkgFunc(fn, "rpc", "DialAutoLazy") {
		return
	}
	if call.Ellipsis.IsValid() {
		return // opts forwarded wholesale; the originating site is checked
	}
	for _, arg := range call.Args[1:] {
		if opt, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
			if astq.IsPkgFunc(astq.Callee(pass.TypesInfo, opt), "rpc", "WithCallTimeout") {
				return
			}
		}
	}
	pass.Reportf(call.Pos(),
		"rpc.%s without rpc.WithCallTimeout: a peer that stops answering (without closing the connection) blocks callers forever; arm a per-call deadline",
		fn.Name())
}
