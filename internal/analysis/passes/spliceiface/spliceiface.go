// Package spliceiface enforces the wire-format gate of the rpc splice
// pools (internal/rpc/splice.go): a type used as an rpc payload must not
// reach an interface-, channel- or func-typed component.
//
// The splice fast path caches a type's gob definition prefix and reuses
// warm encoder streams; a payload with a reachable interface field could
// introduce a new dynamic type mid-stream, so splice.go demotes such types
// to the fresh (slow) path at runtime — silently. PR 4's allocation budget
// (20→2 allocs per encode) therefore regresses without any test failing if
// someone adds an interface field to a payload struct. This analyzer turns
// the runtime demotion into a compile-time finding at every payload
// declaration site: rpc.Register type arguments, rpc.NewCall arguments,
// and args/reply expressions of Client.Call.
package spliceiface

import (
	"go/ast"
	"go/types"

	"bitdew/internal/analysis"
	"bitdew/internal/analysis/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "spliceiface",
	Doc: "rpc payload types must stay splice-safe: no reachable interface, channel or func components\n\n" +
		"Flags rpc.Register instantiations and Call/NewCall argument types that the splice pool " +
		"(internal/rpc/splice.go) would demote to the allocation-heavy fresh path at runtime.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := astq.Callee(pass.TypesInfo, call)
			switch {
			case astq.IsPkgFunc(fn, "rpc", "Register"):
				checkRegister(pass, call)
			case astq.IsPkgFunc(fn, "rpc", "NewCall") && len(call.Args) == 4:
				checkPayloadExpr(pass, call.Args[2], "args")
				checkPayloadExpr(pass, call.Args[3], "reply")
			case astq.IsMethodNamed(fn, "rpc", "Call") && len(call.Args) == 4:
				checkPayloadExpr(pass, call.Args[2], "args")
				checkPayloadExpr(pass, call.Args[3], "reply")
			}
			return true
		})
	}
	return nil, nil
}

// checkRegister validates both type arguments of an rpc.Register[A, R]
// instantiation.
func checkRegister(pass *analysis.Pass, call *ast.CallExpr) {
	id := registerIdent(call)
	if id == nil {
		return
	}
	inst, ok := pass.TypesInfo.Instances[id]
	if !ok || inst.TypeArgs == nil {
		return
	}
	roles := [...]string{"args", "reply"}
	for i := 0; i < inst.TypeArgs.Len() && i < len(roles); i++ {
		t := inst.TypeArgs.At(i)
		if p := astq.InterfacePath(t); p != "" {
			pass.Reportf(call.Pos(),
				"rpc %s type %s reaches interface-typed component at %s: it will never take the splice fast path (internal/rpc/splice.go); use concrete field types",
				roles[i], astq.TypeName(t), p)
		}
	}
}

// registerIdent digs the Register identifier out of the (possibly
// explicitly instantiated) call expression.
func registerIdent(call *ast.CallExpr) *ast.Ident {
	fun := ast.Unparen(call.Fun)
	switch e := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(e.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(e.X)
	}
	switch e := fun.(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

// checkPayloadExpr validates the static type of one args/reply expression.
// Expressions whose static type is itself an interface (an any-typed
// variable, an untyped nil) carry no concrete payload type to check and are
// skipped; pointers are dereferenced since Call sends the pointed-to value.
func checkPayloadExpr(pass *analysis.Pass, e ast.Expr, role string) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	switch t.Underlying().(type) {
	case *types.Interface, *types.Basic:
		return
	}
	if p := astq.InterfacePath(t); p != "" {
		pass.Reportf(e.Pos(),
			"rpc %s type %s reaches interface-typed component at %s: it will never take the splice fast path (internal/rpc/splice.go); use concrete field types",
			role, astq.TypeName(t), p)
	}
}
