// Fixture for the spliceiface analyzer: rpc payload types must not reach
// interface-typed components.
package spliceiface

import "rpc"

// Clean is fully concrete: splice-safe.
type Clean struct {
	Name string
	N    []int
	M    map[string][]byte
}

// Dirty reaches an interface directly.
type Dirty struct {
	Name    string
	Payload any
}

// Nested reaches an interface through a slice of structs.
type Nested struct {
	Inner []Dirty
}

// hidden's interface field is unexported: gob ignores it, so the type is
// splice-safe.
type hidden struct {
	Name string
	priv any
}

func registerSites(m *rpc.Mux) {
	rpc.Register(m, "svc", "ok", func(a Clean) (Clean, error) { return a, nil })
	rpc.Register(m, "svc", "bad", func(a Dirty) (struct{}, error) { return struct{}{}, nil }) // want "rpc args type spliceiface.Dirty reaches interface-typed component at Payload"
	rpc.Register(m, "svc", "nested", func(a Clean) (Nested, error) { return Nested{}, nil })  // want "rpc reply type spliceiface.Nested reaches interface-typed component at Inner\\[\\].Payload"
	rpc.Register(m, "svc", "unexported", func(a hidden) (Clean, error) { return Clean{}, nil })
}

func callSites(c rpc.Client) {
	var clean Clean
	var dirty Dirty
	_ = c.Call("svc", "ok", clean, &clean)
	_ = c.Call("svc", "bad", dirty, &clean)  // want "rpc args type spliceiface.Dirty reaches interface-typed component at Payload"
	_ = c.Call("svc", "bad2", clean, &dirty) // want "rpc reply type spliceiface.Dirty reaches interface-typed component at Payload"
	_ = rpc.NewCall("svc", "ok", clean, &clean)
	_ = rpc.NewCall("svc", "bad", Nested{}, &clean) // want "rpc args type spliceiface.Nested reaches interface-typed component at Inner\\[\\].Payload"

	// A payload already typed as an interface carries no concrete type to
	// check at this site.
	var opaque any = clean
	_ = c.Call("svc", "opaque", opaque, nil)
}
