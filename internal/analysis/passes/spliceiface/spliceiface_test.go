package spliceiface_test

import (
	"testing"

	"bitdew/internal/analysis/analysistest"
	"bitdew/internal/analysis/passes/spliceiface"
)

func TestSpliceiface(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture(t), spliceiface.Analyzer, "spliceiface")
}
