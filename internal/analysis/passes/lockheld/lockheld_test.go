package lockheld_test

import (
	"testing"

	"bitdew/internal/analysis/analysistest"
	"bitdew/internal/analysis/passes/lockheld"
)

func TestLockheld(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture(t), lockheld.Analyzer, "lockheld")
}
