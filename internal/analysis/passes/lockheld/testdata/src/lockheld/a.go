// Fixture for the lockheld analyzer: no RPC, dial or sleep while a
// sync.Mutex/RWMutex is held.
package lockheld

import (
	"net"
	"sync"
	"time"

	"rpc"
)

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	c  rpc.Client
}

func (s *S) badCall() {
	s.mu.Lock()
	s.c.Call("a", "b", nil, nil) // want "rpc Call while holding s.mu"
	s.mu.Unlock()
}

func (s *S) badDialUnderDefer() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := rpc.Dial("addr") // want "rpc.Dial while holding s.mu"
	return err
}

func (s *S) badSleepUnderRLock() {
	s.rw.RLock()
	time.Sleep(time.Second) // want "time.Sleep while holding s.rw"
	s.rw.RUnlock()
}

func (s *S) badBatchInBranch() {
	s.mu.Lock()
	if s.c != nil {
		_ = s.c.CallBatch(nil) // want "rpc CallBatch while holding s.mu"
	}
	s.mu.Unlock()
}

func (s *S) badNetDial() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = net.Dial("tcp", "addr") // want "net.Dial while holding s.mu"
}

func (s *S) goodAfterUnlock() {
	s.mu.Lock()
	c := s.c
	s.mu.Unlock()
	_ = c.Call("a", "b", nil, nil)
}

func (s *S) goodGoroutine() {
	s.mu.Lock()
	go func() {
		_ = s.c.Call("a", "b", nil, nil) // runs without the caller's lock
	}()
	s.mu.Unlock()
}

func (s *S) goodBranchLocalLock() {
	if s.c != nil {
		s.mu.Lock()
		s.mu.Unlock()
	}
	_ = s.c.Call("a", "b", nil, nil)
}

func (s *S) goodReleasedInBranchStaysHeldOutside() {
	// An unlock inside a branch must not leak out: the conservative model
	// keeps the lock held after the if, so the trailing dial is flagged.
	s.mu.Lock()
	if s.c == nil {
		s.mu.Unlock()
		return
	}
	_, _ = rpc.DialAuto("addr") // want "rpc.DialAuto while holding s.mu"
	s.mu.Unlock()
}

func (s *S) goodSuppressed() {
	s.mu.Lock()
	//vet:ignore lockheld fixture-documented exception with a reason
	time.Sleep(time.Millisecond)
	s.mu.Unlock()
}
