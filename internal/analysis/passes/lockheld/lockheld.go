// Package lockheld forbids blocking RPC and network operations while a
// sync.Mutex or sync.RWMutex is held.
//
// The hazard class is real and local: the transfer-engine download race of
// PR 4 was fixed with a singleflight precisely because slow I/O and locks
// compose badly, and a Dial or Call under a struct mutex turns every other
// method of that struct — including Close — into a hostage of the network
// (an unreachable peer holds the lock for the whole connect timeout). The
// analyzer tracks Lock/RLock→Unlock regions inside each function body and
// flags calls to:
//
//   - any method named Call or CallBatch (the rpc client surface);
//   - rpc.Dial, rpc.DialAuto, rpc.DialAutoLazy, rpc.Listen;
//   - net.Dial, net.DialTimeout, net.Listen;
//   - time.Sleep.
//
// Deliberate disk I/O under a lock (the db WAL, whose ordering guarantee
// IS the lock) is out of scope by construction: file operations are not in
// the deny list.
//
// The analysis is intra-procedural and syntactic about regions: a lock
// acquired and released inside a nested block is tracked there, and
// function literals are only entered when invoked immediately — a deferred
// or go'd literal does not run under the caller's lock.
package lockheld

import (
	"go/ast"
	"go/types"

	"bitdew/internal/analysis"
	"bitdew/internal/analysis/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc: "no RPC, dial or sleep while holding a sync.Mutex/RWMutex\n\n" +
		"A blocking network operation under a lock makes every other method of the guarded " +
		"struct wait out the network; Close and introspection must stay reachable during a redial.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBody(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, fn.Body)
			}
			return true
		})
	}
	return nil, nil
}

// lockMethod classifies a call as a sync lock-surface method, returning
// the receiver expression's printed form and the method name.
func lockMethod(info *types.Info, call *ast.CallExpr) (recv, name string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), fn.Name()
	}
	return "", ""
}

// checkBody scans one function body. held maps receiver expression strings
// to the position of the Lock that acquired them; scanning a nested block
// copies the map so branch-local lock state never leaks out.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	scanStmts(pass, body.List, map[string]ast.Node{})
}

func scanStmts(pass *analysis.Pass, stmts []ast.Stmt, held map[string]ast.Node) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if recv, name := lockMethod(pass.TypesInfo, call); recv != "" {
					switch name {
					case "Lock", "RLock":
						held[recv] = call
					case "Unlock", "RUnlock":
						delete(held, recv)
					}
					continue
				}
			}
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held for the remainder of
			// the function — which is exactly the region to scan — so it
			// does not release. Other deferred work runs at return, outside
			// any region this scan can reason about; skip it.
			continue
		case *ast.GoStmt:
			// The goroutine body does not run under the caller's lock.
			continue
		}
		if len(held) > 0 {
			reportBlocked(pass, s, held)
		}
		// Recurse into compound statements with a branch-local copy.
		for _, inner := range innerBlocks(s) {
			scanStmts(pass, inner, copyHeld(held))
		}
	}
}

// innerBlocks lists the nested statement lists of a compound statement.
func innerBlocks(s ast.Stmt) [][]ast.Stmt {
	switch st := s.(type) {
	case *ast.BlockStmt:
		return [][]ast.Stmt{st.List}
	case *ast.IfStmt:
		out := [][]ast.Stmt{st.Body.List}
		if st.Else != nil {
			out = append(out, []ast.Stmt{st.Else})
		}
		return out
	case *ast.ForStmt:
		return [][]ast.Stmt{st.Body.List}
	case *ast.RangeStmt:
		return [][]ast.Stmt{st.Body.List}
	case *ast.SwitchStmt:
		return clauses(st.Body)
	case *ast.TypeSwitchStmt:
		return clauses(st.Body)
	case *ast.SelectStmt:
		return clauses(st.Body)
	case *ast.LabeledStmt:
		return [][]ast.Stmt{{st.Stmt}}
	}
	return nil
}

func clauses(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		switch cc := c.(type) {
		case *ast.CaseClause:
			out = append(out, cc.Body)
		case *ast.CommClause:
			out = append(out, cc.Body)
		}
	}
	return out
}

func copyHeld(held map[string]ast.Node) map[string]ast.Node {
	out := make(map[string]ast.Node, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// reportBlocked flags deny-listed calls appearing directly in s (not in
// nested statements — those are scanned with their own region state — and
// not in un-invoked function literals).
func reportBlocked(pass *analysis.Pass, s ast.Stmt, held map[string]ast.Node) {
	shallowInspect(s, func(call *ast.CallExpr) {
		fn := astq.Callee(pass.TypesInfo, call)
		if fn == nil {
			return
		}
		var what string
		switch {
		case astq.IsMethodNamed(fn, "", "Call", "CallBatch"):
			what = "rpc " + fn.Name()
		case astq.IsPkgFunc(fn, "rpc", "Dial"), astq.IsPkgFunc(fn, "rpc", "DialAuto"),
			astq.IsPkgFunc(fn, "rpc", "DialAutoLazy"), astq.IsPkgFunc(fn, "rpc", "Listen"):
			what = "rpc." + fn.Name()
		case isNetFunc(fn):
			what = "net." + fn.Name()
		case astq.IsPkgFunc(fn, "time", "Sleep"):
			what = "time.Sleep"
		default:
			return
		}
		for recv := range held {
			pass.Reportf(call.Pos(),
				"%s while holding %s: blocking network work under a mutex wedges every contender (move the call outside the critical section)",
				what, recv)
			return // one report per call is enough
		}
	})
}

func isNetFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "net" {
		return false
	}
	switch fn.Name() {
	case "Dial", "DialTimeout", "Listen":
		return true
	}
	return false
}

// shallowInspect visits call expressions in the statement's expression
// trees, descending into nested statements only through expressions, and
// into function literals only when they are invoked in place.
func shallowInspect(s ast.Stmt, visit func(*ast.CallExpr)) {
	ast.Inspect(s, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
			// Nested statement lists get their own scan with copied state.
			return false
		case *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.FuncLit:
			// Entered only via the CallExpr case below when invoked
			// immediately.
			return false
		case *ast.CallExpr:
			visit(nn)
			if lit, ok := ast.Unparen(nn.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok {
						visit(c)
					}
					return true
				})
			}
			return true
		}
		return true
	})
}
