// Fixture for the leakygo analyzer: constructor-started goroutines must
// have a reachable exit.
package leakygo

import "time"

type Server struct {
	done chan struct{}
	work chan func()
}

func NewLeakyLiteral() *Server {
	s := &Server{}
	go func() {
		for { // want "goroutine started by a constructor loops forever with no exit"
			time.Sleep(time.Second)
		}
	}()
	return s
}

func NewLeakyMethod() *Server {
	s := &Server{}
	go s.tickForever()
	return s
}

func (s *Server) tickForever() {
	for { // want "goroutine started by a constructor loops forever with no exit"
		time.Sleep(time.Second)
	}
}

func NewStoppable() *Server {
	s := &Server{done: make(chan struct{}), work: make(chan func())}
	go s.loop()
	go func() {
		for {
			select {
			case fn := <-s.work:
				fn()
			case <-s.done:
				return
			}
		}
	}()
	return s
}

func (s *Server) loop() {
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
		case <-s.done:
			return
		}
	}
}

func NewExitsOnError(read func() error) *Server {
	s := &Server{}
	go func() {
		for {
			if err := read(); err != nil {
				return
			}
		}
	}()
	return s
}

func NewBoundedWork(items []int) *Server {
	s := &Server{}
	go func() {
		total := 0
		for _, it := range items {
			total += it
		}
	}()
	return s
}

func NewNestedBreakDoesNotCount() *Server {
	s := &Server{}
	go func() {
		for { // want "goroutine started by a constructor loops forever with no exit"
			for i := 0; i < 3; i++ {
				break // binds to the inner loop only
			}
		}
	}()
	return s
}

func helperNotConstructor() {
	// Out of scope: not a constructor shape. Other passes (and reviews)
	// own ad-hoc goroutines.
	go func() {
		for {
			time.Sleep(time.Second)
		}
	}()
}
