package leakygo_test

import (
	"testing"

	"bitdew/internal/analysis/analysistest"
	"bitdew/internal/analysis/passes/leakygo"
)

func TestLeakygo(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture(t), leakygo.Analyzer, "leakygo")
}
