// Package leakygo enforces the goroutine-lifecycle rule of the service
// plane: a goroutine started while constructing or starting a long-lived
// object (New*/Open*/Dial*/Listen*/Start*) must have a reachable exit, so
// the object's Close/Stop path can actually end it.
//
// Every service container, server, store and engine in this module owns
// background goroutines (accept loops, compaction timers, heartbeats,
// transfer monitors); each is tied to a stop channel, a closable
// connection whose read fails, or a bounded piece of work. A goroutine
// whose body loops forever with no return or break can never be joined —
// restart tests then leak one goroutine per restart until the race
// detector or the churn harness trips over it. The analyzer inspects each
// go statement launched (directly or via a same-package method) from a
// constructor-shaped function and reports infinite loops with no exit
// path.
package leakygo

import (
	"go/ast"
	"go/types"
	"strings"

	"bitdew/internal/analysis"
	"bitdew/internal/analysis/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "leakygo",
	Doc: "goroutines started by constructors must have an exit: no infinite loops without return/break\n\n" +
		"A background goroutine with no reachable exit can never be joined by Close/Stop; " +
		"restart and churn scenarios then leak one goroutine per cycle.",
	Run: run,
}

// constructorPrefixes shape the functions whose goroutines are long-lived
// by construction.
var constructorPrefixes = []string{"New", "Open", "Dial", "Listen", "Start"}

func run(pass *analysis.Pass) (any, error) {
	decls := methodDecls(pass)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isConstructor(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				body := goBody(pass, decls, g)
				if body == nil {
					return true
				}
				checkGoroutine(pass, g, body)
				return true
			})
		}
	}
	return nil, nil
}

func isConstructor(name string) bool {
	for _, p := range constructorPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// methodDecls indexes this package's function declarations by their
// types.Func, so `go s.loop()` can be traced into loop's body.
func methodDecls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// goBody resolves the statement body the go statement will run: a literal
// body, or the declaration of a same-package function/method.
func goBody(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, g *ast.GoStmt) *ast.BlockStmt {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn := astq.Callee(pass.TypesInfo, g.Call); fn != nil {
		if fd := decls[fn]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// checkGoroutine reports infinite loops with no exit inside the goroutine
// body.
func checkGoroutine(pass *analysis.Pass, g *ast.GoStmt, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || !isUnconditional(loop) {
			return true
		}
		if !hasExit(loop) {
			pass.Reportf(loop.Pos(),
				"goroutine started by a constructor loops forever with no exit: add a stop-channel/context case (or a terminating error return) so Close can end it")
		}
		return true
	})
}

func isUnconditional(f *ast.ForStmt) bool {
	if f.Cond == nil {
		return true
	}
	id, ok := ast.Unparen(f.Cond).(*ast.Ident)
	return ok && id.Name == "true"
}

// hasExit reports whether the loop body contains a statement that leaves
// the loop: a return, a break binding to this loop, a labeled break
// (which always targets an enclosing statement — conservatively treated
// as an exit), or a goto. Unlabeled breaks inside nested
// for/range/switch/select statements bind to those and do not count.
func hasExit(loop *ast.ForStmt) bool {
	return blockExits(loop.Body)
}

// blockExits walks stmts looking for an exit of the current loop.
func blockExits(n ast.Node) bool {
	exits := false
	var walk func(n ast.Node, breakable bool)
	walk = func(n ast.Node, breakBindsHere bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if exits {
				return false
			}
			switch mm := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				exits = true
				return false
			case *ast.BranchStmt:
				switch mm.Tok.String() {
				case "break":
					if breakBindsHere && mm.Label == nil {
						exits = true
					}
					if mm.Label != nil {
						exits = true
					}
				case "goto":
					// A goto out of the loop is an exit; assume the
					// programmer aims outside (rare and reviewed).
					exits = true
				}
				return false
			case *ast.ForStmt:
				if m != n {
					walk(mm.Body, false)
					return false
				}
			case *ast.RangeStmt:
				walk(mm.Body, false)
				return false
			case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				// Unlabeled break inside binds to the switch/select, but a
				// return still exits; keep walking with breaks unbound.
				if m != n {
					walk(bodyOf(mm), false)
					return false
				}
			}
			return true
		})
	}
	walk(n, true)
	return exits
}

// bodyOf returns the block of a switch/select-like statement.
func bodyOf(n ast.Node) ast.Node {
	switch s := n.(type) {
	case *ast.SwitchStmt:
		return s.Body
	case *ast.TypeSwitchStmt:
		return s.Body
	case *ast.SelectStmt:
		return s.Body
	}
	return n
}
