// Package vet assembles the bitdew analyzer suite and drives it over
// packages: the library behind cmd/bitdew-vet, factored out so the
// multichecker's end-to-end behaviour is testable without executing a
// built binary.
//
// The suite runs through the analysis/load driver: packages are analyzed
// in dependency order with one shared fact store, so the interprocedural
// passes (lockorder, deadlineprop, splicereach) see the facts their
// dependencies exported. Reporting stays limited to the pattern-matched
// packages.
package vet

import (
	"encoding/json"
	"fmt"
	"io"
	"os/exec"

	"bitdew/internal/analysis"
	"bitdew/internal/analysis/callgraph"
	"bitdew/internal/analysis/load"
	"bitdew/internal/analysis/passes/deadlineprop"
	"bitdew/internal/analysis/passes/errlost"
	"bitdew/internal/analysis/passes/leakygo"
	"bitdew/internal/analysis/passes/lockheld"
	"bitdew/internal/analysis/passes/lockorder"
	"bitdew/internal/analysis/passes/rpcdeadline"
	"bitdew/internal/analysis/passes/spliceiface"
	"bitdew/internal/analysis/passes/splicereach"
)

// Suite returns the project analyzers in reporting order: each local
// invariant checker followed by its interprocedural extension.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		spliceiface.Analyzer,
		splicereach.Analyzer,
		lockheld.Analyzer,
		lockorder.Analyzer,
		rpcdeadline.Analyzer,
		deadlineprop.Analyzer,
		errlost.Analyzer,
		leakygo.Analyzer,
	}
}

// Options configure a Run.
type Options struct {
	// ModuleDir is the directory holding go.mod.
	ModuleDir string
	// ExtraRoots are additional GOPATH-style fixture roots (tests only).
	ExtraRoots []string
	// Stock also runs `go vet` over the same patterns first, so the
	// binary subsumes the standard passes.
	Stock bool
	// Analyzers overrides Suite() when non-nil.
	Analyzers []*analysis.Analyzer
	// JSON emits a machine-readable diagnostic array (including
	// suppressed findings with their reasons) instead of go-vet lines.
	JSON bool
	// Graph skips diagnostic output and dumps the static call graph of
	// the matched packages in Graphviz DOT syntax.
	Graph bool
}

// jsonDiag is the -json wire form of one finding.
type jsonDiag struct {
	File        string `json:"file"`
	Line        int    `json:"line"`
	Col         int    `json:"col"`
	Analyzer    string `json:"analyzer"`
	Message     string `json:"message"`
	Suppressed  bool   `json:"suppressed,omitempty"`
	Suppression string `json:"suppression,omitempty"`
}

// Run loads every package matched by patterns plus their dependency
// closure, applies the suite in dependency order, and writes diagnostics
// to w in go-vet style (or JSON / DOT per Options). It returns the number
// of unsuppressed diagnostics; err is reserved for operational failures
// (unparseable source, unknown package), not findings.
func Run(opts Options, patterns []string, w io.Writer) (int, error) {
	analyzers := opts.Analyzers
	if analyzers == nil {
		analyzers = Suite()
	}
	if opts.Graph {
		// The graph may be requested with an analyzer override that does
		// not pull callgraph in through Requires.
		analyzers = append([]*analysis.Analyzer{callgraph.Analyzer}, analyzers...)
	}
	count := 0
	if opts.Stock {
		n, err := runStockVet(opts.ModuleDir, patterns, w)
		if err != nil {
			return count, err
		}
		count += n
	}
	l, err := load.New(opts.ModuleDir, opts.ExtraRoots...)
	if err != nil {
		return count, err
	}
	run, err := l.Analyze(analyzers, patterns)
	if err != nil {
		return count, err
	}
	if opts.Graph {
		fmt.Fprintln(w, "digraph bitdew {")
		for _, p := range run.Targets {
			if g, ok := run.ResultOf(p.Path, callgraph.Analyzer).(*callgraph.Graph); ok {
				fmt.Fprint(w, g.DOT())
			}
		}
		fmt.Fprintln(w, "}")
		return count, nil
	}
	if opts.JSON {
		out := make([]jsonDiag, 0, len(run.Diagnostics))
		for _, d := range run.Diagnostics {
			out = append(out, jsonDiag{
				File:        d.Pos.Filename,
				Line:        d.Pos.Line,
				Col:         d.Pos.Column,
				Analyzer:    d.Analyzer,
				Message:     d.Message,
				Suppressed:  d.Suppressed,
				Suppression: d.Suppression,
			})
			if !d.Suppressed {
				count++
			}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return count, err
		}
		return count, nil
	}
	for _, d := range run.Diagnostics {
		if d.Suppressed {
			continue
		}
		fmt.Fprintln(w, d)
		count++
	}
	return count, nil
}

// runStockVet shells out to `go vet`, streaming its findings to w. A
// non-zero exit with output counts as findings, not as an operational
// error.
func runStockVet(moduleDir string, patterns []string, w io.Writer) (int, error) {
	cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
	cmd.Dir = moduleDir
	out, err := cmd.CombinedOutput()
	if len(out) > 0 {
		w.Write(out)
	}
	if err != nil {
		if _, ok := err.(*exec.ExitError); ok {
			return 1, nil // findings already streamed
		}
		return 0, fmt.Errorf("vet: running go vet: %w", err)
	}
	return 0, nil
}
