// Package vet assembles the bitdew analyzer suite and drives it over
// packages: the library behind cmd/bitdew-vet, factored out so the
// multichecker's end-to-end behaviour is testable without executing a
// built binary.
package vet

import (
	"fmt"
	"io"
	"os/exec"

	"bitdew/internal/analysis"
	"bitdew/internal/analysis/load"
	"bitdew/internal/analysis/passes/errlost"
	"bitdew/internal/analysis/passes/leakygo"
	"bitdew/internal/analysis/passes/lockheld"
	"bitdew/internal/analysis/passes/rpcdeadline"
	"bitdew/internal/analysis/passes/spliceiface"
)

// Suite returns the project analyzers in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		spliceiface.Analyzer,
		lockheld.Analyzer,
		rpcdeadline.Analyzer,
		errlost.Analyzer,
		leakygo.Analyzer,
	}
}

// Options configure a Run.
type Options struct {
	// ModuleDir is the directory holding go.mod.
	ModuleDir string
	// ExtraRoots are additional GOPATH-style fixture roots (tests only).
	ExtraRoots []string
	// Stock also runs `go vet` over the same patterns first, so the
	// binary subsumes the standard passes.
	Stock bool
	// Analyzers overrides Suite() when non-nil.
	Analyzers []*analysis.Analyzer
}

// Run loads every package matched by patterns, applies the suite, and
// writes diagnostics to w in go-vet style. It returns the number of
// diagnostics; err is reserved for operational failures (unparseable
// source, unknown package), not findings.
func Run(opts Options, patterns []string, w io.Writer) (int, error) {
	analyzers := opts.Analyzers
	if analyzers == nil {
		analyzers = Suite()
	}
	count := 0
	if opts.Stock {
		n, err := runStockVet(opts.ModuleDir, patterns, w)
		if err != nil {
			return count, err
		}
		count += n
	}
	l, err := load.New(opts.ModuleDir, opts.ExtraRoots...)
	if err != nil {
		return count, err
	}
	paths, err := l.Expand(patterns)
	if err != nil {
		return count, err
	}
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return count, err
		}
		diags, err := analysis.RunAnalyzers(analyzers, l.Fset, pkg.Files, pkg.Types, pkg.Info)
		if err != nil {
			return count, err
		}
		for _, d := range diags {
			fmt.Fprintln(w, d)
			count++
		}
	}
	return count, nil
}

// runStockVet shells out to `go vet`, streaming its findings to w. A
// non-zero exit with output counts as findings, not as an operational
// error.
func runStockVet(moduleDir string, patterns []string, w io.Writer) (int, error) {
	cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
	cmd.Dir = moduleDir
	out, err := cmd.CombinedOutput()
	if len(out) > 0 {
		w.Write(out)
	}
	if err != nil {
		if _, ok := err.(*exec.ExitError); ok {
			return 1, nil // findings already streamed
		}
		return 0, fmt.Errorf("vet: running go vet: %w", err)
	}
	return 0, nil
}
