// Fixture for the analysistest runner's own tests: every kind of
// mismatch — wrong diagnostic want, wrong fact want, unannotated
// diagnostic and unannotated fact — must be reported.
package selfbad

func F() {} // want "wrong message" fact:"Mark\\(Wrong\\)"

func G() {}
