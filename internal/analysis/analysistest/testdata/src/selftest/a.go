// Fixture for the analysistest runner's own tests: every diagnostic and
// fact the flagfuncs test analyzer produces is matched.
package selftest

func F() {} // want "flagged F" fact:"Mark\\(F\\)"

func G() {} // want "flagged G" fact:"Mark\\(G\\)"
