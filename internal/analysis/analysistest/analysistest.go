// Package analysistest runs an analyzer over golden fixture packages and
// checks its diagnostics against // want comments, mirroring the x/tools
// package of the same name (see internal/analysis for why the framework is
// re-created locally).
//
// Fixtures follow the x/tools layout: a testdata directory containing
// src/<importpath>/*.go. A line expecting diagnostics carries a trailing
// comment of the form
//
//	// want "regexp" "another regexp"
//
// with one quoted regular expression per expected diagnostic on that line.
// An analyzer that exports object facts (analysis.Fact) is checked the
// same way: the line declaring the object carries
//
//	// want fact:"regexp"
//
// matched against the fact's String() rendering. Every reported
// diagnostic and exported object fact must be matched by a want, and
// every want by a diagnostic/fact, or the test fails.
//
// Packages run through the analysis/load driver, so an analyzer's
// Requires closure executes and facts flow between fixture packages in
// dependency order — list a fixture's packages importer-last to exercise
// cross-package fact propagation.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"bitdew/internal/analysis"
	"bitdew/internal/analysis/load"
)

// A Reporter receives the runner's verdicts. *testing.T satisfies it; the
// runner's own tests substitute a recorder to check that mismatches are
// caught.
type Reporter interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// wantRe extracts the trailing want comment of a line.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// expectation is one // want entry: a diagnostic pattern, or a fact
// pattern when fact is true.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	fact    bool
	matched bool
}

// moduleRoot locates the repository root relative to this source file.
func moduleRoot(r Reporter) string {
	r.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		r.Fatalf("analysistest: no caller info")
	}
	return filepath.Clean(filepath.Join(filepath.Dir(file), "..", "..", ".."))
}

// Run loads the fixture packages from testdata (a directory containing
// src/) through the whole-program driver, applies the analyzer and its
// Requires closure, and diffs diagnostics and exported object facts
// against the // want comments of the fixture sources.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	RunWith(t, testdata, a, pkgPaths...)
}

// RunWith is Run with an explicit Reporter, for testing the runner itself.
func RunWith(r Reporter, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	r.Helper()
	root := moduleRoot(r)
	l, err := load.New(root, testdata)
	if err != nil {
		r.Fatalf("analysistest: %v", err)
		return
	}
	run, err := l.Analyze([]*analysis.Analyzer{a}, pkgPaths)
	if err != nil {
		r.Errorf("analysistest: running %s: %v", a.Name, err)
		return
	}

	var wants []*expectation
	inTargets := make(map[string]bool, len(run.Targets))
	for _, pkg := range run.Targets {
		inTargets[pkg.Path] = true
		wants = append(wants, collectWants(r, l.Fset, pkg.Files)...)
	}

	for _, d := range run.Diagnostics {
		if d.Suppressed {
			continue // a fixture's //vet:ignore is part of its golden intent
		}
		if !matchWant(wants, false, d.Pos, d.Message) {
			r.Errorf("%s: unexpected diagnostic: %s", d.Pos.Filename, d)
		}
	}
	for _, of := range run.Facts.AllObjectFacts() {
		if of.Analyzer != a.Name || of.Object.Pkg() == nil || !inTargets[of.Object.Pkg().Path()] {
			continue
		}
		pos := l.Fset.Position(of.Object.Pos())
		rendered := factString(of.Fact)
		if !matchWant(wants, true, pos, rendered) {
			r.Errorf("%s: unexpected fact on %s: %s", pos, of.Object.Name(), rendered)
		}
	}
	for _, w := range wants {
		if !w.matched {
			kind := "diagnostic"
			if w.fact {
				kind = "fact"
			}
			r.Errorf("%s:%d: no %s matching %q", w.file, w.line, kind, w.re)
		}
	}
}

// factString renders a fact the way wants match it: its String() method
// when it has one, the %v rendering otherwise.
func factString(f analysis.Fact) string {
	if s, ok := f.(interface{ String() string }); ok {
		return s.String()
	}
	return fmt.Sprintf("%v", f)
}

// collectWants parses the // want comments of the fixture files.
func collectWants(r Reporter, fset *token.FileSet, files []*ast.File) []*expectation {
	r.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range splitQuoted(m[1]) {
					isFact := strings.HasPrefix(q, "fact:")
					q = strings.TrimPrefix(q, "fact:")
					pattern, err := strconv.Unquote(q)
					if err != nil {
						r.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						return out
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						r.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
						return out
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, fact: isFact})
				}
			}
		}
	}
	return out
}

// splitQuoted splits `"a" fact:"b"` into its fields, keeping quotes and
// any fact: prefix.
func splitQuoted(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		prefix := ""
		if strings.HasPrefix(s, "fact:") {
			prefix, s = "fact:", s[len("fact:"):]
		}
		if s == "" || s[0] != '"' {
			break
		}
		end := 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			break
		}
		out = append(out, prefix+s[:end+1])
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}

// matchWant marks and reports the first unmatched want of the right kind
// covering the position.
func matchWant(wants []*expectation, fact bool, pos token.Position, text string) bool {
	for _, w := range wants {
		if w.matched || w.fact != fact || w.line != pos.Line || w.file != pos.Filename {
			continue
		}
		if w.re.MatchString(text) {
			w.matched = true
			return true
		}
	}
	return false
}

// Fixture returns the testdata directory next to the calling test file,
// the conventional location for an analyzer's golden packages.
func Fixture(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		t.Fatal("analysistest: no caller info")
	}
	return filepath.Join(filepath.Dir(file), "testdata")
}
