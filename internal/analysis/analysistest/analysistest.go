// Package analysistest runs an analyzer over golden fixture packages and
// checks its diagnostics against // want comments, mirroring the x/tools
// package of the same name (see internal/analysis for why the framework is
// re-created locally).
//
// Fixtures follow the x/tools layout: a testdata directory containing
// src/<importpath>/*.go. A line expecting diagnostics carries a trailing
// comment of the form
//
//	// want "regexp" "another regexp"
//
// with one quoted regular expression per expected diagnostic on that line.
// Every reported diagnostic must be matched by a want, and every want must
// be matched by a diagnostic, or the test fails.
package analysistest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"bitdew/internal/analysis"
	"bitdew/internal/analysis/load"
)

// wantRe extracts the trailing want comment of a line.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// expectation is one // want entry.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// moduleRoot locates the repository root relative to this source file.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("analysistest: no caller info")
	}
	return filepath.Clean(filepath.Join(filepath.Dir(file), "..", "..", ".."))
}

// Run loads each fixture package from testdata (a directory containing
// src/), applies the analyzer, and diffs diagnostics against the // want
// comments of the fixture sources.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	root := moduleRoot(t)
	l, err := load.New(root, testdata)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, path := range pkgPaths {
		pkg, err := l.Load(path)
		if err != nil {
			t.Errorf("analysistest: loading %s: %v", path, err)
			continue
		}
		diags, err := analysis.RunAnalyzers([]*analysis.Analyzer{a}, l.Fset, pkg.Files, pkg.Types, pkg.Info)
		if err != nil {
			t.Errorf("analysistest: running %s on %s: %v", a.Name, path, err)
			continue
		}
		wants := collectWants(t, l.Fset, pkg.Files)
		for _, d := range diags {
			if !matchWant(wants, d) {
				t.Errorf("%s: unexpected diagnostic: %s", path, d)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s: no diagnostic at %s:%d matching %q", path, w.file, w.line, w.re)
			}
		}
	}
}

// collectWants parses the // want comments of the fixture files.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range splitQuoted(m[1]) {
					pattern, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// splitQuoted splits `"a" "b"` into its quoted fields, keeping the quotes.
func splitQuoted(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			break
		}
		end := 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			break
		}
		out = append(out, s[:end+1])
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}

// matchWant marks and reports the first unmatched want covering d.
func matchWant(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.line != d.Pos.Line || w.file != d.Pos.Filename {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// Fixture returns the testdata directory next to the calling test file,
// the conventional location for an analyzer's golden packages.
func Fixture(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		t.Fatal("analysistest: no caller info")
	}
	return filepath.Join(filepath.Dir(file), "testdata")
}
