package analysistest_test

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
	"testing"

	"bitdew/internal/analysis"
	"bitdew/internal/analysis/analysistest"
)

// recorder captures the runner's verdicts instead of failing the test.
type recorder struct {
	errors []string
	fatals []string
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.errors = append(r.errors, fmt.Sprintf(format, args...))
}
func (r *recorder) Fatalf(format string, args ...any) {
	r.fatals = append(r.fatals, fmt.Sprintf(format, args...))
}

// markFact is the test analyzer's object fact.
type markFact struct{ Name string }

func (*markFact) AFact() {}

func (f *markFact) String() string { return "Mark(" + f.Name + ")" }

// flagFuncs flags and marks every declared function: enough surface to
// exercise both diagnostic and fact matching.
var flagFuncs = &analysis.Analyzer{
	Name:      "flagfuncs",
	Doc:       "test analyzer: reports and marks every function declaration",
	FactTypes: []analysis.Fact{(*markFact)(nil)},
	Run: func(pass *analysis.Pass) (any, error) {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				pass.Reportf(fd.Name.Pos(), "flagged %s", fd.Name.Name)
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					pass.ExportObjectFact(fn, &markFact{Name: fd.Name.Name})
				}
			}
		}
		return nil, nil
	},
}

func TestRunnerAcceptsMatchingFixture(t *testing.T) {
	r := &recorder{}
	analysistest.RunWith(r, analysistest.Fixture(t), flagFuncs, "selftest")
	if len(r.errors) != 0 || len(r.fatals) != 0 {
		t.Errorf("runner reported errors on a fully matched fixture:\n%s",
			strings.Join(append(r.errors, r.fatals...), "\n"))
	}
}

func TestRunnerReportsEveryMismatch(t *testing.T) {
	r := &recorder{}
	analysistest.RunWith(r, analysistest.Fixture(t), flagFuncs, "selfbad")
	if len(r.fatals) != 0 {
		t.Fatalf("unexpected fatals: %v", r.fatals)
	}
	// F: diagnostic doesn't match its want, fact doesn't match its fact
	// want → 2 unexpected + 2 unmatched. G: unannotated diagnostic and
	// fact → 2 unexpected.
	if len(r.errors) != 6 {
		t.Errorf("got %d errors, want 6:\n%s", len(r.errors), strings.Join(r.errors, "\n"))
	}
	for _, w := range []string{
		"unexpected diagnostic",
		"flagged G",
		"unexpected fact",
		"Mark(G)",
		`no diagnostic matching "wrong message"`,
		`no fact matching "Mark\\(Wrong\\)"`,
	} {
		if !strings.Contains(strings.Join(r.errors, "\n"), w) {
			t.Errorf("errors missing %q:\n%s", w, strings.Join(r.errors, "\n"))
		}
	}
}
