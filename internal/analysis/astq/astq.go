// Package astq holds the small AST/type query helpers shared by the
// bitdew-vet passes: callee resolution, package identification that works
// both on the real module and on analysistest fixture stubs, and reach
// analysis over types.
package astq

import (
	"go/ast"
	"go/types"
	"strings"
)

// Callee resolves the *types.Func a call expression invokes, or nil for
// calls through function values, built-ins and type conversions. Generic
// calls resolve to their origin function.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // explicit instantiation: f[T](...)
		return Callee(info, &ast.CallExpr{Fun: fun.X})
	case *ast.IndexListExpr: // f[T1, T2](...)
		return Callee(info, &ast.CallExpr{Fun: fun.X})
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// PkgIs reports whether pkg is the package known by the given base name in
// this module — matching "bitdew/internal/<name>", any path ending in
// "/<name>", or the bare "<name>" itself. The suffix forms let analysistest
// fixtures stand in stub packages (e.g. testdata/src/rpc) for the real
// module-internal ones.
func PkgIs(pkg *types.Package, name string) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == name || strings.HasSuffix(path, "/"+name)
}

// IsMethodNamed reports whether fn is a method with one of the given names
// declared in a package matched by PkgIs(pkgName). An empty pkgName skips
// the package test.
func IsMethodNamed(fn *types.Func, pkgName string, names ...string) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if pkgName != "" && !PkgIs(fn.Pkg(), pkgName) {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// IsPkgFunc reports whether fn is the package-level function pkgName.name.
func IsPkgFunc(fn *types.Func, pkgName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return PkgIs(fn.Pkg(), pkgName)
}

// InterfacePath walks t and returns the field path of the first reachable
// interface-, channel- or func-typed component ("" when none): the exact
// reachability rule of rpc.spliceSafe, so a type this function rejects is a
// type the splice fast path will refuse at runtime. Unexported struct
// fields are skipped (gob ignores them).
func InterfacePath(t types.Type) string {
	return interfacePath(t, "", make(map[types.Type]bool))
}

func interfacePath(t types.Type, at string, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Interface:
		return orSelf(at)
	case *types.Chan, *types.Signature:
		return orSelf(at)
	case *types.Pointer:
		return interfacePath(u.Elem(), at, seen)
	case *types.Slice:
		return interfacePath(u.Elem(), at+"[]", seen)
	case *types.Array:
		return interfacePath(u.Elem(), at+"[]", seen)
	case *types.Map:
		if p := interfacePath(u.Key(), at+"[key]", seen); p != "" {
			return p
		}
		return interfacePath(u.Elem(), at+"[]", seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				continue
			}
			prefix := f.Name()
			if at != "" {
				prefix = at + "." + f.Name()
			}
			if p := interfacePath(f.Type(), prefix, seen); p != "" {
				return p
			}
		}
	}
	return ""
}

// orSelf renders the root position as "the type itself".
func orSelf(at string) string {
	if at == "" {
		return "(the type itself)"
	}
	return at
}

// TypeName renders t compactly, qualifying names by package base name.
func TypeName(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
