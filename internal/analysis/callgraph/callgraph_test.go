package callgraph_test

import (
	"fmt"
	"go/types"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"bitdew/internal/analysis"
	"bitdew/internal/analysis/callgraph"
	"bitdew/internal/analysis/load"
)

// buildFixtureGraph analyzes the fixture package with a fresh loader and
// returns its call graph.
func buildFixtureGraph(t *testing.T) *callgraph.Graph {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	dir := filepath.Dir(file)
	root := filepath.Clean(filepath.Join(dir, "..", "..", ".."))
	l, err := load.New(root, filepath.Join(dir, "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	run, err := l.Analyze([]*analysis.Analyzer{callgraph.Analyzer}, []string{"callgraph"})
	if err != nil {
		t.Fatal(err)
	}
	g, ok := run.ResultOf("callgraph", callgraph.Analyzer).(*callgraph.Graph)
	if !ok {
		t.Fatalf("ResultOf returned %T, want *callgraph.Graph", run.ResultOf("callgraph", callgraph.Analyzer))
	}
	return g
}

// edgeStrings renders a graph's edges as "caller kind callee" lines in
// Funcs/Calls order.
func edgeStrings(g *callgraph.Graph) []string {
	var out []string
	for _, fn := range g.Funcs() {
		for _, e := range g.Calls(fn) {
			callee := e.Callee.Name()
			if sig, ok := e.Callee.Type().(*types.Signature); ok && sig.Recv() != nil {
				callee = "recv." + callee
			}
			out = append(out, fmt.Sprintf("%s %s %s", fn.Name(), e.Kind, callee))
		}
	}
	return out
}

func TestEdgeKinds(t *testing.T) {
	g := buildFixtureGraph(t)
	got := strings.Join(edgeStrings(g), "\n")
	want := []string{
		"direct call leaf",
		"spawns go leaf",
		"defers defer leaf",
		"methodCall call recv.M",
		"methodValue ref recv.M",
		"goLiteral go leaf",
		"deferLiteral defer leaf",
		"inPlaceLiteral call leaf",
		"storedLiteral ref leaf",
		"callsGeneric call generic",
	}
	for _, w := range want {
		if !strings.Contains(got, w) {
			t.Errorf("missing edge %q in:\n%s", w, got)
		}
	}
	// The method call must not double as a reference edge.
	if strings.Contains(got, "methodCall ref") {
		t.Errorf("call operand double-counted as reference:\n%s", got)
	}
}

func TestGenericResolvesToOrigin(t *testing.T) {
	g := buildFixtureGraph(t)
	for _, fn := range g.Funcs() {
		if fn.Name() != "callsGeneric" {
			continue
		}
		for _, e := range g.Calls(fn) {
			if e.Callee.Name() == "generic" && e.Callee != e.Callee.Origin() {
				t.Errorf("generic callee not resolved to origin: %v", e.Callee)
			}
		}
		return
	}
	t.Fatal("callsGeneric not in graph")
}

func TestFuncsSourceOrderAndDeterminism(t *testing.T) {
	a := buildFixtureGraph(t)
	b := buildFixtureGraph(t)
	ea, eb := edgeStrings(a), edgeStrings(b)
	if fmt.Sprint(ea) != fmt.Sprint(eb) {
		t.Errorf("two runs disagree:\n%v\n%v", ea, eb)
	}
	if first := a.Funcs()[0].Name(); first != "leaf" {
		t.Errorf("Funcs not in source order: first = %s, want leaf", first)
	}
	if da, db := a.DOT(), b.DOT(); da != db {
		t.Errorf("DOT renderings disagree")
	}
}

func TestDOT(t *testing.T) {
	g := buildFixtureGraph(t)
	dot := g.DOT()
	for _, w := range []string{
		`subgraph "cluster_callgraph"`,
		`"callgraph.direct" -> "callgraph.leaf";`,
		`"callgraph.spawns" -> "callgraph.leaf" [style=dashed,label="go"];`,
		`"callgraph.defers" -> "callgraph.leaf" [style=dotted,label="defer"];`,
		`"callgraph.methodValue" -> "callgraph.T.M" [color=gray,label="ref"];`,
	} {
		if !strings.Contains(dot, w) {
			t.Errorf("DOT missing %q in:\n%s", w, dot)
		}
	}
}
