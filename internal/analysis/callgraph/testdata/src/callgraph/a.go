// Fixture for the callgraph analyzer: one example of every edge kind and
// resolution rule.
package callgraph

func leaf() {}

func direct() { leaf() }

func spawns() { go leaf() }

func defers() { defer leaf() }

type T struct{}

func (T) M() {}

func methodCall(t T) { t.M() }

func methodValue(t T) func() { return t.M }

func goLiteral() {
	go func() {
		leaf()
	}()
}

func deferLiteral() {
	defer func() {
		leaf()
	}()
}

func inPlaceLiteral() {
	func() {
		leaf()
	}()
}

func storedLiteral() func() {
	f := func() {
		leaf()
	}
	return f
}

func generic[U any](u U) {}

func callsGeneric() { generic(1) }
