// Package callgraph builds the static call graph of one type-checked
// package: the shared substrate of bitdew-vet's interprocedural passes
// (lockorder, deadlineprop, splicereach). It is itself an Analyzer — the
// passes declare it in Requires and read the *Graph out of Pass.ResultOf —
// so the graph is built once per package no matter how many passes consume
// it.
//
// The graph is deliberately syntactic and sound only up to Go's static
// call structure:
//
//   - direct calls (f(), pkg.F(), recv.Method()) resolve through
//     go/types, with generic instantiations mapped to their origin
//     function;
//   - `go` and `defer` targets are edges of their own kinds — an
//     interprocedural pass decides whether "runs later / concurrently"
//     counts for its invariant (a deferred call does not run under the
//     caller's lock; a goroutine does not block its spawner);
//   - a method value or function value reference (f := s.method) is a
//     KindRef edge from the enclosing function: the callee may run
//     wherever the value flows, so reference edges over-approximate;
//   - calls through interface methods resolve to the interface method
//     object (not to implementations), and calls through function-typed
//     variables do not resolve at all. Both are soundness limits shared
//     with every static graph without whole-program pointer analysis;
//     DESIGN.md "Interprocedural analysis" records them.
//
// Function literals do not get nodes: a call inside a literal is
// attributed to the enclosing declared function, with the literal's
// launch mode (invoked in place → KindCall, go'd → KindGo, deferred →
// KindDefer, stored → KindRef) as the edge kind, so "may call when
// invoked" stays separable from "may cause to run eventually".
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"bitdew/internal/analysis"
	"bitdew/internal/analysis/astq"
)

// Kind classifies how a call site runs its callee.
type Kind int

const (
	// KindCall is a plain synchronous call: the callee runs to completion
	// inside the caller.
	KindCall Kind = iota
	// KindGo is a `go` statement target: the callee runs concurrently.
	KindGo
	// KindDefer is a `defer` statement target: the callee runs at return.
	KindDefer
	// KindRef is a function or method value reference: the callee runs
	// whenever (and wherever) the value is invoked.
	KindRef
)

func (k Kind) String() string {
	switch k {
	case KindCall:
		return "call"
	case KindGo:
		return "go"
	case KindDefer:
		return "defer"
	case KindRef:
		return "ref"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// An Edge is one resolved call site.
type Edge struct {
	// Caller is the declared function whose body contains the site.
	Caller *types.Func
	// Callee is the resolved static target; for generic functions, the
	// origin (uninstantiated) *types.Func. May belong to another package.
	Callee *types.Func
	// Site positions the call for diagnostics.
	Site token.Pos
	// Kind is the launch mode of the site.
	Kind Kind
}

// A Graph is the static call graph of one package.
type Graph struct {
	pkg   *types.Package
	fset  *token.FileSet
	funcs []*types.Func
	decls map[*types.Func]*ast.FuncDecl
	out   map[*types.Func][]Edge
}

// Funcs lists the functions and methods declared in the package, in
// source order (file name, then position) — the deterministic iteration
// order every consumer should use.
func (g *Graph) Funcs() []*types.Func { return g.funcs }

// Decl returns the declaration of a package function, or nil for foreign
// functions.
func (g *Graph) Decl(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// Calls lists the out-edges of fn in site order.
func (g *Graph) Calls(fn *types.Func) []Edge { return g.out[fn] }

// Analyzer builds the package call graph; interprocedural passes list it
// in Requires and read the *Graph from Pass.ResultOf.
var Analyzer = &analysis.Analyzer{
	Name: "callgraph",
	Doc: "build the package's static call graph (internal substrate, reports nothing)\n\n" +
		"Direct calls, go/defer targets and method/function value references, with generic calls " +
		"resolved to their origin; shared by lockorder, deadlineprop and splicereach via Requires.",
	Run: build,
}

func build(pass *analysis.Pass) (any, error) {
	g := &Graph{
		pkg:   pass.Pkg,
		fset:  pass.Fset,
		decls: make(map[*types.Func]*ast.FuncDecl),
		out:   make(map[*types.Func][]Edge),
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.funcs = append(g.funcs, fn)
			g.decls[fn] = fd
			collectEdges(pass.TypesInfo, g, fn, fd.Body, KindCall)
		}
	}
	sort.Slice(g.funcs, func(i, j int) bool { return g.funcs[i].Pos() < g.funcs[j].Pos() })
	for fn := range g.out {
		edges := g.out[fn]
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].Site != edges[j].Site {
				return edges[i].Site < edges[j].Site
			}
			return edges[i].Kind < edges[j].Kind
		})
	}
	return g, nil
}

// collectEdges walks one body, attributing sites to caller. mode is the
// launch kind of the region being walked: the top level of a declared
// function is KindCall territory; a go'd literal's body is KindGo, etc.
// operands tracks the Fun expressions of visited calls so their selectors
// are not double-counted as method values (Inspect visits the call before
// its children).
func collectEdges(info *types.Info, g *Graph, caller *types.Func, body ast.Node, mode Kind) {
	operands := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.GoStmt:
			edgeForCall(info, g, caller, nn.Call, demote(mode, KindGo))
			walkCallArgs(info, g, caller, nn.Call, mode)
			if lit, ok := ast.Unparen(nn.Call.Fun).(*ast.FuncLit); ok {
				collectEdges(info, g, caller, lit.Body, demote(mode, KindGo))
			}
			return false
		case *ast.DeferStmt:
			edgeForCall(info, g, caller, nn.Call, demote(mode, KindDefer))
			walkCallArgs(info, g, caller, nn.Call, mode)
			if lit, ok := ast.Unparen(nn.Call.Fun).(*ast.FuncLit); ok {
				collectEdges(info, g, caller, lit.Body, demote(mode, KindDefer))
			}
			return false
		case *ast.CallExpr:
			edgeForCall(info, g, caller, nn, mode)
			operands[ast.Unparen(nn.Fun)] = true
			if lit, ok := ast.Unparen(nn.Fun).(*ast.FuncLit); ok {
				// Invoked in place: the literal's body runs synchronously.
				collectEdges(info, g, caller, lit.Body, mode)
				walkCallArgs(info, g, caller, nn, mode)
				return false
			}
			return true
		case *ast.FuncLit:
			// A literal that is not the operand of a call/go/defer is a
			// stored value: its future invocations are reference edges.
			collectEdges(info, g, caller, nn.Body, KindRef)
			return false
		case *ast.SelectorExpr:
			// A method value, method expression or qualified function used
			// as a value (s.method, T.Method, pkg.Fn — not invoked here) is
			// a reference edge; call operands were marked by their CallExpr
			// parent.
			if operands[nn] {
				return true
			}
			if fn, ok := info.Uses[nn.Sel].(*types.Func); ok {
				addEdge(g, caller, origin(fn), nn.Pos(), KindRef)
			}
			return true
		}
		return true
	})
}

// walkCallArgs visits the argument expressions of a go/defer/in-place-lit
// call whose Fun was handled separately.
func walkCallArgs(info *types.Info, g *Graph, caller *types.Func, call *ast.CallExpr, mode Kind) {
	for _, a := range call.Args {
		collectEdges(info, g, caller, a, mode)
	}
}

// demote strengthens the launch mode: inside a go'd region everything is
// at best KindGo, etc. KindRef is the weakest (most deferred) mode.
func demote(outer, inner Kind) Kind {
	if outer == KindCall {
		return inner
	}
	if outer == KindRef || inner == KindRef {
		return KindRef
	}
	// go-within-defer, defer-within-go: either way the callee neither
	// blocks the caller nor runs under its locks; KindGo is the closest.
	if outer == inner {
		return outer
	}
	return KindGo
}

// edgeForCall resolves one call expression into an edge, if the callee is
// statically known.
func edgeForCall(info *types.Info, g *Graph, caller *types.Func, call *ast.CallExpr, mode Kind) {
	fn := astq.Callee(info, call)
	if fn == nil {
		return
	}
	addEdge(g, caller, origin(fn), call.Pos(), mode)
}

// origin maps an instantiated generic function to its origin declaration,
// the object facts attach to.
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

func addEdge(g *Graph, caller, callee *types.Func, site token.Pos, kind Kind) {
	g.out[caller] = append(g.out[caller], Edge{Caller: caller, Callee: callee, Site: site, Kind: kind})
}

// DOT renders the graph in Graphviz syntax, nodes qualified by package
// base name, edge styles by kind (solid call, dashed go, dotted defer,
// gray ref). bitdew-vet -graph concatenates per-package renderings into
// one digraph body.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  subgraph \"cluster_%s\" {\n    label=%q;\n", g.pkg.Path(), g.pkg.Path())
	for _, fn := range g.funcs {
		fmt.Fprintf(&b, "    %q;\n", nodeName(fn))
	}
	fmt.Fprintf(&b, "  }\n")
	for _, fn := range g.funcs {
		for _, e := range g.out[fn] {
			attr := ""
			switch e.Kind {
			case KindGo:
				attr = " [style=dashed,label=\"go\"]"
			case KindDefer:
				attr = " [style=dotted,label=\"defer\"]"
			case KindRef:
				attr = " [color=gray,label=\"ref\"]"
			}
			fmt.Fprintf(&b, "  %q -> %q%s;\n", nodeName(e.Caller), nodeName(e.Callee), attr)
		}
	}
	return b.String()
}

// nodeName renders a function node as pkg.Recv.Name or pkg.Name.
func nodeName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			return pkg + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}
