// Package transfer implements BitDew's Data Transfer service (DT) and the
// out-of-band transfer framework of paper §3.4.2 and Figure 2.
//
// BitDew never moves bytes itself: data travel out-of-band through
// pluggable file-transfer protocols. A protocol plugs in by implementing
// the OOBTransfer interface — the paper's seven methods: open and close the
// connection, probe the transfer, and send/receive from the sender and
// receiver sides — and registering a factory under its protocol name.
// Reliability is receiver-driven: the receiver is the authority on how many
// bytes landed and whether the MD5 signature matches, and the engine polls
// that state on the monitoring period, resuming or restarting transfers
// that stall.
package transfer

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"bitdew/internal/data"
	"bitdew/internal/protocols/ftp"
	"bitdew/internal/protocols/httpx"
	"bitdew/internal/protocols/swarm"
	"bitdew/internal/repository"
)

// Progress is a snapshot of a transfer observed from the receiver side.
type Progress struct {
	// Bytes transferred so far.
	Bytes int64
	// Total bytes expected (0 when unknown).
	Total int64
	// Done reports logical completion (all bytes landed and verified when
	// verification is the protocol's job).
	Done bool
}

// OOBTransfer is one out-of-band transfer of one datum, bound at creation
// to the datum, a locator and the local storage backend. Implementations
// correspond to Figure 2's BlockingOOBTransfer: Send and Receive block
// until the protocol finishes or fails. Non-blocking behaviour is layered
// on top by the engine (Figure 2's NonBlockingOOBTransfer), so protocol
// authors only write the seven primitive methods.
type OOBTransfer interface {
	// Connect opens protocol connections.
	Connect() error
	// Disconnect closes protocol connections. It must be safe to call
	// after a failed Connect and more than once.
	Disconnect() error
	// Probe reports receiver-side progress.
	Probe() (Progress, error)
	// Receive downloads the datum from the locator into local storage,
	// resuming from whatever prefix is already stored when the protocol
	// supports it.
	Receive() error
	// Send uploads the datum from local storage to the locator.
	Send() error
}

// Factory builds a transfer for (datum, locator) over the given backend.
type Factory func(d data.Data, loc data.Locator, backend repository.Backend) (OOBTransfer, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// RegisterProtocol installs a transfer factory under a protocol name,
// replacing any previous registration. The built-in protocols ("ftp",
// "http", "bittorrent") are registered at init; users plug in new protocols
// the same way, which is the extensibility point of Figure 2.
func RegisterProtocol(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[name] = f
}

// Protocols lists registered protocol names, sorted.
func Protocols() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// New builds a transfer for the locator's protocol.
func New(d data.Data, loc data.Locator, backend repository.Backend) (OOBTransfer, error) {
	registryMu.RLock()
	f := registry[loc.Protocol]
	registryMu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("transfer: no protocol %q registered (have %v)", loc.Protocol, Protocols())
	}
	return f(d, loc, backend)
}

func init() {
	RegisterProtocol("ftp", newFTPTransfer)
	RegisterProtocol("http", newHTTPTransfer)
	RegisterProtocol("bittorrent", newSwarmTransfer)
}

// errNotConnected is returned by operations before Connect.
var errNotConnected = errors.New("transfer: not connected")

// ftpTransfer moves a datum over the ftp protocol with offset resume.
type ftpTransfer struct {
	d       data.Data
	loc     data.Locator
	backend repository.Backend

	mu     sync.Mutex
	client *ftp.Client
	done   bool
}

func newFTPTransfer(d data.Data, loc data.Locator, backend repository.Backend) (OOBTransfer, error) {
	return &ftpTransfer{d: d, loc: loc, backend: backend}, nil
}

func (t *ftpTransfer) Connect() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.client != nil {
		return nil
	}
	c, err := ftp.Dial(t.loc.Host)
	if err != nil {
		return err
	}
	t.client = c
	return nil
}

func (t *ftpTransfer) Disconnect() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.client == nil {
		return nil
	}
	err := t.client.Close()
	t.client = nil
	return err
}

func (t *ftpTransfer) Probe() (Progress, error) {
	stored, err := t.backend.Size(string(t.d.UID))
	if err != nil {
		stored = 0
	}
	t.mu.Lock()
	done := t.done
	t.mu.Unlock()
	return Progress{Bytes: stored, Total: t.d.Size, Done: done}, nil
}

func (t *ftpTransfer) Receive() error {
	t.mu.Lock()
	c := t.client
	t.mu.Unlock()
	if c == nil {
		return errNotConnected
	}
	// Resume from the locally stored prefix.
	offset, err := t.backend.Size(string(t.d.UID))
	if err != nil {
		offset = 0
	}
	if offset > t.d.Size {
		// Stale larger content: restart.
		if err := t.backend.Put(string(t.d.UID), nil); err != nil {
			return err
		}
		offset = 0
	}
	w := &backendWriter{backend: t.backend, ref: string(t.d.UID)}
	if _, err := c.Retrieve(t.loc.Ref, offset, w); err != nil {
		return err
	}
	t.mu.Lock()
	t.done = true
	t.mu.Unlock()
	return nil
}

func (t *ftpTransfer) Send() error {
	t.mu.Lock()
	c := t.client
	t.mu.Unlock()
	if c == nil {
		return errNotConnected
	}
	content, err := t.backend.Get(string(t.d.UID))
	if err != nil {
		return fmt.Errorf("transfer: local content of %s: %w", t.d.UID, err)
	}
	// Resume an interrupted upload where the server left off.
	offset, err := c.Size(t.loc.Ref)
	if err != nil || offset > int64(len(content)) {
		offset = 0
	}
	if err := c.Store(t.loc.Ref, offset, int64(len(content))-offset, bytes.NewReader(content[offset:])); err != nil {
		return err
	}
	t.mu.Lock()
	t.done = true
	t.mu.Unlock()
	return nil
}

// backendWriter appends a download stream into a backend ref.
type backendWriter struct {
	backend repository.Backend
	ref     string
}

func (w *backendWriter) Write(p []byte) (int, error) {
	if err := w.backend.Append(w.ref, p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// httpTransfer moves a datum over HTTP with Range resume.
type httpTransfer struct {
	d       data.Data
	loc     data.Locator
	backend repository.Backend

	mu        sync.Mutex
	client    *httpx.Client
	connected bool
	done      bool
}

func newHTTPTransfer(d data.Data, loc data.Locator, backend repository.Backend) (OOBTransfer, error) {
	return &httpTransfer{d: d, loc: loc, backend: backend, client: httpx.NewClient()}, nil
}

func (t *httpTransfer) Connect() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.connected = true // HTTP connects per request
	return nil
}

func (t *httpTransfer) Disconnect() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.connected = false
	return nil
}

func (t *httpTransfer) Probe() (Progress, error) {
	stored, err := t.backend.Size(string(t.d.UID))
	if err != nil {
		stored = 0
	}
	t.mu.Lock()
	done := t.done
	t.mu.Unlock()
	return Progress{Bytes: stored, Total: t.d.Size, Done: done}, nil
}

func (t *httpTransfer) Receive() error {
	t.mu.Lock()
	ok := t.connected
	t.mu.Unlock()
	if !ok {
		return errNotConnected
	}
	offset, err := t.backend.Size(string(t.d.UID))
	if err != nil {
		offset = 0
	}
	if offset > t.d.Size {
		if err := t.backend.Put(string(t.d.UID), nil); err != nil {
			return err
		}
		offset = 0
	}
	w := &backendWriter{backend: t.backend, ref: string(t.d.UID)}
	if offset == t.d.Size && t.d.Size > 0 {
		// Already fully stored; nothing to fetch.
	} else if _, err := t.client.Get(t.loc.Host, t.loc.Ref, offset, w); err != nil {
		return err
	}
	t.mu.Lock()
	t.done = true
	t.mu.Unlock()
	return nil
}

func (t *httpTransfer) Send() error {
	t.mu.Lock()
	ok := t.connected
	t.mu.Unlock()
	if !ok {
		return errNotConnected
	}
	content, err := t.backend.Get(string(t.d.UID))
	if err != nil {
		return fmt.Errorf("transfer: local content of %s: %w", t.d.UID, err)
	}
	if err := t.client.Put(t.loc.Host, t.loc.Ref, bytes.NewReader(content)); err != nil {
		return err
	}
	t.mu.Lock()
	t.done = true
	t.mu.Unlock()
	return nil
}

// swarmTransfer joins a collaborative swarm: Receive leeches, and after
// completion the peer keeps serving pieces until Disconnect. Send seeds the
// local content into the swarm (used by the node that issued put).
type swarmTransfer struct {
	d       data.Data
	loc     data.Locator // Host is the tracker address; Ref the data UID
	backend repository.Backend

	mu   sync.Mutex
	peer *swarm.Peer
	done bool
}

func newSwarmTransfer(d data.Data, loc data.Locator, backend repository.Backend) (OOBTransfer, error) {
	if d.Checksum == "" {
		return nil, fmt.Errorf("transfer: bittorrent needs the datum checksum as infohash (datum %s has none)", d.UID)
	}
	return &swarmTransfer{d: d, loc: loc, backend: backend}, nil
}

func (t *swarmTransfer) Connect() error { return nil } // peers start in Send/Receive

func (t *swarmTransfer) Disconnect() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.peer != nil {
		err := t.peer.Close()
		t.peer = nil
		return err
	}
	return nil
}

func (t *swarmTransfer) Probe() (Progress, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.peer == nil {
		stored, err := t.backend.Size(string(t.d.UID))
		if err != nil {
			stored = 0
		}
		return Progress{Bytes: stored, Total: t.d.Size, Done: t.done}, nil
	}
	have, total := t.peer.Progress()
	bytes := int64(0)
	if total > 0 {
		bytes = int64(float64(have) / float64(total) * float64(t.d.Size))
	}
	return Progress{Bytes: bytes, Total: t.d.Size, Done: t.done}, nil
}

func (t *swarmTransfer) Receive() error {
	meta, err := swarm.FetchMeta(t.loc.Host, t.d.Checksum)
	if err != nil {
		return fmt.Errorf("transfer: fetching swarm metainfo: %w", err)
	}
	meta.Ref = string(t.d.UID) // store under the local UID ref
	p, err := swarm.NewLeecher(t.backend, meta, t.loc.Host, "127.0.0.1:0")
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.peer = p
	t.mu.Unlock()
	if err := p.Download(10 * time.Minute); err != nil {
		return err
	}
	t.mu.Lock()
	t.done = true
	t.mu.Unlock()
	return nil
}

func (t *swarmTransfer) Send() error {
	content, err := t.backend.Get(string(t.d.UID))
	if err != nil {
		return fmt.Errorf("transfer: local content of %s: %w", t.d.UID, err)
	}
	meta := swarm.NewMetainfo(string(t.d.UID), content, swarm.DefaultPieceSize)
	p, err := swarm.NewSeeder(t.backend, meta, t.loc.Host, "127.0.0.1:0")
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.peer = p
	t.done = true
	t.mu.Unlock()
	return nil
}
