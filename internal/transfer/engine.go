package transfer

import (
	"fmt"
	"sync"
	"time"

	"bitdew/internal/data"
	"bitdew/internal/repository"
)

// DefaultMonitorPeriod is the receiver-driven monitoring heartbeat; the
// paper's stress experiments configure the DT heartbeat at 500ms.
const DefaultMonitorPeriod = 500 * time.Millisecond

// DefaultMaxAttempts bounds automatic resume attempts per transfer.
const DefaultMaxAttempts = 3

// Engine executes out-of-band transfers on a volatile host: it enforces a
// concurrency level, retries and resumes faulty transfers, reports progress
// to the DT service on the monitoring period, and verifies content
// integrity (size + MD5) on completion. It is the machinery beneath the
// TransferManager API.
type Engine struct {
	backend repository.Backend
	// dtFor routes a datum's monitoring to its DT service — over a sharded
	// service plane, the DT of the datum's home shard. It may be nil, or
	// return nil, when running detached from any DT service.
	dtFor func(data.UID) *Client
	host  string

	MonitorPeriod time.Duration
	MaxAttempts   int

	sem chan struct{}

	mu      sync.Mutex
	handles map[data.UID][]*Handle // by data UID
	// inflight coalesces concurrent downloads of one datum onto a single
	// transfer. Two goroutines appending the same stream into one backend
	// ref interleave into oversized content, which verification then deletes
	// — possibly right after the OTHER download reported success, stranding
	// its caller with no content. Under the sustained-load harness (many
	// clients fetching a shared working set through one engine) that window
	// is hit constantly; coalescing makes the second caller wait on the
	// first transfer's handle instead.
	inflight map[data.UID]*Handle
}

// NewEngine builds a transfer engine over local storage. dt may be nil
// (transfers then run unreported, as in protocol-only benchmarks);
// concurrency is the maximum number of simultaneous transfers.
func NewEngine(backend repository.Backend, dt *Client, host string, concurrency int) *Engine {
	var dtFor func(data.UID) *Client
	if dt != nil {
		dtFor = func(data.UID) *Client { return dt }
	}
	return NewEngineRouted(backend, dtFor, host, concurrency)
}

// NewEngineRouted is NewEngine with per-datum DT routing: dtFor maps each
// datum to the DT client its transfers report to (the home shard's, over a
// sharded service plane). A nil dtFor — or a nil client returned for a
// datum — runs those transfers unreported.
func NewEngineRouted(backend repository.Backend, dtFor func(data.UID) *Client, host string, concurrency int) *Engine {
	if concurrency <= 0 {
		concurrency = 4
	}
	return &Engine{
		backend:       backend,
		dtFor:         dtFor,
		host:          host,
		MonitorPeriod: DefaultMonitorPeriod,
		MaxAttempts:   DefaultMaxAttempts,
		sem:           make(chan struct{}, concurrency),
		handles:       make(map[data.UID][]*Handle),
		inflight:      make(map[data.UID]*Handle),
	}
}

// dtOf resolves the DT client of one datum (nil when unreported).
func (e *Engine) dtOf(uid data.UID) *Client {
	if e.dtFor == nil {
		return nil
	}
	return e.dtFor(uid)
}

// Backend exposes the engine's local storage.
func (e *Engine) Backend() repository.Backend { return e.backend }

// Handle tracks one asynchronous transfer.
type Handle struct {
	DataUID data.UID
	Kind    string // "download" | "upload"

	mu       sync.Mutex
	progress Progress
	state    State
	err      error
	done     chan struct{}
}

// Err returns the terminal error (nil while running or on success).
func (h *Handle) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.err
}

// State returns the current state.
func (h *Handle) State() State {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// Probe returns the latest observed progress without blocking.
func (h *Handle) Probe() Progress {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.progress
}

// Wait blocks until the transfer reaches a terminal state and returns its
// error, mirroring the paper's transferManager.waitFor(data).
func (h *Handle) Wait() error {
	<-h.done
	return h.Err()
}

// WaitTimeout is Wait with a deadline.
func (h *Handle) WaitTimeout(d time.Duration) error {
	select {
	case <-h.done:
		return h.Err()
	case <-time.After(d):
		return fmt.Errorf("transfer: wait for %s timed out after %v", h.DataUID, d)
	}
}

func (h *Handle) finish(state State, err error) {
	h.mu.Lock()
	h.state = state
	h.err = err
	h.mu.Unlock()
	close(h.done)
}

// Download starts fetching d from loc into local storage and returns
// immediately (the non-blocking interface of the TransferManager API).
func (e *Engine) Download(d data.Data, loc data.Locator) *Handle {
	return e.start(d, loc, "download", "", false)
}

// Upload starts pushing d's local content to loc.
func (e *Engine) Upload(d data.Data, loc data.Locator) *Handle {
	return e.start(d, loc, "upload", "", false)
}

// UploadAll starts one upload per (ds[i], locs[i]) pair, registering the N
// transfers with their DT services in a single batch frame per service
// (one per home shard, instead of one Open round trip per transfer) — the
// engine-side leg of the batch-first request path. The transfers themselves
// then run concurrently under the engine's usual concurrency cap.
func (e *Engine) UploadAll(ds []data.Data, locs []data.Locator) []*Handle {
	ids := make([]data.UID, len(ds))
	// Group the opens by DT client: a single-plane engine makes one
	// OpenAll, a sharded one makes one per shard with uploads homed there.
	groups := make(map[*Client][]int)
	for i, d := range ds {
		if dt := e.dtOf(d.UID); dt != nil {
			groups[dt] = append(groups[dt], i)
		}
	}
	for dt, idx := range groups {
		reqs := make([]OpenRequest, len(idx))
		for j, i := range idx {
			reqs[j] = OpenRequest{DataUID: ds[i].UID, Protocol: locs[i].Protocol, Host: e.host, Total: ds[i].Size}
		}
		if opened, err := dt.OpenAll(reqs); err == nil && len(opened) == len(idx) {
			for j, i := range idx {
				ids[i] = opened[j]
			}
		}
	}
	handles := make([]*Handle, len(ds))
	for i, d := range ds {
		handles[i] = e.start(d, locs[i], "upload", ids[i], true)
	}
	return handles
}

// start launches one transfer goroutine. dtOpened marks that DT
// registration was already attempted (the batched OpenAll); a zero dtID
// then means the open failed and the transfer runs unreported rather than
// re-opening against a service that just refused.
//
// Concurrent downloads of one datum coalesce: the second caller gets the
// first transfer's handle. A download that fails leaves the inflight slot
// free again, so a caller falling back through alternative locators still
// launches its own fresh attempt.
func (e *Engine) start(d data.Data, loc data.Locator, kind string, dtID data.UID, dtOpened bool) *Handle {
	e.mu.Lock()
	if kind == "download" {
		if h := e.inflight[d.UID]; h != nil {
			e.mu.Unlock()
			return h
		}
	}
	h := &Handle{DataUID: d.UID, Kind: kind, state: StatePending, done: make(chan struct{})}
	if kind == "download" {
		e.inflight[d.UID] = h
	}
	e.handles[d.UID] = append(e.handles[d.UID], h)
	e.mu.Unlock()
	go func() {
		e.run(h, d, loc, dtID, dtOpened)
		if kind == "download" {
			e.mu.Lock()
			if e.inflight[d.UID] == h {
				delete(e.inflight, d.UID)
			}
			e.mu.Unlock()
		}
	}()
	return h
}

// WaitFor blocks until every transfer of the given datum completes,
// returning the first error.
func (e *Engine) WaitFor(uid data.UID) error {
	e.mu.Lock()
	hs := append([]*Handle(nil), e.handles[uid]...)
	e.mu.Unlock()
	var first error
	for _, h := range hs {
		if err := h.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Barrier blocks until every handle completes, returning the first error —
// the transfer barrier of the TransferManager API.
func Barrier(handles ...*Handle) error {
	var first error
	for _, h := range handles {
		if err := h.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// run executes one transfer with retry/resume, monitoring and verification.
// dtID is the pre-opened DT registration (UploadAll's batched open), or
// empty to open one here — unless dtOpened says the batched attempt
// already failed, in which case the transfer runs unreported.
func (e *Engine) run(h *Handle, d data.Data, loc data.Locator, dtID data.UID, dtOpened bool) {
	e.sem <- struct{}{}
	defer func() { <-e.sem }()

	dt := e.dtOf(d.UID)
	if dtID == "" && !dtOpened && dt != nil {
		id, err := dt.Open(d.UID, loc.Protocol, e.host, d.Size)
		if err == nil {
			dtID = id
		}
	}
	report := func(p Progress, st State, msg string) {
		h.mu.Lock()
		h.progress = p
		h.state = st
		h.mu.Unlock()
		if dt != nil && dtID != "" {
			dt.Report(dtID, p.Bytes, st, msg)
		}
	}

	var lastErr error
	for attempt := 1; attempt <= e.MaxAttempts; attempt++ {
		if attempt > 1 && dt != nil && dtID != "" {
			dt.Retry(dtID)
		}
		t, err := New(d, loc, e.backend)
		if err != nil {
			report(Progress{}, StateFailed, err.Error())
			h.finish(StateFailed, err)
			return
		}
		err = e.attempt(t, h, d, report)
		t.Disconnect()
		if err == nil {
			// Receiver-driven verification: the receiver checks size and
			// MD5 signature of what landed before declaring success.
			if h.Kind == "download" {
				if verr := e.verify(d); verr != nil {
					// Corrupt content: discard and retry from scratch.
					e.backend.Delete(string(d.UID))
					lastErr = verr
					continue
				}
			}
			p := Progress{Bytes: d.Size, Total: d.Size, Done: true}
			report(p, StateComplete, "")
			h.finish(StateComplete, nil)
			return
		}
		lastErr = err
	}
	report(h.Probe(), StateFailed, lastErr.Error())
	h.finish(StateFailed, fmt.Errorf("transfer: %s of %s failed after %d attempts: %w",
		h.Kind, d.UID, e.MaxAttempts, lastErr))
}

// attempt performs one protocol run while a monitor goroutine samples
// progress on the monitoring period.
func (e *Engine) attempt(t OOBTransfer, h *Handle, d data.Data, report func(Progress, State, string)) error {
	if err := t.Connect(); err != nil {
		return err
	}
	stop := make(chan struct{})
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		ticker := time.NewTicker(e.MonitorPeriod)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				if p, err := t.Probe(); err == nil {
					report(p, StateActive, "")
				}
			}
		}
	}()
	var err error
	if h.Kind == "upload" {
		err = t.Send()
	} else {
		err = t.Receive()
	}
	close(stop)
	monWG.Wait()
	return err
}

// verify checks the downloaded content against the datum's recorded size
// and MD5 checksum. Data with no recorded checksum (empty slots) pass.
func (e *Engine) verify(d data.Data) error {
	if d.Checksum == "" && d.Size == 0 {
		return nil
	}
	content, err := e.backend.Get(string(d.UID))
	if err != nil {
		return fmt.Errorf("transfer: verifying %s: %w", d.UID, err)
	}
	if int64(len(content)) != d.Size {
		return fmt.Errorf("transfer: %s: received %d bytes, want %d", d.UID, len(content), d.Size)
	}
	if sum := data.ChecksumBytes(content); sum != d.Checksum {
		return fmt.Errorf("transfer: %s: checksum %s != recorded %s", d.UID, sum, d.Checksum)
	}
	return nil
}
