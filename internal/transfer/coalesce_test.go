package transfer

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"bitdew/internal/data"
	"bitdew/internal/repository"
)

// TestConcurrentDownloadsCoalesce pins the singleflight behaviour: while a
// download of a datum is in flight, further Download calls for the same UID
// return the same handle instead of spawning a second transfer that would
// interleave appends into the shared backend (and whose failed verification
// would delete content the first transfer just vouched for).
func TestConcurrentDownloadsCoalesce(t *testing.T) {
	f := newFixture(t)
	content := randBytes(50_000, 30)
	d := f.seed("shared", content)

	local := repository.NewMemBackend()
	e := NewEngine(local, f.dtClient, "w", 1)
	// Occupy the engine's only transfer slot so the first download is
	// deterministically still in flight when the second request arrives.
	e.sem <- struct{}{}
	h1 := e.Download(d, f.locator(d, "http"))
	h2 := e.Download(d, f.locator(d, "http"))
	if h1 != h2 {
		t.Fatal("concurrent downloads of one datum got distinct handles")
	}
	<-e.sem

	if err := Barrier(h1, h2); err != nil {
		t.Fatal(err)
	}
	got, err := local.Get(string(d.UID))
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("coalesced download: %d bytes, %v", len(got), err)
	}

	// The slot is released on completion: a later download is a fresh
	// transfer, not a stale coalescence onto the finished handle.
	h3 := e.Download(d, f.locator(d, "http"))
	if h3 == h1 {
		t.Fatal("completed download still absorbing new requests")
	}
	if err := h3.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestFailedDownloadDoesNotPoisonRetry: a failed download must vacate the
// inflight slot so a caller falling back through alternative locators (the
// FetchAll healing path) gets a real second attempt.
func TestFailedDownloadDoesNotPoisonRetry(t *testing.T) {
	f := newFixture(t)
	content := randBytes(8_000, 31)
	d := f.seed("retryable", content)

	local := repository.NewMemBackend()
	e := NewEngine(local, f.dtClient, "w", 1)
	e.MaxAttempts = 1
	dead := data.Locator{DataUID: d.UID, Protocol: "http", Host: "127.0.0.1:1", Ref: string(d.UID)}
	if err := e.Download(d, dead).Wait(); err == nil {
		t.Fatal("download from dead host succeeded")
	}
	if err := e.Download(d, f.locator(d, "http")).Wait(); err != nil {
		t.Fatalf("retry with a live locator after a failure: %v", err)
	}
	got, _ := local.Get(string(d.UID))
	if !bytes.Equal(got, content) {
		t.Fatal("retried download mismatch")
	}
}

// TestConcurrentSameUIDHammer is the race the sustained-load harness first
// exposed: many clients sharing one engine fetch the same datum at once.
// Without coalescing, interleaved appends fail verification and the cleanup
// delete destroys content a concurrently-successful download reported good.
func TestConcurrentSameUIDHammer(t *testing.T) {
	f := newFixture(t)
	content := randBytes(120_000, 32)
	d := f.seed("hot", content)

	local := repository.NewMemBackend()
	e := NewEngine(local, f.dtClient, "w", 8)
	const goroutines = 16
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := e.Download(d, f.locator(d, "http")).Wait(); err != nil {
				errs <- err
				return
			}
			got, err := local.Get(string(d.UID))
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, content) {
				errs <- fmt.Errorf("content mismatch: %d bytes", len(got))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent same-UID download: %v", err)
	}
}
