package transfer

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"bitdew/internal/data"
	"bitdew/internal/rpc"
)

// ServiceName is the rpc service name of the Data Transfer service.
const ServiceName = "dt"

// State is the life-cycle state of a tracked transfer.
type State int

const (
	// StatePending: registered, not yet moving bytes.
	StatePending State = iota
	// StateActive: bytes are moving.
	StateActive
	// StateComplete: all bytes landed and the receiver verified integrity.
	StateComplete
	// StateFailed: given up after exhausting retries.
	StateFailed
	// StateCancelled: withdrawn by the client.
	StateCancelled
)

func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateActive:
		return "active"
	case StateComplete:
		return "complete"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Record is the DT service's view of one transfer. The receiver host
// reports progress on every monitoring heartbeat — the receiver-driven
// principle: only the receiver can verify size and MD5 of what landed.
type Record struct {
	ID       data.UID
	DataUID  data.UID
	Protocol string
	Host     string // receiving host identifier
	State    State
	Bytes    int64
	Total    int64
	Attempts int
	Started  time.Time
	Updated  time.Time
	Error    string
}

// Service is the Data Transfer service run on a stable host: the registry
// of in-flight transfers, their reliability state and bandwidth accounting.
type Service struct {
	mu        sync.Mutex
	transfers map[data.UID]*Record
	// bytesMoved accumulates completed bytes for bandwidth reporting.
	bytesMoved int64
	// requests counts every DT call, the protocol-overhead figure the
	// paper analyses in §4.3.
	requests int64
}

// NewService returns an empty Data Transfer service.
func NewService() *Service {
	return &Service{transfers: make(map[data.UID]*Record)}
}

// Open registers a new transfer and returns its ID.
func (s *Service) Open(dataUID data.UID, protocol, host string, total int64) data.UID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests++
	id := data.NewUID()
	now := time.Now()
	s.transfers[id] = &Record{
		ID: id, DataUID: dataUID, Protocol: protocol, Host: host,
		State: StatePending, Total: total, Started: now, Updated: now,
	}
	return id
}

// Report updates receiver-observed progress for a transfer.
func (s *Service) Report(id data.UID, bytes int64, state State, errMsg string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests++
	r, ok := s.transfers[id]
	if !ok {
		return fmt.Errorf("transfer: unknown transfer %s", id)
	}
	if bytes > r.Bytes && (state == StateComplete) {
		s.bytesMoved += bytes - r.Bytes
	}
	r.Bytes = bytes
	r.State = state
	r.Error = errMsg
	r.Updated = time.Now()
	if state == StateActive && r.Attempts == 0 {
		r.Attempts = 1
	}
	return nil
}

// Retry increments a transfer's attempt counter after a failure-and-resume.
func (s *Service) Retry(id data.UID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests++
	r, ok := s.transfers[id]
	if !ok {
		return fmt.Errorf("transfer: unknown transfer %s", id)
	}
	r.Attempts++
	r.State = StateActive
	r.Updated = time.Now()
	return nil
}

// Get returns a transfer record.
func (s *Service) Get(id data.UID) (Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests++
	r, ok := s.transfers[id]
	if !ok {
		return Record{}, fmt.Errorf("transfer: unknown transfer %s", id)
	}
	return *r, nil
}

// Active lists transfers still pending or moving, sorted by ID.
func (s *Service) Active() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests++
	var out []Record
	for _, r := range s.transfers {
		if r.State == StatePending || r.State == StateActive {
			out = append(out, *r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats reports cumulative completed bytes and DT request count.
func (s *Service) Stats() (bytesMoved, requests int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesMoved, s.requests
}

// Mount registers the DT methods on an rpc Mux under "dt".
func (s *Service) Mount(m *rpc.Mux) {
	type openArgs struct {
		DataUID  data.UID
		Protocol string
		Host     string
		Total    int64
	}
	rpc.Register(m, ServiceName, "Open", func(a openArgs) (data.UID, error) {
		return s.Open(a.DataUID, a.Protocol, a.Host, a.Total), nil
	})
	type reportArgs struct {
		ID    data.UID
		Bytes int64
		State State
		Err   string
	}
	rpc.Register(m, ServiceName, "Report", func(a reportArgs) (struct{}, error) {
		return struct{}{}, s.Report(a.ID, a.Bytes, a.State, a.Err)
	})
	rpc.Register(m, ServiceName, "Retry", func(id data.UID) (struct{}, error) {
		return struct{}{}, s.Retry(id)
	})
	rpc.Register(m, ServiceName, "Get", func(id data.UID) (Record, error) {
		return s.Get(id)
	})
	rpc.Register(m, ServiceName, "Active", func(struct{}) ([]Record, error) {
		return s.Active(), nil
	})
}

// Client is the typed client of a remote DT service.
type Client struct {
	c rpc.Client
}

// NewClient wraps an rpc client as a DT client.
func NewClient(c rpc.Client) *Client { return &Client{c: c} }

// Open registers a transfer with the DT service.
func (c *Client) Open(dataUID data.UID, protocol, host string, total int64) (data.UID, error) {
	var id data.UID
	err := c.c.Call(ServiceName, "Open", OpenRequest{dataUID, protocol, host, total}, &id)
	return id, err
}

// OpenRequest describes one transfer to register; it doubles as Open's
// wire argument (field names must match the handler-side struct in Mount).
type OpenRequest struct {
	DataUID  data.UID
	Protocol string
	Host     string
	Total    int64
}

// OpenAll registers N transfers in one batch frame, returning their IDs
// aligned with reqs. A per-call failure leaves a zero UID at its slot (the
// transfer then simply runs unreported, like a nil DT client).
func (c *Client) OpenAll(reqs []OpenRequest) ([]data.UID, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	ids := make([]data.UID, len(reqs))
	calls := make([]*rpc.Call, len(reqs))
	for i, r := range reqs {
		calls[i] = rpc.NewCall(ServiceName, "Open", r, &ids[i])
	}
	//vet:ignore errlost a per-call failure deliberately leaves a zero UID at its slot: that transfer runs unreported, exactly like a nil DT client
	if err := rpc.CallBatch(c.c, calls); err != nil {
		return nil, err
	}
	return ids, nil
}

// Report sends receiver-observed progress.
func (c *Client) Report(id data.UID, bytes int64, state State, errMsg string) error {
	args := struct {
		ID    data.UID
		Bytes int64
		State State
		Err   string
	}{id, bytes, state, errMsg}
	return c.c.Call(ServiceName, "Report", args, nil)
}

// Retry records a retry attempt.
func (c *Client) Retry(id data.UID) error {
	return c.c.Call(ServiceName, "Retry", id, nil)
}

// Get fetches a transfer record.
func (c *Client) Get(id data.UID) (Record, error) {
	var r Record
	err := c.c.Call(ServiceName, "Get", id, &r)
	return r, err
}

// Active lists in-flight transfers.
func (c *Client) Active() ([]Record, error) {
	var out []Record
	err := c.c.Call(ServiceName, "Active", struct{}{}, &out)
	return out, err
}
