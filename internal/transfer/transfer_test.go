package transfer

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"bitdew/internal/data"
	"bitdew/internal/protocols/ftp"
	"bitdew/internal/protocols/httpx"
	"bitdew/internal/protocols/swarm"
	"bitdew/internal/repository"
	"bitdew/internal/rpc"
)

func randBytes(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// fixture bundles one serving host (ftp+http+tracker over one backend).
type fixture struct {
	backend  repository.Backend
	ftpSrv   *ftp.Server
	httpSrv  *httpx.Server
	tracker  *swarm.Tracker
	dt       *Service
	dtClient *Client
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{backend: repository.NewMemBackend()}
	var err error
	if f.ftpSrv, err = ftp.NewServer(f.backend, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.ftpSrv.Close() })
	if f.httpSrv, err = httpx.NewServer(f.backend, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.httpSrv.Close() })
	if f.tracker, err = swarm.NewTracker("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.tracker.Close() })

	f.dt = NewService()
	mux := rpc.NewMux()
	f.dt.Mount(mux)
	f.dtClient = NewClient(rpc.NewLocalClient(mux, 0))
	return f
}

// seed stores content server-side and returns the datum.
func (f *fixture) seed(name string, content []byte) data.Data {
	d := *data.NewFromBytes(name, content)
	f.backend.Put(string(d.UID), content)
	return d
}

func (f *fixture) locator(d data.Data, protocol string) data.Locator {
	switch protocol {
	case "ftp":
		return data.Locator{DataUID: d.UID, Protocol: "ftp", Host: f.ftpSrv.Addr(), Ref: string(d.UID)}
	case "http":
		return data.Locator{DataUID: d.UID, Protocol: "http", Host: f.httpSrv.Addr(), Ref: string(d.UID)}
	case "bittorrent":
		return data.Locator{DataUID: d.UID, Protocol: "bittorrent", Host: f.tracker.Addr(), Ref: string(d.UID)}
	default:
		panic("unknown protocol " + protocol)
	}
}

func TestDownloadEachProtocol(t *testing.T) {
	for _, proto := range []string{"ftp", "http", "bittorrent"} {
		t.Run(proto, func(t *testing.T) {
			f := newFixture(t)
			content := randBytes(200_000, 1)
			d := f.seed("payload", content)

			if proto == "bittorrent" {
				// Seed the swarm from the server backend.
				meta := swarm.NewMetainfo(string(d.UID), content, 16*1024)
				seeder, err := swarm.NewSeeder(f.backend, meta, f.tracker.Addr(), "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				defer seeder.Close()
			}

			local := repository.NewMemBackend()
			e := NewEngine(local, f.dtClient, "worker-1", 2)
			e.MonitorPeriod = 20 * time.Millisecond
			h := e.Download(d, f.locator(d, proto))
			if err := h.Wait(); err != nil {
				t.Fatal(err)
			}
			got, err := local.Get(string(d.UID))
			if err != nil || !bytes.Equal(got, content) {
				t.Fatalf("downloaded %d bytes, %v", len(got), err)
			}
			if h.State() != StateComplete {
				t.Errorf("State = %v", h.State())
			}
			if p := h.Probe(); !p.Done || p.Bytes != d.Size {
				t.Errorf("Probe = %+v", p)
			}
		})
	}
}

func TestUploadFTPAndHTTP(t *testing.T) {
	for _, proto := range []string{"ftp", "http"} {
		t.Run(proto, func(t *testing.T) {
			f := newFixture(t)
			content := randBytes(90_000, 2)
			d := *data.NewFromBytes("up", content)
			local := repository.NewMemBackend()
			local.Put(string(d.UID), content)

			e := NewEngine(local, f.dtClient, "client-1", 2)
			h := e.Upload(d, f.locator(d, proto))
			if err := h.Wait(); err != nil {
				t.Fatal(err)
			}
			got, err := f.backend.Get(string(d.UID))
			if err != nil || !bytes.Equal(got, content) {
				t.Fatalf("uploaded %d bytes, %v", len(got), err)
			}
		})
	}
}

func TestDownloadVerifiesChecksum(t *testing.T) {
	f := newFixture(t)
	content := randBytes(10_000, 3)
	d := f.seed("tampered", content)
	// Tamper server-side after the datum was fingerprinted.
	f.backend.Put(string(d.UID), randBytes(10_000, 4))

	local := repository.NewMemBackend()
	e := NewEngine(local, f.dtClient, "w", 1)
	e.MaxAttempts = 2
	h := e.Download(d, f.locator(d, "http"))
	err := h.Wait()
	if err == nil {
		t.Fatal("download of tampered content succeeded")
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Errorf("err = %v, want checksum failure", err)
	}
	if _, gerr := local.Get(string(d.UID)); gerr == nil {
		t.Error("corrupt content left in local storage")
	}
}

func TestDownloadRetriesAndResumes(t *testing.T) {
	// Kill the ftp server mid-download... simpler: first locator points to
	// a dead port, engine retries against it and fails; then confirm the
	// attempt accounting through DT.
	f := newFixture(t)
	content := randBytes(5_000, 5)
	d := f.seed("x", content)
	dead := data.Locator{DataUID: d.UID, Protocol: "ftp", Host: "127.0.0.1:1", Ref: string(d.UID)}

	local := repository.NewMemBackend()
	e := NewEngine(local, f.dtClient, "w", 1)
	e.MaxAttempts = 3
	h := e.Download(d, dead)
	if err := h.Wait(); err == nil {
		t.Fatal("download from dead host succeeded")
	}
	if h.State() != StateFailed {
		t.Errorf("State = %v", h.State())
	}
	// Partial local prefix resumes rather than restarting.
	local.Put(string(d.UID), content[:2_000])
	h2 := e.Download(d, f.locator(d, "ftp"))
	if err := h2.Wait(); err != nil {
		t.Fatal(err)
	}
	got, _ := local.Get(string(d.UID))
	if !bytes.Equal(got, content) {
		t.Fatal("resumed download mismatch")
	}
}

func TestConcurrencyLimit(t *testing.T) {
	f := newFixture(t)
	content := randBytes(300_000, 6)
	d := f.seed("big", content)

	local := repository.NewMemBackend()
	e := NewEngine(local, nil, "w", 1) // concurrency 1
	// Two downloads of distinct data over one slot must serialise without
	// deadlock.
	d2 := f.seed("big2", randBytes(300_000, 7))
	h1 := e.Download(d, f.locator(d, "http"))
	h2 := e.Download(d2, f.locator(d2, "http"))
	if err := Barrier(h1, h2); err != nil {
		t.Fatal(err)
	}
}

func TestWaitForAndBarrier(t *testing.T) {
	f := newFixture(t)
	d := f.seed("a", randBytes(40_000, 8))
	local := repository.NewMemBackend()
	e := NewEngine(local, f.dtClient, "w", 4)
	e.Download(d, f.locator(d, "http"))
	if err := e.WaitFor(d.UID); err != nil {
		t.Fatal(err)
	}
	if err := e.WaitFor("never-started"); err != nil {
		t.Errorf("WaitFor unknown datum: %v", err)
	}
}

func TestWaitTimeout(t *testing.T) {
	h := &Handle{DataUID: "x", done: make(chan struct{})}
	if err := h.WaitTimeout(30 * time.Millisecond); err == nil {
		t.Fatal("WaitTimeout on never-finishing handle returned nil")
	}
}

func TestDTServiceTracking(t *testing.T) {
	f := newFixture(t)
	content := randBytes(60_000, 9)
	d := f.seed("tracked", content)
	local := repository.NewMemBackend()
	e := NewEngine(local, f.dtClient, "worker-7", 2)
	e.MonitorPeriod = 10 * time.Millisecond
	h := e.Download(d, f.locator(d, "ftp"))
	if err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	moved, requests := f.dt.Stats()
	if moved != d.Size {
		t.Errorf("bytesMoved = %d, want %d", moved, d.Size)
	}
	if requests < 2 { // at least Open + final Report
		t.Errorf("requests = %d", requests)
	}
	if act := f.dt.Active(); len(act) != 0 {
		t.Errorf("Active after completion = %v", act)
	}
}

func TestDTServiceDirect(t *testing.T) {
	s := NewService()
	id := s.Open("data-1", "ftp", "host-1", 100)
	if err := s.Report(id, 50, StateActive, ""); err != nil {
		t.Fatal(err)
	}
	r, err := s.Get(id)
	if err != nil || r.Bytes != 50 || r.State != StateActive || r.Attempts != 1 {
		t.Fatalf("Get = %+v, %v", r, err)
	}
	if err := s.Retry(id); err != nil {
		t.Fatal(err)
	}
	r, _ = s.Get(id)
	if r.Attempts != 2 {
		t.Errorf("Attempts = %d", r.Attempts)
	}
	if err := s.Report(id, 100, StateComplete, ""); err != nil {
		t.Fatal(err)
	}
	moved, _ := s.Stats()
	if moved != 50 { // 100 - 50 already counted? only delta at completion
		t.Logf("bytesMoved = %d", moved)
	}
	if len(s.Active()) != 0 {
		t.Error("completed transfer still active")
	}
	// Unknown IDs error.
	if err := s.Report("nope", 0, StateActive, ""); err == nil {
		t.Error("Report unknown id succeeded")
	}
	if err := s.Retry("nope"); err == nil {
		t.Error("Retry unknown id succeeded")
	}
	if _, err := s.Get("nope"); err == nil {
		t.Error("Get unknown id succeeded")
	}
}

func TestDTClientOverTCP(t *testing.T) {
	s := NewService()
	mux := rpc.NewMux()
	s.Mount(mux)
	srv, err := rpc.Listen("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rcl, err := rpc.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.Close()
	c := NewClient(rcl)
	id, err := c.Open("d", "http", "h", 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Report(id, 5, StateActive, ""); err != nil {
		t.Fatal(err)
	}
	r, err := c.Get(id)
	if err != nil || r.Bytes != 5 {
		t.Fatalf("Get = %+v, %v", r, err)
	}
	act, err := c.Active()
	if err != nil || len(act) != 1 {
		t.Fatalf("Active = %v, %v", act, err)
	}
	if err := c.Retry(id); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolRegistry(t *testing.T) {
	protos := Protocols()
	want := map[string]bool{"ftp": true, "http": true, "bittorrent": true}
	for _, p := range protos {
		delete(want, p)
	}
	if len(want) != 0 {
		t.Errorf("missing protocols: %v (have %v)", want, protos)
	}
	d := *data.NewFromBytes("x", []byte("y"))
	if _, err := New(d, data.Locator{DataUID: d.UID, Protocol: "carrier-pigeon", Host: "h"}, repository.NewMemBackend()); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{
		StatePending: "pending", StateActive: "active", StateComplete: "complete",
		StateFailed: "failed", StateCancelled: "cancelled", State(99): "state(99)",
	} {
		if got := st.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", int(st), got, want)
		}
	}
}

func TestManyParallelDownloads(t *testing.T) {
	f := newFixture(t)
	const n = 10
	datas := make([]data.Data, n)
	for i := range datas {
		datas[i] = f.seed(fmt.Sprintf("d%d", i), randBytes(30_000, int64(100+i)))
	}
	local := repository.NewMemBackend()
	e := NewEngine(local, f.dtClient, "w", 4)
	var handles []*Handle
	for _, d := range datas {
		handles = append(handles, e.Download(d, f.locator(d, "http")))
	}
	if err := Barrier(handles...); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Wait()
	for _, d := range datas {
		got, err := local.Get(string(d.UID))
		if err != nil || int64(len(got)) != d.Size {
			t.Errorf("datum %s: %d bytes, %v", d.Name, len(got), err)
		}
	}
}

func TestUploadResumesAfterPartialStore(t *testing.T) {
	// The server already holds a prefix of the content (an interrupted
	// earlier upload); the ftp transfer must resume rather than restart.
	f := newFixture(t)
	content := randBytes(70_000, 20)
	d := *data.NewFromBytes("partial", content)
	f.backend.Put(string(d.UID), content[:30_000]) // server-side prefix

	local := repository.NewMemBackend()
	local.Put(string(d.UID), content)
	e := NewEngine(local, f.dtClient, "up", 1)
	h := e.Upload(d, f.locator(d, "ftp"))
	if err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	got, err := f.backend.Get(string(d.UID))
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("resumed upload: %d bytes, %v", len(got), err)
	}
}

func TestDownloadSwarmFailsWithoutMetainfo(t *testing.T) {
	f := newFixture(t)
	content := randBytes(5_000, 21)
	d := f.seed("unmeta", content) // no seeder registered metainfo
	local := repository.NewMemBackend()
	e := NewEngine(local, f.dtClient, "w", 1)
	e.MaxAttempts = 1
	h := e.Download(d, f.locator(d, "bittorrent"))
	if err := h.Wait(); err == nil {
		t.Fatal("swarm download without metainfo succeeded")
	}
}
