package testbed

import (
	"fmt"
	"math/rand"
	"time"

	"bitdew/internal/attr"
	"bitdew/internal/core"
	"bitdew/internal/data"
	"bitdew/internal/runtime"
)

// This file adds the service-churn scenario to the testbed: where the
// platforms above model worker-side volatility (the paper's reservoir
// hosts), the churn scenario exercises the OTHER side of the fault model —
// the stable service host itself being killed and restarted mid-workload
// (§3.4–3.5: all D* meta-data lives in a database back-end precisely so a
// service restart loses nothing). It drives the real components end to
// end: a durable container over TCP, reconnecting client nodes, and a
// BLAST-like wave (one broadcast base + a batch of fault-tolerant tasks).

// ChurnConfig parameterises a service-churn run.
type ChurnConfig struct {
	// Workers is the number of reservoir hosts pulling the scheduler
	// (default 3).
	Workers int
	// Tasks is the number of task data in the wave (default 8).
	Tasks int
	// PayloadBytes sizes each task payload (default 1024).
	PayloadBytes int
	// Restarts is how many kill/restart cycles to inflict mid-wave
	// (default 1). Every cycle bounces catalog, scheduler, repository and
	// transfer together — they share the container, as in the paper.
	Restarts int
	// StateDir is the service plane's durable state directory (required).
	StateDir string
	// Deadline bounds each reconvergence wait (default 30s).
	Deadline time.Duration
}

// ChurnReport is the outcome of a churn run.
type ChurnReport struct {
	Workers, Tasks int
	Restarts       int
	// RecoveryTime is the wall time from the last restart's completion to
	// full reconvergence (every task re-owned, the broadcast base on every
	// worker) — the restart-to-reconverged metric of
	// BenchmarkServiceRecovery.
	RecoveryTime time.Duration
	// DataSurvived / LocatorsSurvived count catalog rows intact after the
	// final restart (wave size + 1 broadcast base when nothing was lost).
	DataSurvived     int
	LocatorsSurvived int
}

func (c *ChurnConfig) defaults() {
	if c.Workers == 0 {
		c.Workers = 3
	}
	if c.Tasks == 0 {
		c.Tasks = 8
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 1024
	}
	if c.Restarts == 0 {
		c.Restarts = 1
	}
	if c.Deadline == 0 {
		c.Deadline = 30 * time.Second
	}
}

// RunServiceChurn runs the scenario: start a durable service container,
// launch a BLAST-like wave, then — mid-wave — kill and restart the whole
// service plane (Restarts times) and measure how long the system takes to
// reconverge. It returns an error if any datum, locator or placement is
// lost, so tests and benchmarks can use it as an acceptance check.
func RunServiceChurn(cfg ChurnConfig) (ChurnReport, error) {
	cfg.defaults()
	var report ChurnReport
	report.Workers, report.Tasks = cfg.Workers, cfg.Tasks
	if cfg.StateDir == "" {
		return report, fmt.Errorf("testbed: churn needs a StateDir")
	}

	ccfg := runtime.ContainerConfig{
		Addr:     "127.0.0.1:0",
		StateDir: cfg.StateDir,
		// The wave moves over HTTP; the other protocol servers only slow
		// the restart cycle down.
		DisableFTP:   true,
		DisableSwarm: true,
	}
	services, err := runtime.NewContainer(ccfg)
	if err != nil {
		return report, err
	}
	addr := services.Addr()
	// services is reassigned (to nil on failure) by the restart loop below.
	defer func() {
		if services != nil {
			services.Close()
		}
	}()

	// Master: create the wave. One broadcast genebase every worker needs,
	// plus Tasks fault-tolerant task data.
	mcomms, err := core.Connect(addr)
	if err != nil {
		return report, err
	}
	defer mcomms.Close()
	master, err := core.NewNode(core.NodeConfig{Host: "churn-master", Comms: mcomms})
	if err != nil {
		return report, err
	}
	master.SetClientOnly(true)

	names := make([]string, 0, cfg.Tasks+1)
	names = append(names, "genebase")
	for i := 0; i < cfg.Tasks; i++ {
		names = append(names, fmt.Sprintf("task-%03d", i))
	}
	wave, err := master.BitDew.CreateDataBatch(names)
	if err != nil {
		return report, err
	}
	rng := rand.New(rand.NewSource(42))
	contents := make([][]byte, len(wave))
	for i := range contents {
		payload := make([]byte, cfg.PayloadBytes)
		rng.Read(payload)
		contents[i] = payload
	}
	if err := master.BitDew.PutAll(wave, contents); err != nil {
		return report, err
	}
	scheduled := make([]data.Data, len(wave))
	attrs := make([]attr.Attribute, len(wave))
	for i, d := range wave {
		scheduled[i] = *d
		if i == 0 {
			attrs[i] = attr.Attribute{Name: "genebase", Replica: attr.ReplicaAll, FaultTolerant: true, Protocol: "http"}
		} else {
			attrs[i] = attr.Attribute{Name: "task", Replica: 1, FaultTolerant: true, Protocol: "http"}
		}
	}
	if err := master.ActiveData.ScheduleAll(scheduled, attrs); err != nil {
		return report, err
	}

	// Workers join and pull once: the wave is now mid-flight (some tasks
	// placed, some not — MaxDataSchedule caps per-sync assignments).
	workers := make([]*core.Node, cfg.Workers)
	for i := range workers {
		wcomms, err := core.Connect(addr)
		if err != nil {
			return report, err
		}
		defer wcomms.Close()
		w, err := core.NewNode(core.NodeConfig{Host: fmt.Sprintf("churn-w%d", i), Comms: wcomms})
		if err != nil {
			return report, err
		}
		workers[i] = w
		if err := w.SyncWait(1); err != nil {
			return report, err
		}
	}

	// Kill and restart the whole service plane, mid-wave, Restarts times.
	for r := 0; r < cfg.Restarts; r++ {
		if err := services.Close(); err != nil {
			return report, err
		}
		ccfg.Addr = addr // come back on the same endpoint
		services, err = runtime.NewContainer(ccfg)
		if err != nil {
			return report, fmt.Errorf("testbed: churn restart %d: %w", r+1, err)
		}
		report.Restarts++

		start := time.Now()
		if err := convergeWave(services, workers, wave, cfg.Deadline); err != nil {
			return report, fmt.Errorf("testbed: churn restart %d: %w", r+1, err)
		}
		report.RecoveryTime = time.Since(start)
	}

	// Audit survival through the restarted catalog.
	for _, d := range wave {
		if _, err := services.DC.Get(d.UID); err == nil {
			report.DataSurvived++
		}
		if locs, err := services.DC.Locators(d.UID); err == nil && len(locs) > 0 {
			report.LocatorsSurvived++
		}
	}
	if report.DataSurvived != len(wave) {
		return report, fmt.Errorf("testbed: churn lost data: %d of %d survived", report.DataSurvived, len(wave))
	}
	if report.LocatorsSurvived != len(wave) {
		return report, fmt.Errorf("testbed: churn lost locators: %d of %d survived", report.LocatorsSurvived, len(wave))
	}
	return report, nil
}

// convergeWave drives worker heartbeats until the wave is fully placed:
// the broadcast head datum on every worker, and every task with at least
// one live owner. Transient heartbeat errors (the service just came back)
// are retried until the deadline.
func convergeWave(services *runtime.Container, workers []*core.Node, wave []*data.Data, deadline time.Duration) error {
	limit := time.Now().Add(deadline)
	var lastErr error
	for time.Now().Before(limit) {
		for _, w := range workers {
			// SyncWait also drains the in-flight downloads the sync starts.
			if err := w.SyncWait(1); err != nil {
				lastErr = err
			}
		}
		if converged(services, workers, wave) {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	if lastErr != nil {
		return fmt.Errorf("reconvergence timed out (last heartbeat error: %v)", lastErr)
	}
	return fmt.Errorf("reconvergence timed out")
}

func converged(services *runtime.Container, workers []*core.Node, wave []*data.Data) bool {
	for _, w := range workers {
		if !w.Holds(wave[0].UID) {
			return false
		}
	}
	for _, d := range wave[1:] {
		if len(services.DS.Owners(d.UID)) == 0 {
			return false
		}
	}
	return true
}
