package testbed

import "testing"

func TestGdX(t *testing.T) {
	p := GdX()
	if p.TotalNodes() != 312 {
		t.Errorf("GdX nodes = %d, want 312", p.TotalNodes())
	}
	if len(p.Clusters) != 1 || p.Clusters[0].Name != "gdx" {
		t.Errorf("GdX clusters = %+v", p.Clusters)
	}
	if p.Clusters[0].CPUFactor != 1.0 {
		t.Errorf("GdX is the CPU reference, factor = %v", p.Clusters[0].CPUFactor)
	}
}

func TestGrid5000(t *testing.T) {
	p := Grid5000()
	want := 312 + 120 + 47 + 65
	if p.TotalNodes() != want {
		t.Errorf("Grid5000 nodes = %d, want %d", p.TotalNodes(), want)
	}
	names := map[string]bool{}
	for _, c := range p.Clusters {
		names[c.Name] = true
		if c.UpBps <= 0 || c.DownBps <= 0 || c.CPUFactor <= 0 || c.UnzipBps <= 0 {
			t.Errorf("cluster %s has non-positive capacities: %+v", c.Name, c)
		}
	}
	for _, n := range []string{"gdx", "grelon", "grillon", "sagittaire"} {
		if !names[n] {
			t.Errorf("Grid5000 missing cluster %s", n)
		}
	}
}

func TestDSLLab(t *testing.T) {
	p := DSLLab()
	if p.TotalNodes() != len(DSLLabBandwidths) {
		t.Errorf("DSLLab nodes = %d, want %d", p.TotalNodes(), len(DSLLabBandwidths))
	}
	for i, c := range p.Clusters {
		if c.Nodes != 1 {
			t.Errorf("DSLLab cluster %d has %d nodes, want 1", i, c.Nodes)
		}
		// ADSL is asymmetric: downlink strictly faster than uplink.
		if c.DownBps <= c.UpBps {
			t.Errorf("DSLLab %s not asymmetric: down %v <= up %v", c.Name, c.DownBps, c.UpBps)
		}
		if c.DownBps != DSLLabBandwidths[i][0] || c.UpBps != DSLLabBandwidths[i][1] {
			t.Errorf("DSLLab %s bandwidths %v/%v don't match table", c.Name, c.DownBps, c.UpBps)
		}
	}
}

func TestNodeSpec(t *testing.T) {
	p := Grid5000()
	// First node of the first cluster.
	c, idx, err := p.NodeSpec(0)
	if err != nil || c.Name != "gdx" || idx != 0 {
		t.Errorf("NodeSpec(0) = %s[%d], %v", c.Name, idx, err)
	}
	// First node of the second cluster.
	c, idx, err = p.NodeSpec(312)
	if err != nil || c.Name != "grelon" || idx != 0 {
		t.Errorf("NodeSpec(312) = %s[%d], %v", c.Name, idx, err)
	}
	// Last node overall.
	last := p.TotalNodes() - 1
	c, idx, err = p.NodeSpec(last)
	if err != nil || c.Name != "sagittaire" || idx != 64 {
		t.Errorf("NodeSpec(last) = %s[%d], %v", c.Name, idx, err)
	}
	// Out of range.
	if _, _, err := p.NodeSpec(p.TotalNodes()); err == nil {
		t.Error("NodeSpec past the end succeeded")
	}
}

func TestUnits(t *testing.T) {
	if MB != 1e6 || GB != 1e9 {
		t.Errorf("units: MB=%v GB=%v", float64(MB), float64(GB))
	}
}
