package testbed

import (
	"fmt"

	"bitdew/internal/loadgen"
	"bitdew/internal/rpc"
	"bitdew/internal/runtime"
)

// This file adds the sustained-load scenario to the testbed: where the
// BLAST runs (sharded.go, churn.go) distribute ONE wave and exit, the
// stress scenario models the paper's evaluation conditions as steady-state
// traffic — thousands of simulated clients issuing a configurable mix of
// put/fetch/schedule/search ops against a real sharded plane for a fixed
// window, with per-op latency histograms. cmd/bitdew-stress is the CLI over
// this; BenchmarkSustainedStress and the CI smoke drive it in-process.

// StressConfig parameterises a sustained-load run against an in-process
// sharded service plane.
type StressConfig struct {
	// Shards is the number of service containers (default 2).
	Shards int
	// Load configures the generator (clients, duration, warmup, mix,
	// arrival); see loadgen.Config for the defaults.
	Load loadgen.Config
	// Plane configures the client side (connection pool size, payload,
	// preload, put-slot rings); Addrs is filled in from the booted plane.
	Plane loadgen.PlaneConfig
	// RPCOptions configure every shard's rpc server — the host-capacity
	// model of the scaling experiments (latency injection, serve limits).
	RPCOptions []rpc.ServerOption
	// StateDir optionally makes every shard durable.
	StateDir string
}

// RunStress boots a sharded plane, drives the mixed workload against it,
// and folds the outcome into the BENCH_*.json report schema. Operation
// errors do not fail the run — they are counted in the report for the
// caller to judge (the CI smoke and the acceptance test demand zero).
func RunStress(cfg StressConfig) (*loadgen.Report, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 2
	}
	plane, err := runtime.NewShardedContainer(runtime.ShardedConfig{
		Shards:   cfg.Shards,
		StateDir: cfg.StateDir,
		// Stress traffic moves over HTTP; FTP and swarm servers only cost
		// boot time here.
		DisableFTP:   true,
		DisableSwarm: true,
		RPCOptions:   cfg.RPCOptions,
	})
	if err != nil {
		return nil, fmt.Errorf("testbed: stress: %w", err)
	}
	defer plane.Close()

	cfg.Plane.Addrs = plane.Addrs()
	clients, err := loadgen.ConnectPlane(cfg.Plane)
	if err != nil {
		return nil, fmt.Errorf("testbed: stress: %w", err)
	}
	defer clients.Close()

	res, err := loadgen.Run(cfg.Load, clients.Factory())
	if err != nil {
		return nil, fmt.Errorf("testbed: stress: %w", err)
	}
	return loadgen.BuildReport("stress", res, cfg.Shards, clients.Conns(), clients.PayloadBytes()), nil
}
