package testbed

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"bitdew/internal/attr"
	"bitdew/internal/core"
	"bitdew/internal/data"
	"bitdew/internal/rpc"
	"bitdew/internal/runtime"
)

// This file adds the shard-scaling scenario to the testbed: where churn.go
// exercises one durable service host being bounced, the sharded BLAST run
// exercises the service plane scaled OUT — N independent containers, data
// consistent-hashed onto home shards, clients fanning batched calls out
// per shard. The scenario emulates each service host's finite capacity
// with the rpc server's serve limit + injected service time, so the
// single-host bottleneck is real and adding shards measurably relieves it
// (BenchmarkShardScaling's near-linear curve), and a kill-one-shard
// variant checks the blast radius of losing a shard is exactly that
// shard's data.

// ShardedBlastConfig parameterises a sharded BLAST-like run.
type ShardedBlastConfig struct {
	// Shards is the number of service containers (default 2).
	Shards int
	// Workers is the number of reservoir hosts pulling the schedulers
	// (default 4).
	Workers int
	// Tasks is the number of replica-1 task data in the wave (default 32);
	// one broadcast "genebase" datum rides along, as in the paper's BLAST
	// deployment.
	Tasks int
	// PayloadBytes sizes each payload (default 256).
	PayloadBytes int
	// ServiceTime, when set, models each service host's per-frame
	// processing cost: every shard's rpc server handles one frame at a
	// time (serve limit 1), holding it for ServiceTime. Zero runs the
	// plane unthrottled (functional tests).
	ServiceTime time.Duration
	// KillOneShard, after the wave converges, kills the highest-index
	// shard and audits the plane's loss. Unreplicated, the audit checks
	// the blast radius is exactly the dead shard's data: every datum homed
	// on a surviving shard keeps its catalog entry, locators, placements —
	// and stays fetchable. With Replicas > 1 the audit upgrades to ZERO
	// unavailability: every datum of the wave, including those homed on
	// the killed shard, must keep all three kinds of state and stay
	// fetchable byte-for-byte through the same client — the failover
	// router promotes the dead shard's successor on first contact.
	KillOneShard bool
	// Replicas is the plane's replication factor (0/1: unreplicated).
	Replicas int
	// StateDir optionally makes every shard durable (per-shard subdirs).
	StateDir string
	// Deadline bounds the distribution wait (default 30s).
	Deadline time.Duration
}

// ShardedBlastReport is the outcome of a sharded BLAST run.
type ShardedBlastReport struct {
	Shards, Workers, Tasks int
	// DistributionTime is the wall time from the first Put to every datum
	// placed and downloaded (genebase on every worker, every task owned).
	DistributionTime time.Duration
	// ThroughputPerSec is data distributed per second over that window.
	ThroughputPerSec float64
	// PerShardData counts the wave's data by home shard (placement spread).
	PerShardData []int
	// KilledShard is the shard killed by the fault variant (-1 when none).
	KilledShard int
	// SurvivorData counts the wave's data the kill must NOT lose: those
	// homed on surviving shards, or — with Replicas > 1 — the WHOLE wave.
	// SurvivedData/SurvivedLocators/SurvivedPlacements count how many of
	// those kept each kind of state after the kill (all equal to
	// SurvivorData when nothing was lost).
	SurvivorData       int
	SurvivedData       int
	SurvivedLocators   int
	SurvivedPlacements int
	// FailedOverData counts the killed shard's own data that stayed fully
	// available through failover (0 on an unreplicated plane, where they
	// are expected lost; equal to the killed shard's PerShardData count on
	// a replicated one).
	FailedOverData int
}

func (c *ShardedBlastConfig) defaults() {
	if c.Shards == 0 {
		c.Shards = 2
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Tasks == 0 {
		c.Tasks = 32
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 256
	}
	if c.Deadline == 0 {
		c.Deadline = 30 * time.Second
	}
}

// RunShardedBlast runs the scenario: boot an N-shard service plane,
// distribute a BLAST-like wave (one broadcast genebase + Tasks replica-1
// task data) through sharded clients, measure the distribution throughput,
// and optionally kill one shard and audit the survivors. It returns an
// error if distribution misses the deadline or the kill variant loses any
// surviving-shard state, so tests and benchmarks can use it as an
// acceptance check.
func RunShardedBlast(cfg ShardedBlastConfig) (ShardedBlastReport, error) {
	cfg.defaults()
	report := ShardedBlastReport{
		Shards:      cfg.Shards,
		Workers:     cfg.Workers,
		Tasks:       cfg.Tasks,
		KilledShard: -1,
	}

	pcfg := runtime.ShardedConfig{
		Shards:   cfg.Shards,
		StateDir: cfg.StateDir,
		Replicas: cfg.Replicas,
		// The wave moves over HTTP; the other protocol servers only cost
		// boot time.
		DisableFTP:   true,
		DisableSwarm: true,
	}
	if cfg.ServiceTime > 0 {
		pcfg.RPCOptions = []rpc.ServerOption{
			rpc.WithServerLatency(cfg.ServiceTime),
			rpc.WithServeLimit(1),
		}
	}
	plane, err := runtime.NewShardedContainer(pcfg)
	if err != nil {
		return report, err
	}
	defer plane.Close()

	master, err := core.ConnectSharded(plane.Addrs(), core.WithReplicas(plane.Replicas()))
	if err != nil {
		return report, err
	}
	defer master.Close()
	mnode, err := core.NewNode(core.NodeConfig{Host: "blast-master", Shards: master, Concurrency: 16})
	if err != nil {
		return report, err
	}
	mnode.SetClientOnly(true)

	workers := make([]*core.Node, cfg.Workers)
	for i := range workers {
		wset, err := core.ConnectSharded(plane.Addrs(), core.WithReplicas(plane.Replicas()))
		if err != nil {
			return report, err
		}
		defer wset.Close()
		w, err := core.NewNode(core.NodeConfig{Host: fmt.Sprintf("blast-w%d", i), Shards: wset, Concurrency: 32})
		if err != nil {
			return report, err
		}
		workers[i] = w
	}

	// The wave: genebase (broadcast) + task data (one live replica each).
	names := make([]string, 0, cfg.Tasks+1)
	names = append(names, "genebase")
	for i := 0; i < cfg.Tasks; i++ {
		names = append(names, fmt.Sprintf("task-%04d", i))
	}
	start := time.Now()
	wave, err := mnode.BitDew.CreateDataBatch(names)
	if err != nil {
		return report, err
	}
	rng := rand.New(rand.NewSource(7))
	contents := make([][]byte, len(wave))
	for i := range contents {
		payload := make([]byte, cfg.PayloadBytes)
		rng.Read(payload)
		contents[i] = payload
	}
	if err := mnode.BitDew.PutAll(wave, contents); err != nil {
		return report, err
	}
	scheduled := make([]data.Data, len(wave))
	attrs := make([]attr.Attribute, len(wave))
	for i, d := range wave {
		scheduled[i] = *d
		if i == 0 {
			attrs[i] = attr.Attribute{Name: "genebase", Replica: attr.ReplicaAll, FaultTolerant: true, Protocol: "http"}
		} else {
			attrs[i] = attr.Attribute{Name: "task", Replica: 1, FaultTolerant: true, Protocol: "http"}
		}
	}
	if err := mnode.ActiveData.ScheduleAll(scheduled, attrs); err != nil {
		return report, err
	}

	// Every worker pulls continuously and independently — real reservoir
	// hosts do not barrier on each other — until the wave is fully
	// distributed or the deadline passes.
	limit := time.Now().Add(cfg.Deadline)
	stop := make(chan struct{})
	werrs := make([]error, len(workers))
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *core.Node) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := w.SyncWait(1); err != nil {
					werrs[i] = err
					return
				}
			}
		}(i, w)
	}
	distributed := true
	for !shardedWaveDone(workers, wave) {
		if time.Now().After(limit) {
			distributed = false
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	for i, err := range werrs {
		if err != nil {
			return report, fmt.Errorf("testbed: sharded blast: worker %d: %w", i, err)
		}
	}
	if !distributed {
		return report, fmt.Errorf("testbed: sharded blast: distribution missed the %v deadline", cfg.Deadline)
	}
	report.DistributionTime = time.Since(start)
	report.ThroughputPerSec = float64(len(wave)) / report.DistributionTime.Seconds()

	report.PerShardData = make([]int, cfg.Shards)
	for _, d := range wave {
		report.PerShardData[master.ShardOf(d.UID)]++
	}

	if !cfg.KillOneShard {
		return report, nil
	}

	// Kill the highest shard and audit the loss. Unreplicated: every datum
	// homed on a live shard must keep its catalog entry, its locators, its
	// placements — and must still be fetchable through the same sharded
	// client (home-shard routing never touches the dead address). With
	// Replicas > 1, the same audit runs over the WHOLE wave — the failover
	// router reaches the killed shard's state through its promoted
	// successor, so zero data become unavailable.
	replicated := plane.Replicas() > 1
	if replicated {
		// The kill must not race the replication stream, or the audit
		// would measure shipping lag instead of failover: wait for every
		// mutation of the wave to be acknowledged by its replicas first.
		if err := plane.WaitReplicated(cfg.Deadline); err != nil {
			return report, fmt.Errorf("testbed: sharded blast: pre-kill convergence: %w", err)
		}
	}
	killed := cfg.Shards - 1
	if err := plane.KillShard(killed); err != nil {
		return report, err
	}
	report.KilledShard = killed
	for i, d := range wave {
		home := master.ShardOf(d.UID)
		if home == killed && !replicated {
			continue
		}
		report.SurvivorData++
		// Query through the client's range slot, not the container: over a
		// replicated plane the slot fails over to the promoted successor —
		// the first post-kill call IS the detection+promotion path.
		c := master.Shard(home)
		if _, err := c.DC.Get(d.UID); err == nil {
			report.SurvivedData++
		}
		if locs, err := c.DC.Locators(d.UID); err == nil && len(locs) > 0 {
			report.SurvivedLocators++
		}
		if owners, err := c.DS.Owners(d.UID); err == nil && len(owners) > 0 {
			report.SurvivedPlacements++
		}
		if got, err := mnode.BitDew.GetBytes(*d); err != nil {
			return report, fmt.Errorf("testbed: sharded blast: surviving %s unreachable: %w", d.Name, err)
		} else if string(got) != string(contents[i]) {
			return report, fmt.Errorf("testbed: sharded blast: surviving %s corrupted", d.Name)
		}
		if home == killed {
			report.FailedOverData++
		}
	}
	if report.SurvivedData != report.SurvivorData ||
		report.SurvivedLocators != report.SurvivorData ||
		report.SurvivedPlacements != report.SurvivorData {
		return report, fmt.Errorf("testbed: sharded blast: survivors lost state: %d data, %d locators, %d placements of %d",
			report.SurvivedData, report.SurvivedLocators, report.SurvivedPlacements, report.SurvivorData)
	}
	if replicated && report.FailedOverData != report.PerShardData[killed] {
		return report, fmt.Errorf("testbed: sharded blast: %d of the killed shard's %d data failed over",
			report.FailedOverData, report.PerShardData[killed])
	}
	return report, nil
}

// shardedWaveDone reports whether the wave is fully distributed: the
// broadcast head on every worker, every task downloaded by at least one.
func shardedWaveDone(workers []*core.Node, wave []*data.Data) bool {
	for _, w := range workers {
		if !w.Holds(wave[0].UID) {
			return false
		}
	}
	for _, d := range wave[1:] {
		held := false
		for _, w := range workers {
			if w.Holds(d.UID) {
				held = true
				break
			}
		}
		if !held {
			return false
		}
	}
	return true
}
