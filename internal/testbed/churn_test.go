package testbed

import (
	"testing"
	"time"
)

// TestServiceChurn is the crash-restart acceptance scenario: all four D*
// services are killed and restarted (twice) from --state-dir mid-BLAST-
// wave; no registered data or locators may be lost, and the delta-syncing
// workers must reconverge through the full-resync fallback.
func TestServiceChurn(t *testing.T) {
	report, err := RunServiceChurn(ChurnConfig{
		Workers:  3,
		Tasks:    8,
		Restarts: 2,
		StateDir: t.TempDir(),
		Deadline: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Restarts != 2 {
		t.Fatalf("restarts = %d, want 2", report.Restarts)
	}
	if report.DataSurvived != 9 || report.LocatorsSurvived != 9 {
		t.Fatalf("survival: %d data, %d locators, want 9/9", report.DataSurvived, report.LocatorsSurvived)
	}
	if report.RecoveryTime <= 0 {
		t.Fatalf("recovery time = %v", report.RecoveryTime)
	}
	t.Logf("restart-to-reconverged: %v (%d workers, %d tasks)", report.RecoveryTime, report.Workers, report.Tasks)
}

func TestServiceChurnNeedsStateDir(t *testing.T) {
	if _, err := RunServiceChurn(ChurnConfig{}); err == nil {
		t.Fatal("churn without a StateDir succeeded")
	}
}
