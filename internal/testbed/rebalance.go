package testbed

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"bitdew/internal/attr"
	"bitdew/internal/core"
	"bitdew/internal/data"
	"bitdew/internal/loadgen"
	"bitdew/internal/rpc"
	"bitdew/internal/runtime"
)

// The rebalance scenario measures the elastic plane's headline claim: a
// BLAST-style workload keeps flowing, uninterrupted, while the plane grows
// underneath it — and the grown plane is measurably faster. The run
// distributes one wave on the starting plane, measures a closed-loop
// catalog-read window (the baseline), grows the plane shard by shard WHILE
// a second wave distributes (any worker or client error during that window
// is a correctness failure — the paper's promise is zero client-visible
// unavailability), distributes a third wave on the grown plane, and
// re-measures the same read window (the scaled number). The measured op is
// one home-routed catalog Get — exactly one rpc frame — under the same
// serve-limit + injected-service-time capacity model as the shard-scaling
// scenario, so each shard serializes its own frames and baseline→scaled is
// a genuine capacity measurement, not a cache artifact. Every datum of all
// three waves is audited byte-for-byte at the end.

// ScaleOutConfig parameterises a live scale-out run.
type ScaleOutConfig struct {
	// StartShards is the plane size before growth (default 2).
	StartShards int
	// EndShards is the plane size after growth (default 4).
	EndShards int
	// Workers is the number of reservoir hosts pulling the schedulers
	// (default 4).
	Workers int
	// Tasks is the number of replica-1 task data per wave (default 32);
	// one broadcast datum rides along per wave, as in the BLAST deployment.
	Tasks int
	// PayloadBytes sizes each payload (default 256).
	PayloadBytes int
	// ServiceTime, when set, models each service host's per-frame
	// processing cost (serve limit 1 + injected latency). Zero runs the
	// plane unthrottled (functional tests).
	ServiceTime time.Duration
	// ReadOps is how many closed-loop catalog reads each measured window
	// issues (default 400).
	ReadOps int
	// ReadClients is the closed-loop concurrency of the measured windows
	// (default 32) — enough in-flight frames to keep every shard's
	// serializer busy, so the windows measure plane capacity.
	ReadClients int
	// Deadline bounds each wave's distribution (default 60s).
	Deadline time.Duration
}

// ScaleOutReport is the outcome of a live scale-out run.
type ScaleOutReport struct {
	StartShards, EndShards, Workers, Tasks int
	// Payload is the effective payload size, for the report row.
	Payload int
	// BaselineTime / ScaledTime are the measured closed-loop read windows
	// on the starting and grown planes; the throughputs are reads per
	// second over those windows, the hists their per-op latencies.
	BaselineTime       time.Duration
	ScaledTime         time.Duration
	BaselineThroughput float64
	ScaledThroughput   float64
	BaselineReads      *loadgen.Hist
	ScaledReads        *loadgen.Hist
	// ReadOps is the per-window op count, for the report row.
	ReadOps int
	// Speedup is ScaledThroughput / BaselineThroughput — the acceptance
	// number (the grown plane must actually be faster).
	Speedup float64
	// GrowSteps holds one duration per AddShard: stage + cutover + commit
	// wall time for that step, measured under live traffic.
	GrowSteps []time.Duration
	// EpochBefore / EpochAfter bracket the growth: every AddShard bumps
	// the membership epoch by one.
	EpochBefore, EpochAfter uint64
	// PerShardData counts all three waves' data by final home shard.
	PerShardData []int
	// Elapsed is the whole run's wall time.
	Elapsed time.Duration
}

func (c *ScaleOutConfig) defaults() {
	if c.StartShards == 0 {
		c.StartShards = 2
	}
	if c.EndShards == 0 {
		c.EndShards = 4
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Tasks == 0 {
		c.Tasks = 32
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 256
	}
	if c.ReadOps == 0 {
		c.ReadOps = 400
	}
	if c.ReadClients == 0 {
		c.ReadClients = 32
	}
	if c.Deadline == 0 {
		c.Deadline = 60 * time.Second
	}
}

// measureReads runs one closed-loop read window: clients goroutines share
// a counter of ops catalog Gets, each routed to the key's home shard — one
// rpc frame per op, so under the capacity model the window's rate is the
// plane's aggregate frame capacity.
func measureReads(set *core.ShardSet, wave []*data.Data, ops, clients int) (time.Duration, *loadgen.Hist, error) {
	if clients > ops {
		clients = ops
	}
	var next atomic.Int64
	hists := make([]*loadgen.Hist, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		hists[c] = &loadgen.Hist{}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(ops) {
					return
				}
				d := wave[int(i)%len(wave)]
				opStart := time.Now()
				if _, err := set.For(d.UID).DC.Get(d.UID); err != nil {
					errs[c] = fmt.Errorf("read %s: %w", d.Name, err)
					return
				}
				hists[c].Record(time.Since(opStart))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	merged := &loadgen.Hist{}
	for c := range hists {
		if errs[c] != nil {
			return elapsed, nil, errs[c]
		}
		merged.Merge(hists[c])
	}
	return elapsed, merged, nil
}

// blastWave creates, fills and schedules one BLAST-like wave (a broadcast
// head plus replica-1 tasks) through the master node, then waits for the
// workers to fully distribute it. It returns the wave, its contents, and
// the wall time from first create to distribution complete.
func blastWave(mnode *core.Node, workers []*core.Node, prefix string, tasks, payload int, seed int64, deadline time.Duration) ([]*data.Data, [][]byte, time.Duration, error) {
	names := make([]string, 0, tasks+1)
	names = append(names, prefix+"-genebase")
	for i := 0; i < tasks; i++ {
		names = append(names, fmt.Sprintf("%s-%04d", prefix, i))
	}
	start := time.Now()
	wave, err := mnode.BitDew.CreateDataBatch(names)
	if err != nil {
		return nil, nil, 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	contents := make([][]byte, len(wave))
	for i := range contents {
		contents[i] = make([]byte, payload)
		rng.Read(contents[i])
	}
	if err := mnode.BitDew.PutAll(wave, contents); err != nil {
		return nil, nil, 0, err
	}
	scheduled := make([]data.Data, len(wave))
	attrs := make([]attr.Attribute, len(wave))
	for i, d := range wave {
		scheduled[i] = *d
		if i == 0 {
			attrs[i] = attr.Attribute{Name: prefix + "-genebase", Replica: attr.ReplicaAll, FaultTolerant: true, Protocol: "http"}
		} else {
			attrs[i] = attr.Attribute{Name: prefix + "-task", Replica: 1, FaultTolerant: true, Protocol: "http"}
		}
	}
	if err := mnode.ActiveData.ScheduleAll(scheduled, attrs); err != nil {
		return nil, nil, 0, err
	}
	limit := time.Now().Add(deadline)
	for !shardedWaveDone(workers, wave) {
		if time.Now().After(limit) {
			return nil, nil, 0, fmt.Errorf("testbed: wave %q missed the %v distribution deadline", prefix, deadline)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return wave, contents, time.Since(start), nil
}

// RunScaleOut runs the scenario: boot an elastic StartShards-plane, measure
// a baseline wave, grow the plane to EndShards while a second wave
// distributes (live traffic across every stage/cutover/commit), measure a
// third wave on the grown plane, and audit all three waves byte-for-byte.
// It returns an error when any wave misses its deadline, any worker or
// client call fails during the growth window, the epoch fails to advance
// once per added shard, the grown placement leaves a new shard empty, or
// any datum reads back wrong — so tests and benchmarks can use it as an
// acceptance check.
func RunScaleOut(cfg ScaleOutConfig) (ScaleOutReport, error) {
	cfg.defaults()
	report := ScaleOutReport{
		StartShards: cfg.StartShards,
		EndShards:   cfg.EndShards,
		Workers:     cfg.Workers,
		Tasks:       cfg.Tasks,
		Payload:     cfg.PayloadBytes,
	}
	runStart := time.Now()
	if cfg.EndShards <= cfg.StartShards {
		return report, fmt.Errorf("testbed: scale-out needs EndShards > StartShards, got %d -> %d", cfg.StartShards, cfg.EndShards)
	}

	pcfg := runtime.ShardedConfig{
		Shards: cfg.StartShards,
		// The wave moves over HTTP; the other protocol servers only cost
		// boot time.
		DisableFTP:   true,
		DisableSwarm: true,
	}
	if cfg.ServiceTime > 0 {
		pcfg.RPCOptions = []rpc.ServerOption{
			rpc.WithServerLatency(cfg.ServiceTime),
			rpc.WithServeLimit(1),
		}
	}
	plane, err := runtime.NewShardedContainer(pcfg)
	if err != nil {
		return report, err
	}
	defer plane.Close()

	master, err := core.ConnectSharded(plane.Addrs())
	if err != nil {
		return report, err
	}
	defer master.Close()
	mnode, err := core.NewNode(core.NodeConfig{Host: "scaleout-master", Shards: master, Concurrency: 16})
	if err != nil {
		return report, err
	}
	mnode.SetClientOnly(true)

	workers := make([]*core.Node, cfg.Workers)
	wsets := make([]*core.ShardSet, cfg.Workers)
	for i := range workers {
		wset, err := core.ConnectSharded(plane.Addrs())
		if err != nil {
			return report, err
		}
		defer wset.Close()
		w, err := core.NewNode(core.NodeConfig{Host: fmt.Sprintf("scaleout-w%d", i), Shards: wset, Concurrency: 32})
		if err != nil {
			return report, err
		}
		workers[i] = w
		wsets[i] = wset
	}

	// Workers pull continuously for the WHOLE run — through the baseline,
	// straight across every grow step, into the scaled window. A worker
	// error anywhere is client-visible unavailability, and fails the run.
	stop := make(chan struct{})
	werrs := make([]error, len(workers))
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *core.Node) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := w.SyncWait(1); err != nil {
					werrs[i] = err
					return
				}
			}
		}(i, w)
	}
	workerErr := func() error {
		for i, err := range werrs {
			if err != nil {
				return fmt.Errorf("testbed: scale-out: worker %d: %w", i, err)
			}
		}
		return nil
	}
	fail := func(err error) (ScaleOutReport, error) {
		close(stop)
		wg.Wait()
		return report, err
	}

	// Distribute the first wave on the starting plane, then measure the
	// baseline read window against it.
	baseWave, baseContents, _, err := blastWave(mnode, workers, "base", cfg.Tasks, cfg.PayloadBytes, 7, cfg.Deadline)
	if err != nil {
		return fail(err)
	}
	report.ReadOps = cfg.ReadOps
	baseTime, baseReads, err := measureReads(master, baseWave, cfg.ReadOps, cfg.ReadClients)
	if err != nil {
		return fail(fmt.Errorf("testbed: scale-out: baseline window: %w", err))
	}
	report.BaselineTime = baseTime
	report.BaselineReads = baseReads
	report.BaselineThroughput = float64(cfg.ReadOps) / baseTime.Seconds()
	report.EpochBefore = plane.Epoch()

	// Growth under live traffic: a second wave distributes while AddShard
	// stages, cuts over and commits each new shard. The wave goroutine and
	// the grow loop genuinely overlap — that concurrency is the scenario.
	type waveResult struct {
		wave     []*data.Data
		contents [][]byte
		err      error
	}
	liveCh := make(chan waveResult, 1)
	go func() {
		w, c, _, err := blastWave(mnode, workers, "live", cfg.Tasks, cfg.PayloadBytes, 11, cfg.Deadline)
		liveCh <- waveResult{wave: w, contents: c, err: err}
	}()
	for plane.N() < cfg.EndShards {
		stepStart := time.Now()
		if _, err := plane.AddShard(); err != nil {
			<-liveCh
			return fail(fmt.Errorf("testbed: scale-out: AddShard at %d shards: %w", plane.N(), err))
		}
		report.GrowSteps = append(report.GrowSteps, time.Since(stepStart))
	}
	live := <-liveCh
	if live.err != nil {
		return fail(fmt.Errorf("testbed: scale-out: live wave during growth: %w", live.err))
	}
	if err := workerErr(); err != nil {
		return fail(err)
	}
	report.EpochAfter = plane.Epoch()
	if want := report.EpochBefore + uint64(cfg.EndShards-cfg.StartShards); report.EpochAfter != want {
		return fail(fmt.Errorf("testbed: scale-out: epoch %d after growth, want %d", report.EpochAfter, want))
	}

	// The master client converges on demand; the workers converge through
	// their heartbeat's epoch poll (or the not-owner retry path).
	if master.Epoch() != report.EpochAfter && !master.Refresh() {
		return fail(fmt.Errorf("testbed: scale-out: client refresh failed after growth"))
	}
	if master.N() != cfg.EndShards {
		return fail(fmt.Errorf("testbed: scale-out: client sees %d shards after growth, want %d", master.N(), cfg.EndShards))
	}
	// The scaled window measures the grown plane's steady state, so wait
	// for every worker's heartbeat to adopt the final epoch first (the live
	// wave above already proved traffic DURING convergence flows). The
	// workers' epoch poll is throttled, so this takes at most a few rounds.
	convergeLimit := time.Now().Add(cfg.Deadline)
	for _, ws := range wsets {
		for ws.Epoch() != report.EpochAfter {
			if time.Now().After(convergeLimit) {
				return fail(fmt.Errorf("testbed: scale-out: worker stuck at epoch %d, want %d", ws.Epoch(), report.EpochAfter))
			}
			if err := workerErr(); err != nil {
				return fail(err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Distribute a third wave on the grown plane (the grown plane must
	// still move a whole wave end to end), then re-measure the same read
	// window — now spread over EndShards serializers.
	postWave, postContents, _, err := blastWave(mnode, workers, "post", cfg.Tasks, cfg.PayloadBytes, 13, cfg.Deadline)
	if err != nil {
		return fail(err)
	}
	// Re-measure the same keys as the baseline window — they have been
	// re-homed across EndShards serializers — with the workers still
	// syncing, so both windows carry the same kind of background load.
	scaledTime, scaledReads, err := measureReads(master, baseWave, cfg.ReadOps, cfg.ReadClients)
	if err != nil {
		return fail(fmt.Errorf("testbed: scale-out: scaled window: %w", err))
	}
	report.ScaledTime = scaledTime
	report.ScaledReads = scaledReads
	report.ScaledThroughput = float64(cfg.ReadOps) / scaledTime.Seconds()
	if report.BaselineThroughput > 0 {
		report.Speedup = report.ScaledThroughput / report.BaselineThroughput
	}
	close(stop)
	wg.Wait()
	if err := workerErr(); err != nil {
		return report, err
	}

	// Audit: every datum of all three waves, byte-for-byte, through the
	// grown placement; and the growth must have actually spread the keys —
	// a new shard that homes nothing means the cutover never happened.
	report.PerShardData = make([]int, cfg.EndShards)
	waves := [][]*data.Data{baseWave, live.wave, postWave}
	contents := [][][]byte{baseContents, live.contents, postContents}
	for w := range waves {
		for i, d := range waves[w] {
			report.PerShardData[master.ShardOf(d.UID)]++
			got, err := mnode.BitDew.GetBytes(*d)
			if err != nil {
				return report, fmt.Errorf("testbed: scale-out: %s unreachable after growth: %w", d.Name, err)
			}
			if string(got) != string(contents[w][i]) {
				return report, fmt.Errorf("testbed: scale-out: %s corrupted across growth", d.Name)
			}
		}
	}
	for s := cfg.StartShards; s < cfg.EndShards; s++ {
		if report.PerShardData[s] == 0 {
			return report, fmt.Errorf("testbed: scale-out: new shard %d homes no data", s)
		}
	}
	report.Elapsed = time.Since(runStart)
	return report, nil
}

// BuildReport folds the run into the BENCH_*.json schema. The "baseline"
// and "scaled" rows carry the two measured read windows with their real
// per-op latencies, the "grow" row holds one op per AddShard with its real
// stage-to-commit wall time — so the trajectory table reads directly as
// "how much faster did the plane get, and what did each grow step cost".
func (r ScaleOutReport) BuildReport() *loadgen.Report {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	histLat := func(h *loadgen.Hist) loadgen.LatencyMS {
		if h == nil {
			return loadgen.LatencyMS{}
		}
		return loadgen.LatencyMS{
			P50:  ms(h.Quantile(0.50)),
			P99:  ms(h.Quantile(0.99)),
			P999: ms(h.Quantile(0.999)),
			Max:  ms(h.Max()),
			Mean: ms(h.Mean()),
		}
	}
	var growHist loadgen.Hist
	for _, d := range r.GrowSteps {
		growHist.Record(d)
	}
	readOps := uint64(r.ReadOps)
	rep := &loadgen.Report{
		Name:        "rebalance",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		ElapsedSec:  r.Elapsed.Seconds(),
		Ops:         2*readOps + uint64(len(r.GrowSteps)),
		Throughput:  r.ScaledThroughput,
		Latency:     histLat(r.ScaledReads),
		PerOp: map[string]*loadgen.OpReport{
			"baseline": {
				Ops:     readOps,
				Rate:    r.BaselineThroughput,
				Latency: histLat(r.BaselineReads),
			},
			"scaled": {
				Ops:     readOps,
				Rate:    r.ScaledThroughput,
				Latency: histLat(r.ScaledReads),
			},
			"grow": {
				Ops:     uint64(len(r.GrowSteps)),
				Rate:    float64(len(r.GrowSteps)) / r.Elapsed.Seconds(),
				Latency: histLat(&growHist),
			},
		},
	}
	rep.Scenario.Shards = r.EndShards
	rep.Scenario.Clients = r.Workers + 1
	rep.Scenario.Conns = r.EndShards
	rep.Scenario.Mix = fmt.Sprintf("blast %d->%d live scale-out, speedup %.2fx", r.StartShards, r.EndShards, r.Speedup)
	rep.Scenario.Arrival = "closed"
	rep.Scenario.Duration = r.Elapsed.Round(time.Millisecond).String()
	rep.Scenario.Warmup = "0s"
	rep.Scenario.Payload = r.Payload
	return rep
}

// DrainConfig parameterises a live drain (scale-in) run.
type DrainConfig struct {
	// Shards is the plane size before the drain (default 3).
	Shards int
	// Tasks is the wave size (default 24).
	Tasks int
	// PayloadBytes sizes each payload (default 256).
	PayloadBytes int
	// Deadline bounds the distribution wait (default 60s).
	Deadline time.Duration
}

// DrainReport is the outcome of a drain run.
type DrainReport struct {
	Shards, Tasks int
	// Drained is the index of the retired shard.
	Drained int
	// DrainTime is the stage-to-commit wall time of the drain.
	DrainTime time.Duration
	// Elapsed is the whole run's wall time.
	Elapsed time.Duration
}

func (c *DrainConfig) defaults() {
	if c.Shards == 0 {
		c.Shards = 3
	}
	if c.Tasks == 0 {
		c.Tasks = 24
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 256
	}
	if c.Deadline == 0 {
		c.Deadline = 60 * time.Second
	}
}

// RunDrain runs the scale-in scenario: boot an elastic plane, distribute a
// wave, drain the last shard, converge the client, release the drained
// container (its endpoints die), and audit every datum byte-for-byte
// through the survivors. It returns an error when the drain loses or
// corrupts any datum, so tests can use it as an acceptance check.
func RunDrain(cfg DrainConfig) (DrainReport, error) {
	cfg.defaults()
	report := DrainReport{Shards: cfg.Shards, Tasks: cfg.Tasks, Drained: -1}
	runStart := time.Now()

	plane, err := runtime.NewShardedContainer(runtime.ShardedConfig{
		Shards:       cfg.Shards,
		DisableFTP:   true,
		DisableSwarm: true,
	})
	if err != nil {
		return report, err
	}
	defer plane.Close()

	master, err := core.ConnectSharded(plane.Addrs())
	if err != nil {
		return report, err
	}
	defer master.Close()
	mnode, err := core.NewNode(core.NodeConfig{Host: "drain-master", Shards: master, Concurrency: 16})
	if err != nil {
		return report, err
	}
	mnode.SetClientOnly(true)

	names := make([]string, cfg.Tasks)
	for i := range names {
		names[i] = fmt.Sprintf("drain-%04d", i)
	}
	wave, err := mnode.BitDew.CreateDataBatch(names)
	if err != nil {
		return report, err
	}
	rng := rand.New(rand.NewSource(17))
	contents := make([][]byte, len(wave))
	for i := range contents {
		contents[i] = make([]byte, cfg.PayloadBytes)
		rng.Read(contents[i])
	}
	if err := mnode.BitDew.PutAll(wave, contents); err != nil {
		return report, err
	}

	drainStart := time.Now()
	drained, err := plane.DrainShard()
	if err != nil {
		return report, err
	}
	report.Drained = drained
	report.DrainTime = time.Since(drainStart)

	if master.Epoch() != plane.Epoch() && !master.Refresh() {
		return report, fmt.Errorf("testbed: drain: client refresh failed after drain")
	}
	if master.N() != cfg.Shards-1 {
		return report, fmt.Errorf("testbed: drain: client sees %d shards after drain, want %d", master.N(), cfg.Shards-1)
	}
	// Release the retired container: from here its endpoints are dead, so
	// every fetch MUST resolve through the survivors — nothing may still
	// depend on the drained shard.
	if err := plane.ReleaseDrained(); err != nil {
		return report, err
	}
	for i, d := range wave {
		got, err := mnode.BitDew.GetBytes(*d)
		if err != nil {
			return report, fmt.Errorf("testbed: drain: %s unreachable after drain: %w", d.Name, err)
		}
		if string(got) != string(contents[i]) {
			return report, fmt.Errorf("testbed: drain: %s corrupted across drain", d.Name)
		}
	}
	all, err := mnode.BitDew.AllData()
	if err != nil {
		return report, err
	}
	if len(all) != len(wave) {
		return report, fmt.Errorf("testbed: drain: %d data after drain, want %d", len(all), len(wave))
	}
	report.Elapsed = time.Since(runStart)
	return report, nil
}
