package testbed_test

import (
	"testing"

	"bitdew/internal/testbed"
)

// TestRunScaleOut runs the live scale-out scenario functionally (no
// capacity model): a 2-shard plane grows to 3 while a wave distributes,
// and RunScaleOut itself errors on any unavailability, lost datum, stuck
// epoch, or empty new shard. The assertions below pin the report's
// bookkeeping so the audit cannot silently weaken.
func TestRunScaleOut(t *testing.T) {
	report, err := testbed.RunScaleOut(testbed.ScaleOutConfig{
		StartShards: 2,
		EndShards:   3,
		Workers:     3,
		Tasks:       16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.GrowSteps) != 1 {
		t.Fatalf("grew in %d steps, want 1", len(report.GrowSteps))
	}
	if report.EpochAfter != report.EpochBefore+1 {
		t.Fatalf("epoch %d -> %d across one AddShard", report.EpochBefore, report.EpochAfter)
	}
	if report.BaselineThroughput <= 0 || report.ScaledThroughput <= 0 {
		t.Fatalf("no throughput measured: %+v", report)
	}
	total := 0
	for _, n := range report.PerShardData {
		total += n
	}
	if total != 3*(report.Tasks+1) {
		t.Fatalf("placement accounts for %d of %d data", total, 3*(report.Tasks+1))
	}
	rep := report.BuildReport()
	if rep.Name != "rebalance" || rep.PerOp["baseline"] == nil || rep.PerOp["scaled"] == nil || rep.PerOp["grow"] == nil {
		t.Fatalf("malformed bench report: %+v", rep)
	}
}

// TestRunDrain runs the scale-in scenario: a 3-shard plane drains to 2,
// the retired container is released, and every datum must survive on the
// survivors. RunDrain itself errors on any loss.
func TestRunDrain(t *testing.T) {
	report, err := testbed.RunDrain(testbed.DrainConfig{
		Shards: 3,
		Tasks:  16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Drained != 2 {
		t.Fatalf("drained shard %d, want 2", report.Drained)
	}
	if report.DrainTime <= 0 {
		t.Fatalf("no drain time measured: %+v", report)
	}
}
