package testbed

import (
	"fmt"
	"math/rand"
	"time"

	"bitdew/internal/core"
	"bitdew/internal/loadgen"
	"bitdew/internal/runtime"
)

// The failover scenario measures the replicated plane's headline number:
// how long a key range is unreachable when its owning shard dies — from the
// kill to the first successful read through a failover-aware client, which
// covers detection (the transport error), the ownership probes, the
// successor's promotion (adopting the replicated rows into its live store)
// and the re-routed read itself. Multiple rounds alternate the kill between
// the range's candidates (kill the owner, restart it as a replica, kill the
// new owner, ...), so the measurement also exercises rejoin and repeated
// promotion, not just the first failover.

// FailoverConfig parameterises a failover-latency run.
type FailoverConfig struct {
	// Shards is the plane size (default 3).
	Shards int
	// Replicas is the replication factor (default 2).
	Replicas int
	// Data is the wave size; the victim range is the home of the first
	// datum (default 16, so every shard homes something).
	Data int
	// PayloadBytes sizes each datum (default 256).
	PayloadBytes int
	// Rounds is how many kill→measure→restart cycles to run (default 1).
	Rounds int
	// Deadline bounds each phase: replication convergence, each failover
	// wait, each rejoin wait (default 30s).
	Deadline time.Duration
}

// FailoverReport is the outcome of a failover-latency run.
type FailoverReport struct {
	Shards, Replicas, Rounds int
	// Detections holds one duration per round: the kill of the victim
	// range's owner to the first successful read of a datum homed there.
	Detections []time.Duration
	// Elapsed is the whole run's wall time (boot to last rejoin).
	Elapsed time.Duration
	// Payload is the effective payload size, for the report row.
	Payload int
}

func (c *FailoverConfig) defaults() {
	if c.Shards == 0 {
		c.Shards = 3
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.Data == 0 {
		c.Data = 16
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 256
	}
	if c.Rounds == 0 {
		c.Rounds = 1
	}
	if c.Deadline == 0 {
		c.Deadline = 30 * time.Second
	}
}

// RunFailover boots a replicated plane, distributes a wave, then runs the
// kill→measure→restart cycles. It returns an error when the plane fails to
// converge, a failover misses the deadline, or a read returns wrong bytes —
// so tests and benchmarks can use it as an acceptance check.
func RunFailover(cfg FailoverConfig) (FailoverReport, error) {
	cfg.defaults()
	report := FailoverReport{Shards: cfg.Shards, Replicas: cfg.Replicas, Rounds: cfg.Rounds, Payload: cfg.PayloadBytes}
	runStart := time.Now()
	if cfg.Replicas < 2 {
		return report, fmt.Errorf("testbed: failover needs replicas >= 2, got %d", cfg.Replicas)
	}

	plane, err := runtime.NewShardedContainer(runtime.ShardedConfig{
		Shards:   cfg.Shards,
		Replicas: cfg.Replicas,
		// The wave moves over HTTP; the other protocol servers only cost
		// boot time.
		DisableFTP:   true,
		DisableSwarm: true,
	})
	if err != nil {
		return report, err
	}
	defer plane.Close()

	set, err := core.ConnectSharded(plane.Addrs(), core.WithReplicas(plane.Replicas()))
	if err != nil {
		return report, err
	}
	defer set.Close()
	node, err := core.NewNode(core.NodeConfig{Host: "failover-client", Shards: set, Concurrency: 16})
	if err != nil {
		return report, err
	}
	node.SetClientOnly(true)

	names := make([]string, cfg.Data)
	for i := range names {
		names[i] = fmt.Sprintf("failover-%04d", i)
	}
	wave, err := node.BitDew.CreateDataBatch(names)
	if err != nil {
		return report, err
	}
	rng := rand.New(rand.NewSource(11))
	contents := make([][]byte, len(wave))
	for i := range contents {
		contents[i] = make([]byte, cfg.PayloadBytes)
		rng.Read(contents[i])
	}
	if err := node.BitDew.PutAll(wave, contents); err != nil {
		return report, err
	}

	// The victim range is the home of the first datum; track one witness
	// datum homed there whose read proves the range is back.
	victimRange := set.ShardOf(wave[0].UID)
	witness := *wave[0]
	witnessContent := contents[0]

	for round := 0; round < cfg.Rounds; round++ {
		// The kill must not race the replication stream: wait for every
		// live shard's outbound streams to be fully acknowledged.
		if err := plane.WaitReplicated(cfg.Deadline); err != nil {
			return report, fmt.Errorf("testbed: failover round %d: convergence: %w", round, err)
		}
		victim := set.OwnerOf(victimRange)
		if plane.Shard(victim) == nil {
			return report, fmt.Errorf("testbed: failover round %d: owner %d of range %d already down", round, victim, victimRange)
		}
		if err := plane.KillShard(victim); err != nil {
			return report, err
		}
		// Detection-to-promoted: the first read through the range slot
		// rides the whole failover path (transport error, probes, Promote,
		// re-routed call). Bound it with the deadline.
		killAt := time.Now()
		var got []byte
		deadline := killAt.Add(cfg.Deadline)
		for {
			raw, err := node.BitDew.GetBytes(witness)
			if err == nil {
				got = raw
				break
			}
			if time.Now().After(deadline) {
				return report, fmt.Errorf("testbed: failover round %d: range %d still unreachable %v after killing shard %d: %w",
					round, victimRange, cfg.Deadline, victim, err)
			}
		}
		detection := time.Since(killAt)
		if string(got) != string(witnessContent) {
			return report, fmt.Errorf("testbed: failover round %d: %s corrupted after failover", round, witness.Name)
		}
		if set.OwnerOf(victimRange) == victim {
			return report, fmt.Errorf("testbed: failover round %d: client still routes range %d to dead shard %d", round, victimRange, victim)
		}
		report.Detections = append(report.Detections, detection)

		// Restart the killed shard: it must rejoin as a replica (the
		// promoted owner keeps the range), ready to be promoted back when
		// the next round kills the current owner.
		if err := plane.RestartShard(victim); err != nil {
			return report, err
		}
	}
	report.Elapsed = time.Since(runStart)
	return report, nil
}

// BuildReport folds the run into the BENCH_*.json schema: each round's
// detection-to-promoted window is one "failover" op, its duration the op's
// latency — so the trajectory table's p50/p99 columns read directly as
// failover latency in milliseconds.
func (r FailoverReport) BuildReport() *loadgen.Report {
	var hist loadgen.Hist
	for _, d := range r.Detections {
		hist.Record(d)
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	lat := loadgen.LatencyMS{
		P50:  ms(hist.Quantile(0.50)),
		P99:  ms(hist.Quantile(0.99)),
		P999: ms(hist.Quantile(0.999)),
		Max:  ms(hist.Max()),
		Mean: ms(hist.Mean()),
	}
	rep := &loadgen.Report{
		Name:        "failover",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		ElapsedSec:  r.Elapsed.Seconds(),
		Ops:         uint64(len(r.Detections)),
		Latency:     lat,
		PerOp: map[string]*loadgen.OpReport{
			"failover": {
				Ops:     uint64(len(r.Detections)),
				Rate:    float64(len(r.Detections)) / r.Elapsed.Seconds(),
				Latency: lat,
			},
		},
	}
	if r.Elapsed > 0 {
		rep.Throughput = float64(len(r.Detections)) / r.Elapsed.Seconds()
	}
	rep.Scenario.Shards = r.Shards
	rep.Scenario.Clients = 1
	rep.Scenario.Conns = 1
	rep.Scenario.Mix = fmt.Sprintf("kill-owner x%d, R=%d", r.Rounds, r.Replicas)
	rep.Scenario.Arrival = "kill/promote/rejoin"
	rep.Scenario.Duration = r.Elapsed.Round(time.Millisecond).String()
	rep.Scenario.Warmup = "0s"
	rep.Scenario.Payload = r.Payload
	return rep
}
