package testbed_test

import (
	"testing"

	"bitdew/internal/testbed"
)

// TestRunShardedBlast runs the plain scenario over 2 shards: the wave must
// distribute fully and spread across both shards.
func TestRunShardedBlast(t *testing.T) {
	report, err := testbed.RunShardedBlast(testbed.ShardedBlastConfig{
		Shards:  2,
		Workers: 3,
		Tasks:   16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.DistributionTime <= 0 || report.ThroughputPerSec <= 0 {
		t.Fatalf("no throughput measured: %+v", report)
	}
	total := 0
	for _, n := range report.PerShardData {
		total += n
	}
	if total != report.Tasks+1 {
		t.Fatalf("placement accounts for %d of %d data", total, report.Tasks+1)
	}
	if report.PerShardData[0] == 0 || report.PerShardData[1] == 0 {
		t.Fatalf("degenerate placement across shards: %v", report.PerShardData)
	}
}

// TestRunShardedBlastKillShard runs the fault variant: after distribution,
// the highest shard is killed and no datum, locator or placement may be
// lost on the surviving shards. RunShardedBlast itself errors on any loss;
// the assertions below additionally pin the audit's bookkeeping.
func TestRunShardedBlastKillShard(t *testing.T) {
	report, err := testbed.RunShardedBlast(testbed.ShardedBlastConfig{
		Shards:       2,
		Workers:      3,
		Tasks:        16,
		KillOneShard: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.KilledShard != 1 {
		t.Fatalf("killed shard %d, want 1", report.KilledShard)
	}
	if report.SurvivorData == 0 {
		t.Fatal("no data homed on the surviving shard — audit proved nothing")
	}
	if report.SurvivedData != report.SurvivorData ||
		report.SurvivedLocators != report.SurvivorData ||
		report.SurvivedPlacements != report.SurvivorData {
		t.Fatalf("survivors lost state: %+v", report)
	}
}

// TestRunShardedBlastKillShardReplicated runs the fault variant over a
// replicated plane (3 shards, R=2): after distribution, the highest shard
// is killed and the audit upgrades to ZERO unavailability — every datum of
// the wave, including those homed on the killed shard, keeps its catalog
// entry, locators and placements and stays fetchable byte-for-byte through
// the same client, which reaches the dead shard's state via its promoted
// successor. RunShardedBlast itself errors on any loss; the assertions
// below pin the audit's bookkeeping so the check cannot silently weaken.
func TestRunShardedBlastKillShardReplicated(t *testing.T) {
	report, err := testbed.RunShardedBlast(testbed.ShardedBlastConfig{
		Shards:       3,
		Workers:      3,
		Tasks:        16,
		Replicas:     2,
		KillOneShard: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.KilledShard != 2 {
		t.Fatalf("killed shard %d, want 2", report.KilledShard)
	}
	wave := report.Tasks + 1
	if report.SurvivorData != wave {
		t.Fatalf("audited %d of %d data — zero-unavailability audit must cover the whole wave", report.SurvivorData, wave)
	}
	if report.SurvivedData != wave || report.SurvivedLocators != wave || report.SurvivedPlacements != wave {
		t.Fatalf("data became unavailable after the kill: %+v", report)
	}
	if report.PerShardData[report.KilledShard] == 0 {
		t.Fatal("no data homed on the killed shard — audit proved nothing about failover")
	}
	if report.FailedOverData != report.PerShardData[report.KilledShard] {
		t.Fatalf("%d of the killed shard's %d data failed over", report.FailedOverData, report.PerShardData[report.KilledShard])
	}
}

// TestRunShardedBlastDurable re-runs the scenario over durable shards to
// make sure per-shard StateDirs compose with sharding.
func TestRunShardedBlastDurable(t *testing.T) {
	report, err := testbed.RunShardedBlast(testbed.ShardedBlastConfig{
		Shards:   2,
		Workers:  2,
		Tasks:    8,
		StateDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.ThroughputPerSec <= 0 {
		t.Fatalf("no throughput measured: %+v", report)
	}
}
