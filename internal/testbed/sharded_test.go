package testbed_test

import (
	"testing"

	"bitdew/internal/testbed"
)

// TestRunShardedBlast runs the plain scenario over 2 shards: the wave must
// distribute fully and spread across both shards.
func TestRunShardedBlast(t *testing.T) {
	report, err := testbed.RunShardedBlast(testbed.ShardedBlastConfig{
		Shards:  2,
		Workers: 3,
		Tasks:   16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.DistributionTime <= 0 || report.ThroughputPerSec <= 0 {
		t.Fatalf("no throughput measured: %+v", report)
	}
	total := 0
	for _, n := range report.PerShardData {
		total += n
	}
	if total != report.Tasks+1 {
		t.Fatalf("placement accounts for %d of %d data", total, report.Tasks+1)
	}
	if report.PerShardData[0] == 0 || report.PerShardData[1] == 0 {
		t.Fatalf("degenerate placement across shards: %v", report.PerShardData)
	}
}

// TestRunShardedBlastKillShard runs the fault variant: after distribution,
// the highest shard is killed and no datum, locator or placement may be
// lost on the surviving shards. RunShardedBlast itself errors on any loss;
// the assertions below additionally pin the audit's bookkeeping.
func TestRunShardedBlastKillShard(t *testing.T) {
	report, err := testbed.RunShardedBlast(testbed.ShardedBlastConfig{
		Shards:       2,
		Workers:      3,
		Tasks:        16,
		KillOneShard: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.KilledShard != 1 {
		t.Fatalf("killed shard %d, want 1", report.KilledShard)
	}
	if report.SurvivorData == 0 {
		t.Fatal("no data homed on the surviving shard — audit proved nothing")
	}
	if report.SurvivedData != report.SurvivorData ||
		report.SurvivedLocators != report.SurvivorData ||
		report.SurvivedPlacements != report.SurvivorData {
		t.Fatalf("survivors lost state: %+v", report)
	}
}

// TestRunShardedBlastDurable re-runs the scenario over durable shards to
// make sure per-shard StateDirs compose with sharding.
func TestRunShardedBlastDurable(t *testing.T) {
	report, err := testbed.RunShardedBlast(testbed.ShardedBlastConfig{
		Shards:   2,
		Workers:  2,
		Tasks:    8,
		StateDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.ThroughputPerSec <= 0 {
		t.Fatalf("no throughput measured: %+v", report)
	}
}
