// Package testbed defines the simulated hardware platforms mirroring the
// paper's three experimental testbeds (§4.1, Table 1):
//
//   - GdX: the Grid Explorer cluster at Orsay (micro-benchmarks and the
//     transfer experiments of Figure 3);
//   - Grid5000: four clusters on three sites (gdx, grelon, grillon,
//     sagittaire) used for the 400-node BLAST run of Figure 6;
//   - DSL-Lab: twelve broadband-ADSL hosts with asymmetric, heterogeneous
//     links used for the fault-tolerance scenario of Figure 4.
package testbed

import "fmt"

// MB is one megabyte in bytes (decimal, matching the paper's MB figures).
const MB = 1e6

// GB is one gigabyte in bytes.
const GB = 1e9

// Cluster is one homogeneous group of nodes.
type Cluster struct {
	Name  string
	Nodes int
	// UpBps / DownBps are per-node link capacities in bytes per second.
	UpBps, DownBps float64
	// CPUFactor scales compute speed relative to the reference node
	// (gdx's 2.0 GHz Opteron 246 = 1.0).
	CPUFactor float64
	// UnzipBps is the local decompression throughput in bytes/s, bound by
	// disk and CPU (used by the Figure 6 breakdown).
	UnzipBps float64
}

// Platform is a complete simulated testbed: a stable service/server node
// plus worker clusters.
type Platform struct {
	Name string
	// ServerUpBps / ServerDownBps are the service host's link capacities.
	ServerUpBps, ServerDownBps float64
	Clusters                   []Cluster
}

// TotalNodes sums the nodes of every cluster.
func (p Platform) TotalNodes() int {
	n := 0
	for _, c := range p.Clusters {
		n += c.Nodes
	}
	return n
}

// NodeSpec returns the cluster and per-cluster index of global node i,
// filling clusters in order.
func (p Platform) NodeSpec(i int) (Cluster, int, error) {
	for _, c := range p.Clusters {
		if i < c.Nodes {
			return c, i, nil
		}
		i -= c.Nodes
	}
	return Cluster{}, 0, fmt.Errorf("testbed: node %d out of range (platform has %d)", i, p.TotalNodes())
}

// gigabitBps is the effective application throughput of a GigE NIC
// (~119 MiB/s theoretical; 117 MB/s observed is typical).
const gigabitBps = 117 * MB

// GdX models the Grid Explorer cluster: 312 IBM eServer nodes with AMD
// Opteron 246/250, gigabit Ethernet.
func GdX() Platform {
	return Platform{
		Name:          "gdx",
		ServerUpBps:   gigabitBps,
		ServerDownBps: gigabitBps,
		Clusters: []Cluster{{
			Name: "gdx", Nodes: 312,
			UpBps: gigabitBps, DownBps: gigabitBps,
			CPUFactor: 1.0, UnzipBps: 40 * MB,
		}},
	}
}

// Grid5000 models the four-cluster scalability testbed of Table 1.
func Grid5000() Platform {
	return Platform{
		Name:          "grid5000",
		ServerUpBps:   gigabitBps,
		ServerDownBps: gigabitBps,
		Clusters: []Cluster{
			{Name: "gdx", Nodes: 312, UpBps: gigabitBps, DownBps: gigabitBps, CPUFactor: 1.0, UnzipBps: 40 * MB},
			{Name: "grelon", Nodes: 120, UpBps: gigabitBps, DownBps: gigabitBps, CPUFactor: 0.8, UnzipBps: 32 * MB},
			{Name: "grillon", Nodes: 47, UpBps: gigabitBps, DownBps: gigabitBps, CPUFactor: 1.0, UnzipBps: 40 * MB},
			{Name: "sagittaire", Nodes: 65, UpBps: gigabitBps, DownBps: gigabitBps, CPUFactor: 1.2, UnzipBps: 48 * MB},
		},
	}
}

// DSLLabBandwidths lists the per-node (down, up) capacities in bytes/s of
// the twelve DSL-Lab hosts. Broadband ADSL is asymmetric and varies by
// provider; these values reproduce the 53–492 KB/s spread of Figure 4.
var DSLLabBandwidths = [][2]float64{
	{492e3, 128e3}, {211e3, 64e3}, {254e3, 64e3}, {247e3, 96e3},
	{384e3, 128e3}, {53e3, 32e3}, {412e3, 96e3}, {332e3, 64e3},
	{304e3, 96e3}, {259e3, 64e3}, {288e3, 64e3}, {341e3, 96e3},
}

// DSLLab models the broadband experimental platform: Mini-ITX nodes behind
// consumer ADSL, where the server side (the experimenters' lab) has ample
// bandwidth and each node's ADSL downlink is the bottleneck.
func DSLLab() Platform {
	p := Platform{
		Name:          "dsllab",
		ServerUpBps:   10 * MB,
		ServerDownBps: 10 * MB,
	}
	for i, bw := range DSLLabBandwidths {
		p.Clusters = append(p.Clusters, Cluster{
			Name: fmt.Sprintf("DSL%02d", i+1), Nodes: 1,
			DownBps: bw[0], UpBps: bw[1],
			CPUFactor: 0.3, UnzipBps: 5 * MB,
		})
	}
	return p
}
