package rpc

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

type echoArgs struct {
	S string
	N int
}

type echoReply struct {
	S string
	N int
}

func newEchoMux() *Mux {
	m := NewMux()
	Register(m, "echo", "Echo", func(a echoArgs) (echoReply, error) {
		return echoReply{S: a.S, N: a.N + 1}, nil
	})
	Register(m, "echo", "Fail", func(a echoArgs) (echoReply, error) {
		return echoReply{}, fmt.Errorf("boom: %s", a.S)
	})
	Register(m, "echo", "Slow", func(a echoArgs) (echoReply, error) {
		time.Sleep(time.Duration(a.N) * time.Millisecond)
		return echoReply{S: a.S}, nil
	})
	return m
}

func testClient(t *testing.T, c Client) {
	t.Helper()
	var r echoReply
	if err := c.Call("echo", "Echo", echoArgs{S: "hi", N: 1}, &r); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if r.S != "hi" || r.N != 2 {
		t.Fatalf("reply = %+v", r)
	}
	// Application error propagates.
	err := c.Call("echo", "Fail", echoArgs{S: "x"}, &r)
	if err == nil || !strings.Contains(err.Error(), "boom: x") {
		t.Fatalf("Fail err = %v", err)
	}
	// Unknown method.
	if err := c.Call("echo", "Nope", echoArgs{}, nil); err == nil {
		t.Fatal("unknown method: want error")
	}
	if err := c.Call("none", "Echo", echoArgs{}, nil); err == nil {
		t.Fatal("unknown service: want error")
	}
	// nil reply discards.
	if err := c.Call("echo", "Echo", echoArgs{S: "d"}, nil); err != nil {
		t.Fatalf("nil reply: %v", err)
	}
}

func TestLocalClient(t *testing.T) {
	c := NewLocalClient(newEchoMux(), 0)
	defer c.Close()
	testClient(t, c)
}

func TestLocalClientClosed(t *testing.T) {
	c := NewLocalClient(newEchoMux(), 0)
	c.Close()
	c.Close() // idempotent
	if err := c.Call("echo", "Echo", echoArgs{}, nil); err == nil {
		t.Fatal("want error after Close")
	}
}

func TestTCPClient(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", newEchoMux())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	testClient(t, c)
}

func TestTCPConcurrentCalls(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", newEchoMux())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var r echoReply
			if err := c.Call("echo", "Echo", echoArgs{S: fmt.Sprint(i), N: i}, &r); err != nil {
				errs[i] = err
				return
			}
			if r.S != fmt.Sprint(i) || r.N != i+1 {
				errs[i] = fmt.Errorf("reply %+v for i=%d", r, i)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("call %d: %v", i, err)
		}
	}
}

func TestTCPPipeliningNotHeadOfLineBlocked(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", newEchoMux())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	slowDone := make(chan struct{})
	go func() {
		var r echoReply
		c.Call("echo", "Slow", echoArgs{S: "slow", N: 300}, &r)
		close(slowDone)
	}()
	time.Sleep(20 * time.Millisecond) // let the slow call hit the wire first
	start := time.Now()
	var r echoReply
	if err := c.Call("echo", "Echo", echoArgs{S: "fast"}, &r); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Errorf("fast call blocked behind slow call: %v", d)
	}
	<-slowDone
}

func TestTCPServerClose(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", newEchoMux())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	srv.Close() // idempotent
	// In-flight or later calls fail rather than hang.
	errc := make(chan error, 1)
	go func() { errc <- c.Call("echo", "Echo", echoArgs{}, nil) }()
	select {
	case err := <-errc:
		if err == nil {
			t.Error("call after server close succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Error("call after server close hung")
	}
	c.Close()
}

func TestTCPClientCloseFailsPending(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", newEchoMux())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- c.Call("echo", "Slow", echoArgs{N: 5000}, nil) }()
	time.Sleep(50 * time.Millisecond)
	c.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Error("pending call returned nil after Close")
		}
	case <-time.After(2 * time.Second):
		t.Error("pending call hung after Close")
	}
}

func TestLatencyInjection(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", newEchoMux(), WithServerLatency(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), WithCallLatency(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if err := c.Call("echo", "Echo", echoArgs{}, nil); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 60*time.Millisecond {
		t.Errorf("latency not injected: call took %v, want >= 60ms", d)
	}
}

func TestLocalLatency(t *testing.T) {
	c := NewLocalClient(newEchoMux(), 25*time.Millisecond)
	defer c.Close()
	start := time.Now()
	if err := c.Call("echo", "Echo", echoArgs{}, nil); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("call took %v, want >= 25ms", d)
	}
}

func TestMuxServices(t *testing.T) {
	m := newEchoMux()
	Register(m, "dc", "Ping", func(struct{}) (struct{}, error) { return struct{}{}, nil })
	got := m.Services()
	if len(got) != 2 || got[0] != "dc" || got[1] != "echo" {
		t.Errorf("Services() = %v", got)
	}
}

func TestDispatchNoSuchMethodSentinel(t *testing.T) {
	m := NewMux()
	_, err := m.dispatch("a", "b", nil)
	if !errors.Is(err, ErrNoSuchMethod) {
		t.Errorf("err = %v, want ErrNoSuchMethod", err)
	}
}

func TestQuickEchoOverTCP(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", newEchoMux())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f := func(s string, n int) bool {
		var r echoReply
		if err := c.Call("echo", "Echo", echoArgs{S: s, N: n}, &r); err != nil {
			return false
		}
		return r.S == s && r.N == n+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Skip("port 1 unexpectedly reachable")
	}
}

func TestTCPLargePayload(t *testing.T) {
	m := NewMux()
	Register(m, "blob", "Flip", func(b []byte) ([]byte, error) {
		out := make([]byte, len(b))
		for i := range b {
			out[i] = ^b[i]
		}
		return out, nil
	})
	srv, err := Listen("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := make([]byte, 4<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	var out []byte
	if err := c.Call("blob", "Flip", payload, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(payload) || out[0] != ^payload[0] || out[len(out)-1] != ^payload[len(payload)-1] {
		t.Fatalf("large payload mangled: %d bytes", len(out))
	}
}
