package rpc

import (
	"fmt"
	"testing"
)

// ---- Wire hot path (encode/dispatch cost under sustained load) ----
//
// Under the sustained-load harness (cmd/bitdew-stress) every op crosses the
// rpc layer at least once, so per-call allocation on the encode path and
// goroutine churn on the server multiply by the op rate. BenchmarkRPCHotPath
// measures the two client-side shapes that dominate: a single Call and a
// 64-call CallBatch over loopback TCP, plus the bare encode paths they sit
// on. TestRPCEncodeAllocAcceptance (alloc_test.go) pins the optimisation.

// hotArgs is a representative service argument: a couple of strings and a
// small payload, the shape of catalog/repository traffic.
type hotArgs struct {
	UID  string
	Name string
	Data []byte
}

type hotReply struct {
	OK  bool
	UID string
}

func hotMux() *Mux {
	m := NewMux()
	Register(m, "dc", "touch", func(a hotArgs) (hotReply, error) {
		return hotReply{OK: true, UID: a.UID}, nil
	})
	return m
}

func hotCallArgs(i int) hotArgs {
	return hotArgs{
		UID:  fmt.Sprintf("uid-%04d", i),
		Name: "stress-pre-0001",
		Data: make([]byte, 64),
	}
}

func BenchmarkRPCHotPath(b *testing.B) {
	b.Run("encode", func(b *testing.B) {
		args := hotCallArgs(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := encode(args); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("encodeCalls64", func(b *testing.B) {
		calls := make([]*Call, 64)
		for i := range calls {
			args := hotCallArgs(i)
			calls[i] = NewCall("dc", "touch", args, nil)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := encodeCalls(calls); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("call", func(b *testing.B) {
		srv, err := Listen("127.0.0.1:0", hotMux())
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		c, err := Dial(srv.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		args := hotCallArgs(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var r hotReply
			if err := c.Call("dc", "touch", args, &r); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("batch64", func(b *testing.B) {
		srv, err := Listen("127.0.0.1:0", hotMux())
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		c, err := Dial(srv.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		bc := c.(BatchCaller)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			calls := make([]*Call, 64)
			replies := make([]hotReply, 64)
			for j := range calls {
				calls[j] = NewCall("dc", "touch", hotCallArgs(j), &replies[j])
			}
			if err := bc.CallBatch(calls); err != nil {
				b.Fatal(err)
			}
			if err := FirstError(calls); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("coalesced", func(b *testing.B) {
		srv, err := Listen("127.0.0.1:0", hotMux())
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		c, err := Dial(srv.Addr())
		if err != nil {
			b.Fatal(err)
		}
		co := NewCoalescer(c)
		defer co.Close()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				var r hotReply
				if err := co.Call("dc", "touch", hotCallArgs(i), &r); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	})
}
