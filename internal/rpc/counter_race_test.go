package rpc

import (
	"fmt"
	"sync"
	"testing"
)

// TestRoundTripCounterConcurrent hammers one dialled client from many
// goroutines mixing Call, CallBatch and RoundTrips reads — run under -race
// (CI does) this pins that the frame counter and everything on the shared
// connection path (sequence numbers, pending map, splice pools, the
// server's worker pool) are safe under exactly the concurrency the
// sustained-load harness generates. It also checks the counter's
// arithmetic: each Call is one frame, each CallBatch one frame regardless
// of size.
func TestRoundTripCounterConcurrent(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", hotMux())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bc := c.(BatchCaller)

	const (
		goroutines = 16
		iterations = 50
		batchSize  = 8
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				switch i % 3 {
				case 0, 1:
					var r hotReply
					if err := c.Call("dc", "touch", hotArgs{UID: fmt.Sprintf("g%d-%d", g, i)}, &r); err != nil {
						t.Errorf("call: %v", err)
						return
					}
				case 2:
					calls := make([]*Call, batchSize)
					replies := make([]hotReply, batchSize)
					for j := range calls {
						calls[j] = NewCall("dc", "touch", hotArgs{UID: fmt.Sprintf("g%d-%d-%d", g, i, j)}, &replies[j])
					}
					if err := bc.CallBatch(calls); err != nil {
						t.Errorf("batch: %v", err)
						return
					}
					if err := FirstError(calls); err != nil {
						t.Errorf("batch call: %v", err)
						return
					}
				}
				// Interleave reads with the writes they race against.
				if _, ok := RoundTrips(c); !ok {
					t.Error("client lost its counter")
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// 2 of every 3 iterations are single calls (1 frame each), 1 of 3 is a
	// batch (1 frame regardless of its 8 calls).
	perG := uint64(0)
	for i := 0; i < iterations; i++ {
		perG++
	}
	want := uint64(goroutines) * perG
	got, ok := RoundTrips(c)
	if !ok {
		t.Fatal("client does not count round trips")
	}
	if got != want {
		t.Fatalf("RoundTrips = %d, want %d (batches must cost one frame)", got, want)
	}
}
