package rpc

import (
	"sync"
	"testing"
	"time"
)

func TestCoalescerBasics(t *testing.T) {
	co := NewCoalescer(NewLocalClient(newEchoMux(), 0))
	defer co.Close()
	testClient(t, co)
	testBatch(t, co)
}

// TestCoalescerMergesConcurrentCalls: many goroutines calling at once must
// end up on far fewer frames than calls.
func TestCoalescerMergesConcurrentCalls(t *testing.T) {
	// A per-frame latency makes callers pile up while a frame is on the
	// "wire", exactly the condition coalescing exploits.
	base := NewLocalClient(newEchoMux(), 2*time.Millisecond)
	co := NewCoalescer(base)
	defer co.Close()

	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	replies := make([]echoReply, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = co.Call("echo", "Echo", echoArgs{N: i}, &replies[i])
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil || replies[i].N != i+1 {
			t.Fatalf("call %d: err=%v reply=%+v", i, errs[i], replies[i])
		}
	}
	frames := co.RoundTrips()
	if frames == 0 || frames >= n {
		t.Errorf("%d concurrent calls used %d frames, want coalescing (< %d)", n, frames, n)
	}
	t.Logf("%d calls coalesced onto %d frames", n, frames)
}

// TestCoalescerPropagatesFrameError: a transport-level failure of the
// underlying client must surface as the batch's returned error (the
// BatchCaller contract), not vanish into per-call errors only.
func TestCoalescerPropagatesFrameError(t *testing.T) {
	base := NewLocalClient(newEchoMux(), 0)
	base.Close() // kill the transport underneath the coalescer
	co := NewCoalescer(base)
	calls := []*Call{NewCall("echo", "Echo", echoArgs{}, nil)}
	if err := co.CallBatch(calls); err == nil {
		t.Error("frame error swallowed by CallBatch")
	}
	if err := co.Call("echo", "Echo", echoArgs{}, nil); err == nil {
		t.Error("frame error swallowed by Call")
	}
}

func TestCoalescerClosed(t *testing.T) {
	co := NewCoalescer(NewLocalClient(newEchoMux(), 0))
	co.Close()
	if err := co.Call("echo", "Echo", echoArgs{}, nil); err == nil {
		t.Error("call after Close succeeded")
	}
	calls := []*Call{NewCall("echo", "Echo", echoArgs{}, nil)}
	if err := co.CallBatch(calls); err == nil {
		t.Error("batch after Close succeeded")
	}
}
