package rpc

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stubConn is a Client recording whether it was closed; the dial-hook tests
// use it so no real network is involved.
type stubConn struct{ closed atomic.Bool }

func (s *stubConn) Call(service, method string, args, reply any) error { return nil }
func (s *stubConn) Close() error                                       { s.closed.Store(true); return nil }

// TestAutoClientCloseNotBlockedByDial is the regression test for the
// lockheld finding on autoClient.current: the redial used to run while
// holding a.mu, so one slow dial wedged Close (and every concurrent
// caller). Close must now complete while a dial is still in flight, and
// the late connection must be closed, not adopted.
func TestAutoClientCloseNotBlockedByDial(t *testing.T) {
	release := make(chan struct{})
	dialing := make(chan struct{})
	conn := &stubConn{}
	a := &autoClient{addr: "stub", dial: func(addr string, opts ...DialOption) (Client, error) {
		close(dialing)
		<-release
		return conn, nil
	}}

	errc := make(chan error, 1)
	go func() {
		_, err := a.current()
		errc <- err
	}()
	<-dialing // the dial is in flight and must not hold a.mu

	closed := make(chan struct{})
	go func() {
		a.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked behind an in-flight dial")
	}

	close(release)
	if err := <-errc; !errors.Is(err, errAutoClosed) {
		t.Fatalf("current() after Close = %v, want errAutoClosed", err)
	}
	if !conn.closed.Load() {
		t.Error("connection dialled across Close was adopted instead of closed")
	}
}

// TestAutoClientConcurrentRedial checks the race two lock-free redials can
// now run: both dials proceed concurrently (neither serialised under a.mu),
// one connection wins, the loser is closed, and both callers end up on the
// winner.
func TestAutoClientConcurrentRedial(t *testing.T) {
	const dialers = 2
	gate := make(chan struct{})
	started := make(chan *stubConn, dialers)
	a := &autoClient{addr: "stub", dial: func(addr string, opts ...DialOption) (Client, error) {
		c := &stubConn{}
		started <- c
		<-gate
		return c, nil
	}}

	var wg sync.WaitGroup
	results := make([]Client, dialers)
	for i := 0; i < dialers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := a.current()
			if err != nil {
				t.Errorf("current: %v", err)
				return
			}
			results[i] = c
		}(i)
	}
	// Both dials must be in flight at once: with the old code the second
	// caller blocked on a.mu until the first dial finished, and this
	// receive would deadlock.
	conns := make([]*stubConn, 0, dialers)
	for i := 0; i < dialers; i++ {
		select {
		case c := <-started:
			conns = append(conns, c)
		case <-time.After(5 * time.Second):
			t.Fatal("second dial never started: redial is serialised under a.mu again")
		}
	}
	close(gate)
	wg.Wait()

	if results[0] != results[1] {
		t.Error("concurrent redials returned different connections")
	}
	var closedCount int
	for _, c := range conns {
		if c.closed.Load() {
			closedCount++
		}
	}
	if closedCount != 1 {
		t.Errorf("%d of %d raced connections closed, want exactly 1 (the loser)", closedCount, dialers)
	}
	if winner, ok := results[0].(*stubConn); !ok || winner.closed.Load() {
		t.Error("the adopted connection is closed (winner/loser mixed up)")
	}
	a.Close()
}
