//go:build race

package rpc

// raceEnabled reports that this build runs under the race detector, whose
// instrumentation changes allocation counts; alloc guards skip themselves.
const raceEnabled = true
