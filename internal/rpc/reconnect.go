package rpc

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Reconnection policy of a DialAuto client: a call that fails at the
// transport level is retried on a fresh connection up to maxAttempts times,
// with exponential backoff between attempts. The total window (~2.3 s)
// comfortably covers the administrator-restart fault model of the paper's
// service hosts when the restart is scripted, while still failing fast
// enough for callers' own retry loops (the Node heartbeat) to take over.
const (
	reconnectAttempts   = 8
	reconnectBackoff    = 25 * time.Millisecond
	reconnectBackoffMax = 500 * time.Millisecond
)

var errAutoClosed = errors.New("rpc: client closed")

// autoClient is a reconnecting wrapper over the TCP client: when a call
// fails because the connection (not the handler) failed, it redials the
// service address and retries. The D* service endpoints this client talks
// to are restartable (their state lives in db.Store), so a bounced service
// host looks like a slow call instead of a wedged client.
type autoClient struct {
	addr string
	opts []DialOption
	// attempts overrides reconnectAttempts when > 0 (DialAutoLazyN).
	attempts int
	// dial replaces Dial in tests (deterministic slow/failing dials); nil
	// means Dial. Immutable after construction, like addr and opts.
	dial func(addr string, opts ...DialOption) (Client, error)

	mu     sync.Mutex
	conn   Client
	closed bool
	// prevTrips accumulates the round-trip counts of connections already
	// torn down, so RoundTrips spans reconnections.
	prevTrips uint64
}

// DialAuto connects to a Server at addr like Dial, but returns a client
// that transparently reconnects: calls failing with ErrTransport are
// retried on a fresh connection (with backoff) instead of wedging every
// subsequent call. Application-level errors are returned as-is, never
// retried. The initial dial is eager so an unreachable service still fails
// fast at connect time.
func DialAuto(addr string, opts ...DialOption) (Client, error) {
	c, err := Dial(addr, opts...)
	if err != nil {
		return nil, err
	}
	return &autoClient{addr: addr, opts: opts, conn: c}, nil
}

// DialAutoLazy is DialAuto without the eager first dial: the client is
// built against a peer that may currently be DOWN, and every call redials
// (with the usual retry budget) until the peer comes back. A sharded
// client uses it for the shards it cannot reach at connect time, so
// joining a degraded plane works and the dead shard heals transparently
// on restart.
func DialAutoLazy(addr string, opts ...DialOption) Client {
	return &autoClient{addr: addr, opts: opts}
}

// DialAutoLazyN is DialAutoLazy with a custom transport-retry budget:
// calls give up after n same-address attempts instead of the default 8.
// The failover router uses a small budget so a dead shard surfaces as
// ErrTransport in tens of milliseconds — fast enough to probe the range's
// successor shards — instead of burning the full same-address backoff
// window on an address that will not come back before the failover.
func DialAutoLazyN(addr string, n int, opts ...DialOption) Client {
	if n < 1 {
		n = 1
	}
	return &autoClient{addr: addr, opts: opts, attempts: n}
}

// current returns the live connection, dialling a new one if the previous
// was torn down. The dial itself happens outside a.mu — it is blocking
// network work, and holding the mutex across it would wedge every concurrent
// caller (and Close) behind one slow dial. Concurrent redials may race; the
// loser's connection is closed and the winner's adopted.
func (a *autoClient) current() (Client, error) {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil, errAutoClosed
	}
	if c := a.conn; c != nil {
		a.mu.Unlock()
		return c, nil
	}
	a.mu.Unlock()

	dial := a.dial
	if dial == nil {
		dial = Dial
	}
	c, err := dial(a.addr, a.opts...)
	if err != nil {
		return nil, fmt.Errorf("%w: redial %s: %v", ErrTransport, a.addr, err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		c.Close()
		return nil, errAutoClosed
	}
	if a.conn != nil {
		// A concurrent caller redialled first; keep its connection.
		c.Close()
		return a.conn, nil
	}
	a.conn = c
	return c, nil
}

// invalidate tears down a connection observed failing, unless a concurrent
// caller already replaced it.
func (a *autoClient) invalidate(c Client) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.conn != c {
		return
	}
	if n, ok := RoundTrips(c); ok {
		a.prevTrips += n
	}
	c.Close()
	a.conn = nil
}

// exec runs fn against the current connection, redialling and retrying on
// transport failure.
func (a *autoClient) exec(fn func(Client) error) error {
	attempts := a.attempts
	if attempts == 0 {
		attempts = reconnectAttempts
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			d := reconnectBackoff << (attempt - 1)
			if d > reconnectBackoffMax {
				d = reconnectBackoffMax
			}
			time.Sleep(d)
		}
		c, err := a.current()
		if err != nil {
			if errors.Is(err, errAutoClosed) {
				return err
			}
			lastErr = err
			continue
		}
		err = fn(c)
		if err == nil || !errors.Is(err, ErrTransport) {
			return err
		}
		lastErr = err
		a.invalidate(c)
	}
	return lastErr
}

func (a *autoClient) Call(service, method string, args, reply any) error {
	return a.exec(func(c Client) error {
		return c.Call(service, method, args, reply)
	})
}

// CallBatch ships the batch over the current connection, replaying the
// whole frame on a fresh connection after a transport failure (per-call
// Err fields are reset before each attempt; a frame fails atomically
// before any reply is applied, so a retry never double-applies).
func (a *autoClient) CallBatch(calls []*Call) error {
	return a.exec(func(c Client) error {
		for _, call := range calls {
			call.Err = nil
		}
		return CallBatch(c, calls)
	})
}

// RoundTrips counts request frames across every connection this client has
// used.
func (a *autoClient) RoundTrips() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := a.prevTrips
	if a.conn != nil {
		if n, ok := RoundTrips(a.conn); ok {
			total += n
		}
	}
	return total
}

func (a *autoClient) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil
	}
	a.closed = true
	if a.conn != nil {
		err := a.conn.Close()
		a.conn = nil
		return err
	}
	return nil
}
