package rpc

import (
	"encoding/gob"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// swallowServer accepts connections and decodes request frames but never
// answers them — the wedged-but-connected peer WithCallTimeout exists for.
// It counts the frames it swallows so tests can assert retry behaviour.
type swallowServer struct {
	lis    net.Listener
	frames atomic.Int64
}

func newSwallowServer(t *testing.T) *swallowServer {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	s := &swallowServer{lis: lis}
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				dec := gob.NewDecoder(conn)
				for {
					var req request
					if err := dec.Decode(&req); err != nil {
						return
					}
					s.frames.Add(1)
				}
			}()
		}
	}()
	return s
}

// TestCallTimeoutDeadline is the regression test for the rpcdeadline
// finding on the client: before WithCallTimeout existed, roundTrip blocked
// forever on a peer that stopped answering without closing the connection.
func TestCallTimeoutDeadline(t *testing.T) {
	srv := newSwallowServer(t)
	c, err := Dial(srv.lis.Addr().String(), WithCallTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	err = c.Call("svc", "m", struct{}{}, nil)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("call against a silent peer = %v, want ErrDeadline", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to fire, want ~50ms", elapsed)
	}
	// The abandoned call's pending entry must be reaped, not leaked.
	tc := c.(*tcpClient)
	tc.mu.Lock()
	pending := len(tc.pending)
	tc.mu.Unlock()
	if pending != 0 {
		t.Errorf("%d pending entries left after deadline, want 0", pending)
	}
}

// TestCallTimeoutNotRetried pins the ErrDeadline/ErrTransport distinction:
// a reconnecting client must not replay a timed-out call (the request may
// still execute server-side; a replay could double-apply it).
func TestCallTimeoutNotRetried(t *testing.T) {
	srv := newSwallowServer(t)
	c, err := DialAuto(srv.lis.Addr().String(), WithCallTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	err = c.Call("svc", "m", struct{}{}, nil)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("call against a silent peer = %v, want ErrDeadline", err)
	}
	if errors.Is(err, ErrTransport) {
		t.Fatal("ErrDeadline must not be an ErrTransport, or reconnect would replay the call")
	}
	if n := srv.frames.Load(); n != 1 {
		t.Fatalf("silent peer saw %d frames, want exactly 1 (no replay of a timed-out call)", n)
	}
}

// TestCallTimeoutHappyPath checks a responsive server is unaffected by the
// armed deadline.
func TestCallTimeoutHappyPath(t *testing.T) {
	mux := NewMux()
	Register(mux, "svc", "echo", func(s string) (string, error) { return s, nil })
	srv, err := Listen("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(srv.Addr(), WithCallTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var got string
	if err := c.Call("svc", "echo", "hello", &got); err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Fatalf("echo = %q, want %q", got, "hello")
	}
}

// TestCallBatchTimeoutDeadline covers the batch frame path: every call of a
// timed-out batch fails with ErrDeadline through its Err field.
func TestCallBatchTimeoutDeadline(t *testing.T) {
	srv := newSwallowServer(t)
	c, err := Dial(srv.lis.Addr().String(), WithCallTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	calls := []*Call{
		NewCall("svc", "m", struct{}{}, nil),
		NewCall("svc", "m", struct{}{}, nil),
	}
	err = CallBatch(c, calls)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("batch against a silent peer = %v, want ErrDeadline", err)
	}
	for i, call := range calls {
		if !errors.Is(call.Err, ErrDeadline) {
			t.Errorf("calls[%d].Err = %v, want ErrDeadline", i, call.Err)
		}
	}
}
