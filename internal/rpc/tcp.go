package rpc

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrTransport marks a failure of the connection itself (broken link, dead
// peer, failed redial) as opposed to an error returned by the remote
// handler. Reconnecting clients retry calls that fail with it; application
// errors are never retried.
var ErrTransport = errors.New("rpc: transport failure")

// ErrDeadline marks a call that outlived its per-call timeout (see
// WithCallTimeout). It is deliberately not an ErrTransport: the request may
// still be executing on the server, so reconnecting clients must not retry
// it — a replay could double-apply a non-idempotent operation. Callers that
// know an operation is idempotent can retry explicitly.
var ErrDeadline = errors.New("rpc: call deadline exceeded")

// request and response are the wire messages. Args and Reply are pre-encoded
// gob payloads so the framing codec stays independent of call signatures.
// A non-empty Batch makes the frame a multi-call: N logical calls sharing
// one write/read cycle (and one latency charge on each side); Service,
// Method and Args are then unused.
type request struct {
	Seq     uint64
	Service string
	Method  string
	Args    []byte
	Batch   []batchItem
}

type response struct {
	Seq   uint64
	Err   string
	Reply []byte
	Batch []batchReply
}

// batchItem is one logical call of a multi-call frame.
type batchItem struct {
	Service string
	Method  string
	Args    []byte
}

// batchReply is the per-call outcome of a multi-call frame.
type batchReply struct {
	Err   string
	Reply []byte
}

// Server accepts connections and dispatches requests into a Mux. Each
// connection is served by one goroutine; requests are dispatched off the
// read loop so a slow handler does not head-of-line-block the link. Dispatch
// runs on a bounded pool of persistent workers, grown lazily up to
// maxWorkers; when every worker is busy a transient goroutine picks up the
// frame instead of queueing it, so concurrency stays unbounded (the capacity
// experiments rely on WithServeLimit being the only bottleneck) while the
// steady-state request rate stops paying a goroutine spawn per frame.
type Server struct {
	mux     *Mux
	lis     net.Listener
	latency time.Duration
	// limit, when non-nil, is a server-wide semaphore capping concurrent
	// frame dispatches (see WithServeLimit).
	limit chan struct{}

	work       chan func()
	workers    atomic.Int32
	maxWorkers int32

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  chan struct{}
	wg    sync.WaitGroup
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithServerLatency makes the server sleep d before answering each request,
// modelling a distant deployment (the paper's "RMI remote" row) without
// needing a second machine.
func WithServerLatency(d time.Duration) ServerOption {
	return func(s *Server) { s.latency = d }
}

// WithServeLimit caps the server at n concurrently processed request
// frames, across all connections; excess frames queue. Together with
// WithServerLatency this models a service host of finite capacity — n
// request slots each occupied for the modelled service time — which is how
// the shard-scaling experiments make one emulated host a measurable
// bottleneck that adding shards genuinely relieves. n <= 0 leaves the
// server unlimited.
func WithServeLimit(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.limit = make(chan struct{}, n)
		}
	}
}

// NewServer starts serving m on lis until Close is called.
func NewServer(lis net.Listener, m *Mux, opts ...ServerOption) *Server {
	s := &Server{
		mux:        m,
		lis:        lis,
		conns:      make(map[net.Conn]struct{}),
		done:       make(chan struct{}),
		work:       make(chan func()),
		maxWorkers: int32(8 * runtime.GOMAXPROCS(0)),
	}
	for _, o := range opts {
		o(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Listen is a convenience wrapper starting a TCP server on addr
// (e.g. "127.0.0.1:0").
func Listen(addr string, m *Mux, opts ...ServerOption) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	return NewServer(lis, m, opts...), nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops accepting, closes every open connection and waits for
// connection goroutines to drain.
func (s *Server) Close() error {
	select {
	case <-s.done:
		return nil
	default:
	}
	close(s.done)
	err := s.lis.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			// Transient accept failure; keep serving.
			continue
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var wmu sync.Mutex // serialises concurrent response writes
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		s.dispatchAsync(func() { s.handle(req, conn, enc, &wmu) })
	}
}

// handle answers one request frame: capacity gate, modelled latency,
// dispatch, response write.
func (s *Server) handle(req request, conn net.Conn, enc *gob.Encoder, wmu *sync.Mutex) {
	if s.limit != nil {
		s.limit <- struct{}{}
		defer func() { <-s.limit }()
	}
	if s.latency > 0 {
		time.Sleep(s.latency)
	}
	var resp response
	if len(req.Batch) > 0 {
		resp = response{Seq: req.Seq, Batch: s.mux.dispatchBatch(req.Batch)}
	} else {
		reply, err := s.mux.dispatch(req.Service, req.Method, req.Args)
		resp = response{Seq: req.Seq, Reply: reply}
		if err != nil {
			resp.Err = err.Error()
		}
	}
	wmu.Lock()
	encErr := enc.Encode(resp)
	wmu.Unlock()
	if encErr != nil {
		conn.Close()
	}
}

// dispatchAsync runs fn off the caller's goroutine: on an idle pool worker
// when one is parked, on a new persistent worker while the pool is below
// its cap, and on a transient goroutine otherwise — a frame is never queued
// behind a busy handler.
func (s *Server) dispatchAsync(fn func()) {
	select {
	case s.work <- fn:
		return
	default:
	}
	for {
		n := s.workers.Load()
		if n >= s.maxWorkers {
			break
		}
		if s.workers.CompareAndSwap(n, n+1) {
			s.wg.Add(1)
			go s.worker(fn)
			return
		}
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		fn()
	}()
}

// worker runs its first task, then serves the shared queue until Close.
func (s *Server) worker(fn func()) {
	defer s.wg.Done()
	fn()
	for {
		select {
		case fn := <-s.work:
			fn()
		case <-s.done:
			return
		}
	}
}

// tcpClient is a pipelined client: many calls may be in flight on the single
// connection, matched back to callers by sequence number.
type tcpClient struct {
	conn    net.Conn
	enc     *gob.Encoder
	latency time.Duration
	// timeout bounds each round trip (WithCallTimeout); zero waits forever.
	timeout time.Duration
	frames  frameCounter
	// faults, when armed (WithFaultPlan), scripts per-frame faults for
	// deterministic failure testing.
	faults *FaultPlan

	wmu sync.Mutex // guards enc

	mu      sync.Mutex // guards seq, pending, closed
	seq     uint64
	pending map[uint64]chan response
	closed  bool
	readErr error
}

// DialOption configures a dialled client.
type DialOption func(*tcpClient)

// WithCallLatency sleeps d before sending each request, modelling one-way
// client-side network delay.
func WithCallLatency(d time.Duration) DialOption {
	return func(c *tcpClient) { c.latency = d }
}

// WithCallTimeout bounds every round trip on the client at d: a call whose
// response has not arrived within d of the request being sent fails with
// ErrDeadline instead of blocking forever on a peer that stopped answering
// without closing the connection. The timer is armed per call and only when
// the option is set, so clients that omit it pay nothing. d <= 0 disables
// the bound.
func WithCallTimeout(d time.Duration) DialOption {
	return func(c *tcpClient) { c.timeout = d }
}

// Dial connects to a Server at addr.
func Dial(addr string, opts ...DialOption) (Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	c := &tcpClient{
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		pending: make(map[uint64]chan response),
	}
	for _, o := range opts {
		o(c)
	}
	go c.readLoop()
	return c, nil
}

func (c *tcpClient) readLoop() {
	dec := gob.NewDecoder(c.conn)
	for {
		var resp response
		if err := dec.Decode(&resp); err != nil {
			c.failAll(err)
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.Seq]
		delete(c.pending, resp.Seq)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

func (c *tcpClient) failAll(err error) {
	if err == io.EOF {
		err = errors.New("connection closed")
	}
	c.mu.Lock()
	c.readErr = err
	for seq, ch := range c.pending {
		delete(c.pending, seq)
		// Closing (instead of answering) marks the outcome as a transport
		// failure: roundTrip turns it into an ErrTransport, never into an
		// application error.
		close(ch)
	}
	c.mu.Unlock()
}

// roundTrip sends one request frame (filling in its Seq) and waits for the
// matching response, charging the injected latency and the frame counter
// exactly once — whether the frame carries one call or a whole batch.
func (c *tcpClient) roundTrip(req request) (response, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return response{}, errors.New("rpc: client closed")
	}
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return response{}, fmt.Errorf("%w: %v", ErrTransport, err)
	}
	c.seq++
	req.Seq = c.seq
	ch := make(chan response, 1)
	c.pending[req.Seq] = ch
	c.mu.Unlock()

	if c.latency > 0 {
		time.Sleep(c.latency)
	}
	c.frames.inc()
	var fault Fault
	if c.faults != nil {
		fault = c.faults.next()
	}
	if fault.Action == FaultDrop {
		// The frame is lost and the link breaks: nothing is written, and
		// closing the connection makes the read loop fail every pending
		// call (including this one) with ErrTransport below.
		c.conn.Close()
	} else {
		if fault.Action == FaultDelay && fault.Delay > 0 {
			time.Sleep(fault.Delay)
		}
		c.wmu.Lock()
		err := c.enc.Encode(req)
		if err == nil && fault.Action == FaultDup {
			// Deliver the frame twice; the server will answer twice with
			// the same seq and the client must discard the stray.
			err = c.enc.Encode(req)
		}
		c.wmu.Unlock()
		if err != nil {
			c.mu.Lock()
			delete(c.pending, req.Seq)
			c.mu.Unlock()
			return response{}, fmt.Errorf("%w: sending request: %v", ErrTransport, err)
		}
	}
	if c.timeout > 0 {
		timer := time.NewTimer(c.timeout)
		defer timer.Stop()
		select {
		case resp, ok := <-ch:
			if !ok {
				return response{}, c.transportErr()
			}
			return resp, nil
		case <-timer.C:
			// Abandon the call: the response, if it ever arrives, is dropped
			// into the channel's buffer and garbage-collected with it.
			c.mu.Lock()
			delete(c.pending, req.Seq)
			c.mu.Unlock()
			return response{}, fmt.Errorf("%w after %v", ErrDeadline, c.timeout)
		}
	}
	resp, ok := <-ch
	if !ok {
		return response{}, c.transportErr()
	}
	return resp, nil
}

// transportErr wraps the read loop's terminal error as an ErrTransport.
func (c *tcpClient) transportErr() error {
	c.mu.Lock()
	readErr := c.readErr
	c.mu.Unlock()
	return fmt.Errorf("%w: %v", ErrTransport, readErr)
}

func (c *tcpClient) Call(service, method string, args, reply any) error {
	raw, err := encode(args)
	if err != nil {
		return fmt.Errorf("rpc: encoding args of %s.%s: %w", service, method, err)
	}
	resp, err := c.roundTrip(request{Service: service, Method: method, Args: raw})
	if err != nil {
		return fmt.Errorf("rpc: %s.%s: %w", service, method, err)
	}
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	if reply == nil {
		return nil
	}
	return decode(resp.Reply, reply)
}

// CallBatch ships every call in one request frame: one write/read cycle,
// one latency charge on each side, per-call errors preserved.
func (c *tcpClient) CallBatch(calls []*Call) error {
	if len(calls) == 0 {
		return nil
	}
	items, err := encodeCalls(calls)
	if err != nil {
		return failCalls(calls, err)
	}
	resp, err := c.roundTrip(request{Batch: items})
	if err != nil {
		return failCalls(calls, err)
	}
	if resp.Err != "" {
		return failCalls(calls, errors.New(resp.Err))
	}
	if err := applyReplies(calls, resp.Batch); err != nil {
		return failCalls(calls, err)
	}
	return nil
}

// RoundTrips counts the request frames sent on this connection.
func (c *tcpClient) RoundTrips() uint64 { return c.frames.RoundTrips() }

func (c *tcpClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}
