package rpc

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// countMux serves an "count.Hit" method that counts its executions.
func countMux(hits *atomic.Int64) *Mux {
	m := NewMux()
	Register(m, "count", "Hit", func(s string) (string, error) {
		hits.Add(1)
		return s, nil
	})
	return m
}

// TestFaultDropRetriedByDialAuto drops exactly one request frame while the
// server stays healthy — the single-lost-request fault a server bounce
// (reconnect_test.go) cannot produce. DialAuto must redial and replay; the
// server must see the request exactly once.
func TestFaultDropRetriedByDialAuto(t *testing.T) {
	var hits atomic.Int64
	srv, err := Listen("127.0.0.1:0", countMux(&hits))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	plan := NewFaultPlan().DropFrames(1)
	c, err := DialAuto(srv.Addr(), WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var out string
	if err := c.Call("count", "Hit", "x", &out); err != nil || out != "x" {
		t.Fatalf("Call through dropped frame = %q, %v", out, err)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("server executed the call %d times, want 1 (dropped frame never arrived)", n)
	}
	if n := plan.Frames(); n != 2 {
		t.Fatalf("client sent %d frames, want 2 (original + replay)", n)
	}
	if n, _ := RoundTrips(c); n != 2 {
		t.Fatalf("RoundTrips = %d, want 2 across the redial", n)
	}
}

// TestFaultDropTwiceStillRecovers loses the frame on two consecutive
// connections: the first replay's connection also eats the frame, forcing
// a second redial — the deep end of DialAuto's backoff loop.
func TestFaultDropTwiceStillRecovers(t *testing.T) {
	var hits atomic.Int64
	srv, err := Listen("127.0.0.1:0", countMux(&hits))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	plan := NewFaultPlan().DropFrames(1, 2)
	c, err := DialAuto(srv.Addr(), WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var out string
	if err := c.Call("count", "Hit", "deep", &out); err != nil || out != "deep" {
		t.Fatalf("Call through two dropped frames = %q, %v", out, err)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("server executed the call %d times, want 1", n)
	}
	if n := plan.Frames(); n != 3 {
		t.Fatalf("client sent %d frames, want 3", n)
	}
}

// TestFaultDropExhaustsRetries drops every attempt: the call must
// eventually give up with ErrTransport after exactly the reconnection
// budget, a path unreachable with a dead server (there the redial itself
// fails, short-circuiting before a frame is ever sent).
func TestFaultDropExhaustsRetries(t *testing.T) {
	var hits atomic.Int64
	srv, err := Listen("127.0.0.1:0", countMux(&hits))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	plan := NewFaultPlan()
	for f := uint64(1); f <= reconnectAttempts; f++ {
		plan.DropFrames(f)
	}
	c, err := DialAuto(srv.Addr(), WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var out string
	err = c.Call("count", "Hit", "doomed", &out)
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("exhausted call = %v, want ErrTransport", err)
	}
	if n := plan.Frames(); n != reconnectAttempts {
		t.Fatalf("client sent %d frames, want %d (one per attempt)", n, reconnectAttempts)
	}
	if n := hits.Load(); n != 0 {
		t.Fatalf("server executed the call %d times, want 0", n)
	}
}

// TestFaultDropBatchReplayedOnce drops a batch frame: DialAuto must replay
// the whole frame on a fresh connection without double-applying any call
// and with every per-call Err reset.
func TestFaultDropBatchReplayedOnce(t *testing.T) {
	var hits atomic.Int64
	srv, err := Listen("127.0.0.1:0", countMux(&hits))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	plan := NewFaultPlan().DropFrames(1)
	c, err := DialAuto(srv.Addr(), WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var a, b string
	calls := []*Call{
		NewCall("count", "Hit", "one", &a),
		NewCall("count", "Hit", "two", &b),
	}
	if err := CallBatch(c, calls); err != nil {
		t.Fatalf("batch through dropped frame: %v", err)
	}
	if a != "one" || b != "two" || FirstError(calls) != nil {
		t.Fatalf("batch replies = %q, %q, err %v", a, b, FirstError(calls))
	}
	if n := hits.Load(); n != 2 {
		t.Fatalf("server executed %d calls, want 2 (the dropped frame never arrived)", n)
	}
}

// TestFaultDupStrayResponseDiscarded duplicates one frame: the server
// executes and answers twice with the same seq; the client must take the
// first response and discard the stray without corrupting later calls —
// and the duplicate execution is why service mutations stay idempotent.
func TestFaultDupStrayResponseDiscarded(t *testing.T) {
	var hits atomic.Int64
	srv, err := Listen("127.0.0.1:0", countMux(&hits))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	plan := NewFaultPlan().Set(1, Fault{Action: FaultDup})
	c, err := Dial(srv.Addr(), WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var out string
	if err := c.Call("count", "Hit", "twice", &out); err != nil || out != "twice" {
		t.Fatalf("duplicated call = %q, %v", out, err)
	}
	// The duplicate executes asynchronously; wait for it.
	deadline := time.Now().Add(2 * time.Second)
	for hits.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := hits.Load(); n != 2 {
		t.Fatalf("server executed the duplicated call %d times, want 2", n)
	}
	// The connection must still be perfectly usable after the stray
	// response was discarded.
	for i := 0; i < 3; i++ {
		if err := c.Call("count", "Hit", "after", &out); err != nil || out != "after" {
			t.Fatalf("call %d after stray response = %q, %v", i, out, err)
		}
	}
}

// TestFaultDelayLetsLaterFramesOvertake delays one frame on a pipelined
// connection: a later call must complete while the delayed one is still
// outstanding, and both must land correctly once the slow frame arrives.
func TestFaultDelayLetsLaterFramesOvertake(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", echoMux())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	plan := NewFaultPlan().Set(1, Fault{Action: FaultDelay, Delay: 250 * time.Millisecond})
	c, err := Dial(srv.Addr(), WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var slowDone atomic.Bool
	slowErr := make(chan error, 1)
	go func() {
		var out string
		err := c.Call("echo", "Echo", "slow", &out)
		slowDone.Store(true)
		if err == nil && out != "slow" {
			err = errors.New("slow call got " + out)
		}
		slowErr <- err
	}()

	// Give the slow call time to claim frame 1, then overtake it.
	time.Sleep(50 * time.Millisecond)
	var out string
	if err := c.Call("echo", "Echo", "fast", &out); err != nil || out != "fast" {
		t.Fatalf("fast call = %q, %v", out, err)
	}
	if slowDone.Load() {
		t.Fatal("delayed call finished before the fast one — no overtaking happened")
	}
	if err := <-slowErr; err != nil {
		t.Fatalf("slow call: %v", err)
	}
}
