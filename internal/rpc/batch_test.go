package rpc

import (
	"strings"
	"testing"
	"time"
)

// testBatch exercises the multi-call frame against any client: replies land
// in order, per-call errors are preserved, nil replies discard.
func testBatch(t *testing.T, c Client) {
	t.Helper()
	var r1, r2 echoReply
	calls := []*Call{
		NewCall("echo", "Echo", echoArgs{S: "a", N: 1}, &r1),
		NewCall("echo", "Fail", echoArgs{S: "mid"}, nil),
		NewCall("echo", "Echo", echoArgs{S: "b", N: 10}, &r2),
		NewCall("echo", "Nope", echoArgs{}, nil),
		NewCall("echo", "Echo", echoArgs{S: "discard"}, nil),
	}
	if err := CallBatch(c, calls); err != nil {
		t.Fatalf("CallBatch: %v", err)
	}
	if calls[0].Err != nil || r1.S != "a" || r1.N != 2 {
		t.Errorf("call 0: err=%v reply=%+v", calls[0].Err, r1)
	}
	if calls[1].Err == nil || !strings.Contains(calls[1].Err.Error(), "boom: mid") {
		t.Errorf("call 1 err = %v, want boom", calls[1].Err)
	}
	if calls[2].Err != nil || r2.S != "b" || r2.N != 11 {
		t.Errorf("call 2: err=%v reply=%+v", calls[2].Err, r2)
	}
	if calls[3].Err == nil || !strings.Contains(calls[3].Err.Error(), "no such service or method") {
		t.Errorf("call 3 err = %v, want no-such-method", calls[3].Err)
	}
	if calls[4].Err != nil {
		t.Errorf("call 4 err = %v", calls[4].Err)
	}
	if err := FirstError(calls); err == nil {
		t.Error("FirstError = nil, want the Fail call's error")
	}
}

func TestBatchLocal(t *testing.T) {
	c := NewLocalClient(newEchoMux(), 0)
	defer c.Close()
	testBatch(t, c)
}

func TestBatchTCP(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", newEchoMux())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	testBatch(t, c)
}

func TestBatchEmpty(t *testing.T) {
	c := NewLocalClient(newEchoMux(), 0)
	defer c.Close()
	if err := CallBatch(c, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if n, ok := RoundTrips(c); !ok || n != 0 {
		t.Errorf("empty batch cost %d round trips", n)
	}
}

// TestBatchOneRoundTrip is the point of the frame: N calls, one frame, one
// latency charge on each side.
func TestBatchOneRoundTrip(t *testing.T) {
	const oneWay = 20 * time.Millisecond
	srv, err := Listen("127.0.0.1:0", newEchoMux(), WithServerLatency(oneWay))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), WithCallLatency(oneWay))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 16
	calls := make([]*Call, n)
	replies := make([]echoReply, n)
	for i := range calls {
		calls[i] = NewCall("echo", "Echo", echoArgs{N: i}, &replies[i])
	}
	start := time.Now()
	if err := CallBatch(c, calls); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	for i, call := range calls {
		if call.Err != nil || replies[i].N != i+1 {
			t.Fatalf("call %d: err=%v reply=%+v", i, call.Err, replies[i])
		}
	}
	if rt, _ := RoundTrips(c); rt != 1 {
		t.Errorf("batch of %d used %d round trips, want 1", n, rt)
	}
	// Sequential calls would pay n*(client+server) latency; the batch pays
	// it once. Allow generous scheduling slack.
	if elapsed > 8*oneWay {
		t.Errorf("batch took %v, want ~%v (one latency charge)", elapsed, 2*oneWay)
	}
}

func TestRoundTripsCountsSingleCalls(t *testing.T) {
	c := NewLocalClient(newEchoMux(), 0)
	defer c.Close()
	for i := 0; i < 3; i++ {
		if err := c.Call("echo", "Echo", echoArgs{N: i}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := RoundTrips(c); n != 3 {
		t.Errorf("RoundTrips = %d, want 3", n)
	}
}

// fallbackClient hides the built-in batch support, forcing the package
// helper down its sequential path.
type fallbackClient struct{ c Client }

func (f fallbackClient) Call(service, method string, args, reply any) error {
	return f.c.Call(service, method, args, reply)
}
func (f fallbackClient) Close() error { return f.c.Close() }

func TestCallBatchFallback(t *testing.T) {
	c := fallbackClient{NewLocalClient(newEchoMux(), 0)}
	defer c.Close()
	testBatch(t, c)
}

func TestBatchAfterClose(t *testing.T) {
	c := NewLocalClient(newEchoMux(), 0)
	c.Close()
	calls := []*Call{NewCall("echo", "Echo", echoArgs{}, nil)}
	if err := CallBatch(c, calls); err == nil {
		t.Fatal("want frame error after Close")
	}
	if calls[0].Err == nil {
		t.Error("per-call error not stamped on frame failure")
	}
}
