package rpc

import (
	"testing"
)

// ---- Allocation-regression guard for the wire hot path ----
//
// Baselines measured on BenchmarkRPCHotPath before the splice pools and the
// server worker pool (commit introducing this file):
//
//	encode          20 allocs/op   →  2 after
//	encodeCalls64 1217 allocs/op   → 65 after
//	call (loopback) 376 allocs/op  → 31 after
//
// The acceptance bar of the perf issue is ≥25% fewer allocations per call;
// the thresholds below sit far under 75% of each baseline while leaving
// headroom over the measured post-change numbers (a GC during the run can
// evict pool entries and charge a re-warm-up), so the guard trips on a real
// regression, not on noise. CI runs this test by name as the allocation
// gate.

func TestRPCEncodeAllocAcceptance(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	args := hotCallArgs(0)

	// Warm the type's splice pools so steady state is what gets measured.
	for i := 0; i < 8; i++ {
		if _, err := encode(args); err != nil {
			t.Fatal(err)
		}
	}
	perEncode := testing.AllocsPerRun(400, func() {
		if _, err := encode(args); err != nil {
			t.Fatal(err)
		}
	})
	// Baseline 20; ≥25% reduction demands ≤15. Measured: 2.
	if perEncode > 6 {
		t.Errorf("encode = %.1f allocs/op, want ≤6 (baseline 20, measured 2)", perEncode)
	}

	calls := make([]*Call, 64)
	for i := range calls {
		calls[i] = NewCall("dc", "touch", hotCallArgs(i), nil)
	}
	perBatch := testing.AllocsPerRun(100, func() {
		if _, err := encodeCalls(calls); err != nil {
			t.Fatal(err)
		}
	})
	// Baseline 1217; ≥25% reduction demands ≤913. Measured: 65.
	if perBatch > 200 {
		t.Errorf("encodeCalls(64) = %.1f allocs/op, want ≤200 (baseline 1217, measured 65)", perBatch)
	}
}

// TestRPCCallAllocAcceptance guards the full loopback round trip — client
// encode, frame write, server dispatch on the worker pool, handler
// decode/encode, reply decode. AllocsPerRun counts process-wide mallocs, so
// the server side is included.
func TestRPCCallAllocAcceptance(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	srv, err := Listen("127.0.0.1:0", hotMux())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	args := hotCallArgs(0)
	for i := 0; i < 16; i++ {
		var r hotReply
		if err := c.Call("dc", "touch", args, &r); err != nil {
			t.Fatal(err)
		}
	}
	perCall := testing.AllocsPerRun(300, func() {
		var r hotReply
		if err := c.Call("dc", "touch", args, &r); err != nil {
			t.Fatal(err)
		}
	})
	// Baseline 376; ≥25% reduction demands ≤282. Measured: 31.
	if perCall > 120 {
		t.Errorf("round trip = %.1f allocs/op, want ≤120 (baseline 376, measured 31)", perCall)
	}
}
