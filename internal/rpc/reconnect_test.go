package rpc

import (
	"errors"
	"net"
	"strings"
	"testing"
)

// echoMux returns a mux with an "echo.Echo" method returning its argument.
func echoMux() *Mux {
	m := NewMux()
	Register(m, "echo", "Echo", func(s string) (string, error) {
		return s, nil
	})
	Register(m, "echo", "Fail", func(s string) (string, error) {
		return "", errors.New("handler says no")
	})
	return m
}

func TestTransportErrorIsTagged(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", echoMux())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var out string
	if err := c.Call("echo", "Echo", "hi", &out); err != nil || out != "hi" {
		t.Fatalf("Call = %q, %v", out, err)
	}

	// An application error must NOT be a transport error.
	if err := c.Call("echo", "Fail", "x", &out); err == nil || errors.Is(err, ErrTransport) {
		t.Fatalf("handler error tagged as transport: %v", err)
	}

	// Kill the server: in-flight and subsequent calls fail with ErrTransport.
	srv.Close()
	if err := c.Call("echo", "Echo", "hi", &out); !errors.Is(err, ErrTransport) {
		t.Fatalf("call after server death = %v, want ErrTransport", err)
	}
}

func TestDialAutoReconnectsAfterServerBounce(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", echoMux())
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	c, err := DialAuto(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var out string
	if err := c.Call("echo", "Echo", "before", &out); err != nil || out != "before" {
		t.Fatalf("Call before bounce = %q, %v", out, err)
	}

	// Bounce the server on the same address (a service-host restart).
	srv.Close()
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	srv2 := NewServer(lis, echoMux())
	defer srv2.Close()

	if err := c.Call("echo", "Echo", "after", &out); err != nil || out != "after" {
		t.Fatalf("Call after bounce = %q, %v", out, err)
	}
	if n, ok := RoundTrips(c); !ok || n < 2 {
		t.Fatalf("RoundTrips across reconnection = %d, %v", n, ok)
	}
}

func TestDialAutoBatchReconnects(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", echoMux())
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	c, err := DialAuto(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var a, b string
	warm := []*Call{NewCall("echo", "Echo", "w", &a)}
	if err := CallBatch(c, warm); err != nil {
		t.Fatal(err)
	}

	srv.Close()
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(lis, echoMux())
	defer srv2.Close()

	calls := []*Call{
		NewCall("echo", "Echo", "one", &a),
		NewCall("echo", "Echo", "two", &b),
	}
	if err := CallBatch(c, calls); err != nil {
		t.Fatalf("batch after bounce: %v", err)
	}
	if a != "one" || b != "two" || FirstError(calls) != nil {
		t.Fatalf("batch replies = %q, %q, err %v", a, b, FirstError(calls))
	}
}

func TestDialAutoDoesNotRetryApplicationErrors(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", echoMux())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialAuto(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var out string
	err = c.Call("echo", "Fail", "x", &out)
	if err == nil || !strings.Contains(err.Error(), "handler says no") {
		t.Fatalf("err = %v", err)
	}
	// Exactly one frame: the application error was not retried.
	if n, _ := RoundTrips(c); n != 1 {
		t.Fatalf("RoundTrips = %d, want 1 (no retry of handler errors)", n)
	}
}

func TestDialAutoClosed(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", echoMux())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialAuto(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	var out string
	if err := c.Call("echo", "Echo", "hi", &out); err == nil {
		t.Fatal("call after Close succeeded")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double Close = %v", err)
	}
}
