package rpc

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Call is one logical invocation inside a batch: the (service, method) pair,
// its argument, a reply destination (pointer, or nil to discard) and — after
// the batch completes — its individual outcome in Err. Batching never
// collapses per-call errors: one failing call leaves the others intact.
type Call struct {
	Service string
	Method  string
	Args    any
	Reply   any
	Err     error
}

// NewCall builds a batchable call.
func NewCall(service, method string, args, reply any) *Call {
	return &Call{Service: service, Method: method, Args: args, Reply: reply}
}

// BatchCaller is implemented by clients whose transport can carry several
// logical calls in one write/read cycle (one round trip, one latency charge).
type BatchCaller interface {
	// CallBatch runs every call, filling each Call's Reply and Err. The
	// returned error reports transport-level failure of the whole frame; in
	// that case every Call.Err is also set.
	CallBatch(calls []*Call) error
}

// RoundTripCounter is implemented by clients that count their request
// frames: a plain Call costs one round trip, a CallBatch of N calls also
// costs one. Benchmarks use it to show the batch path's round-trip collapse.
type RoundTripCounter interface {
	RoundTrips() uint64
}

// RoundTrips reports the number of request frames c has sent, when c counts
// them (both built-in clients do).
func RoundTrips(c Client) (uint64, bool) {
	rc, ok := c.(RoundTripCounter)
	if !ok {
		return 0, false
	}
	return rc.RoundTrips(), true
}

// CallBatch runs calls against c in one round trip when the transport
// supports it, falling back to sequential Calls otherwise. Per-call errors
// land in each Call.Err; the returned error is the transport-level failure
// of the frame, if any.
func CallBatch(c Client, calls []*Call) error {
	if len(calls) == 0 {
		return nil
	}
	if bc, ok := c.(BatchCaller); ok {
		return bc.CallBatch(calls)
	}
	for _, call := range calls {
		call.Err = c.Call(call.Service, call.Method, call.Args, call.Reply)
	}
	return nil
}

// FirstError returns the first non-nil Call.Err of a completed batch.
func FirstError(calls []*Call) error {
	for _, call := range calls {
		if call.Err != nil {
			return call.Err
		}
	}
	return nil
}

// encodeCalls gob-encodes each call's argument into a wire batch item.
func encodeCalls(calls []*Call) ([]batchItem, error) {
	items := make([]batchItem, len(calls))
	for i, call := range calls {
		raw, err := encode(call.Args)
		if err != nil {
			return nil, fmt.Errorf("rpc: encoding args of %s.%s: %w", call.Service, call.Method, err)
		}
		items[i] = batchItem{Service: call.Service, Method: call.Method, Args: raw}
	}
	return items, nil
}

// applyReplies decodes a wire batch reply into the calls' Reply/Err fields.
func applyReplies(calls []*Call, replies []batchReply) error {
	if len(replies) != len(calls) {
		return fmt.Errorf("rpc: batch answered %d of %d calls", len(replies), len(calls))
	}
	for i, call := range calls {
		r := replies[i]
		if r.Err != "" {
			call.Err = errors.New(r.Err)
			continue
		}
		if call.Reply == nil {
			call.Err = nil
			continue
		}
		call.Err = decode(r.Reply, call.Reply)
	}
	return nil
}

// failCalls stamps every call with the frame-level error.
func failCalls(calls []*Call, err error) error {
	for _, call := range calls {
		call.Err = err
	}
	return err
}

// dispatchBatch runs every item of a batch frame against the Mux, in order,
// so dependent calls batched together (delete then unschedule) keep their
// sequential semantics.
func (m *Mux) dispatchBatch(items []batchItem) []batchReply {
	replies := make([]batchReply, len(items))
	for i, it := range items {
		reply, err := m.dispatch(it.Service, it.Method, it.Args)
		if err != nil {
			replies[i] = batchReply{Err: err.Error()}
			continue
		}
		replies[i] = batchReply{Reply: reply}
	}
	return replies
}

// frameCounter counts request frames (round trips) issued by a client.
type frameCounter struct{ n atomic.Uint64 }

func (f *frameCounter) inc() { f.n.Add(1) }

// RoundTrips returns the frames sent so far.
func (f *frameCounter) RoundTrips() uint64 { return f.n.Load() }
