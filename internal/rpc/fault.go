package rpc

import (
	"sync"
	"time"
)

// Deterministic fault injection for tests.
//
// reconnect_test.go can only produce one failure shape: kill the whole
// server, so every in-flight call dies at once and the next call redials a
// healthy peer. The faults real links produce are narrower — ONE request
// frame lost while the server stays up, a frame delivered twice, a frame
// delivered late — and they hit precise points in the client's
// send/receive machinery that a server bounce cannot reach (a stray
// response for a seq already failed over, a retry racing a delayed
// original). A FaultPlan scripts exactly which request frames of a client
// misbehave, so those paths become deterministic unit tests.

// FaultAction says what happens to one request frame.
type FaultAction int

const (
	// FaultNone delivers the frame normally.
	FaultNone FaultAction = iota
	// FaultDrop loses the frame and breaks the connection, as a link
	// failing while (or just before) the request is on the wire: the
	// request never reaches the server, every call pending on the
	// connection fails with ErrTransport, and a reconnecting client is
	// expected to redial and replay.
	FaultDrop
	// FaultDup writes the frame twice. The server executes the request
	// twice and answers twice with the same seq; the client must apply the
	// first response and discard the stray — the wire-level reason service
	// mutations are kept idempotent.
	FaultDup
	// FaultDelay writes the frame after sleeping Fault.Delay, letting
	// later frames overtake it on a pipelined connection.
	FaultDelay
)

// Fault is the scripted treatment of one frame.
type Fault struct {
	Action FaultAction
	// Delay applies to FaultDelay.
	Delay time.Duration
}

// FaultPlan scripts faults by request-frame index (1-based, counted across
// every connection of the client it arms — a redial does not reset the
// count, so "drop frames 1 and 2" exercises two reconnect attempts). The
// zero frame count and an empty script mean no faults; frames without an
// entry pass untouched. A plan may be shared by tests to observe how many
// frames the client attempted.
type FaultPlan struct {
	mu     sync.Mutex
	n      uint64
	faults map[uint64]Fault
}

// NewFaultPlan builds an empty plan; script it with Set.
func NewFaultPlan() *FaultPlan {
	return &FaultPlan{faults: make(map[uint64]Fault)}
}

// Set scripts the fault for the frame-th request frame (1-based).
func (p *FaultPlan) Set(frame uint64, f Fault) *FaultPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.faults[frame] = f
	return p
}

// DropFrames scripts FaultDrop for each listed frame index.
func (p *FaultPlan) DropFrames(frames ...uint64) *FaultPlan {
	for _, f := range frames {
		p.Set(f, Fault{Action: FaultDrop})
	}
	return p
}

// Frames reports how many request frames the armed client has attempted.
func (p *FaultPlan) Frames() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// next counts one frame and returns its scripted fault.
func (p *FaultPlan) next() Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.n++
	return p.faults[p.n]
}

// WithFaultPlan arms a dialled client with a fault script. The plan object
// carries the frame counter, so passing the same plan to DialAuto keeps
// counting across the automatic redials — exactly what scripting a
// multi-attempt scenario needs.
func WithFaultPlan(p *FaultPlan) DialOption {
	return func(c *tcpClient) { c.faults = p }
}
