package rpc

import (
	"errors"
	"sync"
)

// Coalescer wraps a Client and merges calls issued concurrently by many
// goroutines into shared batch frames: while one frame is on the wire,
// newly arriving calls queue up and leave together in the next frame. Under
// a concurrent control-plane load (a transfer engine reporting N parallel
// transfers) this turns N round trips into a handful, with no change at the
// call sites — each caller still blocks until its own reply arrives.
//
// Calls keep their per-call errors; a frame-level transport failure is
// returned to every caller whose call rode that frame. Latency for an
// isolated call is one goroutine handoff worse than a direct Call, so keep
// latency-critical sequential paths on the bare client.
type Coalescer struct {
	c Client

	mu       sync.Mutex
	queue    []*coalesced
	spare    []*coalesced // recycled queue backing array
	flushing bool
	closed   bool
}

// coalesced is one enqueued group: the calls of one logical Call or
// CallBatch, released together. err carries the frame-level transport
// error of the frame the group rode, if any. done is a reusable one-slot
// signal (sent, not closed), so groups recycle through groupPool and the
// enqueue hot path stops allocating a group and a channel per waiter.
type coalesced struct {
	calls []*Call
	err   error
	done  chan struct{}
}

var groupPool = sync.Pool{
	New: func() any { return &coalesced{done: make(chan struct{}, 1)} },
}

// NewCoalescer wraps c. The wrapped client should support BatchCaller for
// the coalescing to pay off (both built-in clients do); otherwise the
// merged frames fall back to sequential calls and nothing is gained or
// lost.
func NewCoalescer(c Client) *Coalescer {
	return &Coalescer{c: c}
}

// enqueue ships a group of calls. Uncontended callers take the inline fast
// path — their frame is sent synchronously, with no goroutine handoff, so
// an isolated call costs exactly what it would on the bare client. Callers
// arriving while a frame is on the wire queue up and ride the next frame
// together.
func (co *Coalescer) enqueue(calls []*Call) error {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		err := errors.New("rpc: client closed")
		for _, call := range calls {
			call.Err = err
		}
		return err
	}
	if !co.flushing {
		// Fast path: nothing in flight, dispatch inline.
		co.flushing = true
		co.mu.Unlock()
		err := CallBatch(co.c, calls)
		co.mu.Lock()
		if len(co.queue) > 0 {
			// Calls piled up behind us: hand the drain to a flusher so we
			// return without doing their work.
			go co.flushLoop()
		} else {
			co.flushing = false
		}
		co.mu.Unlock()
		return err
	}
	g := groupPool.Get().(*coalesced)
	g.calls = calls
	g.err = nil
	co.queue = append(co.queue, g)
	co.mu.Unlock()
	<-g.done
	err := g.err
	g.calls = nil
	groupPool.Put(g)
	return err
}

// flushLoop drains the queue, one batch frame per iteration, exiting when a
// drain finds nothing queued. The groups slice and the merged calls slice
// are reused across iterations, so a long convoy costs two allocations
// total instead of two per frame.
func (co *Coalescer) flushLoop() {
	var calls []*Call
	for {
		co.mu.Lock()
		groups := co.queue
		co.queue = co.spare[:0]
		co.spare = nil
		if len(groups) == 0 {
			co.flushing = false
			co.spare = groups[:0]
			co.mu.Unlock()
			return
		}
		co.mu.Unlock()

		calls = calls[:0]
		for _, g := range groups {
			calls = append(calls, g.calls...)
		}
		// Per-call outcomes are stamped onto the calls; the frame-level
		// error is additionally handed to every group that rode the frame.
		//vet:ignore errlost per-call Err fields are read by the enqueuers, who own the Call structs; this merged slice is only the frame view
		//vet:ignore deadlineprop the loop exits when the queue drains (every iteration consumes pending groups); per-call deadlines belong to the wrapped client (arm WithCallTimeout there)
		err := CallBatch(co.c, calls)
		for i, g := range groups {
			groups[i] = nil
			g.err = err
			g.done <- struct{}{}
		}
		co.mu.Lock()
		if co.spare == nil {
			co.spare = groups[:0]
		}
		co.mu.Unlock()
	}
}

// Call enqueues one call and waits for the shared frame carrying it.
func (co *Coalescer) Call(service, method string, args, reply any) error {
	call := NewCall(service, method, args, reply)
	if err := co.enqueue([]*Call{call}); err != nil {
		return err
	}
	return call.Err
}

// CallBatch enqueues the calls as one group; they ride a single frame,
// possibly shared with other callers' queued calls.
func (co *Coalescer) CallBatch(calls []*Call) error {
	if len(calls) == 0 {
		return nil
	}
	return co.enqueue(calls)
}

// RoundTrips reports the wrapped client's frame count.
func (co *Coalescer) RoundTrips() uint64 {
	n, _ := RoundTrips(co.c)
	return n
}

// Close rejects further calls and closes the wrapped client. Queued calls
// fail through the underlying transport.
func (co *Coalescer) Close() error {
	co.mu.Lock()
	co.closed = true
	co.mu.Unlock()
	return co.c.Close()
}
