// Package rpc is BitDew's communication substrate, standing in for the Java
// RMI used by the original prototype (paper §3.5). It provides a small
// request/response protocol with gob encoding over three interchangeable
// transports:
//
//   - local: direct in-process dispatch (the paper's "local" configuration,
//     where a simple function call replaces client/server communication);
//   - tcp on loopback: the paper's "RMI local" configuration;
//   - tcp with injected round-trip latency: the paper's "RMI remote"
//     configuration when both endpoints live in one test process.
//
// Services are registered on a Mux under (service, method) names; the D*
// services of the runtime environment (Data Catalog, Data Repository, Data
// Transfer, Data Scheduler) are all served through one Mux, mirroring the
// paper's service container.
package rpc

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"time"
)

// ErrNoSuchMethod is returned when a call names an unregistered service or
// method.
var ErrNoSuchMethod = errors.New("rpc: no such service or method")

// Handler processes one call: gob-encoded arguments in, gob-encoded reply
// out. Use Register to install strongly-typed handlers.
type Handler func(args []byte) ([]byte, error)

// Mux routes calls to handlers by service and method name. The zero value is
// not usable; call NewMux.
type Mux struct {
	mu       sync.RWMutex
	handlers map[string]map[string]Handler
}

// NewMux returns an empty service multiplexer.
func NewMux() *Mux {
	return &Mux{handlers: make(map[string]map[string]Handler)}
}

// Handle installs a raw handler for (service, method), replacing any
// previous one.
func (m *Mux) Handle(service, method string, h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sm := m.handlers[service]
	if sm == nil {
		sm = make(map[string]Handler)
		m.handlers[service] = sm
	}
	sm[method] = h
}

// Services returns the sorted list of registered service names.
func (m *Mux) Services() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.handlers))
	for s := range m.handlers {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// dispatch runs the handler for (service, method) on raw argument bytes.
func (m *Mux) dispatch(service, method string, args []byte) ([]byte, error) {
	m.mu.RLock()
	sm := m.handlers[service]
	var h Handler
	if sm != nil {
		h = sm[method]
	}
	m.mu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchMethod, service, method)
	}
	return h(args)
}

// Register installs a typed handler: the argument is decoded into A, the
// handler runs, and its reply R is encoded back.
func Register[A, R any](m *Mux, service, method string, fn func(A) (R, error)) {
	m.Handle(service, method, func(raw []byte) ([]byte, error) {
		var args A
		if err := decode(raw, &args); err != nil {
			return nil, fmt.Errorf("rpc: decoding args of %s.%s: %w", service, method, err)
		}
		reply, err := fn(args)
		if err != nil {
			return nil, err
		}
		return encode(reply)
	})
}

// Client issues calls against a Mux, either in-process or across a network
// transport. Both built-in clients also implement BatchCaller (N logical
// calls in one round trip) and RoundTripCounter; use the package-level
// CallBatch helper to stay portable across client implementations.
type Client interface {
	// Call invokes service.method with args, decoding the reply into reply
	// (which must be a pointer, or nil to discard).
	Call(service, method string, args, reply any) error
	// Close releases the transport. Calls after Close fail.
	Close() error
}

// localClient dispatches directly into a Mux, optionally sleeping to model
// network latency.
type localClient struct {
	mux     *Mux
	latency time.Duration
	frames  frameCounter
	closed  sync.Once
	done    chan struct{}
}

// NewLocalClient returns a Client that invokes handlers by direct function
// call. A non-zero latency is slept once per call (round trip), letting
// tests model a remote link without sockets.
func NewLocalClient(m *Mux, latency time.Duration) Client {
	return &localClient{mux: m, latency: latency, done: make(chan struct{})}
}

func (c *localClient) Call(service, method string, args, reply any) error {
	select {
	case <-c.done:
		return errors.New("rpc: client closed")
	default:
	}
	if c.latency > 0 {
		time.Sleep(c.latency)
	}
	c.frames.inc()
	raw, err := encode(args)
	if err != nil {
		return fmt.Errorf("rpc: encoding args of %s.%s: %w", service, method, err)
	}
	out, err := c.mux.dispatch(service, method, raw)
	if err != nil {
		return err
	}
	if reply == nil {
		return nil
	}
	return decode(out, reply)
}

// CallBatch dispatches every call in one simulated round trip: the modelled
// latency is charged once for the whole batch, matching the wire transport.
func (c *localClient) CallBatch(calls []*Call) error {
	if len(calls) == 0 {
		return nil
	}
	select {
	case <-c.done:
		return failCalls(calls, errors.New("rpc: client closed"))
	default:
	}
	if c.latency > 0 {
		time.Sleep(c.latency)
	}
	c.frames.inc()
	items, err := encodeCalls(calls)
	if err != nil {
		return failCalls(calls, err)
	}
	return applyReplies(calls, c.mux.dispatchBatch(items))
}

// RoundTrips counts the (simulated) request frames issued by this client.
func (c *localClient) RoundTrips() uint64 { return c.frames.RoundTrips() }

func (c *localClient) Close() error {
	c.closed.Do(func() { close(c.done) })
	return nil
}

// bufPool recycles scratch buffers for the fresh encode path.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encode gob-encodes v into a standalone blob (type definitions included).
// Splice-safe types go through the warm pools of splice.go — byte-identical
// output at a fraction of the allocations; everything else takes a fresh
// encoder over a pooled buffer.
func encode(v any) ([]byte, error) {
	if v != nil {
		if out, handled, err := splicerFor(reflect.TypeOf(v)).spliceEncode(v); handled {
			return out, err
		}
	}
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		bufPool.Put(buf)
		return nil, err
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	bufPool.Put(buf)
	return out, nil
}

// decode reads a standalone gob blob into v (a pointer). Blobs opening with
// the receiver type's own definition prefix ride the warm decoder pool; any
// other layout falls back to a fresh decoder.
func decode(raw []byte, v any) error {
	if v != nil {
		if handled, err := splicerFor(reflect.TypeOf(v)).spliceDecode(raw, v); handled {
			return err
		}
	}
	return gob.NewDecoder(bytes.NewReader(raw)).Decode(v)
}
