package rpc

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"sync"
	"sync/atomic"
)

// ---- Type-keyed splice pools for the wire hot path ----
//
// Every rpc payload is a standalone gob blob: the far side decodes it with a
// fresh decoder, so each blob must open with the type definitions of its
// value. A fresh gob.Encoder re-derives and re-emits those definitions every
// time — measured at ~16 of the ~20 allocations of one encode, and the same
// shape again on decode. Under the sustained-load harness every operation
// pays that tax at least twice (args out, reply back), so it dominates the
// wire hot path.
//
// The splice pool removes the tax without changing the wire format. For each
// concrete type it caches the definition bytes a fresh encoder emits before
// the first value (the prefix) and keeps a pool of warm encoders that have
// already emitted them; a warm encoder then produces just the value bytes,
// and the cached prefix is spliced back in front. gob type ids are assigned
// deterministically from the type's structure, so the spliced blob is
// byte-identical to a fresh encoder's output — any decoder anywhere reads it
// unchanged. Decoding mirrors the trick: when a blob starts with the
// receiver type's own prefix, the prefix is stripped and the value bytes go
// to a pooled decoder that saw the definitions once at warm-up.
//
// Splicing is only sound for types whose encoder state cannot grow after
// warm-up. A value with a reachable interface field may introduce a new
// dynamic type mid-stream; the warm encoder would register it and omit its
// definitions from the next blob, which a standalone decoder has never
// seen. Types with reachable interfaces (or channels/funcs, which gob
// rejects anyway) are therefore marked unsafe at first use and always take
// the fresh path. Every other failure mode — prefix mismatch on decode, an
// encode error on a warm encoder — falls back to a fresh encoder/decoder,
// whose output and behaviour are always correct.

// splicer is the per-type state: the safety verdict, the definition prefix,
// and pools of warm encoder/decoder streams.
type splicer struct {
	// safe is the interface-free verdict, immutable after construction.
	safe bool
	// state is published exactly once by derivePrefix (under mu) and never
	// mutated afterwards, so the hot paths read it lock-free.
	state atomic.Pointer[spliceState]
	mu    sync.Mutex

	encs sync.Pool // *spliceEnc
	decs sync.Pool // *spliceDec
}

// spliceState is the immutable outcome of prefix derivation.
type spliceState struct {
	ok     bool // splicing enabled for the type
	prefix []byte
}

// spliceEnc is one warm encoder stream: after warm-up its Encode output is
// value bytes only.
type spliceEnc struct {
	buf  bytes.Buffer
	enc  *gob.Encoder
	warm bool
}

// spliceDec is one warm decoder stream: after warm-up it accepts value bytes
// with the prefix stripped.
type spliceDec struct {
	rd   bytes.Reader
	dec  *gob.Decoder
	warm bool
}

// splicers maps reflect.Type to *splicer. Entries are never removed: the
// set of payload types is the set of registered rpc signatures, a small
// closed universe.
var splicers sync.Map

func splicerFor(t reflect.Type) *splicer {
	if s, ok := splicers.Load(t); ok {
		return s.(*splicer)
	}
	s := &splicer{safe: spliceSafe(t, nil)}
	actual, _ := splicers.LoadOrStore(t, s)
	return actual.(*splicer)
}

// spliceSafe reports whether values of type t can never enlarge an
// encoder's type-definition state after warm-up: no reachable interface
// (dynamic types), channel or func (gob rejects those; the fresh path owns
// the error).
func spliceSafe(t reflect.Type, seen map[reflect.Type]bool) bool {
	if seen[t] {
		return true
	}
	switch t.Kind() {
	case reflect.Interface, reflect.Chan, reflect.Func, reflect.UnsafePointer:
		return false
	case reflect.Pointer, reflect.Slice, reflect.Array:
		if seen == nil {
			seen = make(map[reflect.Type]bool)
		}
		seen[t] = true
		return spliceSafe(t.Elem(), seen)
	case reflect.Map:
		if seen == nil {
			seen = make(map[reflect.Type]bool)
		}
		seen[t] = true
		return spliceSafe(t.Key(), seen) && spliceSafe(t.Elem(), seen)
	case reflect.Struct:
		if seen == nil {
			seen = make(map[reflect.Type]bool)
		}
		seen[t] = true
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue // gob ignores unexported fields
			}
			if !spliceSafe(f.Type, seen) {
				return false
			}
		}
	}
	return true
}

// derivePrefix computes the type-definition prefix from a live value: a
// fresh encoder's first blob is prefix+value, its second is value alone, and
// both value encodings are byte-identical, so the prefix is the difference.
// It publishes the splicer's state — enabled with the prefix, or disabled on
// any anomaly — and returns the complete first blob (a valid result for the
// caller). Must run with s.mu held, exactly once per splicer.
func (s *splicer) derivePrefix(v any) ([]byte, error) {
	e := &spliceEnc{}
	e.enc = gob.NewEncoder(&e.buf)
	if err := e.enc.Encode(v); err != nil {
		s.state.Store(&spliceState{})
		return nil, err
	}
	full := append([]byte(nil), e.buf.Bytes()...)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		// The first blob is complete and valid; only the splice is off.
		s.state.Store(&spliceState{})
		return full, nil
	}
	val := e.buf.Len()
	if val > len(full) {
		// A type that encodes differently the second time cannot be spliced.
		s.state.Store(&spliceState{})
		return full, nil
	}
	s.state.Store(&spliceState{
		ok:     true,
		prefix: append([]byte(nil), full[:len(full)-val]...),
	})
	e.buf.Reset()
	e.warm = true
	s.encs.Put(e)
	return full, nil
}

// stateFor returns the published state, deriving it from v on first use.
// The returned blob is non-nil only when this call performed the derivation
// (its output doubles as the caller's result).
func (s *splicer) stateFor(v any) (st *spliceState, blob []byte, err error) {
	if st = s.state.Load(); st != nil {
		return st, nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st = s.state.Load(); st != nil {
		return st, nil, nil
	}
	blob, err = s.derivePrefix(v)
	return s.state.Load(), blob, err
}

// spliceEncode encodes v through the warm pool. handled is false when the
// caller must use the fresh path instead (unsafe type, or a warm encoder
// error whose result cannot be trusted).
func (s *splicer) spliceEncode(v any) (out []byte, handled bool, err error) {
	if !s.safe {
		return nil, false, nil
	}
	st, blob, err := s.stateFor(v)
	if blob != nil || err != nil {
		// This call performed the derivation; its blob (or error) is
		// authoritative.
		return blob, true, err
	}
	if !st.ok {
		return nil, false, nil
	}
	e, _ := s.encs.Get().(*spliceEnc)
	if e == nil {
		e = &spliceEnc{}
		e.enc = gob.NewEncoder(&e.buf)
	}
	if !e.warm {
		// First encode on this stream emits the definitions; discard them
		// and keep the stream.
		if err := e.enc.Encode(v); err != nil {
			return nil, false, nil
		}
		e.warm = true
	}
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		// The stream may hold partial state now; drop it and let the fresh
		// path produce the result (or the authoritative error).
		return nil, false, nil
	}
	val := e.buf.Bytes()
	out = make([]byte, len(st.prefix)+len(val))
	copy(out, st.prefix)
	copy(out[len(st.prefix):], val)
	e.buf.Reset()
	s.encs.Put(e)
	return out, true, nil
}

// spliceDecode decodes raw into v through the warm pool when raw opens with
// this type's own prefix. handled is false when the caller must use a fresh
// decoder (unsafe type, foreign prefix, or a warm-stream error).
func (s *splicer) spliceDecode(raw []byte, v any) (handled bool, err error) {
	if !s.safe {
		return false, nil
	}
	// Derive the prefix from the receiver's own type if this is first use:
	// definitions depend only on the type, so encoding the value v points at
	// yields them. A receiver type that doesn't encode stays on the fresh
	// path (derivePrefix published a disabled state).
	st, _, _ := s.stateFor(v)
	if st == nil || !st.ok {
		return false, nil
	}
	if !bytes.HasPrefix(raw, st.prefix) {
		// Foreign sender layout (different build, compatible-but-different
		// type): the fresh path handles it.
		return false, nil
	}
	d, _ := s.decs.Get().(*spliceDec)
	if d == nil {
		d = &spliceDec{}
	}
	if !d.warm {
		// Warm up on the full blob: the stream learns the definitions and
		// decodes the value in one go.
		d.rd.Reset(raw)
		d.dec = gob.NewDecoder(&d.rd)
		if err := d.dec.Decode(v); err != nil {
			return true, err
		}
		d.warm = true
		s.decs.Put(d)
		return true, nil
	}
	d.rd.Reset(raw[len(st.prefix):])
	if err := d.dec.Decode(v); err != nil {
		// Possibly mid-stream state corruption (e.g. duplicate definitions
		// from a superset sender); drop the stream and decode fresh, which
		// is always correct.
		return false, nil
	}
	s.decs.Put(d)
	return true, nil
}
