package rpc

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// DialAutoLazyN is the failover router's dial: a small same-address retry
// budget so a dead shard surfaces as ErrTransport quickly instead of
// burning the default 8-attempt backoff window. These tests pin the budget
// (exactly n attempts, clamped to at least 1), the error class (tagged
// ErrTransport so failover may replay), and the lazy half — the client
// connects fine once the peer appears, even if it was down at build time.

// countingDial replaces the client's dial with one that counts attempts
// and always fails.
func countingDial(n *atomic.Int64) func(string, ...DialOption) (Client, error) {
	return func(addr string, opts ...DialOption) (Client, error) {
		n.Add(1)
		return nil, fmt.Errorf("dial %s: scripted refusal", addr)
	}
}

func TestDialAutoLazyNAttemptBudget(t *testing.T) {
	for _, tc := range []struct {
		n    int
		want int64
	}{
		{n: 2, want: 2},
		{n: 5, want: 5},
		{n: 0, want: 1},  // clamped: at least one attempt
		{n: -3, want: 1}, // clamped
	} {
		var attempts atomic.Int64
		c := DialAutoLazyN("127.0.0.1:0", tc.n).(*autoClient)
		c.dial = countingDial(&attempts)
		var rep string
		err := c.Call("echo", "Echo", "hi", &rep)
		if !errors.Is(err, ErrTransport) {
			t.Fatalf("n=%d: err = %v, want ErrTransport", tc.n, err)
		}
		if got := attempts.Load(); got != tc.want {
			t.Fatalf("n=%d: %d dial attempts, want %d", tc.n, got, tc.want)
		}
		c.Close()
	}
}

// TestDialAutoLazyNFailsFasterThanDefault pins the point of the small
// budget: against a dead address, the N=2 client gives up after one
// backoff step while the default budget keeps retrying — the failover
// router relies on that gap to start probing successors quickly.
func TestDialAutoLazyNFailsFasterThanDefault(t *testing.T) {
	var nSmall, nDefault atomic.Int64
	small := DialAutoLazyN("127.0.0.1:0", 2).(*autoClient)
	small.dial = countingDial(&nSmall)
	dflt := DialAutoLazy("127.0.0.1:0").(*autoClient)
	dflt.dial = countingDial(&nDefault)
	var rep string
	if err := small.Call("echo", "Echo", "x", &rep); !errors.Is(err, ErrTransport) {
		t.Fatalf("small: %v", err)
	}
	if err := dflt.Call("echo", "Echo", "x", &rep); !errors.Is(err, ErrTransport) {
		t.Fatalf("default: %v", err)
	}
	small.Close()
	dflt.Close()
	if s, d := nSmall.Load(), nDefault.Load(); s >= d {
		t.Fatalf("N=2 budget attempted %d dials, default attempted %d — no fast-fail gap", s, d)
	}
}

// TestDialAutoLazyNHealsWhenPeerAppears pins the lazy half: built against
// an address with nothing listening, the client fails with ErrTransport,
// and the SAME client connects once a server binds the address.
func TestDialAutoLazyNHealsWhenPeerAppears(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()

	c := DialAutoLazyN(addr, 2, WithCallTimeout(5*time.Second))
	defer c.Close()
	var rep string
	if err := c.Call("echo", "Echo", "early", &rep); !errors.Is(err, ErrTransport) {
		t.Fatalf("call against vacant address = %v, want ErrTransport", err)
	}

	var srv *Server
	for attempt := 0; attempt < 50; attempt++ {
		srv, err = Listen(addr, echoMux())
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if err := c.Call("echo", "Echo", "healed", &rep); err != nil || rep != "healed" {
		t.Fatalf("call after peer appeared = %q, %v", rep, err)
	}
}
