package rpc

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// The splice pool's whole claim is "byte-identical to a fresh encoder".
// These tests hold it to that: spliced blobs must equal fresh gob output
// exactly, decode with plain gob, and every unsafe or foreign shape must
// fall back to the fresh path without observable difference.

type spliceNested struct {
	Tags  map[string]int
	Peers []string
}

type spliceRich struct {
	UID    string
	Size   int64
	Blob   []byte
	Nested spliceNested
	Ptr    *spliceNested
}

func freshGob(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSpliceMatchesFreshEncoder compares spliced output against a fresh
// encoder's, byte for byte, across repeated encodes (warm-path) and varied
// values.
func TestSpliceMatchesFreshEncoder(t *testing.T) {
	for i := 0; i < 50; i++ {
		vals := []any{
			hotArgs{UID: fmt.Sprintf("uid-%d", i), Name: "n", Data: []byte{byte(i)}},
			spliceRich{
				UID:    fmt.Sprintf("rich-%d", i),
				Size:   int64(i * 100),
				Blob:   bytes.Repeat([]byte{byte(i)}, i%7),
				Nested: spliceNested{Tags: map[string]int{"a": i}, Peers: []string{"p1", "p2"}},
				Ptr:    &spliceNested{Peers: []string{"q"}},
			},
			&hotArgs{UID: "by-pointer"},
			[]string{"a", "b", fmt.Sprint(i)},
		}
		for _, v := range vals {
			got, err := encode(v)
			if err != nil {
				t.Fatalf("encode(%T): %v", v, err)
			}
			if want := freshGob(t, v); !bytes.Equal(got, want) {
				t.Fatalf("iteration %d: encode(%T) diverged from fresh gob output", i, v)
			}
		}
	}
}

// TestSpliceRoundTrip runs values through the pooled encode AND the pooled
// decode repeatedly, so both warm paths are exercised past warm-up.
func TestSpliceRoundTrip(t *testing.T) {
	for i := 0; i < 50; i++ {
		in := spliceRich{
			UID:    fmt.Sprintf("rt-%d", i),
			Size:   int64(i),
			Nested: spliceNested{Tags: map[string]int{"k": i}},
		}
		raw, err := encode(in)
		if err != nil {
			t.Fatal(err)
		}
		var out spliceRich
		if err := decode(raw, &out); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("iteration %d: round trip mutated value:\n in: %+v\nout: %+v", i, in, out)
		}
	}
}

type withIface struct {
	Name string
	V    any
}

// TestSpliceUnsafeTypeFallsBack pins the safety gate: a type with a
// reachable interface field never splices (a warm encoder's state could
// grow mid-stream) but still encodes and decodes through the fresh path.
func TestSpliceUnsafeTypeFallsBack(t *testing.T) {
	if spliceSafe(reflect.TypeOf(withIface{}), nil) {
		t.Fatal("interface-bearing type judged splice-safe")
	}
	gob.Register(spliceNested{})
	for i := 0; i < 10; i++ {
		// Alternate dynamic types — exactly the stream-state growth splicing
		// cannot survive.
		var in withIface
		if i%2 == 0 {
			in = withIface{Name: "s", V: spliceNested{Peers: []string{"x"}}}
		} else {
			in = withIface{Name: "i", V: spliceNested{Tags: map[string]int{"y": i}}}
		}
		raw, err := encode(in)
		if err != nil {
			t.Fatal(err)
		}
		var out withIface
		if err := decode(raw, &out); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("iteration %d: %+v != %+v", i, in, out)
		}
	}
	if spliceSafe(reflect.TypeOf(hotArgs{}), nil) != true {
		t.Fatal("plain struct judged unsafe")
	}
}

// TestSpliceDecodeForeignLayout feeds the decoder blobs whose definition
// bytes don't match the receiver's own prefix (sender type with an extra
// field — legal gob, different wire layout). The pool must step aside and
// the fresh path must decode them.
func TestSpliceDecodeForeignLayout(t *testing.T) {
	type sender struct {
		UID   string
		Name  string
		Extra int
	}
	type receiver struct {
		UID  string
		Name string
	}
	// Warm the receiver's decode pool with its own layout first.
	self, err := encode(receiver{UID: "self", Name: "n"})
	if err != nil {
		t.Fatal(err)
	}
	var r receiver
	for i := 0; i < 3; i++ {
		if err := decode(self, &r); err != nil {
			t.Fatal(err)
		}
	}
	foreign := freshGob(t, sender{UID: "foreign", Name: "f", Extra: 7})
	for i := 0; i < 3; i++ {
		var got receiver
		if err := decode(foreign, &got); err != nil {
			t.Fatalf("foreign layout decode %d: %v", i, err)
		}
		if got.UID != "foreign" || got.Name != "f" {
			t.Fatalf("foreign decode %d: %+v", i, got)
		}
	}
	// The pool must still work for the native layout afterwards.
	if err := decode(self, &r); err != nil || r.UID != "self" {
		t.Fatalf("native decode after foreign traffic: %+v, %v", r, err)
	}
}

// TestSpliceConcurrent hammers one type's pools from many goroutines; run
// under -race this checks the Get/Put discipline.
func TestSpliceConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				in := hotArgs{UID: fmt.Sprintf("g%d-%d", g, i), Data: []byte{byte(g), byte(i)}}
				raw, err := encode(in)
				if err != nil {
					t.Error(err)
					return
				}
				var out hotArgs
				if err := decode(raw, &out); err != nil {
					t.Error(err)
					return
				}
				if out.UID != in.UID {
					t.Errorf("got %q, want %q", out.UID, in.UID)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
