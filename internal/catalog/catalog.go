// Package catalog implements BitDew's data-indexing services (paper §3.4.1):
//
//   - Service is the centralized Data Catalog (DC) run on a stable service
//     host. It persistently stores data meta-information and the Locators
//     giving remote access to permanent copies, shortening the critical
//     path to a durable copy of each datum.
//   - DDC is the Distributed Data Catalog: the (dataID, hostID) ownership
//     pairs of replicas held by volatile reservoir nodes, published into a
//     DHT so the replica index scales and survives churn without the DC
//     implementing fault detection.
package catalog

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"strings"

	"bitdew/internal/data"
	"bitdew/internal/db"
	"bitdew/internal/dht"
	"bitdew/internal/rpc"
)

// ServiceName is the rpc service name of the Data Catalog.
const ServiceName = "dc"

const (
	tableData     = "dc_data"
	tableLocators = "dc_locators"
)

// TableData and TableLocators name the catalog's db.Store tables; the
// replication layer lists them as the gated, UID-keyed tables it protects.
const (
	TableData     = tableData
	TableLocators = tableLocators
)

// ErrNotFound is returned when a datum is absent from the catalog.
var ErrNotFound = errors.New("catalog: data not found")

// Service is the Data Catalog. It is safe for concurrent use; persistence
// is delegated to the configured db.Store, matching the paper's design
// where meta-data is serialised into a SQL database back-end.
type Service struct {
	store db.Store
}

// NewService builds a Data Catalog over the given persistent store.
func NewService(store db.Store) *Service {
	return &Service{store: store}
}

func encodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeGob(raw []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(raw)).Decode(v)
}

// Register records a datum (creating its slot in the data space) or updates
// its meta-information after content is attached.
func (s *Service) Register(d data.Data) error {
	if d.UID == "" {
		return fmt.Errorf("catalog: register: datum has no uid")
	}
	raw, err := encodeGob(d)
	if err != nil {
		return fmt.Errorf("catalog: encode %s: %w", d.UID, err)
	}
	return s.store.Put(tableData, string(d.UID), raw)
}

// Get retrieves a datum by UID.
func (s *Service) Get(uid data.UID) (data.Data, error) {
	raw, ok, err := s.store.Get(tableData, string(uid))
	if err != nil {
		return data.Data{}, err
	}
	if !ok {
		return data.Data{}, fmt.Errorf("%w: %s", ErrNotFound, uid)
	}
	var d data.Data
	if err := decodeGob(raw, &d); err != nil {
		return data.Data{}, fmt.Errorf("catalog: decode %s: %w", uid, err)
	}
	return d, nil
}

// Delete removes a datum and its locators. Deleting an absent datum is not
// an error (deletion must be idempotent under retried client calls).
func (s *Service) Delete(uid data.UID) error {
	if err := s.store.Delete(tableData, string(uid)); err != nil {
		return err
	}
	return s.store.Delete(tableLocators, string(uid))
}

// SearchByName returns every datum labelled name, sorted by UID. Names are
// not unique, so several data may match (the paper's searchData).
func (s *Service) SearchByName(name string) ([]data.Data, error) {
	var out []data.Data
	var scanErr error
	err := s.store.Scan(tableData, func(_ string, raw []byte) bool {
		var d data.Data
		if err := decodeGob(raw, &d); err != nil {
			scanErr = err
			return false
		}
		if d.Name == name {
			out = append(out, d)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if scanErr != nil {
		return nil, scanErr
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UID < out[j].UID })
	return out, nil
}

// SearchByPrefix returns every datum whose name starts with prefix.
func (s *Service) SearchByPrefix(prefix string) ([]data.Data, error) {
	var out []data.Data
	var scanErr error
	err := s.store.Scan(tableData, func(_ string, raw []byte) bool {
		var d data.Data
		if err := decodeGob(raw, &d); err != nil {
			scanErr = err
			return false
		}
		if strings.HasPrefix(d.Name, prefix) {
			out = append(out, d)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if scanErr != nil {
		return nil, scanErr
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UID < out[j].UID })
	return out, nil
}

// All returns every registered datum.
func (s *Service) All() ([]data.Data, error) {
	return s.SearchByPrefix("")
}

// RegisterBatch records many data in one call — the batch-first analogue of
// Register for the hot path where a master creates thousands of slots. Every
// datum is attempted (registration is idempotent, so retrying a partially
// failed batch is safe); the per-datum errors are joined.
func (s *Service) RegisterBatch(ds []data.Data) error {
	var errs []error
	for _, d := range ds {
		if err := s.Register(d); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// AddLocatorBatch attaches many locators in one call, delegating each to
// AddLocator (same validation and idempotence), joining per-item errors.
func (s *Service) AddLocatorBatch(ls []data.Locator) error {
	var errs []error
	for _, l := range ls {
		if err := s.AddLocator(l); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// LocatorsBatch returns the locator lists of many data in one call, aligned
// with uids. Data without locators (or unknown to the catalog) yield a nil
// slice, matching Locators' behaviour for an absent entry.
func (s *Service) LocatorsBatch(uids []data.UID) ([][]data.Locator, error) {
	out := make([][]data.Locator, len(uids))
	for i, uid := range uids {
		locs, err := s.Locators(uid)
		if err != nil {
			return nil, err
		}
		out[i] = locs
	}
	return out, nil
}

// AddLocator attaches a locator (remote-access description of a permanent
// copy) to its datum.
func (s *Service) AddLocator(l data.Locator) error {
	if err := l.Validate(); err != nil {
		return err
	}
	if _, err := s.Get(l.DataUID); err != nil {
		return err
	}
	var locs []data.Locator
	raw, ok, err := s.store.Get(tableLocators, string(l.DataUID))
	if err != nil {
		return err
	}
	if ok {
		if err := decodeGob(raw, &locs); err != nil {
			return err
		}
	}
	for _, old := range locs {
		if old == l {
			return nil // idempotent
		}
	}
	locs = append(locs, l)
	enc, err := encodeGob(locs)
	if err != nil {
		return err
	}
	return s.store.Put(tableLocators, string(l.DataUID), enc)
}

// Locators returns the locators attached to uid (possibly empty).
func (s *Service) Locators(uid data.UID) ([]data.Locator, error) {
	raw, ok, err := s.store.Get(tableLocators, string(uid))
	if err != nil || !ok {
		return nil, err
	}
	var locs []data.Locator
	if err := decodeGob(raw, &locs); err != nil {
		return nil, err
	}
	return locs, nil
}

// Mount registers the Data Catalog's methods on an rpc Mux under the "dc"
// service name, making it callable from client and reservoir hosts.
func (s *Service) Mount(m *rpc.Mux) {
	rpc.Register(m, ServiceName, "Register", func(d data.Data) (struct{}, error) {
		return struct{}{}, s.Register(d)
	})
	rpc.Register(m, ServiceName, "Get", func(uid data.UID) (data.Data, error) {
		return s.Get(uid)
	})
	rpc.Register(m, ServiceName, "Delete", func(uid data.UID) (struct{}, error) {
		return struct{}{}, s.Delete(uid)
	})
	rpc.Register(m, ServiceName, "SearchByName", func(name string) ([]data.Data, error) {
		return s.SearchByName(name)
	})
	rpc.Register(m, ServiceName, "AddLocator", func(l data.Locator) (struct{}, error) {
		return struct{}{}, s.AddLocator(l)
	})
	rpc.Register(m, ServiceName, "Locators", func(uid data.UID) ([]data.Locator, error) {
		return s.Locators(uid)
	})
	rpc.Register(m, ServiceName, "All", func(struct{}) ([]data.Data, error) {
		return s.All()
	})
	rpc.Register(m, ServiceName, "RegisterBatch", func(ds []data.Data) (struct{}, error) {
		return struct{}{}, s.RegisterBatch(ds)
	})
	rpc.Register(m, ServiceName, "AddLocatorBatch", func(ls []data.Locator) (struct{}, error) {
		return struct{}{}, s.AddLocatorBatch(ls)
	})
	rpc.Register(m, ServiceName, "LocatorsBatch", func(uids []data.UID) ([][]data.Locator, error) {
		return s.LocatorsBatch(uids)
	})
}

// Client is the typed client of a remote Data Catalog.
type Client struct {
	c rpc.Client
}

// NewClient wraps an rpc client (local or TCP) as a Data Catalog client.
func NewClient(c rpc.Client) *Client { return &Client{c: c} }

// Register records a datum in the remote catalog.
func (c *Client) Register(d data.Data) error {
	return c.c.Call(ServiceName, "Register", d, nil)
}

// Get retrieves a datum by UID.
func (c *Client) Get(uid data.UID) (data.Data, error) {
	var d data.Data
	err := c.c.Call(ServiceName, "Get", uid, &d)
	return d, err
}

// Delete removes a datum.
func (c *Client) Delete(uid data.UID) error {
	return c.c.Call(ServiceName, "Delete", uid, nil)
}

// SearchByName finds data by label.
func (c *Client) SearchByName(name string) ([]data.Data, error) {
	var out []data.Data
	err := c.c.Call(ServiceName, "SearchByName", name, &out)
	return out, err
}

// AddLocator attaches a locator to a datum.
func (c *Client) AddLocator(l data.Locator) error {
	return c.c.Call(ServiceName, "AddLocator", l, nil)
}

// Locators lists the locators of a datum.
func (c *Client) Locators(uid data.UID) ([]data.Locator, error) {
	var out []data.Locator
	err := c.c.Call(ServiceName, "Locators", uid, &out)
	return out, err
}

// All lists every datum known to the catalog.
func (c *Client) All() ([]data.Data, error) {
	var out []data.Data
	err := c.c.Call(ServiceName, "All", struct{}{}, &out)
	return out, err
}

// RegisterBatch records many data in one round trip.
func (c *Client) RegisterBatch(ds []data.Data) error {
	if len(ds) == 0 {
		return nil
	}
	return c.c.Call(ServiceName, "RegisterBatch", ds, nil)
}

// AddLocatorBatch attaches many locators in one round trip.
func (c *Client) AddLocatorBatch(ls []data.Locator) error {
	if len(ls) == 0 {
		return nil
	}
	return c.c.Call(ServiceName, "AddLocatorBatch", ls, nil)
}

// LocatorsBatch lists the locators of many data in one round trip; the
// result is aligned with uids.
func (c *Client) LocatorsBatch(uids []data.UID) ([][]data.Locator, error) {
	if len(uids) == 0 {
		return nil, nil
	}
	var out [][]data.Locator
	err := c.c.Call(ServiceName, "LocatorsBatch", uids, &out)
	return out, err
}

// RegisterBatchCall builds the batchable form of RegisterBatch for a
// cross-service rpc.CallBatch frame.
func (c *Client) RegisterBatchCall(ds []data.Data) *rpc.Call {
	return rpc.NewCall(ServiceName, "RegisterBatch", ds, nil)
}

// LocatorsBatchCall builds the batchable form of LocatorsBatch, decoding
// into reply.
func (c *Client) LocatorsBatchCall(uids []data.UID, reply *[][]data.Locator) *rpc.Call {
	return rpc.NewCall(ServiceName, "LocatorsBatch", uids, reply)
}

// DeleteCall builds a batchable delete for a cross-service rpc.CallBatch
// frame (e.g. catalog delete + scheduler unschedule in one round trip).
func (c *Client) DeleteCall(uid data.UID) *rpc.Call {
	return rpc.NewCall(ServiceName, "Delete", uid, nil)
}

// DDC is the Distributed Data Catalog: replica ownership published through
// a DHT. Each completed transfer to a volatile node inserts a new
// (dataID, hostID) pair (paper §3.4.1).
type DDC struct {
	ring *dht.Ring
}

// NewDDC builds a Distributed Data Catalog over an existing DHT ring.
func NewDDC(ring *dht.Ring) *DDC { return &DDC{ring: ring} }

// Publish records that host owns a replica of uid.
func (d *DDC) Publish(uid data.UID, host string) error {
	return d.ring.Put(string(uid), host)
}

// Owners returns the hosts known to hold a replica of uid.
func (d *DDC) Owners(uid data.UID) ([]string, error) {
	return d.ring.Get(string(uid))
}

// Withdraw removes host from the owner set of uid.
func (d *DDC) Withdraw(uid data.UID, host string) error {
	return d.ring.Remove(string(uid), host)
}

// PublishKV publishes a generic key/value pair; the paper exposes the DHT
// for arbitrary application use beyond replica indexing.
func (d *DDC) PublishKV(key, value string) error { return d.ring.Put(key, value) }

// LookupKV retrieves the values published under a generic key.
func (d *DDC) LookupKV(key string) ([]string, error) { return d.ring.Get(key) }
