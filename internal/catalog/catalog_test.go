package catalog

import (
	"errors"
	"fmt"
	"testing"

	"bitdew/internal/data"
	"bitdew/internal/db"
	"bitdew/internal/dht"
	"bitdew/internal/rpc"
)

func newService() *Service {
	return NewService(db.NewRowStore())
}

func TestRegisterGetDelete(t *testing.T) {
	s := newService()
	d := *data.NewFromBytes("file.bin", []byte("content"))
	if err := s.Register(d); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(d.UID)
	if err != nil {
		t.Fatal(err)
	}
	if got.UID != d.UID || got.Name != d.Name || got.Checksum != d.Checksum || got.Size != d.Size {
		t.Errorf("Get = %+v, want %+v", got, d)
	}
	if err := s.Delete(d.UID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(d.UID); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after Delete: %v, want ErrNotFound", err)
	}
	// Idempotent delete.
	if err := s.Delete(d.UID); err != nil {
		t.Errorf("second Delete: %v", err)
	}
}

func TestRegisterRequiresUID(t *testing.T) {
	s := newService()
	if err := s.Register(data.Data{Name: "anon"}); err == nil {
		t.Error("Register without UID succeeded")
	}
}

func TestRegisterUpdatesMeta(t *testing.T) {
	s := newService()
	d := data.New("slot")
	if err := s.Register(*d); err != nil {
		t.Fatal(err)
	}
	filled := d.WithContent([]byte("now full"))
	if err := s.Register(*filled); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(d.UID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != int64(len("now full")) {
		t.Errorf("updated Size = %d", got.Size)
	}
}

func TestSearchByName(t *testing.T) {
	s := newService()
	for i := 0; i < 3; i++ {
		s.Register(*data.NewFromBytes("shared-name", []byte(fmt.Sprint(i))))
	}
	s.Register(*data.NewFromBytes("other", nil))
	got, err := s.SearchByName("shared-name")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("found %d, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].UID >= got[i].UID {
			t.Errorf("results not sorted by UID")
		}
	}
	none, _ := s.SearchByName("absent")
	if len(none) != 0 {
		t.Errorf("search for absent name returned %v", none)
	}
}

func TestSearchByPrefixAndAll(t *testing.T) {
	s := newService()
	s.Register(*data.NewFromBytes("seq-001", nil))
	s.Register(*data.NewFromBytes("seq-002", nil))
	s.Register(*data.NewFromBytes("genebase", nil))
	seqs, err := s.SearchByPrefix("seq-")
	if err != nil || len(seqs) != 2 {
		t.Errorf("SearchByPrefix = %v, %v", seqs, err)
	}
	all, err := s.All()
	if err != nil || len(all) != 3 {
		t.Errorf("All = %d items, %v", len(all), err)
	}
}

func TestLocators(t *testing.T) {
	s := newService()
	d := *data.NewFromBytes("file", []byte("x"))
	s.Register(d)
	l1 := data.Locator{DataUID: d.UID, Protocol: "ftp", Host: "a:21", Ref: "file"}
	l2 := data.Locator{DataUID: d.UID, Protocol: "http", Host: "a:80", Ref: "file"}
	if err := s.AddLocator(l1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddLocator(l1); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := s.AddLocator(l2); err != nil {
		t.Fatal(err)
	}
	locs, err := s.Locators(d.UID)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 2 {
		t.Errorf("Locators = %v, want 2", locs)
	}
	// Locator for unknown datum refused.
	if err := s.AddLocator(data.Locator{DataUID: "nope", Protocol: "ftp", Host: "h"}); err == nil {
		t.Error("AddLocator for unknown datum succeeded")
	}
	// Invalid locator refused.
	if err := s.AddLocator(data.Locator{DataUID: d.UID}); err == nil {
		t.Error("invalid locator accepted")
	}
	// Deleting the datum clears locators.
	s.Delete(d.UID)
	locs, _ = s.Locators(d.UID)
	if len(locs) != 0 {
		t.Errorf("locators survive datum deletion: %v", locs)
	}
}

func TestClientOverLocalRPC(t *testing.T) {
	s := newService()
	mux := rpc.NewMux()
	s.Mount(mux)
	client := NewClient(rpc.NewLocalClient(mux, 0))
	testClientSuite(t, client)
}

func TestClientOverTCP(t *testing.T) {
	s := newService()
	mux := rpc.NewMux()
	s.Mount(mux)
	srv, err := rpc.Listen("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rc, err := rpc.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	testClientSuite(t, NewClient(rc))
}

func testClientSuite(t *testing.T, c *Client) {
	t.Helper()
	d := *data.NewFromBytes("remote", []byte("payload"))
	if err := c.Register(d); err != nil {
		t.Fatalf("Register: %v", err)
	}
	got, err := c.Get(d.UID)
	if err != nil || got.Checksum != d.Checksum {
		t.Fatalf("Get = %+v, %v", got, err)
	}
	found, err := c.SearchByName("remote")
	if err != nil || len(found) != 1 {
		t.Fatalf("SearchByName = %v, %v", found, err)
	}
	l := data.Locator{DataUID: d.UID, Protocol: "http", Host: "h:80", Ref: "remote"}
	if err := c.AddLocator(l); err != nil {
		t.Fatalf("AddLocator: %v", err)
	}
	locs, err := c.Locators(d.UID)
	if err != nil || len(locs) != 1 || locs[0] != l {
		t.Fatalf("Locators = %v, %v", locs, err)
	}
	all, err := c.All()
	if err != nil || len(all) != 1 {
		t.Fatalf("All = %v, %v", all, err)
	}
	if err := c.Delete(d.UID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := c.Get(d.UID); err == nil {
		t.Fatal("Get after Delete succeeded")
	}
}

func buildDDC(t *testing.T, nodes int) *DDC {
	t.Helper()
	ring := dht.NewRing(dht.WithSeed(1))
	for i := 0; i < nodes; i++ {
		if _, err := ring.AddNode(fmt.Sprintf("res%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	ring.StabilizeFully()
	return NewDDC(ring)
}

func TestDDCPublishOwnersWithdraw(t *testing.T) {
	ddc := buildDDC(t, 10)
	uid := data.NewUID()
	for i := 0; i < 4; i++ {
		if err := ddc.Publish(uid, fmt.Sprintf("host-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	owners, err := ddc.Owners(uid)
	if err != nil || len(owners) != 4 {
		t.Fatalf("Owners = %v, %v", owners, err)
	}
	if err := ddc.Withdraw(uid, "host-1"); err != nil {
		t.Fatal(err)
	}
	owners, _ = ddc.Owners(uid)
	if len(owners) != 3 {
		t.Errorf("after Withdraw: %v", owners)
	}
}

func TestDDCGenericKV(t *testing.T) {
	ddc := buildDDC(t, 6)
	if err := ddc.PublishKV("checkpoint-sig", "ab34"); err != nil {
		t.Fatal(err)
	}
	vals, err := ddc.LookupKV("checkpoint-sig")
	if err != nil || len(vals) != 1 || vals[0] != "ab34" {
		t.Fatalf("LookupKV = %v, %v", vals, err)
	}
}

func TestDDCSurvivesNodeFailure(t *testing.T) {
	ring := dht.NewRing(dht.WithSeed(2))
	for i := 0; i < 12; i++ {
		ring.AddNode(fmt.Sprintf("res%02d", i))
	}
	ring.StabilizeFully()
	ddc := NewDDC(ring)
	uid := data.NewUID()
	ddc.Publish(uid, "owner-a")
	victim, err := ring.Lookup(string(uid))
	if err != nil {
		t.Fatal(err)
	}
	ring.Fail(victim)
	ring.StabilizeFully()
	owners, err := ddc.Owners(uid)
	if err != nil || len(owners) != 1 {
		t.Fatalf("Owners after failure = %v, %v (DHT replication should preserve the entry)", owners, err)
	}
}
