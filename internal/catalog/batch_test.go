package catalog

import (
	"strings"
	"testing"

	"bitdew/internal/data"
	"bitdew/internal/rpc"
)

func TestRegisterBatch(t *testing.T) {
	s := newService()
	ds := []data.Data{
		*data.NewFromBytes("a", []byte("aa")),
		*data.NewFromBytes("b", []byte("bb")),
		*data.NewFromBytes("c", []byte("cc")),
	}
	if err := s.RegisterBatch(ds); err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		got, err := s.Get(d.UID)
		if err != nil || got.Name != d.Name {
			t.Errorf("Get %s = %+v, %v", d.Name, got, err)
		}
	}
}

func TestRegisterBatchAttemptsAll(t *testing.T) {
	s := newService()
	good := *data.NewFromBytes("good", []byte("x"))
	bad := data.Data{Name: "no-uid"}
	err := s.RegisterBatch([]data.Data{bad, good})
	if err == nil || !strings.Contains(err.Error(), "no uid") {
		t.Fatalf("err = %v, want no-uid failure", err)
	}
	// The valid datum after the failing one was still registered.
	if _, err := s.Get(good.UID); err != nil {
		t.Errorf("good datum not registered: %v", err)
	}
}

func TestAddLocatorBatchAndLocatorsBatch(t *testing.T) {
	s := newService()
	ds := []data.Data{
		*data.NewFromBytes("a", []byte("aa")),
		*data.NewFromBytes("b", []byte("bb")),
	}
	if err := s.RegisterBatch(ds); err != nil {
		t.Fatal(err)
	}
	ls := []data.Locator{
		{DataUID: ds[0].UID, Protocol: "http", Host: "h:1", Ref: string(ds[0].UID)},
		{DataUID: ds[1].UID, Protocol: "ftp", Host: "h:2", Ref: string(ds[1].UID)},
	}
	if err := s.AddLocatorBatch(ls); err != nil {
		t.Fatal(err)
	}
	// Idempotent, like AddLocator.
	if err := s.AddLocatorBatch(ls); err != nil {
		t.Fatal(err)
	}
	unknown := data.NewUID()
	got, err := s.LocatorsBatch([]data.UID{ds[0].UID, unknown, ds[1].UID})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("LocatorsBatch returned %d slots, want 3 (aligned)", len(got))
	}
	if len(got[0]) != 1 || got[0][0] != ls[0] {
		t.Errorf("slot 0 = %+v", got[0])
	}
	if len(got[1]) != 0 {
		t.Errorf("unknown datum yielded locators: %+v", got[1])
	}
	if len(got[2]) != 1 || got[2][0] != ls[1] {
		t.Errorf("slot 2 = %+v", got[2])
	}
}

func TestBatchOverRPC(t *testing.T) {
	s := newService()
	mux := rpc.NewMux()
	s.Mount(mux)
	c := NewClient(rpc.NewLocalClient(mux, 0))

	ds := []data.Data{
		*data.NewFromBytes("a", []byte("aa")),
		*data.NewFromBytes("b", []byte("bb")),
	}
	if err := c.RegisterBatch(ds); err != nil {
		t.Fatal(err)
	}
	ls := []data.Locator{
		{DataUID: ds[0].UID, Protocol: "http", Host: "h:1", Ref: string(ds[0].UID)},
	}
	if err := c.AddLocatorBatch(ls); err != nil {
		t.Fatal(err)
	}
	got, err := c.LocatorsBatch([]data.UID{ds[0].UID, ds[1].UID})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || len(got[0]) != 1 || len(got[1]) != 0 {
		t.Fatalf("LocatorsBatch over rpc = %+v", got)
	}

	// Empty batches short-circuit without a round trip.
	if err := c.RegisterBatch(nil); err != nil {
		t.Fatal(err)
	}
	if err := c.AddLocatorBatch(nil); err != nil {
		t.Fatal(err)
	}
	if out, err := c.LocatorsBatch(nil); err != nil || out != nil {
		t.Fatalf("empty LocatorsBatch = %v, %v", out, err)
	}
}
